// Package kodan is a from-scratch reproduction of "Kodan: Addressing the
// Computational Bottleneck in Space" (ASPLOS 2023): an orbital edge
// computing (OEC) system that maximizes the data value density (DVD) of a
// saturated satellite downlink under the computational limits of satellite
// hardware.
//
// The library has two halves, mirroring the paper's Figure 7:
//
//   - A one-time transformation step (System.Transform): a representative
//     dataset is clustered into geospatial contexts, a context engine is
//     trained to recognize them at runtime, context-specialized models are
//     trained and measured at several frame tilings, and a selection logic
//     is generated for a concrete deployment (hardware target, frame
//     deadline, downlink capacity) by sweeping tilings and per-context
//     actions.
//
//   - An on-orbit runtime (Application.Runtime): for every captured frame,
//     tiles are classified by the context engine and then discarded,
//     downlinked raw, or filtered by the chosen specialized model, with
//     results queued for the next ground-station contact.
//
// Everything the paper's evaluation depends on is implemented in this
// module: a cote-style orbital/ground-segment simulator (Mission), a
// synthetic Sentinel-like dataset, a micro neural-network stack, k-means
// context clustering, the seven Table 1 applications, and the bent-pipe
// and direct-deploy baselines. See DESIGN.md for the substitution map and
// EXPERIMENTS.md for paper-versus-measured results.
//
// # Quick start
//
//	sys, _ := kodan.NewSystem(kodan.DefaultTransformConfig(42))
//	mission, _ := kodan.LandsatMission(epoch)
//	app, _ := sys.Transform(4) // Table 1's App 4
//	logic, est := app.SelectionLogic(mission.Deployment(kodan.Orin15W))
//	fmt.Println(logic.Tiling, est.DVD)
package kodan

import (
	"context"
	"fmt"
	"io"
	"time"

	"kodan/internal/app"
	"kodan/internal/bundle"
	"kodan/internal/core"
	"kodan/internal/ctxengine"
	"kodan/internal/deploy"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/planner"
	"kodan/internal/policy"
	"kodan/internal/power"
	"kodan/internal/sim"
	"kodan/internal/tiling"
	"kodan/internal/value"
	"kodan/internal/xrand"
)

// Re-exported identities, so callers can speak the paper's vocabulary
// without importing internal packages.
type (
	// Target is a hardware deployment target (Table 1 columns).
	Target = hw.Target
	// Tiling is a frame tile layout.
	Tiling = tiling.Tiling
	// Action is a per-context selection-logic decision.
	Action = policy.Action
	// Selection is a generated selection logic.
	Selection = policy.Selection
	// Estimate is the analytic evaluation of a selection.
	Estimate = policy.Estimate
	// Ledger is downlink value accounting.
	Ledger = value.Ledger
	// Architecture describes one of the seven applications.
	Architecture = app.Architecture
	// Runtime is the on-orbit runtime.
	Runtime = deploy.Runtime
	// FrameOutcome is the runtime's per-frame result.
	FrameOutcome = deploy.FrameOutcome
	// Tile is a rendered image tile.
	Tile = imagery.Tile
	// ContextStats summarizes one generated context.
	ContextStats = ctxengine.Stats
)

// Hardware targets.
const (
	GTX1070Ti = hw.GTX1070Ti
	I7_7800X  = hw.I7_7800X
	Orin15W   = hw.Orin15W
)

// Selection-logic actions. Deferred never comes out of the selection-logic
// optimizer; it marks tiles the hybrid planner buffers for later contact
// windows and ground processing.
const (
	Discard     = policy.Discard
	Downlink    = policy.Downlink
	Specialized = policy.Specialized
	Merged      = policy.Merged
	Generic     = policy.Generic
	Deferred    = policy.Deferred
)

// Hybrid space-ground planning (internal/planner) identities.
type (
	// Disposition is a per-context placement decision of the hybrid
	// planner.
	Disposition = planner.Disposition
	// HybridPlan is a hybrid execution plan: the base selection logic plus
	// per-context placements and their accounting.
	HybridPlan = planner.Plan
	// PlannerCosts prices the hybrid placements in one currency.
	PlannerCosts = planner.Costs
	// PlannerEnv is the hybrid planner's view of the deployment: bus,
	// costs, buffer, and contact cadence.
	PlannerEnv = planner.Env
	// Bus is a satellite electrical power system.
	Bus = power.Bus
)

// Hybrid placements.
const (
	PlaceOnboard     = planner.Onboard
	PlaceDownlinkNow = planner.DownlinkNow
	PlaceDefer       = planner.Defer
	PlaceDrop        = planner.Drop
)

// DefaultPlannerCosts returns the reference hybrid-planner pricing.
func DefaultPlannerCosts() PlannerCosts { return planner.DefaultCosts() }

// ThreeUBus returns the reference 3U cubesat electrical bus.
func ThreeUBus() Bus { return power.ThreeUBus() }

// Targets returns the paper's hardware targets in Table 1 order.
func Targets() []Target { return hw.Targets() }

// Applications returns the seven Table 1 applications.
func Applications() []Architecture { return app.Apps() }

// PaperTilings returns the tile counts evaluated in the paper (121, 36,
// 16, 9 tiles per frame).
func PaperTilings() []Tiling { return tiling.PaperTilings() }

// TransformConfig sizes the one-time transformation step.
type TransformConfig = core.Config

// DefaultTransformConfig returns the standard transformation sizing with
// the given seed.
func DefaultTransformConfig(seed uint64) TransformConfig {
	return core.DefaultConfig(seed)
}

// Deployment describes the target satellite for selection-logic
// generation: hardware, frame deadline, and per-frame downlink capacity.
type Deployment = core.Deployment

// System owns the transformation workspace: the representative dataset at
// every candidate tiling plus the contexts and context engine, shared
// across applications.
type System struct {
	ws *core.Workspace
}

// NewSystem renders the representative dataset and builds contexts.
func NewSystem(cfg TransformConfig) (*System, error) {
	return NewSystemCtx(context.Background(), cfg)
}

// NewSystemCtx is NewSystem with cooperative cancellation: ctx is checked
// between the expensive build stages (per-tiling dataset renders,
// clustering, engine training) and ctx.Err() is returned promptly once
// the context is done.
func NewSystemCtx(ctx context.Context, cfg TransformConfig) (*System, error) {
	ws, err := core.NewWorkspaceCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &System{ws: ws}, nil
}

// Contexts returns the generated context statistics.
func (s *System) Contexts() []ContextStats { return s.ws.Ctx.Stats }

// ContextCount returns the number of generated contexts.
func (s *System) ContextCount() int { return s.ws.Ctx.K }

// Transform runs the one-time transformation for the application with the
// given 1-based Table 1 index.
func (s *System) Transform(appIndex int) (*Application, error) {
	return s.TransformCtx(context.Background(), appIndex)
}

// TransformCtx is Transform with cooperative cancellation: ctx is checked
// between tilings, model trainings, and training epochs, so a cancelled
// transform returns ctx.Err() promptly instead of running to completion.
// Completed transforms are bit-identical to Transform with the same seed.
//
// Concurrent TransformCtx calls on one System are safe: the workspace's
// datasets and context engine are read-only after NewSystem, and each
// (application, tiling) derives its randomness from the seed alone.
func (s *System) TransformCtx(ctx context.Context, appIndex int) (*Application, error) {
	return s.TransformVariantCtx(ctx, appIndex, false)
}

// TransformVariantCtx is TransformCtx with an inference-variant switch:
// with quantized set, every trained model also derives its int8 twin and
// all suite predictions — including the quality measurement the selection
// logic prices — run through the quantized hot path. Training itself stays
// float and consumes the identical random stream, so the float variant of
// the same System is unaffected.
func (s *System) TransformVariantCtx(ctx context.Context, appIndex int, quantized bool) (*Application, error) {
	if appIndex < 1 || appIndex > len(app.Apps()) {
		return nil, fmt.Errorf("kodan: no application %d", appIndex)
	}
	art, err := s.ws.WithQuantized(quantized).TransformAppCtx(ctx, app.App(appIndex))
	if err != nil {
		return nil, err
	}
	return &Application{art: art}, nil
}

// TransformBatchVariantCtx transforms several applications of one variant
// in a single pass, returning one Application per requested index in
// order. Each member is bit-identical to its solo TransformVariantCtx run
// (per-app randomness derives from the seed alone); the batch amortizes
// the shared workspace — and, within each transform, per-tile inference
// already runs through PredictBatch. The serving layer's request batcher
// funnels coalesced cache misses through this facade.
func (s *System) TransformBatchVariantCtx(ctx context.Context, appIndexes []int, quantized bool) ([]*Application, error) {
	out := make([]*Application, len(appIndexes))
	for i, idx := range appIndexes {
		a, err := s.TransformVariantCtx(ctx, idx, quantized)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// Application is a transformed application: trained models and measured
// profiles, ready for selection-logic generation.
type Application struct {
	art *core.Artifacts
}

// Arch returns the application's architecture.
func (a *Application) Arch() Architecture { return a.art.Arch }

// SelectionLogic generates the deployment's selection logic.
func (a *Application) SelectionLogic(d Deployment) (Selection, Estimate) {
	return a.art.SelectionLogic(d)
}

// PlanHybrid generates the deployment's selection logic, then re-places
// each context among on-board execution, immediate raw downlink, deferred
// ground processing, and drop under env's cost model (see
// internal/planner). The selection-logic half of env is always derived
// from d; only the bus, costs, buffer, and contact cadence are read from
// env (Mission.HybridEnv supplies reference values).
func (a *Application) PlanHybrid(d Deployment, env PlannerEnv) (HybridPlan, error) {
	sel, _ := a.art.SelectionLogic(d)
	prof, err := a.art.Profile(sel.Tiling)
	if err != nil {
		return HybridPlan{}, err
	}
	env.Policy = d.Env(a.art.Arch)
	return planner.Decide(prof, sel, env)
}

// BentPipe evaluates the bent-pipe baseline in the same environment.
func (a *Application) BentPipe(d Deployment) Estimate {
	return policy.EvaluateBentPipe(a.art.Profiles[0].Prevalence(), d.Env(a.art.Arch))
}

// DirectDeploy evaluates prior OEC work's direct deployment at the given
// tiling (the reference model on every tile, no context engine).
func (a *Application) DirectDeploy(d Deployment, tl Tiling) (Estimate, error) {
	prof, err := a.art.Profile(tl)
	if err != nil {
		return Estimate{}, err
	}
	env := d.Env(a.art.Arch)
	env.UseEngine = false
	return policy.Evaluate(policy.DirectSelection(prof), prof, env), nil
}

// Evaluate scores an arbitrary selection in a deployment.
func (a *Application) Evaluate(sel Selection, d Deployment) (Estimate, error) {
	prof, err := a.art.Profile(sel.Tiling)
	if err != nil {
		return Estimate{}, err
	}
	return policy.Evaluate(sel, prof, d.Env(a.art.Arch)), nil
}

// Runtime wires the application into an on-orbit runtime. frameBits is the
// raw downlink size of one frame (see Mission.FrameBits for the Landsat
// payload).
func (a *Application) Runtime(sel Selection, target Target, frameBits float64) (*Runtime, error) {
	return a.art.Runtime(sel, target, frameBits)
}

// Tilings returns the candidate tilings the application was profiled at,
// in workspace sweep order.
func (a *Application) Tilings() []Tiling {
	out := make([]Tiling, len(a.art.Profiles))
	for i, p := range a.art.Profiles {
		out[i] = p.Tiling
	}
	return out
}

// ProfileFor returns the measured per-context profile at one tiling, for
// advanced uses such as the time-resolved mission simulator
// (internal/mission) or custom policy evaluation.
func (a *Application) ProfileFor(tl Tiling) (policy.TilingProfile, error) {
	return a.art.Profile(tl)
}

// ContextStatsList returns the context inventory the application was
// specialized against.
func (a *Application) ContextStatsList() []ContextStats {
	return a.art.Ctx.Stats
}

// ExportBundle serializes the deployment artifact — the selection logic,
// context inventory, and expected performance — as auditable JSON.
func (a *Application) ExportBundle(w io.Writer, d Deployment, sel Selection, est Estimate) error {
	prof, err := a.art.Profile(sel.Tiling)
	if err != nil {
		return err
	}
	b, err := bundle.New(a.art.Arch.Index, a.art.Arch.Name, d.Target, sel, prof,
		a.art.Ctx.Stats, d.Deadline, d.CapacityFrac, est)
	if err != nil {
		return err
	}
	return b.Write(w)
}

// ImportSelection reads a serialized bundle back into a selection logic.
func ImportSelection(r io.Reader) (Selection, error) {
	b, err := bundle.Read(r)
	if err != nil {
		return Selection{}, err
	}
	return b.Selection()
}

// Mission is the orbital environment: the satellite's orbit, payload,
// reference grid, and ground segment, simulated with the cote-equivalent
// in internal/sim. It supplies the frame deadline and downlink capacity
// the selection logic needs.
type Mission struct {
	// Epoch is the mission start.
	Epoch time.Time
	// FrameDeadline is the time between frame captures.
	FrameDeadline time.Duration
	// FramesPerDay is the capture rate.
	FramesPerDay float64
	// CapacityFrac is the single-satellite downlink capacity per observed
	// frame as a fraction of frame size.
	CapacityFrac float64
	// FrameBits is the compressed size of one frame.
	FrameBits float64
	// Prevalence is the dataset's high-value pixel fraction (bent-pipe
	// DVD).
	Prevalence float64
	// ContactGapFrames is the mean number of frames captured between
	// successive downlink contacts — the store-and-forward holding the
	// hybrid planner charges against its deferral buffer.
	ContactGapFrames float64
}

// LandsatMission simulates one day of the Landsat 8 reference mission
// (orbit, WRS-2 grid, camera, three-station ground segment, 384 Mbit/s
// radio) and returns its derived parameters. The simulation takes on the
// order of a second.
func LandsatMission(epoch time.Time) (Mission, error) {
	res, err := sim.Run(sim.Landsat8Config(epoch, 24*time.Hour, 1))
	if err != nil {
		return Mission{}, err
	}
	im := res.Config.Camera
	grid := res.Config.Grid
	deadline := grid.FramePeriod(res.Config.BaseOrbit)
	observed := float64(res.FramesObserved())
	return Mission{
		Epoch:            epoch,
		FrameDeadline:    deadline,
		FramesPerDay:     observed,
		CapacityFrac:     res.FrameCapacity() / observed,
		FrameBits:        im.FrameBits(),
		Prevalence:       0.48, // the Sentinel-like dataset's high-value split
		ContactGapFrames: planner.DeriveLink(res).FramesBetweenContacts,
	}, nil
}

// Deployment builds the selection-logic environment for a target on this
// mission, with raw filler enabled (the link is never left idle).
func (m Mission) Deployment(t Target) Deployment {
	return Deployment{
		Target:       t,
		Deadline:     m.FrameDeadline,
		CapacityFrac: m.CapacityFrac,
		FillIdle:     true,
	}
}

// HybridEnv builds the hybrid planner's environment on this mission: the
// reference 3U bus, the default cost vector, a 64-frame deferral buffer,
// and the mission's contact cadence. The selection-logic half is filled in
// by Application.PlanHybrid from the deployment; tune Costs and
// BufferFrames on the returned value before planning.
func (m Mission) HybridEnv() PlannerEnv {
	return PlannerEnv{
		Bus:                   ThreeUBus(),
		Costs:                 DefaultPlannerCosts(),
		BufferFrames:          64,
		FramesBetweenContacts: m.ContactGapFrames,
	}
}

// NewRand returns a deterministic random stream for runtime processing.
func NewRand(seed uint64) *xrand.Rand { return xrand.New(seed) }
