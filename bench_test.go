package kodan

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at full scale (one benchmark per table/figure), plus ablation
// benches for the design choices called out in DESIGN.md and
// microbenchmarks of the hot substrate primitives. The expensive shared
// state — the full-size transformation and constellation simulations — is
// built once per process and reused, mirroring the one-time nature of
// Kodan's transformation step.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports the headline quantity of its figure as a
// custom metric, so `bench_output.txt` doubles as the reproduction's
// numeric record.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"kodan/internal/cluster"
	"kodan/internal/dataset"
	"kodan/internal/experiments"
	"kodan/internal/fleet"
	"kodan/internal/imagery"
	"kodan/internal/link"
	"kodan/internal/orbit"
	"kodan/internal/pipeline"
	"kodan/internal/policy"
	"kodan/internal/sim"
	"kodan/internal/station"
	"kodan/internal/telemetry"
	"kodan/internal/tiling"
	"kodan/internal/value"
	"kodan/internal/xrand"
)

var (
	fullLabOnce sync.Once
	fullLab     *experiments.Lab
)

// benchLab returns the shared full-size lab, building it outside the
// benchmark timer on first use.
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	fullLabOnce.Do(func() {
		fullLab = experiments.NewLab(experiments.Full)
		// Warm the expensive shared state so individual figure benches
		// measure figure generation, not the one-time transformation.
		if _, err := fullLab.Workspace(); err != nil {
			b.Fatal(err)
		}
		for i := 1; i <= 7; i++ {
			if _, err := fullLab.App(i); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := fullLab.Mission(); err != nil {
			b.Fatal(err)
		}
	})
	return fullLab
}

// --- One benchmark per table and figure ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 7 {
			b.Fatal("bad table")
		}
	}
	fmt.Print("\n" + experiments.RenderTable1(experiments.Table1()))
}

func BenchmarkFigure2(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure2(l.SatCounts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].DownFrac*100, "pct-downlinked-1sat")
	fmt.Print("\n" + experiments.RenderFigure2(rows))
}

func BenchmarkFigure3(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure3(l.SatCounts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].CoverageFrac*100, "pct-coverage-max-sats")
	fmt.Print("\n" + experiments.RenderFigure3(rows))
}

func BenchmarkFigure4(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].HighValue/rows[1].HighValue, "ideal-over-bent-x")
	fmt.Print("\n" + experiments.RenderFigure4(rows))
}

func BenchmarkFigure5(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure5(l.SatCounts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(rows[0].DirectPct/rows[0].BentPct-1), "pct-direct-improvement")
	fmt.Print("\n" + experiments.RenderFigure5(rows))
}

func BenchmarkFigure8(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := experiments.Headline(rows)
	b.ReportMetric(lo*100, "pct-improvement-min")
	b.ReportMetric(hi*100, "pct-improvement-max")
	fmt.Print("\n" + experiments.RenderFigure8(rows))
}

func BenchmarkFigure9(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if s := r.KodanTime.Seconds(); s > worst {
			worst = s
		}
	}
	b.ReportMetric(worst, "kodan-worst-frame-s")
	fmt.Print("\n" + experiments.RenderFigure9(rows))
}

func BenchmarkFigure10(b *testing.B) {
	l := benchLab(b)
	var pts []experiments.Fig10Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = l.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Print("\n" + experiments.RenderFigure10(pts))
}

func BenchmarkFigure11(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig11Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure11()
		if err != nil {
			b.Fatal(err)
		}
	}
	maxF := 0.0
	for _, r := range rows {
		if r.KodanFactor > maxF {
			maxF = r.KodanFactor
		}
	}
	b.ReportMetric(maxF, "max-reduction-x")
	fmt.Print("\n" + experiments.RenderFigure11(rows))
}

func BenchmarkFigure12(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig12Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure12()
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if g := r.PrecContext/r.PrecGeneric - 1; g > best {
			best = g
		}
	}
	b.ReportMetric(best*100, "pct-best-precision-gain")
	fmt.Print("\n" + experiments.RenderFigure12(rows))
}

func BenchmarkFigure13(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig13Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure13()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Print("\n" + experiments.RenderFigure13(rows))
}

func BenchmarkFigure14(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig14Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure14()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Print("\n" + experiments.RenderFigure14(rows))
}

func BenchmarkFigure15(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.Fig15Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.Figure15()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Print("\n" + experiments.RenderFigure15(rows))
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationQueuePolicy compares the FIFO downlink queue against a
// density-priority queue on a fixed chunk mix: a smarter queue partially
// substitutes for elision.
func BenchmarkAblationQueuePolicy(b *testing.B) {
	rng := xrand.New(3)
	chunks := make([]value.Chunk, 512)
	for i := range chunks {
		bits := rng.Range(0.5, 2)
		chunks[i] = value.Chunk{Bits: bits, ValueBits: bits * rng.Float64()}
	}
	var fifoVal, prioVal float64
	for i := 0; i < b.N; i++ {
		_, fifoVal = value.Drain(chunks, 100)
		_, prioVal = value.DrainPriority(chunks, 100)
	}
	b.ReportMetric(fifoVal, "fifo-value")
	b.ReportMetric(prioVal, "priority-value")
}

// BenchmarkAblationContextSource compares automatic (clustered) contexts
// against expert (geography) contexts end to end: engine agreement and the
// final optimized DVD.
func BenchmarkAblationContextSource(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.AblationSourceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.AblationContextSource()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].KodanDVD, "auto-dvd")
	b.ReportMetric(rows[1].KodanDVD, "expert-dvd")
	fmt.Print("\n" + experiments.RenderAblationContextSource(rows))
}

// BenchmarkAblationContextCount sweeps the context-count hyperparameter
// end to end (Section 3.3's future-work knob): cluster count against
// engine quality, specialized precision, and final DVD.
func BenchmarkAblationContextCountEndToEnd(b *testing.B) {
	l := benchLab(b)
	var rows []experiments.AblationKRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = l.AblationContextCount([]int{2, 4, 6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.KodanDVD > best {
			best = r.KodanDVD
		}
	}
	b.ReportMetric(best, "best-dvd")
	fmt.Print("\n" + experiments.RenderAblationContextCount(rows))
}

// BenchmarkAblationContextCount sweeps the cluster-count hyperparameter
// (the paper's Section 3.3 future-work knob) and reports the silhouette-
// optimal k.
func BenchmarkAblationContextCount(b *testing.B) {
	cfg := dataset.DefaultConfig(77, tiling.Tiling{PerSide: 3})
	cfg.Frames = 60
	cfg.TileRes = 16
	ds, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	vecs := cluster.Standardize(ds.LabelVectors())
	bestK := 0
	for i := 0; i < b.N; i++ {
		options, best := cluster.Sweep(vecs, []int{3, 4, 5, 6, 7, 8, 10, 12},
			[]cluster.Metric{cluster.Euclidean, cluster.Cosine}, xrand.New(5))
		bestK = options[best].Result.K
	}
	b.ReportMetric(float64(bestK), "best-k")
}

// BenchmarkAblationElision isolates elision: all-specialized versus the
// optimizer's mixed policy for the heaviest app on the Orin.
func BenchmarkAblationElision(b *testing.B) {
	l := benchLab(b)
	art, err := l.App(7)
	if err != nil {
		b.Fatal(err)
	}
	d, err := l.Deployment(Orin15W)
	if err != nil {
		b.Fatal(err)
	}
	env := d.Env(art.Arch)
	env.UseEngine = true
	var withElision, without float64
	for i := 0; i < b.N; i++ {
		_, est := art.SelectionLogic(d)
		withElision = est.DVD
		prof := art.Profiles[len(art.Profiles)-1] // coarsest tiling
		sel := policy.Selection{Tiling: prof.Tiling, Actions: make([]policy.Action, len(prof.Contexts))}
		for c := range sel.Actions {
			sel.Actions[c] = policy.Specialized
		}
		without = policy.Evaluate(sel, prof, env).DVD
	}
	b.ReportMetric(withElision, "dvd-with-elision")
	b.ReportMetric(without, "dvd-all-specialized")
}

// --- Parallel evaluation engine ---

// BenchmarkSimRunWorkers measures the constellation simulation at the
// sequential and parallel worker settings. The output is bit-identical at
// every setting (the golden-determinism tests enforce this), so the
// workers=1 / workers=4 ratio is a pure scaling measurement; on a 4+ core
// machine the parallel run should approach the core count.
func BenchmarkSimRunWorkers(b *testing.B) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sim.Landsat8Config(epoch, 24*time.Hour, 8)
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.FramesObserved() == 0 {
					b.Fatal("empty simulation")
				}
			}
		})
	}
}

// BenchmarkFigure10Workers measures one full figure sweep — the Figure 10
// execution-time curve plus its measured deployment points — sequentially
// and on four workers, over the shared warmed lab (so it isolates the
// sweep itself, not the one-time transformation).
func BenchmarkFigure10Workers(b *testing.B) {
	l := benchLab(b)
	defer func() { l.Workers = 0 }()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			l.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := l.Figure10(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead measures the constellation simulation with
// telemetry disabled — the default nil probe, where every instrumentation
// point is a nil-check no-op — against runs with a live metrics registry
// and with metrics plus span tracing. The "off" case is what every
// ordinary figure run pays and must stay within ~2% of the
// pre-instrumentation baseline; the deltas between the sub-benches bound
// what enabling each collector costs.
func BenchmarkTelemetryOverhead(b *testing.B) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	cfg := sim.Landsat8Config(epoch, 24*time.Hour, 4)
	cfg.Workers = 1
	run := func(b *testing.B, ctx context.Context) {
		for i := 0; i < b.N; i++ {
			res, err := sim.RunCtx(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.FramesObserved() == 0 {
				b.Fatal("empty simulation")
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("metrics", func(b *testing.B) {
		ctx := telemetry.WithProbe(context.Background(),
			telemetry.Probe{Metrics: telemetry.NewRegistry()})
		run(b, ctx)
	})
	b.Run("metrics+trace", func(b *testing.B) {
		ctx := telemetry.WithProbe(context.Background(),
			telemetry.Probe{Metrics: telemetry.NewRegistry(), Trace: telemetry.NewTracer(0)})
		run(b, ctx)
	})
}

// --- Substrate microbenchmarks ---

func BenchmarkOrbitPropagate(b *testing.B) {
	e := orbit.Landsat8(time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC))
	t0 := e.Epoch
	for i := 0; i < b.N; i++ {
		_ = orbit.Propagate(e, t0.Add(time.Duration(i)*time.Second))
	}
}

func BenchmarkContactWindows(b *testing.B) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	e := orbit.Landsat8(epoch)
	st := station.LandsatSegment()[2]
	for i := 0; i < b.N; i++ {
		_ = station.ContactWindows(st, e, epoch, 24*time.Hour, 30*time.Second)
	}
}

func BenchmarkLinkAllocate(b *testing.B) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	sats := orbit.Constellation(orbit.Landsat8(epoch), 8)
	stations := station.LandsatSegment()
	windows := make([][][]station.Window, len(stations))
	for si, st := range stations {
		windows[si] = make([][]station.Window, len(sats))
		for j, e := range sats {
			windows[si][j] = station.ContactWindows(st, e, epoch, 24*time.Hour, 30*time.Second)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = link.Allocate(link.Problem{
			Start: epoch, Span: 24 * time.Hour, Quantum: 10 * time.Second, Windows: windows,
		})
	}
}

func BenchmarkRenderTile(b *testing.B) {
	w := imagery.NewWorld(9)
	for i := 0; i < b.N; i++ {
		_ = w.RenderTile(imagery.Region{LonDeg: float64(i % 360), LatDeg: 20, SizeDeg: 0.48}, 20, 1.2)
	}
}

func BenchmarkKMeans(b *testing.B) {
	cfg := dataset.DefaultConfig(3, tiling.Tiling{PerSide: 3})
	cfg.Frames = 40
	cfg.TileRes = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	vecs := cluster.Standardize(ds.LabelVectors())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.KMeans(vecs, 6, cluster.Euclidean, xrand.New(uint64(i)))
	}
}

func BenchmarkSelectionLogicSweep(b *testing.B) {
	l := benchLab(b)
	art, err := l.App(4)
	if err != nil {
		b.Fatal(err)
	}
	d, err := l.Deployment(Orin15W)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = art.SelectionLogic(d)
	}
}

func BenchmarkContextEngineClassify(b *testing.B) {
	l := benchLab(b)
	ws, err := l.Workspace()
	if err != nil {
		b.Fatal(err)
	}
	train, _, err := ws.Data(tiling.Tiling{PerSide: 3})
	if err != nil {
		b.Fatal(err)
	}
	tile := train.Samples[0].Tile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ws.Ctx.Classify(tile)
	}
}

// BenchmarkFleetStrategies evaluates the constellation-as-a-service
// question (Sections 2.1.3 and 7): a 12-satellite platform serving Apps
// 1, 4, and 7 on the Orin, dedicated (prior work's vertically-integrated
// split) versus shared (every satellite time-slices all applications),
// with and without Kodan.
func BenchmarkFleetStrategies(b *testing.B) {
	l := benchLab(b)
	var specs []fleet.AppSpec
	for _, idx := range []int{1, 4, 7} {
		art, err := l.App(idx)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, fleet.AppSpec{Arch: art.Arch, Profiles: art.Profiles})
	}
	m, err := l.Mission()
	if err != nil {
		b.Fatal(err)
	}
	cfg := fleet.Config{
		Sats: 12, Target: Orin15W, Deadline: m.Deadline,
		CapacityFrac: m.CapacityFrac, Kodan: true,
	}
	var kodanEff, directRatio float64
	for i := 0; i < b.N; i++ {
		shared, err := fleet.Shared(specs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		dedicated, err := fleet.Dedicated(specs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		kodanEff = fleet.Efficiency(shared, dedicated)
		directCfg := cfg
		directCfg.Kodan = false
		directShared, err := fleet.Shared(specs, directCfg)
		if err != nil {
			b.Fatal(err)
		}
		directRatio = shared.TotalValueRate / directShared.TotalValueRate
	}
	b.ReportMetric(kodanEff, "kodan-platform-efficiency")
	b.ReportMetric(directRatio, "kodan-over-direct-x")
}

// BenchmarkPipelineSizing compares prior work's crosslink-free formation
// bound against crosslink-aware sizing for the heaviest deployment.
func BenchmarkPipelineSizing(b *testing.B) {
	l := benchLab(b)
	m, err := l.Mission()
	if err != nil {
		b.Fatal(err)
	}
	perTile := 2040 * time.Millisecond // App 7 on the Orin
	tileBits := m.FrameBits / 121
	var ideal int
	feasible := 0.0
	for i := 0; i < b.N; i++ {
		ideal = pipeline.IdealSize(121, perTile, m.Deadline)
		// Full-resolution tiles over an optical crosslink: infeasible.
		if _, err := pipeline.Size(121, perTile, tileBits, pipeline.TypicalOptical(), m.Deadline, 256); err == nil {
			feasible = 1
		}
	}
	b.ReportMetric(float64(ideal), "ideal-satellites")
	b.ReportMetric(feasible, "fullres-crosslink-feasible")
}
