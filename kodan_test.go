package kodan

import (
	"bytes"
	"testing"
	"time"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

// testSystem builds a down-sized system for API tests.
func testSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultTransformConfig(2023)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []Tiling{{PerSide: 3}, {PerSide: 6}}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicCatalog(t *testing.T) {
	if len(Applications()) != 7 {
		t.Fatal("wrong application count")
	}
	if len(Targets()) != 3 {
		t.Fatal("wrong target count")
	}
	wantTiles := []int{121, 36, 16, 9}
	for i, tl := range PaperTilings() {
		if tl.Tiles() != wantTiles[i] {
			t.Fatalf("tiling %d = %d tiles", i, tl.Tiles())
		}
	}
}

func TestLandsatMission(t *testing.T) {
	m, err := LandsatMission(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.FrameDeadline.Seconds(); d < 21 || d > 26 {
		t.Fatalf("frame deadline = %.1f s", d)
	}
	if m.FramesPerDay < 3300 || m.FramesPerDay > 3900 {
		t.Fatalf("frames/day = %.0f", m.FramesPerDay)
	}
	if m.CapacityFrac < 0.15 || m.CapacityFrac > 0.28 {
		t.Fatalf("capacity fraction = %.3f", m.CapacityFrac)
	}
	if m.FrameBits < 5e9 || m.FrameBits > 9e9 {
		t.Fatalf("frame bits = %.2e", m.FrameBits)
	}
}

func TestEndToEndHeadlineResult(t *testing.T) {
	// The paper's headline: Kodan improves DVD by 89-97% over the bent
	// pipe. With the down-sized test transformation we accept a wider
	// band but demand a large improvement and a met deadline.
	sys := testSystem(t)
	m, err := LandsatMission(epoch)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Transform(4)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Deployment(Orin15W)
	_, est := a.SelectionLogic(d)
	bent := a.BentPipe(d)
	improvement := est.DVD/bent.DVD - 1
	if improvement < 0.5 {
		t.Fatalf("Kodan improvement = %.0f%%, want large", improvement*100)
	}
	if est.ProcessedFrac < 0.999 {
		t.Fatalf("Kodan missed the deadline")
	}
	// Direct deploy at the accuracy-maximal tiling is worse than Kodan.
	direct, err := a.DirectDeploy(d, Tiling{PerSide: 6})
	if err != nil {
		t.Fatal(err)
	}
	if est.DVD <= direct.DVD {
		t.Fatalf("Kodan %.3f not above direct %.3f", est.DVD, direct.DVD)
	}
}

func TestTransformRejectsBadIndex(t *testing.T) {
	sys := testSystem(t)
	for _, idx := range []int{0, 8, -1} {
		if _, err := sys.Transform(idx); err == nil {
			t.Fatalf("index %d accepted", idx)
		}
	}
}

func TestContextsExposed(t *testing.T) {
	sys := testSystem(t)
	if sys.ContextCount() < 2 {
		t.Fatal("too few contexts")
	}
	if len(sys.Contexts()) != sys.ContextCount() {
		t.Fatal("context stats mismatch")
	}
}

func TestRuntimeFromPublicAPI(t *testing.T) {
	sys := testSystem(t)
	m, err := LandsatMission(epoch)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Transform(1)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := a.SelectionLogic(m.Deployment(Orin15W))
	rt, err := a.Runtime(sel, Orin15W, m.FrameBits)
	if err != nil {
		t.Fatal(err)
	}
	if rt.TileBits <= 0 {
		t.Fatal("runtime tile bits not set")
	}
	// Evaluate matches the logic's own estimate for the same selection.
	est1, err := a.Evaluate(sel, m.Deployment(Orin15W))
	if err != nil {
		t.Fatal(err)
	}
	_, est2 := a.SelectionLogic(m.Deployment(Orin15W))
	if est1.DVD != est2.DVD {
		t.Fatalf("Evaluate %.4f != SelectionLogic %.4f", est1.DVD, est2.DVD)
	}
}

func TestBundleRoundTripThroughPublicAPI(t *testing.T) {
	sys := testSystem(t)
	m, err := LandsatMission(epoch)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Transform(2)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Deployment(Orin15W)
	sel, est := a.SelectionLogic(d)

	var buf bytes.Buffer
	if err := a.ExportBundle(&buf, d, sel, est); err != nil {
		t.Fatal(err)
	}
	back, err := ImportSelection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tiling != sel.Tiling || len(back.Actions) != len(sel.Actions) {
		t.Fatal("selection changed through serialization")
	}
	for i := range sel.Actions {
		if back.Actions[i] != sel.Actions[i] {
			t.Fatalf("action %d changed", i)
		}
	}
	// The reimported logic evaluates identically.
	est2, err := a.Evaluate(back, d)
	if err != nil {
		t.Fatal(err)
	}
	if est2.DVD != est.DVD {
		t.Fatalf("reimported DVD %.4f != %.4f", est2.DVD, est.DVD)
	}
}

// TestImportSelectionHostileInputs verifies that untrusted bundle bytes —
// truncated, version-skewed, or value-corrupted — surface as descriptive
// errors from the public API and never panic or yield a usable Selection.
func TestImportSelectionHostileInputs(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"truncated":        `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"ac`,
		"wrong version":    `{"schemaVersion":7,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`,
		"negative tiling":  `{"schemaVersion":1,"tilesPerSide":-1,"contexts":[{"action":"discard"}]}`,
		"unknown action":   `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"teleport"}]}`,
		"contexts missing": `{"schemaVersion":1,"tilesPerSide":3}`,
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ImportSelection panicked: %v", rec)
				}
			}()
			sel, err := ImportSelection(bytes.NewReader([]byte(raw)))
			if err == nil {
				t.Fatalf("hostile bundle accepted: %+v", sel)
			}
			if err.Error() == "" {
				t.Fatal("error has no description")
			}
		})
	}
}

// TestPlanHybridFromPublicAPI exercises the hybrid planner facade: a plan
// over the tiny system's contexts, placement/action consistency, and the
// mission-derived environment helper.
func TestPlanHybridFromPublicAPI(t *testing.T) {
	sys := testSystem(t)
	a, err := sys.Transform(4)
	if err != nil {
		t.Fatal(err)
	}
	d := Deployment{Target: Orin15W, Deadline: 24 * time.Second, CapacityFrac: 0.21, FillIdle: true}
	env := PlannerEnv{
		Bus:                   ThreeUBus(),
		Costs:                 DefaultPlannerCosts(),
		BufferFrames:          64,
		FramesBetweenContacts: 10,
	}
	plan, err := a.PlanHybrid(d, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Dispositions) == 0 || len(plan.Dispositions) != len(plan.Actions) ||
		len(plan.Dispositions) != len(plan.Base.Actions) {
		t.Fatalf("plan shape: %d dispositions, %d actions, %d base actions",
			len(plan.Dispositions), len(plan.Actions), len(plan.Base.Actions))
	}
	for i, disp := range plan.Dispositions {
		switch disp {
		case PlaceOnboard:
			if plan.Actions[i] != plan.Base.Actions[i] {
				t.Errorf("context %d: onboard action %v != base %v", i, plan.Actions[i], plan.Base.Actions[i])
			}
		case PlaceDownlinkNow:
			if plan.Actions[i] != Downlink {
				t.Errorf("context %d: downlink-now mapped to %v", i, plan.Actions[i])
			}
		case PlaceDefer:
			if plan.Actions[i] != Deferred {
				t.Errorf("context %d: defer mapped to %v", i, plan.Actions[i])
			}
		case PlaceDrop:
			if plan.Actions[i] != Discard {
				t.Errorf("context %d: drop mapped to %v", i, plan.Actions[i])
			}
		}
	}
	ev := plan.Eval
	if sum := ev.OnboardFrac + ev.DownlinkFrac + ev.DeferFrac + ev.DropFrac; sum < 0.99 || sum > 1.01 {
		t.Errorf("placement fractions sum to %.4f", sum)
	}

	// The mission helper carries the contact cadence into the planner env.
	m, err := LandsatMission(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if m.ContactGapFrames < 1 {
		t.Fatalf("mission contact gap = %.2f frames", m.ContactGapFrames)
	}
	menv := m.HybridEnv()
	if menv.FramesBetweenContacts != m.ContactGapFrames || menv.BufferFrames != 64 {
		t.Fatalf("HybridEnv = %+v", menv)
	}
	if _, err := a.PlanHybrid(m.Deployment(Orin15W), menv); err != nil {
		t.Fatal(err)
	}
}
