#!/bin/sh
# verify.sh — the repository's full verification gate:
# formatting, vet, build, and the test suite under the race detector.
# Run from the repo root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Shuffled run: catches inter-test ordering dependencies that a fixed
# order hides. A fixed seed keeps failures reproducible.
echo "==> go test -shuffle=1 ./..."
go test -shuffle=1 ./...

echo "verify: OK"
