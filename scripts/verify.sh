#!/bin/sh
# verify.sh — the repository's full verification gate:
# formatting, vet, build, and the test suite under the race detector.
# Run from the repo root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Shuffled run: catches inter-test ordering dependencies that a fixed
# order hides. A fixed seed keeps failures reproducible.
echo "==> go test -shuffle=1 ./..."
go test -shuffle=1 ./...

smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT

# Coverage gate: aggregate statement coverage must stay at or above the
# checked-in threshold (scripts/coverage_threshold.txt). The threshold is
# set below the current figure with margin — it catches large untested
# additions, not noise.
echo "==> go test -cover (aggregate threshold)"
threshold=$(cat scripts/coverage_threshold.txt)
go test -coverprofile="$smokedir/cover.out" ./... > /dev/null
total=$(go tool cover -func="$smokedir/cover.out" | awk '/^total:/ { gsub(/%/, "", $NF); print $NF }')
if ! awk -v t="$threshold" -v c="$total" 'BEGIN { exit !(c+0 >= t+0) }'; then
    echo "verify: total coverage ${total}% below threshold ${threshold}%" >&2
    exit 1
fi
echo "    total coverage ${total}% (threshold ${threshold}%)"

# Fuzz smoke: a bounded run of each native fuzz target over its committed
# seed corpus plus fresh mutations. Catches quantization/inference
# robustness regressions (panics, non-finite probabilities) without the
# open-ended cost of a real fuzzing campaign. Mirrored in
# .github/workflows/ci.yml.
echo "==> go test -fuzz smoke (nn)"
go test ./internal/nn -run '^$' -fuzz '^FuzzPredict$' -fuzztime 10s > /dev/null
go test ./internal/nn -run '^$' -fuzz '^FuzzQuantize$' -fuzztime 10s > /dev/null

# Trace-analysis smoke: record span traces of the same short mission at
# two worker counts, run every kodan-trace subcommand over them, and
# assert the analyzer sees the identical span forest — summary -shape
# (phase names and span counts, no timings) must be byte-identical across
# -parallel 1 and -parallel 4, and analyzing the same trace twice must be
# byte-identical. Mirrored in .github/workflows/ci.yml.
echo "==> kodan-trace smoke"
go run ./cmd/kodan-sim -hours 2 -sats 2 -parallel 1 \
    -trace "$smokedir/sim.p1.jsonl" > /dev/null 2> /dev/null
go run ./cmd/kodan-sim -hours 2 -sats 2 -parallel 4 \
    -trace "$smokedir/sim.p4.jsonl" > /dev/null 2> /dev/null
go run ./cmd/kodan-trace summary "$smokedir/sim.p1.jsonl" > /dev/null
go run ./cmd/kodan-trace critical "$smokedir/sim.p1.jsonl" > /dev/null
go run ./cmd/kodan-trace folded "$smokedir/sim.p1.jsonl" > /dev/null
go run ./cmd/kodan-trace diff "$smokedir/sim.p1.jsonl" "$smokedir/sim.p4.jsonl" > /dev/null
go run ./cmd/kodan-trace summary -shape "$smokedir/sim.p1.jsonl" > "$smokedir/shape.p1"
go run ./cmd/kodan-trace summary -shape "$smokedir/sim.p4.jsonl" > "$smokedir/shape.p4"
if ! cmp -s "$smokedir/shape.p1" "$smokedir/shape.p4"; then
    echo "verify: trace shape differs across -parallel 1 vs 4" >&2
    diff "$smokedir/shape.p1" "$smokedir/shape.p4" >&2 || true
    exit 1
fi
go run ./cmd/kodan-trace summary "$smokedir/sim.p1.jsonl" > "$smokedir/sum.a"
go run ./cmd/kodan-trace summary "$smokedir/sim.p1.jsonl" > "$smokedir/sum.b"
if ! cmp -s "$smokedir/sum.a" "$smokedir/sum.b"; then
    echo "verify: kodan-trace summary is not deterministic for the same trace" >&2
    exit 1
fi

# Mission-event smoke: journal the same mission at two worker counts and
# require byte-identical JSONL; run every kodan-events subcommand; and
# check the anomaly gate's exit-code contract — 0 on a clean run, 2 on a
# seeded-fault run. Mirrored in .github/workflows/ci.yml.
echo "==> kodan-events smoke"
go run ./cmd/kodan-sim -hours 6 -sats 4 -parallel 1 \
    -events "$smokedir/ev.p1.jsonl" > /dev/null 2> /dev/null
go run ./cmd/kodan-sim -hours 6 -sats 4 -parallel 4 \
    -events "$smokedir/ev.p4.jsonl" > /dev/null 2> /dev/null
if ! cmp -s "$smokedir/ev.p1.jsonl" "$smokedir/ev.p4.jsonl"; then
    echo "verify: event journal differs across -parallel 1 vs 4" >&2
    exit 1
fi
go run ./cmd/kodan-sim -hours 6 -sats 4 -parallel 4 \
    -fault-intensity 1 -fault-seed 7 \
    -events "$smokedir/ev.fault.jsonl" > /dev/null 2> /dev/null
go run ./cmd/kodan-events summary "$smokedir/ev.p1.jsonl" > /dev/null
go run ./cmd/kodan-events timeline "$smokedir/ev.fault.jsonl" > /dev/null
go run ./cmd/kodan-events diff "$smokedir/ev.p1.jsonl" "$smokedir/ev.fault.jsonl" > /dev/null
if ! go run ./cmd/kodan-events anomalies "$smokedir/ev.p1.jsonl" > /dev/null; then
    echo "verify: anomalies flagged a clean journal" >&2
    exit 1
fi
if go run ./cmd/kodan-events anomalies "$smokedir/ev.fault.jsonl" > /dev/null; then
    echo "verify: anomalies missed the seeded-fault journal" >&2
    exit 1
fi

# Perf-harness smoke: record a baseline from a tiny subset (including the
# fault-injection resilience sweep and the quantized figure-8 variant),
# compare a second run against it (generous threshold — this verifies the
# machinery, not runner speed), and prove the synthetic-regression switch
# exits nonzero. Mirrored in .github/workflows/ci.yml.
echo "==> kodan-bench baseline smoke"
go run ./cmd/kodan-bench -size quick -only table1,fig2,resilience,fig8q,hybridplan \
    -json "$smokedir" -timings "$smokedir/baseline.json" > /dev/null
go run ./cmd/kodan-bench -size quick -only table1,fig2,resilience,fig8q,hybridplan \
    -baseline "$smokedir/baseline.json" -regress-threshold 4 > /dev/null
if go run ./cmd/kodan-bench -size quick -only table1 \
    -baseline "$smokedir/baseline.json" -regress-threshold -1 > /dev/null 2>&1; then
    echo "verify: synthetic regression did not fail the bench gate" >&2
    exit 1
fi

# Serving smoke: drive the self-hosted serving plane with the
# deterministic multi-tenant stream, comparing a single-shard/no-batch
# baseline against the sharded+batched configuration over the same
# stream. kodan-loadgen exits nonzero when the error-rate or fairness
# gate fails or when responses diverge from the baseline. Mirrored in
# .github/workflows/ci.yml.
echo "==> kodan-loadgen smoke"
go run ./cmd/kodan-loadgen -requests 120 -concurrency 16 \
    -seed-pool 1,2,3,4 -apps 1,2,3,4,5,6,7 -tenants ops:3,science:1 \
    -batch-window 5ms -work-fixed 15ms -work-marginal 1ms \
    -compare > /dev/null

echo "verify: OK"
