#!/bin/sh
# bench_compare.sh — the perf-regression gate (`make bench-check`).
#
# Runs the benchmark suite through kodan-bench, records the per-figure
# BENCH_*.json artifacts and the BENCH_timings.json timing report into
# bench/ (the committed performance trajectory), and compares the fresh
# timings against the committed baseline, exiting nonzero when any
# figure's wall time regressed beyond the threshold.
#
# First run (no committed baseline yet): records the baseline and passes —
# commit bench/ to start the trajectory.
#
# Environment overrides:
#   BENCH_SIZE       experiment scale: quick (default) or full
#   BENCH_PARALLEL   worker pool size (default 0 = GOMAXPROCS)
#   BENCH_ONLY       comma-separated figure subset (default: suite below)
#   BENCH_BASELINE   baseline timing report (default bench/BENCH_timings.json)
#   BENCH_THRESHOLD  allowed slowdown fraction (default 0.5 = +50%);
#                    a negative value fails every figure — the synthetic
#                    regression switch the gate's own test flips
set -eu

cd "$(dirname "$0")/.."

SIZE=${BENCH_SIZE:-quick}
PARALLEL=${BENCH_PARALLEL:-0}
ONLY=${BENCH_ONLY:-table1,fig2,fig8,fig8q,hybridplan,serving}
BASELINE=${BENCH_BASELINE:-bench/BENCH_timings.json}
THRESHOLD=${BENCH_THRESHOLD:-0.5}

mkdir -p bench
current=$(mktemp)
trap 'rm -f "$current"' EXIT

if [ ! -f "$BASELINE" ]; then
    echo "bench-check: no baseline at $BASELINE — recording one (commit bench/ to start the trajectory)"
    go run ./cmd/kodan-bench -size "$SIZE" -parallel "$PARALLEL" -only "$ONLY" \
        -json bench -timings "$BASELINE" > /dev/null
    echo "bench-check: baseline recorded, nothing to compare"
    exit 0
fi

echo "bench-check: size=$SIZE parallel=$PARALLEL only=$ONLY threshold=$THRESHOLD"
go run ./cmd/kodan-bench -size "$SIZE" -parallel "$PARALLEL" -only "$ONLY" \
    -json bench -timings "$current" \
    -baseline "$BASELINE" -regress-threshold "$THRESHOLD" > /dev/null
# Comparison passed: the fresh timings become the new committed point on
# the trajectory. On failure (kodan-bench exited nonzero above, aborting
# under set -e) the baseline is left untouched.
cp "$current" "$BASELINE"
echo "bench-check: OK ($BASELINE updated)"
