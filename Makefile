GO ?= go
SIZE ?= full
PARALLEL ?= 0

.PHONY: build test race verify bench bench-check fmt fmtcheck vet trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmtcheck and vet are the static halves of the verify gate, runnable
# standalone (CI can fail fast on them before spending time on -race).
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# verify is the full gate: gofmt, vet, build, and tests under -race.
verify:
	sh scripts/verify.sh

# trace runs the quick benchmark suite with span tracing and drops the
# JSONL trace plus pprof profiles in ./trace-out.
trace:
	mkdir -p trace-out
	$(GO) run ./cmd/kodan-bench -size quick -parallel $(PARALLEL) \
		-trace trace-out/bench.trace.jsonl \
		-cpuprofile trace-out/bench.cpu.pprof \
		-memprofile trace-out/bench.mem.pprof

# bench runs the Go micro/figure benchmarks, then regenerates every
# BENCH_*.json artifact by running the full figure suite through
# kodan-bench. SIZE=quick PARALLEL=4 make bench for a faster pass.
bench:
	$(GO) test -bench=. -benchmem
	$(GO) run ./cmd/kodan-bench -size $(SIZE) -parallel $(PARALLEL) -json .

# bench-check is the perf-regression gate: it reruns the benchmark suite,
# records BENCH_*.json + BENCH_timings.json into the committed bench/
# trajectory, and exits nonzero when any figure's wall time regressed
# beyond the threshold vs the committed baseline. Overridable via
# BENCH_SIZE / BENCH_ONLY / BENCH_THRESHOLD / BENCH_BASELINE (see the
# script header); BENCH_THRESHOLD=-1 injects a synthetic regression to
# prove the failure path.
bench-check:
	sh scripts/bench_compare.sh

fmt:
	gofmt -w .
