GO ?= go
SIZE ?= full
PARALLEL ?= 0

.PHONY: build test race verify bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full gate: gofmt, vet, build, and tests under -race.
verify:
	sh scripts/verify.sh

# bench runs the Go micro/figure benchmarks, then regenerates every
# BENCH_*.json artifact by running the full figure suite through
# kodan-bench. SIZE=quick PARALLEL=4 make bench for a faster pass.
bench:
	$(GO) test -bench=. -benchmem
	$(GO) run ./cmd/kodan-bench -size $(SIZE) -parallel $(PARALLEL) -json .

fmt:
	gofmt -w .
