GO ?= go
SIZE ?= full
PARALLEL ?= 0
APP ?= 4

.PHONY: build test race verify bench bench-check fmt fmtcheck vet trace trace-diff events

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmtcheck and vet are the static halves of the verify gate, runnable
# standalone (CI can fail fast on them before spending time on -race).
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# verify is the full gate: gofmt, vet, build, and tests under -race.
verify:
	sh scripts/verify.sh

# trace runs the quick benchmark suite with span tracing and drops the
# JSONL trace plus pprof profiles in ./trace-out.
trace:
	mkdir -p trace-out
	$(GO) run ./cmd/kodan-bench -size quick -parallel $(PARALLEL) \
		-trace trace-out/bench.trace.jsonl \
		-cpuprofile trace-out/bench.cpu.pprof \
		-memprofile trace-out/bench.mem.pprof

# trace-diff transforms App $(APP) twice — float and int8 quantized —
# with span tracing and prints the per-phase attribution table: which
# phase gained or lost time, and which variant attributes changed. The
# traces land in ./trace-out for further kodan-trace analysis.
trace-diff:
	mkdir -p trace-out
	$(GO) run ./cmd/kodan-transform -app $(APP) \
		-trace trace-out/transform.float.jsonl > /dev/null
	$(GO) run ./cmd/kodan-transform -app $(APP) -quantized \
		-trace trace-out/transform.quant.jsonl > /dev/null
	$(GO) run ./cmd/kodan-trace diff \
		trace-out/transform.float.jsonl trace-out/transform.quant.jsonl

# events journals a clean and a seeded-fault mission, prints the faulted
# timeline and its anomaly findings, and diffs the two journals. The
# JSONL journals land in ./events-out for further kodan-events analysis.
# The anomalies step exits 2 by design (findings found), so it is guarded.
events:
	mkdir -p events-out
	$(GO) run ./cmd/kodan-sim -hours 6 -sats 4 -parallel $(PARALLEL) \
		-events events-out/mission.jsonl > /dev/null
	$(GO) run ./cmd/kodan-sim -hours 6 -sats 4 -parallel $(PARALLEL) \
		-fault-intensity 1 -fault-seed 7 \
		-events events-out/mission.faulted.jsonl > /dev/null
	$(GO) run ./cmd/kodan-events timeline events-out/mission.faulted.jsonl
	$(GO) run ./cmd/kodan-events anomalies events-out/mission.faulted.jsonl || true
	$(GO) run ./cmd/kodan-events diff \
		events-out/mission.jsonl events-out/mission.faulted.jsonl

# bench runs the Go micro/figure benchmarks, then regenerates every
# BENCH_*.json artifact by running the full figure suite through
# kodan-bench. SIZE=quick PARALLEL=4 make bench for a faster pass.
bench:
	$(GO) test -bench=. -benchmem
	$(GO) run ./cmd/kodan-bench -size $(SIZE) -parallel $(PARALLEL) -json .

# bench-check is the perf-regression gate: it reruns the benchmark suite,
# records BENCH_*.json + BENCH_timings.json into the committed bench/
# trajectory, and exits nonzero when any figure's wall time regressed
# beyond the threshold vs the committed baseline. Overridable via
# BENCH_SIZE / BENCH_ONLY / BENCH_THRESHOLD / BENCH_BASELINE (see the
# script header); BENCH_THRESHOLD=-1 injects a synthetic regression to
# prove the failure path.
bench-check:
	sh scripts/bench_compare.sh

fmt:
	gofmt -w .
