GO ?= go

.PHONY: build test race verify bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full gate: gofmt, vet, build, and tests under -race.
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -w .
