// Cloudfilter: the paper's motivating application, end to end. A satellite
// on the Landsat 8 orbit captures frames over the synthetic world; the
// Kodan on-orbit runtime splits each frame into tiles, classifies every
// tile with the context engine, and discards / downlinks / filters each
// one under the generated selection logic. The example processes a sample
// of real frames through the real models and extrapolates the mission
// ledger, comparing against the bent pipe.
//
// Run with:
//
//	go run ./examples/cloudfilter
package main

import (
	"fmt"
	"log"
	"time"

	"kodan"
	"kodan/internal/dataset"
	"kodan/internal/deploy"
	"kodan/internal/imagery"
	"kodan/internal/tiling"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	mission, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}

	cfg := kodan.DefaultTransformConfig(7)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := sys.Transform(7) // the heaviest application
	if err != nil {
		log.Fatal(err)
	}

	deployment := mission.Deployment(kodan.Orin15W)
	logic, est := app.SelectionLogic(deployment)
	runtime, err := app.Runtime(logic, kodan.Orin15W, mission.FrameBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed App 7 to the Orin 15W: tiling %v, expected frame time %.1f s\n",
		logic.Tiling, est.FrameTime.Seconds())

	// Capture a fresh day of frames (unseen world regions) and process a
	// sample through the real runtime.
	dcfg := dataset.DefaultConfig(991, tiling.Tiling{PerSide: logic.Tiling.PerSide})
	dcfg.Frames = 40
	dcfg.TileRes = 16
	ds, err := dataset.Generate(dcfg)
	if err != nil {
		log.Fatal(err)
	}
	frames := framesOf(ds, logic.Tiling.Tiles())

	rng := kodan.NewRand(1)
	var outcomes []deploy.FrameOutcome
	counts := map[kodan.Action]int{}
	var totalTime time.Duration
	for _, frame := range frames {
		out := runtime.ProcessFrame(frame, rng)
		outcomes = append(outcomes, out)
		totalTime += out.Time
		for _, tile := range out.Tiles {
			counts[tile.Action]++
		}
	}
	fmt.Printf("\nprocessed %d frames (%d tiles): avg %.1f s/frame (deadline %.1f s)\n",
		len(frames), len(frames)*logic.Tiling.Tiles(),
		totalTime.Seconds()/float64(len(frames)), mission.FrameDeadline.Seconds())
	for _, a := range []kodan.Action{kodan.Discard, kodan.Downlink, kodan.Specialized, kodan.Generic} {
		if counts[a] > 0 {
			fmt.Printf("  %-12v %5d tiles\n", a, counts[a])
		}
	}

	// Extrapolate one mission day and compare with the bent pipe.
	day := deploy.Deployment{
		FramesObserved: mission.FramesPerDay,
		CapacityBits:   mission.CapacityFrac * mission.FramesPerDay * mission.FrameBits,
		FrameBits:      mission.FrameBits,
		Deadline:       mission.FrameDeadline,
		FillIdle:       true,
	}
	kodanLedger := day.Ledger(outcomes)

	var bentOutcomes []deploy.FrameOutcome
	for _, frame := range frames {
		bentOutcomes = append(bentOutcomes, deploy.BentPipeFrame(frame, runtime.TileBits))
	}
	bentLedger := day.Ledger(bentOutcomes)

	fmt.Printf("\none mission day (measured on the processed sample):\n")
	fmt.Printf("  %-10s DVD %.3f  purity %.3f  high-value recovery %.1f%%\n",
		"bent pipe", bentLedger.DVD(), bentLedger.Purity(), 100*bentLedger.Recovery())
	fmt.Printf("  %-10s DVD %.3f  purity %.3f  high-value recovery %.1f%%\n",
		"kodan", kodanLedger.DVD(), kodanLedger.Purity(), 100*kodanLedger.Recovery())
	fmt.Printf("  improvement: %+.0f%% data value density\n",
		100*(kodanLedger.DVD()/bentLedger.DVD()-1))
}

// framesOf groups a dataset's tiles back into frames.
func framesOf(ds *dataset.Dataset, tilesPerFrame int) [][]*imagery.Tile {
	byFrame := map[int][]*imagery.Tile{}
	order := []int{}
	for _, s := range ds.Samples {
		if len(byFrame[s.Frame]) == 0 {
			order = append(order, s.Frame)
		}
		byFrame[s.Frame] = append(byFrame[s.Frame], s.Tile)
	}
	var frames [][]*imagery.Tile
	for _, f := range order {
		if len(byFrame[f]) == tilesPerFrame {
			frames = append(frames, byFrame[f])
		}
	}
	return frames
}
