// Mission: a time-resolved multi-day deployment. Where the other examples
// use the steady-state estimator, this one runs the chronological event
// loop of internal/mission — captures every ~24 s, contact windows from
// the simulated ground segment, a busy/idle processor, and a bounded
// onboard buffer — and compares Kodan against the direct-deploy baseline
// on the same timeline, including queue transients the analytic model
// cannot see.
//
// Run with:
//
//	go run ./examples/mission
package main

import (
	"fmt"
	"log"
	"time"

	"kodan"
	"kodan/internal/mission"
	"kodan/internal/policy"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

	cfg := kodan.DefaultTransformConfig(3)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := sys.Transform(4)
	if err != nil {
		log.Fatal(err)
	}
	m, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}
	logic, est := app.SelectionLogic(m.Deployment(kodan.Orin15W))
	prof, err := app.ProfileFor(logic.Tiling)
	if err != nil {
		log.Fatal(err)
	}

	const days = 3
	fmt.Printf("flying %v on %v for %d days (tiling %v, expected frame time %.1f s)\n\n",
		app.Arch(), kodan.Orin15W, days, logic.Tiling, est.FrameTime.Seconds())

	run := func(name string, sel kodan.Selection, p policy.TilingProfile, engine bool, buffer float64) *mission.Result {
		res, err := mission.Run(mission.Config{
			Epoch:      epoch,
			Days:       days,
			Arch:       app.Arch(),
			Target:     kodan.Orin15W,
			Profile:    p,
			Selection:  sel,
			UseEngine:  engine,
			FillIdle:   true,
			BufferBits: buffer,
			Seed:       9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s DVD %.3f  recovery %4.1f%%  missed %5d/%5d frames  peak queue %6.1f GB\n",
			name, res.DVD(), 100*res.Ledger.Recovery(), res.FramesMissed, res.FramesCaptured,
			res.PeakQueueBits/8e9)
		return res
	}

	// Kodan with an unlimited buffer, then with a realistic 256 GB SSD.
	run("kodan (no buffer cap)", logic, prof, true, 0)
	run("kodan (256 GB SSD)", logic, prof, true, 256*8e9)

	// Direct deploy at the fine tiling on the same timeline.
	fineProf, err := app.ProfileFor(kodan.Tiling{PerSide: 11})
	if err != nil {
		log.Fatal(err)
	}
	direct := policy.DirectSelection(fineProf)
	run("direct deploy", direct, fineProf, false, 0)

	// Bent pipe: downlink everything raw.
	bentActions := make([]kodan.Action, len(prof.Contexts))
	for i := range bentActions {
		bentActions[i] = kodan.Downlink
	}
	run("bent pipe", kodan.Selection{Tiling: prof.Tiling, Actions: bentActions}, prof, false, 0)
}
