// Quickstart: transform one application and generate its selection logic
// for a cubesat-class target, printing what Kodan decided and why.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"kodan"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

	// 1. Simulate the reference mission: the Landsat 8 orbit, camera, and
	//    ground segment. This yields the frame deadline and the fraction
	//    of observations the downlink can carry.
	mission, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mission: deadline %.1f s, %.0f frames/day, downlink %.0f%% of observations\n",
		mission.FrameDeadline.Seconds(), mission.FramesPerDay, 100*mission.CapacityFrac)

	// 2. One-time transformation: representative dataset, contexts, and a
	//    context engine. (Down-sized here so the example runs in seconds.)
	cfg := kodan.DefaultTransformConfig(42)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contexts: %d generated\n", sys.ContextCount())

	// 3. Transform Table 1's App 4 (resnet50dilated) and generate the
	//    selection logic for the Jetson Orin in its 15 W cubesat mode.
	app, err := sys.Transform(4)
	if err != nil {
		log.Fatal(err)
	}
	deployment := mission.Deployment(kodan.Orin15W)
	logic, est := app.SelectionLogic(deployment)

	fmt.Printf("\nselection logic for %v on %v:\n", app.Arch(), kodan.Orin15W)
	fmt.Printf("  tiling: %v\n", logic.Tiling)
	for c, action := range logic.Actions {
		stats := sys.Contexts()[c]
		fmt.Printf("  %-18s (high-value %.2f) -> %v\n", stats.Name, stats.HighValueFrac, action)
	}

	// 4. Compare against the baselines.
	bent := app.BentPipe(deployment)
	direct, err := app.DirectDeploy(deployment, kodan.Tiling{PerSide: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresults (data value density of the saturated downlink):\n")
	fmt.Printf("  bent pipe:     %.3f\n", bent.DVD)
	fmt.Printf("  direct deploy: %.3f (frame time %.0f s vs %.0f s deadline)\n",
		direct.DVD, direct.FrameTime.Seconds(), mission.FrameDeadline.Seconds())
	fmt.Printf("  kodan:         %.3f (frame time %.0f s, +%.0f%% over bent pipe)\n",
		est.DVD, est.FrameTime.Seconds(), 100*(est.DVD/bent.DVD-1))
}
