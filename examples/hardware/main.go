// Hardware: per-target adaptation study. Transforms one application once
// and generates selection logics for all three hardware targets, showing
// how Kodan trades precision for execution time as compute shrinks: on the
// 1070 Ti it keeps precise fine tilings and runs models everywhere; on the
// Orin it tiles coarsely and elides near-pure contexts to meet the frame
// deadline (the behavior behind Figures 8, 9, 14, and 15).
//
// Run with:
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"
	"time"

	"kodan"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	mission, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}

	cfg := kodan.DefaultTransformConfig(5)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := sys.Transform(5) // resnet50-upernet
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %v\n", app.Arch())
	fmt.Printf("frame deadline: %.1f s\n\n", mission.FrameDeadline.Seconds())

	for _, target := range kodan.Targets() {
		d := mission.Deployment(target)
		logic, est := app.SelectionLogic(d)
		bent := app.BentPipe(d)

		elided := 0
		for _, a := range logic.Actions {
			if a == kodan.Discard || a == kodan.Downlink {
				elided++
			}
		}
		fmt.Printf("%v:\n", target)
		fmt.Printf("  per-tile model time: %.0f ms\n", app.Arch().PerTileMs[target])
		fmt.Printf("  chosen tiling:       %v\n", logic.Tiling)
		fmt.Printf("  elided contexts:     %d of %d\n", elided, len(logic.Actions))
		fmt.Printf("  frame time:          %.1f s (deadline met: %v)\n",
			est.FrameTime.Seconds(), est.FrameTime <= mission.FrameDeadline)
		fmt.Printf("  DVD:                 %.3f (%+.0f%% over bent pipe)\n\n",
			est.DVD, 100*(est.DVD/bent.DVD-1))
	}
}
