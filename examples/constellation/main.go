// Constellation: a sizing study over the space and ground segments. Sweeps
// the constellation population and reports observation growth, downlink
// saturation, and daily grid coverage — the phenomena behind the paper's
// Figures 2 and 3 — and then shows how Kodan shrinks the population needed
// for full ground-track processing coverage (Figure 11).
//
// Run with:
//
//	go run ./examples/constellation
package main

import (
	"fmt"
	"log"
	"time"

	"kodan"
	"kodan/internal/policy"
	"kodan/internal/sim"
	"kodan/internal/wrs"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

	fmt.Println("constellation sweep (one day per point):")
	fmt.Printf("%5s %10s %10s %10s %10s\n", "Sats", "Observed", "Downlink", "DownFrac", "Coverage")
	grid := wrs.Landsat8Grid()
	for _, n := range []int{1, 4, 8, 16, 32} {
		res, err := sim.Run(sim.Landsat8Config(epoch, 24*time.Hour, n))
		if err != nil {
			log.Fatal(err)
		}
		obs := res.FramesObserved()
		cap := res.FrameCapacity()
		fmt.Printf("%5d %10d %10.0f %9.1f%% %9.1f%%\n",
			n, obs, cap, 100*cap/float64(obs),
			100*float64(res.UniqueScenes())/float64(grid.TotalScenes()))
	}
	fmt.Println("\nnote the downlink fraction falling as the segment saturates:")
	fmt.Println("added satellites observe more but cannot downlink more (Figure 2).")

	// Kodan's effect on constellation sizing: how many satellites does
	// continuous ground-track processing take?
	mission, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}
	cfg := kodan.DefaultTransformConfig(11)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsatellites for full ground-track coverage on %v (deadline %.1f s):\n",
		kodan.Orin15W, mission.FrameDeadline.Seconds())
	fmt.Printf("%-6s %12s %12s %10s\n", "App", "DirectSats", "KodanSats", "Reduction")
	d := mission.Deployment(kodan.Orin15W)
	for _, idx := range []int{1, 4, 7} {
		app, err := sys.Transform(idx)
		if err != nil {
			log.Fatal(err)
		}
		direct, err := app.DirectDeploy(d, kodan.Tiling{PerSide: 11})
		if err != nil {
			log.Fatal(err)
		}
		_, kodanEst := app.SelectionLogic(d)
		ds := policy.SatellitesForCoverage(direct.FrameTime, mission.FrameDeadline)
		ks := policy.SatellitesForCoverage(kodanEst.FrameTime, mission.FrameDeadline)
		fmt.Printf("App %-2d %12d %12d %9.1fx\n", idx, ds, ks, float64(ds)/float64(ks))
	}
}
