package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kodan/internal/experiments"
)

func TestSelectGeneratorsUnknownNameErrors(t *testing.T) {
	gens := generators(experiments.NewLab(experiments.Quick))
	_, err := selectGenerators(gens, "fig7")
	if err == nil {
		t.Fatal("unknown figure name accepted")
	}
	if !strings.Contains(err.Error(), "fig7") {
		t.Errorf("error %q does not name the bad key", err)
	}
	if !strings.Contains(err.Error(), "table1") || !strings.Contains(err.Error(), "fig15") {
		t.Errorf("error %q does not list the valid keys", err)
	}
}

func TestSelectGeneratorsFilters(t *testing.T) {
	gens := generators(experiments.NewLab(experiments.Quick))

	sel, err := selectGenerators(gens, " fig9 , table1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d generators, want 2", len(sel))
	}
	// Report order is preserved regardless of the -only order.
	if sel[0].key != "table1" || sel[1].key != "fig9" {
		t.Errorf("selected keys %q, %q; want table1, fig9", sel[0].key, sel[1].key)
	}

	all, err := selectGenerators(gens, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(gens) {
		t.Errorf("empty -only selected %d of %d generators", len(all), len(gens))
	}
}

func TestGeneratorKeysAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range generators(experiments.NewLab(experiments.Quick)) {
		if seen[g.key] {
			t.Errorf("duplicate generator key %q", g.key)
		}
		seen[g.key] = true
	}
}

// TestTable1Generator runs the one generator that needs no lab work
// end to end: rendered output plus exportable rows.
func TestTable1Generator(t *testing.T) {
	gens, err := selectGenerators(generators(experiments.NewLab(experiments.Quick)), "table1")
	if err != nil {
		t.Fatal(err)
	}
	out, rows, err := gens[0].gen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("render missing title:\n%s", out)
	}
	if rows == nil {
		t.Error("generator returned no rows for export")
	}
}

func writeTimings(t *testing.T, path string, r experiments.TimingReport) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := experiments.WriteTimingReport(f, r); err != nil {
		t.Fatal(err)
	}
}

// TestCheckBaseline covers the perf-regression gate end to end at the
// command layer: clean pass, injected synthetic regression (negative
// threshold), and unreadable baseline.
func TestCheckBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	rep := experiments.TimingReport{
		Size: "quick", Parallel: 1,
		Figures: []experiments.FigureTiming{{Key: "fig2", WallSeconds: 1.0}},
	}
	writeTimings(t, baseline, rep)

	// Identical run, generous threshold: clean.
	rendered, failed, err := checkBaseline(baseline, rep, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("identical run flagged as regression:\n%s", rendered)
	}
	if !strings.Contains(rendered, "no regressions") {
		t.Errorf("clean comparison render = %q", rendered)
	}

	// Synthetic regression via negative threshold: every figure fails —
	// this is the switch `make bench-check`'s own gate test flips to prove
	// the nonzero exit without slowing real code.
	rendered, failed, err = checkBaseline(baseline, rep, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("negative threshold did not inject a regression")
	}
	if !strings.Contains(rendered, "fig2") {
		t.Errorf("regression render does not name the figure: %q", rendered)
	}

	// A genuinely slower current run fails at the default threshold.
	slow := rep
	slow.Figures = []experiments.FigureTiming{{Key: "fig2", WallSeconds: 2.0}}
	if _, failed, err = checkBaseline(baseline, slow, 0.5); err != nil || !failed {
		t.Fatalf("2x slowdown: failed=%v err=%v, want failure", failed, err)
	}

	// Missing baseline is an error, not a silent pass.
	if _, _, err = checkBaseline(filepath.Join(dir, "absent.json"), rep, 0.5); err == nil {
		t.Fatal("missing baseline file did not error")
	}

	// Shape mismatch is an error.
	other := rep
	other.Parallel = 8
	if _, _, err = checkBaseline(baseline, other, 0.5); err == nil {
		t.Fatal("shape mismatch did not error")
	}
}

// TestValidateFlags covers the contradictory-combination rejections and
// the combinations that must stay legal (verify.sh uses -baseline without
// -timings).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		explicitly map[string]bool
		baseline   string
		timings    string
		parallel   int
		wantErr    string
	}{
		{"defaults", nil, "", "", 0, ""},
		{"baseline without timings is legal", nil, "b.json", "", 0, ""},
		{"explicit threshold with baseline is legal",
			map[string]bool{"regress-threshold": true}, "b.json", "", 0, ""},
		{"explicit threshold without baseline",
			map[string]bool{"regress-threshold": true}, "", "", 0, "-baseline"},
		{"baseline and timings same file", nil, "t.json", "t.json", 0, "same file"},
		{"distinct baseline and timings are legal", nil, "b.json", "t.json", 0, ""},
		{"negative parallel", nil, "", "", -2, "-parallel"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.explicitly, tc.baseline, tc.timings, tc.parallel)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: contradiction accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestResilienceGenerator runs the resilience sweep through the command's
// generator table at quick scale.
func TestResilienceGenerator(t *testing.T) {
	gens, err := selectGenerators(generators(experiments.NewLab(experiments.Quick)), "resilience")
	if err != nil {
		t.Fatal(err)
	}
	out, rows, err := gens[0].gen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Resilience sweep") {
		t.Errorf("render missing title:\n%s", out)
	}
	if rows == nil {
		t.Error("generator returned no rows for export")
	}
}

// TestHybridPlanGenerator runs the hybrid planning sweep through the
// command's generator table at quick scale.
func TestHybridPlanGenerator(t *testing.T) {
	gens, err := selectGenerators(generators(experiments.NewLab(experiments.Quick)), "hybridplan")
	if err != nil {
		t.Fatal(err)
	}
	out, rows, err := gens[0].gen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Hybrid plan sweep") {
		t.Errorf("render missing title:\n%s", out)
	}
	if rows == nil {
		t.Error("generator returned no rows for export")
	}
}
