package main

import (
	"context"
	"strings"
	"testing"

	"kodan/internal/experiments"
)

func TestSelectGeneratorsUnknownNameErrors(t *testing.T) {
	gens := generators(experiments.NewLab(experiments.Quick))
	_, err := selectGenerators(gens, "fig7")
	if err == nil {
		t.Fatal("unknown figure name accepted")
	}
	if !strings.Contains(err.Error(), "fig7") {
		t.Errorf("error %q does not name the bad key", err)
	}
	if !strings.Contains(err.Error(), "table1") || !strings.Contains(err.Error(), "fig15") {
		t.Errorf("error %q does not list the valid keys", err)
	}
}

func TestSelectGeneratorsFilters(t *testing.T) {
	gens := generators(experiments.NewLab(experiments.Quick))

	sel, err := selectGenerators(gens, " fig9 , table1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d generators, want 2", len(sel))
	}
	// Report order is preserved regardless of the -only order.
	if sel[0].key != "table1" || sel[1].key != "fig9" {
		t.Errorf("selected keys %q, %q; want table1, fig9", sel[0].key, sel[1].key)
	}

	all, err := selectGenerators(gens, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(gens) {
		t.Errorf("empty -only selected %d of %d generators", len(all), len(gens))
	}
}

func TestGeneratorKeysAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range generators(experiments.NewLab(experiments.Quick)) {
		if seen[g.key] {
			t.Errorf("duplicate generator key %q", g.key)
		}
		seen[g.key] = true
	}
}

// TestTable1Generator runs the one generator that needs no lab work
// end to end: rendered output plus exportable rows.
func TestTable1Generator(t *testing.T) {
	gens, err := selectGenerators(generators(experiments.NewLab(experiments.Quick)), "table1")
	if err != nil {
		t.Fatal(err)
	}
	out, rows, err := gens[0].gen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("render missing title:\n%s", out)
	}
	if rows == nil {
		t.Error("generator returned no rows for export")
	}
}
