// Command kodan-bench regenerates every table and figure of the paper's
// evaluation and prints the rows the paper reports. By default it runs the
// full-size experiments (the same scale as the repository's benchmark
// suite); -size=quick runs the down-sized variant used by unit tests.
//
// Usage:
//
//	kodan-bench [-size full|quick] [-only table1,fig2,...] [-csv DIR] [-json DIR]
//
// -csv writes one <figure>.csv per selected table/figure; -json writes one
// BENCH_<figure>.json (an array of row objects) for machine consumption.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kodan/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-bench: ")
	sizeFlag := flag.String("size", "full", "experiment scale: full or quick")
	onlyFlag := flag.String("only", "", "comma-separated subset (table1,fig2,...,fig15,ablation-k,ablation-source)")
	csvDir := flag.String("csv", "", "also write per-figure CSV files to this directory")
	jsonDir := flag.String("json", "", "also write one BENCH_<figure>.json per table/figure to this directory")
	flag.Parse()

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	size := experiments.Full
	switch *sizeFlag {
	case "full":
	case "quick":
		size = experiments.Quick
	default:
		log.Fatalf("unknown -size %q", *sizeFlag)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, k := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	lab := experiments.NewLab(size)
	start := time.Now()

	writeCSV := func(key string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, key+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, rows); err != nil {
			log.Fatalf("%s: %v", key, err)
		}
	}

	writeJSON := func(key string, rows interface{}) {
		if *jsonDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*jsonDir, "BENCH_"+key+".json"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteJSON(f, rows); err != nil {
			log.Fatalf("%s: %v", key, err)
		}
	}

	run := func(key string, gen func() (string, interface{}, error)) {
		if !selected(key) {
			return
		}
		t0 := time.Now()
		out, rows, err := gen()
		if err != nil {
			log.Fatalf("%s: %v", key, err)
		}
		fmt.Println(out)
		writeCSV(key, rows)
		writeJSON(key, rows)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", key, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() (string, interface{}, error) {
		rows := experiments.Table1()
		return experiments.RenderTable1(rows), rows, nil
	})
	run("fig2", func() (string, interface{}, error) {
		rows, err := lab.Figure2(lab.SatCounts())
		return experiments.RenderFigure2(rows), rows, err
	})
	run("fig3", func() (string, interface{}, error) {
		rows, err := lab.Figure3(lab.SatCounts())
		return experiments.RenderFigure3(rows), rows, err
	})
	run("fig4", func() (string, interface{}, error) {
		rows, err := lab.Figure4()
		return experiments.RenderFigure4(rows), rows, err
	})
	run("fig5", func() (string, interface{}, error) {
		rows, err := lab.Figure5(lab.SatCounts())
		return experiments.RenderFigure5(rows), rows, err
	})
	run("fig8", func() (string, interface{}, error) {
		rows, err := lab.Figure8()
		if err != nil {
			return "", nil, err
		}
		lo, hi := experiments.Headline(rows)
		return experiments.RenderFigure8(rows) +
			fmt.Sprintf("headline: Kodan improves DVD %.0f%%..%.0f%% over the bent pipe (paper: 89-97%%)\n",
				lo*100, hi*100), rows, nil
	})
	run("fig9", func() (string, interface{}, error) {
		rows, err := lab.Figure9()
		return experiments.RenderFigure9(rows), rows, err
	})
	run("fig10", func() (string, interface{}, error) {
		pts, err := lab.Figure10()
		return experiments.RenderFigure10(pts), pts, err
	})
	run("fig11", func() (string, interface{}, error) {
		rows, err := lab.Figure11()
		return experiments.RenderFigure11(rows), rows, err
	})
	run("fig12", func() (string, interface{}, error) {
		rows, err := lab.Figure12()
		return experiments.RenderFigure12(rows), rows, err
	})
	run("fig13", func() (string, interface{}, error) {
		rows, err := lab.Figure13()
		return experiments.RenderFigure13(rows), rows, err
	})
	run("fig14", func() (string, interface{}, error) {
		rows, err := lab.Figure14()
		return experiments.RenderFigure14(rows), rows, err
	})
	run("fig15", func() (string, interface{}, error) {
		rows, err := lab.Figure15()
		return experiments.RenderFigure15(rows), rows, err
	})
	run("ablation-k", func() (string, interface{}, error) {
		ks := []int{2, 4, 6, 8, 10}
		if size == experiments.Quick {
			ks = []int{2, 6}
		}
		rows, err := lab.AblationContextCount(ks)
		return experiments.RenderAblationContextCount(rows), rows, err
	})
	run("ablation-source", func() (string, interface{}, error) {
		rows, err := lab.AblationContextSource()
		return experiments.RenderAblationContextSource(rows), rows, err
	})

	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
