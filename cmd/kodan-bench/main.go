// Command kodan-bench regenerates every table and figure of the paper's
// evaluation and prints the rows the paper reports. By default it runs the
// full-size experiments (the same scale as the repository's benchmark
// suite); -size=quick runs the down-sized variant used by unit tests.
//
// Usage:
//
//	kodan-bench [-size full|quick] [-parallel N] [-only table1,fig2,...] [-csv DIR] [-json DIR]
//	            [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//	            [-timings FILE] [-baseline FILE] [-regress-threshold 0.5] [-v]
//
// -parallel bounds the evaluation worker pool (0 = GOMAXPROCS, 1 =
// sequential); every setting produces byte-identical output. -csv writes
// one <figure>.csv per selected table/figure; -json writes one
// BENCH_<figure>.json (an array of row objects) for machine consumption.
//
// -trace records a span trace of the run (one span per figure, with the
// transformation, simulation, and policy-sweep phases nested inside) as
// JSONL and prints an end-of-run summary to stderr; -cpuprofile and
// -memprofile write pprof profiles. Telemetry goes to its files and
// stderr only — stdout (the figures) stays byte-identical with or
// without it, at every -parallel setting.
//
// -timings records per-figure wall times as a JSON timing report;
// -baseline compares this run against a previously recorded report and
// exits nonzero when any figure regressed beyond -regress-threshold (the
// perf-regression gate `make bench-check` drives; bench/ holds the
// committed trajectory). -v emits structured slog debug lines from the
// instrumented layers to stderr.
//
// Contradictory flag combinations are rejected before any work starts:
// -regress-threshold without -baseline, -baseline and -timings naming the
// same file, and a negative -parallel are all usage errors.
//
// The "resilience" figure sweeps injected fault intensity (station
// outages, link fades, sensor dropouts, satellite resets; see
// internal/fault) and reports downlinked value retained versus the
// fault-free baseline.
//
// The "serving" figure is the one exception to byte-identical output: it
// load-tests a live server (baseline vs sharded+batched serving over the
// same deterministic request stream), so its throughput and latency
// columns are measured wall-clock values that vary run to run. Its
// request accounting and response byte-identity columns are
// deterministic.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"kodan/internal/experiments"
	"kodan/internal/loadgen"
	"kodan/internal/telemetry"
)

// generator produces one table or figure: the rendered text plus the typed
// rows for CSV/JSON export.
type generator struct {
	key string
	gen func(ctx context.Context) (string, interface{}, error)
}

// generators lists every table and figure in report order.
func generators(lab *experiments.Lab) []generator {
	return []generator{
		{"table1", func(context.Context) (string, interface{}, error) {
			rows := experiments.Table1()
			return experiments.RenderTable1(rows), rows, nil
		}},
		{"fig2", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure2Ctx(ctx, lab.SatCounts())
			return experiments.RenderFigure2(rows), rows, err
		}},
		{"fig3", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure3Ctx(ctx, lab.SatCounts())
			return experiments.RenderFigure3(rows), rows, err
		}},
		{"fig4", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure4Ctx(ctx)
			return experiments.RenderFigure4(rows), rows, err
		}},
		{"fig5", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure5Ctx(ctx, lab.SatCounts())
			return experiments.RenderFigure5(rows), rows, err
		}},
		{"fig8", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure8Ctx(ctx)
			if err != nil {
				return "", nil, err
			}
			lo, hi := experiments.Headline(rows)
			return experiments.RenderFigure8(rows) +
				fmt.Sprintf("headline: Kodan improves DVD %.0f%%..%.0f%% over the bent pipe (paper: 89-97%%)\n",
					lo*100, hi*100), rows, nil
		}},
		{"fig8q", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure8QuantizedCtx(ctx)
			return experiments.RenderFigure8Quantized(rows), rows, err
		}},
		{"fig9", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure9Ctx(ctx)
			return experiments.RenderFigure9(rows), rows, err
		}},
		{"fig10", func(ctx context.Context) (string, interface{}, error) {
			pts, err := lab.Figure10Ctx(ctx)
			return experiments.RenderFigure10(pts), pts, err
		}},
		{"fig11", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure11Ctx(ctx)
			return experiments.RenderFigure11(rows), rows, err
		}},
		{"fig12", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure12Ctx(ctx)
			return experiments.RenderFigure12(rows), rows, err
		}},
		{"fig13", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure13Ctx(ctx)
			return experiments.RenderFigure13(rows), rows, err
		}},
		{"fig14", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure14Ctx(ctx)
			return experiments.RenderFigure14(rows), rows, err
		}},
		{"fig15", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.Figure15Ctx(ctx)
			return experiments.RenderFigure15(rows), rows, err
		}},
		{"ablation-k", func(ctx context.Context) (string, interface{}, error) {
			ks := []int{2, 4, 6, 8, 10}
			if lab.Size == experiments.Quick {
				ks = []int{2, 6}
			}
			rows, err := lab.AblationContextCountCtx(ctx, ks)
			return experiments.RenderAblationContextCount(rows), rows, err
		}},
		{"ablation-source", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.AblationContextSourceCtx(ctx)
			return experiments.RenderAblationContextSource(rows), rows, err
		}},
		{"resilience", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.ResilienceSweepCtx(ctx)
			return experiments.RenderResilience(rows), rows, err
		}},
		{"hybridplan", func(ctx context.Context) (string, interface{}, error) {
			rows, err := lab.HybridPlanSweepCtx(ctx)
			return experiments.RenderHybridPlan(rows), rows, err
		}},
		{"serving", func(ctx context.Context) (string, interface{}, error) {
			rows, err := loadgen.ServingSweep(ctx, lab.Size == experiments.Full)
			return loadgen.RenderServing(rows), rows, err
		}},
	}
}

// validateFlags rejects contradictory flag combinations up front, before
// any expensive work starts. explicitly reports which flags the user set
// on the command line (flag defaults are not contradictions).
func validateFlags(explicitly map[string]bool, baseline, timings string, parallel int) error {
	if explicitly["regress-threshold"] && baseline == "" {
		return fmt.Errorf("-regress-threshold has no effect without -baseline")
	}
	if baseline != "" && timings != "" && baseline == timings {
		return fmt.Errorf("-baseline and -timings point at the same file %q: the baseline would be overwritten before the comparison", baseline)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS), got %d", parallel)
	}
	return nil
}

// selectGenerators filters the table by a comma-separated -only value,
// preserving report order. An unknown name is an error listing the valid
// keys — silently producing no output would mask typos like "fig7".
func selectGenerators(gens []generator, only string) ([]generator, error) {
	if strings.TrimSpace(only) == "" {
		return gens, nil
	}
	want := map[string]bool{}
	for _, k := range strings.Split(only, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		found := false
		for _, g := range gens {
			if g.key == k {
				found = true
				break
			}
		}
		if !found {
			keys := make([]string, len(gens))
			for i, g := range gens {
				keys[i] = g.key
			}
			return nil, fmt.Errorf("unknown figure %q in -only; valid names: %s", k, strings.Join(keys, ", "))
		}
		want[k] = true
	}
	var out []generator
	for _, g := range gens {
		if want[g.key] {
			out = append(out, g)
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-bench: ")
	sizeFlag := flag.String("size", "full", "experiment scale: full or quick")
	onlyFlag := flag.String("only", "", "comma-separated subset (table1,fig2,...,fig15,ablation-k,ablation-source,resilience,hybridplan,serving)")
	parallelFlag := flag.Int("parallel", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	csvDir := flag.String("csv", "", "also write per-figure CSV files to this directory")
	jsonDir := flag.String("json", "", "also write one BENCH_<figure>.json per table/figure to this directory")
	traceFile := flag.String("trace", "", "write a JSONL span trace to this file and print a summary to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	timingsFile := flag.String("timings", "", "write this run's per-figure wall times as a timing report (JSON)")
	baselineFile := flag.String("baseline", "", "compare per-figure wall times against this timing report and exit nonzero on a regression")
	regressThreshold := flag.Float64("regress-threshold", 0.5, "with -baseline: fail when a figure is more than this fraction slower (0.5 = +50%)")
	verbose := flag.Bool("v", false, "structured debug logs (slog) to stderr")
	flag.Parse()

	explicitly := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitly[f.Name] = true })
	if err := validateFlags(explicitly, *baselineFile, *timingsFile, *parallelFlag); err != nil {
		log.Fatal(err)
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	size := experiments.Full
	switch *sizeFlag {
	case "full":
	case "quick":
		size = experiments.Quick
	default:
		log.Fatalf("unknown -size %q", *sizeFlag)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *verbose {
		ctx = telemetry.WithLogger(ctx, slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}

	stopProfile, err := telemetry.StartProfiling(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer(0)
		ctx = telemetry.WithProbe(ctx, telemetry.Probe{Trace: tracer})
	}

	lab := experiments.NewLab(size)
	lab.Workers = *parallelFlag

	gens, err := selectGenerators(generators(lab), *onlyFlag)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()

	writeCSV := func(key string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, key+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, rows); err != nil {
			log.Fatalf("%s: %v", key, err)
		}
	}

	writeJSON := func(key string, rows interface{}) {
		if *jsonDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*jsonDir, "BENCH_"+key+".json"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteJSON(f, rows); err != nil {
			log.Fatalf("%s: %v", key, err)
		}
	}

	report := experiments.TimingReport{Size: *sizeFlag, Parallel: *parallelFlag}
	for _, g := range gens {
		t0 := time.Now()
		out, rows, err := g.gen(ctx)
		if err != nil {
			log.Fatalf("%s: %v", g.key, err)
		}
		took := time.Since(t0)
		fmt.Println(out)
		writeCSV(g.key, rows)
		writeJSON(g.key, rows)
		report.Figures = append(report.Figures, experiments.FigureTiming{Key: g.key, WallSeconds: took.Seconds()})
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", g.key, took.Round(time.Millisecond))
	}

	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))

	if perr := stopProfile(); perr != nil {
		log.Printf("profiling: %v", perr)
	}
	if tracer != nil {
		if werr := telemetry.WriteTraceFile(tracer, *traceFile); werr != nil {
			log.Fatal(werr)
		}
		fmt.Fprint(os.Stderr, telemetry.Summarize(tracer, 10).Render())
	}

	if *timingsFile != "" {
		f, err := os.Create(*timingsFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteTimingReport(f, report); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *baselineFile != "" {
		rendered, failed, err := checkBaseline(*baselineFile, report, *regressThreshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(os.Stderr, rendered)
		if failed {
			os.Exit(1)
		}
	}
}

// checkBaseline compares this run's timing report against the baseline
// file. It returns the rendered comparison and whether the run regressed.
func checkBaseline(path string, current experiments.TimingReport, threshold float64) (string, bool, error) {
	baseline, err := experiments.ReadTimingReport(path)
	if err != nil {
		return "", false, err
	}
	regressions, skipped, err := experiments.CompareTimings(baseline, current, threshold)
	if err != nil {
		return "", false, err
	}
	return experiments.RenderTimingComparison(regressions, skipped, threshold), len(regressions) > 0, nil
}
