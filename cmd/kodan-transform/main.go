// Command kodan-transform runs Kodan's one-time transformation step for
// one application and deployment target and prints the generated selection
// logic: the chosen frame tiling and the per-context action table of
// Figure 7, together with the expected frame time and data value density.
//
// Usage:
//
//	kodan-transform [-app 4] [-target orin|i7|1070ti] [-seed 2023] [-frames 120] [-quantized] [-bundle out.json] [-trace FILE]
//
// -quantized derives int8 twins of every trained model and routes all
// suite predictions — the quality measurement the selection logic prices
// included — through the quantized hot path. Training stays float, so the
// flag isolates exactly the inference-path change.
//
// -trace records a JSONL span trace of the transformation (workspace
// preparation, per-tiling training and measurement, nn.train/nn.infer
// stages with their variant attributes) for kodan-trace; diffing a float
// run against a -quantized run attributes the speedup per phase.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"kodan"
	"kodan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-transform: ")
	appIdx := flag.Int("app", 4, "application index (1-7, Table 1)")
	targetFlag := flag.String("target", "orin", "hardware target: 1070ti, i7, or orin")
	seed := flag.Uint64("seed", 2023, "transformation seed")
	frames := flag.Int("frames", 120, "representative dataset size in frames")
	quantized := flag.Bool("quantized", false, "measure and deploy the int8 quantized inference path")
	bundleOut := flag.String("bundle", "", "write the deployment bundle (JSON) to this path")
	traceFile := flag.String("trace", "", "write a JSONL span trace to this file and print a summary to stderr")
	flag.Parse()

	var target kodan.Target
	switch *targetFlag {
	case "1070ti":
		target = kodan.GTX1070Ti
	case "i7":
		target = kodan.I7_7800X
	case "orin":
		target = kodan.Orin15W
	default:
		log.Fatalf("unknown -target %q", *targetFlag)
	}

	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	fmt.Println("simulating the Landsat 8 mission (orbit, grid, ground segment)...")
	mission, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  frame deadline: %.1f s   frames/day: %.0f   downlink: %.1f%% of observations\n\n",
		mission.FrameDeadline.Seconds(), mission.FramesPerDay, 100*mission.CapacityFrac)

	cfg := kodan.DefaultTransformConfig(*seed)
	cfg.Frames = *frames
	fmt.Printf("rendering the representative dataset and generating contexts (%d frames)...\n", cfg.Frames)
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d contexts:\n", sys.ContextCount())
	for i, c := range sys.Contexts() {
		fmt.Printf("    C%d %-18s tiles=%-4d high-value=%.2f\n", i, c.Name, c.Count, c.HighValueFrac)
	}

	variant := "float"
	if *quantized {
		variant = "int8 quantized"
	}
	ctx := context.Background()
	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer(0)
		ctx = telemetry.WithProbe(ctx, telemetry.Probe{Trace: tracer})
	}

	fmt.Printf("\ntraining and measuring App %d across tilings (%s inference)...\n", *appIdx, variant)
	app, err := sys.TransformVariantCtx(ctx, *appIdx, *quantized)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if werr := telemetry.WriteTraceFile(tracer, *traceFile); werr != nil {
			log.Fatal(werr)
		}
		fmt.Fprint(os.Stderr, telemetry.Summarize(tracer, 10).Render())
	}

	d := mission.Deployment(target)
	logic, est := app.SelectionLogic(d)
	bent := app.BentPipe(d)

	fmt.Printf("\nselection logic for %v on %v:\n", app.Arch(), target)
	fmt.Printf("  frame tiling: %v\n", logic.Tiling)
	for c, a := range logic.Actions {
		fmt.Printf("  C%d %-18s -> %v\n", c, sys.Contexts()[c].Name, a)
	}
	fmt.Printf("\nexpected frame time: %.1f s (deadline %.1f s, processed %.0f%%)\n",
		est.FrameTime.Seconds(), mission.FrameDeadline.Seconds(), 100*est.ProcessedFrac)
	fmt.Printf("expected DVD: %.3f (bent pipe %.3f, %+.0f%%)\n",
		est.DVD, bent.DVD, 100*(est.DVD/bent.DVD-1))

	if *bundleOut != "" {
		f, err := os.Create(*bundleOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := app.ExportBundle(f, d, logic, est); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote deployment bundle to %s\n", *bundleOut)
	}
}
