// Command kodan-loadgen drives the serving plane with a deterministic
// seeded multi-tenant request stream and reports throughput, latency
// percentiles, admission rejections, and weighted fairness. By default it
// self-hosts a stub-pipeline server (real serving plane — sharded cache,
// admission, batching, worker pool — over a synthetic compute-cost
// model), so the serving stack can be load-tested hermetically; -url
// points it at an already-running kodan-server instead.
//
// Usage:
//
//	kodan-loadgen [-requests 200] [-concurrency 8] [-rate 0] [-seed 1]
//	              [-tenants name:weight[:share],...] [-apps 1,2,3] [-seed-pool 1,2]
//	              [-shards 4] [-cache-entries 1024] [-batch-window 0] [-batch-max 8]
//	              [-workers 4] [-queue 32] [-work-fixed 20ms] [-work-marginal 5ms]
//	              [-tenant-rate 0] [-tenant-burst 0]
//	              [-max-error-rate 0.01] [-min-fairness 0.5]
//	              [-compare] [-json] [-url http://host:8080]
//
// -compare runs the same stream twice against the self-hosted stub — a
// baseline (single cache shard, no batching) and the tuned configuration
// from the flags — verifies the responses are byte-identical, and reports
// both with the throughput ratio. The stream is a pure function of -seed,
// so runs are reproducible and cross-configuration comparisons are
// apples-to-apples.
//
// Exit status: 0 on success; 1 when a gate fails (error rate above
// -max-error-rate, fairness below -min-fairness, or -compare digests
// diverging); 2 on usage errors. CI uses this as the serving smoke test.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kodan/internal/loadgen"
	"kodan/internal/server"
)

// parseTenants reads "name:weight[:share]" comma-separated specs.
func parseTenants(s string) ([]loadgen.TenantSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []loadgen.TenantSpec
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("tenant spec %q: empty name", item)
		}
		spec := loadgen.TenantSpec{Name: parts[0], Weight: 1, Share: 1}
		if len(parts) > 3 {
			return nil, fmt.Errorf("tenant spec %q: want name:weight[:share]", item)
		}
		if len(parts) >= 2 {
			w, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("tenant spec %q: bad weight", item)
			}
			spec.Weight = w
			spec.Share = w // offered load tracks weight unless overridden
		}
		if len(parts) == 3 {
			sh, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || sh <= 0 {
				return nil, fmt.Errorf("tenant spec %q: bad share", item)
			}
			spec.Share = sh
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		n, err := strconv.Atoi(item)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", item)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		n, err := strconv.ParseUint(item, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", item)
		}
		out = append(out, n)
	}
	return out, nil
}

// stubServer boots a self-hosted stub-pipeline server on a loopback port
// and returns its base URL plus a shutdown func.
func stubServer(cfg server.Config) (string, func(), error) {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck // shutdown path below owns the error
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx) //nolint:errcheck // best-effort drain
		cancel()
		s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// render prints one run's report as a human-readable block.
func render(label string, rep *loadgen.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	fmt.Fprintf(&b, "  requests   %d (completed %d, rejected %d, errors %d)\n",
		rep.Requests, rep.Completed, rep.Rejected, rep.Errors)
	fmt.Fprintf(&b, "  throughput %.1f req/s over %.2fs\n", rep.ThroughputRPS, rep.DurationSec)
	fmt.Fprintf(&b, "  latency    p50 %.1fms  p99 %.1fms\n", rep.P50Ms, rep.P99Ms)
	fmt.Fprintf(&b, "  fairness   %.3f (Jain, weight-normalized)\n", rep.Fairness)
	names := make([]string, 0, len(rep.Tenants))
	for name := range rep.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := rep.Tenants[name]
		if ts.Requests == 0 {
			continue
		}
		display := name
		if display == "" {
			display = "(anon)"
		}
		fmt.Fprintf(&b, "  tenant %-12s w=%.1f  sent %d  ok %d  429 %d  err %d\n",
			display, ts.Weight, ts.Requests, ts.Completed, ts.Rejected, ts.Errors)
	}
	return b.String()
}

// gates returns the failed acceptance gates for a report.
func gates(rep *loadgen.Report, maxErrorRate, minFairness float64) []string {
	var failed []string
	if rep.ErrorRate > maxErrorRate {
		failed = append(failed, fmt.Sprintf("error rate %.4f above gate %.4f", rep.ErrorRate, maxErrorRate))
	}
	if rep.Fairness < minFairness {
		failed = append(failed, fmt.Sprintf("fairness %.3f below gate %.3f", rep.Fairness, minFairness))
	}
	if rep.Completed == 0 {
		failed = append(failed, "no requests completed")
	}
	return failed
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-loadgen: ")

	requests := flag.Int("requests", 200, "total requests in the stream")
	concurrency := flag.Int("concurrency", 8, "closed-loop in-flight bound")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	seed := flag.Uint64("seed", 1, "stream seed (fixes tenants/keys/arrivals)")
	tenantsFlag := flag.String("tenants", "", "tenant mix as name:weight[:share],... (empty = one anonymous tenant)")
	appsFlag := flag.String("apps", "1,2,3", "application-index pool")
	seedPoolFlag := flag.String("seed-pool", "1,2", "transform-seed pool (cache keys = seeds x apps)")
	urlFlag := flag.String("url", "", "target an external server instead of self-hosting the stub")

	shards := flag.Int("shards", 4, "stub server: cache shard count")
	cacheEntries := flag.Int("cache-entries", 1024, "stub server: completed cache entries bound (-1 = unbounded)")
	batchWindow := flag.Duration("batch-window", 25*time.Millisecond, "stub server: batching window (0 = batching off)")
	batchMax := flag.Int("batch-max", 8, "stub server: max members per batch")
	workers := flag.Int("workers", 4, "stub server: transform workers")
	queue := flag.Int("queue", 32, "stub server: per-tenant wait-queue depth")
	workFixed := flag.Duration("work-fixed", 20*time.Millisecond, "stub cost model: per-pass overhead (amortized by batching)")
	workMarginal := flag.Duration("work-marginal", 5*time.Millisecond, "stub cost model: per-app compute")
	tenantRate := flag.Float64("tenant-rate", 0, "stub server: per-tenant admission rate in req/s (0 = off)")
	tenantBurst := flag.Float64("tenant-burst", 0, "stub server: per-tenant admission burst (0 = 2x rate)")

	maxErrorRate := flag.Float64("max-error-rate", 0.01, "gate: fail when error rate exceeds this")
	minFairness := flag.Float64("min-fairness", 0.5, "gate: fail when Jain fairness falls below this")
	compare := flag.Bool("compare", false, "also run a single-shard/no-batch baseline over the same stream and require byte-identical responses")
	jsonOut := flag.Bool("json", false, "emit the report(s) as JSON on stdout")
	flag.Parse()

	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	apps, err := parseInts(*appsFlag)
	if err != nil || len(apps) == 0 {
		log.Printf("-apps: %v", err)
		os.Exit(2)
	}
	seedPool, err := parseUints(*seedPoolFlag)
	if err != nil || len(seedPool) == 0 {
		log.Printf("-seed-pool: %v", err)
		os.Exit(2)
	}
	if *urlFlag != "" && *compare {
		log.Println("-compare needs the self-hosted stub (it reruns the stream under a different server config); drop -url")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := loadgen.Options{
		Seed:        *seed,
		Requests:    *requests,
		Concurrency: *concurrency,
		RatePerSec:  *rate,
		Tenants:     tenants,
		Apps:        apps,
		SeedPool:    seedPool,
	}

	// serverConfig assembles the stub server from the flags; baseline mode
	// collapses the cache to one shard and disables batching, keeping
	// everything else identical.
	serverConfig := func(baseline bool) (server.Config, error) {
		cfg, err := loadgen.StubConfig(loadgen.WorkModel{Fixed: *workFixed, Marginal: *workMarginal}, apps)
		if err != nil {
			return cfg, err
		}
		cfg.Workers = *workers
		cfg.QueueDepth = *queue
		cfg.CacheShards = *shards
		cfg.CacheEntries = *cacheEntries
		cfg.BatchWindow = *batchWindow
		cfg.BatchMax = *batchMax
		cfg.TenantRate = *tenantRate
		cfg.TenantBurst = *tenantBurst
		if len(tenants) > 0 {
			cfg.TenantWeights = make(map[string]float64, len(tenants))
			for _, tn := range tenants {
				cfg.TenantWeights[tn.Name] = tn.Weight
			}
		}
		if baseline {
			cfg.CacheShards = 1
			cfg.BatchWindow = 0
		}
		return cfg, nil
	}

	// runAgainst runs the stream against url (external or stub).
	runAgainst := func(url string) (*loadgen.Report, error) {
		o := opts
		o.BaseURL = url
		return loadgen.Run(ctx, o)
	}
	runStub := func(baseline bool) (*loadgen.Report, error) {
		cfg, err := serverConfig(baseline)
		if err != nil {
			return nil, err
		}
		url, shutdown, err := stubServer(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		return runAgainst(url)
	}

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			log.Println("interrupted")
			os.Exit(1)
		}
		log.Println(err)
		os.Exit(1)
	}

	var tuned, baseline *loadgen.Report
	switch {
	case *urlFlag != "":
		if tuned, err = runAgainst(*urlFlag); err != nil {
			fail(err)
		}
	case *compare:
		if baseline, err = runStub(true); err != nil {
			fail(err)
		}
		if tuned, err = runStub(false); err != nil {
			fail(err)
		}
	default:
		if tuned, err = runStub(false); err != nil {
			fail(err)
		}
	}

	failedGates := gates(tuned, *maxErrorRate, *minFairness)
	var digestErr error
	if baseline != nil {
		if digestErr = loadgen.CompareDigests(baseline, tuned); digestErr != nil {
			failedGates = append(failedGates, digestErr.Error())
		}
	}

	if *jsonOut {
		doc := map[string]interface{}{"tuned": tuned}
		if baseline != nil {
			doc["baseline"] = baseline
			doc["digestsIdentical"] = digestErr == nil
			if baseline.ThroughputRPS > 0 {
				doc["speedup"] = tuned.ThroughputRPS / baseline.ThroughputRPS
			}
		}
		doc["gatesFailed"] = failedGates
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fail(err)
		}
	} else {
		if baseline != nil {
			fmt.Print(render("baseline (1 shard, no batching)", baseline))
		}
		fmt.Print(render("tuned", tuned))
		if baseline != nil && baseline.ThroughputRPS > 0 {
			fmt.Printf("speedup: %.2fx throughput vs baseline; responses byte-identical: %t\n",
				tuned.ThroughputRPS/baseline.ThroughputRPS, digestErr == nil)
		}
	}

	if len(failedGates) > 0 {
		for _, g := range failedGates {
			log.Printf("GATE FAILED: %s", g)
		}
		os.Exit(1)
	}
}
