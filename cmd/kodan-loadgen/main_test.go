package main

import (
	"testing"

	"kodan/internal/loadgen"
)

func TestParseTenants(t *testing.T) {
	specs, err := parseTenants("ops:3,science:1:2, batch:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.TenantSpec{
		{Name: "ops", Weight: 3, Share: 3},
		{Name: "science", Weight: 1, Share: 2},
		{Name: "batch", Weight: 0.5, Share: 0.5},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d: got %+v, want %+v", i, specs[i], want[i])
		}
	}
	if specs, err := parseTenants(""); err != nil || specs != nil {
		t.Errorf("empty spec must mean default tenant mix, got %v, %v", specs, err)
	}
	for _, bad := range []string{":1", "a:b", "a:-1", "a:1:0", "a:1:2:3"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestParsePools(t *testing.T) {
	apps, err := parseInts("1, 2,3")
	if err != nil || len(apps) != 3 || apps[2] != 3 {
		t.Fatalf("parseInts: %v, %v", apps, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
	seeds, err := parseUints("7,8")
	if err != nil || len(seeds) != 2 || seeds[0] != 7 {
		t.Fatalf("parseUints: %v, %v", seeds, err)
	}
	if _, err := parseUints("-1"); err == nil {
		t.Error("parseUints accepted a negative seed")
	}
}

func TestGates(t *testing.T) {
	clean := &loadgen.Report{Requests: 10, Completed: 10, Fairness: 1}
	if failed := gates(clean, 0.01, 0.5); len(failed) != 0 {
		t.Errorf("clean run failed gates: %v", failed)
	}
	errors := &loadgen.Report{Requests: 10, Completed: 5, Errors: 5, ErrorRate: 0.5, Fairness: 1}
	if failed := gates(errors, 0.01, 0.5); len(failed) != 1 {
		t.Errorf("want exactly the error-rate gate, got %v", failed)
	}
	unfair := &loadgen.Report{Requests: 10, Completed: 10, Fairness: 0.3}
	if failed := gates(unfair, 0.01, 0.5); len(failed) != 1 {
		t.Errorf("want exactly the fairness gate, got %v", failed)
	}
	// 429s are backpressure: a run that completes nothing still fails, but
	// rejections alone do not trip the error-rate gate.
	starved := &loadgen.Report{Requests: 10, Rejected: 10, Fairness: 1}
	if failed := gates(starved, 0.01, 0.5); len(failed) != 1 {
		t.Errorf("want exactly the no-completions gate, got %v", failed)
	}
}
