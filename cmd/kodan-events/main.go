// kodan-events analyzes mission event journals exported by kodan-sim
// -events: per-satellite/per-type summaries, deterministic ASCII mission
// timelines with fault and contact overlays, a rule engine that flags
// mission-level anomalies, and deterministic two-journal diffs with
// per-cell attribution.
//
// Usage:
//
//	kodan-events summary FILE
//	kodan-events timeline [-width N] FILE
//	kodan-events anomalies [-starvation-frac X] [-gap-factor X]
//	                       [-gap-min DUR] [-corr-frac X] [-min-fault DUR] FILE
//	kodan-events diff FILE_A FILE_B
//
// All output is byte-deterministic for the same input file(s): the same
// journal always renders the same bytes, because journals are canonically
// ordered and every renderer is a pure function of the event set.
//
// anomalies exits 0 when the journal is clean, 2 when at least one rule
// fired, and 1 on error — so CI can assert that a seeded-fault run trips
// the engine while a fault-free run does not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kodan/internal/telemetry/events"
)

const usage = `usage:
  kodan-events summary FILE                 per-type and per-satellite event counts
  kodan-events timeline [-width N] FILE     ASCII mission timeline with fault/contact overlays
  kodan-events anomalies [flags] FILE       rule engine: starvation, saturation, gaps, fault correlation
                                            (exit 0 clean, 2 when findings exist)
  kodan-events diff FILE_A FILE_B           per-(type, scope) event-count delta with attribution
`

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kodan-events: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes one subcommand and returns the process exit code. Only
// the anomalies subcommand uses a non-zero success code (2 = findings).
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) == 0 {
		return 1, fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		evs, err := readOne(rest, cmd)
		if err != nil {
			return 1, err
		}
		_, err = io.WriteString(stdout, events.Summarize(evs).Render())
		return 0, err
	case "timeline":
		fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
		width := fs.Int("width", events.DefaultTimelineWidth, "timeline width in columns")
		if err := fs.Parse(rest); err != nil {
			return 1, err
		}
		evs, err := readOne(fs.Args(), cmd)
		if err != nil {
			return 1, err
		}
		_, err = io.WriteString(stdout, events.RenderTimeline(evs, *width))
		return 0, err
	case "anomalies":
		fs := flag.NewFlagSet("anomalies", flag.ContinueOnError)
		def := events.DefaultThresholds()
		starve := fs.Float64("starvation-frac", def.StarvationGapFrac,
			"flag a satellite whose longest grant-free stretch exceeds this fraction of the journal")
		gapFactor := fs.Float64("gap-factor", def.CaptureGapFactor,
			"flag a capture gap above this multiple of the satellite's median gap")
		gapMin := fs.Duration("gap-min", def.CaptureGapMin,
			"capture-gap floor: gaps shorter than this never flag")
		corr := fs.Float64("corr-frac", def.CorrelationFrac,
			"flag throughput inside fault windows below this fraction of the outside rate")
		minFault := fs.Duration("min-fault", def.MinFaultDur,
			"least total fault exposure worth correlating")
		if err := fs.Parse(rest); err != nil {
			return 1, err
		}
		evs, err := readOne(fs.Args(), cmd)
		if err != nil {
			return 1, err
		}
		th := events.Thresholds{
			StarvationGapFrac: *starve,
			CaptureGapFactor:  *gapFactor,
			CaptureGapMin:     *gapMin,
			CorrelationFrac:   *corr,
			MinFaultDur:       *minFault,
		}
		if err := validateThresholds(th); err != nil {
			return 1, err
		}
		findings := events.DetectAnomalies(evs, th)
		if _, err := io.WriteString(stdout, events.RenderAnomalies(findings)); err != nil {
			return 1, err
		}
		if len(findings) > 0 {
			return 2, nil
		}
		return 0, nil
	case "diff":
		if len(rest) != 2 {
			return 1, fmt.Errorf("diff wants exactly two journal files, got %d\n%s", len(rest), usage)
		}
		a, err := events.ReadFile(rest[0])
		if err != nil {
			return 1, err
		}
		b, err := events.ReadFile(rest[1])
		if err != nil {
			return 1, err
		}
		_, err = io.WriteString(stdout, events.CompareJournals(a, b).Render())
		return 0, err
	case "-h", "-help", "--help", "help":
		_, err := io.WriteString(stdout, usage)
		return 0, err
	default:
		return 1, fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

// validateThresholds rejects tunings the rule engine cannot interpret.
func validateThresholds(th events.Thresholds) error {
	if th.StarvationGapFrac <= 0 || th.StarvationGapFrac > 1 {
		return fmt.Errorf("-starvation-frac must be in (0, 1], got %g", th.StarvationGapFrac)
	}
	if th.CaptureGapFactor < 1 {
		return fmt.Errorf("-gap-factor must be >= 1, got %g", th.CaptureGapFactor)
	}
	if th.CaptureGapMin < 0 {
		return fmt.Errorf("-gap-min must be >= 0, got %v", th.CaptureGapMin)
	}
	if th.CorrelationFrac <= 0 || th.CorrelationFrac > 1 {
		return fmt.Errorf("-corr-frac must be in (0, 1], got %g", th.CorrelationFrac)
	}
	if th.MinFaultDur < time.Second {
		return fmt.Errorf("-min-fault must be >= 1s, got %v", th.MinFaultDur)
	}
	return nil
}

func readOne(args []string, cmd string) ([]events.Event, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s wants exactly one journal file, got %d\n%s", cmd, len(args), usage)
	}
	return events.ReadFile(args[0])
}
