package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kodan/internal/telemetry/events"
)

// writeJournal materializes a journal file for the CLI to consume.
func writeJournal(t *testing.T, j *events.Journal) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := events.WriteFile(j, path); err != nil {
		t.Fatal(err)
	}
	return path
}

var epoch = time.Date(2027, 3, 14, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) int64 { return epoch.Add(d).UnixNano() }

// cleanJournal is a steady mission the anomaly engine stays quiet on.
func cleanJournal() *events.Journal {
	j := events.NewJournal()
	for i := 0; i < 24; i++ {
		j.Emit(events.Event{SimNs: at(time.Duration(i) * 15 * time.Minute), Type: events.Capture, Sat: 0, Detail: "P001R001"})
	}
	for i := 0; i < 4; i++ {
		base := time.Duration(i) * 90 * time.Minute
		j.Emit(events.Event{SimNs: at(base), Type: events.ContactStart, Sat: 0, Station: "Svalbard"})
		j.Emit(events.Event{SimNs: at(base + 8*time.Minute), Type: events.ContactEnd, Sat: 0, Station: "Svalbard", Value: 480})
		j.Emit(events.Event{SimNs: at(base + time.Minute), Type: events.DownlinkGrant, Sat: 0, Station: "Svalbard", Value: 300})
	}
	return j
}

// starvedJournal is the same mission with every grant removed — the
// contact-starvation rule must fire.
func starvedJournal() *events.Journal {
	j := events.NewJournal()
	for i := 0; i < 24; i++ {
		j.Emit(events.Event{SimNs: at(time.Duration(i) * 15 * time.Minute), Type: events.Capture, Sat: 0, Detail: "P001R001"})
	}
	return j
}

func TestSummarySubcommand(t *testing.T) {
	path := writeJournal(t, cleanJournal())
	var out bytes.Buffer
	code, err := run([]string{"summary", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("summary: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "journal: 36 events") {
		t.Fatalf("summary output = %q", out.String())
	}
}

func TestTimelineSubcommand(t *testing.T) {
	path := writeJournal(t, cleanJournal())
	var out bytes.Buffer
	code, err := run([]string{"timeline", "-width", "40", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("timeline: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "mission timeline:") || !strings.Contains(out.String(), "sat 0") {
		t.Fatalf("timeline output = %q", out.String())
	}
	// Deterministic: same file, same bytes.
	var again bytes.Buffer
	if _, err := run([]string{"timeline", "-width", "40", path}, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.String() {
		t.Fatal("timeline render unstable across invocations")
	}
}

func TestAnomaliesExitCodes(t *testing.T) {
	clean := writeJournal(t, cleanJournal())
	var out bytes.Buffer
	code, err := run([]string{"anomalies", clean}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean journal: code %d, err %v, out %q", code, err, out.String())
	}
	if !strings.Contains(out.String(), "anomalies: none") {
		t.Fatalf("clean output = %q", out.String())
	}

	starved := writeJournal(t, starvedJournal())
	out.Reset()
	code, err = run([]string{"anomalies", starved}, &out)
	if err != nil {
		t.Fatalf("starved journal err: %v", err)
	}
	if code != 2 {
		t.Fatalf("starved journal exit code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "contact-starvation") {
		t.Fatalf("starved output = %q", out.String())
	}
}

func TestAnomaliesThresholdValidation(t *testing.T) {
	path := writeJournal(t, cleanJournal())
	for _, args := range [][]string{
		{"anomalies", "-starvation-frac", "0", path},
		{"anomalies", "-starvation-frac", "1.5", path},
		{"anomalies", "-gap-factor", "0.5", path},
		{"anomalies", "-corr-frac", "2", path},
		{"anomalies", "-min-fault", "10ms", path},
	} {
		if code, err := run(args, &bytes.Buffer{}); err == nil || code != 1 {
			t.Fatalf("args %v accepted (code %d, err %v)", args, code, err)
		}
	}
}

func TestDiffSubcommand(t *testing.T) {
	a := writeJournal(t, cleanJournal())
	b := writeJournal(t, starvedJournal())
	var out bytes.Buffer
	code, err := run([]string{"diff", a, b}, &out)
	if err != nil || code != 0 {
		t.Fatalf("diff: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "journal diff:") || !strings.Contains(out.String(), "downlink_grant") {
		t.Fatalf("diff output = %q", out.String())
	}
	if code, err := run([]string{"diff", a}, &bytes.Buffer{}); err == nil || code != 1 {
		t.Fatal("diff with one file accepted")
	}
}

func TestBadInputs(t *testing.T) {
	if code, err := run(nil, &bytes.Buffer{}); err == nil || code != 1 {
		t.Fatal("no subcommand accepted")
	}
	if code, err := run([]string{"warp"}, &bytes.Buffer{}); err == nil || code != 1 {
		t.Fatal("unknown subcommand accepted")
	}
	if code, err := run([]string{"summary", "/does/not/exist.jsonl"}, &bytes.Buffer{}); err == nil || code != 1 {
		t.Fatal("missing file accepted")
	}
	// A corrupt journal is rejected with a line number.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"simNs\":1,\"type\":\"capture\",\"sat\":0}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := run([]string{"summary", bad}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt journal error = %v", err)
	}
	var out bytes.Buffer
	if code, err := run([]string{"help"}, &out); err != nil || code != 0 || !strings.Contains(out.String(), "usage:") {
		t.Fatal("help failed")
	}
}
