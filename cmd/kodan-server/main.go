// Command kodan-server runs the ground-segment mission-planning service:
// an HTTP JSON API over the one-time transformation pipeline, the
// selection-logic generator, and the orbital simulator, with a
// single-flight plan cache, a bounded transform worker pool, and an ops
// surface (/healthz, /readyz, /metrics).
//
// Usage:
//
//	kodan-server [-addr :8080] [-seed 2023] [-frames 120] [-workers 2] [-queue 8] [-timeout 120s]
//
// Endpoints:
//
//	POST /v1/transform  {"app":4}                          run/reuse a transformation
//	POST /v1/plan       {"app":4,"target":"orin"}          selection logic as a deployment bundle
//	POST /v1/simulate   {"app":4,"target":"orin","days":1} deployment simulation (kodan|bentpipe|direct)
//	GET  /v1/catalog                                       targets, apps, tilings, contexts
//	GET  /healthz | /readyz | /metrics                     ops
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kodan"
	"kodan/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 2023, "default transformation seed")
	frames := flag.Int("frames", 120, "representative dataset size in frames")
	workers := flag.Int("workers", 2, "concurrent transform workers")
	queue := flag.Int("queue", 8, "transform wait-queue depth (beyond this: 429)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request processing ceiling")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	verbose := flag.Bool("v", true, "log one line per request")
	flag.Parse()

	cfg := server.Config{
		Seed:       *seed,
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *timeout,
		TransformConfig: func(seed uint64) kodan.TransformConfig {
			c := kodan.DefaultTransformConfig(seed)
			c.Frames = *frames
			return c
		},
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	log.Printf("listening on %s (seed %d, %d workers, queue %d)", *addr, *seed, *workers, *queue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("%v: draining in-flight requests (up to %v)...", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
}
