// Command kodan-server runs the ground-segment mission-planning service:
// an HTTP JSON API over the one-time transformation pipeline, the
// selection-logic generator, and the orbital simulator, with a
// single-flight plan cache, a bounded transform worker pool, and an ops
// surface (/healthz, /readyz, /metrics).
//
// Usage:
//
//	kodan-server [-addr :8080] [-seed 2023] [-frames 120] [-workers 2] [-queue 8] [-timeout 120s]
//	             [-debug-addr :6060]
//
// Endpoints:
//
//	POST /v1/transform  {"app":4}                          run/reuse a transformation
//	POST /v1/plan       {"app":4,"target":"orin"}          selection logic as a deployment bundle
//	POST /v1/simulate   {"app":4,"target":"orin","days":1} deployment simulation (kodan|bentpipe|direct)
//	GET  /v1/catalog                                       targets, apps, tilings, contexts
//	GET  /healthz | /readyz | /metrics                     ops
//
// -debug-addr serves the Go diagnostics surface on a second listener —
// /debug/pprof/* (CPU, heap, goroutine, block profiles) and /debug/vars
// (expvar, including the server's full metrics snapshot under
// "kodan.metrics") — kept off the public address so profiling endpoints
// are never exposed to API clients.
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests (bounded by -drain).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"kodan"
	"kodan/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 2023, "default transformation seed")
	frames := flag.Int("frames", 120, "representative dataset size in frames")
	workers := flag.Int("workers", 2, "concurrent transform workers")
	queue := flag.Int("queue", 8, "transform wait-queue depth (beyond this: 429)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request processing ceiling")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (empty = disabled)")
	verbose := flag.Bool("v", true, "log one line per request")
	flag.Parse()

	cfg := server.Config{
		Seed:       *seed,
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *timeout,
		TransformConfig: func(seed uint64) kodan.TransformConfig {
			c := kodan.DefaultTransformConfig(seed)
			c.Frames = *frames
			return c
		},
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	if *debugAddr != "" {
		// net/http/pprof and expvar both register on DefaultServeMux;
		// publishing the snapshot here folds the full /metrics document
		// (request counters, cache, pool, telemetry registry) into
		// /debug/vars.
		expvar.Publish("kodan.metrics", expvar.Func(func() interface{} { return srv.Metrics() }))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	m := srv.Metrics()
	log.Printf("started addr=%s seed=%d workers=%d queue=%d timeout=%v cache_entries=%d debug_addr=%q",
		*addr, *seed, *workers, *queue, *timeout, m.Cache.Entries, *debugAddr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("stopping signal=%v drain_budget=%v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drainStart := time.Now()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("stopped drained=false drain=%v err=%v", time.Since(drainStart).Round(time.Millisecond), err)
			os.Exit(1)
		}
		log.Printf("stopped drained=true drain=%v", time.Since(drainStart).Round(time.Millisecond))
	}
}
