// Command kodan-server runs the ground-segment mission-planning service:
// an HTTP JSON API over the one-time transformation pipeline, the
// selection-logic generator, and the orbital simulator, with a
// single-flight plan cache, a bounded transform worker pool, and an ops
// surface (/healthz, /readyz, /metrics).
//
// Usage:
//
//	kodan-server [-addr :8080] [-seed 2023] [-frames 120] [-workers 2] [-queue 8] [-timeout 120s]
//	             [-shards 4] [-cache-entries 1024] [-batch-window 0] [-batch-max 8]
//	             [-tenant-rate 0] [-tenant-burst 0] [-retry-jitter 2]
//	             [-debug-addr :6060] [-sample 1s] [-slo-latency 30s] [-trace FILE] [-log text|json]
//
// The serving plane is multi-tenant: requests carry their tenant in the
// X-Kodan-Tenant header (anonymous traffic shares a default tenant),
// worker slots are granted by weighted fair queueing with a per-tenant
// wait-queue bound, -tenant-rate adds per-tenant token-bucket admission
// (rejections get 429 with a deterministically jittered Retry-After), the
// plan/transform cache is sharded -shards ways with a bounded LRU, and
// -batch-window coalesces compatible transform requests into one batched
// pipeline pass.
//
// Endpoints:
//
//	POST /v1/transform  {"app":4}                          run/reuse a transformation
//	POST /v1/plan       {"app":4,"target":"orin"}          selection logic as a deployment bundle
//	POST /v1/simulate   {"app":4,"target":"orin","days":1} deployment simulation (kodan|bentpipe|direct)
//	GET  /v1/catalog                                       targets, apps, tilings, contexts
//	GET  /healthz | /readyz | /metrics                     ops
//
// -debug-addr serves the Go diagnostics surface on a second listener —
// /debug/pprof/* (CPU, heap, goroutine, block profiles), /debug/vars
// (expvar, including the server's full metrics snapshot under
// "kodan.metrics"), and the flight-recorder surface: /debug/dash (live
// ops dashboard, self-contained HTML over SSE), /debug/dash/stream (the
// SSE sample feed), /debug/recorder (JSON export of the retained
// time-series window), and /debug/slo (the SLO engine's burn-rate report:
// per-objective ok/warn/page with fast/slow-window evidence). The debug
// port binds synchronously at startup and
// a bind failure is a fatal, clearly logged error — not a background
// goroutine loss. All of it is kept off the public address so profiling
// endpoints are never exposed to API clients.
//
// Every request is issued a request ID (X-Request-ID, reused from a
// well-formed inbound header), stamped on the structured logs and on the
// spans recorded under -trace, so one /plan request correlates across its
// log lines and its pool-wait/transform/sim spans.
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests (bounded by -drain). With -trace, the JSONL span trace is
// written at exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"kodan"
	"kodan/internal/server"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/recorder"
	"kodan/internal/telemetry/slo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 2023, "default transformation seed")
	frames := flag.Int("frames", 120, "representative dataset size in frames")
	workers := flag.Int("workers", 2, "concurrent transform workers")
	queue := flag.Int("queue", 8, "per-tenant transform wait-queue depth (beyond this: 429)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request processing ceiling")
	shards := flag.Int("shards", 4, "plan/transform cache shard count")
	cacheEntries := flag.Int("cache-entries", 1024, "completed cache entries retained across shards (LRU beyond this; -1 = unbounded)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in req/s (0 = no per-tenant rate limit)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant admission burst (0 = 2x rate)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce compatible transform requests for this long into one batched pass (0 = off)")
	batchMax := flag.Int("batch-max", 8, "max transform requests per batched pass")
	retryJitter := flag.Int("retry-jitter", 2, "max seconds of deterministic jitter added to Retry-After (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars, and /debug/dash on this address (empty = disabled)")
	sample := flag.Duration("sample", time.Second, "flight-recorder sampling interval")
	sloLatency := flag.Duration("slo-latency", 30*time.Second, "transform-latency SLO threshold (90% of transforms within this)")
	traceFile := flag.String("trace", "", "write a JSONL span trace to this file at shutdown")
	logFormat := flag.String("log", "text", "log output format: text or json")
	verbose := flag.Bool("v", true, "log one line per request")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler).With("component", "kodan-server")

	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer(0)
	}

	cfg := server.Config{
		Seed:                *seed,
		Workers:             *workers,
		QueueDepth:          *queue,
		Timeout:             *timeout,
		CacheShards:         *shards,
		CacheEntries:        *cacheEntries,
		TenantRate:          *tenantRate,
		TenantBurst:         *tenantBurst,
		BatchWindow:         *batchWindow,
		BatchMax:            *batchMax,
		RetryAfterJitterMax: *retryJitter,
		TransformConfig: func(seed uint64) kodan.TransformConfig {
			c := kodan.DefaultTransformConfig(seed)
			c.Frames = *frames
			return c
		},
		Tracer: tracer,
	}
	if *verbose {
		cfg.Logger = logger
	}
	srv := server.New(cfg)

	// The flight recorder samples the server's shared registry for the
	// whole process lifetime; the dashboard and JSON export read it.
	rec := recorder.New(srv.Registry(), recorder.Options{Interval: *sample})
	rec.Start()
	defer rec.Stop()

	// The SLO engine re-evaluates the serving objectives on every recorder
	// sample, publishing state under server.slo.* (so the dashboard's SLO
	// panel and /metrics see it) and answering /debug/slo on demand.
	eng, err := slo.NewEngine(rec, srv.Registry().Scope("server.slo"),
		slo.DefaultServerObjectives(*sloLatency), slo.Config{})
	if err != nil {
		logger.Error("slo engine failed to build", "err", err)
		os.Exit(1)
	}
	eng.Start()
	defer eng.Stop()

	if *debugAddr != "" {
		// Bind synchronously so a taken port is a clear startup failure
		// instead of a background goroutine's log line (or silence).
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listener failed to bind", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		// net/http/pprof and expvar both register on DefaultServeMux;
		// publishing the snapshot here folds the full /metrics document
		// (request counters, cache, pool, telemetry registry) into
		// /debug/vars. The flight-recorder surface rides the same mux.
		expvar.Publish("kodan.metrics", expvar.Func(func() interface{} { return srv.Metrics() }))
		http.Handle("/debug/dash", rec.PageHandler("kodan-server ops", "/debug/dash/stream"))
		http.Handle("/debug/dash/stream", rec.StreamHandler())
		http.HandleFunc("/debug/recorder", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			rec.WriteJSON(w, time.Time{}) //nolint:errcheck // connection owns delivery
		})
		http.Handle("/debug/slo", eng.Handler())
		logger.Info("debug listener started", "addr", dl.Addr().String())
		go func() {
			if err := http.Serve(dl, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("debug listener stopped", "err", err)
			}
		}()
		defer dl.Close()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	m := srv.Metrics()
	logger.Info("started",
		"addr", *addr, "seed", *seed, "workers", *workers, "queue", *queue,
		"timeout", timeout.String(), "cache_entries", m.Cache.Entries,
		"cache_shards", m.Cache.Shards, "cache_capacity", m.Cache.Capacity,
		"batch_window", batchWindow.String(), "tenant_rate", *tenantRate,
		"debug_addr", *debugAddr, "sample", sample.String())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	exitCode := 0
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			exitCode = 1
		}
	case sig := <-sigCh:
		logger.Info("stopping", "signal", sig.String(), "drain_budget", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		drainStart := time.Now()
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Error("stopped", "drained", false, "drainMs", time.Since(drainStart).Milliseconds(), "err", err)
			exitCode = 1
		} else {
			logger.Info("stopped", "drained", true, "drainMs", time.Since(drainStart).Milliseconds())
		}
	}

	rec.Stop()
	if tracer != nil {
		if werr := telemetry.WriteTraceFile(tracer, *traceFile); werr != nil {
			logger.Error("trace write failed", "err", werr)
			if exitCode == 0 {
				exitCode = 1
			}
		} else {
			logger.Info("trace written", "file", *traceFile, "dropped", tracer.Dropped())
		}
	}
	os.Exit(exitCode)
}
