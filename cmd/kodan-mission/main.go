// Command kodan-mission runs the time-resolved multi-day deployment
// simulator: it performs the one-time transformation, generates the
// selection logic for the chosen target, and then flies the deployment
// through the chronological event loop (captures, contacts, processor
// occupancy, onboard buffer), printing the mission ledger and an energy
// budget check, with bent-pipe and direct-deploy baselines on the same
// timeline.
//
// Usage:
//
//	kodan-mission [-app 7] [-target orin] [-days 3] [-buffer-gb 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"kodan"
	"kodan/internal/mission"
	"kodan/internal/orbit"
	"kodan/internal/policy"
	"kodan/internal/power"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-mission: ")
	appIdx := flag.Int("app", 7, "application index (1-7)")
	targetFlag := flag.String("target", "orin", "hardware target: 1070ti, i7, or orin")
	days := flag.Int("days", 3, "mission duration in days")
	bufferGB := flag.Float64("buffer-gb", 256, "onboard buffer in GB (0 = unlimited)")
	frames := flag.Int("frames", 60, "transformation dataset size in frames")
	flag.Parse()

	var target kodan.Target
	switch *targetFlag {
	case "1070ti":
		target = kodan.GTX1070Ti
	case "i7":
		target = kodan.I7_7800X
	case "orin":
		target = kodan.Orin15W
	default:
		log.Fatalf("unknown -target %q", *targetFlag)
	}

	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	m, err := kodan.LandsatMission(epoch)
	if err != nil {
		log.Fatal(err)
	}

	cfg := kodan.DefaultTransformConfig(2023)
	cfg.Frames = *frames
	cfg.TileRes = 16
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}, {PerSide: 11}}
	fmt.Println("running the one-time transformation...")
	sys, err := kodan.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := sys.Transform(*appIdx)
	if err != nil {
		log.Fatal(err)
	}
	logic, est := app.SelectionLogic(m.Deployment(target))
	prof, err := app.ProfileFor(logic.Tiling)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection logic: %v on %v, expected frame time %.1f s\n\n",
		logic.Tiling, target, est.FrameTime.Seconds())

	fly := func(name string, sel kodan.Selection, p policy.TilingProfile, engine bool) *mission.Result {
		res, err := mission.Run(mission.Config{
			Epoch:      epoch,
			Days:       *days,
			Arch:       app.Arch(),
			Target:     target,
			Profile:    p,
			Selection:  sel,
			UseEngine:  engine,
			FillIdle:   true,
			BufferBits: *bufferGB * 8e9,
			Seed:       2023,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s DVD %.3f  recovery %5.1f%%  missed %6d/%6d  dropped %6.1f GB  peak queue %7.1f GB\n",
			name, res.DVD(), 100*res.Ledger.Recovery(),
			res.FramesMissed, res.FramesCaptured, res.DroppedBits/8e9, res.PeakQueueBits/8e9)
		return res
	}

	kod := fly("kodan", logic, prof, true)

	fineProf, err := app.ProfileFor(kodan.Tiling{PerSide: 11})
	if err != nil {
		log.Fatal(err)
	}
	fly("direct deploy", policy.DirectSelection(fineProf), fineProf, false)

	bent := make([]kodan.Action, len(prof.Contexts))
	for i := range bent {
		bent[i] = kodan.Downlink
	}
	fly("bent pipe", kodan.Selection{Tiling: prof.Tiling, Actions: bent}, prof, false)

	// Energy feasibility on a 3U bus.
	radioDuty := kod.ContactTime.Seconds() / (float64(*days) * 86400)
	budget, err := power.Evaluate(power.ThreeUBus(), orbit.Landsat8(epoch), target, est,
		m.FrameDeadline, radioDuty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy budget (3U cubesat bus): generation %.1f W, load %.1f W, margin %+.1f W — feasible: %v\n",
		budget.GenerationW, budget.LoadW, budget.MarginW, budget.Feasible())
	fmt.Printf("compute duty cycle %.0f%%, %.0f J per frame\n",
		100*budget.ComputeDutyCycle, budget.EnergyPerFrameJ)
}
