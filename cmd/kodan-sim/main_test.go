package main

import (
	"strings"
	"testing"
	"time"

	"kodan/internal/fault"
)

// legalFlags returns the default command line, which must validate.
func legalFlags() simFlags {
	return simFlags{sats: 4, hours: 24, planes: 1, camera: "ms", groundCost: 0.5, bufferFrames: 64}
}

// TestValidateFlags table-tests the contradictory-combination rejections:
// planner knobs without -plan hybrid, unknown mode strings, out-of-range
// numerics, and the -faults / -fault-intensity exclusion.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		explicitly []string
		mutate     func(*simFlags)
		wantErr    string // substring; empty = must validate
	}{
		{name: "defaults", mutate: func(f *simFlags) {}},
		{name: "hybrid with knobs", explicitly: []string{"plan", "ground-cost", "buffer-frames"},
			mutate: func(f *simFlags) { f.plan = "hybrid"; f.groundCost = 0.1; f.bufferFrames = 16 }},
		{name: "zero sats", mutate: func(f *simFlags) { f.sats = 0 }, wantErr: "-sats"},
		{name: "zero hours", mutate: func(f *simFlags) { f.hours = 0 }, wantErr: "-hours"},
		{name: "zero planes", mutate: func(f *simFlags) { f.planes = 0 }, wantErr: "-planes"},
		{name: "unknown camera", mutate: func(f *simFlags) { f.camera = "sar" }, wantErr: "-camera"},
		{name: "unknown plan", mutate: func(f *simFlags) { f.plan = "orbit" }, wantErr: "-plan"},
		{name: "ground-cost without hybrid", explicitly: []string{"ground-cost"},
			mutate: func(f *simFlags) { f.groundCost = 1 }, wantErr: "without -plan hybrid"},
		{name: "buffer-frames without hybrid", explicitly: []string{"buffer-frames"},
			mutate: func(f *simFlags) { f.bufferFrames = 8 }, wantErr: "without -plan hybrid"},
		{name: "default knobs without hybrid are fine", mutate: func(f *simFlags) {}},
		{name: "negative ground-cost", explicitly: []string{"plan", "ground-cost"},
			mutate: func(f *simFlags) { f.plan = "hybrid"; f.groundCost = -1 }, wantErr: "-ground-cost"},
		{name: "negative buffer-frames", explicitly: []string{"plan", "buffer-frames"},
			mutate: func(f *simFlags) { f.plan = "hybrid"; f.bufferFrames = -4 }, wantErr: "-buffer-frames"},
		{name: "faults file and intensity", explicitly: []string{"faults", "fault-intensity"},
			mutate: func(f *simFlags) { f.faultsFile = "x.json"; f.faultIntensity = 0.5 }, wantErr: "mutually exclusive"},
		{name: "negative intensity", explicitly: []string{"fault-intensity"},
			mutate: func(f *simFlags) { f.faultIntensity = -0.5 }, wantErr: "-fault-intensity"},
		{name: "quantized without transform-app", explicitly: []string{"quantized"},
			mutate: func(f *simFlags) { f.quantized = true }, wantErr: "without -transform-app"},
		{name: "transform-app out of range", explicitly: []string{"transform-app"},
			mutate: func(f *simFlags) { f.transformApp = 9 }, wantErr: "-transform-app"},
		{name: "quantized transform", explicitly: []string{"transform-app", "quantized"},
			mutate: func(f *simFlags) { f.transformApp = 4; f.quantized = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := legalFlags()
			tc.mutate(&f)
			explicitly := map[string]bool{}
			for _, name := range tc.explicitly {
				explicitly[name] = true
			}
			err := validateFlags(explicitly, f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateSchedule covers the hybrid-mode fault-schedule checks: empty
// schedules and station faults naming stations outside the ground segment
// are rejected, while sat-targeted windows and non-hybrid runs pass.
func TestValidateSchedule(t *testing.T) {
	stations := []string{"Svalbard", "Fairbanks"}
	epoch := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	outage := func(st string) fault.Window {
		return fault.Window{Kind: fault.StationOutage, Station: st, Start: epoch, End: epoch.Add(time.Hour)}
	}
	cases := []struct {
		name    string
		plan    string
		sched   *fault.Schedule
		wantErr string
	}{
		{name: "non-hybrid ignores schedule", plan: "",
			sched: &fault.Schedule{Windows: []fault.Window{outage("Nowhere")}}},
		{name: "hybrid without schedule", plan: "hybrid"},
		{name: "hybrid empty schedule", plan: "hybrid",
			sched: &fault.Schedule{}, wantErr: "empty fault schedule"},
		{name: "hybrid unknown station", plan: "hybrid",
			sched:   &fault.Schedule{Windows: []fault.Window{outage("Atlantis")}},
			wantErr: `unknown station "Atlantis"`},
		{name: "hybrid known station", plan: "hybrid",
			sched: &fault.Schedule{Windows: []fault.Window{outage("Svalbard")}}},
		{name: "hybrid link fade unknown station", plan: "hybrid",
			sched: &fault.Schedule{Windows: []fault.Window{
				{Kind: fault.LinkFade, Station: "Atlantis", Start: epoch, End: epoch.Add(time.Hour), Severity: 0.5},
			}},
			wantErr: "ground segment: Svalbard, Fairbanks"},
		{name: "hybrid sat-targeted windows", plan: "hybrid",
			sched: &fault.Schedule{Windows: []fault.Window{
				{Kind: fault.SensorDropout, Sat: 1, Start: epoch, End: epoch.Add(time.Hour)},
				{Kind: fault.SatelliteReset, Sat: 0, Start: epoch.Add(time.Hour), End: epoch.Add(2 * time.Hour)},
			}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSchedule(tc.plan, tc.sched, stations)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
