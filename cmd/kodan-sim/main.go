// Command kodan-sim runs the cote-equivalent constellation simulation and
// prints per-satellite capture and downlink ledgers: frames observed,
// unique scenes, granted contact time, and downlink capacity in frames.
//
// Usage:
//
//	kodan-sim [-sats 4] [-hours 24] [-planes 1] [-camera ms|hyper] [-parallel N]
//	          [-faults FILE | -fault-intensity X [-fault-seed N]]
//	          [-transform-app N [-quantized]]
//	          [-events FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel bounds the per-satellite propagation worker pool (0 =
// GOMAXPROCS, 1 = sequential); every setting produces identical ledgers.
//
// -faults loads a fault schedule (JSON, see examples/faults/) and runs the
// mission degraded: station outages cut contact windows, link fades derate
// downlink capacity, sensor dropouts and satellite resets drop captures.
// -fault-intensity generates a schedule deterministically from -fault-seed
// instead; the same seed and intensity always produce the same faults.
// The two are mutually exclusive.
//
// -events writes the mission event journal — captures, scene boundaries,
// contact windows, downlink grants, fault windows, planner dispositions,
// and the deferral-drain replay — as strict JSONL stamped in *sim* time
// (the simulated instant, not wall time). The journal is byte-identical
// at every -parallel setting and feeds kodan-events (summary, timeline,
// anomalies, diff). Like -trace, it observes the run without changing it.
//
// -trace records a span trace of the run (per-satellite propagation,
// capture, contact-window, and downlink phases, plus the -transform-app
// training and inference phases when enabled) as JSONL and prints an
// end-of-run summary — per-phase wall time and the slowest spans — to
// stderr. The file feeds kodan-trace (summary, critical, folded, diff). -cpuprofile and -memprofile write pprof profiles. None of the
// three changes the ledgers: telemetry observes the run, it never feeds
// back into it.
//
// -transform-app N runs a demo-scale Kodan transformation for Table 1
// application N after the simulation and prints the selection logic and
// expected data value density the simulated mission would deploy with;
// -quantized routes the transform's inference (including the quality
// measurement the selection logic prices) through the int8 quantized hot
// path and is rejected without -transform-app.
//
// -plan hybrid runs the space-ground execution planner (internal/planner)
// over the simulated link: the capture stream, split into eight equal
// slices, is placed among
// immediate raw downlink, deferred store-and-forward (priced at
// -ground-cost per frame and held in a -buffer-frames on-board buffer),
// and drop, and the deferred traffic is replayed through the run's actual
// contact schedule for delivery latency. Contradictory combinations are
// rejected up front: -ground-cost or -buffer-frames without -plan hybrid,
// unknown -plan values, and (with -plan hybrid) a fault schedule that has
// no windows or whose station faults name stations absent from the ground
// segment — such a schedule would silently re-plan as if fault-free.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kodan/internal/app"
	"kodan/internal/core"
	"kodan/internal/fault"
	"kodan/internal/hw"
	"kodan/internal/planner"
	"kodan/internal/policy"
	"kodan/internal/power"
	"kodan/internal/sense"
	"kodan/internal/sim"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/events"
	"kodan/internal/tiling"
)

// simFlags carries the validated command line.
type simFlags struct {
	sats, hours, planes int
	camera, plan        string
	groundCost          float64
	bufferFrames        float64
	faultsFile          string
	faultIntensity      float64
	transformApp        int
	quantized           bool
}

// validateFlags rejects contradictory flag combinations before any work
// starts. explicitly reports which flags the user set on the command line
// (defaults are not contradictions).
func validateFlags(explicitly map[string]bool, f simFlags) error {
	if f.sats < 1 {
		return fmt.Errorf("-sats must be >= 1, got %d", f.sats)
	}
	if f.hours < 1 {
		return fmt.Errorf("-hours must be >= 1, got %d", f.hours)
	}
	if f.planes < 1 {
		return fmt.Errorf("-planes must be >= 1, got %d", f.planes)
	}
	switch f.camera {
	case "ms", "hyper":
	default:
		return fmt.Errorf("unknown -camera %q (want ms or hyper)", f.camera)
	}
	switch f.plan {
	case "", "hybrid":
	default:
		return fmt.Errorf("unknown -plan %q (want hybrid)", f.plan)
	}
	if f.plan != "hybrid" {
		if explicitly["ground-cost"] {
			return fmt.Errorf("-ground-cost has no effect without -plan hybrid")
		}
		if explicitly["buffer-frames"] {
			return fmt.Errorf("-buffer-frames has no effect without -plan hybrid")
		}
	}
	if f.groundCost < 0 {
		return fmt.Errorf("-ground-cost must be >= 0, got %g", f.groundCost)
	}
	if f.bufferFrames < 0 {
		return fmt.Errorf("-buffer-frames must be >= 0, got %g", f.bufferFrames)
	}
	if f.faultsFile != "" && f.faultIntensity > 0 {
		return fmt.Errorf("-faults and -fault-intensity are mutually exclusive")
	}
	if f.faultIntensity < 0 {
		return fmt.Errorf("-fault-intensity must be >= 0, got %g", f.faultIntensity)
	}
	if f.transformApp != 0 && (f.transformApp < 1 || f.transformApp > len(app.Apps())) {
		return fmt.Errorf("-transform-app must be 1..%d, got %d", len(app.Apps()), f.transformApp)
	}
	if f.quantized && f.transformApp == 0 {
		return fmt.Errorf("-quantized has no effect without -transform-app")
	}
	return nil
}

// validateSchedule rejects a fault schedule that cannot drive hybrid
// re-planning: the planner reads the link shape from the simulated run, so
// a schedule with no windows, or whose station faults name stations absent
// from the ground segment, would silently plan as if fault-free.
func validateSchedule(plan string, sched *fault.Schedule, stations []string) error {
	if plan != "hybrid" || sched == nil {
		return nil
	}
	if len(sched.Windows) == 0 {
		return fmt.Errorf("-plan hybrid with an empty fault schedule: nothing to re-plan against")
	}
	known := map[string]bool{}
	for _, s := range stations {
		known[s] = true
	}
	for _, w := range sched.Windows {
		if (w.Kind == fault.StationOutage || w.Kind == fault.LinkFade) && !known[w.Station] {
			return fmt.Errorf("fault schedule names unknown station %q (ground segment: %s)",
				w.Station, strings.Join(stations, ", "))
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-sim: ")
	sats := flag.Int("sats", 4, "constellation population")
	hours := flag.Int("hours", 24, "simulated duration in hours")
	planes := flag.Int("planes", 1, "orbital planes")
	camera := flag.String("camera", "ms", "payload: ms (multispectral) or hyper")
	parallel := flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	plan := flag.String("plan", "", `execution planning: "hybrid" runs the space-ground planner on the simulated link`)
	groundCost := flag.Float64("ground-cost", 0.5, "with -plan hybrid: ground-compute price per deferred frame")
	bufferFrames := flag.Float64("buffer-frames", 64, "with -plan hybrid: on-board deferral buffer in frame-size units")
	faultsFile := flag.String("faults", "", "load a fault schedule (JSON) and run the mission degraded")
	faultIntensity := flag.Float64("fault-intensity", 0, "generate a fault schedule at this intensity (0 = none, 1 = paper scale)")
	faultSeed := flag.Uint64("fault-seed", 2023, "seed for -fault-intensity schedule generation")
	transformApp := flag.Int("transform-app", 0, "after the simulation, transform this Table 1 application (1-7) for the simulated mission (0 = off)")
	quantized := flag.Bool("quantized", false, "with -transform-app: run the transform's inference through the int8 quantized path")
	verbose := flag.Bool("v", false, "structured debug logs (slog) to stderr")
	eventsFile := flag.String("events", "", "write the sim-time mission event journal (JSONL) to this file")
	traceFile := flag.String("trace", "", "write a JSONL span trace to this file and print a summary to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	explicitly := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitly[f.Name] = true })
	if err := validateFlags(explicitly, simFlags{
		sats: *sats, hours: *hours, planes: *planes,
		camera: *camera, plan: *plan,
		groundCost: *groundCost, bufferFrames: *bufferFrames,
		faultsFile: *faultsFile, faultIntensity: *faultIntensity,
		transformApp: *transformApp, quantized: *quantized,
	}); err != nil {
		log.Fatal(err)
	}

	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	cfg := sim.Landsat8Config(epoch, time.Duration(*hours)*time.Hour, *sats)
	cfg.Planes = *planes
	cfg.Workers = *parallel
	if *camera == "hyper" {
		cfg.Camera = sense.Landsat8Hyper()
	}

	var sched *fault.Schedule
	switch {
	case *faultsFile != "":
		var err error
		if sched, err = fault.LoadFile(*faultsFile); err != nil {
			log.Fatal(err)
		}
	case *faultIntensity > 0:
		names := make([]string, len(cfg.Stations))
		for i, st := range cfg.Stations {
			names[i] = st.Name
		}
		sched = fault.Generate(fault.GenConfig{
			Seed:      *faultSeed,
			Start:     epoch,
			Span:      time.Duration(*hours) * time.Hour,
			Intensity: *faultIntensity,
			Stations:  names,
			Sats:      *sats,
		})
	}

	stationNames := make([]string, len(cfg.Stations))
	for i, st := range cfg.Stations {
		stationNames[i] = st.Name
	}
	if err := validateSchedule(*plan, sched, stationNames); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if sched != nil {
		ctx = fault.WithInjector(ctx, fault.NewInjector(sched))
	}

	if *verbose {
		ctx = telemetry.WithLogger(ctx, slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}

	stopProfile, err := telemetry.StartProfiling(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer(0)
		ctx = telemetry.WithProbe(ctx, telemetry.Probe{Trace: tracer})
	}

	var journal *events.Journal
	if *eventsFile != "" {
		journal = events.NewJournal()
		ctx = events.WithJournal(ctx, journal)
	}

	res, err := sim.RunCtx(ctx, cfg)
	if perr := stopProfile(); perr != nil {
		log.Printf("profiling: %v", perr)
	}
	if err != nil {
		log.Fatal(err)
	}

	deadline := cfg.Grid.FramePeriod(cfg.BaseOrbit)
	fmt.Printf("constellation: %d satellites, %d plane(s), %dh, %s payload (%.1f Gbit/frame)\n",
		*sats, cfg.Planes, *hours, cfg.Camera.Name, cfg.Camera.FrameBits()/1e9)
	fmt.Printf("frame deadline: %.1f s\n", deadline.Seconds())
	if sched != nil {
		fmt.Printf("faults: %s\n", sched.Summary())
	}
	fmt.Println()

	caps := res.FrameCapacityPerSat()
	fmt.Printf("%4s %10s %12s %14s\n", "Sat", "Frames", "Contact", "DownlinkFrames")
	for i, c := range res.Captures {
		fmt.Printf("%4d %10d %12v %14.1f\n", i, len(c), res.Served[i].Round(time.Second), caps[i])
	}
	fmt.Printf("\ntotals: observed %d frames, %d unique scenes (%.1f%% of grid), downlink capacity %.1f frames (%.1f%% of observed)\n",
		res.FramesObserved(), res.UniqueScenes(),
		100*float64(res.UniqueScenes())/float64(cfg.Grid.TotalScenes()),
		res.FrameCapacity(), 100*res.FrameCapacity()/float64(res.FramesObserved()))

	if *plan == "hybrid" {
		if err := printHybridPlan(ctx, res, cfg, *groundCost, *bufferFrames); err != nil {
			log.Fatal(err)
		}
	}

	if *transformApp != 0 {
		if err := printTransform(ctx, res, cfg, *transformApp, *quantized); err != nil {
			log.Fatal(err)
		}
	}

	// The journal is flushed after planning so -plan hybrid runs record
	// the planner dispositions and the deferral-drain replay alongside
	// the simulation's captures, contacts, grants, and faults.
	if journal != nil {
		if werr := events.WriteFile(journal, *eventsFile); werr != nil {
			log.Fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "mission event journal: %d events -> %s\n", journal.Len(), *eventsFile)
	}

	// The trace is flushed last so a -transform-app run records the
	// transform phases (nn.train, nn.infer, ...) alongside the simulation,
	// which is what makes float-vs-quantized trace diffs possible.
	if tracer != nil {
		if werr := telemetry.WriteTraceFile(tracer, *traceFile); werr != nil {
			log.Fatal(werr)
		}
		fmt.Fprint(os.Stderr, telemetry.Summarize(tracer, 10).Render())
	}
}

// printTransform runs a demo-scale Kodan transformation for one Table 1
// application and prints the selection logic the simulated mission would
// fly: the deadline and downlink capacity come from the run above, so a
// degraded (fault-injected) link produces a different deployment than a
// clean one. With quantized set, every model also derives its int8 twin
// and the quality measurement prices the quantization error into the
// selection. The dataset is sized well below the paper scale (60 frames,
// two tilings) to keep the CLI interactive; use kodan-transform or
// kodan-bench for the full-scale transformation.
func printTransform(ctx context.Context, res *sim.Result, cfg sim.Config, appIdx int, quantized bool) error {
	tcfg := core.DefaultConfig(2023)
	tcfg.Frames = 60
	tcfg.TileRes = 16
	tcfg.Tilings = []tiling.Tiling{{PerSide: 3}, {PerSide: 11}}

	variant := "float"
	if quantized {
		variant = "int8 quantized"
	}
	fmt.Printf("\ntransforming App %d for the simulated mission (%s inference, demo scale)...\n", appIdx, variant)
	ws, err := core.NewWorkspaceCtx(ctx, tcfg)
	if err != nil {
		return err
	}
	art, err := ws.WithQuantized(quantized).TransformAppCtx(ctx, app.App(appIdx))
	if err != nil {
		return err
	}
	obs := float64(res.FramesObserved())
	d := core.Deployment{
		Target:       hw.Orin15W,
		Deadline:     cfg.Grid.FramePeriod(cfg.BaseOrbit),
		CapacityFrac: res.FrameCapacity() / obs,
		FillIdle:     true,
	}
	sel, est := art.SelectionLogic(d)
	bent := policy.EvaluateBentPipe(art.Profiles[0].Prevalence(), d.Env(art.Arch))
	fmt.Printf("  selection logic on %v: tiling %v\n", d.Target, sel.Tiling)
	for c, a := range sel.Actions {
		fmt.Printf("    C%d %-18s -> %v\n", c, ws.Ctx.Stats[c].Name, a)
	}
	fmt.Printf("  expected frame time %.1f s (deadline %.1f s), DVD %.3f (bent pipe %.3f, %+.0f%%)\n",
		est.FrameTime.Seconds(), d.Deadline.Seconds(), est.DVD, bent.DVD, 100*(est.DVD/bent.DVD-1))
	return nil
}

// printHybridPlan places the capture stream with the hybrid planner
// against the simulated (possibly fault-injected) link and replays the
// planned traffic through the run's contact schedule. The stream is split
// into eight equal slices so the planner can place fractions of a frame
// rather than all-or-nothing; no on-board models run here — kodan-sim has
// no transformed application — so the Onboard placement coincides with raw
// immediate downlink and the interesting decision is raw-now versus defer
// versus drop, slice by slice.
func printHybridPlan(ctx context.Context, res *sim.Result, cfg sim.Config, groundCost, bufferFrames float64) error {
	const slices = 8
	prof := policy.TilingProfile{Tiling: tiling.Tiling{PerSide: 1}}
	base := policy.Selection{Tiling: prof.Tiling}
	for i := 0; i < slices; i++ {
		prof.Contexts = append(prof.Contexts, policy.ContextProfile{
			TileFrac: 1.0 / slices, HighValueFrac: 0.48,
		})
		base.Actions = append(base.Actions, policy.Downlink)
	}
	costs := planner.DefaultCosts()
	costs.GroundPerFrame = groundCost
	env := planner.Env{
		Policy:       policy.Env{Target: hw.Orin15W, Deadline: cfg.Grid.FramePeriod(cfg.BaseOrbit)},
		Bus:          power.ThreeUBus(),
		Costs:        costs,
		BufferFrames: bufferFrames,
	}.WithLink(planner.DeriveLink(res))
	pl, err := planner.DecideCtx(ctx, prof, base, env)
	if err != nil {
		return err
	}
	ev := pl.Eval
	frameBits := cfg.Camera.FrameBits()
	st := res.DrainDeferredCtx(ctx, (ev.NowBits+ev.DeferBits)*frameBits, bufferFrames*frameBits)
	fmt.Printf("\nhybrid plan (capture stream in %d slices, ground cost %.2f, buffer %.0f frames):\n", slices, groundCost, bufferFrames)
	fmt.Printf("  placement: downlink-now %.0f%%, defer %.0f%%, drop %.0f%% (utility %.3f)\n",
		100*(ev.OnboardFrac+ev.DownlinkFrac), 100*ev.DeferFrac, 100*ev.DropFrac, ev.Utility)
	fmt.Printf("  link: %.3f now + %.3f deferred frame-fractions per observed frame (capacity %.3f, contact gap %.1f frames)\n",
		ev.NowBits, ev.DeferBits, env.Policy.CapacityFrac, env.FramesBetweenContacts)
	fmt.Printf("  store-and-forward: delivered %.1f Gbit, dropped %.1f, residual %.1f; latency mean %v max %v; peak buffer %.1f Gbit\n",
		st.DeliveredBits/1e9, st.DroppedBits/1e9, st.ResidualBits/1e9,
		st.MeanLatency.Round(time.Second), st.MaxLatency.Round(time.Second), st.PeakBufferBits/1e9)
	return nil
}
