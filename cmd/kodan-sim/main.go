// Command kodan-sim runs the cote-equivalent constellation simulation and
// prints per-satellite capture and downlink ledgers: frames observed,
// unique scenes, granted contact time, and downlink capacity in frames.
//
// Usage:
//
//	kodan-sim [-sats 4] [-hours 24] [-planes 1] [-camera ms|hyper] [-parallel N]
//	          [-faults FILE | -fault-intensity X [-fault-seed N]]
//	          [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel bounds the per-satellite propagation worker pool (0 =
// GOMAXPROCS, 1 = sequential); every setting produces identical ledgers.
//
// -faults loads a fault schedule (JSON, see examples/faults/) and runs the
// mission degraded: station outages cut contact windows, link fades derate
// downlink capacity, sensor dropouts and satellite resets drop captures.
// -fault-intensity generates a schedule deterministically from -fault-seed
// instead; the same seed and intensity always produce the same faults.
// The two are mutually exclusive.
//
// -trace records a span trace of the run (per-satellite propagation,
// capture, contact-window, and downlink phases) as JSONL and prints an
// end-of-run summary — per-phase wall time and the slowest spans — to
// stderr. -cpuprofile and -memprofile write pprof profiles. None of the
// three changes the ledgers: telemetry observes the run, it never feeds
// back into it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kodan/internal/fault"
	"kodan/internal/sense"
	"kodan/internal/sim"
	"kodan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-sim: ")
	sats := flag.Int("sats", 4, "constellation population")
	hours := flag.Int("hours", 24, "simulated duration in hours")
	planes := flag.Int("planes", 1, "orbital planes")
	camera := flag.String("camera", "ms", "payload: ms (multispectral) or hyper")
	parallel := flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	faultsFile := flag.String("faults", "", "load a fault schedule (JSON) and run the mission degraded")
	faultIntensity := flag.Float64("fault-intensity", 0, "generate a fault schedule at this intensity (0 = none, 1 = paper scale)")
	faultSeed := flag.Uint64("fault-seed", 2023, "seed for -fault-intensity schedule generation")
	verbose := flag.Bool("v", false, "structured debug logs (slog) to stderr")
	traceFile := flag.String("trace", "", "write a JSONL span trace to this file and print a summary to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	cfg := sim.Landsat8Config(epoch, time.Duration(*hours)*time.Hour, *sats)
	cfg.Planes = *planes
	cfg.Workers = *parallel
	switch *camera {
	case "ms":
	case "hyper":
		cfg.Camera = sense.Landsat8Hyper()
	default:
		log.Fatalf("unknown -camera %q", *camera)
	}

	var sched *fault.Schedule
	switch {
	case *faultsFile != "" && *faultIntensity > 0:
		log.Fatal("-faults and -fault-intensity are mutually exclusive")
	case *faultsFile != "":
		var err error
		if sched, err = fault.LoadFile(*faultsFile); err != nil {
			log.Fatal(err)
		}
	case *faultIntensity > 0:
		names := make([]string, len(cfg.Stations))
		for i, st := range cfg.Stations {
			names[i] = st.Name
		}
		sched = fault.Generate(fault.GenConfig{
			Seed:      *faultSeed,
			Start:     epoch,
			Span:      time.Duration(*hours) * time.Hour,
			Intensity: *faultIntensity,
			Stations:  names,
			Sats:      *sats,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if sched != nil {
		ctx = fault.WithInjector(ctx, fault.NewInjector(sched))
	}

	if *verbose {
		ctx = telemetry.WithLogger(ctx, slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}

	stopProfile, err := telemetry.StartProfiling(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer(0)
		ctx = telemetry.WithProbe(ctx, telemetry.Probe{Trace: tracer})
	}

	res, err := sim.RunCtx(ctx, cfg)
	if perr := stopProfile(); perr != nil {
		log.Printf("profiling: %v", perr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if werr := telemetry.WriteTraceFile(tracer, *traceFile); werr != nil {
			log.Fatal(werr)
		}
		fmt.Fprint(os.Stderr, telemetry.Summarize(tracer, 10).Render())
	}

	deadline := cfg.Grid.FramePeriod(cfg.BaseOrbit)
	fmt.Printf("constellation: %d satellites, %d plane(s), %dh, %s payload (%.1f Gbit/frame)\n",
		*sats, cfg.Planes, *hours, cfg.Camera.Name, cfg.Camera.FrameBits()/1e9)
	fmt.Printf("frame deadline: %.1f s\n", deadline.Seconds())
	if sched != nil {
		fmt.Printf("faults: %s\n", sched.Summary())
	}
	fmt.Println()

	caps := res.FrameCapacityPerSat()
	fmt.Printf("%4s %10s %12s %14s\n", "Sat", "Frames", "Contact", "DownlinkFrames")
	for i, c := range res.Captures {
		fmt.Printf("%4d %10d %12v %14.1f\n", i, len(c), res.Served[i].Round(time.Second), caps[i])
	}
	fmt.Printf("\ntotals: observed %d frames, %d unique scenes (%.1f%% of grid), downlink capacity %.1f frames (%.1f%% of observed)\n",
		res.FramesObserved(), res.UniqueScenes(),
		100*float64(res.UniqueScenes())/float64(cfg.Grid.TotalScenes()),
		res.FrameCapacity(), 100*res.FrameCapacity()/float64(res.FramesObserved()))
}
