// Command kodan-sim runs the cote-equivalent constellation simulation and
// prints per-satellite capture and downlink ledgers: frames observed,
// unique scenes, granted contact time, and downlink capacity in frames.
//
// Usage:
//
//	kodan-sim [-sats 4] [-hours 24] [-planes 1] [-camera ms|hyper] [-parallel N]
//
// -parallel bounds the per-satellite propagation worker pool (0 =
// GOMAXPROCS, 1 = sequential); every setting produces identical ledgers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kodan/internal/sense"
	"kodan/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kodan-sim: ")
	sats := flag.Int("sats", 4, "constellation population")
	hours := flag.Int("hours", 24, "simulated duration in hours")
	planes := flag.Int("planes", 1, "orbital planes")
	camera := flag.String("camera", "ms", "payload: ms (multispectral) or hyper")
	parallel := flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	cfg := sim.Landsat8Config(epoch, time.Duration(*hours)*time.Hour, *sats)
	cfg.Planes = *planes
	cfg.Workers = *parallel
	switch *camera {
	case "ms":
	case "hyper":
		cfg.Camera = sense.Landsat8Hyper()
	default:
		log.Fatalf("unknown -camera %q", *camera)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := sim.RunCtx(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	deadline := cfg.Grid.FramePeriod(cfg.BaseOrbit)
	fmt.Printf("constellation: %d satellites, %d plane(s), %dh, %s payload (%.1f Gbit/frame)\n",
		*sats, cfg.Planes, *hours, cfg.Camera.Name, cfg.Camera.FrameBits()/1e9)
	fmt.Printf("frame deadline: %.1f s\n\n", deadline.Seconds())

	caps := res.FrameCapacityPerSat()
	fmt.Printf("%4s %10s %12s %14s\n", "Sat", "Frames", "Contact", "DownlinkFrames")
	for i, c := range res.Captures {
		fmt.Printf("%4d %10d %12v %14.1f\n", i, len(c), res.Served[i].Round(time.Second), caps[i])
	}
	fmt.Printf("\ntotals: observed %d frames, %d unique scenes (%.1f%% of grid), downlink capacity %.1f frames (%.1f%% of observed)\n",
		res.FramesObserved(), res.UniqueScenes(),
		100*float64(res.UniqueScenes())/float64(cfg.Grid.TotalScenes()),
		res.FrameCapacity(), 100*res.FrameCapacity()/float64(res.FramesObserved()))
}
