package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kodan/internal/telemetry"
)

// writeTrace records a small two-phase trace and writes its JSONL to a
// temp file, returning the path. quantized toggles the variant attribute
// so diff tests see an attribute flip.
func writeTrace(t *testing.T, quantized string) string {
	t.Helper()
	tr := telemetry.NewTracer(0)
	root := tr.Begin("figure.fig8")
	c := root.Child("nn.infer")
	c.Set("quantized", quantized)
	c.End()
	root.End()
	path := filepath.Join(t.TempDir(), "trace-"+quantized+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSubcommands(t *testing.T) {
	a := writeTrace(t, "false")
	b := writeTrace(t, "true")
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"summary", []string{"summary", a}, []string{"figure.fig8", "nn.infer", "2 spans"}},
		{"summary shape", []string{"summary", "-shape", a}, []string{"figure.fig8 1", "nn.infer 1"}},
		{"critical", []string{"critical", a}, []string{"critical path", "figure.fig8"}},
		{"folded", []string{"folded", a}, []string{"figure.fig8;nn.infer"}},
		{"diff", []string{"diff", a, b}, []string{"trace diff", "nn.infer", "quantized: false -> true"}},
		{"help", []string{"help"}, []string{"usage:"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output of %v missing %q:\n%s", tc.args, want, out.String())
				}
			}
		})
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	a := writeTrace(t, "false")
	b := writeTrace(t, "true")
	for _, args := range [][]string{
		{"summary", a}, {"summary", "-shape", a}, {"critical", a},
		{"folded", a}, {"diff", a, b},
	} {
		var first bytes.Buffer
		if err := run(args, &first); err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := run(args, &second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%v output differs across runs", args)
		}
	}
}

func TestRunErrors(t *testing.T) {
	a := writeTrace(t, "false")
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"ev\":\"b\",\"id\":1,\"name\":\"x\",\"wallNs\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", nil, "missing subcommand"},
		{"unknown subcommand", []string{"explode"}, "unknown subcommand"},
		{"summary no file", []string{"summary"}, "exactly one trace file"},
		{"diff one file", []string{"diff", a}, "exactly two trace files"},
		{"missing file", []string{"summary", filepath.Join(t.TempDir(), "nope.jsonl")}, "no such file"},
		{"malformed line number", []string{"summary", bad}, "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
