// kodan-trace analyzes trace files exported by the instrumented CLIs
// (kodan-sim/kodan-bench/kodan-transform -trace, kodan-server -trace):
// per-phase summaries, critical-path extraction, folded stacks for
// flamegraph tooling, and deterministic two-trace diffs with per-phase
// attribution.
//
// Usage:
//
//	kodan-trace summary [-top N] [-shape] FILE
//	kodan-trace critical FILE
//	kodan-trace folded FILE
//	kodan-trace diff FILE_A FILE_B
//
// All output is byte-deterministic for the same input file(s): the same
// trace always renders the same bytes. `summary -shape` prints only phase
// names and span counts — the part of a trace that is invariant across
// worker counts and machine speed — so CI can compare runs bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kodan/internal/telemetry/analyze"
)

const usage = `usage:
  kodan-trace summary [-top N] [-shape] FILE   per-phase self/total time (or shape only)
  kodan-trace critical FILE                    chronological critical path
  kodan-trace folded FILE                      folded stacks (flamegraph/speedscope)
  kodan-trace diff FILE_A FILE_B               per-phase delta with attribution
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kodan-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		fs := flag.NewFlagSet("summary", flag.ContinueOnError)
		top := fs.Int("top", 10, "how many slowest spans to list")
		shape := fs.Bool("shape", false, "print only phase names and span counts (worker-count invariant)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		t, err := parseOne(fs.Args(), cmd)
		if err != nil {
			return err
		}
		if *shape {
			_, err = io.WriteString(stdout, t.RenderShape())
		} else {
			_, err = io.WriteString(stdout, t.RenderSummary(*top))
		}
		return err
	case "critical":
		t, err := parseOne(rest, cmd)
		if err != nil {
			return err
		}
		_, err = io.WriteString(stdout, t.RenderCritical())
		return err
	case "folded":
		t, err := parseOne(rest, cmd)
		if err != nil {
			return err
		}
		return analyze.WriteFolded(stdout, t)
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff wants exactly two trace files, got %d\n%s", len(rest), usage)
		}
		a, err := analyze.ParseFile(rest[0])
		if err != nil {
			return err
		}
		b, err := analyze.ParseFile(rest[1])
		if err != nil {
			return err
		}
		_, err = io.WriteString(stdout, analyze.Compare(a, b).Render())
		return err
	case "-h", "-help", "--help", "help":
		_, err := io.WriteString(stdout, usage)
		return err
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

func parseOne(args []string, cmd string) (*analyze.Trace, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s wants exactly one trace file, got %d\n%s", cmd, len(args), usage)
	}
	return analyze.ParseFile(args[0])
}
