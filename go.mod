module kodan

go 1.24
