//go:build race

package app

// raceEnabled reports whether this test binary was built with the race
// detector. AllocsPerRun contracts are skipped under race: sync.Pool
// intentionally drops items at random when the detector is on, so pooled
// hot paths re-allocate nondeterministically.
const raceEnabled = true
