// Package app implements the paper's seven geospatial analysis
// applications (Table 1): pixel-segmentation cloud filters built on
// semantic-segmentation backbones of increasing cost. Each application is
// reproduced as a genuinely trained per-pixel classifier over the synthetic
// feature channels, with two architecture-derived quality knobs:
//
//   - capacity (hidden layout): larger backbones fit more expressive
//     decision boundaries;
//   - effective receptive field: architectures that rely on wide context
//     (HRNet, UPerNet) degrade when tiles shrink below their field,
//     reproducing the per-architecture tiling optima of Figure 13;
//
// and one measured quantity imported verbatim from the paper: the per-tile
// execution time on each hardware target (Table 1), which cannot be
// re-measured without the physical devices.
//
// Per Section 3.3, a reference (generic) model is trained on the whole
// representative dataset and specialized models are trained per context;
// quality is then measured per (application, tiling, context) as confusion
// rates over held-out validation frames. Those rates are what the selection
// logic and the deployment simulations consume.
package app

import (
	"context"
	"fmt"
	"sync"

	"kodan/internal/ctxengine"
	"kodan/internal/dataset"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/nn"
	"kodan/internal/telemetry"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// Architecture describes one of the seven applications.
type Architecture struct {
	// Index is the 1-based application number used in the paper's figures.
	Index int
	// Name is the model-zoo architecture from Table 1.
	Name string
	// PerTileMs is the measured per-tile latency on each hardware target,
	// indexed by hw.Target, copied from Table 1.
	PerTileMs [hw.NumTargets]float64
	// Hidden is the stand-in classifier's hidden layout (capacity).
	Hidden []int
	// NoiseFloor is extra per-pixel feature noise modeling backbone
	// quality: weaker backbones extract noisier representations.
	NoiseFloor float64
	// RFDeg is the effective receptive field in degrees of ground extent;
	// tiles smaller than this starve the model of context.
	RFDeg float64
	// RFNoise is the added feature noise at full receptive-field starvation.
	RFNoise float64
}

// String implements fmt.Stringer.
func (a Architecture) String() string { return fmt.Sprintf("App %d (%s)", a.Index, a.Name) }

// Apps returns the seven applications with Table 1's measured latencies
// (columns: 1070 Ti, i7-7800, Orin 15W).
func Apps() []Architecture {
	return []Architecture{
		{Index: 1, Name: "mobilenetv2dilated-c1-deepsup", PerTileMs: [hw.NumTargets]float64{178.2, 440.6, 618.8},
			Hidden: []int{10}, NoiseFloor: 0.050, RFDeg: 0.11, RFNoise: 0.05},
		{Index: 2, Name: "resnet18dilated-ppm-deepsup", PerTileMs: [hw.NumTargets]float64{237.6, 940.6, 935.6},
			Hidden: []int{3}, NoiseFloor: 0.095, RFDeg: 0.16, RFNoise: 0.05},
		{Index: 3, Name: "hrnetv2-c1", PerTileMs: [hw.NumTargets]float64{321.8, 1292, 1515},
			Hidden: []int{12}, NoiseFloor: 0.050, RFDeg: 0.42, RFNoise: 0.13},
		{Index: 4, Name: "resnet50dilated-ppm-deepsup", PerTileMs: [hw.NumTargets]float64{361.4, 1787, 1594},
			Hidden: []int{14}, NoiseFloor: 0.044, RFDeg: 0.20, RFNoise: 0.05},
		{Index: 5, Name: "resnet50-upernet", PerTileMs: [hw.NumTargets]float64{410.9, 2124, 1797},
			Hidden: []int{14}, NoiseFloor: 0.038, RFDeg: 0.36, RFNoise: 0.09},
		{Index: 6, Name: "resnet101-upernet", PerTileMs: [hw.NumTargets]float64{445.5, 2307, 1970},
			Hidden: []int{16}, NoiseFloor: 0.033, RFDeg: 0.36, RFNoise: 0.09},
		{Index: 7, Name: "resnet101dilated-ppm-deepsup", PerTileMs: [hw.NumTargets]float64{475.2, 2545, 2040},
			Hidden: []int{16}, NoiseFloor: 0.027, RFDeg: 0.26, RFNoise: 0.05},
	}
}

// App returns the architecture with the given 1-based index.
func App(index int) Architecture {
	apps := Apps()
	if index < 1 || index > len(apps) {
		panic(fmt.Sprintf("app: no application %d", index))
	}
	return apps[index-1]
}

// rfPenalty returns the receptive-field noise for a tile of the given
// ground extent.
func (a Architecture) rfPenalty(tileSizeDeg float64) float64 {
	if tileSizeDeg >= a.RFDeg {
		return 0
	}
	return a.RFNoise * (1 - tileSizeDeg/a.RFDeg)
}

// inputDim is the pixel-classifier input dimension: the per-pixel feature
// channels. Deliberately no tile-level context inputs — the paper's
// reference applications are per-pixel segmentation heads whose inability
// to condition on geospatial context is exactly what model specialization
// exploits (Section 3.3).
const inputDim = imagery.NumFeatures

// Model is one trained pixel classifier.
type Model struct {
	// Arch is the architecture this model instantiates.
	Arch Architecture
	// Context is the engine context it is specialized to, or -1 for the
	// generic (reference) model.
	Context int
	net     *nn.Net
	// qnet is the int8 twin derived post-training when the suite was built
	// with TrainOptions.Quantized; predictions then run the integer path.
	qnet *nn.QuantizedNet
}

// Quantized reports whether this model predicts through the int8 path.
func (m *Model) Quantized() bool { return m.qnet != nil }

// TrainOptions control suite construction.
type TrainOptions struct {
	// PixelsPerTile is the number of training pixels sampled per tile.
	PixelsPerTile int
	// EvalPixelsPerTile is the number of validation pixels per tile.
	EvalPixelsPerTile int
	// Train is the per-model training configuration.
	Train nn.TrainConfig
	// Augment mirrors training tiles (the paper's data augmentation).
	Augment bool
	// Quantized derives an int8 quantized twin of every trained model
	// (nn.Quantize) and runs all suite predictions — quality measurement
	// included — through it, so the measured confusions price the
	// quantization error into the selection logic. Training itself stays
	// float; the same RNG stream is consumed either way.
	Quantized bool
}

// quantCalibSamples caps the activation-calibration sample Quantize sees:
// the first rows of the model's own training set, enough to bound the
// per-layer activation range without re-walking the full split.
const quantCalibSamples = 256

// DefaultTrainOptions returns options sized for the transformation step.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		PixelsPerTile:     32,
		EvalPixelsPerTile: 48,
		Train:             nn.TrainConfig{Epochs: 6, BatchSize: 32, LearnRate: 0.06, Momentum: 0.9},
		Augment:           true,
	}
}

// buildInput assembles the model input for pixel p of a tile, adding the
// architecture's noise terms from rng.
func buildInput(t *imagery.Tile, p int, a Architecture, rng *xrand.Rand, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, inputDim)
	}
	sigma := a.NoiseFloor + a.rfPenalty(t.Region.SizeDeg)
	for c := 0; c < imagery.NumFeatures; c++ {
		dst[c] = t.Features[c][p] + rng.Norm(0, sigma)
	}
	return dst
}

// trainModel fits one classifier on the given tiles. ctx is checked
// between training epochs; on cancellation the partially trained model is
// discarded and ctx.Err() returned.
func trainModel(ctx context.Context, a Architecture, contextIdx int, tiles []*imagery.Tile, opts TrainOptions, rng *xrand.Rand) (*Model, error) {
	// Size the sample up front so the inputs live in one flat backing
	// array: one allocation instead of one per sample, and sequential
	// training reads.
	total := 0
	for _, t := range tiles {
		n := opts.PixelsPerTile
		if n > t.Pixels() {
			n = t.Pixels()
		}
		total += n
	}
	xs := make([][]float64, 0, total)
	ys := make([]float64, 0, total)
	flat := make([]float64, total*inputDim)
	sampleRng := rng.Split()
	for _, t := range tiles {
		n := opts.PixelsPerTile
		if n > t.Pixels() {
			n = t.Pixels()
		}
		for i := 0; i < n; i++ {
			p := sampleRng.Intn(t.Pixels())
			in := flat[len(xs)*inputDim : (len(xs)+1)*inputDim]
			buildInput(t, p, a, sampleRng, in)
			xs = append(xs, in)
			y := 0.0
			if t.Truth[p] {
				y = 1
			}
			ys = append(ys, y)
		}
	}
	net := nn.NewBinary(inputDim, a.Hidden, rng.Split())
	if len(xs) > 0 {
		if _, err := net.FitCtx(ctx, xs, ys, opts.Train, rng.Split()); err != nil {
			return nil, err
		}
	}
	m := &Model{Arch: a, Context: contextIdx, net: net}
	if opts.Quantized {
		calib := xs
		if len(calib) > quantCalibSamples {
			calib = calib[:quantCalibSamples]
		}
		m.qnet = net.Quantize(calib)
	}
	return m, nil
}

// predictScratch carries the reusable buffers of one batched tile
// prediction: the flat input block, its per-row views, the probability
// outputs, and the sampled pixel indices.
type predictScratch struct {
	flat  []float64
	xs    [][]float64
	probs []float64
	pix   []int
}

// predictPool recycles prediction scratch across tiles and models (the
// input dimension is a package constant), so steady-state tile traversal
// allocates nothing.
var predictPool = sync.Pool{New: func() interface{} { return new(predictScratch) }}

// grow ensures capacity for n rows.
func (s *predictScratch) grow(n int) {
	if cap(s.probs) >= n {
		return
	}
	s.flat = make([]float64, n*inputDim)
	s.xs = make([][]float64, n)
	for i := range s.xs {
		s.xs[i] = s.flat[i*inputDim : (i+1)*inputDim]
	}
	s.probs = make([]float64, n)
	s.pix = make([]int, n)
}

// predictBatch routes a prepared input batch through the model's active
// inference path (float, or int8 when quantized).
func (m *Model) predictBatch(xs [][]float64, out []float64) {
	if m.qnet != nil {
		m.qnet.PredictBatch(xs, out)
		return
	}
	m.net.PredictBatch(xs, out)
}

// PredictTile classifies every pixel of a tile, returning the predicted
// high-value mask and the confusion against truth. rng supplies the
// architecture noise draw (pass a deterministic stream).
func (m *Model) PredictTile(t *imagery.Tile, rng *xrand.Rand) ([]bool, nn.Confusion) {
	mask := make([]bool, t.Pixels())
	return mask, m.PredictTileInto(t, rng, mask)
}

// PredictTileInto is PredictTile writing into a caller-owned mask with at
// least t.Pixels() elements: inputs for the whole tile are staged in
// pooled buffers and predicted as one batch, so steady-state calls
// allocate nothing. The noise draws, predictions, and confusion are
// identical to the per-pixel path.
func (m *Model) PredictTileInto(t *imagery.Tile, rng *xrand.Rand, mask []bool) nn.Confusion {
	n := t.Pixels()
	s := predictPool.Get().(*predictScratch)
	s.grow(n)
	for p := 0; p < n; p++ {
		buildInput(t, p, m.Arch, rng, s.xs[p])
	}
	m.predictBatch(s.xs[:n], s.probs)
	var c nn.Confusion
	for p := 0; p < n; p++ {
		pred := s.probs[p] > 0.5
		mask[p] = pred
		c.Add(pred, t.Truth[p])
	}
	predictPool.Put(s)
	return c
}

// evalModel measures a model's confusion over sampled pixels of the tiles,
// one batched prediction per tile.
func evalModel(m *Model, tiles []*imagery.Tile, perTile int, rng *xrand.Rand) nn.Confusion {
	var c nn.Confusion
	s := predictPool.Get().(*predictScratch)
	s.grow(perTile)
	for _, t := range tiles {
		n := perTile
		if n > t.Pixels() {
			n = t.Pixels()
		}
		for i := 0; i < n; i++ {
			p := rng.Intn(t.Pixels())
			s.pix[i] = p
			buildInput(t, p, m.Arch, rng, s.xs[i])
		}
		m.predictBatch(s.xs[:n], s.probs)
		for i := 0; i < n; i++ {
			c.Add(s.probs[i] > 0.5, t.Truth[s.pix[i]])
		}
	}
	predictPool.Put(s)
	return c
}

// Quality is the measured confusion table of one (application, tiling)
// pair: per context and overall, for the generic, single-context
// specialized, and multi-context (merged) specialized models.
type Quality struct {
	App     int
	Tiling  tiling.Tiling
	K       int
	Generic []nn.Confusion // indexed by context
	Special []nn.Confusion // indexed by context
	Merged  []nn.Confusion // indexed by context (its group's model)
	// GenericAll and SpecialAll aggregate over contexts.
	GenericAll nn.Confusion
	SpecialAll nn.Confusion
}

// Suite is everything the transformation step produces for one
// (application, tiling): trained models plus measured quality. Following
// Section 3.3, models are specialized both to single contexts (Special)
// and across multiple contexts (Merged: one model per dominant-geography
// group, indexed by context) — merged models trade specialization
// sharpness for more training data, and the selection logic considers
// both.
type Suite struct {
	Arch    Architecture
	Tiling  tiling.Tiling
	Generic *Model
	Special []*Model // indexed by context
	Merged  []*Model // indexed by context; contexts in a group share a model
	Quality Quality
}

// BuildSuite trains the generic and per-context specialized models for one
// application at one tiling and measures their validation quality per
// context. train and val must share the tiling; ctx supplies the context
// partition (its engine labels both splits, matching the paper's use of
// engine output as ground truth).
func BuildSuite(a Architecture, tl tiling.Tiling, train, val *dataset.Dataset, ctx *ctxengine.Set, opts TrainOptions, rng *xrand.Rand) *Suite {
	suite, err := BuildSuiteCtx(context.Background(), a, tl, train, val, ctx, opts, rng)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return suite
}

// SuiteData is the tiling-level training input of a suite build, prepared
// once and shared across applications: augmenting the training split and
// running the context engine over every tile are application-independent,
// so a workspace sweeping seven applications per tiling prepares each
// tiling once instead of seven times.
type SuiteData struct {
	// Train is the training split, already augmented when requested.
	Train *dataset.Dataset
	// Val is the validation split.
	Val *dataset.Dataset
	// TrainLabels and ValLabels are the engine's context labels for the
	// corresponding splits.
	TrainLabels []int
	ValLabels   []int
}

// PrepareSuiteData augments (when requested) and labels a split pair for
// repeated BuildSuiteData calls.
func PrepareSuiteData(train, val *dataset.Dataset, ctx *ctxengine.Set, augment bool) SuiteData {
	td := train
	if augment {
		td = train.Augment()
	}
	return SuiteData{
		Train:       td,
		Val:         val,
		TrainLabels: ctx.LabelAll(td),
		ValLabels:   ctx.LabelAll(val),
	}
}

// BuildSuiteCtx is BuildSuite with cooperative cancellation: cc is checked
// between model trainings (and, via nn.FitCtx, between epochs). A run that
// completes is bit-identical to BuildSuite with the same inputs.
func BuildSuiteCtx(cc context.Context, a Architecture, tl tiling.Tiling, train, val *dataset.Dataset, ctx *ctxengine.Set, opts TrainOptions, rng *xrand.Rand) (*Suite, error) {
	if opts.PixelsPerTile <= 0 {
		opts = DefaultTrainOptions()
	}
	return BuildSuiteData(cc, a, tl, PrepareSuiteData(train, val, ctx, opts.Augment), ctx, opts, rng)
}

// BuildSuiteData is BuildSuiteCtx over pre-augmented, pre-labeled splits
// (see PrepareSuiteData); data preparation is deterministic, so the result
// is bit-identical to BuildSuiteCtx on the raw splits.
func BuildSuiteData(cc context.Context, a Architecture, tl tiling.Tiling, data SuiteData, ctx *ctxengine.Set, opts TrainOptions, rng *xrand.Rand) (*Suite, error) {
	if opts.PixelsPerTile <= 0 {
		opts = DefaultTrainOptions()
	}
	// The two stages get their own spans so trace diffs can attribute a
	// float-vs-quantized delta to inference rather than training. The
	// variant attributes label what changed between two compared runs.
	tctx, trainSpan := telemetry.StartSpan(cc, "nn.train")
	defer trainSpan.End() // idempotent: covers the error returns below
	trainSpan.Set("app", fmt.Sprint(a.Index))
	trainSpan.Set("quantized", fmt.Sprint(opts.Quantized))

	trainData := data.Train
	trainLabels := data.TrainLabels
	val := data.Val
	valLabels := data.ValLabels

	allTiles := make([]*imagery.Tile, trainData.Len())
	byCtx := make([][]*imagery.Tile, ctx.K)
	for i, s := range trainData.Samples {
		allTiles[i] = s.Tile
		c := trainLabels[i]
		byCtx[c] = append(byCtx[c], s.Tile)
	}

	suite := &Suite{Arch: a, Tiling: tl}
	var err error
	suite.Generic, err = trainModel(tctx, a, -1, allTiles, opts, rng.Split())
	if err != nil {
		return nil, err
	}
	suite.Special = make([]*Model, ctx.K)
	for c := 0; c < ctx.K; c++ {
		tiles := byCtx[c]
		if len(tiles) == 0 {
			// No training data for the context: fall back to the generic
			// model (the selection logic will treat them identically).
			suite.Special[c] = suite.Generic
			continue
		}
		suite.Special[c], err = trainModel(tctx, a, c, tiles, opts, rng.Split())
		if err != nil {
			return nil, err
		}
	}

	// Multi-context models: one per dominant-geography group. Contexts
	// that share terrain share a merged model trained on their union.
	suite.Merged = make([]*Model, ctx.K)
	var groups [imagery.NumGeoClasses][]int
	for c := 0; c < ctx.K; c++ {
		g := ctx.Stats[c].DominantGeo
		groups[g] = append(groups[g], c)
	}
	for _, members := range groups {
		if len(members) == 0 {
			continue
		}
		var tiles []*imagery.Tile
		for _, c := range members {
			tiles = append(tiles, byCtx[c]...)
		}
		var m *Model
		if len(tiles) == 0 {
			m = suite.Generic
		} else {
			m, err = trainModel(tctx, a, members[0], tiles, opts, rng.Split())
			if err != nil {
				return nil, err
			}
		}
		for _, c := range members {
			suite.Merged[c] = m
		}
	}

	trainSpan.End()

	// Measure validation quality per context.
	if err := cc.Err(); err != nil {
		return nil, err
	}
	_, inferSpan := telemetry.StartSpan(cc, "nn.infer")
	defer inferSpan.End()
	inferSpan.Set("app", fmt.Sprint(a.Index))
	inferSpan.Set("quantized", fmt.Sprint(opts.Quantized))
	q := Quality{App: a.Index, Tiling: tl, K: ctx.K,
		Generic: make([]nn.Confusion, ctx.K),
		Special: make([]nn.Confusion, ctx.K),
		Merged:  make([]nn.Confusion, ctx.K),
	}
	valByCtx := make([][]*imagery.Tile, ctx.K)
	for i, s := range val.Samples {
		valByCtx[valLabels[i]] = append(valByCtx[valLabels[i]], s.Tile)
	}
	for c := 0; c < ctx.K; c++ {
		if len(valByCtx[c]) == 0 {
			continue
		}
		q.Generic[c] = evalModel(suite.Generic, valByCtx[c], opts.EvalPixelsPerTile, rng.Split())
		q.Special[c] = evalModel(suite.Special[c], valByCtx[c], opts.EvalPixelsPerTile, rng.Split())
		q.Merged[c] = evalModel(suite.Merged[c], valByCtx[c], opts.EvalPixelsPerTile, rng.Split())
		q.GenericAll.Merge(q.Generic[c])
		q.SpecialAll.Merge(q.Special[c])
	}
	suite.Quality = q
	return suite, nil
}
