package app

import (
	"context"
	"math"
	"testing"

	"kodan/internal/imagery"
	"kodan/internal/xrand"
)

// allocModels trains one float model and one int8-quantized model on a
// rendered tile — the fixture for the hot-path allocation and routing
// tests below.
func allocModels(t *testing.T) (*Model, *Model, *imagery.Tile) {
	t.Helper()
	w := imagery.NewWorld(9)
	tile := w.RenderTile(imagery.Region{LonDeg: 5, LatDeg: 10, SizeDeg: 0.4}, 12, 0)
	tiles := []*imagery.Tile{tile}

	opts := DefaultTrainOptions()
	rng := xrand.New(4)
	mf, err := trainModel(context.Background(), App(1), -1, tiles, opts, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	opts.Quantized = true
	mq, err := trainModel(context.Background(), App(1), -1, tiles, opts, xrand.New(4).Split())
	if err != nil {
		t.Fatal(err)
	}
	if mf.Quantized() || !mq.Quantized() {
		t.Fatalf("variant routing wrong: float.Quantized=%v quant.Quantized=%v", mf.Quantized(), mq.Quantized())
	}
	return mf, mq, tile
}

// TestPredictTileIntoAllocFree pins the batched transform hot path's
// zero-allocation contract for both inference variants: once the pooled
// scratch is warm, classifying a whole tile allocates nothing.
func TestPredictTileIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	mf, mq, tile := allocModels(t)
	mask := make([]bool, tile.Pixels())
	rng := xrand.New(11)

	for name, m := range map[string]*Model{"float": mf, "quantized": mq} {
		m.PredictTileInto(tile, rng, mask) // warm the pool
		if avg := testing.AllocsPerRun(30, func() {
			m.PredictTileInto(tile, rng, mask)
		}); avg != 0 {
			t.Errorf("%s: PredictTileInto allocates %.1f per run, want 0", name, avg)
		}
	}
}

// TestEvalModelAllocFree pins the quality-measurement path: evaluating a
// model over tiles reuses the same pooled batch scratch.
func TestEvalModelAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	mf, mq, tile := allocModels(t)
	tiles := []*imagery.Tile{tile, tile}
	rng := xrand.New(13)

	for name, m := range map[string]*Model{"float": mf, "quantized": mq} {
		evalModel(m, tiles, 16, rng) // warm the pool
		if avg := testing.AllocsPerRun(30, func() {
			evalModel(m, tiles, 16, rng)
		}); avg != 0 {
			t.Errorf("%s: evalModel allocates %.1f per run, want 0", name, avg)
		}
	}
}

// TestQuantizedTilePredictionsClose checks the int8 twin tracks the float
// model on whole-tile classification: same training stream, same noise
// draws, near-identical masks.
func TestQuantizedTilePredictionsClose(t *testing.T) {
	mf, mq, tile := allocModels(t)
	n := tile.Pixels()
	maskF := make([]bool, n)
	maskQ := make([]bool, n)
	mf.PredictTileInto(tile, xrand.New(21), maskF)
	mq.PredictTileInto(tile, xrand.New(21), maskQ)
	agree := 0
	for p := 0; p < n; p++ {
		if maskF[p] == maskQ[p] {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.95 {
		t.Errorf("float/int8 tile mask agreement %.3f < 0.95", frac)
	}
}

// TestBuildInputFinite guards the input staging against NaN leaks from
// the noise model: rendered features plus architecture noise must stay
// finite.
func TestBuildInputFinite(t *testing.T) {
	_, _, tile := allocModels(t)
	rng := xrand.New(31)
	dst := make([]float64, imagery.NumFeatures)
	for p := 0; p < tile.Pixels(); p++ {
		buildInput(tile, p, App(7), rng, dst)
		for c, v := range dst {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("pixel %d channel %d: non-finite input %v", p, c, v)
			}
		}
	}
}
