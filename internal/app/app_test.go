package app

import (
	"testing"

	"kodan/internal/ctxengine"
	"kodan/internal/dataset"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

func TestTableOne(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("apps = %d", len(apps))
	}
	// Spot-check the published numbers.
	if apps[0].PerTileMs[hw.GTX1070Ti] != 178.2 || apps[0].PerTileMs[hw.Orin15W] != 618.8 {
		t.Fatal("App 1 latencies do not match Table 1")
	}
	if apps[6].PerTileMs[hw.I7_7800X] != 2545 || apps[6].PerTileMs[hw.Orin15W] != 2040 {
		t.Fatal("App 7 latencies do not match Table 1")
	}
	// Latencies increase with app index on the 1070 Ti (the table's sort).
	for i := 1; i < len(apps); i++ {
		if apps[i].PerTileMs[hw.GTX1070Ti] <= apps[i-1].PerTileMs[hw.GTX1070Ti] {
			t.Fatalf("1070 Ti latency not increasing at app %d", i+1)
		}
	}
	for i, a := range apps {
		if a.Index != i+1 || a.Name == "" {
			t.Fatalf("app %d malformed", i)
		}
	}
}

func TestAppLookup(t *testing.T) {
	if App(3).Name != "hrnetv2-c1" {
		t.Fatal("App(3) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for App(0)")
		}
	}()
	App(0)
}

func TestRFPenalty(t *testing.T) {
	a := Architecture{RFDeg: 0.4, RFNoise: 0.12}
	if p := a.rfPenalty(0.5); p != 0 {
		t.Fatalf("penalty above RF = %v", p)
	}
	if p := a.rfPenalty(0.4); p != 0 {
		t.Fatalf("penalty at RF = %v", p)
	}
	if p := a.rfPenalty(0.2); p <= 0 || p >= 0.12 {
		t.Fatalf("penalty at half RF = %v", p)
	}
	if p := a.rfPenalty(0.1); p <= a.rfPenalty(0.2) {
		t.Fatalf("penalty not increasing as tiles shrink")
	}
}

// buildTestSuite trains a small suite shared by the behavioral tests.
func buildTestSuite(t *testing.T, appIdx int, perSide int) (*Suite, *ctxengine.Set, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig(2023, tiling.Tiling{PerSide: perSide})
	cfg.Frames = 90
	cfg.TileRes = 16
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, val := ds.Split(0.25, xrand.New(7))
	ctx, err := ctxengine.Build(train, ctxengine.DefaultConfig(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultTrainOptions()
	opts.Augment = false // keep tests fast
	suite := BuildSuite(App(appIdx), tiling.Tiling{PerSide: perSide}, train, val, ctx, opts, xrand.New(11))
	return suite, ctx, val
}

func TestSuiteQualityBasics(t *testing.T) {
	suite, ctx, _ := buildTestSuite(t, 4, 3)
	q := suite.Quality
	if q.K != ctx.K || len(q.Generic) != ctx.K || len(q.Special) != ctx.K {
		t.Fatalf("quality shape wrong: K=%d", q.K)
	}
	if q.GenericAll.Total() == 0 || q.SpecialAll.Total() == 0 {
		t.Fatal("no validation measurements")
	}
	// A trained cloud filter must beat chance decisively.
	if acc := q.GenericAll.Accuracy(); acc < 0.7 {
		t.Fatalf("generic accuracy = %.3f", acc)
	}
	// And an in-paper-range ceiling: no perfect classifier on this data.
	if acc := q.SpecialAll.Accuracy(); acc > 0.995 {
		t.Fatalf("specialized accuracy suspiciously perfect: %.3f", acc)
	}
}

func TestSpecializationImprovesQuality(t *testing.T) {
	// Section 5.3: contexts improve accuracy and (especially) precision.
	// App 2 is the weakest backbone and gains the most.
	suite, _, _ := buildTestSuite(t, 2, 3)
	q := suite.Quality
	if q.SpecialAll.Accuracy() <= q.GenericAll.Accuracy() {
		t.Fatalf("specialization did not improve accuracy: %.3f vs %.3f",
			q.SpecialAll.Accuracy(), q.GenericAll.Accuracy())
	}
	if q.SpecialAll.Precision() <= q.GenericAll.Precision() {
		t.Fatalf("specialization did not improve precision: %.3f vs %.3f",
			q.SpecialAll.Precision(), q.GenericAll.Precision())
	}
}

func TestPredictTileMaskShape(t *testing.T) {
	suite, _, val := buildTestSuite(t, 1, 3)
	tile := val.Samples[0].Tile
	mask, c := suite.Generic.PredictTile(tile, xrand.New(5))
	if len(mask) != tile.Pixels() {
		t.Fatalf("mask len %d", len(mask))
	}
	if c.Total() != tile.Pixels() {
		t.Fatalf("confusion total %d", c.Total())
	}
}

func TestBuildSuiteDeterministic(t *testing.T) {
	a, _, _ := buildTestSuite(t, 1, 3)
	b, _, _ := buildTestSuite(t, 1, 3)
	if a.Quality.GenericAll != b.Quality.GenericAll {
		t.Fatal("suite construction not deterministic")
	}
	if a.Quality.SpecialAll != b.Quality.SpecialAll {
		t.Fatal("specialized quality not deterministic")
	}
}

func TestStrongerBackboneBeatsWeaker(t *testing.T) {
	weak, _, _ := buildTestSuite(t, 2, 3)   // linear resnet18 stand-in
	strong, _, _ := buildTestSuite(t, 7, 3) // largest backbone
	if strong.Quality.GenericAll.Accuracy() <= weak.Quality.GenericAll.Accuracy() {
		t.Fatalf("App 7 (%.3f) not better than App 2 (%.3f)",
			strong.Quality.GenericAll.Accuracy(), weak.Quality.GenericAll.Accuracy())
	}
}

func TestMergedModelsCoverAllContexts(t *testing.T) {
	suite, ctx, _ := buildTestSuite(t, 4, 3)
	if len(suite.Merged) != ctx.K {
		t.Fatalf("merged models = %d, want %d", len(suite.Merged), ctx.K)
	}
	// Contexts sharing a dominant geography share one merged model.
	byGeo := map[imagery.GeoClass]*Model{}
	for c := 0; c < ctx.K; c++ {
		if suite.Merged[c] == nil {
			t.Fatalf("context %d has no merged model", c)
		}
		g := ctx.Stats[c].DominantGeo
		if prev, ok := byGeo[g]; ok && prev != suite.Merged[c] {
			t.Fatalf("geography %v has two merged models", g)
		}
		byGeo[g] = suite.Merged[c]
	}
	// Merged quality is measured for every populated context.
	for c := 0; c < ctx.K; c++ {
		if suite.Quality.Special[c].Total() > 0 && suite.Quality.Merged[c].Total() == 0 {
			t.Fatalf("context %d has specialized quality but no merged quality", c)
		}
	}
}
