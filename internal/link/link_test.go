package link

import (
	"testing"
	"time"

	"kodan/internal/station"
)

var t0 = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func w(startSec, endSec int) station.Window {
	return station.Window{
		Start: t0.Add(time.Duration(startSec) * time.Second),
		End:   t0.Add(time.Duration(endSec) * time.Second),
	}
}

func TestRadioBits(t *testing.T) {
	r := Landsat8Radio()
	if got := r.Bits(time.Second); got != 384e6 {
		t.Fatalf("bits/s = %v", got)
	}
	if got := r.Bits(10 * time.Minute); got != 384e6*600 {
		t.Fatalf("bits/10min = %v", got)
	}
}

func TestAllocateSingleSatGetsAllTime(t *testing.T) {
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{{w(100, 400)}}},
	}
	grants := Allocate(p)
	if got := TotalServed(grants); got != 300*time.Second {
		t.Fatalf("served %v, want 5m0s", got)
	}
	if len(grants) != 1 {
		t.Fatalf("grants not merged: %d", len(grants))
	}
}

func TestAllocateContentionSplitsFairly(t *testing.T) {
	// Two satellites visible at the same station over the same window must
	// share it approximately evenly.
	shared := []station.Window{w(0, 600)}
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{shared, shared}},
	}
	served := PerSatServed(Allocate(p), 2)
	if served[0]+served[1] != 600*time.Second {
		t.Fatalf("total %v, want 10m", served[0]+served[1])
	}
	diff := served[0] - served[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Second {
		t.Fatalf("unfair split: %v vs %v", served[0], served[1])
	}
}

func TestAllocateClaimsIdleTime(t *testing.T) {
	// Two satellites with disjoint windows both get their full window —
	// the Figure 2 "claiming previously idle ground station time" effect.
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{
			{w(0, 300)},
			{w(1000, 1300)},
		}},
	}
	served := PerSatServed(Allocate(p), 2)
	if served[0] != 300*time.Second || served[1] != 300*time.Second {
		t.Fatalf("served %v", served)
	}
}

func TestAllocateOneRadioPerSatellite(t *testing.T) {
	// A satellite visible at two stations simultaneously can only use one.
	win := []station.Window{w(0, 100)}
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{win}, {win}},
	}
	served := PerSatServed(Allocate(p), 1)
	if served[0] != 100*time.Second {
		t.Fatalf("served %v, want 1m40s (not double-counted)", served[0])
	}
}

func TestAllocateTwoStationsTwoSats(t *testing.T) {
	// Two stations, two satellites, all mutually visible: both stations
	// should be busy every quantum, serving different satellites.
	win := []station.Window{w(0, 200)}
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{win, win}, {win, win}},
	}
	served := PerSatServed(Allocate(p), 2)
	if served[0] != 200*time.Second || served[1] != 200*time.Second {
		t.Fatalf("served %v, want both fully served", served)
	}
}

func TestAllocateDeterministic(t *testing.T) {
	win := []station.Window{w(0, 600), w(1200, 1500)}
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{win, win, win}},
	}
	a := Allocate(p)
	b := Allocate(p)
	if len(a) != len(b) {
		t.Fatalf("grant counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d differs", i)
		}
	}
}

func TestAllocateGrantsWithinWindows(t *testing.T) {
	win := []station.Window{w(50, 250), w(400, 500)}
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{win}},
	}
	for _, g := range Allocate(p) {
		inside := false
		for _, ww := range win {
			if !g.Start.Before(ww.Start) && !g.End().After(ww.End) {
				inside = true
			}
		}
		if !inside {
			t.Fatalf("grant %+v outside windows", g)
		}
	}
}

func TestAllocateEmptyProblem(t *testing.T) {
	if got := Allocate(Problem{Start: t0, Span: time.Hour, Quantum: time.Second}); got != nil {
		t.Fatalf("expected nil grants, got %v", got)
	}
}

func TestAllocateSaturation(t *testing.T) {
	// With one always-on station, total served time saturates at the span
	// while per-satellite time shrinks with population — the Figure 2
	// saturation regime.
	full := []station.Window{w(0, 3600)}
	prevPer := time.Duration(1 << 62)
	for _, n := range []int{1, 2, 4, 8} {
		satsRow := make([][]station.Window, n)
		for i := range satsRow {
			satsRow[i] = full
		}
		p := Problem{Start: t0, Span: time.Hour, Quantum: 10 * time.Second,
			Windows: [][][]station.Window{satsRow}}
		grants := Allocate(p)
		if total := TotalServed(grants); total != time.Hour {
			t.Fatalf("n=%d: station idle, served %v of 1h", n, total)
		}
		served := PerSatServed(grants, n)
		if served[0] >= prevPer {
			t.Fatalf("n=%d: per-sat time %v did not shrink from %v", n, served[0], prevPer)
		}
		prevPer = served[0]
	}
}
