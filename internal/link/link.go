// Package link models the space-to-ground communication segment: radio
// data rates and the allocation of shared ground-station time among the
// satellites of a constellation. It reproduces the contention behavior at
// the heart of the paper's downlink-bottleneck analysis (Figure 2): a lone
// satellite leaves stations idle most of the time; additional satellites
// first claim idle time and then saturate the segment, after which adding
// satellites adds observations but no downlink.
package link

import (
	"sort"
	"time"

	"kodan/internal/station"
)

// Radio is a satellite downlink radio characterized by its data rate.
type Radio struct {
	// RateBps is the downlink data rate in bits per second.
	RateBps float64
}

// Landsat8Radio returns the Landsat 8 X-band downlink (384 Mbit/s).
func Landsat8Radio() Radio { return Radio{RateBps: 384e6} }

// Bits returns the number of bits transferable in d at the radio's rate.
func (r Radio) Bits(d time.Duration) float64 {
	return r.RateBps * d.Seconds()
}

// Grant is an interval of station time awarded to one satellite.
type Grant struct {
	Station int
	Sat     int
	Start   time.Time
	Dur     time.Duration
}

// End returns the grant's end time.
func (g Grant) End() time.Time { return g.Start.Add(g.Dur) }

// Problem describes an allocation run. Windows[i][j] lists the visibility
// windows of satellite j at station i over [Start, Start+Span).
type Problem struct {
	Start   time.Time
	Span    time.Duration
	Quantum time.Duration // scheduling granularity; e.g. 10 s
	Windows [][][]station.Window
}

// sats returns the satellite count implied by the window matrix.
func (p Problem) sats() int {
	n := 0
	for _, row := range p.Windows {
		if len(row) > n {
			n = len(row)
		}
	}
	return n
}

// Allocate assigns station time to satellites. Each station serves at most
// one satellite per quantum, and each satellite talks to at most one
// station per quantum (it has one radio). Among visible candidates a
// station picks the satellite that has been served least so far (ties to
// the lowest index), which converges to a fair division under saturation
// while leaving no claimable time idle. The result is deterministic.
//
// Adjacent per-quantum grants to the same (station, satellite) pair are
// merged, so the returned grants are maximal contiguous serve intervals in
// time order.
func Allocate(p Problem) []Grant {
	if p.Quantum <= 0 {
		panic("link: non-positive quantum")
	}
	nSats := p.sats()
	if nSats == 0 || len(p.Windows) == 0 {
		return nil
	}
	served := make([]time.Duration, nSats)
	// Per-station cursor into its (sorted) window lists flattened per sat.
	type cursor struct{ winIdx []int }
	cursors := make([]cursor, len(p.Windows))
	for i := range cursors {
		cursors[i].winIdx = make([]int, nSats)
		for j := range p.Windows[i] {
			sort.Slice(p.Windows[i][j], func(a, b int) bool {
				return p.Windows[i][j][a].Start.Before(p.Windows[i][j][b].Start)
			})
		}
	}

	var grants []Grant
	end := p.Start.Add(p.Span)
	busy := make([]bool, nSats) // satellite already granted this quantum
	for t := p.Start; t.Before(end); t = t.Add(p.Quantum) {
		for i := range busy {
			busy[i] = false
		}
		for st := range p.Windows {
			best := -1
			for sat := 0; sat < nSats; sat++ {
				if busy[sat] || sat >= len(p.Windows[st]) {
					continue
				}
				if !visibleAt(p.Windows[st][sat], &cursors[st].winIdx[sat], t) {
					continue
				}
				if best == -1 || served[sat] < served[best] {
					best = sat
				}
			}
			if best == -1 {
				continue
			}
			busy[best] = true
			served[best] += p.Quantum
			// Merge with the previous grant when contiguous.
			if n := len(grants); n > 0 {
				last := &grants[n-1]
				if last.Station == st && last.Sat == best && last.End().Equal(t) {
					last.Dur += p.Quantum
					continue
				}
			}
			grants = append(grants, Grant{Station: st, Sat: best, Start: t, Dur: p.Quantum})
		}
	}
	return grants
}

// visibleAt reports whether t falls inside one of the sorted windows,
// advancing *idx monotonically so repeated queries with increasing t are
// amortized O(1).
func visibleAt(ws []station.Window, idx *int, t time.Time) bool {
	for *idx < len(ws) && !t.Before(ws[*idx].End) {
		*idx++
	}
	return *idx < len(ws) && ws[*idx].Contains(t)
}

// DeratedBits integrates per-satellite downlink capacity over the grants
// under a time-varying capacity multiplier (1.0 = nominal rate), sampled
// once per quantum at the quantum's start — the same granularity the
// allocator grants at. Fault injection uses it to model link fades; with a
// constant 1.0 multiplier it reproduces Radio.Bits over PerSatServed
// exactly.
func DeratedBits(r Radio, grants []Grant, quantum time.Duration, nSats int, derate func(station int, t time.Time) float64) []float64 {
	if quantum <= 0 {
		panic("link: non-positive quantum")
	}
	out := make([]float64, nSats)
	for _, g := range grants {
		for t := g.Start; t.Before(g.End()); t = t.Add(quantum) {
			step := quantum
			if rem := g.End().Sub(t); rem < step {
				step = rem
			}
			out[g.Sat] += r.Bits(step) * derate(g.Station, t)
		}
	}
	return out
}

// PerSatServed sums granted time per satellite.
func PerSatServed(grants []Grant, nSats int) []time.Duration {
	out := make([]time.Duration, nSats)
	for _, g := range grants {
		out[g.Sat] += g.Dur
	}
	return out
}

// TotalServed sums all granted time.
func TotalServed(grants []Grant) time.Duration {
	var total time.Duration
	for _, g := range grants {
		total += g.Dur
	}
	return total
}
