package link

import (
	"testing"
	"testing/quick"
	"time"

	"kodan/internal/orbit"
	"kodan/internal/station"
)

func TestAdaptiveRateSteps(t *testing.T) {
	a := Landsat8AdaptiveRadio()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full rate at and below the reference range.
	if got := a.RateAt(800e3); got != 384e6 {
		t.Fatalf("near rate = %v", got)
	}
	if got := a.RateAt(1200e3); got != 384e6 {
		t.Fatalf("ref rate = %v", got)
	}
	// One 3 dB step (sqrt(2) in range) halves the rate.
	if got := a.RateAt(1200e3 * 1.41); got != 192e6 {
		t.Fatalf("one-step rate = %v", got)
	}
	// Beyond the last step the link drops.
	if got := a.RateAt(6000e3); got != 0 {
		t.Fatalf("far rate = %v", got)
	}
}

func TestAdaptiveRateMonotone(t *testing.T) {
	a := Landsat8AdaptiveRadio()
	if err := quick.Check(func(r1, r2 uint32) bool {
		d1 := float64(r1%5000)*1e3 + 1
		d2 := float64(r2%5000)*1e3 + 1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return a.RateAt(d1) >= a.RateAt(d2)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlantRangePhysical(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	e := orbit.Landsat8(epoch)
	st := station.LandsatSegment()[2] // Svalbard
	// The slant range is never below the orbit altitude nor absurdly far.
	for dt := time.Duration(0); dt < 2*time.Hour; dt += 5 * time.Minute {
		r := SlantRange(e, st, epoch.Add(dt))
		if r < 690e3 || r > 14000e3 {
			t.Fatalf("slant range %v m at %v", r, dt)
		}
	}
}

func TestGrantBitsAdaptiveVsConstant(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	e := orbit.Landsat8(epoch)
	st := station.LandsatSegment()[2]
	windows := station.ContactWindows(st, e, epoch, 24*time.Hour, 30*time.Second)
	if len(windows) == 0 {
		t.Fatal("no passes")
	}
	a := Landsat8AdaptiveRadio()
	constant := Landsat8Radio()
	var adaptive, fixed float64
	for _, w := range windows {
		g := Grant{Start: w.Start, Dur: w.Duration()}
		adaptive += a.GrantBits(e, st, g, 10*time.Second)
		fixed += constant.Bits(w.Duration())
	}
	// The adaptive link delivers less than the constant-peak-rate model
	// (pass edges run at reduced rates) but not catastrophically less.
	if adaptive >= fixed {
		t.Fatalf("adaptive %.2e not below constant %.2e", adaptive, fixed)
	}
	if adaptive < 0.2*fixed {
		t.Fatalf("adaptive %.2e below 20%% of constant %.2e — budget too pessimistic", adaptive, fixed)
	}
}

func TestGrantBitsPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	Landsat8AdaptiveRadio().GrantBits(orbit.Landsat8(epoch), station.LandsatSegment()[0],
		Grant{Start: epoch, Dur: time.Minute}, 0)
}

func TestAdaptiveValidate(t *testing.T) {
	bad := []AdaptiveRadio{
		{PeakRateBps: 0, RefRangeM: 1, Steps: 1},
		{PeakRateBps: 1, RefRangeM: 0, Steps: 1},
		{PeakRateBps: 1, RefRangeM: 1, Steps: 0},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}
