package link

import (
	"testing"
	"time"

	"kodan/internal/station"
)

func TestZeroCapacityRadio(t *testing.T) {
	// A dead radio transfers nothing regardless of contact time, and any
	// radio transfers nothing in zero time — the degenerate ends of the
	// downlink budget.
	dead := Radio{RateBps: 0}
	if got := dead.Bits(10 * time.Minute); got != 0 {
		t.Fatalf("zero-rate radio transferred %v bits", got)
	}
	if got := Landsat8Radio().Bits(0); got != 0 {
		t.Fatalf("zero-duration contact transferred %v bits", got)
	}
}

func TestAllocateZeroSpan(t *testing.T) {
	// A zero-length scheduling horizon grants nothing even under full
	// visibility.
	p := Problem{
		Start:   t0,
		Span:    0,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{{w(0, 3600)}}},
	}
	if grants := Allocate(p); grants != nil {
		t.Fatalf("zero span produced grants: %v", grants)
	}
}

func TestAllocateZeroDurationWindow(t *testing.T) {
	// A degenerate window (Start == End) contains no instant, so it can
	// never be served.
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{{w(100, 100)}}},
	}
	if grants := Allocate(p); grants != nil {
		t.Fatalf("zero-duration window produced grants: %v", grants)
	}
}

func TestAllocateWindowEndExclusive(t *testing.T) {
	// Window ends are exclusive: a one-quantum window [0, 10s) yields
	// exactly one quantum, and a window starting at 10s is first served at
	// 10s, not before.
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{{w(0, 10)}}},
	}
	grants := Allocate(p)
	if len(grants) != 1 || grants[0].Dur != 10*time.Second || !grants[0].Start.Equal(t0) {
		t.Fatalf("one-quantum window grants = %+v", grants)
	}

	p.Windows = [][][]station.Window{{{w(10, 30)}}}
	grants = Allocate(p)
	if len(grants) != 1 || !grants[0].Start.Equal(t0.Add(10*time.Second)) || grants[0].Dur != 20*time.Second {
		t.Fatalf("offset window grants = %+v", grants)
	}
}

func TestAllocateLeastServedCatchUp(t *testing.T) {
	// Satellite 0 is alone for its first window; when satellite 1 becomes
	// visible alongside it, the least-served-first rule gives satellite 1
	// the whole contested window until the two are even.
	p := Problem{
		Start:   t0,
		Span:    time.Hour,
		Quantum: 10 * time.Second,
		Windows: [][][]station.Window{{
			{w(0, 100), w(100, 200)},
			{w(100, 200)},
		}},
	}
	served := PerSatServed(Allocate(p), 2)
	if served[0] != 100*time.Second || served[1] != 100*time.Second {
		t.Fatalf("served %v, want catch-up to [100s 100s]", served)
	}
}
