package link

import (
	"fmt"
	"math"
	"time"

	"kodan/internal/geo"
	"kodan/internal/orbit"
	"kodan/internal/station"
)

// AdaptiveRadio models a downlink with adaptive coding and modulation:
// the achievable rate depends on the slant range to the station through a
// free-space-path-loss link budget. Real X-band systems (including the
// Landsat 8 downlink) step through modulation schemes as the pass
// geometry changes; the constant-rate Radio is the paper's (and cote's)
// simplification, kept as the default, with this model available for the
// link-budget ablation.
type AdaptiveRadio struct {
	// PeakRateBps is the rate achieved at or below RefRangeM.
	PeakRateBps float64
	// RefRangeM is the slant range at which the peak rate is achievable.
	RefRangeM float64
	// Steps is the number of discrete modulation steps; each step halves
	// the rate and buys 3 dB (a factor sqrt(2) in range).
	Steps int
}

// Landsat8AdaptiveRadio returns an adaptive variant of the 384 Mbit/s
// X-band downlink: full rate within 1200 km slant range, halving per
// 3 dB of additional path loss over 4 steps.
func Landsat8AdaptiveRadio() AdaptiveRadio {
	return AdaptiveRadio{PeakRateBps: 384e6, RefRangeM: 1200e3, Steps: 4}
}

// Validate rejects unusable budgets.
func (a AdaptiveRadio) Validate() error {
	if a.PeakRateBps <= 0 || a.RefRangeM <= 0 || a.Steps < 1 {
		return fmt.Errorf("link: invalid adaptive radio %+v", a)
	}
	return nil
}

// RateAt returns the achievable rate at a slant range in meters.
func (a AdaptiveRadio) RateAt(slantRangeM float64) float64 {
	if slantRangeM <= a.RefRangeM {
		return a.PeakRateBps
	}
	// Path loss grows 6 dB per range doubling; each 3 dB step halves rate.
	extraDB := 20 * math.Log10(slantRangeM/a.RefRangeM)
	steps := int(math.Ceil(extraDB / 3))
	if steps > a.Steps {
		return 0 // below the lowest modulation's threshold: no link
	}
	return a.PeakRateBps / math.Pow(2, float64(steps))
}

// SlantRange returns the distance in meters between a satellite and a
// ground station at time t.
func SlantRange(e orbit.Elements, st station.Station, t time.Time) float64 {
	sat := geo.ECIToECEF(orbit.Propagate(e, t).Position, t)
	stn := geo.GeodeticToECEF(st.Location)
	return sat.Sub(stn).Norm()
}

// GrantBits integrates the adaptive rate over a grant interval, sampling
// the pass geometry at the given step (e.g. 10 s).
func (a AdaptiveRadio) GrantBits(e orbit.Elements, st station.Station, g Grant, step time.Duration) float64 {
	if step <= 0 {
		panic("link: non-positive integration step")
	}
	var bits float64
	for t := g.Start; t.Before(g.End()); t = t.Add(step) {
		dt := step
		if remain := g.End().Sub(t); remain < dt {
			dt = remain
		}
		bits += a.RateAt(SlantRange(e, st, t)) * dt.Seconds()
	}
	return bits
}
