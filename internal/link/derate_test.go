package link

import (
	"math"
	"testing"
	"time"
)

func TestDeratedBitsNominalMatchesServed(t *testing.T) {
	r := Radio{RateBps: 100e6}
	start := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	grants := []Grant{
		{Station: 0, Sat: 0, Start: start, Dur: 40 * time.Second},
		{Station: 1, Sat: 1, Start: start.Add(time.Minute), Dur: 95 * time.Second}, // not a whole number of quanta
	}
	got := DeratedBits(r, grants, 10*time.Second, 2, func(int, time.Time) float64 { return 1 })
	want := PerSatServed(grants, 2)
	for i := range got {
		if math.Abs(got[i]-r.Bits(want[i])) > 1e-6 {
			t.Errorf("sat %d: derated %g bits at unit multiplier, want %g", i, got[i], r.Bits(want[i]))
		}
	}
}

func TestDeratedBitsAppliesTimeVaryingMultiplier(t *testing.T) {
	r := Radio{RateBps: 1e6}
	start := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	fadeStart := start.Add(30 * time.Second)
	grants := []Grant{{Station: 0, Sat: 0, Start: start, Dur: 60 * time.Second}}
	// Half rate for the second half of the grant.
	got := DeratedBits(r, grants, 10*time.Second, 1, func(_ int, tm time.Time) float64 {
		if !tm.Before(fadeStart) {
			return 0.5
		}
		return 1
	})
	want := r.Bits(30*time.Second) + 0.5*r.Bits(30*time.Second)
	if math.Abs(got[0]-want) > 1e-6 {
		t.Fatalf("derated %g bits, want %g", got[0], want)
	}
}

func TestDeratedBitsPerStation(t *testing.T) {
	r := Radio{RateBps: 1e6}
	start := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	grants := []Grant{
		{Station: 0, Sat: 0, Start: start, Dur: 20 * time.Second},
		{Station: 1, Sat: 0, Start: start.Add(time.Minute), Dur: 20 * time.Second},
	}
	// Station 1 is fully faded; station 0 nominal.
	got := DeratedBits(r, grants, 10*time.Second, 1, func(st int, _ time.Time) float64 {
		if st == 1 {
			return 0
		}
		return 1
	})
	if want := r.Bits(20 * time.Second); math.Abs(got[0]-want) > 1e-6 {
		t.Fatalf("derated %g bits, want %g (station 1's grant zeroed)", got[0], want)
	}
}
