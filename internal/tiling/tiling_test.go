package tiling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperTilings(t *testing.T) {
	got := PaperTilings()
	want := []int{121, 36, 16, 9}
	if len(got) != len(want) {
		t.Fatalf("tilings = %d", len(got))
	}
	for i, tl := range got {
		if tl.Tiles() != want[i] {
			t.Errorf("tiling %d = %d tiles, want %d", i, tl.Tiles(), want[i])
		}
		if err := tl.Validate(); err != nil {
			t.Errorf("tiling %d invalid: %v", i, err)
		}
	}
}

func TestDecimationFactorPaperExample(t *testing.T) {
	// Figure 6: 10K px frame, 1K px NN input. 3x3 split -> 3.33x decimation.
	f := Tiling{PerSide: 3}.DecimationFactor(10000, 1000)
	if math.Abs(f-10.0/3) > 1e-9 {
		t.Fatalf("decimation = %v", f)
	}
	// 11x11 split -> 0.909: upsampling, no loss.
	f = Tiling{PerSide: 11}.DecimationFactor(10000, 1000)
	if f >= 1 {
		t.Fatalf("121-tile decimation = %v, want < 1", f)
	}
}

func TestBlurMonotoneInTileSize(t *testing.T) {
	// Fewer tiles -> strictly more blur.
	prev := -1.0
	for _, tl := range []Tiling{{11}, {6}, {4}, {3}} {
		b := tl.RenderBlurPx(10000, 1000)
		if b <= prev {
			t.Fatalf("blur not monotone: %v then %v", prev, b)
		}
		prev = b
	}
	// Upsampled tiling keeps only the sensor floor.
	if b := (Tiling{PerSide: 11}).RenderBlurPx(10000, 1000); b != 0.6 {
		t.Fatalf("121-tile blur = %v, want sensor floor 0.6", b)
	}
	if b := (Tiling{PerSide: 3}).RenderBlurPx(10000, 1000); b < 1.5 {
		t.Fatalf("9-tile blur = %v, want >= 1.5", b)
	}
}

func TestBlurAtLeastSensorFloor(t *testing.T) {
	if err := quick.Check(func(perSide, frame, input uint8) bool {
		tl := Tiling{PerSide: int(perSide%12) + 1}
		return tl.RenderBlurPx(int(frame)+1, int(input)+1) >= 0.6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if (Tiling{PerSide: 0}).Validate() == nil {
		t.Fatal("zero tiling validated")
	}
	if (Tiling{PerSide: 3}).Validate() != nil {
		t.Fatal("valid tiling rejected")
	}
}

func TestDecimationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Tiling{PerSide: 3}.DecimationFactor(0, 100)
}
