// Package tiling models the frame-tiling technique (Section 3, Figure 6):
// a frame is split into k x k tiles, and each tile is decimated to the
// neural network's fixed input size. Tile count therefore sets both the
// frame processing time (time scales with tile count, because per-tile
// inference time is constant) and the decimation factor (fewer, larger
// tiles lose more detail).
package tiling

import (
	"fmt"
	"math"
)

// Tiling is a per-frame tile layout.
type Tiling struct {
	// PerSide is the number of tiles along each frame edge.
	PerSide int
}

// PaperTilings returns the four tile counts the paper evaluates in
// Figures 13 and 14: 121, 36, 16, and 9 tiles per frame.
func PaperTilings() []Tiling {
	return []Tiling{{PerSide: 11}, {PerSide: 6}, {PerSide: 4}, {PerSide: 3}}
}

// Tiles returns the tile count per frame.
func (t Tiling) Tiles() int { return t.PerSide * t.PerSide }

// String implements fmt.Stringer.
func (t Tiling) String() string { return fmt.Sprintf("%d tiles/frame", t.Tiles()) }

// Validate rejects degenerate layouts.
func (t Tiling) Validate() error {
	if t.PerSide <= 0 {
		return fmt.Errorf("tiling: non-positive tiles per side %d", t.PerSide)
	}
	return nil
}

// DecimationFactor returns the ratio of the tile's native pixel extent to
// the model input size. A 10,000 px frame split 3x3 feeds 3333 px tiles to
// a 1000 px input: factor 3.33. Factors at or below 1 mean the tile is
// upsampled and no detail is lost.
func (t Tiling) DecimationFactor(framePx, inputPx int) float64 {
	if framePx <= 0 || inputPx <= 0 {
		panic("tiling: non-positive pixel sizes")
	}
	return float64(framePx) / float64(t.PerSide) / float64(inputPx)
}

// RenderBlurPx returns the blur radius, in rendered tile pixels, applied to
// the synthetic tiles' feature channels for this tiling: a fixed sensor
// point-spread/area-averaging component plus a term growing with the
// decimation factor. This is the reproduction's model of Figure 6's "more
// aggressive decimation" on fewer, larger tiles: coarser tilings blur the
// radiance the classifier sees while the truth mask stays at reference
// resolution, so cloud-boundary pixels become ambiguous.
func (t Tiling) RenderBlurPx(framePx, inputPx int) float64 {
	const (
		sensorBlur = 0.6  // PSF + resampling floor, in rendered px
		decimGain  = 0.50 // additional blur per unit of excess decimation
	)
	return sensorBlur + decimGain*math.Max(0, t.DecimationFactor(framePx, inputPx)-1)
}
