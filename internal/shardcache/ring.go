package shardcache

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring mapping cache keys onto shard indexes.
// Every shard owns vnodesPerShard points on the ring; a key belongs to the
// shard owning the first point at or clockwise-after the key's hash. The
// layout is a pure function of the shard count (FNV-1a over fixed vnode
// labels), so the same key maps to the same shard in every process and on
// every platform — and when the shard count changes, only the keys between
// moved points change owners, not the whole key space.
type ring struct {
	points []uint64 // sorted vnode positions
	owner  []int    // owner[i] is the shard owning points[i]
}

// vnodesPerShard balances shard load: at 512 virtual nodes per shard the
// largest shard's share stays within ~2x of uniform even for adversarial
// key distributions; building the ring is still microseconds at 16 shards.
const vnodesPerShard = 512

// newRing builds the ring for n shards (n >= 1).
func newRing(n int) ring {
	type vnode struct {
		pos   uint64
		shard int
	}
	vs := make([]vnode, 0, n*vnodesPerShard)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			vs = append(vs, vnode{pos: hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	// Sort by position; break the (astronomically unlikely) position tie on
	// shard index so the layout is total-ordered and deterministic.
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].pos != vs[j].pos {
			return vs[i].pos < vs[j].pos
		}
		return vs[i].shard < vs[j].shard
	})
	r := ring{points: make([]uint64, len(vs)), owner: make([]int, len(vs))}
	for i, v := range vs {
		r.points[i] = v.pos
		r.owner[i] = v.shard
	}
	return r
}

// lookup returns the shard owning key.
func (r ring) lookup(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point to the ring's start
	}
	return r.owner[i]
}

// hash64 is FNV-1a, fixed by the algorithm (not a Go implementation
// detail), keeping shard placement reproducible across builds.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
