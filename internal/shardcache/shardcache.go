// Package shardcache is the serving plane's sharded single-flight result
// cache. It generalizes the original one-lock cache in internal/server to
// constellation scale: the key space is resharded by consistent hashing
// across N independent in-process shards, each with its own mutex, its own
// single-flight group, and its own bounded LRU over completed entries, so
// concurrent lookups on a hot serving path contend per shard instead of on
// one global lock, and memory stays bounded under an unbounded key space
// (seeds x apps x deployments x planner knobs).
//
// Semantics are identical to the unsharded cache at every shard count:
// for each key at most one computation runs at a time, concurrent callers
// join the in-flight computation, successful values are retained until
// evicted by the LRU bound, and errors are never cached. Because every
// cached value is a deterministic function of its key, responses served
// through this cache are byte-identical at shard counts 1, 4, or 16 (the
// server's determinism suite pins this).
//
// Cancellation is reference-counted per entry: the computation runs on a
// context derived from the cache's base context, and when the last
// interested caller detaches, the computation is cancelled and the slot
// cleared for a clean restart.
//
// Telemetry: each shard owns hit/miss/join/eviction counters in the shared
// registry (scope "<scope>.shard<i>"), and the aggregate counters keep the
// original "<scope>.hits"/"<scope>.misses"/... names so existing dashboard
// panels and SLOs read the same series they always did.
package shardcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"kodan/internal/telemetry"
)

// Source says how a lookup was served.
type Source int

// Lookup outcomes.
const (
	// Miss means the caller became the leader and computed the value.
	Miss Source = iota
	// Hit means a previously completed value was returned.
	Hit
	// Join means the caller attached to an in-flight computation
	// (single-flight deduplication).
	Join
)

// String implements fmt.Stringer, for the X-Kodan-Cache response header.
func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Join:
		return "join"
	default:
		return "miss"
	}
}

// Options sizes a sharded cache.
type Options struct {
	// Shards is the number of independent shards (default 1).
	Shards int
	// MaxEntries bounds the completed entries retained across all shards;
	// the bound is split evenly (at least one per shard) and each shard
	// evicts its own least-recently-used completed entry when full.
	// 0 means unbounded (the pre-sharding behavior).
	MaxEntries int
	// Scope, when set, receives the aggregate and per-shard counters. A nil
	// scope makes the registry counters no-ops; Stats still counts.
	Scope *telemetry.Scope
}

// Cache is the sharded single-flight cache. Create with New.
type Cache struct {
	ring   ring
	shards []*shard
}

// shard is one independent single-flight cache with an LRU bound.
type shard struct {
	base     context.Context
	capacity int // completed entries retained; 0 = unbounded

	// Stats counters: always live, independent of telemetry wiring.
	nHits, nMisses, nJoins, nEvict atomic.Int64

	hits, misses, joins, evictions         *telemetry.Counter // per-shard
	aggHits, aggMisses, aggJoins, aggEvict *telemetry.Counter // cache-wide

	mu      sync.Mutex
	entries map[string]*entry
	order   *list.List // completed entries, most recently used in front
}

type entry struct {
	done      chan struct{}
	val       interface{}
	err       error
	waiters   int
	completed bool
	cancel    context.CancelFunc
	elem      *list.Element // position in the shard LRU once completed
}

// New builds a sharded cache whose computations are bounded by base: when
// base is cancelled (server shutdown), every in-flight computation is too.
func New(base context.Context, opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	perShard := 0
	if opts.MaxEntries > 0 {
		perShard = opts.MaxEntries / n
		if perShard < 1 {
			perShard = 1
		}
	}
	aggHits := opts.Scope.Counter("hits")
	aggMisses := opts.Scope.Counter("misses")
	aggJoins := opts.Scope.Counter("joins")
	aggEvict := opts.Scope.Counter("evictions")
	c := &Cache{ring: newRing(n), shards: make([]*shard, n)}
	for i := range c.shards {
		var ss *telemetry.Scope
		if opts.Scope != nil {
			ss = opts.Scope.Scope(fmt.Sprintf("shard%d", i))
		}
		c.shards[i] = &shard{
			base:      base,
			capacity:  perShard,
			hits:      ss.Counter("hits"),
			misses:    ss.Counter("misses"),
			joins:     ss.Counter("joins"),
			evictions: ss.Counter("evictions"),
			aggHits:   aggHits,
			aggMisses: aggMisses,
			aggJoins:  aggJoins,
			aggEvict:  aggEvict,
			entries:   make(map[string]*entry),
			order:     list.New(),
		}
	}
	return c
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Capacity returns the total completed-entry bound (0 = unbounded).
func (c *Cache) Capacity() int {
	if c.shards[0].capacity == 0 {
		return 0
	}
	return c.shards[0].capacity * len(c.shards)
}

// ShardFor returns the shard index owning key (stable across processes).
func (c *Cache) ShardFor(key string) int { return c.ring.lookup(key) }

// Stats returns cumulative hit/miss/join/eviction counts summed across
// shards.
func (c *Cache) Stats() (hits, misses, joins, evictions int64) {
	for _, s := range c.shards {
		hits += s.nHits.Load()
		misses += s.nMisses.Load()
		joins += s.nJoins.Load()
		evictions += s.nEvict.Load()
	}
	return
}

// Len returns the number of completed entries plus in-flight computations
// across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Do returns the cached value for key, or computes it with fn. fn receives
// a context tied to the lifetime of the interested callers; ctx only
// governs how long this caller waits. On ctx expiry the caller detaches
// and receives ctx.Err() while the computation continues for any remaining
// waiters.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (interface{}, error)) (interface{}, Source, error) {
	return c.shards[c.ring.lookup(key)].do(ctx, key, fn)
}

func (s *shard) do(ctx context.Context, key string, fn func(context.Context) (interface{}, error)) (interface{}, Source, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if e.completed {
			s.nHits.Add(1)
			s.hits.Inc()
			s.aggHits.Inc()
			s.order.MoveToFront(e.elem)
			s.mu.Unlock()
			return e.val, Hit, e.err
		}
		e.waiters++
		s.nJoins.Add(1)
		s.joins.Inc()
		s.aggJoins.Inc()
		s.mu.Unlock()
		return s.wait(ctx, key, e, Join)
	}

	cctx, cancel := context.WithCancel(s.base)
	// The computation is detached from the leader's cancellation (it
	// belongs to every waiter), but keeps the leader's identity: its spans
	// parent under the leader's request span and carry its request ID.
	cctx = telemetry.PropagateTelemetry(ctx, cctx)
	e := &entry{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.entries[key] = e
	s.nMisses.Add(1)
	s.misses.Inc()
	s.aggMisses.Inc()
	s.mu.Unlock()

	go func() {
		val, err := fn(cctx)
		s.mu.Lock()
		e.val, e.err = val, err
		e.completed = true
		if s.entries[key] == e {
			if err != nil {
				// Never cache failures; the next request retries.
				delete(s.entries, key)
			} else {
				e.elem = s.order.PushFront(key)
				s.evictLocked()
			}
		}
		close(e.done)
		s.mu.Unlock()
		cancel()
	}()
	return s.wait(ctx, key, e, Miss)
}

// evictLocked drops least-recently-used completed entries until the shard
// is back under its bound. In-flight computations are never evicted (they
// are not in the LRU until they complete).
func (s *shard) evictLocked() {
	if s.capacity == 0 {
		return
	}
	for s.order.Len() > s.capacity {
		back := s.order.Back()
		key := back.Value.(string)
		s.order.Remove(back)
		delete(s.entries, key)
		s.nEvict.Add(1)
		s.evictions.Inc()
		s.aggEvict.Inc()
	}
}

// wait blocks until the entry completes or the caller's context is done.
func (s *shard) wait(ctx context.Context, key string, e *entry, src Source) (interface{}, Source, error) {
	select {
	case <-e.done:
		return e.val, src, e.err
	case <-ctx.Done():
		s.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.completed {
			// Last interested caller gone: stop the computation and clear
			// the slot so a future request restarts it.
			e.cancel()
			if s.entries[key] == e {
				delete(s.entries, key)
			}
		}
		s.mu.Unlock()
		return nil, src, ctx.Err()
	}
}
