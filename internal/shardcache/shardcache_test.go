package shardcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kodan/internal/telemetry"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	a := newRing(8)
	b := newRing(8)
	counts := make([]int, 8)
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("plan:%d:orin:0.21", i)
		sa, sb := a.lookup(key), b.lookup(key)
		if sa != sb {
			t.Fatalf("ring not deterministic: key %q -> %d vs %d", key, sa, sb)
		}
		counts[sa]++
	}
	for s, n := range counts {
		// Expected 2500/shard; 128 vnodes keeps skew within ~2x of uniform.
		if n < 900 || n > 6000 {
			t.Fatalf("shard %d badly unbalanced: %d of 20000 keys", s, n)
		}
	}
}

func TestRingLookupStableAcrossShardCounts(t *testing.T) {
	// Same key always lands on the same shard for a given count — and a
	// single-shard ring maps everything to shard 0.
	r1 := newRing(1)
	for i := 0; i < 100; i++ {
		if got := r1.lookup(fmt.Sprintf("k%d", i)); got != 0 {
			t.Fatalf("1-shard ring sent k%d to shard %d", i, got)
		}
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(context.Background(), Options{Shards: 4})
	calls := 0
	fn := func(context.Context) (interface{}, error) {
		calls++
		return "v", nil
	}
	v, src, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "v" || src != Miss {
		t.Fatalf("first Do = (%v, %v, %v), want (v, miss, nil)", v, src, err)
	}
	v, src, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "v" || src != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want (v, hit, nil)", v, src, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestDoSingleFlightJoin(t *testing.T) {
	c := New(context.Background(), Options{Shards: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	var calls int
	fn := func(context.Context) (interface{}, error) {
		calls++
		close(started)
		<-release
		return 42, nil
	}
	var wg sync.WaitGroup
	results := make([]Source, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, results[0], _ = c.Do(context.Background(), "k", fn)
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, src, err := c.Do(context.Background(), "k", fn)
			if err != nil || v != 42 {
				t.Errorf("join %d: (%v, %v)", i, v, err)
			}
			results[i] = src
		}(i)
	}
	// Give the joiners time to attach before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if results[0] != Miss {
		t.Fatalf("leader source = %v, want miss", results[0])
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(context.Background(), Options{Shards: 2})
	boom := errors.New("boom")
	calls := 0
	fn := func(context.Context) (interface{}, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, src, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "ok" || src != Miss {
		t.Fatalf("retry Do = (%v, %v, %v), want (ok, miss, nil)", v, src, err)
	}
}

func TestLRUEvictionAndCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	scope := reg.Scope("cache")
	// One shard, capacity 2: the third distinct key evicts the LRU.
	c := New(context.Background(), Options{Shards: 1, MaxEntries: 2, Scope: scope})
	fill := func(k string) {
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (interface{}, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	fill("a")
	fill("b")
	// Touch "a" so "b" becomes least recently used.
	if _, src, _ := c.Do(context.Background(), "a", nil); src != Hit {
		t.Fatalf("touch a: src = %v, want hit", src)
	}
	fill("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, src, _ := c.Do(context.Background(), "a", nil); src != Hit {
		t.Fatalf("a should survive eviction, got %v", src)
	}
	calls := 0
	if _, src, _ := c.Do(context.Background(), "b", func(context.Context) (interface{}, error) { calls++; return "b2", nil }); src != Miss || calls != 1 {
		t.Fatalf("b should have been evicted: src=%v calls=%d", src, calls)
	}
	_, _, _, evictions := c.Stats()
	if evictions < 1 {
		t.Fatalf("evictions = %d, want >= 1", evictions)
	}
	if got := reg.Counter("cache.evictions").Load(); got != evictions {
		t.Fatalf("aggregate eviction counter = %d, want %d", got, evictions)
	}
}

func TestCapacitySplitAcrossShards(t *testing.T) {
	c := New(context.Background(), Options{Shards: 4, MaxEntries: 8})
	if c.Capacity() != 8 {
		t.Fatalf("Capacity = %d, want 8", c.Capacity())
	}
	if u := New(context.Background(), Options{Shards: 4}); u.Capacity() != 0 {
		t.Fatalf("unbounded Capacity = %d, want 0", u.Capacity())
	}
	// MaxEntries below shard count still gives each shard one slot.
	if s := New(context.Background(), Options{Shards: 4, MaxEntries: 2}); s.Capacity() != 4 {
		t.Fatalf("small Capacity = %d, want 4", s.Capacity())
	}
}

func TestLastWaiterCancelStopsComputation(t *testing.T) {
	c := New(context.Background(), Options{Shards: 1})
	cancelled := make(chan struct{})
	started := make(chan struct{})
	fn := func(ctx context.Context) (interface{}, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
			t.Errorf("Do err = %v, want canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not cancelled after last waiter left")
	}
	<-done
	// The slot is cleared: a new request restarts the computation.
	v, src, err := c.Do(context.Background(), "k", func(context.Context) (interface{}, error) { return "fresh", nil })
	if err != nil || v != "fresh" || src != Miss {
		t.Fatalf("restart Do = (%v, %v, %v), want (fresh, miss, nil)", v, src, err)
	}
}

func TestShardForMatchesDo(t *testing.T) {
	c := New(context.Background(), Options{Shards: 16})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		want := c.ShardFor(key)
		if _, _, err := c.Do(context.Background(), key, func(context.Context) (interface{}, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		s := c.shards[want]
		s.mu.Lock()
		_, ok := s.entries[key]
		s.mu.Unlock()
		if !ok {
			t.Fatalf("key %q not stored in ShardFor shard %d", key, want)
		}
	}
}
