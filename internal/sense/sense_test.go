package sense

import (
	"math"
	"testing"
	"time"

	"kodan/internal/orbit"
	"kodan/internal/wrs"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func testImager(t *testing.T) Imager {
	t.Helper()
	im, err := NewImager(Landsat8MS(), orbit.Landsat8(epoch), wrs.Landsat8Grid())
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestCameraValidate(t *testing.T) {
	if err := Landsat8MS().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Camera{
		{FramePx: 0, Bands: 1, BitsPerSample: 1, Compression: 1, GSDm: 1},
		{FramePx: 10, Bands: 0, BitsPerSample: 1, Compression: 1, GSDm: 1},
		{FramePx: 10, Bands: 1, BitsPerSample: 0, Compression: 1, GSDm: 1},
		{FramePx: 10, Bands: 1, BitsPerSample: 1, Compression: 0, GSDm: 1},
		{FramePx: 10, Bands: 1, BitsPerSample: 1, Compression: 1.5, GSDm: 1},
		{FramePx: 10, Bands: 1, BitsPerSample: 1, Compression: 1, GSDm: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestFrameBits(t *testing.T) {
	c := Camera{FramePx: 100, Bands: 2, BitsPerSample: 8, Compression: 0.5, GSDm: 10}
	if got := c.FrameBits(); got != 100*100*2*8*0.5 {
		t.Fatalf("FrameBits = %v", got)
	}
	// The calibrated Landsat frame is in the single-gigabyte class.
	ms := Landsat8MS().FrameBits()
	if ms < 5e9 || ms > 9e9 {
		t.Fatalf("Landsat frame = %.2e bits, want 5-9 Gbit", ms)
	}
	// Hyperspectral frames are several times larger (Figure 2's regime).
	if ratio := Landsat8Hyper().FrameBits() / ms; ratio < 5 || ratio > 10 {
		t.Fatalf("hyper/ms ratio = %.1f", ratio)
	}
}

func TestFrameDeadlineMatchesPaper(t *testing.T) {
	im := testImager(t)
	d := im.FrameDeadline().Seconds()
	if d < 21 || d > 26 {
		t.Fatalf("frame deadline = %.1f s, want ~22-24", d)
	}
}

func TestFramesPerDayNear3600(t *testing.T) {
	im := testImager(t)
	if f := im.FramesPerDay(); f < 3300 || f > 3900 {
		t.Fatalf("frames/day = %.0f", f)
	}
}

func TestCapturesCadence(t *testing.T) {
	im := testImager(t)
	caps := im.Captures(epoch, time.Hour)
	wantN := int(time.Hour / im.FrameDeadline())
	if math.Abs(float64(len(caps)-wantN)) > 1 {
		t.Fatalf("captures in 1h = %d, want ~%d", len(caps), wantN)
	}
	for i := 1; i < len(caps); i++ {
		gap := caps[i].Time.Sub(caps[i-1].Time)
		if gap != im.FrameDeadline() {
			t.Fatalf("gap %v at %d, want %v", gap, i, im.FrameDeadline())
		}
	}
}

func TestCapturesSceneUniqueWithinRepeatCycle(t *testing.T) {
	// Within a few orbits no scene should repeat (revisit takes 16 days).
	im := testImager(t)
	caps := im.Captures(epoch, 5*time.Hour)
	seen := map[wrs.Scene]bool{}
	for _, c := range caps {
		if seen[c.Scene] {
			t.Fatalf("scene %v repeated within 5h", c.Scene)
		}
		seen[c.Scene] = true
	}
}

func TestCapturesWindowed(t *testing.T) {
	im := testImager(t)
	start := epoch.Add(13 * time.Minute)
	caps := im.Captures(start, 30*time.Minute)
	for _, c := range caps {
		// Capture midpoints may trail the nominal window by half a frame.
		if c.Time.Before(start) || c.Time.After(start.Add(30*time.Minute+im.FrameDeadline())) {
			t.Fatalf("capture at %v outside window", c.Time)
		}
	}
	// Two adjacent windows give disjoint, continuous schedules.
	later := im.Captures(start.Add(30*time.Minute), 30*time.Minute)
	if len(later) == 0 || len(caps) == 0 {
		t.Fatal("no captures")
	}
	if gap := later[0].Time.Sub(caps[len(caps)-1].Time); gap != im.FrameDeadline() {
		t.Fatalf("cross-window gap %v", gap)
	}
}

func TestNewImagerRejectsBadConfig(t *testing.T) {
	if _, err := NewImager(Camera{}, orbit.Landsat8(epoch), wrs.Landsat8Grid()); err == nil {
		t.Fatal("bad camera accepted")
	}
	if _, err := NewImager(Landsat8MS(), orbit.Elements{}, wrs.Landsat8Grid()); err == nil {
		t.Fatal("bad orbit accepted")
	}
}

func TestFrameWidthMatchesRowPitch(t *testing.T) {
	// The camera frame should span roughly one row pitch so that one frame
	// maps to one scene: 2*pi*Re / 248 rows ~ 161 km.
	c := Landsat8MS()
	if w := c.FrameWidthM(); w < 150e3 || w > 175e3 {
		t.Fatalf("frame width = %.0f m", w)
	}
}
