// Package sense models the Earth-observation payload: the camera (frame
// geometry, spectral bands, quantization, compression), the frame capture
// cadence along the ground track, and the frame deadline — the interval in
// which an orbital-edge application must finish processing one frame before
// the next enters the sensor view (Section 2 of the paper).
package sense

import (
	"fmt"
	"time"

	"kodan/internal/orbit"
	"kodan/internal/wrs"
)

// Camera describes an imaging payload.
type Camera struct {
	// Name identifies the payload in ledgers.
	Name string
	// FramePx is the frame side length in pixels (frames are square; the
	// paper's example is a 10,000 x 10,000 px Landsat frame).
	FramePx int
	// Bands is the number of spectral bands.
	Bands int
	// BitsPerSample is the quantization depth per band sample.
	BitsPerSample int
	// Compression is the compressed-size fraction in (0, 1]; 1 means no
	// compression.
	Compression float64
	// GSDm is the ground sample distance in meters per pixel.
	GSDm float64
}

// Validate reports whether the camera is physically meaningful.
func (c Camera) Validate() error {
	switch {
	case c.FramePx <= 0:
		return fmt.Errorf("sense: non-positive frame size %d", c.FramePx)
	case c.Bands <= 0:
		return fmt.Errorf("sense: non-positive band count %d", c.Bands)
	case c.BitsPerSample <= 0:
		return fmt.Errorf("sense: non-positive bit depth %d", c.BitsPerSample)
	case c.Compression <= 0 || c.Compression > 1:
		return fmt.Errorf("sense: compression %f outside (0,1]", c.Compression)
	case c.GSDm <= 0:
		return fmt.Errorf("sense: non-positive GSD %f", c.GSDm)
	}
	return nil
}

// FrameBits returns the downlink cost of one compressed frame in bits.
func (c Camera) FrameBits() float64 {
	px := float64(c.FramePx) * float64(c.FramePx)
	return px * float64(c.Bands) * float64(c.BitsPerSample) * c.Compression
}

// FrameWidthM returns the ground extent of one frame side in meters.
func (c Camera) FrameWidthM() float64 { return float64(c.FramePx) * c.GSDm }

// Landsat8MS returns a multispectral payload calibrated to the Landsat 8
// regime the paper models: 10K x 10K px frames, 11 bands, 12-bit samples,
// ~2:1 compression — about 7 Gbit (~0.9 GB) per frame. At the Landsat
// ground segment's 384 Mbit/s this yields a daily downlink capacity of
// roughly 750 frames against ~3600 observed, reproducing the ~21% bent-pipe
// delivery fraction of Figure 4.
func Landsat8MS() Camera {
	return Camera{
		Name:          "landsat8-ms",
		FramePx:       10000,
		Bands:         11,
		BitsPerSample: 12,
		Compression:   0.606,
		GSDm:          16.2, // 10K px spanning one 162 km row pitch
	}
}

// Landsat8Hyper returns the hyperspectral variant used in the paper's
// Figure 2 accounting ("hyperspectral, 10K image frames"), whose ~70 Gbit
// frames limit a lone satellite to about five downlinked frames per orbit
// revolution (2% of observations).
func Landsat8Hyper() Camera {
	c := Landsat8MS()
	c.Name = "landsat8-hyper"
	c.Bands = 75
	return c
}

// Capture is one frame capture event.
type Capture struct {
	// Time is the capture instant (the midpoint of the frame's dwell).
	Time time.Time
	// Scene is the WRS grid cell the frame covers.
	Scene wrs.Scene
	// Sat is the index of the capturing satellite within its constellation
	// (0 for single-satellite runs; assigned by callers that fan out).
	Sat int
}

// Imager binds a camera to an orbit and a reference grid and generates the
// capture schedule.
type Imager struct {
	Camera Camera
	Orbit  orbit.Elements
	Grid   wrs.Grid
}

// NewImager returns an imager after validating its configuration.
func NewImager(c Camera, e orbit.Elements, g wrs.Grid) (Imager, error) {
	if err := c.Validate(); err != nil {
		return Imager{}, err
	}
	if err := e.Validate(); err != nil {
		return Imager{}, err
	}
	return Imager{Camera: c, Orbit: e, Grid: g}, nil
}

// FrameDeadline returns the frame period for this orbit and grid: the time
// between successive frame captures, which is also the processing deadline
// for continuous ground-track coverage.
func (im Imager) FrameDeadline() time.Duration {
	return im.Grid.FramePeriod(im.Orbit)
}

// Captures returns the frames captured during [start, start+span), in time
// order. Frames are aligned to row boundaries (ascending-node crossings) so
// that each capture maps to a stable grid scene.
func (im Imager) Captures(start time.Time, span time.Duration) []Capture {
	fp := im.FrameDeadline()
	end := start.Add(span)
	// Align to the row boundary at or before start.
	node := wrs.AscendingNodeTime(im.Orbit, start)
	sinceNode := start.Sub(node)
	k := sinceNode / fp
	t := node.Add(k * fp)
	if t.Before(start) {
		t = t.Add(fp)
	}
	var caps []Capture
	for ; t.Before(end); t = t.Add(fp) {
		mid := t.Add(fp / 2)
		caps = append(caps, Capture{Time: mid, Scene: im.Grid.SceneAt(im.Orbit, mid)})
	}
	return caps
}

// FramesPerDay returns the average number of frames captured per solar day.
func (im Imager) FramesPerDay() float64 {
	return 86400 / im.FrameDeadline().Seconds()
}
