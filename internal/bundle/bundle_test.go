package bundle

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kodan/internal/ctxengine"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/tiling"
)

func sampleInputs() (policy.Selection, policy.TilingProfile, []ctxengine.Stats, policy.Estimate) {
	sel := policy.Selection{
		Tiling:  tiling.Tiling{PerSide: 3},
		Actions: []policy.Action{policy.Downlink, policy.Discard, policy.Specialized},
	}
	prof := policy.TilingProfile{
		Tiling: sel.Tiling,
		Contexts: []policy.ContextProfile{
			{TileFrac: 0.3, HighValueFrac: 0.95, Special: nn.Confusion{TP: 90, FP: 5, TN: 4, FN: 1}},
			{TileFrac: 0.4, HighValueFrac: 0.05},
			{TileFrac: 0.3, HighValueFrac: 0.5},
		},
	}
	stats := []ctxengine.Stats{
		{Name: "desert/clear", DominantGeo: imagery.Desert, HighValueFrac: 0.95, Count: 30},
		{Name: "ocean/overcast", DominantGeo: imagery.Ocean, HighValueFrac: 0.05, Count: 40},
		{Name: "forest/mixed", DominantGeo: imagery.Forest, HighValueFrac: 0.5, Count: 30},
	}
	est := policy.Estimate{DVD: 0.93, FrameTime: 9 * time.Second}
	return sel, prof, stats, est
}

func TestRoundTrip(t *testing.T) {
	sel, prof, stats, est := sampleInputs()
	b, err := New(4, "resnet50dilated-ppm-deepsup", hw.Orin15W, sel, prof, stats,
		24*time.Second, 0.21, est)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Human-auditable JSON.
	for _, want := range []string{"desert/clear", "downlink", "specialized", "Orin 15W"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("serialized bundle missing %q", want)
		}
	}

	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := back.Selection()
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Tiling != sel.Tiling || len(sel2.Actions) != len(sel.Actions) {
		t.Fatal("selection shape changed")
	}
	for i := range sel.Actions {
		if sel2.Actions[i] != sel.Actions[i] {
			t.Fatalf("action %d: %v != %v", i, sel2.Actions[i], sel.Actions[i])
		}
	}
	if back.ExpectedDVD != 0.93 || back.App != 4 {
		t.Fatal("metadata lost")
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	sel, prof, stats, est := sampleInputs()
	sel.Actions = sel.Actions[:2]
	if _, err := New(4, "x", hw.Orin15W, sel, prof, stats, time.Second, 0.2, est); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

func TestReadRejectsBadBundles(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"wrong version": `{"schemaVersion":99,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`,
		"bad tiling":    `{"schemaVersion":1,"tilesPerSide":0,"contexts":[{"action":"discard"}]}`,
		"no contexts":   `{"schemaVersion":1,"tilesPerSide":3,"contexts":[]}`,
		"bad action":    `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"explode"}]}`,
		"unknown field": `{"schemaVersion":1,"tilesPerSide":3,"bogus":1,"contexts":[{"action":"discard"}]}`,
	}
	for name, raw := range cases {
		if _, err := Read(strings.NewReader(raw)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestReadHostileInputs is a fuzz-style table over malformed bundles: every
// case must produce a descriptive error — never a panic, never a silent
// zero-value bundle. The deployment path (kodan.ImportSelection) funnels
// untrusted on-disk artifacts through Read, so hostility here is the norm.
func TestReadHostileInputs(t *testing.T) {
	valid := func() string {
		sel, prof, stats, est := sampleInputs()
		b, err := New(4, "resnet50dilated-ppm-deepsup", hw.Orin15W, sel, prof, stats,
			24*time.Second, 0.21, est)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name    string
		raw     string
		wantSub string // substring the error must carry to be "descriptive"
	}{
		{"empty input", "", "bundle:"},
		{"whitespace only", "   \n\t  ", "bundle:"},
		{"not json at all", "PK\x03\x04 zipfile bytes", "bundle:"},
		{"json scalar", `42`, "bundle:"},
		{"json array", `[1,2,3]`, "bundle:"},
		{"unterminated object", `{"schemaVersion":1,`, "bundle:"},
		{"version zero", `{"schemaVersion":0,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`, "schema version 0"},
		{"version from the future", `{"schemaVersion":2,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`, "schema version 2"},
		{"negative version", `{"schemaVersion":-1,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`, "schema version -1"},
		{"tiling zero", `{"schemaVersion":1,"tilesPerSide":0,"contexts":[{"action":"discard"}]}`, "bad tiling"},
		{"tiling negative", `{"schemaVersion":1,"tilesPerSide":-4,"contexts":[{"action":"discard"}]}`, "bad tiling"},
		{"tiling float", `{"schemaVersion":1,"tilesPerSide":2.5,"contexts":[{"action":"discard"}]}`, "bundle:"},
		{"tiling overflow", `{"schemaVersion":1,"tilesPerSide":99999999999999999999,"contexts":[{"action":"discard"}]}`, "bundle:"},
		{"no contexts", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[]}`, "no contexts"},
		{"null contexts", `{"schemaVersion":1,"tilesPerSide":3,"contexts":null}`, "no contexts"},
		{"unknown action", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"explode"}]}`, `unknown action "explode"`},
		{"empty action", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":""}]}`, "unknown action"},
		{"action wrong case", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"Discard"}]}`, "unknown action"},
		{"action wrong type", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":7}]}`, "bundle:"},
		{"second context bad", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"discard"},{"action":"nope"}]}`, "context 1"},
		{"unknown top-level field", `{"schemaVersion":1,"tilesPerSide":3,"hacked":true,"contexts":[{"action":"discard"}]}`, "bundle:"},
		{"unknown context field", `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"discard","payload":"x"}]}`, "bundle:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("Read panicked: %v", rec)
				}
			}()
			b, err := Read(strings.NewReader(tc.raw))
			if err == nil {
				t.Fatalf("accepted hostile input, got bundle %+v", b)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q not descriptive, want substring %q", err, tc.wantSub)
			}
		})
	}

	// Truncation sweep: every strict prefix of a valid bundle must fail
	// cleanly (the final bytes are a closing newline, so only the full
	// document parses).
	t.Run("truncations", func(t *testing.T) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("Read panicked on a truncated bundle: %v", rec)
			}
		}()
		for cut := 0; cut < len(valid)-1; cut++ {
			if _, err := Read(strings.NewReader(valid[:cut])); err == nil {
				t.Fatalf("truncation at byte %d accepted", cut)
			}
		}
		if _, err := Read(strings.NewReader(valid)); err != nil {
			t.Fatalf("full bundle rejected: %v", err)
		}
	})
}

func TestParseActionCoversAll(t *testing.T) {
	for a := policy.Discard; a <= policy.Generic; a++ {
		got, err := parseAction(a.String())
		if err != nil || got != a {
			t.Errorf("round trip failed for %v", a)
		}
	}
}
