package bundle

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kodan/internal/ctxengine"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/tiling"
)

func sampleInputs() (policy.Selection, policy.TilingProfile, []ctxengine.Stats, policy.Estimate) {
	sel := policy.Selection{
		Tiling:  tiling.Tiling{PerSide: 3},
		Actions: []policy.Action{policy.Downlink, policy.Discard, policy.Specialized},
	}
	prof := policy.TilingProfile{
		Tiling: sel.Tiling,
		Contexts: []policy.ContextProfile{
			{TileFrac: 0.3, HighValueFrac: 0.95, Special: nn.Confusion{TP: 90, FP: 5, TN: 4, FN: 1}},
			{TileFrac: 0.4, HighValueFrac: 0.05},
			{TileFrac: 0.3, HighValueFrac: 0.5},
		},
	}
	stats := []ctxengine.Stats{
		{Name: "desert/clear", DominantGeo: imagery.Desert, HighValueFrac: 0.95, Count: 30},
		{Name: "ocean/overcast", DominantGeo: imagery.Ocean, HighValueFrac: 0.05, Count: 40},
		{Name: "forest/mixed", DominantGeo: imagery.Forest, HighValueFrac: 0.5, Count: 30},
	}
	est := policy.Estimate{DVD: 0.93, FrameTime: 9 * time.Second}
	return sel, prof, stats, est
}

func TestRoundTrip(t *testing.T) {
	sel, prof, stats, est := sampleInputs()
	b, err := New(4, "resnet50dilated-ppm-deepsup", hw.Orin15W, sel, prof, stats,
		24*time.Second, 0.21, est)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Human-auditable JSON.
	for _, want := range []string{"desert/clear", "downlink", "specialized", "Orin 15W"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("serialized bundle missing %q", want)
		}
	}

	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := back.Selection()
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Tiling != sel.Tiling || len(sel2.Actions) != len(sel.Actions) {
		t.Fatal("selection shape changed")
	}
	for i := range sel.Actions {
		if sel2.Actions[i] != sel.Actions[i] {
			t.Fatalf("action %d: %v != %v", i, sel2.Actions[i], sel.Actions[i])
		}
	}
	if back.ExpectedDVD != 0.93 || back.App != 4 {
		t.Fatal("metadata lost")
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	sel, prof, stats, est := sampleInputs()
	sel.Actions = sel.Actions[:2]
	if _, err := New(4, "x", hw.Orin15W, sel, prof, stats, time.Second, 0.2, est); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

func TestReadRejectsBadBundles(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"wrong version": `{"schemaVersion":99,"tilesPerSide":3,"contexts":[{"action":"discard"}]}`,
		"bad tiling":    `{"schemaVersion":1,"tilesPerSide":0,"contexts":[{"action":"discard"}]}`,
		"no contexts":   `{"schemaVersion":1,"tilesPerSide":3,"contexts":[]}`,
		"bad action":    `{"schemaVersion":1,"tilesPerSide":3,"contexts":[{"action":"explode"}]}`,
		"unknown field": `{"schemaVersion":1,"tilesPerSide":3,"bogus":1,"contexts":[{"action":"discard"}]}`,
	}
	for name, raw := range cases {
		if _, err := Read(strings.NewReader(raw)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseActionCoversAll(t *testing.T) {
	for a := policy.Discard; a <= policy.Generic; a++ {
		got, err := parseAction(a.String())
		if err != nil || got != a {
			t.Errorf("round trip failed for %v", a)
		}
	}
}
