// Package bundle serializes deployment artifacts: the generated selection
// logic, the context inventory, and the measured profile it was derived
// from. A mission would uplink this bundle to the satellite (it is a few
// kilobytes — the trained model weights ride along separately); on the
// ground it serves as the auditable record of what the transformation step
// decided and why.
package bundle

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kodan/internal/ctxengine"
	"kodan/internal/hw"
	"kodan/internal/policy"
	"kodan/internal/tiling"
)

// Version identifies the bundle schema.
const Version = 1

// Context is the serialized form of one context's inventory entry.
type Context struct {
	Name          string  `json:"name"`
	HighValueFrac float64 `json:"highValueFrac"`
	TileFrac      float64 `json:"tileFrac"`
	Action        string  `json:"action"`
}

// Bundle is the serialized deployment artifact.
type Bundle struct {
	SchemaVersion int    `json:"schemaVersion"`
	App           int    `json:"app"`
	AppName       string `json:"appName"`
	Target        string `json:"target"`
	TilesPerSide  int    `json:"tilesPerSide"`
	// DeadlineMs and CapacityFrac record the deployment environment the
	// logic was optimized for.
	DeadlineMs   float64   `json:"deadlineMs"`
	CapacityFrac float64   `json:"capacityFrac"`
	Contexts     []Context `json:"contexts"`
	// ExpectedDVD and ExpectedFrameMs record the transformation step's
	// estimates, for post-deployment comparison.
	ExpectedDVD     float64 `json:"expectedDVD"`
	ExpectedFrameMs float64 `json:"expectedFrameMs"`
}

// New assembles a bundle from transformation outputs.
func New(appIndex int, appName string, target hw.Target, sel policy.Selection,
	prof policy.TilingProfile, stats []ctxengine.Stats, deadline time.Duration,
	capacityFrac float64, est policy.Estimate) (*Bundle, error) {
	if len(sel.Actions) != len(prof.Contexts) || len(sel.Actions) != len(stats) {
		return nil, fmt.Errorf("bundle: inconsistent context counts (%d actions, %d profiles, %d stats)",
			len(sel.Actions), len(prof.Contexts), len(stats))
	}
	b := &Bundle{
		SchemaVersion:   Version,
		App:             appIndex,
		AppName:         appName,
		Target:          target.String(),
		TilesPerSide:    sel.Tiling.PerSide,
		DeadlineMs:      float64(deadline.Milliseconds()),
		CapacityFrac:    capacityFrac,
		ExpectedDVD:     est.DVD,
		ExpectedFrameMs: float64(est.FrameTime.Milliseconds()),
	}
	for c, a := range sel.Actions {
		b.Contexts = append(b.Contexts, Context{
			Name:          stats[c].Name,
			HighValueFrac: prof.Contexts[c].HighValueFrac,
			TileFrac:      prof.Contexts[c].TileFrac,
			Action:        a.String(),
		})
	}
	return b, nil
}

// Selection reconstructs the policy selection from the bundle.
func (b *Bundle) Selection() (policy.Selection, error) {
	sel := policy.Selection{Tiling: tiling.Tiling{PerSide: b.TilesPerSide}}
	if err := sel.Tiling.Validate(); err != nil {
		return policy.Selection{}, err
	}
	for i, c := range b.Contexts {
		a, err := parseAction(c.Action)
		if err != nil {
			return policy.Selection{}, fmt.Errorf("bundle: context %d: %w", i, err)
		}
		sel.Actions = append(sel.Actions, a)
	}
	return sel, nil
}

// parseAction inverts Action.String.
func parseAction(s string) (policy.Action, error) {
	for a := policy.Discard; a <= policy.Generic; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown action %q", s)
}

// Write serializes the bundle as indented JSON.
func (b *Bundle) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Read parses a bundle and validates its schema.
func Read(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if b.SchemaVersion != Version {
		return nil, fmt.Errorf("bundle: schema version %d, want %d", b.SchemaVersion, Version)
	}
	if b.TilesPerSide <= 0 {
		return nil, fmt.Errorf("bundle: bad tiling %d", b.TilesPerSide)
	}
	if len(b.Contexts) == 0 {
		return nil, fmt.Errorf("bundle: no contexts")
	}
	for i, c := range b.Contexts {
		if _, err := parseAction(c.Action); err != nil {
			return nil, fmt.Errorf("bundle: context %d: %w", i, err)
		}
	}
	return &b, nil
}
