// Package wrs models a Landsat-style World Reference System (WRS): a fixed
// grid of scene footprints indexed by (path, row). The paper extends the
// cote simulator with the USGS WRS-2 shapefiles; we generate the grid
// analytically from the orbit geometry instead, which preserves everything
// the evaluation consumes — scene counting, revisit structure, and the
// frame cadence — without the proprietary shapefile import.
//
// In WRS-2, one orbital revolution sweeps a single path and crosses all
// rows of that path; successive revolutions step westward by ~24.7 degrees
// of node longitude, interleaving over a 16-day repeat cycle until all 233
// paths are covered. Rows count position along the orbit from the ascending
// node. The full grid is 233 x 248 = 57,784 scenes.
package wrs

import (
	"fmt"
	"math"
	"time"

	"kodan/internal/geo"
	"kodan/internal/orbit"
)

// Standard WRS-2 grid dimensions.
const (
	// DefaultPaths is the WRS-2 path count.
	DefaultPaths = 233
	// DefaultRows is the WRS-2 row count per path.
	DefaultRows = 248
)

// Grid is a world reference grid. The zero value is not useful; use
// NewGrid or Landsat8Grid.
type Grid struct {
	paths int
	rows  int
}

// NewGrid returns a grid with the given path and row counts. It panics if
// either is non-positive (a configuration error, not a runtime condition).
func NewGrid(paths, rows int) Grid {
	if paths <= 0 || rows <= 0 {
		panic("wrs: non-positive grid dimensions")
	}
	return Grid{paths: paths, rows: rows}
}

// Landsat8Grid returns the standard 233 x 248 WRS-2 grid.
func Landsat8Grid() Grid { return NewGrid(DefaultPaths, DefaultRows) }

// Paths returns the number of paths in the grid.
func (g Grid) Paths() int { return g.paths }

// Rows returns the number of rows per path.
func (g Grid) Rows() int { return g.rows }

// TotalScenes returns the number of scenes in the grid.
func (g Grid) TotalScenes() int { return g.paths * g.rows }

// Scene identifies one grid cell.
type Scene struct {
	Path int // in [0, Paths)
	Row  int // in [0, Rows)
}

// String implements fmt.Stringer in the familiar path/row notation.
func (s Scene) String() string { return fmt.Sprintf("P%03dR%03d", s.Path, s.Row) }

// Index returns a dense index for s in [0, TotalScenes).
func (g Grid) Index(s Scene) int {
	if s.Path < 0 || s.Path >= g.paths || s.Row < 0 || s.Row >= g.rows {
		panic(fmt.Sprintf("wrs: scene %v outside %dx%d grid", s, g.paths, g.rows))
	}
	return s.Path*g.rows + s.Row
}

// SceneOf inverts Index.
func (g Grid) SceneOf(index int) Scene {
	if index < 0 || index >= g.TotalScenes() {
		panic(fmt.Sprintf("wrs: index %d outside grid", index))
	}
	return Scene{Path: index / g.rows, Row: index % g.rows}
}

// argumentOfLatitude returns the angle from the ascending node along the
// orbit at time t, in [0, 2*pi). Valid for near-circular orbits, where the
// argument of latitude advances uniformly at the draconitic rate (mean
// motion plus J2 perigee drift).
func argumentOfLatitude(e orbit.Elements, t time.Time) float64 {
	dt := t.Sub(e.Epoch).Seconds()
	u0 := e.MeanAnomalyRad + e.ArgPerigeeRad
	return geo.WrapTwoPi(u0 + e.DraconiticRate()*dt)
}

// AscendingNodeTime returns the time of the most recent ascending-node
// crossing at or before t.
func AscendingNodeTime(e orbit.Elements, t time.Time) time.Time {
	u := argumentOfLatitude(e, t)
	back := u / e.DraconiticRate()
	return t.Add(-time.Duration(back * float64(time.Second)))
}

// SceneAt returns the grid scene the satellite's sensor is over at time t.
// The path is fixed for a whole revolution (determined by the longitude of
// that revolution's ascending node); the row advances uniformly along the
// orbit.
func (g Grid) SceneAt(e orbit.Elements, t time.Time) Scene {
	u := argumentOfLatitude(e, t)
	row := int(u / (2 * math.Pi) * float64(g.rows))
	if row >= g.rows {
		row = g.rows - 1
	}
	tan := AscendingNodeTime(e, t)
	nodeLon := orbit.Subpoint(e, tan).LonDeg
	frac := geo.WrapTwoPi(geo.Deg2Rad(nodeLon)) / (2 * math.Pi)
	path := int(frac * float64(g.paths))
	if path >= g.paths {
		path = g.paths - 1
	}
	return Scene{Path: path, Row: row}
}

// FramePeriod returns the time the sensor spends over one row — the paper's
// frame deadline. For the Landsat 8 orbit and the 248-row grid this is
// about 24 seconds (the paper reports 22 s; the difference is their use of
// the imaged 185 km scene length rather than the full row pitch, and does
// not change any conclusion — both are swamped by the 98 s filter time of
// Figure 5).
func (g Grid) FramePeriod(e orbit.Elements) time.Duration {
	return time.Duration(float64(e.DraconiticPeriod()) / float64(g.rows))
}

// Coverage tracks which scenes have been observed. The zero value is not
// useful; use NewCoverage.
type Coverage struct {
	grid Grid
	seen []bool
	n    int
}

// NewCoverage returns an empty coverage set over g.
func NewCoverage(g Grid) *Coverage {
	return &Coverage{grid: g, seen: make([]bool, g.TotalScenes())}
}

// Mark records that s was observed and reports whether it was new.
func (c *Coverage) Mark(s Scene) bool {
	i := c.grid.Index(s)
	if c.seen[i] {
		return false
	}
	c.seen[i] = true
	c.n++
	return true
}

// Seen reports whether s has been observed.
func (c *Coverage) Seen(s Scene) bool { return c.seen[c.grid.Index(s)] }

// Count returns the number of distinct scenes observed.
func (c *Coverage) Count() int { return c.n }

// Complete reports whether every scene in the grid has been observed.
func (c *Coverage) Complete() bool { return c.n == c.grid.TotalScenes() }

// PathsCovered returns the number of paths with at least one observed scene.
func (c *Coverage) PathsCovered() int {
	covered := 0
	for p := 0; p < c.grid.paths; p++ {
		for r := 0; r < c.grid.rows; r++ {
			if c.seen[p*c.grid.rows+r] {
				covered++
				break
			}
		}
	}
	return covered
}
