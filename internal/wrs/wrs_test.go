package wrs

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"kodan/internal/orbit"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func TestGridDimensions(t *testing.T) {
	g := Landsat8Grid()
	if g.Paths() != 233 || g.Rows() != 248 {
		t.Fatalf("grid %dx%d", g.Paths(), g.Rows())
	}
	if g.TotalScenes() != 57784 {
		t.Fatalf("total scenes = %d, want 57784", g.TotalScenes())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := Landsat8Grid()
	if err := quick.Check(func(raw uint32) bool {
		i := int(raw) % g.TotalScenes()
		return g.Index(g.SceneOf(i)) == i
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPanicsOutsideGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-grid scene")
		}
	}()
	Landsat8Grid().Index(Scene{Path: 233, Row: 0})
}

func TestFramePeriodNearPaperDeadline(t *testing.T) {
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	fp := g.FramePeriod(e).Seconds()
	// Paper: a new frame every ~22 s; full-row pitch gives ~24 s.
	if fp < 21 || fp > 26 {
		t.Fatalf("frame period = %.1f s, want 21-26", fp)
	}
}

func TestFramesPerDayNearPaper(t *testing.T) {
	// Figure 4: a satellite observes ~3600 frames per day.
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	perDay := 86400 / g.FramePeriod(e).Seconds()
	if perDay < 3300 || perDay > 3900 {
		t.Fatalf("frames/day = %.0f, want ~3600", perDay)
	}
}

func TestAscendingNodeTime(t *testing.T) {
	e := orbit.Landsat8(epoch)
	e.MeanAnomalyRad = 1.0
	tt := epoch.Add(1000 * time.Second)
	tan := AscendingNodeTime(e, tt)
	if tan.After(tt) {
		t.Fatal("node time in the future")
	}
	// At the node time, the satellite should be over the equator.
	sub := orbit.Subpoint(e, tan)
	if math.Abs(sub.LatDeg) > 0.5 {
		t.Fatalf("latitude at node = %.3f deg", sub.LatDeg)
	}
	// And the node time must be within one period of t.
	if tt.Sub(tan) > e.Period() {
		t.Fatalf("node %v more than a period before %v", tan, tt)
	}
}

func TestSceneAtPathConstantWithinRevolution(t *testing.T) {
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	tan := AscendingNodeTime(e, epoch.Add(30*time.Minute))
	first := g.SceneAt(e, tan.Add(5*time.Second))
	// Sample strictly inside the same revolution.
	for frac := 0.1; frac < 0.95; frac += 0.1 {
		dt := time.Duration(frac * float64(e.Period()))
		s := g.SceneAt(e, tan.Add(dt))
		if s.Path != first.Path {
			t.Fatalf("path changed mid-revolution: %v -> %v at %.0f%%", first, s, frac*100)
		}
	}
}

func TestSceneAtRowsAdvanceMonotonically(t *testing.T) {
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	tan := AscendingNodeTime(e, epoch.Add(time.Hour))
	prev := -1
	fp := g.FramePeriod(e)
	for i := 0; i < g.Rows(); i++ {
		s := g.SceneAt(e, tan.Add(time.Duration(i)*fp+fp/2))
		if s.Row != prev+1 {
			t.Fatalf("row %d followed row %d at frame %d", s.Row, prev, i)
		}
		prev = s.Row
	}
	if prev != g.Rows()-1 {
		t.Fatalf("final row %d", prev)
	}
}

func TestSuccessiveOrbitsChangePath(t *testing.T) {
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	s0 := g.SceneAt(e, epoch.Add(10*time.Second))
	s1 := g.SceneAt(e, epoch.Add(10*time.Second).Add(e.Period()))
	if s0.Path == s1.Path {
		t.Fatalf("path did not advance across revolutions: %v vs %v", s0, s1)
	}
	// WRS-2: node longitude shifts ~24.7 degrees west per revolution, which
	// is ~16 path indices on a 233-path grid.
	diff := (s0.Path - s1.Path + g.Paths()) % g.Paths()
	if diff != 16 && diff != 17 && diff != g.Paths()-16 && diff != g.Paths()-17 {
		t.Fatalf("path stride = %d, want ~16 (mod 233)", diff)
	}
}

func TestSixteenDayRepeatCoversMostPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("16-day sweep")
	}
	g := Landsat8Grid()
	e := orbit.Landsat8(epoch)
	cov := NewCoverage(g)
	fp := g.FramePeriod(e)
	end := epoch.Add(16 * 24 * time.Hour)
	for tt := epoch; tt.Before(end); tt = tt.Add(fp) {
		cov.Mark(g.SceneAt(e, tt.Add(fp/2)))
	}
	// The analytic grid will not match USGS numbering exactly, but a single
	// satellite must reach nearly all paths over its 16-day repeat cycle.
	if got := cov.PathsCovered(); got < 200 {
		t.Fatalf("paths covered in 16 days = %d, want >= 200", got)
	}
}

func TestCoverageAccounting(t *testing.T) {
	g := NewGrid(3, 4)
	cov := NewCoverage(g)
	if cov.Count() != 0 || cov.Complete() {
		t.Fatal("fresh coverage not empty")
	}
	if !cov.Mark(Scene{Path: 1, Row: 2}) {
		t.Fatal("first mark not new")
	}
	if cov.Mark(Scene{Path: 1, Row: 2}) {
		t.Fatal("second mark reported new")
	}
	if cov.Count() != 1 || !cov.Seen(Scene{Path: 1, Row: 2}) {
		t.Fatal("count/seen wrong")
	}
	if cov.PathsCovered() != 1 {
		t.Fatalf("paths covered = %d", cov.PathsCovered())
	}
	for p := 0; p < 3; p++ {
		for r := 0; r < 4; r++ {
			cov.Mark(Scene{Path: p, Row: r})
		}
	}
	if !cov.Complete() || cov.Count() != 12 || cov.PathsCovered() != 3 {
		t.Fatal("full coverage not detected")
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGrid(0, 10)
}
