package admission

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrSaturated is returned by FairPool.Acquire when every worker slot is
// busy and the caller's tenant queue is full. HTTP handlers translate it
// into 429 Too Many Requests with a Retry-After header.
var ErrSaturated = errors.New("admission: worker pool saturated")

// FairPool is a bounded worker pool with per-tenant weighted fair
// queueing — the successor to the server's FIFO pool. At most Workers
// computations run concurrently. Waiters queue per tenant (each tenant may
// hold up to QueueDepth waiters; beyond that its Acquire fails fast with
// ErrSaturated), and when a worker frees, the next grant goes to the
// waiter with the smallest virtual finish tag — start-time fair queueing,
// where a tenant with weight w consumes virtual time at 1/w per request.
// A heavy tenant therefore fills its own queue and gets its weighted share
// of grants, but can never push a light tenant's waiters out of line: the
// light tenant's first waiter always carries one of the smallest tags.
//
// With a single tenant (the server's default "anon" identity) the pool
// degenerates to exactly the old FIFO-bounded behavior: one queue of depth
// QueueDepth, grants in arrival order.
type FairPool struct {
	workers    int
	depth      int // per-tenant queue bound
	maxTenants int
	weights    map[string]float64

	rejected atomic.Int64

	mu       sync.Mutex
	inFlight int
	queued   int // total waiters across tenants
	vtime    float64
	tenants  map[string]*tenantQueue
}

type tenantQueue struct {
	weight     float64
	lastFinish float64
	waiters    []*waiter // FIFO
}

type waiter struct {
	ready  chan struct{}
	finish float64
}

// FairPoolOptions sizes a FairPool.
type FairPoolOptions struct {
	// Workers bounds concurrently running computations (default 1).
	Workers int
	// QueueDepth bounds each tenant's waiters (default 0: no queueing —
	// a busy pool rejects immediately, the old pool's semantics).
	QueueDepth int
	// Weights maps tenant names to fair-share weights (default 1 each).
	Weights map[string]float64
	// MaxTenants bounds distinct tenant queues (default
	// DefaultMaxTenants); later tenants share the overflow queue.
	MaxTenants int
}

// NewFairPool returns a pool with the given shape.
func NewFairPool(opts FairPoolOptions) *FairPool {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	return &FairPool{
		workers:    opts.Workers,
		depth:      opts.QueueDepth,
		maxTenants: opts.MaxTenants,
		weights:    opts.Weights,
		tenants:    make(map[string]*tenantQueue),
	}
}

// Acquire claims a worker slot for tenant, waiting in the tenant's queue
// if all slots are busy. It returns ErrSaturated immediately when the
// tenant's queue is full, or ctx.Err() if the caller's context ends while
// queued. Every successful Acquire must be paired with Release.
func (p *FairPool) Acquire(ctx context.Context, tenant string) error {
	p.mu.Lock()
	if p.inFlight < p.workers && p.queued == 0 {
		p.inFlight++
		p.mu.Unlock()
		return nil
	}
	tq := p.queueFor(tenant)
	if len(tq.waiters) >= p.depth {
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrSaturated
	}
	// Start-time fair queueing: the waiter finishes 1/weight virtual units
	// after the later of "now" (the global virtual clock) and the tenant's
	// previous waiter, so an idle tenant re-enters at the current front
	// instead of burning credit it never used.
	start := p.vtime
	if tq.lastFinish > start {
		start = tq.lastFinish
	}
	w := &waiter{ready: make(chan struct{}), finish: start + 1/tq.weight}
	tq.lastFinish = w.finish
	tq.waiters = append(tq.waiters, w)
	p.queued++
	p.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: give the slot back.
			p.mu.Unlock()
			p.Release()
		default:
			p.removeLocked(tq, w)
			p.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire and grants it to the fairest
// waiter, if any.
func (p *FairPool) Release() {
	p.mu.Lock()
	p.inFlight--
	p.grantLocked()
	p.mu.Unlock()
}

// queueFor returns (creating under the cardinality bound) tenant's queue.
func (p *FairPool) queueFor(tenant string) *tenantQueue {
	tq, ok := p.tenants[tenant]
	if !ok {
		if len(p.tenants) >= p.maxTenants {
			tenant = OverflowTenant
			tq = p.tenants[tenant]
		}
		if tq == nil {
			w := p.weights[tenant]
			if w <= 0 {
				w = 1
			}
			tq = &tenantQueue{weight: w}
			p.tenants[tenant] = tq
		}
	}
	return tq
}

// grantLocked hands a free slot to the queued waiter with the smallest
// virtual finish tag (ties broken on tenant name, then FIFO within a
// tenant — a total order, so grant sequences are deterministic for a
// deterministic arrival order).
func (p *FairPool) grantLocked() {
	if p.inFlight >= p.workers || p.queued == 0 {
		return
	}
	names := make([]string, 0, len(p.tenants))
	for name, tq := range p.tenants {
		if len(tq.waiters) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	best := ""
	for _, name := range names {
		head := p.tenants[name].waiters[0]
		if best == "" || head.finish < p.tenants[best].waiters[0].finish {
			best = name
		}
	}
	tq := p.tenants[best]
	w := tq.waiters[0]
	tq.waiters = tq.waiters[1:]
	p.queued--
	if w.finish > p.vtime {
		p.vtime = w.finish
	}
	p.inFlight++
	close(w.ready)
}

// removeLocked drops a cancelled waiter from the queue it was placed in.
func (p *FairPool) removeLocked(tq *tenantQueue, w *waiter) {
	for i, cand := range tq.waiters {
		if cand == w {
			tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
			p.queued--
			return
		}
	}
}

// QueueDepthOf returns tenant's current waiter count.
func (p *FairPool) QueueDepthOf(tenant string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tq, ok := p.tenants[tenant]; ok {
		return len(tq.waiters)
	}
	return 0
}

// PoolStats is a point-in-time snapshot for the metrics endpoint. The
// JSON shape matches the original FIFO pool's, so /metrics consumers keep
// working; QueueDepth is now the per-tenant bound.
type PoolStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queueDepth"`
	InFlight   int   `json:"inFlight"`
	Queued     int   `json:"queued"`
	Rejected   int64 `json:"rejected"`
}

// Stats snapshots the pool.
func (p *FairPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:    p.workers,
		QueueDepth: p.depth,
		InFlight:   p.inFlight,
		Queued:     p.queued,
		Rejected:   p.rejected.Load(),
	}
}
