// Package admission is the serving plane's multi-tenant admission layer:
// per-tenant token-bucket rate limiting at the front door and weighted
// fair queueing over the bounded transform worker pool. It layers on top
// of the server's existing 429/Retry-After backpressure — the token
// bucket decides whether a tenant's request may enter at all, and the
// fair pool decides which queued tenant runs next once a worker frees,
// so a heavy tenant can saturate its own share without starving a light
// one ("Lightspeed Data Compute for the Space Era" frames exactly this
// constellation-as-shared-compute-fabric contention).
//
// Tenant identity is a short string (the server takes it from the
// X-Kodan-Tenant request header, with a default tenant for anonymous
// traffic). Distinct-tenant cardinality is bounded: beyond MaxTenants the
// surplus share one "overflow" bucket/queue, so a tenant-id flood cannot
// grow server state without bound.
//
// The package is stdlib-only and fully deterministic under an injected
// clock, like the rest of the reproduction.
package admission

import (
	"math"
	"sync"
	"time"

	"kodan/internal/telemetry"
)

// OverflowTenant is the shared identity assigned once MaxTenants distinct
// tenants have been seen.
const OverflowTenant = "overflow"

// DefaultMaxTenants bounds distinct tenant state (buckets, queues,
// per-tenant metrics) when Options leave it zero.
const DefaultMaxTenants = 64

// LimiterOptions sizes a Limiter.
type LimiterOptions struct {
	// Rate is the per-tenant token refill rate in requests per second
	// (<= 0 disables the limiter: every Allow admits).
	Rate float64
	// Burst is the bucket depth — how many requests a tenant may issue
	// back-to-back after an idle period (default max(1, 2*Rate)).
	Burst float64
	// MaxTenants bounds distinct tenant buckets (default
	// DefaultMaxTenants); later tenants share the overflow bucket.
	MaxTenants int
	// Now overrides the clock (tests); default time.Now.
	Now func() time.Time
}

// Limiter is a per-tenant token-bucket admission controller. Each tenant
// owns an independent bucket refilled at Rate tokens/second up to Burst;
// Allow consumes one token or reports how long until one is available.
type Limiter struct {
	rate       float64
	burst      float64
	maxTenants int
	now        func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter; nil when opts.Rate <= 0 (a nil Limiter
// admits everything).
func NewLimiter(opts LimiterOptions) *Limiter {
	if opts.Rate <= 0 {
		return nil
	}
	if opts.Burst <= 0 {
		opts.Burst = math.Max(1, 2*opts.Rate)
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Limiter{
		rate:       opts.Rate,
		burst:      opts.Burst,
		maxTenants: opts.MaxTenants,
		now:        opts.Now,
		buckets:    make(map[string]*bucket),
	}
}

// Allow consumes one token from tenant's bucket. When the bucket is empty
// it reports false plus how long until one token refills — the server
// folds that into the 429's Retry-After.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[tenant]
	if !exists {
		if len(l.buckets) >= l.maxTenants {
			tenant = OverflowTenant
			b = l.buckets[tenant]
		}
		if b == nil {
			b = &bucket{tokens: l.burst, last: now}
			l.buckets[tenant] = b
		}
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// Tenants returns the number of distinct buckets currently tracked.
func (l *Limiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// TenantMetrics is the per-tenant ops surface: admitted/rejected counters
// and a live queue-depth gauge per tenant, registered in the shared
// telemetry registry (scope "<scope>.<tenant>") with the same bounded
// cardinality as the limiter.
type TenantMetrics struct {
	scope      *telemetry.Scope
	maxTenants int

	mu      sync.Mutex
	tenants map[string]*tenantCounters
}

type tenantCounters struct {
	requests, admitted, rejected *telemetry.Counter
	queueDepth                   *telemetry.Gauge
}

// NewTenantMetrics builds the per-tenant metric table in scope (nil scope
// means every metric is a no-op).
func NewTenantMetrics(scope *telemetry.Scope, maxTenants int) *TenantMetrics {
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	return &TenantMetrics{scope: scope, maxTenants: maxTenants, tenants: make(map[string]*tenantCounters)}
}

// forTenant returns (creating under the cardinality bound) the tenant's
// counters.
func (m *TenantMetrics) forTenant(tenant string) *tenantCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	tc, ok := m.tenants[tenant]
	if !ok {
		if len(m.tenants) >= m.maxTenants {
			tenant = OverflowTenant
			tc = m.tenants[tenant]
		}
		if tc == nil {
			ts := m.scope.Scope(tenant)
			tc = &tenantCounters{
				requests:   ts.Counter("requests"),
				admitted:   ts.Counter("admitted"),
				rejected:   ts.Counter("rejected"),
				queueDepth: ts.Gauge("queue_depth"),
			}
			m.tenants[tenant] = tc
		}
	}
	return tc
}

// Request counts one inbound request from tenant.
func (m *TenantMetrics) Request(tenant string) {
	if m == nil {
		return
	}
	m.forTenant(tenant).requests.Inc()
}

// Admitted counts one admitted expensive request from tenant.
func (m *TenantMetrics) Admitted(tenant string) {
	if m == nil {
		return
	}
	m.forTenant(tenant).admitted.Inc()
}

// Rejected counts one admission rejection (token bucket or fair-queue
// saturation) for tenant.
func (m *TenantMetrics) Rejected(tenant string) {
	if m == nil {
		return
	}
	m.forTenant(tenant).rejected.Inc()
}

// QueueDepth publishes tenant's current fair-pool queue depth.
func (m *TenantMetrics) QueueDepth(tenant string, depth int) {
	if m == nil {
		return
	}
	m.forTenant(tenant).queueDepth.Set(int64(depth))
}
