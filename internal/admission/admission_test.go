package admission

import (
	"fmt"
	"testing"
	"time"

	"kodan/internal/telemetry"
)

// fakeClock is an injectable clock for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestLimiterDisabled(t *testing.T) {
	if l := NewLimiter(LimiterOptions{Rate: 0}); l != nil {
		t.Fatal("Rate 0 should yield a nil limiter")
	}
	var l *Limiter
	ok, ra := l.Allow("anyone")
	if !ok || ra != 0 {
		t.Fatalf("nil limiter Allow = (%v, %v), want admit", ok, ra)
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 2, Burst: 3, Now: clk.now})
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, ra := l.Allow("a")
	if ok {
		t.Fatal("fourth immediate request should be rejected")
	}
	// Empty bucket at 2 tokens/s: one token in 500ms.
	if ra != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", ra)
	}
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("request after refill interval rejected")
	}
	// Refill caps at Burst.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("post-idle burst request %d rejected", i)
		}
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestLimiterTenantsIndependent(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 1, Burst: 1, Now: clk.now})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("a's first request rejected")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b's bucket should be independent of a's")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's second request should be rejected")
	}
}

func TestLimiterTenantCardinalityBound(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 1, Burst: 1, MaxTenants: 4, Now: clk.now})
	for i := 0; i < 10; i++ {
		l.Allow(fmt.Sprintf("tenant-%d", i))
	}
	// 4 named buckets at most, plus one shared overflow bucket.
	if n := l.Tenants(); n > 5 {
		t.Fatalf("tracked %d buckets, want <= 5", n)
	}
	// Overflow tenants share one bucket: tenant-9 drained it above.
	if ok, _ := l.Allow("tenant-99"); ok {
		t.Fatal("overflow bucket should be empty")
	}
}

func TestTenantMetricsBoundedAndCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewTenantMetrics(reg.Scope("server.tenant"), 2)
	m.Request("a")
	m.Request("a")
	m.Admitted("a")
	m.Rejected("b")
	m.QueueDepth("b", 3)
	m.Request("c") // over the bound: lands on overflow
	if got := reg.Counter("server.tenant.a.requests").Load(); got != 2 {
		t.Fatalf("a.requests = %d, want 2", got)
	}
	if got := reg.Counter("server.tenant.a.admitted").Load(); got != 1 {
		t.Fatalf("a.admitted = %d, want 1", got)
	}
	if got := reg.Counter("server.tenant.b.rejected").Load(); got != 1 {
		t.Fatalf("b.rejected = %d, want 1", got)
	}
	if got := reg.Gauge("server.tenant.b.queue_depth").Load(); got != 3 {
		t.Fatalf("b.queue_depth = %d, want 3", got)
	}
	if got := reg.Counter("server.tenant.overflow.requests").Load(); got != 1 {
		t.Fatalf("overflow.requests = %d, want 1", got)
	}
	// Nil receiver and nil scope are no-ops.
	var nilM *TenantMetrics
	nilM.Request("x")
	NewTenantMetrics(nil, 0).Admitted("x")
}
