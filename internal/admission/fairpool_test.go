package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFairPoolFastPath(t *testing.T) {
	p := NewFairPool(FairPoolOptions{Workers: 2})
	if err := p.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.InFlight != 2 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 2 in flight", st)
	}
	p.Release()
	p.Release()
	if st := p.Stats(); st.InFlight != 0 {
		t.Fatalf("inFlight = %d after release, want 0", st.InFlight)
	}
}

func TestFairPoolRejectsWhenQueueFull(t *testing.T) {
	p := NewFairPool(FairPoolOptions{Workers: 1, QueueDepth: 1})
	if err := p.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- p.Acquire(context.Background(), "a") }()
	waitFor(t, func() bool { return p.Stats().Queued == 1 })
	// The queue (depth 1) is full: the next acquire fails fast.
	if err := p.Acquire(context.Background(), "a"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	p.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	p.Release()
}

func TestFairPoolZeroDepthRejectsImmediately(t *testing.T) {
	p := NewFairPool(FairPoolOptions{Workers: 1})
	if err := p.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(context.Background(), "a"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated with no queueing", err)
	}
	p.Release()
}

func TestFairPoolCancelWhileQueued(t *testing.T) {
	p := NewFairPool(FairPoolOptions{Workers: 1, QueueDepth: 4})
	if err := p.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx, "a") }()
	waitFor(t, func() bool { return p.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if st := p.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after cancel, want 0", st.Queued)
	}
	// Releasing the original slot must leave the pool usable.
	p.Release()
	if err := p.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	p.Release()
}

func TestFairPoolWeightedShare(t *testing.T) {
	// One worker, queues from a weight-3 tenant and a weight-1 tenant.
	// Grants should interleave roughly 3:1, and the light tenant must be
	// served within any window of ~(3+1) grants — never starved.
	p := NewFairPool(FairPoolOptions{
		Workers:    1,
		QueueDepth: 32,
		Weights:    map[string]float64{"heavy": 3, "light": 1},
	})
	if err := p.Acquire(context.Background(), "seed"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	acquire := func(tenant string) {
		defer wg.Done()
		if err := p.Acquire(context.Background(), tenant); err != nil {
			t.Errorf("%s acquire: %v", tenant, err)
			return
		}
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
		p.Release()
	}
	// Enqueue the full workload before any grant happens. Enqueue order is
	// deterministic because we wait for each waiter to appear.
	total := 0
	for i := 0; i < 12; i++ {
		wg.Add(1)
		total++
		go acquire("heavy")
		waitFor(t, func() bool { return p.Stats().Queued == total })
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		total++
		go acquire("light")
		waitFor(t, func() bool { return p.Stats().Queued == total })
	}
	p.Release() // start granting
	wg.Wait()
	if len(order) != 16 {
		t.Fatalf("granted %d, want 16", len(order))
	}
	// Starvation check: within every window of 5 consecutive grants the
	// light tenant appears at least once while it still has waiters (its
	// last waiter is granted by position 15 at the latest, weighted 3:1).
	lightSeen := 0
	for i, tenant := range order {
		if tenant == "light" {
			lightSeen++
		}
		if i >= 4 && lightSeen == 0 {
			t.Fatalf("light tenant starved through first %d grants: %v", i+1, order)
		}
	}
	if lightSeen != 4 {
		t.Fatalf("light grants = %d, want 4 (order %v)", lightSeen, order)
	}
}

func TestFairPoolTenantCardinalityBound(t *testing.T) {
	p := NewFairPool(FairPoolOptions{Workers: 1, QueueDepth: 1, MaxTenants: 2})
	if err := p.Acquire(context.Background(), "t0"); err != nil {
		t.Fatal(err)
	}
	// t1 and t2 get named queues; t3+ land on the shared overflow queue.
	errs := make(chan error, 4)
	for i, tenant := range []string{"t1", "t2", "t3"} {
		tenant, want := tenant, i+1
		go func() { errs <- p.Acquire(context.Background(), tenant) }()
		waitFor(t, func() bool { return p.Stats().Queued == want })
	}
	// Overflow queue (depth 1) already holds t3's waiter: t4 is rejected.
	if err := p.Acquire(context.Background(), "t4"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated via overflow queue", err)
	}
	for i := 0; i < 3; i++ {
		p.Release()
		if err := <-errs; err != nil {
			t.Fatalf("queued acquire %d: %v", i, err)
		}
	}
	p.Release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
