// Package cluster implements the unsupervised learning used by Kodan's
// automatic context generation (Section 3.2): k-means over tile label
// vectors with pluggable distance metrics (Euclidean, Hamming, cosine),
// label-vector transforms (standardization, covariance-driven whitening via
// power iteration), silhouette scoring, and a sweep over cluster counts and
// metrics that picks the best partition — the paper's "sweeps cluster count
// and label vector distance metrics" step.
package cluster

import (
	"fmt"
	"math"

	"kodan/internal/xrand"
)

// Metric identifies a distance function over label vectors.
type Metric int

// Supported metrics.
const (
	Euclidean Metric = iota
	Cosine
	Hamming
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Cosine:
		return "cosine"
	case Hamming:
		return "hamming"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Distance returns the distance between a and b under the metric. Hamming
// binarizes at 0.5, matching its use on fraction-valued label vectors.
func (m Metric) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("cluster: dimension mismatch")
	}
	switch m {
	case Euclidean:
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	case Cosine:
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 1
		}
		return 1 - dot/math.Sqrt(na*nb)
	case Hamming:
		diff := 0
		for i := range a {
			if (a[i] >= 0.5) != (b[i] >= 0.5) {
				diff++
			}
		}
		return float64(diff)
	default:
		panic("cluster: unknown metric")
	}
}

// Standardize shifts each dimension to zero mean and unit variance,
// returning the transformed copies. Constant dimensions are left centered.
func Standardize(vecs [][]float64) [][]float64 {
	if len(vecs) == 0 {
		return nil
	}
	dim := len(vecs[0])
	mean := make([]float64, dim)
	for _, v := range vecs {
		for i, x := range v {
			mean[i] += x
		}
	}
	for i := range mean {
		mean[i] /= float64(len(vecs))
	}
	std := make([]float64, dim)
	for _, v := range vecs {
		for i, x := range v {
			d := x - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(vecs)))
		if std[i] < 1e-12 {
			std[i] = 1
		}
	}
	out := make([][]float64, len(vecs))
	for j, v := range vecs {
		w := make([]float64, dim)
		for i, x := range v {
			w[i] = (x - mean[i]) / std[i]
		}
		out[j] = w
	}
	return out
}

// PrincipalComponents returns the top-k principal directions of the data's
// covariance, found by power iteration with deflation. Vectors should be
// centered (e.g. via Standardize) first.
func PrincipalComponents(vecs [][]float64, k int, rng *xrand.Rand) [][]float64 {
	if len(vecs) == 0 || k <= 0 {
		return nil
	}
	dim := len(vecs[0])
	if k > dim {
		k = dim
	}
	// Covariance matrix (dim x dim).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, v := range vecs {
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				cov[i][j] += v[i] * v[j]
			}
		}
	}
	n := float64(len(vecs))
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= n
			cov[j][i] = cov[i][j]
		}
	}

	comps := make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		vec := make([]float64, dim)
		for i := range vec {
			vec[i] = rng.Norm(0, 1)
		}
		normalize(vec)
		for iter := 0; iter < 100; iter++ {
			next := matVec(cov, vec)
			// Deflate previously found components.
			for _, p := range comps {
				d := dot(next, p)
				for i := range next {
					next[i] -= d * p[i]
				}
			}
			if norm(next) < 1e-12 {
				break
			}
			normalize(next)
			if math.Abs(math.Abs(dot(next, vec))-1) < 1e-10 {
				vec = next
				break
			}
			vec = next
		}
		comps = append(comps, vec)
	}
	return comps
}

// Whiten rotates centered vectors onto their principal axes and scales
// each axis to unit variance — the "projections based on per-dimension
// covariance properties" of the paper's label-vector transform sweep.
// Degenerate axes (near-zero variance) are left unscaled.
func Whiten(vecs [][]float64, rng *xrand.Rand) [][]float64 {
	if len(vecs) == 0 {
		return nil
	}
	std := Standardize(vecs)
	comps := PrincipalComponents(std, len(std[0]), rng)
	proj := Project(std, comps)
	dim := len(proj[0])
	variance := make([]float64, dim)
	for _, v := range proj {
		for i, x := range v {
			variance[i] += x * x
		}
	}
	for i := range variance {
		variance[i] /= float64(len(proj))
	}
	for _, v := range proj {
		for i := range v {
			if variance[i] > 1e-9 {
				v[i] /= math.Sqrt(variance[i])
			}
		}
	}
	return proj
}

// Project maps each vector onto the given components.
func Project(vecs, comps [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		p := make([]float64, len(comps))
		for j, c := range comps {
			p[j] = dot(v, c)
		}
		out[i] = p
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}

func matVec(m [][]float64, v []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		out[i] = dot(row, v)
	}
	return out
}

// Result is a clustering of the input vectors.
type Result struct {
	// K is the cluster count.
	K int
	// Metric is the distance used.
	Metric Metric
	// Centroids holds K centroid vectors.
	Centroids [][]float64
	// Assign maps each input vector to its cluster in [0, K).
	Assign []int
	// Inertia is the sum of distances from vectors to their centroids.
	Inertia float64
}

// Sizes returns the number of members per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

// Classify returns the nearest centroid for v.
func (r *Result) Classify(v []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range r.Centroids {
		if d := r.Metric.Distance(v, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// KMeans clusters vecs into k groups under the metric, using k-means++
// seeding and Lloyd iterations until assignment fixpoint (or 100 rounds).
// Centroid updates use the coordinate mean, which is the exact minimizer
// for Euclidean distance and a standard approximation for the others.
func KMeans(vecs [][]float64, k int, metric Metric, rng *xrand.Rand) *Result {
	if k <= 0 {
		panic("cluster: non-positive k")
	}
	if len(vecs) == 0 {
		return &Result{K: k, Metric: metric, Centroids: make([][]float64, 0)}
	}
	if k > len(vecs) {
		k = len(vecs)
	}
	dim := len(vecs[0])

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(vecs))
	centroids = append(centroids, clone(vecs[first]))
	dists := make([]float64, len(vecs))
	for len(centroids) < k {
		var total float64
		for i, v := range vecs {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := metric.Distance(v, c); dd < d {
					d = dd
				}
			}
			dists[i] = d * d
			total += dists[i]
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, clone(vecs[rng.Intn(len(vecs))]))
			continue
		}
		centroids = append(centroids, clone(vecs[rng.Choice(dists)]))
	}

	assign := make([]int, len(vecs))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for j, c := range centroids {
				if d := metric.Distance(v, c); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids as coordinate means.
		counts := make([]int, k)
		for j := range centroids {
			centroids[j] = make([]float64, dim)
		}
		for i, v := range vecs {
			counts[assign[i]]++
			for d2, x := range v {
				centroids[assign[i]][d2] += x
			}
		}
		for j := range centroids {
			if counts[j] == 0 {
				// Re-seed empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, v := range vecs {
					if d := metric.Distance(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[j] = clone(vecs[far])
				continue
			}
			for d2 := range centroids[j] {
				centroids[j][d2] /= float64(counts[j])
			}
		}
	}

	res := &Result{K: k, Metric: metric, Centroids: centroids, Assign: assign}
	for i, v := range vecs {
		res.Inertia += metric.Distance(v, centroids[assign[i]])
	}
	return res
}

func clone(v []float64) []float64 {
	w := make([]float64, len(v))
	copy(w, v)
	return w
}

// Silhouette returns the mean silhouette coefficient of the clustering in
// [-1, 1]; higher is better-separated. Computed exactly, O(n^2) — intended
// for the representative-dataset scale (hundreds to thousands of tiles).
func Silhouette(vecs [][]float64, r *Result) float64 {
	n := len(vecs)
	if n == 0 || r.K < 2 {
		return 0
	}
	sizes := r.Sizes()
	var total float64
	counted := 0
	for i, v := range vecs {
		own := r.Assign[i]
		if sizes[own] < 2 {
			continue
		}
		// Mean distance to each cluster.
		sums := make([]float64, r.K)
		for j, w := range vecs {
			if i == j {
				continue
			}
			sums[r.Assign[j]] += r.Metric.Distance(v, w)
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < r.K; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// SweepOption is one (k, metric) candidate with its fitted result and
// silhouette score.
type SweepOption struct {
	Result     *Result
	Silhouette float64
}

// Sweep fits k-means for every combination of the candidate cluster counts
// and metrics and returns all options plus the index of the best by
// silhouette (ties to lower k, matching the simplest adequate partition).
func Sweep(vecs [][]float64, ks []int, metrics []Metric, rng *xrand.Rand) (options []SweepOption, best int) {
	best = -1
	for _, m := range metrics {
		for _, k := range ks {
			r := KMeans(vecs, k, m, rng.Split())
			s := Silhouette(vecs, r)
			options = append(options, SweepOption{Result: r, Silhouette: s})
			if best == -1 || s > options[best].Silhouette+1e-12 {
				best = len(options) - 1
			}
		}
	}
	return options, best
}
