package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"kodan/internal/xrand"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(centers [][]float64, n int, spread float64, rng *xrand.Rand) ([][]float64, []int) {
	var vecs [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			v := make([]float64, len(c))
			for d := range v {
				v[d] = c[d] + rng.Norm(0, spread)
			}
			vecs = append(vecs, v)
			labels = append(labels, ci)
		}
	}
	return vecs, labels
}

func TestMetricsBasic(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if d := Euclidean.Distance(a, b); d != 5 {
		t.Errorf("euclidean = %v", d)
	}
	if d := Hamming.Distance([]float64{0.9, 0.1, 0.7}, []float64{0.8, 0.9, 0.2}); d != 2 {
		t.Errorf("hamming = %v", d)
	}
	// Cosine: parallel -> 0, orthogonal -> 1.
	if d := Cosine.Distance([]float64{1, 0}, []float64{5, 0}); math.Abs(d) > 1e-12 {
		t.Errorf("cosine parallel = %v", d)
	}
	if d := Cosine.Distance([]float64{1, 0}, []float64{0, 2}); math.Abs(d-1) > 1e-12 {
		t.Errorf("cosine orthogonal = %v", d)
	}
}

func TestMetricProperties(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by int8) bool {
		a := []float64{float64(ax) / 10, float64(ay) / 10}
		b := []float64{float64(bx) / 10, float64(by) / 10}
		for _, m := range []Metric{Euclidean, Cosine, Hamming} {
			if m.Distance(a, b) < 0 {
				return false
			}
			if math.Abs(m.Distance(a, b)-m.Distance(b, a)) > 1e-12 {
				return false
			}
			if m.Distance(a, a) > 1e-12 && m != Cosine {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := xrand.New(4)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	vecs, labels := blobs(centers, 60, 0.5, rng)
	r := KMeans(vecs, 3, Euclidean, rng)
	// Every true cluster must map to a single k-means cluster.
	for ci := 0; ci < 3; ci++ {
		counts := map[int]int{}
		for i, l := range labels {
			if l == ci {
				counts[r.Assign[i]]++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if float64(best)/60 < 0.98 {
			t.Fatalf("cluster %d split: %v", ci, counts)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vecs, _ := blobs([][]float64{{0, 0}, {5, 5}}, 50, 0.4, xrand.New(2))
	a := KMeans(vecs, 2, Euclidean, xrand.New(9))
	b := KMeans(vecs, 2, Euclidean, xrand.New(9))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("non-deterministic assignment")
		}
	}
}

func TestKMeansClassifyMatchesAssign(t *testing.T) {
	rng := xrand.New(6)
	vecs, _ := blobs([][]float64{{0, 0}, {8, 8}}, 40, 0.3, rng)
	r := KMeans(vecs, 2, Euclidean, rng)
	for i, v := range vecs {
		if got := r.Classify(v); got != r.Assign[i] {
			t.Fatalf("classify(%d) = %d, assign = %d", i, got, r.Assign[i])
		}
	}
}

func TestKMeansSizesSumToN(t *testing.T) {
	if err := quick.Check(func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		rng := xrand.New(seed)
		vecs, _ := blobs([][]float64{{0, 0}, {4, 4}, {8, 0}}, 20, 1.0, rng)
		r := KMeans(vecs, k, Euclidean, rng)
		total := 0
		for _, s := range r.Sizes() {
			total += s
		}
		return total == len(vecs)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansMoreClustersLowerInertia(t *testing.T) {
	rng := xrand.New(8)
	vecs, _ := blobs([][]float64{{0, 0}, {6, 6}, {12, 0}, {6, -6}}, 40, 1.2, rng)
	i2 := KMeans(vecs, 2, Euclidean, xrand.New(1)).Inertia
	i4 := KMeans(vecs, 4, Euclidean, xrand.New(1)).Inertia
	i8 := KMeans(vecs, 8, Euclidean, xrand.New(1)).Inertia
	if !(i4 < i2 && i8 < i4) {
		t.Fatalf("inertia not decreasing: k2=%.1f k4=%.1f k8=%.1f", i2, i4, i8)
	}
}

func TestSilhouettePrefersTrueK(t *testing.T) {
	rng := xrand.New(12)
	vecs, _ := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}}, 40, 0.5, rng)
	s3 := Silhouette(vecs, KMeans(vecs, 3, Euclidean, xrand.New(3)))
	s2 := Silhouette(vecs, KMeans(vecs, 2, Euclidean, xrand.New(3)))
	s6 := Silhouette(vecs, KMeans(vecs, 6, Euclidean, xrand.New(3)))
	if !(s3 > s2 && s3 > s6) {
		t.Fatalf("silhouette did not peak at true k: s2=%.3f s3=%.3f s6=%.3f", s2, s3, s6)
	}
}

func TestSweepPicksGoodOption(t *testing.T) {
	rng := xrand.New(20)
	vecs, _ := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 30, 0.3, rng)
	options, best := Sweep(vecs, []int{2, 3, 4, 5}, []Metric{Euclidean, Cosine}, rng)
	if len(options) != 8 {
		t.Fatalf("options = %d", len(options))
	}
	if best < 0 || best >= len(options) {
		t.Fatalf("best index %d", best)
	}
	if options[best].Result.K != 4 {
		t.Fatalf("best k = %d, want 4", options[best].Result.K)
	}
}

func TestStandardize(t *testing.T) {
	vecs := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	std := Standardize(vecs)
	for d := 0; d < 2; d++ {
		var mean, variance float64
		for _, v := range std {
			mean += v[d]
		}
		mean /= 3
		for _, v := range std {
			variance += (v[d] - mean) * (v[d] - mean)
		}
		variance /= 3
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Fatalf("dim %d: mean %.4f var %.4f", d, mean, variance)
		}
	}
	// Originals untouched.
	if vecs[0][0] != 1 {
		t.Fatal("input mutated")
	}
}

func TestPrincipalComponents(t *testing.T) {
	// Data varying almost entirely along (1,1)/sqrt(2).
	rng := xrand.New(33)
	var vecs [][]float64
	for i := 0; i < 400; i++ {
		tt := rng.Norm(0, 3)
		vecs = append(vecs, []float64{tt + rng.Norm(0, 0.1), tt + rng.Norm(0, 0.1)})
	}
	comps := PrincipalComponents(vecs, 2, rng)
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	want := 1 / math.Sqrt(2)
	c := comps[0]
	if math.Abs(math.Abs(c[0])-want) > 0.05 || math.Abs(math.Abs(c[1])-want) > 0.05 {
		t.Fatalf("first component %v, want ~(%.3f, %.3f)", c, want, want)
	}
	// Orthogonality.
	if d := math.Abs(c[0]*comps[1][0] + c[1]*comps[1][1]); d > 1e-6 {
		t.Fatalf("components not orthogonal: dot = %v", d)
	}
}

func TestProjectShape(t *testing.T) {
	vecs := [][]float64{{1, 2, 3}, {4, 5, 6}}
	comps := [][]float64{{1, 0, 0}, {0, 1, 0}}
	p := Project(vecs, comps)
	if len(p) != 2 || len(p[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(p), len(p[0]))
	}
	if p[0][0] != 1 || p[0][1] != 2 || p[1][0] != 4 {
		t.Fatalf("projection values %v", p)
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KMeans([][]float64{{1}}, 0, Euclidean, xrand.New(1))
}

func TestKMeansKLargerThanN(t *testing.T) {
	vecs := [][]float64{{0}, {1}}
	r := KMeans(vecs, 10, Euclidean, xrand.New(1))
	if r.K != 2 {
		t.Fatalf("k clamped to %d, want 2", r.K)
	}
}

func TestWhitenNormalizesVariance(t *testing.T) {
	// Strongly correlated, badly scaled data: whitening must produce
	// near-unit variance along every axis and near-zero cross-correlation.
	rng := xrand.New(44)
	var vecs [][]float64
	for i := 0; i < 500; i++ {
		tt := rng.Norm(0, 5)
		vecs = append(vecs, []float64{tt*100 + rng.Norm(0, 10), tt + rng.Norm(0, 0.1)})
	}
	w := Whiten(vecs, rng)
	dim := len(w[0])
	for d := 0; d < dim; d++ {
		var sum, sumSq float64
		for _, v := range w {
			sum += v[d]
			sumSq += v[d] * v[d]
		}
		mean := sum / float64(len(w))
		variance := sumSq/float64(len(w)) - mean*mean
		if math.Abs(variance-1) > 0.05 {
			t.Fatalf("axis %d variance = %.3f", d, variance)
		}
	}
	var cross float64
	for _, v := range w {
		cross += v[0] * v[1]
	}
	cross /= float64(len(w))
	if math.Abs(cross) > 0.1 {
		t.Fatalf("whitened axes correlated: %.3f", cross)
	}
}

func TestWhitenEmpty(t *testing.T) {
	if Whiten(nil, xrand.New(1)) != nil {
		t.Fatal("whiten of nil not nil")
	}
}
