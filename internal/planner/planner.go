// Package planner is Kodan's hybrid space-ground execution planner. The
// selection logic (internal/policy) decides *how* to transform data on
// board; this package decides *where* each context's work should run. Per
// context it chooses among three placements —
//
//   - Onboard: run the selection logic's on-board action (specialize,
//     merge, downlink, or discard) and downlink the processed output in
//     the frame's immediate link budget;
//   - DownlinkNow: transmit the tiles raw in the immediate budget, leaving
//     them unprocessed (archival value, discounted);
//   - Defer: buffer the tiles raw on board, downlink them against later
//     contact windows, and process them on the ground (full value at a
//     configurable ground-compute cost and a latency measured by
//     sim.DrainDeferred);
//
// plus Drop — by maximizing delivered value minus the combined cost of
// on-board compute energy (internal/power), link occupancy, and ground
// compute, subject to the frame deadline, the shared downlink capacity
// (internal/link + internal/station via the simulator), and the on-board
// buffer. The search is exhaustive over per-context placements (with a
// deterministic hill-climb fallback past the same bound the selection
// logic uses), so two structural monotonicity properties hold: more link
// capacity never lowers the chosen plan's utility (the feasible set only
// grows), and a higher ground-compute cost never increases the deferred
// fraction (ground cost enters the objective only through deferred work,
// and ties break toward less deferral).
//
// Fault awareness composes through the inputs: DeriveLink reads capacity
// and contact cadence from any sim.Result, so planning against a
// fault-injected run (stations out, links fading) re-plans automatically —
// shrinking capacity and stretching contact gaps until deferral, then raw
// downlink, stop being affordable.
package planner

import (
	"context"
	"fmt"
	"math"
	"time"

	"kodan/internal/policy"
	"kodan/internal/power"
	"kodan/internal/sim"
	"kodan/internal/telemetry/events"
	"kodan/internal/tiling"
)

// Disposition is a per-context placement decision.
type Disposition int

// Placements, in enumeration order (ties prefer earlier).
const (
	// Onboard executes the selection logic's on-board action.
	Onboard Disposition = iota
	// DownlinkNow transmits raw tiles in the frame's immediate budget.
	DownlinkNow
	// Defer buffers raw tiles for later contact windows and ground compute.
	Defer
	// Drop discards the context entirely.
	Drop
	numDispositions
)

// String implements fmt.Stringer.
func (d Disposition) String() string {
	switch d {
	case Onboard:
		return "onboard"
	case DownlinkNow:
		return "downlink-now"
	case Defer:
		return "defer"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("disposition(%d)", int(d))
	}
}

// action maps a placement onto the policy action set.
func (d Disposition) action(base policy.Action) policy.Action {
	switch d {
	case Onboard:
		return base
	case DownlinkNow:
		return policy.Downlink
	case Defer:
		return policy.Deferred
	default:
		return policy.Discard
	}
}

// Costs prices the placement options in one currency. Frame-fraction
// units: a "frame" is one captured frame's bits.
type Costs struct {
	// ValuePerFrame is the reward per high-value frame-fraction delivered
	// as finished (processed) product.
	ValuePerFrame float64
	// RawDiscount multiplies the value of raw, never-processed delivery
	// (DownlinkNow): the user still has to find the valuable pixels.
	// In [0, 1]; 1 treats raw archives as finished product.
	RawDiscount float64
	// LinkPerFrame is the cost per frame-fraction of downlink occupancy,
	// immediate or deferred.
	LinkPerFrame float64
	// GroundPerFrame is the cost per frame-fraction processed on the
	// ground — the sweep variable of experiments.HybridPlanSweep.
	GroundPerFrame float64
	// EnergyPerKJ is the cost per kilojoule of on-board compute energy.
	EnergyPerKJ float64
}

// DefaultCosts returns the reference pricing used by the experiments and
// commands: finished value 1 per high-value frame, raw archives at 60%,
// modest link and energy prices, and a ground cost meant to be overridden
// by the sweep.
func DefaultCosts() Costs {
	return Costs{
		ValuePerFrame:  1,
		RawDiscount:    0.6,
		LinkPerFrame:   0.15,
		GroundPerFrame: 0.5,
		EnergyPerKJ:    0.2,
	}
}

// validate rejects unpriceable cost vectors.
func (c Costs) validate() error {
	if c.ValuePerFrame < 0 || c.LinkPerFrame < 0 || c.GroundPerFrame < 0 || c.EnergyPerKJ < 0 {
		return fmt.Errorf("planner: negative cost in %+v", c)
	}
	if c.RawDiscount < 0 || c.RawDiscount > 1 || math.IsNaN(c.RawDiscount) {
		return fmt.Errorf("planner: raw discount %v outside [0,1]", c.RawDiscount)
	}
	return nil
}

// Env is the planner's view of the deployment: the selection-logic
// environment (hardware, deadline, immediate capacity), the electrical
// bus, the cost vector, and the store-and-forward geometry.
type Env struct {
	// Policy is the selection-logic environment. CapacityFrac is the
	// shared per-observed-frame downlink pool that immediate and deferred
	// traffic both draw from.
	Policy policy.Env
	// Bus is the satellite electrical power system (typed-error validated
	// via internal/power).
	Bus power.Bus
	// Costs prices the placements.
	Costs Costs
	// BufferFrames is the on-board deferral buffer in frame-size units.
	BufferFrames float64
	// FramesBetweenContacts is the mean number of frames captured between
	// successive contacts; it converts a per-frame deferred fraction into
	// the peak backlog the buffer must hold. Values below 1 are treated
	// as 1 (a contact every frame).
	FramesBetweenContacts float64
}

// Validate rejects environments the planner cannot price.
func (e Env) Validate() error {
	if err := e.Bus.Validate(); err != nil {
		return err
	}
	if e.Policy.Deadline <= 0 {
		return fmt.Errorf("%w: %v", power.ErrBadDeadline, e.Policy.Deadline)
	}
	if e.Policy.CapacityFrac < 0 || math.IsNaN(e.Policy.CapacityFrac) {
		return fmt.Errorf("planner: negative capacity %v", e.Policy.CapacityFrac)
	}
	if e.BufferFrames < 0 || math.IsNaN(e.BufferFrames) {
		return fmt.Errorf("planner: negative buffer %v frames", e.BufferFrames)
	}
	return e.Costs.validate()
}

// contactGap returns the effective frames-between-contacts (at least 1).
func (e Env) contactGap() float64 {
	if e.FramesBetweenContacts < 1 {
		return 1
	}
	return e.FramesBetweenContacts
}

// Eval is the per-observed-frame accounting of a plan. Bit quantities are
// fractions of one frame's bits, as in policy.Evaluate.
type Eval struct {
	// Utility is the maximized objective: value minus link, ground, and
	// energy costs.
	Utility float64
	// ValueFrames is the delivered high-value frame-fraction (finished
	// plus raw, undiscounted).
	ValueFrames float64
	// NowBits is the frame-fraction downlinked in the immediate budget
	// (on-board output plus raw-now tiles).
	NowBits float64
	// DeferBits is the frame-fraction buffered for later windows.
	DeferBits float64
	// OnboardFrac, DownlinkFrac, DeferFrac, and DropFrac partition the
	// tile fraction by placement.
	OnboardFrac  float64
	DownlinkFrac float64
	DeferFrac    float64
	DropFrac     float64
	// FrameTime is the on-board processing time per frame (context engine
	// plus the models the Onboard placements run).
	FrameTime time.Duration
	// EnergyPerFrameJ is the on-board compute energy per frame.
	EnergyPerFrameJ float64
	// GroundFrames is the frame-fraction processed on the ground.
	GroundFrames float64
	// DVD is the delivered high-value bits per downlinked bit.
	DVD float64
}

// Plan is a hybrid execution plan for one deployment.
type Plan struct {
	// Tiling is the frame tiling the plan operates at.
	Tiling tiling.Tiling
	// Base is the selection logic whose on-board actions the Onboard
	// placements execute.
	Base policy.Selection
	// Dispositions is the per-context placement choice.
	Dispositions []Disposition
	// Actions maps the plan onto the policy action set (Onboard keeps the
	// base action, DownlinkNow becomes Downlink, Defer becomes Deferred,
	// Drop becomes Discard).
	Actions []policy.Action
	// Eval is the plan's accounting.
	Eval Eval
}

// option is one context's priced placement candidate.
type option struct {
	modelMs   float64 // on-board model milliseconds per frame
	nowBits   float64
	deferBits float64
	finished  float64 // processed high-value frame-fraction delivered
	raw       float64 // raw high-value frame-fraction delivered
	ground    float64 // frame-fraction processed on the ground
}

// contextOptions prices the placements of every context.
func contextOptions(prof policy.TilingProfile, base policy.Selection, env Env) [][]option {
	tiles := float64(prof.Tiling.Tiles())
	perTileMs := env.Policy.App.PerTileMs[env.Policy.Target]
	opts := make([][]option, len(prof.Contexts))
	for c, cp := range prof.Contexts {
		f, h := cp.TileFrac, cp.HighValueFrac
		var ob option
		switch a := base.Actions[c]; a {
		case policy.Downlink:
			ob = option{nowBits: f, raw: f * h}
		case policy.Specialized, policy.Merged, policy.Generic:
			conf := cp.Special
			switch a {
			case policy.Merged:
				conf = cp.Merged
			case policy.Generic:
				conf = cp.Generic
			}
			if total := float64(conf.Total()); total > 0 {
				ob = option{
					modelMs:  tiles * f * perTileMs,
					nowBits:  f * conf.PositiveRate(),
					finished: f * float64(conf.TP) / total,
				}
			}
		default: // Discard (and Deferred, which never appears in a base)
		}
		opts[c] = make([]option, numDispositions)
		opts[c][Onboard] = ob
		opts[c][DownlinkNow] = option{nowBits: f, raw: f * h}
		opts[c][Defer] = option{deferBits: f, finished: f * h, ground: f}
		opts[c][Drop] = option{}
	}
	return opts
}

// feasEps absorbs float noise in the constraint checks.
const feasEps = 1e-9

// evaluate prices one full assignment; ok reports feasibility. An
// assignment with no on-board models is exempt from the deadline check
// (mirroring the selection logic's always-admissible full elision), so
// the all-Drop plan is a universal fallback.
func evaluate(dispositions []Disposition, opts [][]option, prof policy.TilingProfile, env Env) (Eval, bool) {
	var ev Eval
	engineMs := float64(prof.Tiling.Tiles()) * env.Policy.Target.ContextEngineMsPerTile()
	ms := engineMs
	var finished, raw float64
	hasModels := false
	for c, d := range dispositions {
		o := opts[c][d]
		ms += o.modelMs
		if o.modelMs > 0 {
			hasModels = true
		}
		ev.NowBits += o.nowBits
		ev.DeferBits += o.deferBits
		ev.GroundFrames += o.ground
		finished += o.finished
		raw += o.raw
		f := prof.Contexts[c].TileFrac
		switch d {
		case Onboard:
			ev.OnboardFrac += f
		case DownlinkNow:
			ev.DownlinkFrac += f
		case Defer:
			ev.DeferFrac += f
		default:
			ev.DropFrac += f
		}
	}
	ev.FrameTime = time.Duration(ms * float64(time.Millisecond))

	// Constraints: frame deadline (and optional duty cap) on the on-board
	// work, the shared link pool on all downlinked bits, and the buffer on
	// the peak deferred backlog between contacts.
	deadline := env.Policy.Deadline
	if hasModels {
		if ev.FrameTime > deadline {
			return ev, false
		}
		if dutyCap := env.Policy.MaxDutyCycle; dutyCap > 0 &&
			float64(ev.FrameTime)/float64(deadline) > dutyCap+feasEps {
			return ev, false
		}
	}
	if ev.NowBits+ev.DeferBits > env.Policy.CapacityFrac+feasEps {
		return ev, false
	}
	if ev.DeferBits*env.contactGap() > env.BufferFrames+feasEps {
		return ev, false
	}

	// EnergyPerFrame clamps at the deadline, so even the engine-overrun
	// fallback prices finitely.
	energy, err := power.EnergyPerFrame(env.Policy.Target, ev.FrameTime, deadline)
	if err != nil {
		return ev, false
	}
	ev.EnergyPerFrameJ = energy

	ev.ValueFrames = finished + raw
	cost := env.Costs
	ev.Utility = cost.ValuePerFrame*(finished+cost.RawDiscount*raw) -
		cost.LinkPerFrame*(ev.NowBits+ev.DeferBits) -
		cost.GroundPerFrame*ev.GroundFrames -
		cost.EnergyPerKJ*energy/1000
	if link := ev.NowBits + ev.DeferBits; link > 0 {
		ev.DVD = ev.ValueFrames / link
	}
	return ev, true
}

// betterEval orders plan evaluations: utility first, then less deferral
// (the tie direction the ground-cost monotonicity property needs), then
// less energy, then fewer immediate bits. Remaining ties keep the earlier
// assignment in enumeration order, so the search is deterministic.
func betterEval(a, b Eval) bool {
	const eps = 1e-12
	if a.Utility > b.Utility+eps {
		return true
	}
	if a.Utility < b.Utility-eps {
		return false
	}
	if a.DeferBits < b.DeferBits-eps {
		return true
	}
	if a.DeferBits > b.DeferBits+eps {
		return false
	}
	if a.EnergyPerFrameJ < b.EnergyPerFrameJ-eps {
		return true
	}
	if a.EnergyPerFrameJ > b.EnergyPerFrameJ+eps {
		return false
	}
	return a.NowBits < b.NowBits-eps
}

// maxExhaustive bounds the exhaustive placement sweep (4^8, matching the
// selection-logic optimizer).
const maxExhaustive = 65536

// Decide searches the per-context placements for one tiling profile and
// base selection with background context. See DecideCtx.
func Decide(prof policy.TilingProfile, base policy.Selection, env Env) (Plan, error) {
	return DecideCtx(context.Background(), prof, base, env)
}

// DecideCtx searches the per-context placements for one tiling profile
// and base selection. The base supplies each context's on-board action;
// the returned plan maximizes utility over all feasible placements,
// falling back to all-Drop when nothing else fits the constraints.
//
// When ctx carries a mission event journal, the chosen plan is journaled
// as one planner_disposition event per context ("C<i>-><placement>",
// Value = the context's tile fraction). Planning happens before mission
// time, so the events carry SimNs 0; journaling never influences the
// search.
func DecideCtx(ctx context.Context, prof policy.TilingProfile, base policy.Selection, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	if len(base.Actions) != len(prof.Contexts) {
		return Plan{}, fmt.Errorf("planner: %d base actions for %d contexts",
			len(base.Actions), len(prof.Contexts))
	}
	env.Policy.UseEngine = true
	opts := contextOptions(prof, base, env)
	k := len(prof.Contexts)

	combos := 1
	exhaustive := true
	for i := 0; i < k; i++ {
		combos *= int(numDispositions)
		if combos > maxExhaustive {
			exhaustive = false
			break
		}
	}
	var best []Disposition
	var bestEv Eval
	found := false
	if exhaustive {
		cur := make([]Disposition, k)
		for code := 0; code < combos; code++ {
			c := code
			for i := 0; i < k; i++ {
				cur[i] = Disposition(c % int(numDispositions))
				c /= int(numDispositions)
			}
			ev, ok := evaluate(cur, opts, prof, env)
			if !ok {
				continue
			}
			if !found || betterEval(ev, bestEv) {
				best = append(best[:0], cur...)
				bestEv = ev
				found = true
			}
		}
	} else {
		best, bestEv, found = hillClimb(opts, prof, env)
	}
	if !found {
		best = make([]Disposition, k)
		for i := range best {
			best[i] = Drop
		}
		bestEv, _ = evaluate(best, opts, prof, env)
	}

	actions := make([]policy.Action, k)
	for c, d := range best {
		actions[c] = d.action(base.Actions[c])
	}
	if j := events.JournalFrom(ctx); j.Active() {
		for c, d := range best {
			j.Emit(events.Event{
				Type: events.PlannerDisposition, Sat: -1,
				Detail: fmt.Sprintf("C%d->%s", c, d),
				Value:  prof.Contexts[c].TileFrac,
			})
		}
	}
	return Plan{
		Tiling:       prof.Tiling,
		Base:         base,
		Dispositions: best,
		Actions:      actions,
		Eval:         bestEv,
	}, nil
}

// hillClimb is the deterministic fallback past maxExhaustive: start from
// all-Drop (always feasible) and greedily improve one context at a time.
func hillClimb(opts [][]option, prof policy.TilingProfile, env Env) ([]Disposition, Eval, bool) {
	k := len(prof.Contexts)
	cur := make([]Disposition, k)
	for i := range cur {
		cur[i] = Drop
	}
	ev, ok := evaluate(cur, opts, prof, env)
	if !ok {
		return cur, ev, false
	}
	for improved := true; improved; {
		improved = false
		for i := 0; i < k; i++ {
			orig := cur[i]
			for d := Disposition(0); d < numDispositions; d++ {
				if d == orig {
					continue
				}
				cur[i] = d
				cand, okc := evaluate(cur, opts, prof, env)
				if okc && betterEval(cand, ev) {
					ev = cand
					improved = true
					orig = d
				} else {
					cur[i] = orig
				}
			}
		}
	}
	return cur, ev, true
}

// Build generates the full hybrid plan for a transformed application with
// background context. See BuildCtx.
func Build(profiles []policy.TilingProfile, env Env) (Plan, error) {
	return BuildCtx(context.Background(), profiles, env)
}

// BuildCtx generates the full hybrid plan for a transformed application:
// the selection-logic optimizer fixes the tiling and on-board actions,
// then DecideCtx places each context (journaling the chosen plan when ctx
// carries a mission event journal).
func BuildCtx(ctx context.Context, profiles []policy.TilingProfile, env Env) (Plan, error) {
	if err := env.Validate(); err != nil {
		return Plan{}, err
	}
	if len(profiles) == 0 {
		return Plan{}, fmt.Errorf("planner: no tiling profiles")
	}
	base, _ := policy.Optimize(profiles, env.Policy)
	for _, prof := range profiles {
		if prof.Tiling == base.Tiling {
			return DecideCtx(ctx, prof, base, env)
		}
	}
	return Plan{}, fmt.Errorf("planner: no profile for tiling %v", base.Tiling)
}

// LinkInputs is the planner's link-side environment derived from a
// simulated constellation day.
type LinkInputs struct {
	// CapacityFrac is the downlink capacity per observed frame (fade-
	// derated on fault-injected runs).
	CapacityFrac float64
	// FramesBetweenContacts is the mean frames captured per contact grant.
	FramesBetweenContacts float64
	// Contacts is the number of contact grants in the run.
	Contacts int
}

// DeriveLink reads the planner's link inputs from a sim result. Because
// fault injection already shapes the result — station outages remove
// grants, link fades derate DownlinkBits — planning against a faulted
// run is how the planner re-plans under degraded modes: capacity shrinks
// and contact gaps stretch, and the placement search responds.
func DeriveLink(res *sim.Result) LinkInputs {
	observed := float64(res.FramesObserved())
	li := LinkInputs{Contacts: len(res.Grants)}
	if observed <= 0 {
		return li
	}
	li.CapacityFrac = res.FrameCapacity() / observed
	if li.Contacts > 0 {
		li.FramesBetweenContacts = observed / float64(li.Contacts)
	} else {
		// No contacts at all: every deferred frame waits out the span.
		li.FramesBetweenContacts = observed
	}
	if li.FramesBetweenContacts < 1 {
		li.FramesBetweenContacts = 1
	}
	return li
}

// WithLink returns a copy of the environment with the link-side inputs
// replaced by a sim-derived profile.
func (e Env) WithLink(li LinkInputs) Env {
	e.Policy.CapacityFrac = li.CapacityFrac
	e.FramesBetweenContacts = li.FramesBetweenContacts
	return e
}
