package planner

import (
	"sort"
	"testing"

	"kodan/internal/policy"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// randProfile draws a random tiling profile with 2-5 contexts.
func randProfile(rng *xrand.Rand) policy.TilingProfile {
	k := 2 + int(rng.Float64()*4)
	prof := policy.TilingProfile{Tiling: tiling.Tiling{PerSide: 3}}
	fracs := make([]float64, k)
	var sum float64
	for i := range fracs {
		fracs[i] = 0.05 + rng.Float64()
		sum += fracs[i]
	}
	for i := 0; i < k; i++ {
		h := rng.Float64()
		prof.Contexts = append(prof.Contexts, policy.ContextProfile{
			TileFrac:      fracs[i] / sum,
			HighValueFrac: h,
			Special:       conf(0.7+0.3*rng.Float64(), 0.3*rng.Float64(), h),
			Merged:        conf(0.6+0.3*rng.Float64(), 0.4*rng.Float64(), h),
			Generic:       conf(0.5+0.4*rng.Float64(), 0.5*rng.Float64(), h),
		})
	}
	return prof
}

// randEnv draws a random but valid planner environment.
func randEnv(rng *xrand.Rand) Env {
	env := testEnv()
	env.Policy.CapacityFrac = rng.Range(0, 1.5)
	env.Costs = Costs{
		ValuePerFrame:  rng.Range(0.5, 2),
		RawDiscount:    rng.Float64(),
		LinkPerFrame:   rng.Range(0, 0.5),
		GroundPerFrame: rng.Range(0, 2),
		EnergyPerKJ:    rng.Range(0, 1),
	}
	env.BufferFrames = rng.Range(0, 128)
	env.FramesBetweenContacts = rng.Range(1, 50)
	return env
}

// randBase draws a random on-board base selection.
func randBase(rng *xrand.Rand, prof policy.TilingProfile) policy.Selection {
	pool := []policy.Action{policy.Discard, policy.Downlink, policy.Specialized, policy.Merged}
	sel := policy.Selection{Tiling: prof.Tiling}
	for range prof.Contexts {
		sel.Actions = append(sel.Actions, pool[int(rng.Float64()*float64(len(pool)))%len(pool)])
	}
	return sel
}

func TestPropertyMoreCapacityNeverLowersUtility(t *testing.T) {
	// The planner's first monotonicity guarantee: with everything else
	// fixed, growing the link pool only enlarges the feasible set, so the
	// chosen plan's utility must be nondecreasing in capacity.
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		prof := randProfile(rng)
		env := randEnv(rng)
		base := randBase(rng, prof)
		caps := make([]float64, 6)
		for i := range caps {
			caps[i] = rng.Range(0, 2.5)
		}
		sort.Float64s(caps)
		prev := 0.0
		for i, c := range caps {
			env.Policy.CapacityFrac = c
			plan, err := Decide(prof, base, env)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if i > 0 && plan.Eval.Utility < prev-1e-9 {
				t.Fatalf("trial %d: utility fell from %v to %v when capacity grew to %v",
					trial, prev, plan.Eval.Utility, c)
			}
			prev = plan.Eval.Utility
		}
	}
}

func TestPropertyHigherGroundCostNeverIncreasesDeferral(t *testing.T) {
	// The second guarantee: ground cost enters the objective only through
	// deferred work (and ties break toward less deferral), so raising it
	// can never increase the deferred fraction of the chosen plan.
	rng := xrand.New(11)
	for trial := 0; trial < 40; trial++ {
		prof := randProfile(rng)
		env := randEnv(rng)
		base := randBase(rng, prof)
		costs := make([]float64, 6)
		for i := range costs {
			costs[i] = rng.Range(0, 3)
		}
		sort.Float64s(costs)
		prev := 0.0
		for i, g := range costs {
			env.Costs.GroundPerFrame = g
			plan, err := Decide(prof, base, env)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if i > 0 && plan.Eval.DeferFrac > prev+1e-9 {
				t.Fatalf("trial %d: deferred fraction rose from %v to %v when ground cost grew to %v",
					trial, prev, plan.Eval.DeferFrac, g)
			}
			prev = plan.Eval.DeferFrac
		}
	}
}
