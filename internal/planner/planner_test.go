package planner

import (
	"errors"
	"math"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/link"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/power"
	"kodan/internal/sense"
	"kodan/internal/sim"
	"kodan/internal/tiling"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

// conf builds a confusion matrix from rates over a nominal population.
func conf(tpr, fpr, baseRate float64) nn.Confusion {
	const n = 10000
	pos := int(baseRate * n)
	neg := n - pos
	tp := int(tpr * float64(pos))
	fp := int(fpr * float64(neg))
	return nn.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

// testProfile mirrors the policy package's 3-context fixture: near-pure
// high-value, near-pure low-value, and mixed.
func testProfile() policy.TilingProfile {
	return policy.TilingProfile{
		Tiling: tiling.Tiling{PerSide: 3},
		Contexts: []policy.ContextProfile{
			{TileFrac: 0.30, HighValueFrac: 0.95, Generic: conf(0.90, 0.30, 0.95), Special: conf(0.95, 0.20, 0.95)},
			{TileFrac: 0.35, HighValueFrac: 0.05, Generic: conf(0.80, 0.15, 0.05), Special: conf(0.90, 0.05, 0.05)},
			{TileFrac: 0.35, HighValueFrac: 0.50, Generic: conf(0.85, 0.25, 0.50), Special: conf(0.92, 0.10, 0.50)},
		},
	}
}

func testEnv() Env {
	return Env{
		Policy: policy.Env{
			App:          app.App(4),
			Target:       hw.Orin15W,
			Deadline:     24 * time.Second,
			CapacityFrac: 0.21,
			UseEngine:    true,
		},
		Bus:                   power.ThreeUBus(),
		Costs:                 DefaultCosts(),
		BufferFrames:          64,
		FramesBetweenContacts: 10,
	}
}

// baseFor runs the selection-logic optimizer for the fixture.
func baseFor(prof policy.TilingProfile, env Env) policy.Selection {
	sel, _ := policy.Optimize([]policy.TilingProfile{prof}, env.Policy)
	return sel
}

func TestDecideDeterministic(t *testing.T) {
	prof := testProfile()
	env := testEnv()
	base := baseFor(prof, env)
	a, err := Decide(prof, base, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decide(prof, base, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dispositions) != len(prof.Contexts) {
		t.Fatalf("dispositions = %v", a.Dispositions)
	}
	for i := range a.Dispositions {
		if a.Dispositions[i] != b.Dispositions[i] {
			t.Fatalf("nondeterministic: %v vs %v", a.Dispositions, b.Dispositions)
		}
	}
	if a.Eval != b.Eval {
		t.Fatalf("nondeterministic eval: %+v vs %+v", a.Eval, b.Eval)
	}
}

func TestCheapGroundPullsWorkToDefer(t *testing.T) {
	// With free ground compute and ample capacity, finishing frames on
	// the ground (full value, no FN loss, no on-board energy) dominates
	// both on-board processing and discounted raw downlink for the
	// high-value contexts.
	prof := testProfile()
	env := testEnv()
	env.Policy.CapacityFrac = 2
	env.Costs.GroundPerFrame = 0
	plan, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eval.DeferFrac <= 0 {
		t.Fatalf("no deferral under free ground compute: %+v dispositions %v",
			plan.Eval, plan.Dispositions)
	}
	// Expensive ground compute must push deferral away entirely.
	env.Costs.GroundPerFrame = 100
	plan2, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Eval.DeferFrac != 0 {
		t.Fatalf("deferral survived 100x ground cost: %v", plan2.Dispositions)
	}
	if plan2.Eval.Utility > plan.Eval.Utility+1e-9 {
		t.Fatal("utility rose with ground cost")
	}
}

func TestTightLinkKeepsProcessingOnboard(t *testing.T) {
	// When the link pool is far below a raw frame, only compressed
	// on-board output (or dropping) fits: the plan must not place raw
	// bits it cannot downlink.
	prof := testProfile()
	env := testEnv()
	env.Policy.CapacityFrac = 0.1
	plan, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Eval.NowBits + plan.Eval.DeferBits; got > env.Policy.CapacityFrac+1e-9 {
		t.Fatalf("planned %v frame-fractions into a %v pool", got, env.Policy.CapacityFrac)
	}
	if plan.Eval.DownlinkFrac+plan.Eval.DeferFrac > 0.2 {
		t.Fatalf("raw placements under a starved link: %v", plan.Dispositions)
	}
}

func TestBufferConstraintBlocksDeferral(t *testing.T) {
	// Same pricing as the defer-friendly case, but contacts so sparse the
	// buffer cannot hold a single context's backlog between them.
	prof := testProfile()
	env := testEnv()
	env.Policy.CapacityFrac = 2
	env.Costs.GroundPerFrame = 0
	env.BufferFrames = 1
	env.FramesBetweenContacts = 1000
	plan, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eval.DeferFrac != 0 {
		t.Fatalf("deferral despite a full buffer: %v", plan.Dispositions)
	}
}

func TestZeroCapacityFallsBackToDropOrDiscard(t *testing.T) {
	prof := testProfile()
	env := testEnv()
	env.Policy.CapacityFrac = 0
	plan, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eval.NowBits != 0 || plan.Eval.DeferBits != 0 {
		t.Fatalf("bits planned into a zero-capacity link: %+v", plan.Eval)
	}
}

func TestActionsMapOntoPolicySet(t *testing.T) {
	prof := testProfile()
	env := testEnv()
	base := baseFor(prof, env)
	plan, err := Decide(prof, base, env)
	if err != nil {
		t.Fatal(err)
	}
	for c, d := range plan.Dispositions {
		want := policy.Discard
		switch d {
		case Onboard:
			want = base.Actions[c]
		case DownlinkNow:
			want = policy.Downlink
		case Defer:
			want = policy.Deferred
		}
		if plan.Actions[c] != want {
			t.Fatalf("context %d: disposition %v mapped to %v", c, d, plan.Actions[c])
		}
	}
}

func TestBuildMatchesDecideOnOptimizerChoice(t *testing.T) {
	profiles := []policy.TilingProfile{testProfile()}
	env := testEnv()
	plan, err := Build(profiles, env)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := policy.Optimize(profiles, env.Policy)
	want, err := Decide(profiles[0], base, env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Eval != want.Eval {
		t.Fatalf("Build eval %+v != Decide eval %+v", plan.Eval, want.Eval)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	env := testEnv()
	env.Bus = power.Bus{}
	if _, err := Decide(testProfile(), policy.Selection{}, env); !errors.Is(err, power.ErrInvalidBus) {
		t.Fatalf("bad bus: %v", err)
	}
	env = testEnv()
	env.Policy.Deadline = 0
	if _, err := Decide(testProfile(), policy.Selection{}, env); !errors.Is(err, power.ErrBadDeadline) {
		t.Fatalf("zero deadline: %v", err)
	}
	env = testEnv()
	env.Costs.RawDiscount = 1.5
	if _, err := Build([]policy.TilingProfile{testProfile()}, env); err == nil {
		t.Fatal("bad raw discount accepted")
	}
	env = testEnv()
	if _, err := Decide(testProfile(), policy.Selection{}, env); err == nil {
		t.Fatal("action/context mismatch accepted")
	}
	if _, err := Build(nil, testEnv()); err == nil {
		t.Fatal("empty profiles accepted")
	}
}

func TestDispositionStrings(t *testing.T) {
	for d, want := range map[Disposition]string{
		Onboard: "onboard", DownlinkNow: "downlink-now", Defer: "defer", Drop: "drop",
	} {
		if d.String() != want {
			t.Errorf("%d -> %q", d, d.String())
		}
	}
	if got := Disposition(99).String(); got != "disposition(99)" {
		t.Errorf("unknown disposition -> %q", got)
	}
}

func TestDeriveLinkFromSyntheticResult(t *testing.T) {
	res := &sim.Result{Config: sim.Config{
		Epoch: epoch,
		Span:  time.Hour,
		Radio: link.Radio{RateBps: 100},
	}}
	res.Captures = [][]sense.Capture{make([]sense.Capture, 40)}
	res.Grants = []link.Grant{
		{Sat: 0, Start: epoch, Dur: 10 * time.Second},
		{Sat: 0, Start: epoch.Add(time.Minute), Dur: 10 * time.Second},
	}
	res.Served = []time.Duration{20 * time.Second}
	res.Config.Camera = sense.Landsat8MS()
	li := DeriveLink(res)
	if li.Contacts != 2 {
		t.Fatalf("contacts = %d", li.Contacts)
	}
	if li.FramesBetweenContacts != 20 {
		t.Fatalf("frames between contacts = %v", li.FramesBetweenContacts)
	}
	wantCap := 100.0 * 20 / res.Config.Camera.FrameBits() / 40
	if math.Abs(li.CapacityFrac-wantCap) > 1e-12 {
		t.Fatalf("capacity = %v, want %v", li.CapacityFrac, wantCap)
	}

	// No grants: deferred work waits out the span.
	res.Grants = nil
	res.Served = []time.Duration{0}
	li = DeriveLink(res)
	if li.Contacts != 0 || li.FramesBetweenContacts != 40 {
		t.Fatalf("no-contact inputs: %+v", li)
	}

	env := testEnv().WithLink(li)
	if env.Policy.CapacityFrac != li.CapacityFrac || env.FramesBetweenContacts != 40 {
		t.Fatalf("WithLink: %+v", env)
	}
}

func TestStationOutageChangesPlan(t *testing.T) {
	// The fault-aware path: plan against a fault-free day, then against
	// the same day with every station out. Capacity collapses to zero, so
	// the planner must abandon every downlink placement it chose before.
	prof := testProfile()
	env := testEnv()
	env.Policy.CapacityFrac = 2
	env.Costs.GroundPerFrame = 0
	basePlan, err := Decide(prof, baseFor(prof, env), env)
	if err != nil {
		t.Fatal(err)
	}
	if basePlan.Eval.NowBits+basePlan.Eval.DeferBits == 0 {
		t.Fatal("fault-free plan downlinks nothing")
	}
	outage := env.WithLink(LinkInputs{CapacityFrac: 0, FramesBetweenContacts: 1000})
	outPlan, err := Decide(prof, baseFor(prof, outage), outage)
	if err != nil {
		t.Fatal(err)
	}
	if outPlan.Eval.NowBits+outPlan.Eval.DeferBits != 0 {
		t.Fatalf("outage plan still downlinks: %+v", outPlan.Eval)
	}
	same := true
	for i := range basePlan.Dispositions {
		if basePlan.Dispositions[i] != outPlan.Dispositions[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("plan unchanged under total outage: %v", basePlan.Dispositions)
	}
}

func TestHillClimbFallbackOnManyContexts(t *testing.T) {
	// 9 contexts exceed the exhaustive bound (4^9 > 65536): the climb path
	// must still return a feasible, deterministic plan.
	prof := policy.TilingProfile{Tiling: tiling.Tiling{PerSide: 3}}
	var actions []policy.Action
	for i := 0; i < 9; i++ {
		h := 0.1 * float64(i)
		prof.Contexts = append(prof.Contexts, policy.ContextProfile{
			TileFrac:      1.0 / 9,
			HighValueFrac: h,
			Special:       conf(0.9, 0.1, h),
			Generic:       conf(0.85, 0.2, h),
		})
		actions = append(actions, policy.Specialized)
	}
	env := testEnv()
	base := policy.Selection{Tiling: prof.Tiling, Actions: actions}
	a, err := Decide(prof, base, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decide(prof, base, env)
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval != b.Eval {
		t.Fatalf("hill climb nondeterministic: %+v vs %+v", a.Eval, b.Eval)
	}
	if got := a.Eval.NowBits + a.Eval.DeferBits; got > env.Policy.CapacityFrac+1e-9 {
		t.Fatalf("infeasible climb result: %v bits", got)
	}
}
