// Package mission runs time-resolved, multi-day deployment simulations: a
// chronological event loop over frame captures and ground-station contact
// grants, with a busy/idle processor, a bounded onboard buffer, and a FIFO
// downlink queue drained at the radio rate during contacts. It is the
// dynamic counterpart of internal/policy's steady-state estimator — the
// two must agree in the long run (a property the tests check), but the
// mission simulator additionally exposes transients the analytic model
// cannot: queue growth between contacts, buffer overflow drops, and the
// burstiness of contact-limited downlink.
//
// Frames are synthesized statistically rather than rendered: each frame
// draws its tiles' contexts from the measured context distribution (with
// frame-level coherence, since real frames are geographically coherent),
// and each tile's downlink outcome follows the measured per-context
// confusion rates. This is the same two-level methodology as the paper's
// system simulation (measure once, simulate cheaply).
package mission

import (
	"fmt"
	"sort"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/link"
	"kodan/internal/orbit"
	"kodan/internal/policy"
	"kodan/internal/sense"
	"kodan/internal/station"
	"kodan/internal/value"
	"kodan/internal/wrs"
	"kodan/internal/xrand"
)

// Config describes a mission run.
type Config struct {
	// Epoch is the mission start.
	Epoch time.Time
	// Days is the mission duration in days.
	Days int
	// Orbit, Grid, Camera, Stations, and Radio describe the platform;
	// zero values default to the Landsat 8 reference mission.
	Orbit    orbit.Elements
	Grid     wrs.Grid
	Camera   sense.Camera
	Stations []station.Station
	Radio    link.Radio

	// Arch is the deployed application (for per-tile latency).
	Arch app.Architecture
	// Target is the hardware platform.
	Target hw.Target
	// Profile is the measured per-context profile at the deployed tiling.
	Profile policy.TilingProfile
	// Selection is the deployed selection logic. Its tiling must match
	// Profile's.
	Selection policy.Selection
	// UseEngine accounts the context-engine cost per tile (Kodan runtimes
	// pay it; the direct-deploy baseline does not).
	UseEngine bool
	// FillIdle queues unprocessed frames raw instead of dropping them.
	FillIdle bool

	// BufferBits bounds the onboard downlink queue; 0 means unlimited.
	// When the buffer is full, raw (unassessed) data is dropped first,
	// oldest first; then the chunks with the lowest system-estimated
	// value density (raw filler before filtered products).
	BufferBits float64
	// Coherence is the probability that a frame's tiles all share one
	// context (frames are geographically coherent); the rest draw tiles
	// independently. Default 0.7.
	Coherence float64
	// Seed drives the statistical frame draws.
	Seed uint64
}

// withDefaults fills the Landsat reference platform and tunables.
func (c Config) withDefaults() Config {
	if c.Orbit.SemiMajorAxisM == 0 {
		c.Orbit = orbit.Landsat8(c.Epoch)
	}
	if c.Grid.TotalScenes() == 0 {
		c.Grid = wrs.Landsat8Grid()
	}
	if c.Camera.FramePx == 0 {
		c.Camera = sense.Landsat8MS()
	}
	if c.Stations == nil {
		c.Stations = station.LandsatSegment()
	}
	if c.Radio.RateBps == 0 {
		c.Radio = link.Landsat8Radio()
	}
	if c.Coherence == 0 {
		c.Coherence = 0.7
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects inconsistent configurations.
func (c Config) validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("mission: non-positive duration %d days", c.Days)
	}
	if len(c.Selection.Actions) != len(c.Profile.Contexts) {
		return fmt.Errorf("mission: selection has %d actions for %d contexts",
			len(c.Selection.Actions), len(c.Profile.Contexts))
	}
	if c.Selection.Tiling.PerSide != c.Profile.Tiling.PerSide {
		return fmt.Errorf("mission: selection tiling %v != profile tiling %v",
			c.Selection.Tiling, c.Profile.Tiling)
	}
	return nil
}

// Result is the mission outcome.
type Result struct {
	// Ledger is the full-mission downlink accounting.
	Ledger value.Ledger
	// FramesCaptured, FramesProcessed, and FramesMissed count captures,
	// frames processed in time, and frames that arrived while the
	// processor was busy.
	FramesCaptured  int
	FramesProcessed int
	FramesMissed    int
	// PeakQueueBits is the largest onboard queue the mission saw.
	PeakQueueBits float64
	// DroppedBits counts data discarded to buffer overflow.
	DroppedBits float64
	// ContactTime is the total downlink time granted.
	ContactTime time.Duration
}

// DVD returns the mission's data value density.
func (r *Result) DVD() float64 { return r.Ledger.DVD() }

// event is a point on the mission timeline.
type event struct {
	at      time.Time
	capture bool       // capture event; otherwise a grant start
	grant   link.Grant // valid when !capture
}

// Run executes the mission.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	span := time.Duration(cfg.Days) * 24 * time.Hour

	im, err := sense.NewImager(cfg.Camera, cfg.Orbit, cfg.Grid)
	if err != nil {
		return nil, err
	}
	captures := im.Captures(cfg.Epoch, span)

	windows := make([][][]station.Window, len(cfg.Stations))
	for si, st := range cfg.Stations {
		windows[si] = [][]station.Window{station.ContactWindows(st, cfg.Orbit, cfg.Epoch, span, 30*time.Second)}
	}
	grants := link.Allocate(link.Problem{
		Start: cfg.Epoch, Span: span, Quantum: 10 * time.Second, Windows: windows,
	})

	// Merge captures and grants into one chronological timeline.
	events := make([]event, 0, len(captures)+len(grants))
	for _, c := range captures {
		events = append(events, event{at: c.Time, capture: true})
	}
	var contact time.Duration
	for _, g := range grants {
		events = append(events, event{at: g.Start, grant: g})
		contact += g.Dur
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })

	frameBits := cfg.Camera.FrameBits()
	tileBits := frameBits / float64(cfg.Selection.Tiling.Tiles())
	rng := xrand.New(cfg.Seed)
	fracs := contextWeights(cfg.Profile)

	res := &Result{ContactTime: contact}
	q := newQueue(cfg.BufferBits)
	var busyUntil time.Time

	for _, ev := range events {
		if ev.capture {
			res.FramesCaptured++
			res.Ledger.ObservedBits += frameBits
			// Draw the frame's context mix.
			contexts := drawFrame(cfg, fracs, rng)
			var frameValue float64
			for _, c := range contexts {
				frameValue += tileBits * cfg.Profile.Contexts[c].HighValueFrac
			}
			res.Ledger.ObservedHighValueBits += frameValue

			if ev.at.Before(busyUntil) {
				// Processor still busy: the frame is missed.
				res.FramesMissed++
				if cfg.FillIdle {
					q.push(value.Chunk{Bits: frameBits, ValueBits: frameValue}, false)
					res.DroppedBits += q.enforce()
					if q.bits > res.PeakQueueBits {
						res.PeakQueueBits = q.bits
					}
				}
				continue
			}
			res.FramesProcessed++
			procTime, chunks, assessed := processFrame(cfg, contexts, tileBits)
			busyUntil = ev.at.Add(procTime)
			for i, ch := range chunks {
				q.push(ch, assessed[i])
			}
			res.DroppedBits += q.enforce()
			if q.bits > res.PeakQueueBits {
				res.PeakQueueBits = q.bits
			}
			continue
		}
		// Grant: drain the queue FIFO at the radio rate.
		capacity := cfg.Radio.Bits(ev.grant.Dur)
		res.Ledger.CapacityBits += capacity
		bits, val := q.drain(capacity)
		res.Ledger.DownlinkedBits += bits
		res.Ledger.HighValueBits += val
	}
	return res, nil
}

// contextWeights extracts the tile-fraction weights.
func contextWeights(tp policy.TilingProfile) []float64 {
	w := make([]float64, len(tp.Contexts))
	for i, c := range tp.Contexts {
		w[i] = c.TileFrac
	}
	return w
}

// drawFrame draws per-tile contexts with frame-level coherence.
func drawFrame(cfg Config, fracs []float64, rng *xrand.Rand) []int {
	tiles := cfg.Selection.Tiling.Tiles()
	out := make([]int, tiles)
	if rng.Bool(cfg.Coherence) {
		c := rng.Choice(fracs)
		for i := range out {
			out[i] = c
		}
		return out
	}
	for i := range out {
		out[i] = rng.Choice(fracs)
	}
	return out
}

// processFrame returns the frame's processing time, downlink chunks, and
// per-chunk "assessed" flags (whether the system holds a value estimate
// for the chunk) under the selection logic, using expected per-context
// rates.
func processFrame(cfg Config, contexts []int, tileBits float64) (time.Duration, []value.Chunk, []bool) {
	var ms float64
	var chunks []value.Chunk
	var assessed []bool
	engineMs := cfg.Target.ContextEngineMsPerTile()
	modelMs := cfg.Arch.PerTileMs[cfg.Target]
	for _, c := range contexts {
		if cfg.UseEngine {
			ms += engineMs
		}
		cp := cfg.Profile.Contexts[c]
		switch cfg.Selection.Actions[c] {
		case policy.Discard:
		case policy.Downlink:
			chunks = append(chunks, value.Chunk{Bits: tileBits, ValueBits: tileBits * cp.HighValueFrac})
			// A context-engine verdict is a value estimate; a bent pipe
			// (no engine) downlinks blind.
			assessed = append(assessed, cfg.UseEngine)
		default: // Specialized, Merged, Generic
			conf := cp.Special
			switch cfg.Selection.Actions[c] {
			case policy.Merged:
				conf = cp.Merged
			case policy.Generic:
				conf = cp.Generic
			}
			ms += modelMs
			total := float64(conf.Total())
			if total == 0 {
				continue
			}
			kept := conf.PositiveRate()
			tpFrac := float64(conf.TP) / total
			if kept > 0 {
				chunks = append(chunks, value.Chunk{Bits: tileBits * kept, ValueBits: tileBits * tpFrac})
				assessed = append(assessed, true)
			}
		}
	}
	return time.Duration(ms * float64(time.Millisecond)), chunks, assessed
}

// qitem is a queued chunk plus whether the system holds a value estimate
// for it (raw unassessed data cannot be ranked by the storage manager).
type qitem struct {
	chunk    value.Chunk
	assessed bool
}

// queue is a FIFO downlink queue with an optional bit bound. Overflow
// drops raw (unassessed) data first, oldest first, then the
// lowest-estimated-density assessed chunks. The estimate comes from the
// context engine and measured model rates — never from ground truth — so
// a bent pipe, which assesses nothing, degrades to plain FIFO eviction.
type queue struct {
	limit float64 // 0 = unlimited
	items []qitem
	bits  float64
}

func newQueue(limit float64) *queue { return &queue{limit: limit} }

func (q *queue) push(c value.Chunk, assessed bool) {
	if c.Bits <= 0 {
		return
	}
	q.items = append(q.items, qitem{chunk: c, assessed: assessed})
	q.bits += c.Bits
}

// enforce applies the buffer bound and returns the bits dropped.
func (q *queue) enforce() float64 {
	if q.limit <= 0 || q.bits <= q.limit {
		return 0
	}
	var dropped float64
	for q.bits > q.limit && len(q.items) > 0 {
		victimIdx := q.pickVictim()
		victim := q.items[victimIdx]
		over := q.bits - q.limit
		if victim.chunk.Bits <= over {
			q.items = append(q.items[:victimIdx], q.items[victimIdx+1:]...)
			q.bits -= victim.chunk.Bits
			dropped += victim.chunk.Bits
			continue
		}
		frac := over / victim.chunk.Bits
		q.items[victimIdx].chunk = value.Chunk{
			Bits:      victim.chunk.Bits - over,
			ValueBits: victim.chunk.ValueBits * (1 - frac),
		}
		q.bits -= over
		dropped += over
	}
	return dropped
}

// pickVictim returns the index to evict: the oldest unassessed chunk if
// any exist, else the lowest-estimated-density assessed chunk.
func (q *queue) pickVictim() int {
	for i, it := range q.items {
		if !it.assessed {
			return i
		}
	}
	worst := 0
	for i := 1; i < len(q.items); i++ {
		if q.items[i].chunk.Density() < q.items[worst].chunk.Density() {
			worst = i
		}
	}
	return worst
}

// drain sends up to capacity bits FIFO and returns (bits, valueBits) sent.
func (q *queue) drain(capacity float64) (bits, val float64) {
	for capacity > 0 && len(q.items) > 0 {
		head := q.items[0].chunk
		if head.Bits <= capacity {
			bits += head.Bits
			val += head.ValueBits
			capacity -= head.Bits
			q.bits -= head.Bits
			q.items = q.items[1:]
			continue
		}
		frac := capacity / head.Bits
		bits += capacity
		val += head.ValueBits * frac
		q.items[0].chunk = value.Chunk{
			Bits:      head.Bits - capacity,
			ValueBits: head.ValueBits * (1 - frac),
		}
		q.bits -= capacity
		capacity = 0
	}
	return bits, val
}
