package mission

import (
	"math"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/tiling"
	"kodan/internal/value"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

// conf builds a confusion matrix from rates over a nominal population.
func conf(tpr, fpr, baseRate float64) nn.Confusion {
	const n = 10000
	pos := int(baseRate * n)
	neg := n - pos
	tp := int(tpr * float64(pos))
	fp := int(fpr * float64(neg))
	return nn.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

// testProfile mirrors the policy tests' three-context world.
func testProfile(perSide int) policy.TilingProfile {
	return policy.TilingProfile{
		Tiling: tiling.Tiling{PerSide: perSide},
		Contexts: []policy.ContextProfile{
			{TileFrac: 0.30, HighValueFrac: 0.92, Generic: conf(0.90, 0.30, 0.92), Special: conf(0.95, 0.20, 0.92), Merged: conf(0.93, 0.25, 0.92)},
			{TileFrac: 0.35, HighValueFrac: 0.06, Generic: conf(0.80, 0.15, 0.06), Special: conf(0.90, 0.05, 0.06), Merged: conf(0.85, 0.08, 0.06)},
			{TileFrac: 0.35, HighValueFrac: 0.50, Generic: conf(0.85, 0.25, 0.50), Special: conf(0.92, 0.10, 0.50), Merged: conf(0.90, 0.15, 0.50)},
		},
	}
}

// kodanConfig builds a Kodan-style mission: App 4 on the Orin, downlink the
// pure-high context, discard the pure-low one, filter the mixed one.
func kodanConfig(days int) Config {
	prof := testProfile(3)
	return Config{
		Epoch:  epoch,
		Days:   days,
		Arch:   app.App(4),
		Target: hw.Orin15W,

		Profile: prof,
		Selection: policy.Selection{
			Tiling:  prof.Tiling,
			Actions: []policy.Action{policy.Downlink, policy.Discard, policy.Specialized},
		},
		UseEngine: true,
		FillIdle:  true,
		Seed:      7,
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(kodanConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// ~3600 frames captured per day.
	if res.FramesCaptured < 3300 || res.FramesCaptured > 3900 {
		t.Fatalf("captured = %d", res.FramesCaptured)
	}
	if res.FramesProcessed+res.FramesMissed != res.FramesCaptured {
		t.Fatal("frame accounting inconsistent")
	}
	// This selection meets the deadline easily: no missed frames.
	if res.FramesMissed != 0 {
		t.Fatalf("missed %d frames", res.FramesMissed)
	}
	// The downlink is saturated and value-dense.
	if res.Ledger.Utilization() < 0.95 {
		t.Fatalf("utilization = %.3f", res.Ledger.Utilization())
	}
	if res.DVD() < 0.8 {
		t.Fatalf("DVD = %.3f", res.DVD())
	}
}

func TestMissionMatchesAnalyticSteadyState(t *testing.T) {
	// The time-resolved mission and the analytic estimator must agree on
	// DVD in the long run (the mission adds only transient effects).
	cfg := kodanConfig(3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic model needs the same capacity fraction the mission saw.
	env := policy.Env{
		App:          cfg.Arch,
		Target:       cfg.Target,
		Deadline:     24 * time.Second,
		CapacityFrac: res.Ledger.CapacityBits / res.Ledger.ObservedBits,
		FillIdle:     true,
		UseEngine:    true,
	}
	est := policy.Evaluate(cfg.Selection, cfg.Profile, env)
	if diff := math.Abs(est.DVD - res.DVD()); diff > 0.03 {
		t.Fatalf("analytic DVD %.3f vs mission DVD %.3f (diff %.3f)", est.DVD, res.DVD(), diff)
	}
}

func TestBottleneckedMissionMissesFrames(t *testing.T) {
	// All-specialized at 121 tiles on the Orin takes ~4 minutes per frame:
	// most captures arrive while the processor is busy.
	prof := testProfile(11)
	cfg := kodanConfig(1)
	cfg.Profile = prof
	cfg.Selection = policy.Selection{
		Tiling:  prof.Tiling,
		Actions: []policy.Action{policy.Specialized, policy.Specialized, policy.Specialized},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(res.FramesMissed) / float64(res.FramesCaptured); frac < 0.8 {
		t.Fatalf("missed fraction = %.2f, want deep bottleneck", frac)
	}
	// With raw filler the link still runs, at bent-pipe-like density.
	if res.Ledger.Utilization() < 0.9 {
		t.Fatalf("utilization = %.3f", res.Ledger.Utilization())
	}
	if res.DVD() > 0.75 {
		t.Fatalf("bottlenecked DVD = %.3f, want near bent pipe", res.DVD())
	}
}

func TestBufferOverflowDropsSparse(t *testing.T) {
	cfg := kodanConfig(1)
	cfg.BufferBits = 5 * cfg.Profile.Contexts[0].TileFrac * 8e9 // a few frames
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBits == 0 {
		t.Fatal("tiny buffer never overflowed")
	}
	if res.PeakQueueBits > cfg.BufferBits*1.0001 {
		t.Fatalf("peak queue %.0f exceeded buffer %.0f", res.PeakQueueBits, cfg.BufferBits)
	}
	// Value accounting stays consistent.
	if res.Ledger.HighValueBits > res.Ledger.DownlinkedBits {
		t.Fatal("value exceeds downlinked bits")
	}
}

func TestUnlimitedBufferNeverDrops(t *testing.T) {
	res, err := Run(kodanConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedBits != 0 {
		t.Fatalf("unlimited buffer dropped %.0f bits", res.DroppedBits)
	}
}

func TestMissionDeterministic(t *testing.T) {
	a, err := Run(kodanConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(kodanConfig(1))
	if a.DVD() != b.DVD() || a.FramesProcessed != b.FramesProcessed || a.PeakQueueBits != b.PeakQueueBits {
		t.Fatal("mission not deterministic")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cfg := kodanConfig(0)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero days accepted")
	}
	cfg = kodanConfig(1)
	cfg.Selection.Actions = cfg.Selection.Actions[:1]
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched actions accepted")
	}
	cfg = kodanConfig(1)
	cfg.Selection.Tiling = tiling.Tiling{PerSide: 5}
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched tiling accepted")
	}
}

func TestQueueMechanics(t *testing.T) {
	q := newQueue(10)
	q.push(value.Chunk{Bits: 6, ValueBits: 3}, true) // density 0.5 — the victim
	q.push(value.Chunk{Bits: 6, ValueBits: 6}, true) // density 1.0 — preserved
	if dropped := q.enforce(); math.Abs(dropped-2) > 1e-9 {
		t.Fatalf("dropped = %v, want 2 (least dense first)", dropped)
	}
	// The sparse chunk was trimmed to 4 bits with proportional value 2.
	bits, val := q.drain(100)
	if math.Abs(bits-10) > 1e-9 || math.Abs(val-8) > 1e-9 {
		t.Fatalf("drain = %v/%v, want 10/8", bits, val)
	}
	// Partial drain splits the head.
	q2 := newQueue(0)
	q2.push(value.Chunk{Bits: 10, ValueBits: 5}, true)
	b, v := q2.drain(4)
	if b != 4 || math.Abs(v-2) > 1e-9 {
		t.Fatalf("partial drain = %v/%v", b, v)
	}
	b, v = q2.drain(100)
	if math.Abs(b-6) > 1e-9 || math.Abs(v-3) > 1e-9 {
		t.Fatalf("remainder drain = %v/%v", b, v)
	}
}
