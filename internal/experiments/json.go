package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"
)

// WriteJSON serializes a slice of experiment row structs as an indented
// JSON array of objects keyed by field name. It follows the same cell
// conventions as WriteCSV — time.Duration renders as seconds, fmt.Stringer
// values via String — but keeps numbers numeric so downstream tooling can
// consume the figures without re-parsing.
func WriteJSON(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteJSON wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("experiments: no rows to write")
	}
	elemT := v.Index(0).Type()
	if elemT.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteJSON wants a slice of structs, got %s", elemT)
	}

	out := make([]map[string]interface{}, 0, v.Len())
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		obj := make(map[string]interface{}, elemT.NumField())
		for i := 0; i < elemT.NumField(); i++ {
			cell, err := jsonCell(row.Field(i))
			if err != nil {
				return fmt.Errorf("experiments: row %d field %s: %w", r, elemT.Field(i).Name, err)
			}
			obj[elemT.Field(i).Name] = cell
		}
		out = append(out, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonCell renders one struct field as a JSON-ready value.
func jsonCell(f reflect.Value) (interface{}, error) {
	if f.Type() == reflect.TypeOf(time.Duration(0)) {
		return time.Duration(f.Int()).Seconds(), nil
	}
	if f.CanInterface() {
		if s, ok := f.Interface().(fmt.Stringer); ok {
			return s.String(), nil
		}
	}
	switch f.Kind() {
	case reflect.String:
		return f.String(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return f.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return f.Uint(), nil
	case reflect.Float32, reflect.Float64:
		return f.Float(), nil
	case reflect.Bool:
		return f.Bool(), nil
	default:
		return nil, fmt.Errorf("unsupported field kind %s", f.Kind())
	}
}
