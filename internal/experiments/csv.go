package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"time"
)

// WriteCSV serializes a slice of experiment row structs as CSV with a
// header derived from the struct's field names. Supported field kinds:
// string, ints, floats, bools, time.Duration (seconds), and fmt.Stringer
// values (rendered via String). The figure drivers all return such slices,
// so any figure can be exported for external plotting.
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteCSV wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("experiments: no rows to write")
	}
	elemT := v.Index(0).Type()
	if elemT.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteCSV wants a slice of structs, got %s", elemT)
	}

	cw := csv.NewWriter(w)
	header := make([]string, elemT.NumField())
	for i := 0; i < elemT.NumField(); i++ {
		header[i] = elemT.Field(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		rec := make([]string, elemT.NumField())
		for i := 0; i < elemT.NumField(); i++ {
			cell, err := formatCell(row.Field(i))
			if err != nil {
				return fmt.Errorf("experiments: row %d field %s: %w", r, header[i], err)
			}
			rec[i] = cell
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatCell renders one struct field.
func formatCell(f reflect.Value) (string, error) {
	// Durations render as seconds for plotting.
	if f.Type() == reflect.TypeOf(time.Duration(0)) {
		return strconv.FormatFloat(time.Duration(f.Int()).Seconds(), 'f', 3, 64), nil
	}
	if f.CanInterface() {
		if s, ok := f.Interface().(fmt.Stringer); ok {
			return s.String(), nil
		}
	}
	switch f.Kind() {
	case reflect.String:
		return f.String(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(f.Int(), 10), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(f.Uint(), 10), nil
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(f.Float(), 'f', 6, 64), nil
	case reflect.Bool:
		return strconv.FormatBool(f.Bool()), nil
	default:
		return "", fmt.Errorf("unsupported field kind %s", f.Kind())
	}
}
