package experiments

import (
	"strings"
	"sync"
	"testing"

	"kodan/internal/hw"
)

// sharedLab memoizes one Quick-size lab across the package's tests; the
// transformation pass dominates test time and every figure reuses it.
var (
	labOnce sync.Once
	lab     *Lab
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { lab = NewLab(Quick) })
	return lab
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Ms1070Ti != 178.2 || rows[6].MsOrin != 2040 {
		t.Fatal("Table 1 numbers drifted")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "mobilenetv2dilated-c1-deepsup") {
		t.Fatal("render missing architecture names")
	}
}

func TestFigure2Shape(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure2([]int{1, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// A lone satellite downlinks a few percent of its observations.
	if rows[0].DownFrac < 0.005 || rows[0].DownFrac > 0.05 {
		t.Fatalf("1-sat downlink fraction = %.3f, want ~0.02", rows[0].DownFrac)
	}
	// Observation grows linearly; downlink grows sublinearly.
	if rows[2].FramesSeen < 15*rows[0].FramesSeen {
		t.Fatalf("observations did not scale: %d vs %d", rows[2].FramesSeen, rows[0].FramesSeen)
	}
	if rows[2].FramesDown > 14*rows[0].FramesDown {
		t.Fatalf("downlink scaled linearly: contention missing")
	}
	if RenderFigure2(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestFigure3Shape(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure3([]int{1, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Unique scenes grow with population and never exceed the grid.
	for i := 1; i < len(rows); i++ {
		if rows[i].UniqueScenes <= rows[i-1].UniqueScenes {
			t.Fatalf("unique scenes not increasing at %d sats", rows[i].Sats)
		}
	}
	for _, r := range rows {
		if r.CoverageFrac > 1 {
			t.Fatalf("coverage over 100%%")
		}
	}
	// One satellite covers roughly 15 paths x 248 rows ~ 3600 scenes/day.
	if rows[0].UniqueScenes < 3000 || rows[0].UniqueScenes > 4000 {
		t.Fatalf("1-sat unique scenes = %d", rows[0].UniqueScenes)
	}
}

func TestFigure4Shape(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("columns = %d", len(rows))
	}
	obs, bent, ideal := rows[0], rows[1], rows[2]
	// ~3600 frames observed, 1/3 high-value.
	if total := obs.HighValue + obs.LowValue; total < 3300 || total > 3900 {
		t.Fatalf("observed frames = %.0f", total)
	}
	// Ideal OEC delivers ~3x the bent pipe's high-value frames.
	ratio := ideal.HighValue / bent.HighValue
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ideal/bent ratio = %.2f, want ~3", ratio)
	}
	// Ideal sends no low-value data.
	if ideal.LowValue != 0 {
		t.Fatal("ideal OEC downlinked low-value data")
	}
}

func TestFigure5Shape(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure5([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Bent pipe delivers ~21% of observable high-value data.
	if r.BentPct < 15 || r.BentPct > 28 {
		t.Fatalf("bent pipe = %.1f%%", r.BentPct)
	}
	// Direct deploy of the 98 s filter improves things by only ~9%.
	imp := r.DirectPct/r.BentPct - 1
	if imp < 0.02 || imp > 0.25 {
		t.Fatalf("direct-deploy improvement = %.1f%%, want ~9%%", 100*imp)
	}
}

func TestFigure8Headline(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("rows = %d, want 7 apps x 3 targets", len(rows))
	}
	for _, r := range rows {
		// Bent pipe DVD is the dataset prevalence (~0.45-0.5).
		if r.BentDVD < 0.35 || r.BentDVD > 0.6 {
			t.Fatalf("%v %s: bent DVD %.3f", r.Target, appLabel(r.App), r.BentDVD)
		}
		// Kodan always beats both baselines.
		if r.KodanDVD <= r.BentDVD || r.KodanDVD < r.DirectDVD {
			t.Fatalf("%v %s: kodan %.3f direct %.3f bent %.3f",
				r.Target, appLabel(r.App), r.KodanDVD, r.DirectDVD, r.BentDVD)
		}
	}
	lo, hi := Headline(rows)
	// Paper: 89-97%. Accept a generous band at test scale, but the
	// improvement must be large everywhere.
	if lo < 0.6 || hi > 1.4 {
		t.Fatalf("headline improvement range = %.0f%%..%.0f%%", lo*100, hi*100)
	}
}

func TestFigure9KodanMeetsDeadline(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.KodanTime > r.Deadline {
			t.Errorf("%v %s: Kodan %.1fs over %.1fs deadline",
				r.Target, appLabel(r.App), r.KodanTime.Seconds(), r.Deadline.Seconds())
		}
		// Wherever direct deploy is bottlenecked, Kodan is faster (when
		// direct already meets the deadline Kodan may legitimately spend
		// the idle time on precision instead).
		if r.DirectTime > r.Deadline && r.KodanTime >= r.DirectTime {
			t.Errorf("%v %s: Kodan (%.1fs) not faster than direct (%.1fs)",
				r.Target, appLabel(r.App), r.KodanTime.Seconds(), r.DirectTime.Seconds())
		}
	}
	// Direct deploy misses the deadline on the Orin for (nearly) every
	// app; a wide-receptive-field architecture may pick a coarse, fast
	// tiling at Quick scale, so allow one exception.
	missed := 0
	for _, r := range rows {
		if r.Target == hw.Orin15W && r.DirectTime > r.Deadline {
			missed++
		}
	}
	if missed < 6 {
		t.Errorf("direct deploy missed the Orin deadline for only %d of 7 apps", missed)
	}
}

func TestFigure10Decay(t *testing.T) {
	l := testLab(t)
	pts, err := l.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var curve []Fig10Point
	for _, p := range pts {
		if p.Label == "curve" {
			curve = append(curve, p)
		}
	}
	if len(curve) < 10 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// Below the deadline the improvement is at its maximum...
	if curve[0].NormImprovement < 0.99 {
		t.Fatalf("zero-time improvement = %.3f", curve[0].NormImprovement)
	}
	// ...and decays monotonically toward the bent pipe afterwards.
	for i := 1; i < len(curve); i++ {
		if curve[i].NormImprovement > curve[i-1].NormImprovement+1e-9 {
			t.Fatalf("improvement not decaying at %.0fs", curve[i].ExecSeconds)
		}
	}
	if last := curve[len(curve)-1].NormImprovement; last > 0.3 {
		t.Fatalf("320 s improvement = %.3f, want near bent pipe", last)
	}
}

func TestFigure11Reduction(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	maxFactor := 0.0
	for _, r := range rows {
		if r.KodanSats != 1 {
			t.Errorf("App %d: Kodan needs %d satellites", r.App, r.KodanSats)
		}
		if r.KodanFactor < r.MaxPrecFactor {
			t.Errorf("App %d: Kodan factor %.1f below max-precision %.1f", r.App, r.KodanFactor, r.MaxPrecFactor)
		}
		if r.KodanFactor > maxFactor {
			maxFactor = r.KodanFactor
		}
	}
	// The heaviest app yields the largest reduction (paper: up to 12x; the
	// Quick lab's coarsest tiling is 36 tiles, so the direct numerator is
	// smaller here).
	if maxFactor < 3 {
		t.Fatalf("max reduction factor = %.1f", maxFactor)
	}
}

func TestFigure12ContextGains(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	var app2PrecGain float64
	precImproved := 0
	for _, r := range rows {
		if r.AccContexts <= r.AccGeneric {
			t.Errorf("App %d: contexts did not improve accuracy (%.3f vs %.3f)", r.App, r.AccContexts, r.AccGeneric)
		}
		if r.PrecContext > r.PrecGeneric {
			precImproved++
		}
		if r.App == 2 {
			app2PrecGain = r.PrecContext/r.PrecGeneric - 1
		}
	}
	// Contexts improve precision across the board (small-sample noise may
	// cost one or two apps at Quick scale), and App 2 — the weakest
	// backbone — gains a lot (paper: 33%).
	if precImproved < 5 {
		t.Errorf("precision improved for only %d of 7 apps", precImproved)
	}
	if app2PrecGain < 0.08 {
		t.Errorf("App 2 precision gain = %.1f%%, want large", app2PrecGain*100)
	}
}

func TestFigure13TilingTradeoffs(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[int]map[int]Fig13Row{}
	for _, r := range rows {
		if perApp[r.App] == nil {
			perApp[r.App] = map[int]Fig13Row{}
		}
		perApp[r.App][r.Tiles] = r
	}
	// At Quick size we have 9 and 121 tiles/frame. Finer tiling must win on
	// precision for small-receptive-field apps (less decimation), while
	// wide-field architectures (App 3's HRNet) lose more from small tiles.
	a1 := perApp[1]
	if a1[121].Precision <= a1[9].Precision {
		t.Errorf("App 1: fine tiling precision %.3f not above coarse %.3f", a1[121].Precision, a1[9].Precision)
	}
	// Wide-field architectures should not gain more from fine tiling than
	// narrow ones (small-sample noise allows a small tolerance at Quick
	// scale; the per-architecture optima are visible in the full-size
	// bench output).
	gap := func(m map[int]Fig13Row) float64 { return m[121].Accuracy - m[9].Accuracy }
	if gap(perApp[3]) >= gap(perApp[1])+0.015 {
		t.Errorf("wide-RF App 3 gained much more from fine tiling than App 1 (%.4f vs %.4f)",
			gap(perApp[3]), gap(perApp[1]))
	}
}

func TestFigure14ConstrainedPrefersCoarse(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	get := func(target hw.Target, appIdx, tiles int) float64 {
		for _, r := range rows {
			if r.Target == target && r.App == appIdx && r.Tiles == tiles {
				return r.DVD
			}
		}
		t.Fatalf("missing row %v app%d %d", target, appIdx, tiles)
		return 0
	}
	// Heaviest app on the Orin: coarse tiling (9) must beat fine (121).
	if c, f := get(hw.Orin15W, 7, 9), get(hw.Orin15W, 7, 121); c <= f {
		t.Errorf("App 7 on Orin: coarse %.3f not above fine %.3f", c, f)
	}
	// Lightest app on the 1070 Ti: fine tiling at least as good (precision
	// wins when compute is plentiful).
	if c, f := get(hw.GTX1070Ti, 1, 9), get(hw.GTX1070Ti, 1, 121); f < c-0.02 {
		t.Errorf("App 1 on 1070 Ti: fine %.3f well below coarse %.3f", f, c)
	}
}

func TestFigure15ElisionHelps(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	improvement := func(target hw.Target, appIdx int) float64 {
		for _, r := range rows {
			if r.Target == target && r.App == appIdx {
				return r.ElisionDVD/r.DirectDVD - 1
			}
		}
		t.Fatalf("missing row")
		return 0
	}
	for _, r := range rows {
		if r.ElisionDVD < r.DirectDVD-1e-9 {
			t.Errorf("%v App %d: elision hurt DVD", r.Target, r.App)
		}
	}
	// The benefit is larger under the deeper bottleneck: App 7 on Orin
	// gains more than App 1 on the 1070 Ti.
	if improvement(hw.Orin15W, 7) <= improvement(hw.GTX1070Ti, 1) {
		t.Errorf("elision benefit did not track the bottleneck: Orin/App7 %.2f vs 1070/App1 %.2f",
			improvement(hw.Orin15W, 7), improvement(hw.GTX1070Ti, 1))
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	l := testLab(t)
	f8, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	f9, _ := l.Figure9()
	f10, _ := l.Figure10()
	f11, _ := l.Figure11()
	f12, _ := l.Figure12()
	f13, _ := l.Figure13()
	f14, _ := l.Figure14()
	f15, _ := l.Figure15()
	for name, s := range map[string]string{
		"fig8":  RenderFigure8(f8),
		"fig9":  RenderFigure9(f9),
		"fig10": RenderFigure10(f10),
		"fig11": RenderFigure11(f11),
		"fig12": RenderFigure12(f12),
		"fig13": RenderFigure13(f13),
		"fig14": RenderFigure14(f14),
		"fig15": RenderFigure15(f15),
	} {
		if len(strings.Split(s, "\n")) < 3 {
			t.Errorf("%s render too short", name)
		}
	}
}
