// Package experiments regenerates every table and figure of the paper's
// evaluation. Each driver returns typed rows plus a rendered text table,
// so the benchmark harness (bench_test.go, cmd/kodan-bench) can print the
// same series the paper reports. A Lab memoizes the expensive shared
// state — the transformation workspace, per-application artifacts, and
// constellation simulations — so regenerating all figures costs one
// transformation pass.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kodan/internal/app"
	"kodan/internal/core"
	"kodan/internal/hw"
	"kodan/internal/parallel"
	"kodan/internal/policy"
	"kodan/internal/sim"
	"kodan/internal/telemetry"
	"kodan/internal/tiling"
)

// Size selects the experiment scale.
type Size int

// Scales.
const (
	// Quick is sized for unit tests: fewer frames, two tilings.
	Quick Size = iota
	// Full is the benchmark scale: the paper's four tilings and the full
	// satellite-count sweeps.
	Full
)

// Lab holds memoized experiment state. A Lab is safe for concurrent use:
// the figure sweeps fan out over the parallel engine, and the memoized
// shared state (workspace, per-app artifacts, day-long simulations) is
// single-flight — concurrent callers of the same entry block on one
// computation and share its result. Because every stochastic stage draws
// from per-item xrand streams, figure output is bit-identical at every
// Workers setting; the golden-determinism tests enforce this.
type Lab struct {
	// Seed drives all stochastic stages.
	Seed uint64
	// Epoch anchors the orbital simulations.
	Epoch time.Time
	// Size selects Quick or Full sizing.
	Size Size
	// Workers bounds the parallelism of the figure sweeps and the
	// constellation simulations: 0 uses GOMAXPROCS, 1 forces the
	// sequential path. Any value yields byte-identical figures.
	Workers int
	// Probe, when set, receives the lab's telemetry: one span per figure,
	// memoization hit/miss counters, and everything the instrumented
	// layers underneath (sim, transform, parallel) emit. The zero Probe
	// disables all of it; either way figure bytes are identical.
	Probe telemetry.Probe

	mu       sync.Mutex
	ws       memo[*core.Workspace]
	apps     map[appKey]*memo[*core.Artifacts]
	mission  memo[missionProfile]
	capacity map[int]*memo[*sim.Result] // per satellite count, one day
}

// appKey identifies one memoized per-application transform: the Table 1
// index plus the inference variant it was measured under.
type appKey struct {
	index     int
	quantized bool
}

// memo is a single-flight memo cell: the first caller computes while
// later callers block, then every caller shares the cached value. Errors
// are not cached — the next caller retries.
type memo[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// do returns the memoized value, computing it with f if needed. hit and
// miss count the lookup outcome (nil-safe: pass nil when uninstrumented).
// A caller blocked behind the in-flight computation counts as a hit once
// it observes the completed value.
func (m *memo[T]) do(hit, miss *telemetry.Counter, f func() (T, error)) (T, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		hit.Inc()
		return m.val, nil
	}
	miss.Inc()
	v, err := f()
	if err != nil {
		var zero T
		return zero, err
	}
	m.val, m.done = v, true
	return v, nil
}

// NewLab returns a lab with the reproduction's reference seed and epoch.
func NewLab(size Size) *Lab {
	return &Lab{
		Seed:     2023,
		Epoch:    time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC),
		Size:     size,
		apps:     make(map[appKey]*memo[*core.Artifacts]),
		capacity: make(map[int]*memo[*sim.Result]),
	}
}

// workers resolves the lab's worker knob.
func (l *Lab) workers() int { return parallel.Workers(l.Workers) }

// probeCtx threads the lab's probe into ctx so the instrumented layers
// below (sim, core, nn, parallel) record into it. A context that already
// carries a probe wins — callers like the server own their telemetry.
func (l *Lab) probeCtx(ctx context.Context) context.Context {
	if !l.Probe.Enabled() || telemetry.ProbeFrom(ctx).Enabled() {
		return ctx
	}
	return telemetry.WithProbe(ctx, l.Probe)
}

// startFigure opens one figure's span and counts the sweep; every
// FigureNCtx driver calls it first, so traces group all work under the
// figure that caused it.
func (l *Lab) startFigure(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	ctx = l.probeCtx(ctx)
	ctx, sp := telemetry.StartSpan(ctx, "figure."+name)
	// The worker count is a variant attribute: it labels what differed
	// when two traces of the same figure are compared.
	sp.Set("workers", fmt.Sprint(l.workers()))
	telemetry.ProbeFrom(ctx).Metrics.Scope("lab").Counter("figures").Inc()
	return ctx, sp
}

// memoCounters returns the lab-scope hit/miss counters of one memo kind.
func (l *Lab) memoCounters(kind string) (hit, miss *telemetry.Counter) {
	scope := l.Probe.Metrics.Scope("lab")
	if scope == nil {
		return nil, nil
	}
	return scope.Counter("memo." + kind + ".hit"), scope.Counter("memo." + kind + ".miss")
}

// transformConfig returns the lab's transformation sizing.
func (l *Lab) transformConfig() core.Config {
	cfg := core.DefaultConfig(l.Seed)
	if l.Size == Quick {
		cfg.Frames = 60
		cfg.TileRes = 16
		cfg.Tilings = []tiling.Tiling{{PerSide: 3}, {PerSide: 11}}
	}
	return cfg
}

// Tilings returns the candidate tilings at this size.
func (l *Lab) Tilings() []tiling.Tiling { return l.transformConfig().Tilings }

// SatCounts returns the constellation sweep points at this size.
func (l *Lab) SatCounts() []int {
	if l.Size == Quick {
		return []int{1, 8, 16}
	}
	return []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56}
}

// Workspace returns the memoized transformation workspace.
func (l *Lab) Workspace() (*core.Workspace, error) {
	return l.WorkspaceCtx(context.Background())
}

// WorkspaceCtx returns the memoized transformation workspace, building it
// under ctx on first use.
func (l *Lab) WorkspaceCtx(ctx context.Context) (*core.Workspace, error) {
	hit, miss := l.memoCounters("workspace")
	return l.ws.do(hit, miss, func() (*core.Workspace, error) {
		return core.NewWorkspaceCtx(l.probeCtx(ctx), l.transformConfig())
	})
}

// App returns the memoized artifacts of one application.
func (l *Lab) App(index int) (*core.Artifacts, error) {
	return l.AppCtx(context.Background(), index)
}

// AppCtx returns the memoized artifacts of one application, transforming
// it under ctx on first use. Concurrent calls for the same index share
// one transformation.
func (l *Lab) AppCtx(ctx context.Context, index int) (*core.Artifacts, error) {
	return l.AppVariantCtx(ctx, index, false)
}

// AppVariantCtx returns the memoized artifacts of one application under
// the chosen inference variant. The quantized variant derives int8 twins
// after training and measures every suite quality confusion through them;
// both variants share the workspace (datasets, contexts, engine) and the
// float variant's artifacts are bit-identical whether or not a quantized
// transform also ran.
func (l *Lab) AppVariantCtx(ctx context.Context, index int, quantized bool) (*core.Artifacts, error) {
	key := appKey{index: index, quantized: quantized}
	l.mu.Lock()
	if l.apps == nil {
		l.apps = make(map[appKey]*memo[*core.Artifacts])
	}
	m, ok := l.apps[key]
	if !ok {
		m = &memo[*core.Artifacts]{}
		l.apps[key] = m
	}
	l.mu.Unlock()
	hit, miss := l.memoCounters("app")
	return m.do(hit, miss, func() (*core.Artifacts, error) {
		ws, err := l.WorkspaceCtx(ctx)
		if err != nil {
			return nil, err
		}
		return ws.WithQuantized(quantized).TransformAppCtx(l.probeCtx(ctx), app.App(index))
	})
}

// missionProfile is the single-satellite Landsat day.
type missionProfile struct {
	Deadline     time.Duration
	FramesPerDay float64
	CapacityFrac float64
	FrameBits    float64
}

// Mission returns the memoized single-satellite mission profile.
func (l *Lab) Mission() (missionProfile, error) {
	return l.MissionCtx(context.Background())
}

// MissionCtx returns the memoized single-satellite mission profile,
// simulating it under ctx on first use.
func (l *Lab) MissionCtx(ctx context.Context) (missionProfile, error) {
	hit, miss := l.memoCounters("mission")
	return l.mission.do(hit, miss, func() (missionProfile, error) {
		res, err := l.dayRun(ctx, 1)
		if err != nil {
			return missionProfile{}, err
		}
		obs := float64(res.FramesObserved())
		return missionProfile{
			Deadline:     res.Config.Grid.FramePeriod(res.Config.BaseOrbit),
			FramesPerDay: obs,
			CapacityFrac: res.FrameCapacity() / obs,
			FrameBits:    res.Config.Camera.FrameBits(),
		}, nil
	})
}

// dayRun returns the memoized one-day simulation at a satellite count.
func (l *Lab) dayRun(ctx context.Context, sats int) (*sim.Result, error) {
	l.mu.Lock()
	if l.capacity == nil {
		l.capacity = make(map[int]*memo[*sim.Result])
	}
	m, ok := l.capacity[sats]
	if !ok {
		m = &memo[*sim.Result]{}
		l.capacity[sats] = m
	}
	l.mu.Unlock()
	hit, miss := l.memoCounters("capacity")
	return m.do(hit, miss, func() (*sim.Result, error) {
		cfg := sim.Landsat8Config(l.Epoch, 24*time.Hour, sats)
		cfg.Workers = l.Workers
		return sim.RunCtx(l.probeCtx(ctx), cfg)
	})
}

// Deployment builds the policy environment of a hardware target on the
// reference mission.
func (l *Lab) Deployment(t hw.Target) (core.Deployment, error) {
	return l.DeploymentCtx(context.Background(), t)
}

// DeploymentCtx builds the policy environment of a hardware target on the
// reference mission, simulating the mission under ctx on first use.
func (l *Lab) DeploymentCtx(ctx context.Context, t hw.Target) (core.Deployment, error) {
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return core.Deployment{}, err
	}
	return core.Deployment{
		Target:       t,
		Deadline:     m.Deadline,
		CapacityFrac: m.CapacityFrac,
		FillIdle:     true,
	}, nil
}

// accuracyTiling returns the generic model's accuracy-maximal tiling for
// an application — prior OEC work's tiling choice, used by the
// direct-deploy baseline. Measured accuracies within a small tolerance are
// treated as tied and broken toward the finer tiling, matching prior
// work's preference for detail-preserving tilings when accuracy is flat.
func accuracyTiling(art *core.Artifacts) tiling.Tiling {
	const tolerance = 0.02
	maxAcc := -1.0
	for _, tl := range sortedTilings(art) {
		if acc := art.Suites[tl.PerSide].Quality.GenericAll.Accuracy(); acc > maxAcc {
			maxAcc = acc
		}
	}
	best := art.Profiles[0].Tiling
	found := false
	for _, tl := range sortedTilings(art) {
		if art.Suites[tl.PerSide].Quality.GenericAll.Accuracy() < maxAcc-tolerance {
			continue
		}
		if !found || tl.Tiles() > best.Tiles() {
			best = tl
			found = true
		}
	}
	return best
}

// precisionTiling returns the specialized models' precision-maximal tiling
// (ties toward finer, as above).
func precisionTiling(art *core.Artifacts) tiling.Tiling {
	const tolerance = 0.01
	maxPrec := -1.0
	for _, tl := range sortedTilings(art) {
		if p := art.Suites[tl.PerSide].Quality.SpecialAll.Precision(); p > maxPrec {
			maxPrec = p
		}
	}
	best := art.Profiles[0].Tiling
	found := false
	for _, tl := range sortedTilings(art) {
		if art.Suites[tl.PerSide].Quality.SpecialAll.Precision() < maxPrec-tolerance {
			continue
		}
		if !found || tl.Tiles() > best.Tiles() {
			best = tl
			found = true
		}
	}
	return best
}

// sortedTilings lists an artifact's tilings in profile order.
func sortedTilings(art *core.Artifacts) []tiling.Tiling {
	out := make([]tiling.Tiling, 0, len(art.Profiles))
	for _, p := range art.Profiles {
		out = append(out, p.Tiling)
	}
	return out
}

// directEstimate evaluates the direct-deploy baseline for an app on a
// deployment at its accuracy-maximal tiling.
func directEstimate(art *core.Artifacts, d core.Deployment) (policy.Estimate, tiling.Tiling, error) {
	tl := accuracyTiling(art)
	prof, err := art.Profile(tl)
	if err != nil {
		return policy.Estimate{}, tl, err
	}
	env := d.Env(art.Arch)
	env.UseEngine = false
	return policy.Evaluate(policy.DirectSelection(prof), prof, env), tl, nil
}

// bentEstimate evaluates the bent-pipe baseline.
func bentEstimate(art *core.Artifacts, d core.Deployment) policy.Estimate {
	return policy.EvaluateBentPipe(art.Profiles[0].Prevalence(), d.Env(art.Arch))
}

// appLabel formats "App N".
func appLabel(i int) string { return fmt.Sprintf("App %d", i) }
