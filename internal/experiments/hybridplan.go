package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kodan/internal/core"
	"kodan/internal/fault"
	"kodan/internal/hw"
	"kodan/internal/parallel"
	"kodan/internal/planner"
	"kodan/internal/power"
	"kodan/internal/sim"
)

// planApp is the reference application of the hybrid-plan sweep (App 4,
// the same reference Figure 10 uses).
const planApp = 4

// planBufferFrames sizes the on-board deferral buffer in frame-size
// units — a few minutes of captures for the Landsat payload.
const planBufferFrames = 64

// PlanGroundCosts returns the ground-compute-cost sweep points (per
// frame-fraction processed on the ground) at this size.
func (l *Lab) PlanGroundCosts() []float64 {
	if l.Size == Quick {
		return []float64{0.2, 2}
	}
	return []float64{0.05, 0.2, 1, 5}
}

// HybridPlanRow is one (constellation size, mode, ground cost) cell of
// the hybrid-plan sweep.
type HybridPlanRow struct {
	// Sats is the constellation population.
	Sats int
	// Mode is "onboard" (current Kodan, the memoized fault-free
	// baseline), "bentpipe", or "planner".
	Mode string
	// GroundCost is the planner's ground-compute price; 0 on baseline
	// rows (they never buy ground compute).
	GroundCost float64
	// DVD is the delivered high-value bits per downlinked bit.
	DVD float64
	// LatencyS is the mean capture-to-delivery latency in seconds of the
	// planned downlink traffic, from the store-and-forward replay of the
	// simulated contact schedule (sim.DrainDeferred).
	LatencyS float64
	// OnboardPct, DownlinkPct, DeferPct, and DropPct partition the tile
	// fraction by placement.
	OnboardPct  float64
	DownlinkPct float64
	DeferPct    float64
	DropPct     float64
	// EnergyJ is the on-board compute energy per frame.
	EnergyJ float64
	// Utility is the planner's maximized objective (planner rows only).
	Utility float64
}

// HybridPlanSweep sweeps constellation size and ground-compute cost and
// reports DVD and end-to-end latency for the hybrid planner against the
// onboard-only (current Kodan) and bent-pipe baselines.
func (l *Lab) HybridPlanSweep() ([]HybridPlanRow, error) {
	return l.HybridPlanSweepCtx(context.Background())
}

// HybridPlanSweepCtx is HybridPlanSweep with cancellation. The satellite
// counts fan out on the lab's worker pool; the day-long simulations, the
// workspace, and the App 4 artifacts are the same memoized state every
// other figure shares, so the onboard-only rows are byte-identical to the
// existing fault-free baseline at any worker count.
func (l *Lab) HybridPlanSweepCtx(ctx context.Context) ([]HybridPlanRow, error) {
	ctx, span := l.startFigure(ctx, "hybridplan")
	defer span.End()
	art, err := l.AppCtx(ctx, planApp)
	if err != nil {
		return nil, err
	}
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	sats := l.SatCounts()
	gcosts := l.PlanGroundCosts()
	perSat := 2 + len(gcosts)
	rows := make([]HybridPlanRow, len(sats)*perSat)
	err = parallel.ForEach(ctx, l.workers(), len(sats), func(ctx context.Context, i int) error {
		res, err := l.dayRun(ctx, sats[i])
		if err != nil {
			return err
		}
		block, err := hybridPlanBlock(ctx, art, m, res, gcosts)
		if err != nil {
			return err
		}
		copy(rows[i*perSat:], block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// hybridPlanBlock computes one constellation size's rows: the onboard and
// bent-pipe baselines plus one planner row per ground cost. Everything
// derives deterministically from the day run and the App 4 artifacts.
func hybridPlanBlock(ctx context.Context, art *core.Artifacts, m missionProfile, res *sim.Result,
	gcosts []float64) ([]HybridPlanRow, error) {
	n := res.Config.Satellites
	observed := float64(res.FramesObserved())
	d := core.Deployment{
		Target:       hw.Orin15W,
		Deadline:     m.Deadline,
		CapacityFrac: res.FrameCapacity() / observed,
		FillIdle:     true,
	}

	// Onboard-only: the existing Kodan selection logic, unchanged.
	sel, est := art.SelectionLogic(d)
	energy, err := power.EnergyPerFrame(hw.Orin15W, est.FrameTime, m.Deadline)
	if err != nil {
		return nil, err
	}
	rows := []HybridPlanRow{{
		Sats:       n,
		Mode:       "onboard",
		DVD:        est.DVD,
		LatencyS:   drainLatency(ctx, res, est.Ledger.DownlinkedBits*m.FrameBits, 0),
		OnboardPct: 100,
		EnergyJ:    energy,
	}}

	// Bent pipe: every frame raw, no on-board compute at all.
	bent := bentEstimate(art, d)
	rows = append(rows, HybridPlanRow{
		Sats:        n,
		Mode:        "bentpipe",
		DVD:         bent.DVD,
		LatencyS:    drainLatency(ctx, res, m.FrameBits, 0),
		DownlinkPct: 100,
	})

	// Planner rows share the optimizer's tiling and on-board actions, so
	// their Onboard placements execute exactly the baseline's logic.
	prof, err := art.Profile(sel.Tiling)
	if err != nil {
		return nil, err
	}
	li := planner.DeriveLink(res)
	for _, g := range gcosts {
		costs := planner.DefaultCosts()
		costs.GroundPerFrame = g
		env := planner.Env{
			Policy:       d.Env(art.Arch),
			Bus:          power.ThreeUBus(),
			Costs:        costs,
			BufferFrames: planBufferFrames,
		}.WithLink(li)
		plan, err := planner.DecideCtx(ctx, prof, sel, env)
		if err != nil {
			return nil, err
		}
		ev := plan.Eval
		rows = append(rows, HybridPlanRow{
			Sats:        n,
			Mode:        "planner",
			GroundCost:  g,
			DVD:         ev.DVD,
			LatencyS:    drainLatency(ctx, res, (ev.NowBits+ev.DeferBits)*m.FrameBits, planBufferFrames*m.FrameBits),
			OnboardPct:  100 * ev.OnboardFrac,
			DownlinkPct: 100 * ev.DownlinkFrac,
			DeferPct:    100 * ev.DeferFrac,
			DropPct:     100 * ev.DropFrac,
			EnergyJ:     ev.EnergyPerFrameJ,
			Utility:     ev.Utility,
		})
	}
	return rows, nil
}

// drainLatency replays bitsPerFrame of downlink traffic through the run's
// contact schedule and returns the mean delivery latency in seconds.
func drainLatency(ctx context.Context, res *sim.Result, bitsPerFrame, bufferBits float64) float64 {
	return res.DrainDeferredCtx(ctx, bitsPerFrame, bufferBits).MeanLatency.Seconds()
}

// HybridPlanWithSchedule plans one (satellite count, ground cost) cell
// against a fault-injected day — the planner's degraded-mode path. The
// injected schedule reshapes the simulated run (stations out, links
// fading), DeriveLink reads the collapsed capacity and stretched contact
// gaps from it, and the placement search re-plans accordingly. The
// faulted run is simulated fresh (never memoized) so the lab's shared
// fault-free state stays untouched.
func (l *Lab) HybridPlanWithSchedule(ctx context.Context, sats int, groundCost float64,
	sched *fault.Schedule) (HybridPlanRow, error) {
	ctx, span := l.startFigure(ctx, "hybridplan")
	defer span.End()
	art, err := l.AppCtx(ctx, planApp)
	if err != nil {
		return HybridPlanRow{}, err
	}
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return HybridPlanRow{}, err
	}
	cfg := sim.Landsat8Config(l.Epoch, 24*time.Hour, sats)
	cfg.Workers = l.Workers
	res, err := sim.RunCtx(fault.WithInjector(l.probeCtx(ctx), fault.NewInjector(sched)), cfg)
	if err != nil {
		return HybridPlanRow{}, err
	}
	block, err := hybridPlanBlock(ctx, art, m, res, []float64{groundCost})
	if err != nil {
		return HybridPlanRow{}, err
	}
	return block[len(block)-1], nil
}

// RenderHybridPlan formats the hybrid-plan sweep.
func RenderHybridPlan(rows []HybridPlanRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid plan sweep: DVD and end-to-end latency vs constellation size x ground cost (App %d, Orin 15W)\n", planApp)
	fmt.Fprintf(&b, "%5s %9s %7s %7s %11s %9s %10s %7s %6s %8s %8s\n",
		"Sats", "Mode", "GndCost", "DVD", "Latency(s)", "Onboard%", "Downlink%", "Defer%", "Drop%", "EnergyJ", "Utility")
	for _, r := range rows {
		gc := fmt.Sprintf("%7.2f", r.GroundCost)
		util := fmt.Sprintf("%8.3f", r.Utility)
		if r.Mode != "planner" {
			gc = fmt.Sprintf("%7s", "-")
			util = fmt.Sprintf("%8s", "-")
		}
		fmt.Fprintf(&b, "%5d %9s %s %7.3f %11.1f %9.1f %10.1f %7.1f %6.1f %8.1f %s\n",
			r.Sats, r.Mode, gc, r.DVD, r.LatencyS,
			r.OnboardPct, r.DownlinkPct, r.DeferPct, r.DropPct, r.EnergyJ, util)
	}
	return b.String()
}
