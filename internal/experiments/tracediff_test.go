package experiments

import (
	"bytes"
	"context"
	"testing"

	"kodan/internal/telemetry"
	"kodan/internal/telemetry/analyze"
)

// traceTransform transforms one app on the lab under the chosen inference
// variant with a span tracer attached, and returns the parsed trace. The
// lab's workspace must already be warm so the trace holds only the
// transform phases (the variants share every pre-transform artifact).
func traceTransform(t *testing.T, l *Lab, quantized bool) *analyze.Trace {
	t.Helper()
	tracer := telemetry.NewTracer(0)
	ctx := telemetry.WithProbe(context.Background(), telemetry.Probe{Trace: tracer})
	if _, err := l.AppVariantCtx(ctx, 4, quantized); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := analyze.Parse(&buf)
	if err != nil {
		t.Fatalf("transform trace does not parse: %v", err)
	}
	return trace
}

// TestTraceDiffAttributesQuantizedDeltaToInference is the acceptance check
// for the diff engine against real pipeline traces: comparing a float app
// transform (A) with an int8 quantized one (B), the recorded wall-time
// difference must land on the nn inference phase, because quantization
// changes only the prediction hot path — training does identical float
// work in both runs. In this pure-Go reproduction the int8 forward pass
// is *slower* on the host (per-layer requantization with no SIMD payoff;
// the speedup quantization buys is in the modeled on-orbit frame time),
// so the diff must show nn.infer losing time B-vs-A, and must label the
// quantized attribute flip on every phase that carries it.
//
// The assertions are direction and attribution, not rank: phases like
// nn.train run identical work in both variants, so their deltas are pure
// host jitter and can transiently exceed the inference signal. Rank
// ordering of the delta table is pinned by the synthetic TestCompare in
// package analyze.
func TestTraceDiffAttributesQuantizedDeltaToInference(t *testing.T) {
	if testing.Short() {
		t.Skip("two full app transforms")
	}
	lab := NewLab(Quick)
	// Warm the shared workspace outside any trace so both variants record
	// only transform.app/transform.tiling/nn.train/nn.infer spans.
	if _, err := lab.WorkspaceCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	float := traceTransform(t, lab, false)
	quant := traceTransform(t, lab, true)
	d := analyze.Compare(float, quant)

	var infer *analyze.DiffRow
	for i := range d.Rows {
		if d.Rows[i].Name == "nn.infer" {
			infer = &d.Rows[i]
		}
	}
	if infer == nil {
		t.Fatalf("diff has no nn.infer row:\n%s", d.Render())
	}
	if infer.CountA != infer.CountB {
		t.Errorf("nn.infer span counts differ: %d vs %d (variants should run the same eval passes)",
			infer.CountA, infer.CountB)
	}
	if infer.Delta <= 0 {
		t.Errorf("nn.infer delta = %v, want positive (int8 inference costs host wall time)\n%s",
			infer.Delta, d.Render())
	}

	// The variant flip is labeled on every phase that carries the attr.
	flagged := map[string]bool{}
	for _, c := range d.AttrChanges {
		if c.Key == "quantized" && c.A == "false" && c.B == "true" {
			flagged[c.Phase] = true
		}
	}
	for _, phase := range []string{"nn.infer", "nn.train", "transform.app", "transform.tiling"} {
		if !flagged[phase] {
			t.Errorf("quantized=false -> true not labeled on %s (changes: %+v)", phase, d.AttrChanges)
		}
	}

	// Rendering the same pair twice is byte-identical.
	if a, b := d.Render(), analyze.Compare(float, quant).Render(); a != b {
		t.Error("diff rendering is not deterministic for the same input traces")
	}
}
