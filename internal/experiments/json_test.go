package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"kodan/internal/hw"
)

func TestWriteJSONFig8Rows(t *testing.T) {
	rows := []Fig8Row{
		{Target: hw.Orin15W, App: 1, BentDVD: 0.48, DirectDVD: 0.52, KodanDVD: 0.95},
		{Target: hw.GTX1070Ti, App: 2, BentDVD: 0.48, DirectDVD: 0.7, KodanDVD: 0.96},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0]["Target"] != "Orin 15W" || out[1]["Target"] != "1070 Ti" {
		t.Fatalf("stringer fields = %v, %v", out[0]["Target"], out[1]["Target"])
	}
	// Numbers stay numeric, not strings.
	if dvd, ok := out[0]["KodanDVD"].(float64); !ok || dvd != 0.95 {
		t.Fatalf("KodanDVD = %v (%T)", out[0]["KodanDVD"], out[0]["KodanDVD"])
	}
	if app, ok := out[1]["App"].(float64); !ok || app != 2 {
		t.Fatalf("App = %v (%T)", out[1]["App"], out[1]["App"])
	}
}

func TestWriteJSONDurationsAsSeconds(t *testing.T) {
	rows := []Fig9Row{{
		Target: hw.Orin15W, App: 7,
		DirectTime: 247 * time.Second,
		KodanTime:  12*time.Second + 900*time.Millisecond,
		Deadline:   24 * time.Second,
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out[0]["DirectTime"] != 247.0 || out[0]["KodanTime"] != 12.9 {
		t.Fatalf("duration fields = %v, %v", out[0]["DirectTime"], out[0]["KodanTime"])
	}
}

func TestWriteJSONErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, 42); err == nil {
		t.Fatal("non-slice accepted")
	}
	if err := WriteJSON(&buf, []Fig8Row{}); err == nil {
		t.Fatal("empty slice accepted")
	}
	if err := WriteJSON(&buf, []int{1, 2}); err == nil {
		t.Fatal("non-struct slice accepted")
	}
}
