package experiments

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kodan/internal/fault"
	"kodan/internal/hw"
	"kodan/internal/sim"
)

// renderHybridPlan runs the sweep on a fresh quick lab at the given worker
// count and returns the rendered table plus the typed rows.
func renderHybridPlan(t *testing.T, workers int) (string, []HybridPlanRow) {
	t.Helper()
	lab := NewLab(Quick)
	lab.Workers = workers
	rows, err := lab.HybridPlanSweepCtx(context.Background())
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return RenderHybridPlan(rows), rows
}

// TestHybridPlanDeterministicAcrossWorkers pins the sweep's determinism
// contract: render, CSV bytes, and JSON bytes are identical between the
// sequential path and the parallel path.
func TestHybridPlanDeterministicAcrossWorkers(t *testing.T) {
	seqRender, seqRows := renderHybridPlan(t, 1)
	parRender, parRows := renderHybridPlan(t, 4)
	if seqRender != parRender {
		t.Fatalf("render differs between Workers=1 and Workers=4:\n--- sequential\n%s\n--- parallel\n%s", seqRender, parRender)
	}
	sc, sj := encode(t, "hybridplan", seqRows)
	pc, pj := encode(t, "hybridplan", parRows)
	if !bytes.Equal(sc, pc) {
		t.Error("CSV bytes differ between worker counts")
	}
	if !bytes.Equal(sj, pj) {
		t.Error("JSON bytes differ between worker counts")
	}
}

// TestHybridPlanQuickGolden pins the Quick-size sweep render byte for
// byte: any change to the planner's cost model, the policy optimizer, the
// drain replay, or the simulation that shifts a number shows up here.
func TestHybridPlanQuickGolden(t *testing.T) {
	l := testLab(t)
	rows, err := l.HybridPlanSweep()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "hybridplan_quick.render.golden", []byte(RenderHybridPlan(rows)))
}

// TestHybridPlanOnboardRowMatchesBaseline asserts the onboard-only rows ARE
// the existing fault-free baseline — the same memoized selection logic every
// other figure uses — not a separate code path that approximates it.
func TestHybridPlanOnboardRowMatchesBaseline(t *testing.T) {
	l := testLab(t)
	rows, err := l.HybridPlanSweep()
	if err != nil {
		t.Fatal(err)
	}
	art, err := l.App(planApp)
	if err != nil {
		t.Fatal(err)
	}
	// The single-satellite onboard row must equal the reference deployment's
	// estimate bit for bit: the lab's Deployment() derives its capacity from
	// the same 1-sat day run the sweep block does.
	d, err := l.Deployment(hw.Orin15W)
	if err != nil {
		t.Fatal(err)
	}
	_, est := art.SelectionLogic(d)
	found := false
	for _, r := range rows {
		if r.Mode != "onboard" {
			continue
		}
		if r.OnboardPct != 100 || r.DownlinkPct != 0 || r.DeferPct != 0 || r.DropPct != 0 {
			t.Errorf("sats=%d: onboard row placements %+v, want pure onboard", r.Sats, r)
		}
		if r.Sats == 1 {
			found = true
			if r.DVD != est.DVD {
				t.Errorf("sats=1 onboard DVD %v != baseline selection logic %v", r.DVD, est.DVD)
			}
		}
	}
	if !found {
		t.Fatal("no sats=1 onboard row in sweep")
	}
}

// TestHybridPlanDeferralMonotoneInGroundCost checks the sweep-level view of
// the planner's monotonicity guarantee: within each constellation size,
// raising the ground-compute cost never increases the deferred fraction.
func TestHybridPlanDeferralMonotoneInGroundCost(t *testing.T) {
	l := testLab(t)
	rows, err := l.HybridPlanSweep()
	if err != nil {
		t.Fatal(err)
	}
	prev := map[int]float64{}
	seen := map[int]bool{}
	for _, r := range rows {
		if r.Mode != "planner" {
			continue
		}
		if seen[r.Sats] && r.DeferPct > prev[r.Sats]+1e-9 {
			t.Errorf("sats=%d: deferral rose to %.3f%% at ground cost %.2f", r.Sats, r.DeferPct, r.GroundCost)
		}
		prev[r.Sats], seen[r.Sats] = r.DeferPct, true
	}
	if len(seen) != len(l.SatCounts()) {
		t.Fatalf("planner rows cover %d satellite counts, want %d", len(seen), len(l.SatCounts()))
	}
}

// TestHybridPlanWithScheduleReplans is the fault-awareness gate: with every
// ground station out for the whole day the planner must re-plan — no bits
// placed on the link, and a placement mix different from the fault-free plan
// at the same cell.
func TestHybridPlanWithScheduleReplans(t *testing.T) {
	l := testLab(t)
	rows, err := l.HybridPlanSweep()
	if err != nil {
		t.Fatal(err)
	}
	gc := l.PlanGroundCosts()[0]
	var clear HybridPlanRow
	for _, r := range rows {
		if r.Mode == "planner" && r.Sats == 1 && r.GroundCost == gc {
			clear = r
		}
	}
	if clear.Mode == "" {
		t.Fatal("no fault-free planner row at sats=1")
	}
	if clear.DownlinkPct+clear.DeferPct <= 0 {
		t.Fatalf("fault-free plan puts nothing on the link (%+v); outage test needs link traffic to remove", clear)
	}

	sched := &fault.Schedule{}
	for _, st := range sim.Landsat8Config(l.Epoch, 24*time.Hour, 1).Stations {
		sched.Windows = append(sched.Windows, fault.Window{
			Kind:    fault.StationOutage,
			Station: st.Name,
			Start:   l.Epoch,
			End:     l.Epoch.Add(24 * time.Hour),
		})
	}
	dark, err := l.HybridPlanWithSchedule(context.Background(), 1, gc, sched)
	if err != nil {
		t.Fatal(err)
	}
	if dark.DownlinkPct+dark.DeferPct > 0 {
		t.Errorf("planner still schedules link traffic with every station out: %+v", dark)
	}
	if dark.OnboardPct == clear.OnboardPct && dark.DeferPct == clear.DeferPct &&
		dark.DownlinkPct == clear.DownlinkPct && dark.DropPct == clear.DropPct {
		t.Errorf("station outage did not change the plan: %+v", dark)
	}
}
