package experiments

import (
	"testing"
	"time"

	"kodan/internal/telemetry"
	"kodan/internal/telemetry/recorder"
)

// TestRecordedFigureOutputIdentical extends the telemetry-never-feeds-back
// gate to the flight recorder: a background sampler reading the shared
// registry (at 1ms — a thousand times hotter than the production default)
// concurrently with the figure computation must not perturb the output at
// any worker count.
//
// On a single-CPU machine the CPU-bound figure can starve the sampler
// goroutine for a whole run, so the test repeats fresh-lab runs (each one
// recomputing from scratch — Lab memoization is per-Lab) until the
// recorder has provably sampled mid-computation, checking every run's
// output against the untraced baseline.
func TestRecordedFigureOutputIdentical(t *testing.T) {
	base := renderFig2Traced(t, 1, nil)
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		rec := recorder.New(reg, recorder.Options{Interval: time.Millisecond})
		rec.Start()

		samples := 0
		for i := 0; i < 50 && samples < 2; i++ {
			lab := NewLab(Quick)
			lab.Workers = workers
			lab.Probe = telemetry.Probe{Metrics: reg, Trace: telemetry.NewTracer(0)}
			rows, err := lab.Figure2Ctx(t.Context(), lab.SatCounts())
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, i, err)
			}
			if got := RenderFigure2(rows); got != base {
				t.Fatalf("workers=%d run %d with flight recorder: figure output diverged from baseline\n--- baseline:\n%s\n--- recorded:\n%s",
					workers, i, base, got)
			}
			samples = len(rec.Samples(time.Time{}))
		}
		rec.Stop()
		if samples < 2 {
			t.Fatalf("workers=%d: recorder captured %d samples across repeated runs — concurrent sampling never exercised", workers, samples)
		}
	}
}
