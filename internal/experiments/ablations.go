package experiments

import (
	"context"
	"fmt"
	"strings"

	"kodan/internal/app"
	"kodan/internal/core"
	"kodan/internal/ctxengine"
	"kodan/internal/hw"
	"kodan/internal/parallel"
)

// AblationKRow is one cluster-count setting of the context-count ablation.
type AblationKRow struct {
	// K is the forced context count.
	K int
	// EngineAcc is the context engine's agreement with its clustering.
	EngineAcc float64
	// SpecPrecision is the specialized models' overall precision at the
	// coarsest tiling.
	SpecPrecision float64
	// KodanDVD is the optimized selection logic's DVD on the Orin.
	KodanDVD float64
}

// AblationContextCount sweeps the number of generated contexts — the
// hyperparameter Section 3.3 calls "an exciting avenue for future work" —
// and measures its effect end to end: engine quality, specialized-model
// precision, and the final DVD of App 4 on the Orin. Each setting builds
// its own workspace (contexts shape everything downstream), so this is the
// most expensive ablation; it runs at the lab's Quick/Full dataset sizing.
func (l *Lab) AblationContextCount(ks []int) ([]AblationKRow, error) {
	return l.AblationContextCountCtx(context.Background(), ks)
}

// AblationContextCountCtx is AblationContextCount with cancellation; the
// per-K workspace builds run on the lab's worker pool.
func (l *Lab) AblationContextCountCtx(ctx context.Context, ks []int) ([]AblationKRow, error) {
	ctx, span := l.startFigure(ctx, "ablation-k")
	defer span.End()
	d, err := l.DeploymentCtx(ctx, hw.Orin15W)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationKRow, len(ks))
	err = parallel.ForEach(ctx, l.workers(), len(ks), func(ctx context.Context, j int) error {
		cfg := l.transformConfig()
		cfg.Context = ctxengine.DefaultConfig()
		cfg.Context.Ks = []int{ks[j]}
		ws, err := core.NewWorkspaceCtx(ctx, cfg)
		if err != nil {
			return err
		}
		art, err := ws.TransformAppCtx(ctx, app.App(4))
		if err != nil {
			return err
		}
		_, est := art.SelectionLogic(d)
		coarse := art.Profiles[len(art.Profiles)-1]
		suite := art.Suites[coarse.Tiling.PerSide]
		rows[j] = AblationKRow{
			K:             ws.Ctx.K,
			EngineAcc:     ws.Ctx.TrainAccuracy,
			SpecPrecision: suite.Quality.SpecialAll.Precision(),
			KodanDVD:      est.DVD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderAblationContextCount formats the context-count ablation.
func RenderAblationContextCount(rows []AblationKRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: context count (App 4 on Orin 15W)\n")
	fmt.Fprintf(&b, "%4s %10s %10s %9s\n", "K", "EngineAcc", "SpecPrec", "KodanDVD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %10.3f %10.3f %9.3f\n", r.K, r.EngineAcc, r.SpecPrecision, r.KodanDVD)
	}
	return b.String()
}

// AblationSourceRow compares context sources end to end.
type AblationSourceRow struct {
	// Source names the context generation path.
	Source string
	// K is the resulting context count.
	K int
	// EngineAcc is the engine's training agreement.
	EngineAcc float64
	// KodanDVD is the optimized DVD of App 4 on the Orin.
	KodanDVD float64
}

// AblationContextSource compares automatic (clustered) contexts against
// expert (geography-class) contexts end to end — Section 3.2 presents the
// two as alternatives.
func (l *Lab) AblationContextSource() ([]AblationSourceRow, error) {
	return l.AblationContextSourceCtx(context.Background())
}

// AblationContextSourceCtx is AblationContextSource with cancellation; the
// two workspace builds run on the lab's worker pool.
func (l *Lab) AblationContextSourceCtx(ctx context.Context) ([]AblationSourceRow, error) {
	ctx, span := l.startFigure(ctx, "ablation-source")
	defer span.End()
	d, err := l.DeploymentCtx(ctx, hw.Orin15W)
	if err != nil {
		return nil, err
	}
	sources := []struct {
		name string
		s    ctxengine.Source
	}{{"automatic", ctxengine.Auto}, {"expert", ctxengine.Expert}}
	rows := make([]AblationSourceRow, len(sources))
	err = parallel.ForEach(ctx, l.workers(), len(sources), func(ctx context.Context, j int) error {
		src := sources[j]
		cfg := l.transformConfig()
		cfg.Context = ctxengine.DefaultConfig()
		cfg.Context.Source = src.s
		ws, err := core.NewWorkspaceCtx(ctx, cfg)
		if err != nil {
			return err
		}
		art, err := ws.TransformAppCtx(ctx, app.App(4))
		if err != nil {
			return err
		}
		_, est := art.SelectionLogic(d)
		rows[j] = AblationSourceRow{
			Source:    src.name,
			K:         ws.Ctx.K,
			EngineAcc: ws.Ctx.TrainAccuracy,
			KodanDVD:  est.DVD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderAblationContextSource formats the source ablation.
func RenderAblationContextSource(rows []AblationSourceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: expert vs automatic contexts (App 4 on Orin 15W)\n")
	fmt.Fprintf(&b, "%-10s %4s %10s %9s\n", "Source", "K", "EngineAcc", "KodanDVD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %4d %10.3f %9.3f\n", r.Source, r.K, r.EngineAcc, r.KodanDVD)
	}
	return b.String()
}
