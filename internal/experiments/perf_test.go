package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(size string, parallel int, timings map[string]float64) TimingReport {
	r := TimingReport{Size: size, Parallel: parallel}
	// Deterministic order keeps failures readable.
	for _, key := range []string{"table1", "fig2", "fig8"} {
		if s, ok := timings[key]; ok {
			r.Figures = append(r.Figures, FigureTiming{Key: key, WallSeconds: s})
		}
	}
	return r
}

func TestTimingReportRoundTrip(t *testing.T) {
	in := report("quick", 2, map[string]float64{"table1": 0.0001, "fig2": 1.5})
	var buf bytes.Buffer
	if err := WriteTimingReport(&buf, in); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "timings.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTimingReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size != "quick" || out.Parallel != 2 || len(out.Figures) != 2 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if out.Figures[1].Key != "fig2" || out.Figures[1].WallSeconds != 1.5 {
		t.Fatalf("figure mangled: %+v", out.Figures[1])
	}
}

func TestCompareTimingsFlagsRegressions(t *testing.T) {
	baseline := report("quick", 0, map[string]float64{"table1": 0.1, "fig2": 1.0, "fig8": 2.0})
	current := report("quick", 0, map[string]float64{"fig2": 1.2, "fig8": 4.0})
	regs, skipped, err := CompareTimings(baseline, current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "table1") {
		t.Errorf("skipped = %v, want table1 (baseline-only)", skipped)
	}
	// fig2 grew 20% (under threshold); fig8 doubled (over).
	if len(regs) != 1 || regs[0].Key != "fig8" {
		t.Fatalf("regressions = %+v, want exactly fig8", regs)
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Errorf("fig8 ratio = %v, want ~2.0", regs[0].Ratio)
	}
}

// TestCompareTimingsFloorsJitter: figures faster than the floor on both
// sides never regress, no matter the relative jitter — an 80µs table
// "tripling" to 240µs is noise, not a regression.
func TestCompareTimingsFloorsJitter(t *testing.T) {
	baseline := report("quick", 0, map[string]float64{"table1": 0.00008})
	current := report("quick", 0, map[string]float64{"table1": 0.00024})
	regs, _, err := CompareTimings(baseline, current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor jitter flagged as regression: %+v", regs)
	}

	// But a genuinely slow current against a sub-floor baseline does trip:
	// the baseline is floored UP to 50ms, and 0.2s is 4x that.
	current = report("quick", 0, map[string]float64{"table1": 0.2})
	regs, _, err = CompareTimings(baseline, current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("4x-over-floor slowdown not flagged: %+v", regs)
	}
}

// TestCompareTimingsNegativeThresholdInjectsRegression: a negative
// threshold makes every compared figure fail — the synthetic-regression
// switch the harness's own gate test uses to prove the nonzero-exit path
// without actually slowing anything down.
func TestCompareTimingsNegativeThreshold(t *testing.T) {
	same := report("quick", 0, map[string]float64{"fig2": 1.0, "fig8": 2.0})
	regs, _, err := CompareTimings(same, same, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("negative threshold flagged %d figures, want all 2", len(regs))
	}
}

func TestCompareTimingsShapeMismatch(t *testing.T) {
	a := report("quick", 0, map[string]float64{"fig2": 1})
	for _, b := range []TimingReport{
		report("full", 0, map[string]float64{"fig2": 1}),
		report("quick", 4, map[string]float64{"fig2": 1}),
	} {
		if _, _, err := CompareTimings(a, b, 0.5); err == nil {
			t.Errorf("shape mismatch (%s/p%d vs %s/p%d) not rejected", a.Size, a.Parallel, b.Size, b.Parallel)
		}
	}
}

func TestCompareTimingsSortsWorstFirst(t *testing.T) {
	baseline := report("quick", 0, map[string]float64{"fig2": 1.0, "fig8": 1.0})
	current := report("quick", 0, map[string]float64{"fig2": 2.0, "fig8": 5.0})
	regs, _, err := CompareTimings(baseline, current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Key != "fig8" {
		t.Fatalf("regressions not sorted worst-first: %+v", regs)
	}
}

func TestRenderTimingComparison(t *testing.T) {
	out := RenderTimingComparison(nil, nil, 0.5)
	if !strings.Contains(out, "no regressions") {
		t.Errorf("clean render = %q", out)
	}
	out = RenderTimingComparison(
		[]Regression{{Key: "fig8", Baseline: 2, Current: 4, Ratio: 2}},
		[]string{"fig9 (not in current run)"}, 0.5)
	for _, want := range []string{"fig8", "2.00x", "fig9", "skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReadTimingReportErrors(t *testing.T) {
	if _, err := ReadTimingReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline file not an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTimingReport(bad); err == nil {
		t.Error("malformed baseline not an error")
	}
}
