package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// figureOutputs runs every figure of a lab and returns, per figure key,
// the rendered table plus its typed rows for CSV/JSON export.
type figureOutput struct {
	render string
	rows   interface{}
}

func figureOutputs(t *testing.T, l *Lab) map[string]figureOutput {
	t.Helper()
	out := map[string]figureOutput{}
	add := func(key, render string, rows interface{}, err error) {
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		out[key] = figureOutput{render, rows}
	}
	f2, err := l.Figure2(l.SatCounts())
	add("fig2", RenderFigure2(f2), f2, err)
	f3, err := l.Figure3(l.SatCounts())
	add("fig3", RenderFigure3(f3), f3, err)
	f4, err := l.Figure4()
	add("fig4", RenderFigure4(f4), f4, err)
	f5, err := l.Figure5(l.SatCounts())
	add("fig5", RenderFigure5(f5), f5, err)
	f8, err := l.Figure8()
	add("fig8", RenderFigure8(f8), f8, err)
	f9, err := l.Figure9()
	add("fig9", RenderFigure9(f9), f9, err)
	f10, err := l.Figure10()
	add("fig10", RenderFigure10(f10), f10, err)
	f11, err := l.Figure11()
	add("fig11", RenderFigure11(f11), f11, err)
	f12, err := l.Figure12()
	add("fig12", RenderFigure12(f12), f12, err)
	f13, err := l.Figure13()
	add("fig13", RenderFigure13(f13), f13, err)
	f14, err := l.Figure14()
	add("fig14", RenderFigure14(f14), f14, err)
	f15, err := l.Figure15()
	add("fig15", RenderFigure15(f15), f15, err)
	hp, err := l.HybridPlanSweep()
	add("hybridplan", RenderHybridPlan(hp), hp, err)
	return out
}

// encode returns a figure's CSV and JSON export bytes.
func encode(t *testing.T, key string, rows interface{}) (csv, json []byte) {
	t.Helper()
	var c, j bytes.Buffer
	if err := WriteCSV(&c, rows); err != nil {
		t.Fatalf("%s: WriteCSV: %v", key, err)
	}
	if err := WriteJSON(&j, rows); err != nil {
		t.Fatalf("%s: WriteJSON: %v", key, err)
	}
	return c.Bytes(), j.Bytes()
}

// TestFiguresDeterministicAcrossWorkers is the engine's end-to-end
// contract: every figure — rendered table, CSV bytes, and JSON bytes — is
// identical between the sequential path (Workers=1) and the parallel path
// (Workers=4).
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	seq := NewLab(Quick)
	seq.Workers = 1
	par := NewLab(Quick)
	par.Workers = 4

	seqOut := figureOutputs(t, seq)
	parOut := figureOutputs(t, par)

	if len(seqOut) != len(parOut) {
		t.Fatalf("figure sets differ: %d vs %d", len(seqOut), len(parOut))
	}
	for key, s := range seqOut {
		p, ok := parOut[key]
		if !ok {
			t.Errorf("%s: missing from parallel lab", key)
			continue
		}
		if s.render != p.render {
			t.Errorf("%s: render differs between Workers=1 and Workers=4:\n--- sequential\n%s\n--- parallel\n%s", key, s.render, p.render)
			continue
		}
		sc, sj := encode(t, key, s.rows)
		pc, pj := encode(t, key, p.rows)
		if !bytes.Equal(sc, pc) {
			t.Errorf("%s: CSV bytes differ between worker counts", key)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("%s: JSON bytes differ between worker counts", key)
		}
	}
}

// TestFigure2ThirdWorkerCount re-runs the pure-simulation figure at a
// third, odd worker count (one that does not divide the sweep evenly) and
// at the GOMAXPROCS default, pinning the engine's scheduling-independence
// beyond the two counts the full sweep above covers.
func TestFigure2ThirdWorkerCount(t *testing.T) {
	render := func(workers int) string {
		l := NewLab(Quick)
		l.Workers = workers
		rows, err := l.Figure2(l.SatCounts())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return RenderFigure2(rows)
	}
	want := render(1)
	for _, workers := range []int{3, 0} {
		if got := render(workers); got != want {
			t.Errorf("Figure2 differs at Workers=%d:\n--- sequential\n%s\n--- Workers=%d\n%s", workers, want, workers, got)
		}
	}
}

// goldenCompare checks got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./internal/experiments -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}

// TestTable1Golden pins Table 1's render and CSV export byte for byte.
func TestTable1Golden(t *testing.T) {
	rows := Table1()
	goldenCompare(t, "table1.render.golden", []byte(RenderTable1(rows)))
	csv, _ := encode(t, "table1", rows)
	goldenCompare(t, "table1.csv.golden", csv)
}

// TestFigure8QuickGolden pins the Quick-size Figure 8 render byte for
// byte: any change to the transformation pipeline, the policy optimizer,
// the simulation, or the parallel engine that shifts a number shows up
// here as a diff.
func TestFigure8QuickGolden(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig8_quick.render.golden", []byte(RenderFigure8(rows)))
}

// TestFigure8QuantizedQuickGolden pins the int8-inference variant of
// Figure 8 byte for byte, alongside the float golden above: quantization
// drift (a changed rounding rule, calibration set, or scale fallback)
// shows up here even when the float pipeline is untouched.
func TestFigure8QuantizedQuickGolden(t *testing.T) {
	l := testLab(t)
	rows, err := l.Figure8Quantized()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig8q_quick.render.golden", []byte(RenderFigure8Quantized(rows)))
}

// TestFigure8QuantizedClose is the experiment-level equivalence bound:
// per-layer symmetric int8 quantization may cost data value density, but
// only a little — every (target, app) cell's quantized DVD stays within
// an absolute tolerance of the float DVD, and its float column matches
// Figure 8's Kodan column exactly (the two sweeps share the memoized
// float artifacts).
func TestFigure8QuantizedClose(t *testing.T) {
	const tolerance = 0.05
	l := testLab(t)
	qrows, err := l.Figure8Quantized()
	if err != nil {
		t.Fatal(err)
	}
	frows, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(qrows) != len(frows) {
		t.Fatalf("row counts differ: %d vs %d", len(qrows), len(frows))
	}
	for i, q := range qrows {
		f := frows[i]
		if q.Target != f.Target || q.App != f.App {
			t.Fatalf("row %d: pair mismatch %v/%d vs %v/%d", i, q.Target, q.App, f.Target, f.App)
		}
		if q.FloatDVD != f.KodanDVD {
			t.Errorf("%v App %d: float column %v != Figure 8 Kodan %v", q.Target, q.App, q.FloatDVD, f.KodanDVD)
		}
		if e := q.QuantErr(); e < -tolerance || e > tolerance {
			t.Errorf("%v App %d: quantization error %+.4f exceeds ±%.2f (float %.4f, int8 %.4f)",
				q.Target, q.App, e, tolerance, q.FloatDVD, q.QuantDVD)
		}
	}
}
