package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file is the comparison half of the perf-regression harness:
// kodan-bench records one FigureTiming per generated table/figure into a
// TimingReport (bench/BENCH_timings.json is the committed trajectory),
// and CompareTimings judges a fresh run against a baseline report,
// flagging every figure whose wall time grew beyond a threshold. The
// harness answers "did this PR make the hot path slower?" mechanically —
// `make bench-check` exits nonzero on a regression.

// FigureTiming is one figure's recorded wall time.
type FigureTiming struct {
	Key         string  `json:"key"`
	WallSeconds float64 `json:"wallSeconds"`
}

// TimingReport is the timing document of one kodan-bench run.
type TimingReport struct {
	// Size and Parallel pin the run shape; comparing reports produced at
	// different shapes is meaningless and CompareTimings refuses it.
	Size     string         `json:"size"`
	Parallel int            `json:"parallel"`
	Figures  []FigureTiming `json:"figures"`
}

// WriteTimingReport serializes the report as indented JSON.
func WriteTimingReport(w io.Writer, r TimingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadTimingReport loads a report written by WriteTimingReport.
func ReadTimingReport(path string) (TimingReport, error) {
	var r TimingReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("experiments: timing baseline: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("experiments: timing baseline %s: %w", path, err)
	}
	return r, nil
}

// Regression is one figure whose wall time grew past the threshold.
type Regression struct {
	Key      string
	Baseline float64 // seconds (before flooring)
	Current  float64 // seconds (before flooring)
	// Ratio is floored current over floored baseline — the number the
	// threshold was applied to.
	Ratio float64
}

// timingFloorSeconds absorbs scheduler jitter on near-instant figures:
// both sides of a comparison are floored here before the ratio is taken,
// so a table that renders in 80µs one run and 300µs the next never trips
// the gate.
const timingFloorSeconds = 0.05

// CompareTimings flags every figure in current whose (floored) wall time
// exceeds the (floored) baseline by more than threshold — threshold 0.5
// means "more than 50% slower fails". Figures present on only one side
// are reported in skipped, never judged. A negative threshold fails every
// compared figure (the synthetic-regression switch the harness tests use).
// Mismatched run shapes (size/parallel) are an error.
func CompareTimings(baseline, current TimingReport, threshold float64) (regressions []Regression, skipped []string, err error) {
	if baseline.Size != current.Size || baseline.Parallel != current.Parallel {
		return nil, nil, fmt.Errorf(
			"experiments: timing reports have different shapes: baseline size=%s parallel=%d vs current size=%s parallel=%d",
			baseline.Size, baseline.Parallel, current.Size, current.Parallel)
	}
	base := make(map[string]float64, len(baseline.Figures))
	for _, f := range baseline.Figures {
		base[f.Key] = f.WallSeconds
	}
	seen := make(map[string]bool, len(current.Figures))
	for _, f := range current.Figures {
		seen[f.Key] = true
		b, ok := base[f.Key]
		if !ok {
			skipped = append(skipped, f.Key+" (not in baseline)")
			continue
		}
		fb, fc := b, f.WallSeconds
		if fb < timingFloorSeconds {
			fb = timingFloorSeconds
		}
		if fc < timingFloorSeconds {
			fc = timingFloorSeconds
		}
		if fc > fb*(1+threshold) {
			regressions = append(regressions, Regression{
				Key: f.Key, Baseline: b, Current: f.WallSeconds, Ratio: fc / fb,
			})
		}
	}
	for _, f := range baseline.Figures {
		if !seen[f.Key] {
			skipped = append(skipped, f.Key+" (not in current run)")
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Ratio > regressions[j].Ratio })
	sort.Strings(skipped)
	return regressions, skipped, nil
}

// RenderTimingComparison formats a comparison outcome for stderr.
func RenderTimingComparison(regressions []Regression, skipped []string, threshold float64) string {
	var b strings.Builder
	if len(regressions) == 0 {
		fmt.Fprintf(&b, "bench-check: no regressions beyond %.0f%% threshold\n", threshold*100)
	} else {
		fmt.Fprintf(&b, "bench-check: %d figure(s) regressed beyond %.0f%% threshold:\n", len(regressions), threshold*100)
		for _, r := range regressions {
			fmt.Fprintf(&b, "  %-16s baseline %8.3fs -> current %8.3fs (%.2fx)\n",
				r.Key, r.Baseline, r.Current, r.Ratio)
		}
	}
	for _, s := range skipped {
		fmt.Fprintf(&b, "  skipped: %s\n", s)
	}
	return b.String()
}
