package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kodan/internal/fault"
	"kodan/internal/parallel"
	"kodan/internal/sim"
	"kodan/internal/telemetry"
)

// resilienceSats is the constellation size of the resilience sweep: small
// enough that Quick runs stay sub-second, large enough that per-satellite
// faults (dropouts, resets) do not zero the whole run.
const resilienceSats = 2

// ResilienceIntensities returns the fault-intensity sweep points at this
// size. Intensity 0 is always first — it is the fault-free baseline every
// other row's retention is measured against.
func (l *Lab) ResilienceIntensities() []float64 {
	if l.Size == Quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1}
}

// ResilienceRow is one fault intensity of the resilience sweep.
type ResilienceRow struct {
	// Intensity scales the generated fault schedule (0 = fault-free).
	Intensity float64
	// Faults is the number of fault windows in the generated schedule.
	Faults int
	// Frames is the constellation's observed frame count for the day.
	Frames int
	// DownFrames is the downlinkable frame capacity (fade-derated).
	DownFrames float64
	// DVD is the high-value frames downlinked per day under ideal OEC
	// filtering: min(capacity, high-value observed).
	DVD float64
	// Retention is DVD relative to the intensity-0 baseline.
	Retention float64
}

// ResilienceSweep sweeps fault intensity over a one-day two-satellite
// mission and reports how downlinked value degrades. Each intensity's
// fault schedule is generated deterministically from the lab seed, so the
// whole table is byte-identical across runs and worker counts, and the
// intensity-0 row runs the plain fault-free path (no injector attached).
func (l *Lab) ResilienceSweep() ([]ResilienceRow, error) {
	return l.ResilienceSweepCtx(context.Background())
}

// ResilienceSweepCtx is ResilienceSweep with cancellation; the intensity
// sweep runs on the lab's worker pool.
func (l *Lab) ResilienceSweepCtx(ctx context.Context) ([]ResilienceRow, error) {
	ctx, span := l.startFigure(ctx, "resilience")
	defer span.End()
	intensities := l.ResilienceIntensities()
	rows := make([]ResilienceRow, len(intensities))
	err := parallel.ForEach(ctx, l.workers(), len(intensities), func(ctx context.Context, i int) error {
		row, err := l.resilienceRow(ctx, intensities[i], uint64(i))
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := rows[0].DVD
	for i := range rows {
		if base > 0 {
			rows[i].Retention = rows[i].DVD / base
		}
	}
	return rows, nil
}

// resilienceRow evaluates one intensity. The schedule seed mixes the
// sweep index so each intensity draws an independent fault pattern.
func (l *Lab) resilienceRow(ctx context.Context, intensity float64, idx uint64) (ResilienceRow, error) {
	ctx, sp := telemetry.StartSpan(ctx, "resilience.row")
	defer sp.End()
	// Fault intensity is a variant attribute: trace diffs of a degraded
	// vs fault-free run label the sweep point that changed.
	sp.Set("intensity", fmt.Sprintf("%g", intensity))
	cfg := sim.Landsat8Config(l.Epoch, 24*time.Hour, resilienceSats)
	cfg.Workers = l.Workers
	var res *sim.Result
	var err error
	nFaults := 0
	if intensity == 0 {
		// The baseline shares the memoized fault-free day run.
		res, err = l.dayRun(ctx, resilienceSats)
	} else {
		names := make([]string, len(cfg.Stations))
		for s, st := range cfg.Stations {
			names[s] = st.Name
		}
		sched := fault.Generate(fault.GenConfig{
			Seed:      l.Seed ^ (idx << 32),
			Start:     l.Epoch,
			Span:      24 * time.Hour,
			Intensity: intensity,
			Stations:  names,
			Sats:      resilienceSats,
		})
		nFaults = len(sched.Windows)
		res, err = sim.RunCtx(fault.WithInjector(ctx, fault.NewInjector(sched)), cfg)
	}
	if err != nil {
		return ResilienceRow{}, err
	}
	observed := float64(res.FramesObserved())
	capacity := res.FrameCapacity()
	hv := observed * (1 - cloudyPrevalence)
	dvd := capacity
	if dvd > hv {
		dvd = hv
	}
	return ResilienceRow{
		Intensity:  intensity,
		Faults:     nFaults,
		Frames:     res.FramesObserved(),
		DownFrames: capacity,
		DVD:        dvd,
	}, nil
}

// ResilienceWithSchedule evaluates one explicit fault schedule (e.g.
// loaded from JSON) against the fault-free baseline, returning the
// faulted row with Retention filled in. Intensity is reported as -1 to
// mark the schedule as external.
func (l *Lab) ResilienceWithSchedule(ctx context.Context, sched *fault.Schedule) (ResilienceRow, error) {
	ctx, span := l.startFigure(ctx, "resilience")
	defer span.End()
	baseRow, err := l.resilienceRow(ctx, 0, 0)
	if err != nil {
		return ResilienceRow{}, err
	}
	cfg := sim.Landsat8Config(l.Epoch, 24*time.Hour, resilienceSats)
	cfg.Workers = l.Workers
	res, err := sim.RunCtx(fault.WithInjector(ctx, fault.NewInjector(sched)), cfg)
	if err != nil {
		return ResilienceRow{}, err
	}
	observed := float64(res.FramesObserved())
	capacity := res.FrameCapacity()
	hv := observed * (1 - cloudyPrevalence)
	dvd := capacity
	if dvd > hv {
		dvd = hv
	}
	row := ResilienceRow{
		Intensity:  -1,
		Faults:     len(sched.Windows),
		Frames:     res.FramesObserved(),
		DownFrames: capacity,
		DVD:        dvd,
	}
	if baseRow.DVD > 0 {
		row.Retention = row.DVD / baseRow.DVD
	}
	return row, nil
}

// RenderResilience formats the resilience sweep.
func RenderResilience(rows []ResilienceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience sweep: downlinked value vs fault intensity (%d sats, 1 day, ideal OEC)\n", resilienceSats)
	fmt.Fprintf(&b, "%9s %7s %8s %11s %9s %10s\n", "Intensity", "Faults", "Frames", "DownFrames", "DVD", "Retention")
	for _, r := range rows {
		label := fmt.Sprintf("%9.2f", r.Intensity)
		if r.Intensity < 0 {
			label = fmt.Sprintf("%9s", "file")
		}
		fmt.Fprintf(&b, "%s %7d %8d %11.1f %9.1f %9.1f%%\n",
			label, r.Faults, r.Frames, r.DownFrames, r.DVD, 100*r.Retention)
	}
	return b.String()
}
