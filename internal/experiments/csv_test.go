package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"kodan/internal/hw"
)

func TestWriteCSVFig8Rows(t *testing.T) {
	rows := []Fig8Row{
		{Target: hw.Orin15W, App: 1, BentDVD: 0.48, DirectDVD: 0.52, KodanDVD: 0.95},
		{Target: hw.GTX1070Ti, App: 2, BentDVD: 0.48, DirectDVD: 0.7, KodanDVD: 0.96},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "Target" || recs[0][4] != "KodanDVD" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "Orin 15W" || recs[2][0] != "1070 Ti" {
		t.Fatalf("stringer column = %v, %v", recs[1][0], recs[2][0])
	}
	if !strings.HasPrefix(recs[1][4], "0.95") {
		t.Fatalf("float column = %v", recs[1][4])
	}
}

func TestWriteCSVDurations(t *testing.T) {
	rows := []Fig9Row{{
		Target: hw.Orin15W, App: 7,
		DirectTime: 247 * time.Second,
		KodanTime:  12*time.Second + 900*time.Millisecond,
		Deadline:   24 * time.Second,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(&buf).ReadAll()
	if recs[1][2] != "247.000" || recs[1][3] != "12.900" {
		t.Fatalf("duration cells = %v", recs[1])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 42); err == nil {
		t.Fatal("non-slice accepted")
	}
	if err := WriteCSV(&buf, []Fig8Row{}); err == nil {
		t.Fatal("empty slice accepted")
	}
	if err := WriteCSV(&buf, []int{1, 2}); err == nil {
		t.Fatal("non-struct slice accepted")
	}
}
