package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/parallel"
	"kodan/internal/sense"
	"kodan/internal/sim"
	"kodan/internal/value"
	"kodan/internal/wrs"
)

// Table1Row is one application of Table 1.
type Table1Row struct {
	App          int
	Architecture string
	Ms1070Ti     float64
	MsI7         float64
	MsOrin       float64
}

// Table1 reproduces Table 1: per-application architectures and per-tile
// execution times on each hardware target.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, a := range app.Apps() {
		rows = append(rows, Table1Row{
			App:          a.Index,
			Architecture: a.Name,
			Ms1070Ti:     a.PerTileMs[hw.GTX1070Ti],
			MsI7:         a.PerTileMs[hw.I7_7800X],
			MsOrin:       a.PerTileMs[hw.Orin15W],
		})
	}
	return rows
}

// RenderTable1 formats Table 1 as the paper prints it.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: per-tile processing time (ms)\n")
	fmt.Fprintf(&b, "%-6s %-32s %9s %9s %9s\n", "Name", "ML Architecture", "1070 Ti", "i7-7800", "Orin 15W")
	for _, r := range rows {
		fmt.Fprintf(&b, "App %-2d %-32s %9.1f %9.1f %9.1f\n", r.App, r.Architecture, r.Ms1070Ti, r.MsI7, r.MsOrin)
	}
	return b.String()
}

// Fig2Row is one satellite count of Figure 2 (per orbit revolution).
type Fig2Row struct {
	Sats       int
	FramesSeen int
	FramesDown float64
	DownFrac   float64
}

// Figure2 reproduces Figure 2: global frames seen versus downlinked per
// orbit period for a hyperspectral constellation. A lone satellite's
// downlink covers ~2% of its observations; added satellites first claim
// idle ground-station time, then saturate the segment.
func (l *Lab) Figure2(satCounts []int) ([]Fig2Row, error) {
	return l.Figure2Ctx(context.Background(), satCounts)
}

// Figure2Ctx is Figure2 with cancellation; the satellite-count sweep runs
// on the lab's worker pool.
func (l *Lab) Figure2Ctx(ctx context.Context, satCounts []int) ([]Fig2Row, error) {
	ctx, span := l.startFigure(ctx, "fig2")
	defer span.End()
	rows := make([]Fig2Row, len(satCounts))
	err := parallel.ForEach(ctx, l.workers(), len(satCounts), func(ctx context.Context, i int) error {
		n := satCounts[i]
		cfg := sim.Landsat8Config(l.Epoch, 99*time.Minute, n)
		cfg.Camera = sense.Landsat8Hyper()
		cfg.Workers = l.Workers
		res, err := sim.RunCtx(ctx, cfg)
		if err != nil {
			return err
		}
		seen := res.FramesObserved()
		down := res.FrameCapacity()
		rows[i] = Fig2Row{
			Sats:       n,
			FramesSeen: seen,
			FramesDown: down,
			DownFrac:   down / float64(seen),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure2 formats Figure 2's series.
func RenderFigure2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: global frames per orbit period (hyperspectral 10K frames)\n")
	fmt.Fprintf(&b, "%5s %12s %12s %10s\n", "Sats", "FramesSeen", "FramesDown", "DownFrac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d %12d %12.1f %9.1f%%\n", r.Sats, r.FramesSeen, r.FramesDown, 100*r.DownFrac)
	}
	return b.String()
}

// Fig3Row is one satellite count of Figure 3.
type Fig3Row struct {
	Sats         int
	UniqueScenes int
	CoverageFrac float64
}

// Figure3 reproduces Figure 3: unique global frames observed per day
// versus satellite count. Daily global coverage (the full 57,784-scene
// WRS-2 grid) requires tens of satellites.
func (l *Lab) Figure3(satCounts []int) ([]Fig3Row, error) {
	return l.Figure3Ctx(context.Background(), satCounts)
}

// Figure3Ctx is Figure3 with cancellation; the satellite-count sweep runs
// on the lab's worker pool.
func (l *Lab) Figure3Ctx(ctx context.Context, satCounts []int) ([]Fig3Row, error) {
	ctx, span := l.startFigure(ctx, "fig3")
	defer span.End()
	total := wrs.Landsat8Grid().TotalScenes()
	rows := make([]Fig3Row, len(satCounts))
	err := parallel.ForEach(ctx, l.workers(), len(satCounts), func(ctx context.Context, i int) error {
		n := satCounts[i]
		// Uncoordinated phasing: independently-operated satellites do not
		// phase-lock to the reference grid, so coverage accumulates with
		// coupon-collector statistics (an ideally phased constellation
		// reaches full daily coverage with just 16 satellites; see
		// EXPERIMENTS.md). The phases are drawn from a seeded stream
		// before any fan-out, so they are identical at every worker count.
		cfg := sim.Landsat8Config(l.Epoch, 24*time.Hour, n)
		cfg.RandomPhases = true
		cfg.PhaseSeed = l.Seed
		cfg.Workers = l.Workers
		res, err := sim.RunCtx(ctx, cfg)
		if err != nil {
			return err
		}
		u := res.UniqueScenes()
		rows[i] = Fig3Row{Sats: n, UniqueScenes: u, CoverageFrac: float64(u) / float64(total)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure3 formats Figure 3's series.
func RenderFigure3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: unique global frames observed per day (grid = %d scenes)\n", wrs.Landsat8Grid().TotalScenes())
	fmt.Fprintf(&b, "%5s %14s %10s\n", "Sats", "UniqueScenes", "Coverage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d %14d %9.1f%%\n", r.Sats, r.UniqueScenes, 100*r.CoverageFrac)
	}
	return b.String()
}

// cloudyPrevalence is the global cloud rate the paper uses in its
// motivation (67% of satellite images are obscured by clouds), leaving
// one third of observations high-value.
const cloudyPrevalence = 2.0 / 3.0

// Fig4Row is one column of Figure 4.
type Fig4Row struct {
	Column    string
	HighValue float64
	LowValue  float64
}

// Figure4 reproduces Figure 4: frames per satellite per day — observed,
// downlinked by a bent pipe, and downlinked by ideal OEC filtering (100%
// accuracy, zero execution time). Ideal filtering downlinks ~3x the
// high-value frames of the bent pipe.
func (l *Lab) Figure4() ([]Fig4Row, error) {
	return l.Figure4Ctx(context.Background())
}

// Figure4Ctx is Figure4 with cancellation.
func (l *Lab) Figure4Ctx(ctx context.Context) ([]Fig4Row, error) {
	ctx, span := l.startFigure(ctx, "fig4")
	defer span.End()
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	observed := m.FramesPerDay
	capacity := m.CapacityFrac * observed
	hv := observed * (1 - cloudyPrevalence)
	bentHigh := capacity * (1 - cloudyPrevalence)
	idealHigh := capacity
	if idealHigh > hv {
		idealHigh = hv
	}
	return []Fig4Row{
		{Column: "Observed on Orbit", HighValue: hv, LowValue: observed - hv},
		{Column: "Downlinked, Bent Pipe", HighValue: bentHigh, LowValue: capacity - bentHigh},
		{Column: "Downlinked, Ideal OEC", HighValue: idealHigh, LowValue: 0},
	}, nil
}

// RenderFigure4 formats Figure 4's columns.
func RenderFigure4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: frames per satellite per day (67%% cloudy)\n")
	fmt.Fprintf(&b, "%-24s %10s %10s\n", "Column", "HighValue", "LowValue")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.0f %10.0f\n", r.Column, r.HighValue, r.LowValue)
	}
	if len(rows) == 3 && rows[1].HighValue > 0 {
		fmt.Fprintf(&b, "ideal / bent-pipe high-value ratio: %.2fx\n", rows[2].HighValue/rows[1].HighValue)
	}
	return b.String()
}

// azaveaFrameTime is the measured frame processing time of the real cloud
// filter the paper deploys in Section 2.1.3 (1 m 38 s per frame).
const azaveaFrameTime = 98 * time.Second

// azaveaRecall and azaveaPrecision model the production cloud filter's
// frame-triage quality (it is a real model, not an oracle).
const (
	azaveaRecall    = 0.78
	azaveaPrecision = 0.78
)

// Fig5Row is one satellite count of Figure 5.
type Fig5Row struct {
	Sats      int
	BentPct   float64
	DirectPct float64
}

// Figure5 reproduces Figure 5: the percentage of observed high-value data
// downlinked, bent pipe versus a directly deployed 98 s/frame cloud filter
// against the ~24 s frame deadline. The computational bottleneck lets the
// filter triage only deadline/98s of captures — the rest are downlinked
// raw exactly as a bent pipe would send them — so the downlink mix is only
// slightly enriched and the improvement is ~9-16% instead of the ideal 3x.
func (l *Lab) Figure5(satCounts []int) ([]Fig5Row, error) {
	return l.Figure5Ctx(context.Background(), satCounts)
}

// Figure5Ctx is Figure5 with cancellation; the satellite-count sweep runs
// on the lab's worker pool (concurrent day-long simulations are
// single-flight per count and shared with every other figure).
func (l *Lab) Figure5Ctx(ctx context.Context, satCounts []int) ([]Fig5Row, error) {
	ctx, span := l.startFigure(ctx, "fig5")
	defer span.End()
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	processedFrac := float64(m.Deadline) / float64(azaveaFrameTime)
	hvFrac := 1 - cloudyPrevalence
	rows := make([]Fig5Row, len(satCounts))
	err = parallel.ForEach(ctx, l.workers(), len(satCounts), func(ctx context.Context, i int) error {
		n := satCounts[i]
		res, err := l.dayRun(ctx, n)
		if err != nil {
			return err
		}
		observed := float64(res.FramesObserved())
		capacity := res.FrameCapacity()
		hvObserved := observed * hvFrac

		// Bent pipe: indiscriminate downlink at the dataset mix.
		bentBits, bentHigh := value.Drain([]value.Chunk{
			{Bits: observed, ValueBits: hvObserved},
		}, capacity)
		_ = bentBits

		// Direct deploy: the filter triages the frames it manages to
		// process, keeping predicted-clear ones (with its real precision
		// and recall); frames captured while the filter is busy join the
		// downlink queue raw. FIFO draining sends the resulting mix.
		processed := processedFrac * observed
		keptTrue := azaveaRecall * processed * hvFrac
		kept := keptTrue / azaveaPrecision
		raw := observed - processed
		_, directHigh := value.Drain([]value.Chunk{
			{Bits: kept, ValueBits: keptTrue},
			{Bits: raw, ValueBits: raw * hvFrac},
		}, capacity)

		rows[i] = Fig5Row{
			Sats:      n,
			BentPct:   100 * bentHigh / hvObserved,
			DirectPct: 100 * directHigh / hvObserved,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure5 formats Figure 5's series.
func RenderFigure5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: observed high-value data downlinked (98 s filter vs deadline)\n")
	fmt.Fprintf(&b, "%5s %10s %12s %12s\n", "Sats", "BentPipe", "DirectDeploy", "Improvement")
	for _, r := range rows {
		imp := 0.0
		if r.BentPct > 0 {
			imp = r.DirectPct/r.BentPct - 1
		}
		fmt.Fprintf(&b, "%5d %9.1f%% %11.1f%% %11.1f%%\n", r.Sats, r.BentPct, r.DirectPct, 100*imp)
	}
	return b.String()
}
