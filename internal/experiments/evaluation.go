package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kodan/internal/hw"
	"kodan/internal/parallel"
	"kodan/internal/policy"
	"kodan/internal/tiling"
)

// targetApp is one (hardware target, application) cell of the evaluation
// sweeps; the pairs are enumerated in render order before any fan-out so
// parallel rows land exactly where the sequential loop would put them.
type targetApp struct {
	target hw.Target
	app    int
}

// targetAppPairs enumerates every (target, app) cell in render order.
func targetAppPairs() []targetApp {
	var pairs []targetApp
	for _, target := range hw.Targets() {
		for i := 1; i <= 7; i++ {
			pairs = append(pairs, targetApp{target, i})
		}
	}
	return pairs
}

// Fig8Row is one (target, application) group of Figure 8.
type Fig8Row struct {
	Target    hw.Target
	App       int
	BentDVD   float64
	DirectDVD float64
	KodanDVD  float64
}

// Improvement returns Kodan's relative DVD improvement over the bent pipe
// — the paper's headline 89-97%.
func (r Fig8Row) Improvement() float64 {
	if r.BentDVD == 0 {
		return 0
	}
	return r.KodanDVD/r.BentDVD - 1
}

// Figure8 reproduces Figure 8: data value density of the bent pipe,
// direct deployment, and Kodan for every application on every hardware
// target.
func (l *Lab) Figure8() ([]Fig8Row, error) {
	return l.Figure8Ctx(context.Background())
}

// Figure8Ctx is Figure8 with cancellation; the (target, app) sweep runs
// on the lab's worker pool.
func (l *Lab) Figure8Ctx(ctx context.Context) ([]Fig8Row, error) {
	ctx, span := l.startFigure(ctx, "fig8")
	defer span.End()
	pairs := targetAppPairs()
	rows := make([]Fig8Row, len(pairs))
	err := parallel.ForEach(ctx, l.workers(), len(pairs), func(ctx context.Context, k int) error {
		p := pairs[k]
		d, err := l.DeploymentCtx(ctx, p.target)
		if err != nil {
			return err
		}
		art, err := l.AppCtx(ctx, p.app)
		if err != nil {
			return err
		}
		direct, _, err := directEstimate(art, d)
		if err != nil {
			return err
		}
		_, kodan := art.SelectionLogic(d)
		rows[k] = Fig8Row{
			Target:    p.target,
			App:       p.app,
			BentDVD:   bentEstimate(art, d).DVD,
			DirectDVD: direct.DVD,
			KodanDVD:  kodan.DVD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure8 formats Figure 8's bars.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: data value density by deployment\n")
	fmt.Fprintf(&b, "%-9s %-6s %9s %9s %9s %12s\n", "Target", "App", "BentPipe", "Direct", "Kodan", "Kodan/Bent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-6s %9.3f %9.3f %9.3f %+11.1f%%\n",
			r.Target, appLabel(r.App), r.BentDVD, r.DirectDVD, r.KodanDVD, 100*r.Improvement())
	}
	return b.String()
}

// Fig8QRow is one (target, application) group of the quantized Figure 8
// variant: Kodan's data value density with float inference versus the
// int8 quantized hot path, plus the quantization error the swap costs.
type Fig8QRow struct {
	Target   hw.Target
	App      int
	FloatDVD float64
	QuantDVD float64
}

// QuantErr returns the signed DVD cost of quantization (negative when the
// int8 path loses value density, zero when selection is unaffected).
func (r Fig8QRow) QuantErr() float64 { return r.QuantDVD - r.FloatDVD }

// Figure8Quantized reruns Figure 8's Kodan column with all suite
// predictions routed through the int8 quantized models.
func (l *Lab) Figure8Quantized() ([]Fig8QRow, error) {
	return l.Figure8QuantizedCtx(context.Background())
}

// Figure8QuantizedCtx is Figure8Quantized with cancellation; the
// (target, app) sweep runs on the lab's worker pool. The float column is
// the same artifact Figure 8 uses (and is memo-shared with it), so the
// comparison isolates exactly the inference-path change.
func (l *Lab) Figure8QuantizedCtx(ctx context.Context) ([]Fig8QRow, error) {
	ctx, span := l.startFigure(ctx, "fig8q")
	defer span.End()
	pairs := targetAppPairs()
	rows := make([]Fig8QRow, len(pairs))
	err := parallel.ForEach(ctx, l.workers(), len(pairs), func(ctx context.Context, k int) error {
		p := pairs[k]
		d, err := l.DeploymentCtx(ctx, p.target)
		if err != nil {
			return err
		}
		art, err := l.AppCtx(ctx, p.app)
		if err != nil {
			return err
		}
		artQ, err := l.AppVariantCtx(ctx, p.app, true)
		if err != nil {
			return err
		}
		_, float := art.SelectionLogic(d)
		_, quant := artQ.SelectionLogic(d)
		rows[k] = Fig8QRow{
			Target:   p.target,
			App:      p.app,
			FloatDVD: float.DVD,
			QuantDVD: quant.DVD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure8Quantized formats the float-vs-int8 comparison.
func RenderFigure8Quantized(rows []Fig8QRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (quantized): Kodan data value density, float vs int8 inference\n")
	fmt.Fprintf(&b, "%-9s %-6s %9s %9s %10s\n", "Target", "App", "Float", "Int8", "QuantErr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-6s %9.3f %9.3f %+10.3f\n",
			r.Target, appLabel(r.App), r.FloatDVD, r.QuantDVD, r.QuantErr())
	}
	return b.String()
}

// Fig9Row is one (target, application) group of Figure 9.
type Fig9Row struct {
	Target     hw.Target
	App        int
	DirectTime time.Duration
	KodanTime  time.Duration
	Deadline   time.Duration
}

// Figure9 reproduces Figure 9: time per frame under direct deployment
// versus Kodan, against the frame deadline.
func (l *Lab) Figure9() ([]Fig9Row, error) {
	return l.Figure9Ctx(context.Background())
}

// Figure9Ctx is Figure9 with cancellation; the (target, app) sweep runs
// on the lab's worker pool.
func (l *Lab) Figure9Ctx(ctx context.Context) ([]Fig9Row, error) {
	ctx, span := l.startFigure(ctx, "fig9")
	defer span.End()
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	pairs := targetAppPairs()
	rows := make([]Fig9Row, len(pairs))
	err = parallel.ForEach(ctx, l.workers(), len(pairs), func(ctx context.Context, k int) error {
		p := pairs[k]
		d, err := l.DeploymentCtx(ctx, p.target)
		if err != nil {
			return err
		}
		art, err := l.AppCtx(ctx, p.app)
		if err != nil {
			return err
		}
		direct, _, err := directEstimate(art, d)
		if err != nil {
			return err
		}
		_, kodan := art.SelectionLogic(d)
		rows[k] = Fig9Row{
			Target:     p.target,
			App:        p.app,
			DirectTime: direct.FrameTime,
			KodanTime:  kodan.FrameTime,
			Deadline:   m.Deadline,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure9 formats Figure 9's bars.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: time per frame (deadline %.1f s)\n", rows[0].Deadline.Seconds())
	fmt.Fprintf(&b, "%-9s %-6s %10s %10s %6s\n", "Target", "App", "Direct(s)", "Kodan(s)", "Meets")
	for _, r := range rows {
		meets := "no"
		if r.KodanTime <= r.Deadline {
			meets = "yes"
		}
		fmt.Fprintf(&b, "%-9s %-6s %10.1f %10.1f %6s\n",
			r.Target, appLabel(r.App), r.DirectTime.Seconds(), r.KodanTime.Seconds(), meets)
	}
	return b.String()
}

// Fig10Point is one point or curve sample of Figure 10.
type Fig10Point struct {
	// Label identifies the series ("curve", "App 4 Direct (Orin 15W)", ...).
	Label string
	// ExecSeconds is the application execution time per frame.
	ExecSeconds float64
	// NormImprovement is the DVD improvement over the bent pipe,
	// normalized to the per-app maximum.
	NormImprovement float64
}

// Figure10 reproduces Figure 10: DVD improvement (normalized to the
// maximum) versus application execution time per frame. The curve sweeps
// execution time as a free parameter; the points are the measured
// direct-deploy and Kodan deployments of Apps 1, 4, and 7.
func (l *Lab) Figure10() ([]Fig10Point, error) {
	return l.Figure10Ctx(context.Background())
}

// Figure10Ctx is Figure10 with cancellation; the curve sweep and the
// measured deployment points run on the lab's worker pool.
func (l *Lab) Figure10Ctx(ctx context.Context) ([]Fig10Point, error) {
	ctx, span := l.startFigure(ctx, "fig10")
	defer span.End()
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	art, err := l.AppCtx(ctx, 4)
	if err != nil {
		return nil, err
	}
	d, err := l.DeploymentCtx(ctx, hw.Orin15W)
	if err != nil {
		return nil, err
	}
	env := d.Env(art.Arch)
	env.UseEngine = false
	tl := accuracyTiling(art)
	prof, err := art.Profile(tl)
	if err != nil {
		return nil, err
	}
	sel := policy.DirectSelection(prof)
	bent := bentEstimate(art, d).DVD

	// The normalization ceiling: DVD with unlimited compute.
	maxDVD := policy.EvaluateAtTime(sel, prof, env, 0).DVD
	norm := func(dvd float64) float64 {
		if maxDVD <= bent {
			return 0
		}
		v := (dvd - bent) / (maxDVD - bent)
		if v < 0 {
			v = 0
		}
		return v
	}

	// The free-parameter curve: one policy evaluation per sampled
	// execution time.
	var curve []float64
	for s := 0.0; s <= 320; s += 10 {
		curve = append(curve, s)
	}

	// Measured deployment points.
	type measured struct {
		app    int
		target hw.Target
		kodan  bool
	}
	cases := []measured{
		{1, hw.Orin15W, false}, {1, hw.Orin15W, true},
		{4, hw.Orin15W, false}, {4, hw.Orin15W, true},
		{7, hw.Orin15W, false}, {7, hw.Orin15W, true},
		{1, hw.I7_7800X, false}, {1, hw.GTX1070Ti, false},
	}

	pts := make([]Fig10Point, len(curve)+len(cases))
	err = parallel.ForEach(ctx, l.workers(), len(pts), func(ctx context.Context, k int) error {
		if k < len(curve) {
			s := curve[k]
			est := policy.EvaluateAtTime(sel, prof, env, time.Duration(s*float64(time.Second)))
			pts[k] = Fig10Point{Label: "curve", ExecSeconds: s, NormImprovement: norm(est.DVD)}
			return nil
		}
		c := cases[k-len(curve)]
		a, err := l.AppCtx(ctx, c.app)
		if err != nil {
			return err
		}
		dep, err := l.DeploymentCtx(ctx, c.target)
		if err != nil {
			return err
		}
		var est policy.Estimate
		kind := "Direct Deploy"
		if c.kodan {
			_, est = a.SelectionLogic(dep)
			kind = "Kodan"
		} else {
			est, _, err = directEstimate(a, dep)
			if err != nil {
				return err
			}
		}
		pts[k] = Fig10Point{
			Label:           fmt.Sprintf("%s %s (%s)", appLabel(c.app), kind, c.target),
			ExecSeconds:     est.FrameTime.Seconds(),
			NormImprovement: norm(est.DVD),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	_ = m
	return pts, nil
}

// RenderFigure10 formats Figure 10's series.
func RenderFigure10(pts []Fig10Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: normalized DVD improvement vs frame execution time\n")
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "Series", "Exec(s)", "NormImpr")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-34s %10.1f %10.3f\n", p.Label, p.ExecSeconds, p.NormImprovement)
	}
	return b.String()
}

// Fig11Row is one application of Figure 11.
type Fig11Row struct {
	App           int
	DirectSats    int
	MaxPrecSats   int
	KodanSats     int
	MaxPrecFactor float64
	KodanFactor   float64
}

// Figure11 reproduces Figure 11: the reduction in satellites required for
// full ground-track coverage on the Orin, relative to direct deployment
// with prior work's satellite-parallel pipelining. Kodan reaches up to
// ~12x for the heaviest application.
func (l *Lab) Figure11() ([]Fig11Row, error) {
	return l.Figure11Ctx(context.Background())
}

// Figure11Ctx is Figure11 with cancellation; the per-app sweep runs on
// the lab's worker pool.
func (l *Lab) Figure11Ctx(ctx context.Context) ([]Fig11Row, error) {
	ctx, span := l.startFigure(ctx, "fig11")
	defer span.End()
	m, err := l.MissionCtx(ctx)
	if err != nil {
		return nil, err
	}
	d, err := l.DeploymentCtx(ctx, hw.Orin15W)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, 7)
	err = parallel.ForEach(ctx, l.workers(), len(rows), func(ctx context.Context, k int) error {
		i := k + 1
		art, err := l.AppCtx(ctx, i)
		if err != nil {
			return err
		}
		direct, _, err := directEstimate(art, d)
		if err != nil {
			return err
		}
		// Max-precision tiling, still no elision (prior work + best tiling).
		precTl := precisionTiling(art)
		prof, err := art.Profile(precTl)
		if err != nil {
			return err
		}
		env := d.Env(art.Arch)
		env.UseEngine = false
		prec := policy.Evaluate(policy.DirectSelection(prof), prof, env)
		_, kodan := art.SelectionLogic(d)

		ds := policy.SatellitesForCoverage(direct.FrameTime, m.Deadline)
		ps := policy.SatellitesForCoverage(prec.FrameTime, m.Deadline)
		ks := policy.SatellitesForCoverage(kodan.FrameTime, m.Deadline)
		rows[k] = Fig11Row{
			App: i, DirectSats: ds, MaxPrecSats: ps, KodanSats: ks,
			MaxPrecFactor: float64(ds) / float64(ps),
			KodanFactor:   float64(ds) / float64(ks),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure11 formats Figure 11's bars.
func RenderFigure11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: satellite-count reduction for full coverage (Orin 15W)\n")
	fmt.Fprintf(&b, "%-6s %10s %12s %10s %12s %10s\n", "App", "DirectSats", "MaxPrecSats", "KodanSats", "MaxPrec(x)", "Kodan(x)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10d %12d %10d %12.1f %10.1f\n",
			appLabel(r.App), r.DirectSats, r.MaxPrecSats, r.KodanSats, r.MaxPrecFactor, r.KodanFactor)
	}
	return b.String()
}

// Fig12Row is one application of Figure 12.
type Fig12Row struct {
	App         int
	AccGeneric  float64
	AccContexts float64
	PrecGeneric float64
	PrecContext float64
}

// Figure12 reproduces Figure 12: geospatial contexts improve accuracy
// (left) and precision (right) for every application.
func (l *Lab) Figure12() ([]Fig12Row, error) {
	return l.Figure12Ctx(context.Background())
}

// Figure12Ctx is Figure12 with cancellation; the per-app sweep runs on
// the lab's worker pool.
func (l *Lab) Figure12Ctx(ctx context.Context) ([]Fig12Row, error) {
	ctx, span := l.startFigure(ctx, "fig12")
	defer span.End()
	tl := l.coarsestTiling()
	rows := make([]Fig12Row, 7)
	err := parallel.ForEach(ctx, l.workers(), len(rows), func(ctx context.Context, k int) error {
		i := k + 1
		art, err := l.AppCtx(ctx, i)
		if err != nil {
			return err
		}
		suite, ok := art.Suites[tl.PerSide]
		if !ok {
			return fmt.Errorf("experiments: no suite at %v", tl)
		}
		q := suite.Quality
		rows[k] = Fig12Row{
			App:         i,
			AccGeneric:  q.GenericAll.Accuracy(),
			AccContexts: q.SpecialAll.Accuracy(),
			PrecGeneric: q.GenericAll.Precision(),
			PrecContext: q.SpecialAll.Precision(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// coarsestTiling returns the lab's coarsest candidate tiling (the one the
// contexts were generated on).
func (l *Lab) coarsestTiling() tiling.Tiling {
	tls := l.Tilings()
	coarsest := tls[0]
	for _, tl := range tls[1:] {
		if tl.PerSide < coarsest.PerSide {
			coarsest = tl
		}
	}
	return coarsest
}

// RenderFigure12 formats Figure 12's bars.
func RenderFigure12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: contexts improve accuracy and precision\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %9s %9s %9s\n", "App", "AccGen", "AccCtx", "PrecGen", "PrecCtx", "PrecGain")
	for _, r := range rows {
		gain := 0.0
		if r.PrecGeneric > 0 {
			gain = r.PrecContext/r.PrecGeneric - 1
		}
		fmt.Fprintf(&b, "%-6s %8.3f %8.3f %9.3f %9.3f %+8.1f%%\n",
			appLabel(r.App), r.AccGeneric, r.AccContexts, r.PrecGeneric, r.PrecContext, 100*gain)
	}
	return b.String()
}

// Fig13Row is one (application, tiling) pair of Figure 13.
type Fig13Row struct {
	App       int
	Tiles     int
	Accuracy  float64
	Precision float64
}

// Figure13 reproduces Figure 13: the effect of tiling on accuracy and
// precision. Each application has empirically optimal tilings, and the
// optima differ between accuracy and precision and across architectures.
func (l *Lab) Figure13() ([]Fig13Row, error) {
	return l.Figure13Ctx(context.Background())
}

// Figure13Ctx is Figure13 with cancellation; the per-app sweep runs on
// the lab's worker pool. Each app contributes one row per tiling, so the
// per-app row groups are flattened in app order after the sweep.
func (l *Lab) Figure13Ctx(ctx context.Context) ([]Fig13Row, error) {
	ctx, span := l.startFigure(ctx, "fig13")
	defer span.End()
	groups := make([][]Fig13Row, 7)
	err := parallel.ForEach(ctx, l.workers(), len(groups), func(ctx context.Context, k int) error {
		i := k + 1
		art, err := l.AppCtx(ctx, i)
		if err != nil {
			return err
		}
		for _, tl := range sortedTilings(art) {
			q := art.Suites[tl.PerSide].Quality
			groups[k] = append(groups[k], Fig13Row{
				App:       i,
				Tiles:     tl.Tiles(),
				Accuracy:  q.SpecialAll.Accuracy(),
				Precision: q.SpecialAll.Precision(),
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig13Row
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// RenderFigure13 formats Figure 13's bars.
func RenderFigure13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: effect of tiling on accuracy and precision\n")
	fmt.Fprintf(&b, "%-6s %12s %9s %10s\n", "App", "Tiles/Frame", "Accuracy", "Precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12d %9.3f %10.3f\n", appLabel(r.App), r.Tiles, r.Accuracy, r.Precision)
	}
	return b.String()
}

// Fig14Row is one (target, application, tiling) of Figure 14.
type Fig14Row struct {
	Target hw.Target
	App    int
	Tiles  int
	DVD    float64
}

// Figure14 reproduces Figure 14: the effect of tiling on data value
// density per hardware target, with elision disabled (every tile through
// its specialized model). Aggressive tiling wins on constrained targets;
// precise tiling wins when compute is plentiful.
func (l *Lab) Figure14() ([]Fig14Row, error) {
	return l.Figure14Ctx(context.Background())
}

// Figure14Ctx is Figure14 with cancellation; the (target, app) sweep runs
// on the lab's worker pool. Each pair contributes one row per tiling
// profile, so the per-pair row groups are flattened in render order after
// the sweep.
func (l *Lab) Figure14Ctx(ctx context.Context) ([]Fig14Row, error) {
	ctx, span := l.startFigure(ctx, "fig14")
	defer span.End()
	pairs := targetAppPairs()
	groups := make([][]Fig14Row, len(pairs))
	err := parallel.ForEach(ctx, l.workers(), len(pairs), func(ctx context.Context, k int) error {
		p := pairs[k]
		d, err := l.DeploymentCtx(ctx, p.target)
		if err != nil {
			return err
		}
		art, err := l.AppCtx(ctx, p.app)
		if err != nil {
			return err
		}
		env := d.Env(art.Arch)
		for _, prof := range art.Profiles {
			sel := policy.Selection{Tiling: prof.Tiling, Actions: make([]policy.Action, len(prof.Contexts))}
			for c := range sel.Actions {
				sel.Actions[c] = policy.Specialized
			}
			est := policy.Evaluate(sel, prof, env)
			groups[k] = append(groups[k], Fig14Row{Target: p.target, App: p.app, Tiles: prof.Tiling.Tiles(), DVD: est.DVD})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig14Row
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// RenderFigure14 formats Figure 14's bars.
func RenderFigure14(rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: effect of tiling on DVD (no elision)\n")
	fmt.Fprintf(&b, "%-9s %-6s %12s %8s\n", "Target", "App", "Tiles/Frame", "DVD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-6s %12d %8.3f\n", r.Target, appLabel(r.App), r.Tiles, r.DVD)
	}
	return b.String()
}

// Fig15Row is one (target, application) of Figure 15.
type Fig15Row struct {
	Target     hw.Target
	App        int
	DirectDVD  float64
	ElisionDVD float64
}

// Figure15 reproduces Figure 15: context-based elision added to the
// reference model (generic models plus downlink/discard of near-pure
// contexts) against plain direct deployment. The benefit is largest under
// the deepest computational bottleneck.
func (l *Lab) Figure15() ([]Fig15Row, error) {
	return l.Figure15Ctx(context.Background())
}

// Figure15Ctx is Figure15 with cancellation; the (target, app) sweep —
// each cell an exhaustive elision search — runs on the lab's worker pool.
func (l *Lab) Figure15Ctx(ctx context.Context) ([]Fig15Row, error) {
	ctx, span := l.startFigure(ctx, "fig15")
	defer span.End()
	pairs := targetAppPairs()
	rows := make([]Fig15Row, len(pairs))
	err := parallel.ForEach(ctx, l.workers(), len(pairs), func(ctx context.Context, k int) error {
		p := pairs[k]
		d, err := l.DeploymentCtx(ctx, p.target)
		if err != nil {
			return err
		}
		art, err := l.AppCtx(ctx, p.app)
		if err != nil {
			return err
		}
		direct, tl, err := directEstimate(art, d)
		if err != nil {
			return err
		}
		prof, err := art.Profile(tl)
		if err != nil {
			return err
		}
		est := bestElisionOverGeneric(prof, d.Env(art.Arch))
		rows[k] = Fig15Row{Target: p.target, App: p.app, DirectDVD: direct.DVD, ElisionDVD: est.DVD}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// bestElisionOverGeneric searches per-context {Generic, Downlink, Discard}
// — the elision technique isolated from model specialization — and returns
// the best estimate.
func bestElisionOverGeneric(prof policy.TilingProfile, env policy.Env) policy.Estimate {
	env.UseEngine = true
	k := len(prof.Contexts)
	actions := []policy.Action{policy.Generic, policy.Downlink, policy.Discard}
	sel := policy.Selection{Tiling: prof.Tiling, Actions: make([]policy.Action, k)}
	var best policy.Estimate
	combos := 1
	for i := 0; i < k; i++ {
		combos *= len(actions)
	}
	for code := 0; code < combos; code++ {
		c := code
		for i := 0; i < k; i++ {
			sel.Actions[i] = actions[c%len(actions)]
			c /= len(actions)
		}
		est := policy.Evaluate(sel, prof, env)
		if code == 0 || est.DVD > best.DVD {
			best = est
		}
	}
	return best
}

// RenderFigure15 formats Figure 15's bars.
func RenderFigure15(rows []Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: context-based elision and DVD\n")
	fmt.Fprintf(&b, "%-9s %-6s %9s %9s %12s\n", "Target", "App", "Direct", "Elision", "Improvement")
	for _, r := range rows {
		imp := 0.0
		if r.DirectDVD > 0 {
			imp = r.ElisionDVD/r.DirectDVD - 1
		}
		fmt.Fprintf(&b, "%-9s %-6s %9.3f %9.3f %+11.1f%%\n",
			r.Target, appLabel(r.App), r.DirectDVD, r.ElisionDVD, 100*imp)
	}
	return b.String()
}

// Headline summarizes the Kodan-over-bent-pipe improvement range across
// Figure 8 — the abstract's 89-97%.
func Headline(rows []Fig8Row) (lo, hi float64) {
	lo, hi = 1e9, -1e9
	for _, r := range rows {
		imp := r.Improvement()
		if imp < lo {
			lo = imp
		}
		if imp > hi {
			hi = imp
		}
	}
	return lo, hi
}
