package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"kodan/internal/fault"
	"kodan/internal/telemetry"
)

// renderResilience runs the sweep on a fresh quick lab at the given
// worker count, optionally traced, and returns the rendered table.
func renderResilience(t *testing.T, workers int, tracer *telemetry.Tracer) string {
	t.Helper()
	lab := NewLab(Quick)
	lab.Workers = workers
	if tracer != nil {
		lab.Probe = telemetry.Probe{Metrics: telemetry.NewRegistry(), Trace: tracer}
	}
	rows, err := lab.ResilienceSweepCtx(context.Background())
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return RenderResilience(rows)
}

// TestResilienceSweepDeterministic is the sweep's golden gate: identical
// seed and schedule produce byte-identical output at every worker count,
// traced or not.
func TestResilienceSweepDeterministic(t *testing.T) {
	base := renderResilience(t, 1, nil)
	for _, workers := range []int{1, 4} {
		if got := renderResilience(t, workers, telemetry.NewTracer(0)); got != base {
			t.Fatalf("workers=%d: resilience sweep diverged\n--- baseline:\n%s\n--- got:\n%s", workers, base, got)
		}
	}
}

// TestResilienceBaselineMatchesFaultFreeRun asserts the intensity-0 row
// equals a plain fault-free day run: the sweep's zero point IS the
// baseline, not a separate code path that merely approximates it.
func TestResilienceBaselineMatchesFaultFreeRun(t *testing.T) {
	lab := NewLab(Quick)
	rows, err := lab.ResilienceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Intensity != 0 || rows[0].Faults != 0 {
		t.Fatalf("first row is not the fault-free baseline: %+v", rows[0])
	}
	res, err := lab.dayRun(context.Background(), resilienceSats)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Frames != res.FramesObserved() {
		t.Errorf("baseline frames %d != fault-free run %d", rows[0].Frames, res.FramesObserved())
	}
	if rows[0].DownFrames != res.FrameCapacity() {
		t.Errorf("baseline capacity %g != fault-free run %g", rows[0].DownFrames, res.FrameCapacity())
	}
	if rows[0].Retention != 1 {
		t.Errorf("baseline retention %g, want 1", rows[0].Retention)
	}
}

// TestResilienceDegradesWithIntensity asserts faults cost value: every
// faulted row retains less than (or equal to) the baseline, and the
// maximum intensity strictly degrades.
func TestResilienceDegradesWithIntensity(t *testing.T) {
	lab := NewLab(Quick)
	rows, err := lab.ResilienceSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		if r.Faults == 0 {
			t.Errorf("intensity %.2f generated no faults", r.Intensity)
		}
		if r.Retention > 1 {
			t.Errorf("intensity %.2f retention %.3f > 1: faults created value", r.Intensity, r.Retention)
		}
	}
	last := rows[len(rows)-1]
	if last.Retention >= 1 {
		t.Errorf("max intensity retention %.3f, want < 1", last.Retention)
	}
}

// TestResilienceWithSchedule exercises the explicit-schedule path (the
// kodan-sim -faults flow).
func TestResilienceWithSchedule(t *testing.T) {
	lab := NewLab(Quick)
	epoch := lab.Epoch
	sched := &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.StationOutage, Station: "Svalbard", Start: epoch, End: epoch.Add(12 * time.Hour)},
		{Kind: fault.SensorDropout, Sat: 0, Start: epoch, End: epoch.Add(6 * time.Hour)},
	}}
	row, err := lab.ResilienceWithSchedule(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if row.Faults != 2 {
		t.Errorf("faults %d, want 2", row.Faults)
	}
	if row.Retention <= 0 || row.Retention >= 1 {
		t.Errorf("retention %.3f, want in (0, 1) for a half-day outage plus dropout", row.Retention)
	}
	out := RenderResilience([]ResilienceRow{row})
	if !strings.Contains(out, "file") {
		t.Errorf("external schedule not labelled in render:\n%s", out)
	}
}
