package experiments

import (
	"strings"
	"testing"
)

func TestAblationContextCount(t *testing.T) {
	l := testLab(t)
	rows, err := l.AblationContextCount([]int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EngineAcc < 0.7 {
			t.Errorf("k=%d: engine accuracy %.3f", r.K, r.EngineAcc)
		}
		if r.KodanDVD < 0.6 || r.KodanDVD > 1 {
			t.Errorf("k=%d: DVD %.3f", r.K, r.KodanDVD)
		}
	}
	// More contexts must not hurt the optimized DVD badly: the selection
	// logic can always ignore extra granularity. (It may help or tie.)
	if rows[1].KodanDVD < rows[0].KodanDVD-0.1 {
		t.Errorf("k=6 DVD %.3f far below k=2 DVD %.3f", rows[1].KodanDVD, rows[0].KodanDVD)
	}
	if !strings.Contains(RenderAblationContextCount(rows), "KodanDVD") {
		t.Error("render missing header")
	}
}

func TestAblationContextSource(t *testing.T) {
	l := testLab(t)
	rows, err := l.AblationContextSource()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Source != "automatic" || rows[1].Source != "expert" {
		t.Fatalf("rows = %+v", rows)
	}
	// Expert contexts are the five geography classes.
	if rows[1].K != 5 {
		t.Errorf("expert K = %d", rows[1].K)
	}
	// Both sources must produce a working pipeline that beats the bent
	// pipe decisively.
	for _, r := range rows {
		if r.KodanDVD < 0.7 {
			t.Errorf("%s: DVD %.3f", r.Source, r.KodanDVD)
		}
	}
	if !strings.Contains(RenderAblationContextSource(rows), "expert") {
		t.Error("render missing source")
	}
}
