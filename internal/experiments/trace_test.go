package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"kodan/internal/telemetry"
)

// renderFig2Traced runs Figure 2 on a fresh quick lab at the given worker
// count, optionally under a span tracer, and returns the rendered figure.
func renderFig2Traced(t *testing.T, workers int, tracer *telemetry.Tracer) string {
	t.Helper()
	lab := NewLab(Quick)
	lab.Workers = workers
	if tracer != nil {
		lab.Probe = telemetry.Probe{Metrics: telemetry.NewRegistry(), Trace: tracer}
	}
	rows, err := lab.Figure2Ctx(context.Background(), lab.SatCounts())
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return RenderFigure2(rows)
}

// TestTracedFigureOutputIdentical is the telemetry-never-feeds-back gate:
// enabling tracing and metrics must not perturb figure output at any
// worker count.
func TestTracedFigureOutputIdentical(t *testing.T) {
	base := renderFig2Traced(t, 1, nil)
	for _, workers := range []int{1, 4} {
		got := renderFig2Traced(t, workers, telemetry.NewTracer(0))
		if got != base {
			t.Fatalf("workers=%d with tracing: figure output diverged from untraced baseline\n--- baseline:\n%s\n--- traced:\n%s", workers, base, got)
		}
	}
}

// TestTraceJSONLBalanced asserts the exported trace of a real concurrent
// figure run is well-formed JSONL with every begin matched by exactly one
// end, regardless of worker count.
func TestTraceJSONLBalanced(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tracer := telemetry.NewTracer(0)
		renderFig2Traced(t, workers, tracer)

		var buf bytes.Buffer
		if err := tracer.WriteJSONL(&buf); err != nil {
			t.Fatalf("workers=%d: WriteJSONL: %v", workers, err)
		}
		begins := map[int64]string{}
		ends := map[int64]int{}
		lines := 0
		dec := json.NewDecoder(&buf)
		for dec.More() {
			var ev telemetry.Event
			if err := dec.Decode(&ev); err != nil {
				t.Fatalf("workers=%d: line %d not valid JSON: %v", workers, lines+1, err)
			}
			lines++
			switch ev.Ev {
			case "b":
				if _, dup := begins[ev.ID]; dup {
					t.Fatalf("workers=%d: duplicate begin for span %d", workers, ev.ID)
				}
				begins[ev.ID] = ev.Name
			case "e":
				ends[ev.ID]++
			default:
				t.Fatalf("workers=%d: unknown event kind %q", workers, ev.Ev)
			}
		}
		if lines == 0 {
			t.Fatalf("workers=%d: empty trace", workers)
		}
		for id, name := range begins {
			if ends[id] != 1 {
				t.Errorf("workers=%d: span %d (%s) has %d ends, want 1", workers, id, name, ends[id])
			}
		}
		for id := range ends {
			if _, ok := begins[id]; !ok {
				t.Errorf("workers=%d: end without begin for span %d", workers, id)
			}
		}
		if tracer.Dropped() != 0 {
			t.Errorf("workers=%d: tracer dropped %d events", workers, tracer.Dropped())
		}
	}
}
