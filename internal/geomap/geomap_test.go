package geomap

import (
	"testing"
	"time"

	"kodan/internal/dataset"
	"kodan/internal/imagery"
	"kodan/internal/orbit"
	"kodan/internal/sense"
	"kodan/internal/tiling"
	"kodan/internal/wrs"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func buildMap(t *testing.T, cells int) (*Map, *imagery.World) {
	t.Helper()
	w := imagery.NewWorld(2023)
	m, err := Build(w, cells)
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

func TestBuildRejectsTooCoarse(t *testing.T) {
	if _, err := Build(imagery.NewWorld(1), 2); err == nil {
		t.Fatal("2-cell map accepted")
	}
}

func TestClassAtMatchesWorld(t *testing.T) {
	// At high raster resolution the map must agree with the world at cell
	// centers by construction, and almost everywhere at geography scales.
	m, w := buildMap(t, 720) // 0.5 degree cells
	agree, total := 0, 0
	for lat := -80.0; lat <= 80; lat += 7.3 {
		for lon := -175.0; lon <= 175; lon += 11.7 {
			total++
			if m.ClassAt(lon, lat) == w.GeoClassAt(lon, lat) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("map agreement = %.3f", frac)
	}
}

func TestClassAtEdges(t *testing.T) {
	m, _ := buildMap(t, 360)
	// Poles and the date line must not panic and must return valid classes.
	for _, pt := range [][2]float64{{-180, -90}, {180, 90}, {179.999, 0}, {-179.999, 0}, {0, 89.999}} {
		g := m.ClassAt(pt[0], pt[1])
		if g < 0 || g >= imagery.NumGeoClasses {
			t.Fatalf("class at %v = %v", pt, g)
		}
	}
}

func TestTileContextAccuracy(t *testing.T) {
	// The coarse onboard map must recover the dominant geography of most
	// tiles — the paper's claim that expert contexts are quickly
	// determined from position plus a map.
	m, _ := buildMap(t, 720)
	cfg := dataset.DefaultConfig(2023, tiling.Tiling{PerSide: 3})
	cfg.Frames = 60
	cfg.TileRes = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := make([]*imagery.Tile, ds.Len())
	for i, s := range ds.Samples {
		tiles[i] = s.Tile
	}
	if acc := m.Accuracy(tiles); acc < 0.85 {
		t.Fatalf("tile context accuracy = %.3f", acc)
	}
}

func TestCoarseMapLosesFidelity(t *testing.T) {
	fine, _ := buildMap(t, 720)
	coarse, _ := buildMap(t, 16)
	cfg := dataset.DefaultConfig(7, tiling.Tiling{PerSide: 3})
	cfg.Frames = 40
	cfg.TileRes = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := make([]*imagery.Tile, ds.Len())
	for i, s := range ds.Samples {
		tiles[i] = s.Tile
	}
	if fa, ca := fine.Accuracy(tiles), coarse.Accuracy(tiles); fa <= ca {
		t.Fatalf("fine map (%.3f) not better than coarse (%.3f)", fa, ca)
	}
}

func TestPrecomputeSchedule(t *testing.T) {
	m, _ := buildMap(t, 360)
	im, err := sense.NewImager(sense.Landsat8MS(), orbit.Landsat8(epoch), wrs.Landsat8Grid())
	if err != nil {
		t.Fatal(err)
	}
	tl := tiling.Tiling{PerSide: 3}
	sched, err := Precompute(m, im, tl, 1.45, epoch, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := int(30 * time.Minute / im.FrameDeadline())
	if f := sched.Frames(); f < wantFrames-1 || f > wantFrames+1 {
		t.Fatalf("scheduled frames = %d, want ~%d", f, wantFrames)
	}
	g, err := sched.Context(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 || g >= imagery.NumGeoClasses {
		t.Fatalf("context %v", g)
	}
	// Every frame has exactly tiles-per-frame entries.
	for f := 0; f < sched.Frames(); f++ {
		if len(sched.Contexts[f]) != tl.Tiles() {
			t.Fatalf("frame %d has %d tile contexts", f, len(sched.Contexts[f]))
		}
	}
	// Out-of-range lookups error.
	if _, err := sched.Context(-1, 0); err == nil {
		t.Fatal("negative frame accepted")
	}
	if _, err := sched.Context(0, 99); err == nil {
		t.Fatal("tile overflow accepted")
	}
}

func TestPrecomputeRejectsBadTiling(t *testing.T) {
	m, _ := buildMap(t, 360)
	im, err := sense.NewImager(sense.Landsat8MS(), orbit.Landsat8(epoch), wrs.Landsat8Grid())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Precompute(m, im, tiling.Tiling{}, 1.45, epoch, time.Minute); err == nil {
		t.Fatal("bad tiling accepted")
	}
}

func TestScheduleTracksGroundTrack(t *testing.T) {
	// Successive frames move along the orbit, so scheduled contexts should
	// change over a span that crosses coastlines.
	m, _ := buildMap(t, 360)
	im, err := sense.NewImager(sense.Landsat8MS(), orbit.Landsat8(epoch), wrs.Landsat8Grid())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Precompute(m, im, tiling.Tiling{PerSide: 3}, 1.45, epoch, 99*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[imagery.GeoClass]bool{}
	for f := 0; f < sched.Frames(); f++ {
		classes[sched.Contexts[f][4]] = true // center tile
	}
	if len(classes) < 2 {
		t.Fatalf("a full orbit saw only %d context classes", len(classes))
	}
}
