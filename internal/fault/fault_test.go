package fault

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func genConfig(intensity float64) GenConfig {
	return GenConfig{
		Seed:      7,
		Start:     epoch,
		Span:      24 * time.Hour,
		Intensity: intensity,
		Stations:  []string{"Sioux Falls", "Gilmore Creek", "Svalbard"},
		Sats:      4,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(genConfig(0.7))
	b := Generate(genConfig(0.7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical GenConfig produced different schedules")
	}
	if len(a.Windows) == 0 {
		t.Fatal("intensity 0.7 generated no windows")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	// A different seed must actually change the schedule.
	cfg := genConfig(0.7)
	cfg.Seed = 8
	if reflect.DeepEqual(a, Generate(cfg)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateZeroIntensityEmpty(t *testing.T) {
	s := Generate(genConfig(0))
	if len(s.Windows) != 0 {
		t.Fatalf("intensity 0 generated %d windows, want 0", len(s.Windows))
	}
	if NewInjector(s) != nil {
		t.Fatal("empty schedule built a non-nil injector")
	}
}

func TestGenerateWindowsInsideSpan(t *testing.T) {
	cfg := genConfig(1)
	s := Generate(cfg)
	end := cfg.Start.Add(cfg.Span)
	for i, w := range s.Windows {
		if w.Start.Before(cfg.Start) || w.End.After(end) {
			t.Errorf("window %d [%v, %v) escapes span [%v, %v)", i, w.Start, w.End, cfg.Start, end)
		}
	}
	counts := s.CountByKind()
	for _, k := range []Kind{StationOutage, LinkFade, SensorDropout, ComputeThrottle, SatelliteReset} {
		if counts[k] == 0 {
			t.Errorf("intensity 1 generated no %s windows", k)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Generate(genConfig(0.5))
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("schedule did not survive a JSON round trip")
	}
}

func TestReadJSONRejectsBadSchedules(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   `{"windows":[{"kind":"meteor","station":"X","start":"2023-03-25T00:00:00Z","end":"2023-03-25T01:00:00Z"}]}`,
		"empty span":     `{"windows":[{"kind":"station_outage","station":"X","start":"2023-03-25T01:00:00Z","end":"2023-03-25T01:00:00Z"}]}`,
		"no station":     `{"windows":[{"kind":"link_fade","start":"2023-03-25T00:00:00Z","end":"2023-03-25T01:00:00Z","severity":3}]}`,
		"negative fade":  `{"windows":[{"kind":"link_fade","station":"X","start":"2023-03-25T00:00:00Z","end":"2023-03-25T01:00:00Z","severity":-3}]}`,
		"throttle < 1":   `{"windows":[{"kind":"compute_throttle","sat":0,"start":"2023-03-25T00:00:00Z","end":"2023-03-25T01:00:00Z","severity":0.5}]}`,
		"unknown field":  `{"windows":[],"extra":1}`,
		"malformed json": `{`,
	}
	for name, js := range cases {
		if _, err := ReadJSON(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestInjectorQueries(t *testing.T) {
	s := &Schedule{Windows: []Window{
		{Kind: StationOutage, Station: "Svalbard", Start: epoch.Add(1 * time.Hour), End: epoch.Add(2 * time.Hour)},
		{Kind: LinkFade, Station: "Svalbard", Start: epoch.Add(3 * time.Hour), End: epoch.Add(4 * time.Hour), Severity: 3},
		{Kind: SensorDropout, Sat: 1, Start: epoch.Add(5 * time.Hour), End: epoch.Add(6 * time.Hour)},
		{Kind: ComputeThrottle, Sat: 1, Start: epoch.Add(5 * time.Hour), End: epoch.Add(7 * time.Hour), Severity: 2.5},
		{Kind: SatelliteReset, Sat: 2, Start: epoch.Add(8 * time.Hour), End: epoch.Add(9 * time.Hour)},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s)
	if !inj.Active() {
		t.Fatal("injector with windows not active")
	}

	if !inj.StationDown("Svalbard", epoch.Add(90*time.Minute)) {
		t.Error("Svalbard not down inside its outage")
	}
	if inj.StationDown("Svalbard", epoch.Add(2*time.Hour)) {
		t.Error("outage end should be exclusive")
	}
	if inj.StationDown("Sioux Falls", epoch.Add(90*time.Minute)) {
		t.Error("unfaulted station reported down")
	}

	got := inj.LinkDerate("Svalbard", epoch.Add(210*time.Minute))
	want := math.Pow(10, -0.3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("3 dB fade derate = %g, want %g", got, want)
	}
	if d := inj.LinkDerate("Svalbard", epoch); d != 1 {
		t.Errorf("derate outside fade = %g, want 1", d)
	}
	if !inj.HasFades() {
		t.Error("HasFades false with a fade loaded")
	}

	if !inj.SensorDown(1, epoch.Add(330*time.Minute)) {
		t.Error("sat 1 sensor not down inside dropout")
	}
	if !inj.SensorDown(2, epoch.Add(510*time.Minute)) {
		t.Error("reset should also blind the sensor")
	}
	if f := inj.ThrottleFactor(1, epoch.Add(330*time.Minute)); f != 2.5 {
		t.Errorf("throttle factor = %g, want 2.5", f)
	}
	if f := inj.MaxThrottle(1); f != 2.5 {
		t.Errorf("max throttle = %g, want 2.5", f)
	}
	if f := inj.MaxThrottle(0); f != 1 {
		t.Errorf("max throttle of unfaulted sat = %g, want 1", f)
	}
	if !inj.SatDown(2, epoch.Add(510*time.Minute)) {
		t.Error("sat 2 not down inside reset")
	}

	cuts := inj.StationCuts("Svalbard", 2)
	if len(cuts) != 2 {
		t.Fatalf("StationCuts = %d windows, want outage + reset", len(cuts))
	}

	if f := inj.DownFrac(2, epoch, 24*time.Hour); math.Abs(f-1.0/24) > 1e-12 {
		t.Errorf("DownFrac = %g, want 1/24", f)
	}
	if f := inj.DownFrac(0, epoch, 24*time.Hour); f != 0 {
		t.Errorf("DownFrac of unfaulted sat = %g, want 0", f)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if inj.Active() {
		t.Error("nil injector active")
	}
	if inj.StationDown("X", epoch) || inj.SensorDown(0, epoch) || inj.SatDown(0, epoch) {
		t.Error("nil injector reported a fault")
	}
	if inj.LinkDerate("X", epoch) != 1 || inj.ThrottleFactor(0, epoch) != 1 || inj.MaxThrottle(0) != 1 {
		t.Error("nil injector derated")
	}
	if inj.StationCuts("X", 0) != nil {
		t.Error("nil injector returned cuts")
	}
	if inj.DownFrac(0, epoch, time.Hour) != 0 {
		t.Error("nil injector reported downtime")
	}
	if inj.HasFades() {
		t.Error("nil injector has fades")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if InjectorFrom(ctx) != nil {
		t.Fatal("fresh context carries an injector")
	}
	if got := WithInjector(ctx, nil); got != ctx {
		t.Fatal("attaching a nil injector should be a no-op")
	}
	inj := NewInjector(Generate(genConfig(0.5)))
	if got := InjectorFrom(WithInjector(ctx, inj)); got != inj {
		t.Fatal("injector did not round-trip through the context")
	}
}

func TestSummaryListsKinds(t *testing.T) {
	s := Generate(genConfig(1))
	sum := s.Summary()
	for _, k := range []Kind{StationOutage, LinkFade, SensorDropout} {
		if !strings.Contains(sum, string(k)) {
			t.Errorf("summary missing %s:\n%s", k, sum)
		}
	}
	var empty *Schedule
	if got := empty.Summary(); !strings.Contains(got, "no fault windows") {
		t.Errorf("nil schedule summary = %q", got)
	}
}

func TestChaosDeterministicAndNilSafe(t *testing.T) {
	a := NewChaos(42, 0.5, 0.5, 10*time.Millisecond)
	b := NewChaos(42, 0.5, 0.5, 10*time.Millisecond)
	var sawFail, sawDelay bool
	for i := 0; i < 64; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("draw %d: strikes diverged with identical seeds: %+v vs %+v", i, sa, sb)
		}
		sawFail = sawFail || sa.Fail
		sawDelay = sawDelay || sa.Delay > 0
		if sa.Delay < 0 || sa.Delay > 10*time.Millisecond {
			t.Fatalf("draw %d: delay %v outside [0, 10ms]", i, sa.Delay)
		}
	}
	if !sawFail || !sawDelay {
		t.Errorf("64 draws at 50%% rates produced fail=%t delay=%t, want both", sawFail, sawDelay)
	}

	var nilChaos *Chaos
	if s := nilChaos.Next(); s.Fail || s.Delay != 0 {
		t.Errorf("nil chaos struck: %+v", s)
	}

	never := NewChaos(1, 0, 0, time.Second)
	for i := 0; i < 16; i++ {
		if s := never.Next(); s.Fail || s.Delay != 0 {
			t.Fatalf("zero-rate chaos struck: %+v", s)
		}
	}
}
