// Package fault is the reproduction's deterministic fault-injection
// engine. Every other layer simulates the happy path: stations are always
// up, links close at nominal capacity, transforms always complete. Real
// constellations see station outages, link fades, thermal and radiation
// compute throttling, sensor dropouts, and satellite safe-mode resets —
// the degraded regimes that constraint-aware space-ground planning treats
// as first-class. This package makes those regimes reproducible:
//
//   - A Schedule is a set of typed fault windows, either generated from a
//     seeded xrand stream (identical seed ⇒ identical schedule, on every
//     platform) or loaded from JSON.
//   - An Injector is a queryable, read-only view over a schedule that the
//     simulator, link allocator, and fleet evaluator consult. It rides a
//     context, mirroring the telemetry.Probe pattern: nil is the no-op,
//     and instrumented layers are byte-identical with no injector
//     attached.
//   - A Chaos striker injects latency and transient errors into the
//     serving path, driving the server's retry and circuit-breaker
//     machinery (see internal/server).
//
// Like telemetry, fault injection is observe-and-perturb only in declared
// ways: a nil injector changes nothing, and an injector's effect is a pure
// function of (schedule, query), never of scheduling order — which keeps
// faulted runs bit-identical at every worker count.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"kodan/internal/xrand"
)

// Kind is a fault category.
type Kind string

// Fault kinds.
const (
	// StationOutage takes a ground station offline: its contact windows
	// are cut for the outage's span. Target is the station name.
	StationOutage Kind = "station_outage"
	// LinkFade derates a station's downlink capacity: Severity is the
	// fade depth in dB (3 dB halves the effective rate). Target is the
	// station name.
	LinkFade Kind = "link_fade"
	// ComputeThrottle slows a satellite's compute: Severity is the
	// slowdown factor (2 means tiles take twice as long). Target is the
	// satellite index.
	ComputeThrottle Kind = "compute_throttle"
	// SensorDropout blinds a satellite's imager: captures inside the
	// window are lost. Target is the satellite index.
	SensorDropout Kind = "sensor_dropout"
	// SatelliteReset is a safe-mode reset: the satellite neither captures
	// nor downlinks inside the window. Target is the satellite index.
	SatelliteReset Kind = "satellite_reset"
)

// kinds lists every kind, in a fixed order for deterministic iteration.
var kinds = []Kind{StationOutage, LinkFade, ComputeThrottle, SensorDropout, SatelliteReset}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool {
	for _, known := range kinds {
		if k == known {
			return true
		}
	}
	return false
}

// Window is one fault: a kind, a target, a time interval, and a severity
// whose meaning depends on the kind (dB for fades, slowdown factor for
// throttles, unused for binary faults).
type Window struct {
	Kind     Kind      `json:"kind"`
	Station  string    `json:"station,omitempty"`
	Sat      int       `json:"sat,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Severity float64   `json:"severity,omitempty"`
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// Contains reports whether t lies in [Start, End).
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// validate rejects malformed windows.
func (w Window) validate() error {
	if !w.Kind.Valid() {
		return fmt.Errorf("fault: unknown kind %q", w.Kind)
	}
	if !w.End.After(w.Start) {
		return fmt.Errorf("fault: %s window with non-positive span [%v, %v)", w.Kind, w.Start, w.End)
	}
	switch w.Kind {
	case StationOutage, LinkFade:
		if w.Station == "" {
			return fmt.Errorf("fault: %s window without a station", w.Kind)
		}
	case ComputeThrottle, SensorDropout, SatelliteReset:
		if w.Sat < 0 {
			return fmt.Errorf("fault: %s window with negative satellite %d", w.Kind, w.Sat)
		}
	}
	if w.Kind == LinkFade && w.Severity < 0 {
		return fmt.Errorf("fault: link fade with negative depth %g dB", w.Severity)
	}
	if w.Kind == ComputeThrottle && w.Severity < 1 {
		return fmt.Errorf("fault: compute throttle with factor %g < 1", w.Severity)
	}
	return nil
}

// Schedule is a validated, time-sorted set of fault windows plus the seed
// that generated it (zero for hand-written schedules).
type Schedule struct {
	Seed    uint64   `json:"seed,omitempty"`
	Windows []Window `json:"windows"`
}

// Validate checks every window.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, w := range s.Windows {
		if err := w.validate(); err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
	}
	return nil
}

// sortWindows orders windows by (start, kind, station, sat, end,
// severity) so generated and round-tripped schedules render identically.
// The trailing keys make the order total up to full window equality,
// which keeps consumers that re-derive window lists (the mission event
// journal) byte-deterministic.
func sortWindows(ws []Window) {
	sort.Slice(ws, func(a, b int) bool {
		if !ws[a].Start.Equal(ws[b].Start) {
			return ws[a].Start.Before(ws[b].Start)
		}
		if ws[a].Kind != ws[b].Kind {
			return ws[a].Kind < ws[b].Kind
		}
		if ws[a].Station != ws[b].Station {
			return ws[a].Station < ws[b].Station
		}
		if ws[a].Sat != ws[b].Sat {
			return ws[a].Sat < ws[b].Sat
		}
		if !ws[a].End.Equal(ws[b].End) {
			return ws[a].End.Before(ws[b].End)
		}
		return ws[a].Severity < ws[b].Severity
	})
}

// CountByKind returns the number of windows of each kind, keyed in the
// fixed kind order (absent kinds are present with zero).
func (s *Schedule) CountByKind() map[Kind]int {
	out := make(map[Kind]int, len(kinds))
	for _, k := range kinds {
		out[k] = 0
	}
	if s == nil {
		return out
	}
	for _, w := range s.Windows {
		out[w.Kind]++
	}
	return out
}

// Summary renders one line per kind with a window count and total
// duration, in fixed kind order.
func (s *Schedule) Summary() string {
	if s == nil || len(s.Windows) == 0 {
		return "no fault windows\n"
	}
	durs := map[Kind]time.Duration{}
	counts := s.CountByKind()
	for _, w := range s.Windows {
		durs[w.Kind] += w.Duration()
	}
	out := ""
	for _, k := range kinds {
		if counts[k] == 0 {
			continue
		}
		out += fmt.Sprintf("%-18s %3d window(s) %12v total\n", k, counts[k], durs[k])
	}
	return out
}

// WriteJSON writes the schedule as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses and validates a schedule.
func ReadJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: bad schedule JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sortWindows(s.Windows)
	return &s, nil
}

// LoadFile reads a schedule from a JSON file.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// GenConfig sizes a generated schedule.
type GenConfig struct {
	// Seed drives the xrand stream; identical seeds yield identical
	// schedules.
	Seed uint64
	// Start and Span bound every generated window.
	Start time.Time
	Span  time.Duration
	// Intensity in [0, 1] scales how much of the span is faulted: 0
	// generates an empty schedule, 1 the heaviest regime (roughly one
	// sixth of each station's time out, 3-9 dB fades, multi-hour sensor
	// and compute degradations).
	Intensity float64
	// Stations are the ground-station names outages and fades target.
	Stations []string
	// Sats is the constellation population dropouts, throttles, and
	// resets target.
	Sats int
}

// Generate derives a fault schedule from the seeded stream. The draw
// order is fixed — per station first (outages, then fades), then per
// satellite (dropouts, throttles, resets) — so a schedule is a pure
// function of its GenConfig, independent of any consumer's worker count.
func Generate(cfg GenConfig) *Schedule {
	s := &Schedule{Seed: cfg.Seed}
	if cfg.Intensity <= 0 || cfg.Span <= 0 {
		return s
	}
	intensity := math.Min(cfg.Intensity, 1)
	rng := xrand.New(cfg.Seed)

	// windowsFor draws n windows of mean length mean, uniformly placed.
	draw := func(n int, mean time.Duration, mk func(start, end time.Time, r *xrand.Rand) Window) {
		for i := 0; i < n; i++ {
			length := time.Duration(rng.Range(0.5, 1.5) * float64(mean))
			latest := cfg.Span - length
			if latest <= 0 {
				length = cfg.Span / 2
				latest = cfg.Span - length
			}
			start := cfg.Start.Add(time.Duration(rng.Range(0, float64(latest))))
			s.Windows = append(s.Windows, mk(start, start.Add(length), rng))
		}
	}

	perStation := int(math.Round(intensity * 3))
	for _, st := range cfg.Stations {
		st := st
		draw(perStation, time.Duration(intensity*float64(cfg.Span)/18), func(a, b time.Time, _ *xrand.Rand) Window {
			return Window{Kind: StationOutage, Station: st, Start: a, End: b}
		})
		draw(perStation, time.Duration(intensity*float64(cfg.Span)/10), func(a, b time.Time, r *xrand.Rand) Window {
			return Window{Kind: LinkFade, Station: st, Start: a, End: b, Severity: r.Range(3, 3+6*intensity)}
		})
	}
	perSat := int(math.Round(intensity * 2))
	for sat := 0; sat < cfg.Sats; sat++ {
		sat := sat
		draw(perSat, time.Duration(intensity*float64(cfg.Span)/16), func(a, b time.Time, _ *xrand.Rand) Window {
			return Window{Kind: SensorDropout, Sat: sat, Start: a, End: b}
		})
		draw(perSat, time.Duration(intensity*float64(cfg.Span)/8), func(a, b time.Time, r *xrand.Rand) Window {
			return Window{Kind: ComputeThrottle, Sat: sat, Start: a, End: b, Severity: 1 + 3*intensity*r.Float64()}
		})
		draw(perSat, time.Duration(intensity*float64(cfg.Span)/24), func(a, b time.Time, _ *xrand.Rand) Window {
			return Window{Kind: SatelliteReset, Sat: sat, Start: a, End: b}
		})
	}
	sortWindows(s.Windows)
	return s
}
