package fault

import (
	"context"
	"math"
	"time"
)

// Injector is a read-only, query-by-time view over a schedule. The nil
// *Injector is the no-op: every query reports "no fault" (false, or a 1.0
// multiplier), mirroring the telemetry.Probe pattern, so instrumented
// layers call it unconditionally and stay byte-identical when fault
// injection is off.
//
// Every query is a pure function of (schedule, arguments): injectors are
// safe for concurrent use and independent of evaluation order, which is
// what keeps faulted simulations bit-identical at every worker count.
type Injector struct {
	byStation map[string][]Window // StationOutage + LinkFade, time-sorted
	bySat     map[int][]Window    // ComputeThrottle + SensorDropout + SatelliteReset
}

// NewInjector indexes a schedule for querying. A nil or empty schedule
// yields a nil (no-op) injector.
func NewInjector(s *Schedule) *Injector {
	if s == nil || len(s.Windows) == 0 {
		return nil
	}
	inj := &Injector{
		byStation: make(map[string][]Window),
		bySat:     make(map[int][]Window),
	}
	for _, w := range s.Windows {
		switch w.Kind {
		case StationOutage, LinkFade:
			inj.byStation[w.Station] = append(inj.byStation[w.Station], w)
		default:
			inj.bySat[w.Sat] = append(inj.bySat[w.Sat], w)
		}
	}
	for k := range inj.byStation {
		sortWindows(inj.byStation[k])
	}
	for k := range inj.bySat {
		sortWindows(inj.bySat[k])
	}
	return inj
}

// Active reports whether any fault windows are loaded.
func (inj *Injector) Active() bool { return inj != nil }

// AllWindows returns every loaded fault window in the canonical schedule
// order (start, kind, station, sat, end, severity). Nil on the no-op
// injector. Consumers that journal or render fault activity iterate this
// instead of the internal maps, so their output is deterministic.
func (inj *Injector) AllWindows() []Window {
	if inj == nil {
		return nil
	}
	var out []Window
	for _, ws := range inj.byStation {
		out = append(out, ws...)
	}
	for _, ws := range inj.bySat {
		out = append(out, ws...)
	}
	sortWindows(out)
	return out
}

// StationDown reports whether the named station is inside an outage at t.
func (inj *Injector) StationDown(station string, t time.Time) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.byStation[station] {
		if w.Kind == StationOutage && w.Contains(t) {
			return true
		}
	}
	return false
}

// StationCuts returns the outage windows of the named station, plus the
// reset windows of satellite sat — the intervals during which the
// (station, sat) pair cannot communicate. Nil when no cuts apply.
func (inj *Injector) StationCuts(station string, sat int) []Window {
	if inj == nil {
		return nil
	}
	var cuts []Window
	for _, w := range inj.byStation[station] {
		if w.Kind == StationOutage {
			cuts = append(cuts, w)
		}
	}
	for _, w := range inj.bySat[sat] {
		if w.Kind == SatelliteReset {
			cuts = append(cuts, w)
		}
	}
	sortWindows(cuts)
	return cuts
}

// LinkDerate returns the capacity multiplier of the named station's
// downlink at t: 1.0 nominal, 10^(-dB/10) inside a fade (overlapping
// fades compound). The multiplier never exceeds 1.
func (inj *Injector) LinkDerate(station string, t time.Time) float64 {
	if inj == nil {
		return 1
	}
	db := 0.0
	for _, w := range inj.byStation[station] {
		if w.Kind == LinkFade && w.Contains(t) {
			db += w.Severity
		}
	}
	if db == 0 {
		return 1
	}
	return math.Pow(10, -db/10)
}

// HasFades reports whether any link-fade windows are loaded (so consumers
// can skip the derate integration entirely on fade-free schedules).
func (inj *Injector) HasFades() bool {
	if inj == nil {
		return false
	}
	for _, ws := range inj.byStation {
		for _, w := range ws {
			if w.Kind == LinkFade {
				return true
			}
		}
	}
	return false
}

// SensorDown reports whether satellite sat's imager is blind at t — a
// sensor dropout or a satellite reset.
func (inj *Injector) SensorDown(sat int, t time.Time) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.bySat[sat] {
		if (w.Kind == SensorDropout || w.Kind == SatelliteReset) && w.Contains(t) {
			return true
		}
	}
	return false
}

// SatDown reports whether satellite sat is inside a safe-mode reset at t.
func (inj *Injector) SatDown(sat int, t time.Time) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.bySat[sat] {
		if w.Kind == SatelliteReset && w.Contains(t) {
			return true
		}
	}
	return false
}

// ThrottleFactor returns satellite sat's compute slowdown at t: 1.0
// nominal; inside overlapping throttle windows the largest factor wins.
func (inj *Injector) ThrottleFactor(sat int, t time.Time) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, w := range inj.bySat[sat] {
		if w.Kind == ComputeThrottle && w.Contains(t) && w.Severity > f {
			f = w.Severity
		}
	}
	return f
}

// MaxThrottle returns the largest compute-throttle factor satellite sat
// sees anywhere in its schedule (1.0 when none): the conservative
// deployment-planning number.
func (inj *Injector) MaxThrottle(sat int) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, w := range inj.bySat[sat] {
		if w.Kind == ComputeThrottle && w.Severity > f {
			f = w.Severity
		}
	}
	return f
}

// ThrottleTimeFactor returns satellite sat's time-weighted mean compute
// slowdown over [start, start+span): 1.0 when never throttled, rising
// toward the window factors as throttled time grows. Overlapping windows
// add their excess slowdowns (a conservative upper bound).
func (inj *Injector) ThrottleTimeFactor(sat int, start time.Time, span time.Duration) float64 {
	if inj == nil || span <= 0 {
		return 1
	}
	end := start.Add(span)
	excess := 0.0
	for _, w := range inj.bySat[sat] {
		if w.Kind != ComputeThrottle {
			continue
		}
		s, e := w.Start, w.End
		if s.Before(start) {
			s = start
		}
		if e.After(end) {
			e = end
		}
		if e.After(s) {
			excess += (w.Severity - 1) * float64(e.Sub(s))
		}
	}
	return 1 + excess/float64(span)
}

// DownFrac returns the fraction of [start, start+span) that satellite sat
// spends in safe-mode reset, clamped to [0, 1].
func (inj *Injector) DownFrac(sat int, start time.Time, span time.Duration) float64 {
	if inj == nil || span <= 0 {
		return 0
	}
	end := start.Add(span)
	var down time.Duration
	for _, w := range inj.bySat[sat] {
		if w.Kind != SatelliteReset {
			continue
		}
		s, e := w.Start, w.End
		if s.Before(start) {
			s = start
		}
		if e.After(end) {
			e = end
		}
		if e.After(s) {
			down += e.Sub(s)
		}
	}
	f := float64(down) / float64(span)
	return math.Min(f, 1)
}

type ctxKey int

const injectorKey ctxKey = iota

// WithInjector attaches an injector to the context. The instrumented
// layers below — the simulator, the link allocator, the fleet evaluator —
// pick it up with InjectorFrom.
func WithInjector(ctx context.Context, inj *Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey, inj)
}

// InjectorFrom returns the context's injector, or nil (the no-op).
func InjectorFrom(ctx context.Context) *Injector {
	inj, _ := ctx.Value(injectorKey).(*Injector)
	return inj
}
