package fault

import (
	"errors"
	"sync"
	"time"

	"kodan/internal/xrand"
)

// ErrInjected marks a synthetic transient failure injected by a Chaos
// striker. The serving layer treats it as retryable: bounded
// exponential-backoff retries absorb isolated strikes, and sustained
// strikes trip the circuit breaker.
var ErrInjected = errors.New("fault: injected transient failure")

// Chaos deterministically injects latency and transient errors into a
// serving path. Strikes are drawn from a seeded xrand stream under a
// mutex, so a fixed seed yields a fixed strike sequence (the n-th call
// always gets the n-th draw, whatever goroutine makes it). The nil *Chaos
// never strikes.
type Chaos struct {
	mu  sync.Mutex
	rng *xrand.Rand

	errorRate   float64
	latencyRate float64
	latency     time.Duration
}

// NewChaos returns a striker that fails a call with probability errorRate
// and delays it by up to latency with probability latencyRate. Rates are
// clamped to [0, 1].
func NewChaos(seed uint64, errorRate, latencyRate float64, latency time.Duration) *Chaos {
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return &Chaos{
		rng:         xrand.New(seed),
		errorRate:   clamp(errorRate),
		latencyRate: clamp(latencyRate),
		latency:     latency,
	}
}

// Strike is one chaos decision.
type Strike struct {
	// Delay is the injected latency (zero when none).
	Delay time.Duration
	// Fail injects ErrInjected after the delay.
	Fail bool
}

// Next draws the next strike. Nil-safe: a nil Chaos never strikes.
func (c *Chaos) Next() Strike {
	if c == nil {
		return Strike{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Strike
	if c.latencyRate > 0 && c.rng.Bool(c.latencyRate) {
		s.Delay = time.Duration(c.rng.Range(0, float64(c.latency)))
	}
	if c.errorRate > 0 && c.rng.Bool(c.errorRate) {
		s.Fail = true
	}
	return s
}
