package geo

import (
	"math"
	"testing"
	"time"

	"kodan/internal/xrand"
)

// propertyDraws is the per-seed sample count of the randomized checks.
const propertyDraws = 500

var geoSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 2023}

// TestWrapRanges checks the angle wrappers' codomains over random inputs
// spanning many revolutions in both directions.
func TestWrapRanges(t *testing.T) {
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			a := rng.Range(-100, 100)
			if w := WrapTwoPi(a); w < 0 || w >= 2*math.Pi {
				t.Fatalf("WrapTwoPi(%.6f) = %.6f outside [0, 2pi)", a, w)
			}
			if w := WrapPi(a); w <= -math.Pi || w > math.Pi {
				t.Fatalf("WrapPi(%.6f) = %.6f outside (-pi, pi]", a, w)
			}
			// Wrapping preserves the angle modulo a full turn.
			if d := math.Mod(WrapTwoPi(a)-a, 2*math.Pi); math.Abs(WrapPi(d)) > 1e-9 {
				t.Fatalf("WrapTwoPi(%.6f) changed the angle by %.2e", a, d)
			}
		}
	}
}

// TestGeodeticECEFRoundTripProperty checks that GeodeticToECEF and ECEFToGeodetic
// are inverses over random positions from the surface up through LEO.
func TestGeodeticECEFRoundTripProperty(t *testing.T) {
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			g := Geodetic{
				LatDeg: rng.Range(-89.9, 89.9),
				LonDeg: rng.Range(-179.9, 180),
				AltM:   rng.Range(0, 1000e3),
			}
			back := ECEFToGeodetic(GeodeticToECEF(g))
			if math.Abs(back.LatDeg-g.LatDeg) > 1e-9 {
				t.Fatalf("latitude %.9f -> %.9f", g.LatDeg, back.LatDeg)
			}
			if math.Abs(back.LonDeg-g.LonDeg) > 1e-9 {
				t.Fatalf("longitude %.9f -> %.9f", g.LonDeg, back.LonDeg)
			}
			if math.Abs(back.AltM-g.AltM) > 1e-2 {
				t.Fatalf("altitude %.4f -> %.4f", g.AltM, back.AltM)
			}
		}
	}
}

// TestECEFToGeodeticRanges checks the conversion's codomain for arbitrary
// positions, including ones far from the ellipsoid.
func TestECEFToGeodeticRanges(t *testing.T) {
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			p := Vec3{
				X: rng.Range(-1e7, 1e7),
				Y: rng.Range(-1e7, 1e7),
				Z: rng.Range(-1e7, 1e7),
			}
			g := ECEFToGeodetic(p)
			if g.LatDeg < -90 || g.LatDeg > 90 {
				t.Fatalf("ECEFToGeodetic(%v): latitude %.4f", p, g.LatDeg)
			}
			if g.LonDeg <= -180 || g.LonDeg > 180 {
				t.Fatalf("ECEFToGeodetic(%v): longitude %.4f", p, g.LonDeg)
			}
		}
	}
}

// TestECIECEFRoundTripProperty checks the frame rotations are inverse isometries at
// random times across several decades.
func TestECIECEFRoundTripProperty(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			at := base.Add(time.Duration(rng.Range(0, 40*365*24)) * time.Hour)
			p := Vec3{
				X: rng.Range(-1e7, 1e7),
				Y: rng.Range(-1e7, 1e7),
				Z: rng.Range(-1e7, 1e7),
			}
			back := ECEFToECI(ECIToECEF(p, at), at)
			if back.Sub(p).Norm() > 1e-6*p.Norm()+1e-6 {
				t.Fatalf("at %v: %v -> %v", at, p, back)
			}
			// The rotation preserves length and the polar component.
			rot := ECIToECEF(p, at)
			if math.Abs(rot.Norm()-p.Norm()) > 1e-6*p.Norm() {
				t.Fatalf("rotation changed length: %.6f -> %.6f", p.Norm(), rot.Norm())
			}
			if rot.Z != p.Z {
				t.Fatalf("rotation moved the polar component")
			}
		}
	}
}

// TestGreatCircleDistanceMetric checks the distance's metric-like
// properties: symmetry, identity, and the antipodal upper bound.
func TestGreatCircleDistanceMetric(t *testing.T) {
	maxDist := math.Pi * EarthRadius
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			a := Geodetic{LatDeg: rng.Range(-90, 90), LonDeg: rng.Range(-179.9, 180)}
			b := Geodetic{LatDeg: rng.Range(-90, 90), LonDeg: rng.Range(-179.9, 180)}
			ab, ba := GreatCircleDistance(a, b), GreatCircleDistance(b, a)
			if ab != ba {
				t.Fatalf("asymmetric: %.6f vs %.6f", ab, ba)
			}
			if ab < 0 || ab > maxDist+1e-6 {
				t.Fatalf("distance %.0f outside [0, pi*R]", ab)
			}
			if self := GreatCircleDistance(a, a); self != 0 {
				t.Fatalf("nonzero self-distance %.9f", self)
			}
		}
	}
}

// TestElevationAngleRange checks the elevation codomain and its sign
// convention: a target straight above the observer is at +90 degrees.
func TestElevationAngleRange(t *testing.T) {
	for _, seed := range geoSeeds {
		rng := xrand.New(seed)
		for i := 0; i < propertyDraws; i++ {
			obs := GeodeticToECEF(Geodetic{LatDeg: rng.Range(-89, 89), LonDeg: rng.Range(-179.9, 180)})
			target := Vec3{
				X: rng.Range(-1e7, 1e7),
				Y: rng.Range(-1e7, 1e7),
				Z: rng.Range(-1e7, 1e7),
			}
			el := ElevationAngle(obs, target)
			if el < -math.Pi/2 || el > math.Pi/2 {
				t.Fatalf("elevation %.6f outside [-pi/2, pi/2]", el)
			}
			// Scaling the observer's own direction puts the target at zenith.
			if up := ElevationAngle(obs, obs.Scale(2)); math.Abs(up-math.Pi/2) > 1e-6 {
				t.Fatalf("zenith elevation = %.6f", up)
			}
		}
	}
}
