package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestJulianDateKnownEpochs(t *testing.T) {
	cases := []struct {
		t    time.Time
		want float64
	}{
		// J2000 epoch: 2000-01-01 12:00 UTC = JD 2451545.0.
		{time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC), 2451545.0},
		// Unix epoch: 1970-01-01 00:00 UTC = JD 2440587.5.
		{time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC), 2440587.5},
		// 2023-03-25 00:00 UTC (the ASPLOS'23 week) = JD 2460028.5.
		{time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC), 2460028.5},
	}
	for _, c := range cases {
		if got := JulianDate(c.t); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("JulianDate(%v) = %.6f, want %.6f", c.t, got, c.want)
		}
	}
}

func TestGMSTKnownValue(t *testing.T) {
	// Vallado example 3-5: 1992-08-20 12:14:00 UTC, GMST = 152.578788 deg.
	tt := time.Date(1992, 8, 20, 12, 14, 0, 0, time.UTC)
	got := Rad2Deg(GMST(tt))
	if !almostEqual(got, 152.578788, 1e-3) {
		t.Fatalf("GMST = %.6f deg, want 152.578788", got)
	}
}

func TestGeodeticECEFRoundTrip(t *testing.T) {
	if err := quick.Check(func(latU, lonU, altU uint16) bool {
		g := Geodetic{
			LatDeg: float64(latU%17000)/100 - 85, // [-85, 85)
			LonDeg: float64(lonU%36000)/100 - 180,
			AltM:   float64(altU) * 15, // up to ~1000 km
		}
		back := ECEFToGeodetic(GeodeticToECEF(g))
		return almostEqual(back.LatDeg, g.LatDeg, 1e-7) &&
			almostEqual(back.AltM, g.AltM, 1e-3) &&
			almostEqual(math.Mod(back.LonDeg-g.LonDeg+540, 360)-180, 0, 1e-7)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeodeticToECEFKnownPoint(t *testing.T) {
	// Equator / prime meridian at zero altitude is one equatorial radius
	// along +X.
	p := GeodeticToECEF(Geodetic{})
	if !almostEqual(p.X, EarthRadius, 1e-6) || !almostEqual(p.Y, 0, 1e-6) || !almostEqual(p.Z, 0, 1e-6) {
		t.Fatalf("equator point = %v", p)
	}
	// North pole lies on +Z at the polar radius b = a(1-f).
	pole := GeodeticToECEF(Geodetic{LatDeg: 90})
	b := EarthRadius * (1 - EarthFlattening)
	if !almostEqual(pole.Z, b, 1e-3) {
		t.Fatalf("pole Z = %.3f, want %.3f", pole.Z, b)
	}
}

func TestECIECEFRoundTrip(t *testing.T) {
	tt := time.Date(2023, 3, 25, 6, 30, 0, 0, time.UTC)
	p := Vec3{7000e3, -1234e3, 4321e3}
	back := ECEFToECI(ECIToECEF(p, tt), tt)
	if back.Sub(p).Norm() > 1e-6 {
		t.Fatalf("round trip error %v", back.Sub(p).Norm())
	}
}

func TestECIToECEFPreservesNorm(t *testing.T) {
	if err := quick.Check(func(x, y, z int32, sec uint32) bool {
		p := Vec3{float64(x), float64(y), float64(z)}
		tt := time.Unix(int64(sec), 0).UTC()
		q := ECIToECEF(p, tt)
		return almostEqual(p.Norm(), q.Norm(), 1e-6*(1+p.Norm()))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVec3Algebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	if err := quick.Check(func(ax, ay, az, bx, by, bz int16) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		c := a.Cross(b)
		return almostEqual(c.Dot(a), 0, 1e-6) && almostEqual(c.Dot(b), 0, 1e-6)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitNorm(t *testing.T) {
	v := Vec3{3, 4, 0}.Unit()
	if !almostEqual(v.Norm(), 1, 1e-12) {
		t.Fatalf("unit norm = %v", v.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Fatal("unit of zero vector changed")
	}
}

func TestGreatCircleDistance(t *testing.T) {
	// Quarter circumference: equator to pole.
	d := GreatCircleDistance(Geodetic{}, Geodetic{LatDeg: 90})
	want := math.Pi / 2 * EarthRadius
	if !almostEqual(d, want, 1) {
		t.Fatalf("pole distance = %.0f, want %.0f", d, want)
	}
	// Symmetric.
	a := Geodetic{LatDeg: 47.6, LonDeg: -122.3}
	b := Geodetic{LatDeg: 78.2, LonDeg: 15.4}
	if !almostEqual(GreatCircleDistance(a, b), GreatCircleDistance(b, a), 1e-6) {
		t.Fatal("distance not symmetric")
	}
	// Identity.
	if GreatCircleDistance(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestElevationAngle(t *testing.T) {
	obs := GeodeticToECEF(Geodetic{})
	// Target straight overhead.
	up := GeodeticToECEF(Geodetic{AltM: 700e3})
	if el := ElevationAngle(obs, up); !almostEqual(el, math.Pi/2, 1e-6) {
		t.Fatalf("overhead elevation = %v", Rad2Deg(el))
	}
	// Target on the opposite side of Earth is far below the horizon.
	anti := GeodeticToECEF(Geodetic{LonDeg: 180, AltM: 700e3})
	if el := ElevationAngle(obs, anti); el > 0 {
		t.Fatalf("antipodal target above horizon: %v deg", Rad2Deg(el))
	}
}

func TestWrapAngles(t *testing.T) {
	if got := WrapTwoPi(-0.1); !almostEqual(got, 2*math.Pi-0.1, 1e-12) {
		t.Errorf("WrapTwoPi(-0.1) = %v", got)
	}
	if got := WrapPi(3 * math.Pi / 2); !almostEqual(got, -math.Pi/2, 1e-12) {
		t.Errorf("WrapPi(3pi/2) = %v", got)
	}
	if err := quick.Check(func(a int32) bool {
		x := float64(a) / 1000
		w := WrapTwoPi(x)
		return w >= 0 && w < 2*math.Pi && almostEqual(math.Sin(w), math.Sin(x), 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsatellitePointAltitude(t *testing.T) {
	// A satellite on +X in ECI at GMST ~ whatever time: altitude should be
	// its radius minus Earth radius (within ellipsoidal tolerance).
	tt := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	r := EarthRadius + 705e3
	g := SubsatellitePoint(Vec3{r, 0, 0}, tt)
	if !almostEqual(g.AltM, 705e3, 100) {
		t.Fatalf("altitude = %.0f, want ~705000", g.AltM)
	}
	if !almostEqual(g.LatDeg, 0, 1e-6) {
		t.Fatalf("latitude = %v, want 0", g.LatDeg)
	}
}
