// Package geo provides the geodetic and astrodynamic primitives the
// simulator is built on: WGS-84 constants, Julian dates, Greenwich mean
// sidereal time, and conversions among Earth-centered inertial (ECI),
// Earth-centered Earth-fixed (ECEF), and geodetic coordinates. These are
// the same primitives the cote simulator uses to model satellite motion and
// ground-station geometry.
package geo

import (
	"fmt"
	"math"
	"time"
)

// Physical constants (WGS-84 and standard gravitational parameters).
const (
	// EarthRadius is the WGS-84 equatorial radius in meters.
	EarthRadius = 6378137.0
	// EarthFlattening is the WGS-84 flattening factor.
	EarthFlattening = 1.0 / 298.257223563
	// EarthMu is the Earth gravitational parameter in m^3/s^2.
	EarthMu = 3.986004418e14
	// EarthJ2 is the second zonal harmonic coefficient of the geopotential.
	EarthJ2 = 1.08262668e-3
	// EarthRotationRate is Earth's sidereal rotation rate in rad/s.
	EarthRotationRate = 7.2921158553e-5
	// SiderealDay is the length of one sidereal day in seconds.
	SiderealDay = 86164.0905
	// SolarDay is the length of one mean solar day in seconds.
	SolarDay = 86400.0
)

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// WrapTwoPi wraps an angle in radians to [0, 2*pi).
func WrapTwoPi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// WrapPi wraps an angle in radians to (-pi, pi].
func WrapPi(a float64) float64 {
	a = WrapTwoPi(a)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// Vec3 is a Cartesian vector in meters (or unitless for directions).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// Geodetic is a position on or above the WGS-84 ellipsoid.
type Geodetic struct {
	// LatDeg is geodetic latitude in degrees, positive north.
	LatDeg float64
	// LonDeg is longitude in degrees, positive east, in (-180, 180].
	LonDeg float64
	// AltM is height above the ellipsoid in meters.
	AltM float64
}

// String implements fmt.Stringer.
func (g Geodetic) String() string {
	return fmt.Sprintf("lat %.4f lon %.4f alt %.0fm", g.LatDeg, g.LonDeg, g.AltM)
}

// JulianDate converts a UTC time to a Julian date. Leap seconds are ignored,
// which introduces sub-minute timing error — negligible for constellation-
// scale contact accounting.
func JulianDate(t time.Time) float64 {
	t = t.UTC()
	y, m, d := t.Date()
	if m <= 2 {
		y--
		m += 12
	}
	a := y / 100
	b := 2 - a + a/4
	jd0 := math.Floor(365.25*float64(y+4716)) +
		math.Floor(30.6001*float64(m+1)) +
		float64(d) + float64(b) - 1524.5
	dayFrac := (float64(t.Hour()) +
		float64(t.Minute())/60 +
		(float64(t.Second())+float64(t.Nanosecond())/1e9)/3600) / 24
	return jd0 + dayFrac
}

// GMST returns the Greenwich mean sidereal time in radians at time t,
// using the IAU 1982 model.
func GMST(t time.Time) float64 {
	jd := JulianDate(t)
	tu := (jd - 2451545.0) / 36525.0
	// Seconds of sidereal time.
	gmst := 67310.54841 + (876600*3600+8640184.812866)*tu +
		0.093104*tu*tu - 6.2e-6*tu*tu*tu
	gmst = math.Mod(gmst, 86400)
	if gmst < 0 {
		gmst += 86400
	}
	return gmst * 2 * math.Pi / 86400
}

// ECIToECEF rotates an ECI position into the Earth-fixed frame at time t.
// Polar motion and nutation are neglected.
func ECIToECEF(p Vec3, t time.Time) Vec3 {
	theta := GMST(t)
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// ECEFToECI rotates an Earth-fixed position into the inertial frame at time t.
func ECEFToECI(p Vec3, t time.Time) Vec3 {
	theta := GMST(t)
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*p.X - s*p.Y,
		Y: s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// GeodeticToECEF converts a geodetic position to ECEF meters.
func GeodeticToECEF(g Geodetic) Vec3 {
	lat := Deg2Rad(g.LatDeg)
	lon := Deg2Rad(g.LonDeg)
	e2 := EarthFlattening * (2 - EarthFlattening)
	sinLat := math.Sin(lat)
	n := EarthRadius / math.Sqrt(1-e2*sinLat*sinLat)
	cosLat := math.Cos(lat)
	return Vec3{
		X: (n + g.AltM) * cosLat * math.Cos(lon),
		Y: (n + g.AltM) * cosLat * math.Sin(lon),
		Z: (n*(1-e2) + g.AltM) * sinLat,
	}
}

// ECEFToGeodetic converts an ECEF position to geodetic coordinates using
// Bowring's iterative method (converges in a handful of iterations to
// sub-millimeter accuracy for LEO altitudes).
func ECEFToGeodetic(p Vec3) Geodetic {
	e2 := EarthFlattening * (2 - EarthFlattening)
	lon := math.Atan2(p.Y, p.X)
	r := math.Hypot(p.X, p.Y)
	// Initial latitude guess assuming spherical Earth.
	lat := math.Atan2(p.Z, r*(1-e2))
	var alt float64
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := EarthRadius / math.Sqrt(1-e2*sinLat*sinLat)
		alt = r/math.Cos(lat) - n
		newLat := math.Atan2(p.Z, r*(1-e2*n/(n+alt)))
		if math.Abs(newLat-lat) < 1e-12 {
			lat = newLat
			break
		}
		lat = newLat
	}
	return Geodetic{
		LatDeg: Rad2Deg(lat),
		LonDeg: Rad2Deg(WrapPi(lon)),
		AltM:   alt,
	}
}

// SubsatellitePoint returns the geodetic point directly beneath an ECI
// position at time t.
func SubsatellitePoint(eci Vec3, t time.Time) Geodetic {
	g := ECEFToGeodetic(ECIToECEF(eci, t))
	return g
}

// GreatCircleDistance returns the great-circle distance in meters between
// two geodetic points on a spherical Earth of radius EarthRadius (haversine
// formula). Altitudes are ignored.
func GreatCircleDistance(a, b Geodetic) float64 {
	la1, lo1 := Deg2Rad(a.LatDeg), Deg2Rad(a.LonDeg)
	la2, lo2 := Deg2Rad(b.LatDeg), Deg2Rad(b.LonDeg)
	dLat := la2 - la1
	dLon := lo2 - lo1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadius * math.Asin(math.Min(1, math.Sqrt(h)))
}

// ElevationAngle returns the elevation in radians of a target (ECEF) as seen
// from an observer (ECEF) on the Earth's surface. Negative values mean the
// target is below the observer's local horizon.
func ElevationAngle(observer, target Vec3) float64 {
	los := target.Sub(observer)
	up := observer.Unit() // Local vertical approximated by the geocentric direction.
	sinEl := los.Unit().Dot(up)
	return math.Asin(math.Max(-1, math.Min(1, sinEl)))
}
