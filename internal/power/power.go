// Package power models the satellite energy budget that motivates the
// paper's hardware choices ("volume, mass, energy, and cost constraints at
// the space edge prevent deployment of unlimited computational resources";
// the Orin's 15 W mode is "near the maximum reasonable power draw for a 3U
// cubesat subsystem"). It combines solar generation with eclipse geometry,
// a battery, and per-subsystem draws, and evaluates whether a deployment's
// compute duty cycle is energy-feasible — an analysis the paper invokes
// qualitatively and this reproduction makes checkable.
package power

import (
	"errors"
	"fmt"
	"math"
	"time"

	"kodan/internal/geo"
	"kodan/internal/hw"
	"kodan/internal/orbit"
	"kodan/internal/policy"
)

// Typed sentinel errors. Callers that price energy programmatically (the
// hybrid execution planner in internal/planner) branch on these with
// errors.Is instead of parsing messages, and no numeric path ever returns
// NaN in their place.
var (
	// ErrInvalidBus marks a non-physical electrical bus.
	ErrInvalidBus = errors.New("power: invalid bus")
	// ErrBadDuty marks a duty cycle outside [0, 1].
	ErrBadDuty = errors.New("power: duty cycle outside [0,1]")
	// ErrBadDeadline marks a non-positive frame deadline.
	ErrBadDeadline = errors.New("power: non-positive deadline")
	// ErrZeroLoad marks a bus with no load at all, whose battery autonomy
	// is undefined (0/0) rather than a finite number.
	ErrZeroLoad = errors.New("power: zero load")
)

// Bus describes the satellite electrical power system.
type Bus struct {
	// SolarW is the orbit-average panel output in sunlight.
	SolarW float64
	// BatteryWh is usable battery capacity.
	BatteryWh float64
	// IdleW is the platform's housekeeping draw (ADCS, OBC, thermal).
	IdleW float64
	// RadioW is the transmitter draw while downlinking.
	RadioW float64
}

// ThreeUBus returns a representative 3U cubesat power system: ~17 W
// effective generation from deployable panels, 40 Wh battery, 3 W
// housekeeping, 8 W X-band transmitter.
func ThreeUBus() Bus {
	return Bus{SolarW: 17, BatteryWh: 40, IdleW: 3, RadioW: 8}
}

// Validate rejects non-physical buses. A zero-capacity battery is legal —
// a bus that never rides through eclipse on stored energy (BatteryHours 0)
// is unusual but physical, and the planner must be able to price it
// without dividing by zero.
func (b Bus) Validate() error {
	if b.SolarW <= 0 || b.BatteryWh < 0 || b.IdleW < 0 || b.RadioW < 0 {
		return fmt.Errorf("%w: %+v", ErrInvalidBus, b)
	}
	return nil
}

// ComputeDraw returns the payload computer's average power for a target:
// the platform's published mode power scaled by the compute duty cycle
// (busy fraction of the frame period).
func ComputeDraw(target hw.Target, dutyCycle float64) float64 {
	w, err := Draw(target, dutyCycle)
	if err != nil {
		panic(err.Error())
	}
	return w
}

// Draw is ComputeDraw with a typed error instead of a panic, for callers
// (the planner's cost evaluation) that probe candidate duty cycles.
func Draw(target hw.Target, dutyCycle float64) (float64, error) {
	if dutyCycle < 0 || dutyCycle > 1 || math.IsNaN(dutyCycle) {
		return 0, fmt.Errorf("%w: %v", ErrBadDuty, dutyCycle)
	}
	return ModeWatts(target) * dutyCycle, nil
}

// EnergyPerFrame returns the compute energy in joules one frame costs on a
// target: mode power over the busy time, clamped at the deadline (a
// bottlenecked processor never idles but also never exceeds one deadline
// of work per frame). Negative busy times and non-positive deadlines are
// typed errors, never NaN.
func EnergyPerFrame(target hw.Target, busy, deadline time.Duration) (float64, error) {
	if deadline <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadDeadline, deadline)
	}
	if busy < 0 {
		return 0, fmt.Errorf("%w: negative busy time %v", ErrBadDuty, busy)
	}
	if busy > deadline {
		busy = deadline
	}
	return ModeWatts(target) * busy.Seconds(), nil
}

// ModeWatts returns each target's mode power from the paper's Section 4:
// the Orin runs in its 15 W mode; the i7-7800X draws ~140 W; the 1070 Ti
// ~180 W.
func ModeWatts(target hw.Target) float64 {
	switch target {
	case hw.Orin15W:
		return 15
	case hw.I7_7800X:
		return 140
	case hw.GTX1070Ti:
		return 180
	default:
		return 15
	}
}

// EclipseFraction returns the fraction of the orbit spent in Earth's
// shadow, from the spherical-Earth cylindrical-shadow model. For a
// sun-synchronous dawn-dusk orbit this approaches zero; for the Landsat
// 10:30 LTDN orbit it is ~0.35. We use the worst-case beta-angle-zero
// geometry, which depends only on altitude.
func EclipseFraction(e orbit.Elements) float64 {
	r := e.SemiMajorAxisM
	halfAngle := math.Asin(geo.EarthRadius / r)
	return halfAngle / math.Pi
}

// Budget is the evaluated energy balance of a deployment.
type Budget struct {
	// GenerationW is the orbit-average generation (solar x sunlit fraction).
	GenerationW float64
	// LoadW is the orbit-average load (idle + compute + radio duty).
	LoadW float64
	// MarginW is generation minus load; negative means infeasible.
	MarginW float64
	// ComputeDutyCycle is the busy fraction of the frame period.
	ComputeDutyCycle float64
	// EnergyPerFrameJ is compute energy spent per captured frame.
	EnergyPerFrameJ float64
	// BatteryHours is how long the battery alone could carry the load —
	// the eclipse-ride-through check.
	BatteryHours float64
}

// Feasible reports whether the orbit-average balance is positive and the
// battery rides through a worst-case eclipse (~36 min).
func (b Budget) Feasible() bool {
	return b.MarginW >= 0 && b.BatteryHours >= 0.6
}

// Evaluate computes the energy budget of a selection on a deployment.
// radioDuty is the downlink duty cycle (contact seconds per day / 86400).
func Evaluate(bus Bus, e orbit.Elements, target hw.Target, est policy.Estimate,
	deadline time.Duration, radioDuty float64) (Budget, error) {
	if err := bus.Validate(); err != nil {
		return Budget{}, err
	}
	if deadline <= 0 {
		return Budget{}, fmt.Errorf("%w: %v", ErrBadDeadline, deadline)
	}
	if radioDuty < 0 || radioDuty > 1 {
		return Budget{}, fmt.Errorf("%w: radio duty %f", ErrBadDuty, radioDuty)
	}
	if est.FrameTime < 0 {
		return Budget{}, fmt.Errorf("%w: negative frame time %v", ErrBadDuty, est.FrameTime)
	}

	// Compute duty: the processor is busy frameTime out of every deadline
	// (capped at 1 when bottlenecked — it never goes idle).
	duty := float64(est.FrameTime) / float64(deadline)
	if duty > 1 {
		duty = 1
	}

	computeW, err := Draw(target, duty)
	if err != nil {
		return Budget{}, err
	}
	load := bus.IdleW + computeW + bus.RadioW*radioDuty
	if load <= 0 {
		// No housekeeping, no compute, no radio: battery autonomy is 0/0.
		// A typed error beats the NaN the division would produce.
		return Budget{}, fmt.Errorf("%w: idle %.3f W, duty %.3f, radio duty %.3f",
			ErrZeroLoad, bus.IdleW, duty, radioDuty)
	}
	gen := bus.SolarW * (1 - EclipseFraction(e))

	busySecondsPerFrame := math.Min(est.FrameTime.Seconds(), deadline.Seconds())
	return Budget{
		GenerationW:      gen,
		LoadW:            load,
		MarginW:          gen - load,
		ComputeDutyCycle: duty,
		EnergyPerFrameJ:  ModeWatts(target) * busySecondsPerFrame,
		BatteryHours:     bus.BatteryWh / load,
	}, nil
}
