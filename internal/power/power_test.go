package power

import (
	"math"
	"testing"
	"time"

	"kodan/internal/hw"
	"kodan/internal/orbit"
	"kodan/internal/policy"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func estWithFrameTime(d time.Duration) policy.Estimate {
	return policy.Estimate{FrameTime: d}
}

func TestEclipseFractionLEO(t *testing.T) {
	e := orbit.Landsat8(epoch)
	f := EclipseFraction(e)
	// LEO worst-case eclipse is roughly 35-40% of the orbit.
	if f < 0.3 || f > 0.45 {
		t.Fatalf("eclipse fraction = %.3f", f)
	}
	// Higher orbits see less shadow.
	geo := e
	geo.SemiMajorAxisM = 42164e3
	if EclipseFraction(geo) >= f {
		t.Fatal("eclipse fraction not decreasing with altitude")
	}
}

func TestOrinKodanFeasibleOnThreeU(t *testing.T) {
	// A Kodan deployment on the Orin 15W with an elision-heavy logic
	// (frame time well under the deadline) must fit a 3U power budget —
	// the design point the paper argues for.
	deadline := 24 * time.Second
	b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), deadline, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Feasible() {
		t.Fatalf("Kodan/Orin infeasible on 3U: %+v", b)
	}
	if b.ComputeDutyCycle < 0.3 || b.ComputeDutyCycle > 0.4 {
		t.Fatalf("duty cycle = %.3f", b.ComputeDutyCycle)
	}
}

func TestDesktopTargetsInfeasibleOnThreeU(t *testing.T) {
	// The i7 and 1070 Ti draw 140-180 W: impossible on a cubesat bus —
	// the paper calls them "forward-looking" hardware.
	deadline := 24 * time.Second
	for _, target := range []hw.Target{hw.I7_7800X, hw.GTX1070Ti} {
		b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), target,
			estWithFrameTime(20*time.Second), deadline, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if b.Feasible() {
			t.Fatalf("%v feasible on a 3U bus: %+v", target, b)
		}
	}
}

func TestBottleneckedDeploymentRunsFlatOut(t *testing.T) {
	// Direct deploy with a 247 s frame time never idles: duty 1, and the
	// Orin still fits the energy envelope (the bottleneck is compute, not
	// power) but spends far more energy per frame.
	deadline := 24 * time.Second
	kodan, _ := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), deadline, 0.2)
	direct, _ := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(247*time.Second), deadline, 0.2)
	if direct.ComputeDutyCycle != 1 {
		t.Fatalf("bottlenecked duty = %v", direct.ComputeDutyCycle)
	}
	if direct.EnergyPerFrameJ <= kodan.EnergyPerFrameJ {
		t.Fatal("elision did not reduce energy per frame")
	}
	// Kodan's elision saves roughly the duty-cycle ratio in compute energy.
	ratio := direct.EnergyPerFrameJ / kodan.EnergyPerFrameJ
	if ratio < 2 {
		t.Fatalf("energy saving ratio = %.2f", ratio)
	}
}

func TestEvaluateValidation(t *testing.T) {
	e := orbit.Landsat8(epoch)
	if _, err := Evaluate(Bus{}, e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 0); err == nil {
		t.Fatal("bad bus accepted")
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), 0, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 1.5); err == nil {
		t.Fatal("bad radio duty accepted")
	}
}

func TestComputeDrawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ComputeDraw(hw.Orin15W, 1.5)
}

func TestBatteryRideThrough(t *testing.T) {
	b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), 24*time.Second, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// 40 Wh at ~10 W load: several hours of autonomy.
	if b.BatteryHours < 2 {
		t.Fatalf("battery hours = %.2f", b.BatteryHours)
	}
	if math.IsInf(b.BatteryHours, 0) {
		t.Fatal("battery hours infinite")
	}
}
