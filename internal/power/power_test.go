package power

import (
	"errors"
	"math"
	"testing"
	"time"

	"kodan/internal/hw"
	"kodan/internal/orbit"
	"kodan/internal/policy"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func estWithFrameTime(d time.Duration) policy.Estimate {
	return policy.Estimate{FrameTime: d}
}

func TestEclipseFractionLEO(t *testing.T) {
	e := orbit.Landsat8(epoch)
	f := EclipseFraction(e)
	// LEO worst-case eclipse is roughly 35-40% of the orbit.
	if f < 0.3 || f > 0.45 {
		t.Fatalf("eclipse fraction = %.3f", f)
	}
	// Higher orbits see less shadow.
	geo := e
	geo.SemiMajorAxisM = 42164e3
	if EclipseFraction(geo) >= f {
		t.Fatal("eclipse fraction not decreasing with altitude")
	}
}

func TestOrinKodanFeasibleOnThreeU(t *testing.T) {
	// A Kodan deployment on the Orin 15W with an elision-heavy logic
	// (frame time well under the deadline) must fit a 3U power budget —
	// the design point the paper argues for.
	deadline := 24 * time.Second
	b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), deadline, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Feasible() {
		t.Fatalf("Kodan/Orin infeasible on 3U: %+v", b)
	}
	if b.ComputeDutyCycle < 0.3 || b.ComputeDutyCycle > 0.4 {
		t.Fatalf("duty cycle = %.3f", b.ComputeDutyCycle)
	}
}

func TestDesktopTargetsInfeasibleOnThreeU(t *testing.T) {
	// The i7 and 1070 Ti draw 140-180 W: impossible on a cubesat bus —
	// the paper calls them "forward-looking" hardware.
	deadline := 24 * time.Second
	for _, target := range []hw.Target{hw.I7_7800X, hw.GTX1070Ti} {
		b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), target,
			estWithFrameTime(20*time.Second), deadline, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if b.Feasible() {
			t.Fatalf("%v feasible on a 3U bus: %+v", target, b)
		}
	}
}

func TestBottleneckedDeploymentRunsFlatOut(t *testing.T) {
	// Direct deploy with a 247 s frame time never idles: duty 1, and the
	// Orin still fits the energy envelope (the bottleneck is compute, not
	// power) but spends far more energy per frame.
	deadline := 24 * time.Second
	kodan, _ := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), deadline, 0.2)
	direct, _ := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(247*time.Second), deadline, 0.2)
	if direct.ComputeDutyCycle != 1 {
		t.Fatalf("bottlenecked duty = %v", direct.ComputeDutyCycle)
	}
	if direct.EnergyPerFrameJ <= kodan.EnergyPerFrameJ {
		t.Fatal("elision did not reduce energy per frame")
	}
	// Kodan's elision saves roughly the duty-cycle ratio in compute energy.
	ratio := direct.EnergyPerFrameJ / kodan.EnergyPerFrameJ
	if ratio < 2 {
		t.Fatalf("energy saving ratio = %.2f", ratio)
	}
}

func TestEvaluateValidation(t *testing.T) {
	e := orbit.Landsat8(epoch)
	if _, err := Evaluate(Bus{}, e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 0); err == nil {
		t.Fatal("bad bus accepted")
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), 0, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 1.5); err == nil {
		t.Fatal("bad radio duty accepted")
	}
}

func TestComputeDrawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ComputeDraw(hw.Orin15W, 1.5)
}

func TestBatteryRideThrough(t *testing.T) {
	b, err := Evaluate(ThreeUBus(), orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), 24*time.Second, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// 40 Wh at ~10 W load: several hours of autonomy.
	if b.BatteryHours < 2 {
		t.Fatalf("battery hours = %.2f", b.BatteryHours)
	}
	if math.IsInf(b.BatteryHours, 0) {
		t.Fatal("battery hours infinite")
	}
}

func TestZeroBatteryBusEvaluates(t *testing.T) {
	// A battery-less bus is physical (zero eclipse autonomy), and pricing
	// it must not divide by zero: BatteryHours is exactly 0, never NaN.
	bus := ThreeUBus()
	bus.BatteryWh = 0
	b, err := Evaluate(bus, orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(8*time.Second), 24*time.Second, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if b.BatteryHours != 0 {
		t.Fatalf("battery hours = %v, want 0", b.BatteryHours)
	}
	if math.IsNaN(b.BatteryHours) || math.IsNaN(b.LoadW) || math.IsNaN(b.MarginW) {
		t.Fatalf("NaN in budget: %+v", b)
	}
	if b.Feasible() {
		t.Fatal("no-battery bus passed the ride-through check")
	}
}

func TestNegativeBatteryRejected(t *testing.T) {
	bus := ThreeUBus()
	bus.BatteryWh = -1
	if err := bus.Validate(); !errors.Is(err, ErrInvalidBus) {
		t.Fatalf("err = %v, want ErrInvalidBus", err)
	}
}

func TestZeroLoadTypedError(t *testing.T) {
	// No housekeeping draw, no compute, no radio: autonomy is 0/0. The
	// evaluation must refuse with a typed error instead of returning NaN.
	bus := Bus{SolarW: 17, BatteryWh: 40}
	_, err := Evaluate(bus, orbit.Landsat8(epoch), hw.Orin15W,
		estWithFrameTime(0), 24*time.Second, 0)
	if !errors.Is(err, ErrZeroLoad) {
		t.Fatalf("err = %v, want ErrZeroLoad", err)
	}
}

func TestEvaluateTypedErrors(t *testing.T) {
	e := orbit.Landsat8(epoch)
	if _, err := Evaluate(Bus{}, e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 0); !errors.Is(err, ErrInvalidBus) {
		t.Fatalf("bad bus: err = %v, want ErrInvalidBus", err)
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), 0, 0); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("zero deadline: err = %v, want ErrBadDeadline", err)
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(time.Second), time.Second, 1.5); !errors.Is(err, ErrBadDuty) {
		t.Fatalf("bad radio duty: err = %v, want ErrBadDuty", err)
	}
	if _, err := Evaluate(ThreeUBus(), e, hw.Orin15W, estWithFrameTime(-time.Second), time.Second, 0); !errors.Is(err, ErrBadDuty) {
		t.Fatalf("negative frame time: err = %v, want ErrBadDuty", err)
	}
}

func TestDrawTypedErrors(t *testing.T) {
	for _, duty := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Draw(hw.Orin15W, duty); !errors.Is(err, ErrBadDuty) {
			t.Fatalf("duty %v: err = %v, want ErrBadDuty", duty, err)
		}
	}
	w, err := Draw(hw.Orin15W, 0.5)
	if err != nil || w != 7.5 {
		t.Fatalf("Draw(Orin, 0.5) = %v, %v", w, err)
	}
	if w, err := Draw(hw.Orin15W, 0); err != nil || w != 0 {
		t.Fatalf("Draw(Orin, 0) = %v, %v", w, err)
	}
}

func TestEnergyPerFrame(t *testing.T) {
	// Busy time over the deadline is clamped: a bottlenecked processor
	// spends at most one deadline of energy per frame.
	j, err := EnergyPerFrame(hw.Orin15W, 8*time.Second, 24*time.Second)
	if err != nil || j != 15*8 {
		t.Fatalf("EnergyPerFrame = %v, %v", j, err)
	}
	j, err = EnergyPerFrame(hw.Orin15W, 247*time.Second, 24*time.Second)
	if err != nil || j != 15*24 {
		t.Fatalf("clamped EnergyPerFrame = %v, %v", j, err)
	}
	if _, err := EnergyPerFrame(hw.Orin15W, time.Second, 0); !errors.Is(err, ErrBadDeadline) {
		t.Fatalf("zero deadline: err = %v, want ErrBadDeadline", err)
	}
	if _, err := EnergyPerFrame(hw.Orin15W, -time.Second, time.Second); !errors.Is(err, ErrBadDuty) {
		t.Fatalf("negative busy: err = %v, want ErrBadDuty", err)
	}
}
