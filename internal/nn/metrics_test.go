package nn

import "testing"

// TestConfusionDegenerate pins the degenerate-input behavior of every
// Confusion metric, so callers dividing mission value by these rates can
// rely on the documented conventions: an empty matrix scores 0 everywhere
// except Precision, which returns 1 because an empty downlink pollutes
// nothing.
func TestConfusionDegenerate(t *testing.T) {
	cases := []struct {
		name                                                string
		c                                                   Confusion
		accuracy, precision, recall, positiveRate, baseRate float64
	}{
		{
			name:      "empty",
			c:         Confusion{},
			precision: 1, // no positive predictions: nothing polluted
		},
		{
			name:         "all-true-negative",
			c:            Confusion{TN: 10},
			accuracy:     1,
			precision:    1, // still no positive predictions
			recall:       0, // no actual positives either
			positiveRate: 0,
			baseRate:     0,
		},
		{
			name:         "all-false-negative",
			c:            Confusion{FN: 5},
			accuracy:     0,
			precision:    1, // nothing predicted positive
			recall:       0, // every actual positive missed
			positiveRate: 0,
			baseRate:     1,
		},
		{
			name:         "all-false-positive",
			c:            Confusion{FP: 4},
			accuracy:     0,
			precision:    0,
			recall:       0, // no actual positives
			positiveRate: 1,
			baseRate:     0,
		},
		{
			name:         "all-true-positive",
			c:            Confusion{TP: 7},
			accuracy:     1,
			precision:    1,
			recall:       1,
			positiveRate: 1,
			baseRate:     1,
		},
		{
			name:         "mixed",
			c:            Confusion{TP: 3, FP: 1, TN: 4, FN: 2},
			accuracy:     0.7,
			precision:    0.75,
			recall:       0.6,
			positiveRate: 0.4,
			baseRate:     0.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.Accuracy(); got != tc.accuracy {
				t.Errorf("Accuracy = %v, want %v", got, tc.accuracy)
			}
			if got := tc.c.Precision(); got != tc.precision {
				t.Errorf("Precision = %v, want %v", got, tc.precision)
			}
			if got := tc.c.Recall(); got != tc.recall {
				t.Errorf("Recall = %v, want %v", got, tc.recall)
			}
			if got := tc.c.PositiveRate(); got != tc.positiveRate {
				t.Errorf("PositiveRate = %v, want %v", got, tc.positiveRate)
			}
			if got := tc.c.BaseRate(); got != tc.baseRate {
				t.Errorf("BaseRate = %v, want %v", got, tc.baseRate)
			}
		})
	}
}

// TestConfusionAddMerge checks the accumulation primitives agree with
// direct field construction.
func TestConfusionAddMerge(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, false) // TN
	c.Add(false, true)  // FN
	c.Add(true, true)   // TP
	want := Confusion{TP: 2, FP: 1, TN: 1, FN: 1}
	if c != want {
		t.Fatalf("Add sequence = %+v, want %+v", c, want)
	}
	var m Confusion
	m.Merge(c)
	m.Merge(Confusion{TP: 1, FN: 2})
	if (m != Confusion{TP: 3, FP: 1, TN: 1, FN: 3}) {
		t.Fatalf("Merge = %+v", m)
	}
	if m.Total() != 8 {
		t.Fatalf("Total = %d, want 8", m.Total())
	}
}
