package nn

import (
	"encoding/binary"
	"math"
	"testing"

	"kodan/internal/xrand"
)

// decodeFloats reinterprets fuzz bytes as float64s, 8 bytes per value.
// Raw bit patterns naturally cover NaN, ±Inf, subnormals, and extreme
// magnitudes — exactly the values the quantized flight path must survive.
func decodeFloats(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// fuzzNet builds one deterministic binary net plus its int8 twin for the
// prediction fuzz target. Construction is cheap enough to run once per
// fuzz worker process.
func fuzzNet() (*Net, *QuantizedNet) {
	rng := xrand.New(97)
	net := NewBinary(5, []int{8}, rng)
	calib := make([][]float64, 32)
	for i := range calib {
		calib[i] = []float64{rng.Norm(0, 1), rng.Norm(0, 1), rng.Norm(0, 1), rng.Norm(0, 1), rng.Norm(0, 1)}
	}
	return net, net.Quantize(calib)
}

// FuzzPredict drives the quantized inference hot path with arbitrary
// input vectors: any length (empty, short, long) and any bit pattern
// (NaN, ±Inf, subnormal). The contract under fuzz is total: never panic,
// always return a probability in [0, 1]. The float path is exercised too
// whenever the decoded length matches its fixed input contract.
func FuzzPredict(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 5*8))
	nanInf := make([]byte, 6*8)
	binary.LittleEndian.PutUint64(nanInf[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nanInf[8:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(nanInf[16:], math.Float64bits(math.Inf(-1)))
	binary.LittleEndian.PutUint64(nanInf[24:], math.Float64bits(5e-324))
	binary.LittleEndian.PutUint64(nanInf[32:], math.Float64bits(1e308))
	binary.LittleEndian.PutUint64(nanInf[40:], math.Float64bits(-0.0))
	f.Add(nanInf)

	net, q := fuzzNet()
	f.Fuzz(func(t *testing.T, data []byte) {
		x := decodeFloats(data, 64)
		p := q.PredictBinary(x)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("quantized PredictBinary(%v) = %v, want finite in [0,1]", x, p)
		}
		out := make([]float64, 1)
		q.PredictBatch([][]float64{x}, out)
		if math.Float64bits(out[0]) != math.Float64bits(p) {
			t.Fatalf("PredictBatch = %v, PredictBinary = %v", out[0], p)
		}
		if len(x) == net.Inputs() {
			pf := net.PredictBinary(x)
			// The float path promises only not to panic on wild inputs:
			// near-MaxFloat64 magnitudes can overflow a dot product to
			// Inf-Inf = NaN (the fuzzer found one; see the committed
			// corpus), and that is float arithmetic, not a bug — the
			// clamped quantized path above is the defensive flight
			// surface. In range is asserted only where overflow is
			// impossible: finite inputs of moderate magnitude.
			moderate := true
			for _, v := range x {
				if math.IsNaN(v) || math.Abs(v) > 1e100 {
					moderate = false
					break
				}
			}
			if moderate && (math.IsNaN(pf) || pf < 0 || pf > 1) {
				t.Fatalf("float PredictBinary(%v) = %v, want in [0,1] for moderate finite input", x, pf)
			}
		}
	})
}

// FuzzQuantize derives int8 twins from arbitrary weight and calibration
// bit patterns. Contract: Quantize never panics, every quantized weight
// round-trips onto the grid within half a step (finite weights inside the
// grid) or clamps to the edge, and the derived net still predicts a
// probability in [0, 1].
func FuzzQuantize(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	wild := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(wild[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(wild[8:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(wild[16:], math.Float64bits(-1e300))
	binary.LittleEndian.PutUint64(wild[24:], math.Float64bits(1e-300))
	f.Add(wild)

	f.Fuzz(func(t *testing.T, data []byte) {
		vals := decodeFloats(data, 32)
		rng := xrand.New(7)
		net := NewBinary(3, []int{4}, rng)
		// Overwrite weights with fuzzed bit patterns; Quantize must cope
		// with any of them via its scale fallbacks.
		for i := range net.layers[0].w {
			if i < len(vals) {
				net.layers[0].w[i] = vals[i]
			}
		}
		calib := [][]float64{vals, nil, {1}}
		if len(vals) >= 3 {
			calib = append(calib, vals[:3])
		}
		q := net.Quantize(calib)
		for li, l := range q.layers {
			for _, w := range l.w {
				if w < -127 || w > 127 {
					t.Fatalf("layer %d: quantized weight %d off the grid", li, w)
				}
			}
			if l.scale <= 0 || math.IsNaN(l.scale) || math.IsInf(l.scale, 0) {
				t.Fatalf("layer %d: degenerate dequant scale %v", li, l.scale)
			}
		}
		p := q.PredictBinary([]float64{0.5, -0.5, 0.25})
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("fuzzed quantized net: PredictBinary = %v", p)
		}
		// Scalar round-trip bound for in-range finite values.
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) >= 127 {
				continue
			}
			qv := quantizeUnit(v)
			if math.Abs(float64(qv)-v) > 0.5 {
				t.Fatalf("quantizeUnit(%v) = %d breaks the half-step bound", v, qv)
			}
		}
	})
}
