package nn

import (
	"fmt"
	"math"
	"sync"
)

// QuantizedNet is the int8 twin of a trained Net: post-training per-layer
// symmetric quantization of weights and activations, integer matrix-vector
// accumulation, and a float dequantization only at each layer output.
//
// The derivation (Net.Quantize) maps every layer's weights onto the
// [-127, 127] grid with one scale per layer (wScale = maxAbs(w)/127) and
// calibrates one activation scale per layer input from sample data
// (inScale = maxAbs(activation)/127), so a layer's dot product runs
// entirely in int32 and is rescaled once by wScale*inScale. Biases and
// nonlinearities stay float — they are O(out) per layer, not O(in*out).
//
// Inference is defensive by design, because the quantized path is the one
// that flies: inputs containing NaN (treated as 0), ±Inf (clamped to the
// grid edge), or of the wrong length (missing features read as 0, extras
// ignored) never panic and always produce a finite probability. The float
// path remains authoritative — the transformation measures quantized
// models through the same validation confusions, so any accuracy loss is
// priced into the selection logic rather than assumed away.
//
// A QuantizedNet is immutable after derivation and safe for concurrent
// prediction: each call borrows scratch from an internal pool.
type QuantizedNet struct {
	layers  []qlayer
	softmax bool
	// width is the widest layer boundary, sizing one reusable scratch.
	width int
	pool  sync.Pool
}

// qlayer is one dense layer in integer form.
type qlayer struct {
	in, out int
	act     Activation
	w       []int8 // out x in, row-major, in units of wScale
	b       []float64
	// invIn quantizes this layer's float input: q = clamp(round(v*invIn)).
	invIn float64
	// inScale is the activation quantization step (1/invIn), the error
	// model's per-layer resolution.
	inScale float64
	// scale dequantizes one accumulated dot product: wScale * inScale.
	scale float64
}

// qscratch holds the per-call buffers of one quantized forward pass.
type qscratch struct {
	qin  []int8
	a, b []float64
}

// Quantize derives the int8 twin of a trained network. calib supplies
// sample inputs (typically a slice of the training set) whose float
// forward passes calibrate each layer's activation range; rows of the
// wrong length are skipped. With no usable calibration data the
// activation grid falls back to unit range ([-1, 1]), which keeps the
// network runnable but loosens the error bound — pass real samples.
// The receiver is not mutated and no randomness is consumed.
func (n *Net) Quantize(calib [][]float64) *QuantizedNet {
	nl := len(n.layers)
	maxAbs := make([]float64, nl)
	s := n.predict.Get().(*scratch)
	for _, x := range calib {
		if len(x) != n.layers[0].in {
			continue
		}
		in := x
		for i, l := range n.layers {
			for _, v := range in[:l.in] {
				if a := math.Abs(v); a > maxAbs[i] && !math.IsInf(a, 1) {
					maxAbs[i] = a
				}
			}
			l.forward(in, s.acts[i+1], s.preacts[i])
			in = s.acts[i+1]
		}
	}
	n.predict.Put(s)

	q := &QuantizedNet{softmax: n.softmax}
	for i, l := range n.layers {
		var wMax float64
		for _, v := range l.w {
			if a := math.Abs(v); a > wMax {
				wMax = a
			}
		}
		wScale := wMax / 127
		if wScale <= 0 || math.IsNaN(wScale) || math.IsInf(wScale, 0) {
			wScale = 1.0 / 127
		}
		inScale := maxAbs[i] / 127
		if inScale <= 0 || math.IsNaN(inScale) || math.IsInf(inScale, 0) {
			inScale = 1.0 / 127
		}
		// Extreme (but finite) weight and activation ranges can overflow
		// or underflow the combined dequantization step; clamp it to the
		// finite positive range so a zero accumulator never produces
		// 0*Inf = NaN downstream and the step stays invertible.
		scale := wScale * inScale
		switch {
		case math.IsInf(scale, 0) || math.IsNaN(scale):
			scale = math.MaxFloat64
		case scale <= 0:
			scale = math.SmallestNonzeroFloat64
		}
		ql := qlayer{
			in: l.in, out: l.out, act: l.act,
			w:       make([]int8, len(l.w)),
			b:       append([]float64(nil), l.b...),
			invIn:   1 / inScale,
			inScale: inScale,
			scale:   scale,
		}
		for j, v := range l.w {
			ql.w[j] = quantizeUnit(v / wScale)
		}
		q.layers = append(q.layers, ql)
		if l.in > q.width {
			q.width = l.in
		}
		if l.out > q.width {
			q.width = l.out
		}
	}
	q.pool.New = func() interface{} {
		return &qscratch{
			qin: make([]int8, q.width),
			a:   make([]float64, q.width),
			b:   make([]float64, q.width),
		}
	}
	return q
}

// quantizeUnit rounds an already-scaled value onto the symmetric int8
// grid: NaN maps to 0 and out-of-range values (±Inf included) clamp to the
// grid edge, so malformed inputs degrade instead of panicking.
func quantizeUnit(v float64) int8 {
	if v != v {
		return 0
	}
	if v >= 127 {
		return 127
	}
	if v <= -127 {
		return -127
	}
	return int8(math.Round(v))
}

// Inputs returns the network's input dimension.
func (q *QuantizedNet) Inputs() int { return q.layers[0].in }

// Outputs returns the network's output dimension.
func (q *QuantizedNet) Outputs() int { return q.layers[len(q.layers)-1].out }

// forwardInto runs one quantized pass, returning a slice owned by s.
func (q *QuantizedNet) forwardInto(s *qscratch, x []float64) []float64 {
	in := x
	nxt := s.a
	spare := s.b
	for li := range q.layers {
		l := &q.layers[li]
		qin := s.qin[:l.in]
		for i := range qin {
			var v float64
			if i < len(in) {
				v = in[i]
			}
			qin[i] = quantizeUnit(v * l.invIn)
		}
		out := nxt[:l.out]
		for o := 0; o < l.out; o++ {
			row := l.w[o*l.in : (o+1)*l.in]
			var acc int32
			for i, w := range row {
				acc += int32(w) * int32(qin[i])
			}
			out[o] = activate(float64(acc)*l.scale+l.b[o], l.act)
		}
		in = out
		nxt, spare = spare, nxt
	}
	_ = spare
	return in
}

// PredictBinary returns P(positive) for a binary network. Unlike the
// float path it tolerates any input shape or value (see the type comment)
// and always returns a finite probability in [0, 1].
func (q *QuantizedNet) PredictBinary(x []float64) float64 {
	if q.Outputs() != 1 {
		panic("nn: PredictBinary on non-binary net")
	}
	s := q.pool.Get().(*qscratch)
	p := q.forwardInto(s, x)[0]
	q.pool.Put(s)
	return p
}

// PredictBatch writes P(positive) for each input row xs[i] into out[i],
// borrowing one scratch for the whole batch; out must have at least
// len(xs) elements. Steady-state calls allocate nothing.
func (q *QuantizedNet) PredictBatch(xs [][]float64, out []float64) {
	if q.Outputs() != 1 {
		panic("nn: PredictBatch on non-binary net")
	}
	if len(out) < len(xs) {
		panic(fmt.Sprintf("nn: PredictBatch output size %d, want >= %d", len(out), len(xs)))
	}
	s := q.pool.Get().(*qscratch)
	for i, x := range xs {
		out[i] = q.forwardInto(s, x)[0]
	}
	q.pool.Put(s)
}

// PredictClass returns the argmax class for a quantized classifier. The
// softmax is monotone, so the argmax is taken over the raw head outputs.
func (q *QuantizedNet) PredictClass(x []float64) int {
	s := q.pool.Get().(*qscratch)
	out := q.forwardInto(s, x)
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	q.pool.Put(s)
	return best
}
