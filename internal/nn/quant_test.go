package nn

import (
	"math"
	"testing"

	"kodan/internal/xrand"
)

// trainedBinary fits a small binary net on a smooth separable problem and
// returns the net together with a held-out input set drawn from the same
// distribution — the shared fixture for the float-vs-int8 equivalence
// tests.
func trainedBinary(t *testing.T, seed uint64, hidden []int) (*Net, [][]float64, [][]float64) {
	t.Helper()
	rng := xrand.New(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 2000; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2}
		y := 0.0
		if x[0]+0.5*x[1]-x[2]+0.25*x[3] > 0.9 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	net := NewBinary(5, hidden, rng)
	net.Fit(xs, ys, TrainConfig{Epochs: 10, BatchSize: 32, LearnRate: 0.2, Momentum: 0.9}, rng)
	var probe [][]float64
	for i := 0; i < 1000; i++ {
		probe = append(probe, []float64{rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2, rng.Float64() * 2})
	}
	return net, xs, probe
}

// TestQuantizedEquivalence pins the tentpole contract: the int8 twin
// agrees with the float network's decisions on at least 99% of seeded
// random inputs, and its probabilities stay close.
func TestQuantizedEquivalence(t *testing.T) {
	for _, hidden := range [][]int{{10}, {16}, {3}} {
		net, calib, probe := trainedBinary(t, uint64(11+len(hidden)*7+hidden[0]), hidden)
		q := net.Quantize(calib[:256])
		agree := 0
		var maxDiff float64
		for _, x := range probe {
			pf := net.PredictBinary(x)
			pq := q.PredictBinary(x)
			if (pf > 0.5) == (pq > 0.5) {
				agree++
			}
			if d := math.Abs(pf - pq); d > maxDiff {
				maxDiff = d
			}
			if math.IsNaN(pq) || pq < 0 || pq > 1 {
				t.Fatalf("hidden=%v: quantized probability %v out of range", hidden, pq)
			}
		}
		frac := float64(agree) / float64(len(probe))
		if frac < 0.99 {
			t.Errorf("hidden=%v: float/int8 decision agreement %.4f < 0.99", hidden, frac)
		}
		if maxDiff > 0.25 {
			t.Errorf("hidden=%v: max probability drift %.3f too large", hidden, maxDiff)
		}
	}
}

// TestQuantizedBatchMatchesBinary pins PredictBatch to the scalar entry
// point bit-for-bit, for both the float and the quantized nets.
func TestQuantizedBatchMatchesBinary(t *testing.T) {
	net, calib, probe := trainedBinary(t, 29, []int{12})
	q := net.Quantize(calib[:256])

	out := make([]float64, len(probe))
	net.PredictBatch(probe, out)
	for i, x := range probe {
		if want := net.PredictBinary(x); math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("float PredictBatch[%d] = %v, PredictBinary = %v", i, out[i], want)
		}
	}

	q.PredictBatch(probe, out)
	for i, x := range probe {
		if want := q.PredictBinary(x); math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("quantized PredictBatch[%d] = %v, PredictBinary = %v", i, out[i], want)
		}
	}
}

// TestQuantizedDefensiveInputs feeds the quantized hot path every malformed
// input shape the type comment promises to tolerate: the calls must not
// panic and must return a finite probability in [0, 1].
func TestQuantizedDefensiveInputs(t *testing.T) {
	net, calib, _ := trainedBinary(t, 31, []int{10})
	q := net.Quantize(calib[:64])
	cases := map[string][]float64{
		"nil":      nil,
		"empty":    {},
		"short":    {0.5},
		"long":     {1, 2, 3, 4, 5, 6, 7, 8},
		"nan":      {math.NaN(), math.NaN(), 1, 1, 1},
		"posinf":   {math.Inf(1), 0, 0, 0, 0},
		"neginf":   {math.Inf(-1), 0, 0, 0, 0},
		"mixedinf": {math.Inf(1), math.Inf(-1), math.NaN(), 0.5, -0.5},
	}
	for name, x := range cases {
		p := q.PredictBinary(x)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("%s: PredictBinary = %v, want finite in [0,1]", name, p)
		}
	}
}

// TestQuantizeRoundTrip bounds the weight quantization error: every weight
// reconstructed from its int8 code is within half a grid step (plus the
// clamp at the grid edge) of the original.
func TestQuantizeRoundTrip(t *testing.T) {
	net, calib, _ := trainedBinary(t, 37, []int{14})
	q := net.Quantize(calib[:128])
	for li, l := range net.layers {
		ql := q.layers[li]
		var wMax float64
		for _, v := range l.w {
			if a := math.Abs(v); a > wMax {
				wMax = a
			}
		}
		wScale := wMax / 127
		if wScale <= 0 {
			t.Fatalf("layer %d: degenerate weight scale", li)
		}
		for j, v := range l.w {
			back := float64(ql.w[j]) * wScale
			if math.Abs(back-v) > wScale/2+1e-12 {
				t.Fatalf("layer %d weight %d: %v -> %d -> %v exceeds half-step bound %v",
					li, j, v, ql.w[j], back, wScale/2)
			}
		}
	}
}

// TestQuantizeUnitGrid pins the scalar quantizer's edge behavior.
func TestQuantizeUnitGrid(t *testing.T) {
	cases := []struct {
		in   float64
		want int8
	}{
		{0, 0},
		{0.49, 0},
		{0.5, 1}, // math.Round half-away-from-zero
		{-0.5, -1},
		{126.6, 127},
		{127, 127},
		{1000, 127},
		{math.Inf(1), 127},
		{-126.6, -127},
		{-1000, -127},
		{math.Inf(-1), -127},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := quantizeUnit(c.in); got != c.want {
			t.Errorf("quantizeUnit(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestQuantizeNoCalibration exercises the unit-range fallback: with no
// usable calibration rows the derived net must still run and stay finite.
func TestQuantizeNoCalibration(t *testing.T) {
	rng := xrand.New(5)
	net := NewBinary(4, []int{6}, rng)
	for _, calib := range [][][]float64{nil, {{1, 2}}, {{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}}} {
		q := net.Quantize(calib)
		p := q.PredictBinary([]float64{0.1, 0.2, 0.3, 0.4})
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("fallback quantization: PredictBinary = %v", p)
		}
	}
}

// TestQuantizedClassifier checks argmax agreement between the float and
// int8 classifiers stays high (the context engine path).
func TestQuantizedClassifier(t *testing.T) {
	rng := xrand.New(41)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 1500; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		cls := 0
		switch {
		case x[0] > 0.2:
			cls = 1
		case x[1] > 0.2:
			cls = 2
		}
		xs = append(xs, x)
		ys = append(ys, float64(cls))
	}
	net := NewClassifier(2, []int{16}, 3, rng)
	net.Fit(xs, ys, TrainConfig{Epochs: 30, BatchSize: 16, LearnRate: 0.1, Momentum: 0.9}, rng)
	q := net.Quantize(xs[:256])
	agree := 0
	for _, x := range xs {
		if net.PredictClass(x) == q.PredictClass(x) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(xs)); frac < 0.98 {
		t.Errorf("classifier argmax agreement %.4f < 0.98", frac)
	}
}

// TestPredictBatchAllocFree pins the zero-allocation contract of both bulk
// entry points: after warm-up, a steady-state batch allocates nothing.
func TestPredictBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	net, calib, probe := trainedBinary(t, 43, []int{14})
	q := net.Quantize(calib[:128])
	batch := probe[:64]
	out := make([]float64, len(batch))

	// Warm the scratch pools outside the measured region.
	net.PredictBatch(batch, out)
	q.PredictBatch(batch, out)

	if avg := testing.AllocsPerRun(50, func() {
		net.PredictBatch(batch, out)
	}); avg != 0 {
		t.Errorf("Net.PredictBatch allocates %.1f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		q.PredictBatch(batch, out)
	}); avg != 0 {
		t.Errorf("QuantizedNet.PredictBatch allocates %.1f per run, want 0", avg)
	}
}
