package nn

import (
	"math"
	"testing"
	"testing/quick"

	"kodan/internal/xrand"
)

func TestBinaryLearnsLinearlySeparable(t *testing.T) {
	rng := xrand.New(1)
	// y = 1 iff x0 + x1 > 1.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 2000; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		y := 0.0
		if x[0]+x[1] > 1 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	net := NewBinary(2, nil, rng) // logistic regression
	net.Fit(xs, ys, TrainConfig{Epochs: 20, BatchSize: 16, LearnRate: 0.5, Momentum: 0.9}, rng)
	var c Confusion
	for i, x := range xs {
		c.Add(net.PredictBinary(x) > 0.5, ys[i] > 0.5)
	}
	if acc := c.Accuracy(); acc < 0.97 {
		t.Fatalf("logistic accuracy = %.3f on separable data", acc)
	}
}

func TestHiddenLayerLearnsXOR(t *testing.T) {
	rng := xrand.New(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 3000; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := 0.0
		if (a > 0.5) != (b > 0.5) {
			y = 1
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	// XOR requires a hidden layer; logistic regression caps near 50%.
	net := NewBinary(2, []int{12}, rng)
	net.Fit(xs, ys, TrainConfig{Epochs: 120, BatchSize: 16, LearnRate: 0.3, Momentum: 0.9}, rng)
	var c Confusion
	for i, x := range xs {
		c.Add(net.PredictBinary(x) > 0.5, ys[i] > 0.5)
	}
	if acc := c.Accuracy(); acc < 0.9 {
		t.Fatalf("XOR accuracy = %.3f", acc)
	}
}

func TestCapacityOrdering(t *testing.T) {
	// On a nonlinear problem, a larger net must beat a logistic model —
	// the mechanism behind the Table 1 architecture quality ordering.
	rng := xrand.New(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 3000; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		y := 0.0
		if a*a+b*b < 0.4 {
			y = 1
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	fit := func(hidden []int, seed uint64) float64 {
		r := xrand.New(seed)
		net := NewBinary(2, hidden, r)
		net.Fit(xs, ys, TrainConfig{Epochs: 40, BatchSize: 16, LearnRate: 0.3, Momentum: 0.9}, r)
		var c Confusion
		for i, x := range xs {
			c.Add(net.PredictBinary(x) > 0.5, ys[i] > 0.5)
		}
		return c.Accuracy()
	}
	small := fit(nil, 7)
	big := fit([]int{12}, 7)
	if big <= small+0.05 {
		t.Fatalf("capacity gave no benefit: small %.3f big %.3f", small, big)
	}
}

func TestClassifierLearnsQuadrants(t *testing.T) {
	rng := xrand.New(9)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 4000; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		cls := 0
		if a >= 0 && b < 0 {
			cls = 1
		} else if a < 0 && b >= 0 {
			cls = 2
		} else if a < 0 && b < 0 {
			cls = 3
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, float64(cls))
	}
	net := NewClassifier(2, []int{12}, 4, rng)
	net.Fit(xs, ys, TrainConfig{Epochs: 30, BatchSize: 16, LearnRate: 0.2, Momentum: 0.9}, rng)
	correct := 0
	for i, x := range xs {
		if net.PredictClass(x) == int(ys[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.93 {
		t.Fatalf("quadrant accuracy = %.3f", acc)
	}
}

func TestPredictProbabilitiesSumToOne(t *testing.T) {
	rng := xrand.New(2)
	net := NewClassifier(3, []int{5}, 4, rng)
	if err := quick.Check(func(a, b, c int16) bool {
		p := net.Predict([]float64{float64(a) / 1000, float64(b) / 1000, float64(c) / 1000})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryOutputInUnitInterval(t *testing.T) {
	rng := xrand.New(2)
	net := NewBinary(3, []int{4}, rng)
	if err := quick.Check(func(a, b, c int16) bool {
		p := net.PredictBinary([]float64{float64(a) / 100, float64(b) / 100, float64(c) / 100})
		return p >= 0 && p <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	build := func() (*Net, [][]float64, []float64) {
		rng := xrand.New(11)
		var xs [][]float64
		var ys []float64
		for i := 0; i < 500; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y := 0.0
			if x[0] > x[1] {
				y = 1
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		net := NewBinary(2, []int{4}, rng)
		net.Fit(xs, ys, DefaultTrain(), rng)
		return net, xs, ys
	}
	n1, xs, _ := build()
	n2, _, _ := build()
	for _, x := range xs[:50] {
		if n1.PredictBinary(x) != n2.PredictBinary(x) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestParamsCount(t *testing.T) {
	rng := xrand.New(1)
	// 3 inputs -> 4 hidden -> 1: (3*4+4) + (4*1+1) = 21.
	net := NewBinary(3, []int{4}, rng)
	if got := net.Params(); got != 21 {
		t.Fatalf("params = %d, want 21", got)
	}
	if net.Inputs() != 3 || net.Outputs() != 1 {
		t.Fatalf("shape %dx%d", net.Inputs(), net.Outputs())
	}
}

func TestPredictPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBinary(3, nil, xrand.New(1)).Predict([]float64{1})
}

func TestFitMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng := xrand.New(1)
	NewBinary(1, nil, rng).Fit([][]float64{{1}}, nil, DefaultTrain(), rng)
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN.
	for i := 0; i < 3; i++ {
		c.Add(true, true)
	}
	c.Add(true, false)
	for i := 0; i < 4; i++ {
		c.Add(false, false)
	}
	c.Add(false, true)
	c.Add(false, true)
	if c.Total() != 10 {
		t.Fatalf("total %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.7 {
		t.Errorf("accuracy %v", got)
	}
	if got := c.Precision(); got != 0.75 {
		t.Errorf("precision %v", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Errorf("recall %v", got)
	}
	if got := c.PositiveRate(); got != 0.4 {
		t.Errorf("positive rate %v", got)
	}
	if got := c.BaseRate(); got != 0.5 {
		t.Errorf("base rate %v", got)
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Fatalf("merge = %+v", a)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var empty Confusion
	if empty.Accuracy() != 0 || empty.Recall() != 0 {
		t.Error("empty accuracy/recall nonzero")
	}
	if empty.Precision() != 1 {
		t.Error("empty precision should be 1 (nothing polluted)")
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	rng := xrand.New(21)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 3000; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := 0.0
		if (a > 0.5) != (b > 0.5) {
			y = 1
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	net := NewBinary(2, []int{12}, rng)
	net.Fit(xs, ys, TrainConfig{Epochs: 60, BatchSize: 16, LearnRate: 0.01, Optimizer: Adam}, rng)
	var c Confusion
	for i, x := range xs {
		c.Add(net.PredictBinary(x) > 0.5, ys[i] > 0.5)
	}
	if acc := c.Accuracy(); acc < 0.9 {
		t.Fatalf("Adam XOR accuracy = %.3f", acc)
	}
}

func TestAdamConvergesFasterThanSGDOnIllConditioned(t *testing.T) {
	// Features with wildly different scales: Adam's per-parameter step
	// adapts; plain SGD struggles at a single learning rate.
	build := func() ([][]float64, []float64) {
		rng := xrand.New(31)
		var xs [][]float64
		var ys []float64
		for i := 0; i < 2000; i++ {
			a := rng.Float64() * 100 // large-scale feature
			b := rng.Float64() * 0.01
			y := 0.0
			if a/100+b/0.01 > 1 {
				y = 1
			}
			xs = append(xs, []float64{a, b})
			ys = append(ys, y)
		}
		return xs, ys
	}
	xs, ys := build()
	fit := func(opt Optimizer, lr float64) float64 {
		rng := xrand.New(5)
		net := NewBinary(2, nil, rng)
		net.Fit(xs, ys, TrainConfig{Epochs: 60, BatchSize: 16, LearnRate: lr, Momentum: 0.9, Optimizer: opt}, rng)
		var c Confusion
		for i, x := range xs {
			c.Add(net.PredictBinary(x) > 0.5, ys[i] > 0.5)
		}
		return c.Accuracy()
	}
	sgd := fit(SGD, 0.001) // must be tiny or the 0-100 feature explodes
	adam := fit(Adam, 0.2)
	// Any workable single SGD learning rate caps well below Adam here
	// (lr large enough to move the tiny-scale weight diverges on the
	// large-scale one).
	if adam <= sgd+0.05 {
		t.Fatalf("Adam (%.3f) not clearly better than SGD (%.3f) on ill-conditioned features", adam, sgd)
	}
	if adam < 0.8 {
		t.Fatalf("Adam accuracy = %.3f", adam)
	}
}

func TestAdamDeterministic(t *testing.T) {
	fit := func() float64 {
		rng := xrand.New(77)
		var xs [][]float64
		var ys []float64
		for i := 0; i < 300; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y := 0.0
			if x[0] > x[1] {
				y = 1
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		net := NewBinary(2, []int{4}, rng)
		net.Fit(xs, ys, TrainConfig{Epochs: 5, BatchSize: 8, LearnRate: 0.01, Optimizer: Adam}, rng)
		return net.PredictBinary([]float64{0.3, 0.7})
	}
	if fit() != fit() {
		t.Fatal("Adam training not deterministic")
	}
}
