package nn

// Confusion is a binary confusion matrix accumulated over per-pixel
// predictions. "Positive" means high-value (cloud-free) throughout the
// reproduction, matching the paper's precision definition
// TP / (TP + FP) — the fraction of downlinked pixels that are truly
// high-value.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Merge accumulates another confusion matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns the fraction of correct labels, the paper's "fraction
// correct". Returns 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP). Returns 1 when nothing was predicted
// positive (an empty downlink pollutes nothing).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN). Returns 0 for an empty positive class.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// PositiveRate returns the fraction of samples predicted positive — the
// fraction of pixels an application would keep for downlink.
func (c Confusion) PositiveRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.FP) / float64(c.Total())
}

// BaseRate returns the fraction of samples that are actually positive.
func (c Confusion) BaseRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.FN) / float64(c.Total())
}
