// Package nn is a small, dependency-free neural-network library: dense
// feed-forward networks with ReLU hidden layers, sigmoid or softmax heads,
// stochastic gradient descent with momentum, and classification metrics.
// It stands in for the paper's PyTorch-based model-zoo training (Section 4)
// at the scale this reproduction needs: pixel-level cloud classifiers and
// the tile-level context engine. Initialization and shuffling draw from
// deterministic xrand streams, so training is reproducible.
package nn

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"kodan/internal/telemetry"
	"kodan/internal/xrand"
)

// Activation selects a layer nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Sigmoid
)

// layer is one dense layer: out = act(W*in + b).
type layer struct {
	in, out int
	act     Activation
	w       []float64 // out x in, row-major
	b       []float64
	// Gradient accumulators and optimizer state (momentum, and Adam's
	// second-moment buffers, allocated lazily).
	gw, gb []float64
	mw, mb []float64
	vw, vb []float64
}

func newLayer(in, out int, act Activation, rng *xrand.Rand) *layer {
	l := &layer{
		in: in, out: out, act: act,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		mw: make([]float64, in*out),
		mb: make([]float64, out),
	}
	// He initialization for ReLU, Xavier otherwise.
	scale := math.Sqrt(2 / float64(in))
	if act != ReLU {
		scale = math.Sqrt(1 / float64(in))
	}
	for i := range l.w {
		l.w[i] = rng.Norm(0, scale)
	}
	return l
}

// forward computes the layer output and caches pre-activations in preact.
func (l *layer) forward(in, out, preact []float64) {
	in = in[:l.in]
	relu := l.act == ReLU
	for o := 0; o < l.out; o++ {
		sum := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		x := in[:len(row)] // provably equal lengths: elides the per-element bounds check
		// Unrolled strictly in index order, so the accumulation is
		// bit-identical to the plain loop.
		i := 0
		for ; i+4 <= len(row); i += 4 {
			sum += row[i] * x[i]
			sum += row[i+1] * x[i+1]
			sum += row[i+2] * x[i+2]
			sum += row[i+3] * x[i+3]
		}
		for ; i < len(row); i++ {
			sum += row[i] * x[i]
		}
		preact[o] = sum
		// ReLU (every hidden layer) is applied inline; the per-output
		// dispatch only remains for the small head layers.
		if relu {
			if sum < 0 {
				sum = 0
			}
			out[o] = sum
		} else {
			out[o] = activate(sum, l.act)
		}
	}
}

// backward consumes dOut (gradient wrt layer output), accumulates weight
// gradients, and writes the gradient wrt the layer input into dIn. out is
// the layer's forward output for the same pass: sigmoid layers derive
// their gradient from it (s*(1-s)) instead of re-evaluating the Exp, which
// is bit-identical because out holds exactly activate(preact). A nil dIn
// skips the input-gradient accumulation — the first layer's input gradient
// is never consumed, so the caller elides roughly half its backward work.
func (l *layer) backward(in, out, preact, dOut, dIn []float64) {
	in = in[:l.in]
	for i := range dIn {
		dIn[i] = 0
	}
	for o := 0; o < l.out; o++ {
		g := dOut[o]
		switch l.act {
		case Sigmoid:
			g *= out[o] * (1 - out[o])
		case ReLU:
			if preact[o] < 0 {
				// Multiply rather than assign zero: bit-identical to the
				// activateGrad path even for non-finite upstream gradients.
				g *= 0
			}
		case Linear:
		default:
			g *= activateGrad(preact[o], l.act)
		}
		l.gb[o] += g
		grow := l.gw[o*l.in : (o+1)*l.in]
		if dIn == nil {
			x := in[:len(grow)]
			i := 0
			for ; i+4 <= len(grow); i += 4 {
				grow[i] += g * x[i]
				grow[i+1] += g * x[i+1]
				grow[i+2] += g * x[i+2]
				grow[i+3] += g * x[i+3]
			}
			for ; i < len(grow); i++ {
				grow[i] += g * x[i]
			}
			continue
		}
		row := l.w[o*l.in : (o+1)*l.in][:len(in)]
		grow = grow[:len(in)]
		d := dIn[:len(in)]
		for i, v := range in {
			grow[i] += g * v
			d[i] += g * row[i]
		}
	}
}

// step applies accumulated gradients with SGD + momentum and clears them.
func (l *layer) step(lr, momentum float64, batch int) {
	inv := 1 / float64(batch)
	for i := range l.w {
		l.mw[i] = momentum*l.mw[i] - lr*l.gw[i]*inv
		l.w[i] += l.mw[i]
		l.gw[i] = 0
	}
	for i := range l.b {
		l.mb[i] = momentum*l.mb[i] - lr*l.gb[i]*inv
		l.b[i] += l.mb[i]
		l.gb[i] = 0
	}
}

// Adam hyperparameters (the standard defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// stepAdam applies accumulated gradients with Adam and clears them. t is
// the 1-based update count for bias correction.
func (l *layer) stepAdam(lr float64, batch, t int) {
	if l.vw == nil {
		l.vw = make([]float64, len(l.w))
		l.vb = make([]float64, len(l.b))
	}
	inv := 1 / float64(batch)
	c1 := 1 - math.Pow(adamBeta1, float64(t))
	c2 := 1 - math.Pow(adamBeta2, float64(t))
	upd := func(w, g, m, v []float64) {
		for i := range w {
			grad := g[i] * inv
			m[i] = adamBeta1*m[i] + (1-adamBeta1)*grad
			v[i] = adamBeta2*v[i] + (1-adamBeta2)*grad*grad
			mHat := m[i] / c1
			vHat := v[i] / c2
			w[i] -= lr * mHat / (math.Sqrt(vHat) + adamEps)
			g[i] = 0
		}
	}
	upd(l.w, l.gw, l.mw, l.vw)
	upd(l.b, l.gb, l.mb, l.vb)
}

func activate(x float64, a Activation) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

func activateGrad(pre float64, a Activation) float64 {
	switch a {
	case ReLU:
		if pre < 0 {
			return 0
		}
		return 1
	case Sigmoid:
		s := 1 / (1 + math.Exp(-pre))
		return s * (1 - s)
	default:
		return 1
	}
}

// Net is a feed-forward network. Build one with NewClassifier or
// NewBinary; the zero value is unusable.
//
// Concurrency: prediction (Predict, PredictBinary, PredictClass) is safe
// for concurrent use — each call borrows forward buffers from an internal
// pool. Training (Fit, FitCtx) mutates the weights and dedicated
// gradient/activation state and must not run concurrently with anything
// else on the same Net.
type Net struct {
	layers []*layer
	// train holds the dedicated training scratch (activations are needed
	// across the forward/backward pair, so Fit cannot share the pool).
	train *scratch
	// predict pools forward-only scratch for concurrent prediction.
	predict sync.Pool
	softmax bool
}

// scratch holds per-call activation buffers for one forward (and, for the
// training scratch, backward) pass.
type scratch struct {
	acts    [][]float64
	preacts [][]float64
	deltas  [][]float64
	// dOut is the output-gradient seed buffer for accumulate, hoisted here
	// so a training pass allocates nothing.
	dOut []float64
}

// NewBinary returns a binary classifier: inputs -> hidden ReLU layers ->
// one sigmoid output interpreted as P(positive). hidden may be empty for
// logistic regression.
func NewBinary(inputs int, hidden []int, rng *xrand.Rand) *Net {
	sizes := append([]int{inputs}, hidden...)
	n := &Net{}
	for i := 0; i+1 < len(sizes); i++ {
		n.layers = append(n.layers, newLayer(sizes[i], sizes[i+1], ReLU, rng))
	}
	n.layers = append(n.layers, newLayer(sizes[len(sizes)-1], 1, Sigmoid, rng))
	n.initScratch(inputs)
	return n
}

// NewClassifier returns a multiclass classifier: inputs -> hidden ReLU
// layers -> classes linear outputs with a softmax applied by Predict.
func NewClassifier(inputs int, hidden []int, classes int, rng *xrand.Rand) *Net {
	if classes < 2 {
		panic("nn: classifier needs >= 2 classes")
	}
	sizes := append([]int{inputs}, hidden...)
	n := &Net{softmax: true}
	for i := 0; i+1 < len(sizes); i++ {
		n.layers = append(n.layers, newLayer(sizes[i], sizes[i+1], ReLU, rng))
	}
	n.layers = append(n.layers, newLayer(sizes[len(sizes)-1], classes, Linear, rng))
	n.initScratch(inputs)
	return n
}

func (n *Net) initScratch(inputs int) {
	n.train = n.newScratch()
	n.predict.New = func() interface{} { return n.newScratch() }
}

func (n *Net) newScratch() *scratch {
	s := &scratch{}
	s.acts = append(s.acts, make([]float64, n.layers[0].in))
	for _, l := range n.layers {
		s.acts = append(s.acts, make([]float64, l.out))
		s.preacts = append(s.preacts, make([]float64, l.out))
		s.deltas = append(s.deltas, make([]float64, l.in))
	}
	s.dOut = make([]float64, n.layers[len(n.layers)-1].out)
	return s
}

// Inputs returns the network's input dimension.
func (n *Net) Inputs() int { return n.layers[0].in }

// Outputs returns the network's output dimension.
func (n *Net) Outputs() int { return n.layers[len(n.layers)-1].out }

// Params returns the total number of weights and biases — a proxy for the
// model's computational cost class.
func (n *Net) Params() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// forward runs the network using the given scratch; the final activation
// vector (owned by the scratch) is returned. When x already has the input
// dimension it feeds the first layer directly; otherwise it goes through
// the scratch's input buffer, preserving the historical tolerant behavior
// (truncate long inputs, leave short ones padded by the buffer).
func (n *Net) forward(s *scratch, x []float64) []float64 {
	in := x
	if len(x) != n.layers[0].in {
		copy(s.acts[0], x)
		in = s.acts[0]
	}
	for i, l := range n.layers {
		l.forward(in, s.acts[i+1], s.preacts[i])
		in = s.acts[i+1]
	}
	out := s.acts[len(s.acts)-1]
	if n.softmax {
		softmaxInPlace(out)
	}
	return out
}

// Predict returns the output for input x: a 1-element probability for
// binary nets, or a probability distribution over classes.
func (n *Net) Predict(x []float64) []float64 {
	if len(x) != n.Inputs() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.Inputs()))
	}
	s := n.predict.Get().(*scratch)
	out := n.forward(s, x)
	res := make([]float64, len(out))
	copy(res, out)
	n.predict.Put(s)
	return res
}

// PredictBinary returns P(positive) for a binary network.
func (n *Net) PredictBinary(x []float64) float64 {
	if n.Outputs() != 1 {
		panic("nn: PredictBinary on non-binary net")
	}
	s := n.predict.Get().(*scratch)
	p := n.forward(s, x)[0]
	n.predict.Put(s)
	return p
}

// PredictBatch writes P(positive) for each input row xs[i] into out[i],
// borrowing one scratch for the whole batch — the cache-friendly bulk
// entry point for tile traversal. out must have at least len(xs) elements.
// Each out[i] is bit-identical to PredictBinary(xs[i]); steady-state calls
// allocate nothing.
func (n *Net) PredictBatch(xs [][]float64, out []float64) {
	if n.Outputs() != 1 {
		panic("nn: PredictBatch on non-binary net")
	}
	if len(out) < len(xs) {
		panic(fmt.Sprintf("nn: PredictBatch output size %d, want >= %d", len(out), len(xs)))
	}
	s := n.predict.Get().(*scratch)
	for i, x := range xs {
		out[i] = n.forward(s, x)[0]
	}
	n.predict.Put(s)
}

// PredictClass returns the argmax class for a classifier.
func (n *Net) PredictClass(x []float64) int {
	s := n.predict.Get().(*scratch)
	out := n.forward(s, x)
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	n.predict.Put(s)
	return best
}

func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i := range v {
		v[i] = math.Exp(v[i] - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// accumulate runs one forward/backward pass. For binary nets target is
// {0,1} in target[0]; for classifiers target is a class index in target[0].
// Both use the cross-entropy gradient, which for sigmoid and softmax heads
// reduces to (p - y) at the final pre-activation.
func (n *Net) accumulate(x []float64, target float64, withLoss bool) float64 {
	if !n.softmax && len(n.layers) == 2 &&
		n.layers[0].act == ReLU && n.layers[1].act == Sigmoid && n.layers[1].out == 1 {
		return n.accumulateBinary2(x, target, withLoss)
	}
	s := n.train
	out := n.forward(s, x)
	last := len(n.layers) - 1
	dOut := s.dOut
	var loss float64
	if n.softmax {
		cls := int(target)
		for i := range dOut {
			y := 0.0
			if i == cls {
				y = 1
			}
			// Softmax+CE gradient wrt pre-activation is p-y; our backward
			// multiplies by activateGrad(Linear)=1, so feed p-y directly.
			dOut[i] = out[i] - y
		}
		if withLoss {
			loss = -math.Log(math.Max(out[int(target)], 1e-12))
		}
	} else {
		p := out[0]
		y := target
		// Sigmoid+BCE: gradient wrt pre-activation is p-y. backward will
		// multiply by sigmoid'(pre) = p*(1-p) (p is the forward output of
		// the same pre-activation, so this is the same float), so divide
		// it out here.
		g := p * (1 - p)
		if g < 1e-12 {
			g = 1e-12
		}
		dOut[0] = (p - y) / g
		if withLoss {
			loss = -y*math.Log(math.Max(p, 1e-12)) - (1-y)*math.Log(math.Max(1-p, 1e-12))
		}
	}

	// The first layer's input gradient has no consumer, so its backward
	// runs with a nil dIn. Its input is x itself unless forward had to
	// stage the input through the scratch buffer.
	in0 := x
	if len(x) != n.layers[0].in {
		in0 = s.acts[0]
	}
	for i := last; i > 0; i-- {
		n.layers[i].backward(s.acts[i], s.acts[i+1], s.preacts[i], dOut, s.deltas[i])
		dOut = s.deltas[i]
	}
	n.layers[0].backward(in0, s.acts[1], s.preacts[0], dOut, nil)
	return loss
}

// accumulateBinary2 is accumulate specialized for the reproduction's
// dominant network shape: one ReLU hidden layer feeding a single sigmoid
// output. Fusing the forward and backward passes into one function removes
// the per-layer method calls and activation dispatch from the training hot
// loop. Every floating-point operation runs in exactly the order of the
// generic path, so training stays bit-identical (the committed experiment
// goldens pin this).
func (n *Net) accumulateBinary2(x []float64, target float64, withLoss bool) float64 {
	s := n.train
	l0, l1 := n.layers[0], n.layers[1]

	in := x
	if len(x) != l0.in {
		copy(s.acts[0], x)
		in = s.acts[0]
	}
	in = in[:l0.in]

	// Forward: hidden ReLU layer.
	h := s.acts[1]
	ph := s.preacts[0]
	for o := 0; o < l0.out; o++ {
		sum := l0.b[o]
		row := l0.w[o*l0.in : (o+1)*l0.in]
		xx := in[:len(row)]
		i := 0
		for ; i+4 <= len(row); i += 4 {
			sum += row[i] * xx[i]
			sum += row[i+1] * xx[i+1]
			sum += row[i+2] * xx[i+2]
			sum += row[i+3] * xx[i+3]
		}
		for ; i < len(row); i++ {
			sum += row[i] * xx[i]
		}
		ph[o] = sum
		if sum < 0 {
			sum = 0
		}
		h[o] = sum
	}

	// Forward: sigmoid head.
	hin := h[:l1.in]
	sum := l1.b[0]
	{
		row := l1.w[:l1.in]
		xx := hin[:len(row)]
		i := 0
		for ; i+4 <= len(row); i += 4 {
			sum += row[i] * xx[i]
			sum += row[i+1] * xx[i+1]
			sum += row[i+2] * xx[i+2]
			sum += row[i+3] * xx[i+3]
		}
		for ; i < len(row); i++ {
			sum += row[i] * xx[i]
		}
	}
	s.preacts[1][0] = sum
	p := 1 / (1 + math.Exp(-sum))
	s.acts[2][0] = p

	var loss float64
	y := target
	g := p * (1 - p)
	if g < 1e-12 {
		g = 1e-12
	}
	dOut := (p - y) / g
	if withLoss {
		loss = -y*math.Log(math.Max(p, 1e-12)) - (1-y)*math.Log(math.Max(1-p, 1e-12))
	}

	// Backward: head. The sigmoid gradient comes from the forward output,
	// exactly as layer.backward derives it.
	d := s.deltas[1]
	for i := range d {
		d[i] = 0
	}
	gh := dOut * (p * (1 - p))
	l1.gb[0] += gh
	{
		grow := l1.gw[:l1.in][:len(hin)]
		row := l1.w[:l1.in][:len(hin)]
		dd := d[:len(hin)]
		for i, v := range hin {
			grow[i] += gh * v
			dd[i] += gh * row[i]
		}
	}

	// Backward: hidden layer; its input gradient has no consumer.
	for o := 0; o < l0.out; o++ {
		g := d[o]
		if ph[o] < 0 {
			// Multiply rather than assign zero: bit-identical to the
			// activateGrad path even for non-finite upstream gradients.
			g *= 0
		}
		l0.gb[o] += g
		grow := l0.gw[o*l0.in : (o+1)*l0.in]
		xx := in[:len(grow)]
		i := 0
		for ; i+4 <= len(grow); i += 4 {
			grow[i] += g * xx[i]
			grow[i+1] += g * xx[i+1]
			grow[i+2] += g * xx[i+2]
			grow[i+3] += g * xx[i+3]
		}
		for ; i < len(grow); i++ {
			grow[i] += g * xx[i]
		}
	}
	return loss
}

// Optimizer selects the weight-update rule.
type Optimizer int

// Optimizers.
const (
	// SGD is stochastic gradient descent with momentum (the default).
	SGD Optimizer = iota
	// Adam is adaptive moment estimation; LearnRate is the Adam alpha
	// (typical values are ~10x smaller than SGD's) and Momentum is
	// ignored.
	Adam
)

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LearnRate float64
	Momentum  float64
	Optimizer Optimizer
}

// DefaultTrain returns a configuration adequate for the reproduction's
// classifiers: 6 epochs of minibatch SGD with momentum.
func DefaultTrain() TrainConfig {
	return TrainConfig{Epochs: 6, BatchSize: 32, LearnRate: 0.1, Momentum: 0.9}
}

// Fit trains the network on (xs, ys) and returns the mean loss of the final
// epoch. For binary nets ys hold {0,1}; for classifiers ys hold class
// indices. Shuffling draws from rng, so training is deterministic.
func (n *Net) Fit(xs [][]float64, ys []float64, cfg TrainConfig, rng *xrand.Rand) float64 {
	loss, _ := n.FitCtx(context.Background(), xs, ys, cfg, rng)
	return loss
}

// FitCtx is Fit with cooperative cancellation: ctx is checked between
// epochs, and ctx.Err() is returned promptly if the context is done. A
// run that completes all epochs is bit-identical to Fit with the same
// inputs; a cancelled run leaves the network partially trained and should
// be discarded.
//
// When ctx carries a telemetry probe, each completed fit records its wall
// time into the nn.fit_seconds histogram plus epoch/sample counters — the
// per-stage training accounting the transform-timing reports aggregate.
// Training itself never reads telemetry state, so results are unaffected.
func (n *Net) FitCtx(ctx context.Context, xs [][]float64, ys []float64, cfg TrainConfig, rng *xrand.Rand) (float64, error) {
	if len(xs) != len(ys) {
		panic("nn: len(xs) != len(ys)")
	}
	if len(xs) == 0 {
		return 0, nil
	}
	if scope := telemetry.ProbeFrom(ctx).Metrics.Scope("nn"); scope != nil {
		start := time.Now()
		defer func() {
			scope.Histogram("fit_seconds").Observe(time.Since(start).Seconds())
			scope.Counter("fits").Inc()
			scope.Counter("epochs").Add(int64(cfg.Epochs))
			scope.Counter("samples").Add(int64(cfg.Epochs) * int64(len(xs)))
		}()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	updates := 0
	apply := func(batch int) {
		updates++
		for _, l := range n.layers {
			switch cfg.Optimizer {
			case Adam:
				l.stepAdam(cfg.LearnRate, batch, updates)
			default:
				l.step(cfg.LearnRate, cfg.Momentum, batch)
			}
		}
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		if err := ctx.Err(); err != nil {
			return lastLoss, err
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		// Only the final epoch's mean loss is reported, so earlier epochs
		// skip the cross-entropy terms; gradients are loss-independent.
		withLoss := ep == cfg.Epochs-1
		var epochLoss float64
		batch := 0
		for _, i := range idx {
			epochLoss += n.accumulate(xs[i], ys[i], withLoss)
			batch++
			if batch == cfg.BatchSize {
				apply(batch)
				batch = 0
			}
		}
		if batch > 0 {
			apply(batch)
		}
		lastLoss = epochLoss / float64(len(xs))
	}
	return lastLoss, nil
}
