// Package xrand provides a small, fully deterministic random number
// generator used by every stochastic stage of the reproduction (dataset
// synthesis, k-means initialization, neural-network initialization,
// shuffling). It is based on SplitMix64, whose output sequence is fixed by
// the algorithm itself rather than by a standard-library implementation, so
// experiment results are reproducible bit-for-bit across Go versions and
// platforms.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. The zero value is
// a valid generator seeded with 0; use New to seed explicitly.
//
// A *Rand is NOT safe for concurrent use: every draw mutates the single
// 64-bit state, and unsynchronized access both races and destroys
// reproducibility. Concurrent code must not share one generator; instead,
// derive an independent stream per goroutine (or per request) from a pure
// seed function of the work item — e.g. New(seed ^ mix(itemIndex)) or a
// Split taken at a fixed sequential point — so each stream's output is a
// function of the item alone, independent of scheduling order. The server
// and the transformation pipeline rely on this: per-(app, tiling)
// generators make concurrent transforms bit-identical to sequential ones
// (see TestDerivedStreamsConcurrencyInvariant).
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical sequences.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent generator from r. The derived stream is a
// function of r's current state, so splitting at a fixed point in a program
// yields a fixed stream. Splitting is the preferred way to hand independent
// randomness to subcomponents without coupling their consumption order.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value of the SplitMix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniform index weighted by the non-negative weights. It
// panics if weights is empty or sums to zero.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("xrand: Choice over empty or zero-weight distribution")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
