package xrand

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestKnownSequence(t *testing.T) {
	// Pin the SplitMix64 reference outputs for seed 1234567 so any future
	// change to the algorithm is caught.
	r := New(1234567)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(1234567)
	for i, w := range got {
		if g := r2.Uint64(); g != w {
			t.Fatalf("sequence not stable at %d: %d != %d", i, g, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Bounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %.4f, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev = %.4f, want ~2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := New(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(11)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if f := float64(counts[2]) / n; math.Abs(f-0.7) > 0.01 {
		t.Fatalf("weight-7 bucket frequency %.4f, want ~0.7", f)
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.1) > 0.01 {
		t.Fatalf("weight-1 bucket frequency %.4f, want ~0.1", f)
	}
}

func TestChoiceZeroWeightNeverChosen(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Choice([]float64{0, 1, 0}) != 1 {
			t.Fatal("zero-weight bucket chosen")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 10; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("split stream identical to parent stream")
	}
}

// TestDerivedStreamsConcurrencyInvariant proves the discipline the server
// relies on for deterministic concurrent transforms: a *Rand is never
// shared across goroutines; instead each work item derives its own
// generator from a pure seed function of the item. The draws each stream
// produces are then bit-identical whether the items run sequentially or
// concurrently in arbitrary interleavings.
func TestDerivedStreamsConcurrencyInvariant(t *testing.T) {
	const (
		baseSeed = 0xC0DA2023
		items    = 32
		draws    = 256
	)
	// Per-item seed derivation mirroring the pipeline's per-(app, tiling)
	// streams: a pure function of the item index, not of execution order.
	derive := func(i int) *Rand {
		return New(baseSeed ^ uint64(i)<<32 ^ uint64(i*2654435761))
	}

	sequential := make([][]uint64, items)
	for i := 0; i < items; i++ {
		r := derive(i)
		out := make([]uint64, draws)
		for d := range out {
			out[d] = r.Uint64()
		}
		sequential[i] = out
	}

	concurrent := make([][]uint64, items)
	var wg sync.WaitGroup
	for i := 0; i < items; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := derive(i)
			out := make([]uint64, draws)
			for d := range out {
				out[d] = r.Uint64()
			}
			concurrent[i] = out
		}(i)
	}
	wg.Wait()

	for i := 0; i < items; i++ {
		for d := 0; d < draws; d++ {
			if sequential[i][d] != concurrent[i][d] {
				t.Fatalf("stream %d diverged at draw %d: sequential %#x, concurrent %#x",
					i, d, sequential[i][d], concurrent[i][d])
			}
		}
	}

	// Distinct items must get distinct streams — derivation cannot collapse.
	seen := make(map[uint64]int)
	for i := 0; i < items; i++ {
		first := sequential[i][0]
		if prev, dup := seen[first]; dup {
			t.Fatalf("items %d and %d derived identical streams", prev, i)
		}
		seen[first] = i
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %.4f", f)
	}
}
