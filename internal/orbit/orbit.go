// Package orbit implements two-body Keplerian orbit propagation with J2
// secular perturbations — the fidelity class used by the cote simulator for
// constellation-scale studies. It includes a design helper for circular
// sun-synchronous orbits (the Landsat 8 regime the paper evaluates in) and
// ground-track utilities.
package orbit

import (
	"fmt"
	"math"
	"time"

	"kodan/internal/geo"
)

// Elements are classical Keplerian orbital elements at a reference epoch.
type Elements struct {
	// SemiMajorAxisM is the semi-major axis in meters.
	SemiMajorAxisM float64
	// Eccentricity in [0, 1).
	Eccentricity float64
	// InclinationRad is the inclination in radians.
	InclinationRad float64
	// RAANRad is the right ascension of the ascending node in radians.
	RAANRad float64
	// ArgPerigeeRad is the argument of perigee in radians.
	ArgPerigeeRad float64
	// MeanAnomalyRad is the mean anomaly at Epoch in radians.
	MeanAnomalyRad float64
	// Epoch is the reference time for MeanAnomalyRad and RAANRad.
	Epoch time.Time
}

// Validate reports whether the element set describes a propagatable orbit.
func (e Elements) Validate() error {
	if e.SemiMajorAxisM <= geo.EarthRadius {
		return fmt.Errorf("orbit: semi-major axis %.0f m is inside the Earth", e.SemiMajorAxisM)
	}
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %.4f outside [0,1)", e.Eccentricity)
	}
	if e.Epoch.IsZero() {
		return fmt.Errorf("orbit: zero epoch")
	}
	return nil
}

// Period returns the Keplerian orbital period.
func (e Elements) Period() time.Duration {
	t := 2 * math.Pi * math.Sqrt(math.Pow(e.SemiMajorAxisM, 3)/geo.EarthMu)
	return time.Duration(t * float64(time.Second))
}

// MeanMotion returns the mean motion in rad/s.
func (e Elements) MeanMotion() float64 {
	return math.Sqrt(geo.EarthMu / math.Pow(e.SemiMajorAxisM, 3))
}

// AltitudeM returns the mean altitude above the equatorial radius for a
// near-circular orbit.
func (e Elements) AltitudeM() float64 {
	return e.SemiMajorAxisM - geo.EarthRadius
}

// NodalPrecessionRate returns the secular J2 drift rate of RAAN in rad/s.
func (e Elements) NodalPrecessionRate() float64 {
	n := e.MeanMotion()
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	return -1.5 * n * geo.EarthJ2 * math.Pow(geo.EarthRadius/p, 2) * math.Cos(e.InclinationRad)
}

// ArgPerigeePrecessionRate returns the secular J2 drift rate of the
// argument of perigee in rad/s.
func (e Elements) ArgPerigeePrecessionRate() float64 {
	n := e.MeanMotion()
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	s := math.Sin(e.InclinationRad)
	return 0.75 * n * geo.EarthJ2 * math.Pow(geo.EarthRadius/p, 2) * (4 - 5*s*s)
}

// SolveKepler solves Kepler's equation M = E - e*sin(E) for the eccentric
// anomaly E using Newton iteration.
func SolveKepler(meanAnomaly, ecc float64) float64 {
	m := geo.WrapTwoPi(meanAnomaly)
	e := m
	if ecc > 0.8 {
		e = math.Pi
	}
	for i := 0; i < 30; i++ {
		d := (e - ecc*math.Sin(e) - m) / (1 - ecc*math.Cos(e))
		e -= d
		if math.Abs(d) < 1e-12 {
			break
		}
	}
	return e
}

// State is the inertial position and velocity of a satellite at an instant.
type State struct {
	Time     time.Time
	Position geo.Vec3 // ECI meters
	Velocity geo.Vec3 // ECI meters/second
}

// Propagate returns the satellite state at time t using two-body motion
// plus J2 secular precession of RAAN and argument of perigee.
func Propagate(e Elements, t time.Time) State {
	dt := t.Sub(e.Epoch).Seconds()
	n := e.MeanMotion()

	raan := geo.WrapTwoPi(e.RAANRad + e.NodalPrecessionRate()*dt)
	argp := geo.WrapTwoPi(e.ArgPerigeeRad + e.ArgPerigeePrecessionRate()*dt)
	m := geo.WrapTwoPi(e.MeanAnomalyRad + n*dt)

	ea := SolveKepler(m, e.Eccentricity)
	// True anomaly.
	nu := 2 * math.Atan2(
		math.Sqrt(1+e.Eccentricity)*math.Sin(ea/2),
		math.Sqrt(1-e.Eccentricity)*math.Cos(ea/2),
	)
	r := e.SemiMajorAxisM * (1 - e.Eccentricity*math.Cos(ea))

	// Perifocal frame position and velocity.
	p := e.SemiMajorAxisM * (1 - e.Eccentricity*e.Eccentricity)
	h := math.Sqrt(geo.EarthMu * p)
	cosNu, sinNu := math.Cos(nu), math.Sin(nu)
	posPF := geo.Vec3{X: r * cosNu, Y: r * sinNu}
	velPF := geo.Vec3{
		X: -geo.EarthMu / h * sinNu,
		Y: geo.EarthMu / h * (e.Eccentricity + cosNu),
	}

	rot := perifocalToECI(raan, e.InclinationRad, argp)
	pos := rot.apply(posPF)
	vel := rot.apply(velPF)

	// Secular J2 precession rotates the node about the polar axis and the
	// perigee about the orbit normal; both contribute rigid-rotation terms
	// to the inertial velocity.
	zAxis := geo.Vec3{Z: 1}
	normal := rot.apply(geo.Vec3{Z: 1})
	vel = vel.
		Add(zAxis.Scale(e.NodalPrecessionRate()).Cross(pos)).
		Add(normal.Scale(e.ArgPerigeePrecessionRate()).Cross(pos))

	return State{Time: t, Position: pos, Velocity: vel}
}

// mat3 is a 3x3 rotation matrix stored row-major.
type mat3 [9]float64

func (m mat3) apply(v geo.Vec3) geo.Vec3 {
	return geo.Vec3{
		X: m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		Y: m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		Z: m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// perifocalToECI builds the 3-1-3 rotation from the perifocal frame to ECI.
func perifocalToECI(raan, inc, argp float64) mat3 {
	cO, sO := math.Cos(raan), math.Sin(raan)
	ci, si := math.Cos(inc), math.Sin(inc)
	cw, sw := math.Cos(argp), math.Sin(argp)
	return mat3{
		cO*cw - sO*sw*ci, -cO*sw - sO*cw*ci, sO * si,
		sO*cw + cO*sw*ci, -sO*sw + cO*cw*ci, -cO * si,
		sw * si, cw * si, ci,
	}
}

// SunSynchronous returns circular sun-synchronous elements at the given
// altitude: the inclination is chosen so the J2 nodal precession matches the
// mean motion of the Sun (360 degrees per tropical year), as flown by
// Landsat 8 and Sentinel-2.
func SunSynchronous(altitudeM float64, epoch time.Time) Elements {
	a := geo.EarthRadius + altitudeM
	n := math.Sqrt(geo.EarthMu / math.Pow(a, 3))
	// Required precession: 2*pi per tropical year.
	want := 2 * math.Pi / (365.2422 * geo.SolarDay)
	cosI := -want / (1.5 * n * geo.EarthJ2 * math.Pow(geo.EarthRadius/a, 2))
	if cosI < -1 || cosI > 1 {
		// Altitude too high for sun-synchronicity; fall back to polar.
		cosI = 0
	}
	return Elements{
		SemiMajorAxisM: a,
		InclinationRad: math.Acos(cosI),
		Epoch:          epoch,
	}
}

// DraconiticRate returns the node-to-node angular rate of the argument of
// latitude in rad/s: the mean motion plus the J2 argument-of-perigee drift.
// One draconitic period is the time between successive ascending-node
// crossings, which sets the ground-track repeat geometry.
func (e Elements) DraconiticRate() float64 {
	return e.MeanMotion() + e.ArgPerigeePrecessionRate()
}

// DraconiticPeriod returns the node-to-node orbital period.
func (e Elements) DraconiticPeriod() time.Duration {
	return time.Duration(2 * math.Pi / e.DraconiticRate() * float64(time.Second))
}

// RepeatGroundTrack returns circular sun-synchronous elements whose ground
// track repeats after exactly orbits node-to-node revolutions in days solar
// days. The resonance condition is
//
//	orbits * draconitic period == days * (2*pi / (earth rate - node rate))
//
// and is solved by fixed-point iteration on the semi-major axis, because
// both J2 drift rates depend on the axis through the sun-synchronous
// inclination.
func RepeatGroundTrack(orbits, days int, epoch time.Time) Elements {
	if orbits <= 0 || days <= 0 {
		panic("orbit: non-positive repeat cycle")
	}
	// Keplerian initial guess.
	period := float64(days) * geo.SolarDay / float64(orbits)
	k := period / (2 * math.Pi)
	a := math.Cbrt(geo.EarthMu * k * k)
	for i := 0; i < 50; i++ {
		e := SunSynchronous(a-geo.EarthRadius, epoch)
		rel := geo.EarthRotationRate - e.NodalPrecessionRate()
		targetDrac := float64(orbits) / float64(days) * rel
		n := targetDrac - e.ArgPerigeePrecessionRate()
		next := math.Cbrt(geo.EarthMu / (n * n))
		if math.Abs(next-a) < 1e-9 {
			a = next
			break
		}
		a = next
	}
	return SunSynchronous(a-geo.EarthRadius, epoch)
}

// Landsat8 returns an element set approximating the Landsat 8 orbit:
// circular sun-synchronous with the WRS-2 16-day / 233-orbit repeat cycle
// (inclination ~98.2 deg, period ~98.9 min, altitude ~702.5 km in our
// Kepler+J2 model versus the real 705 km — the real orbit's nodal period
// includes J2 short-period terms that this fidelity class omits).
func Landsat8(epoch time.Time) Elements {
	return RepeatGroundTrack(233, 16, epoch)
}

// GroundSpeed returns the speed of the subsatellite point over the ground in
// m/s for a circular orbit, i.e. the angular rate of the satellite scaled to
// the Earth's surface. Earth rotation is neglected (a few percent effect at
// Landsat inclination).
func GroundSpeed(e Elements) float64 {
	return e.MeanMotion() * geo.EarthRadius
}

// Subpoint returns the geodetic point beneath the satellite at time t.
func Subpoint(e Elements, t time.Time) geo.Geodetic {
	s := Propagate(e, t)
	return geo.SubsatellitePoint(s.Position, t)
}

// GroundTrack samples the subsatellite point every step over the window
// [start, start+span) and returns the sampled points in time order.
func GroundTrack(e Elements, start time.Time, span, step time.Duration) []geo.Geodetic {
	if step <= 0 {
		panic("orbit: non-positive ground track step")
	}
	var pts []geo.Geodetic
	for dt := time.Duration(0); dt < span; dt += step {
		pts = append(pts, Subpoint(e, start.Add(dt)))
	}
	return pts
}

// Constellation returns n copies of base evenly phased in mean anomaly
// around a single orbital plane — the paper's in-plane constellation model
// used in Figures 2 through 5.
func Constellation(base Elements, n int) []Elements {
	sats := make([]Elements, n)
	for i := 0; i < n; i++ {
		e := base
		e.MeanAnomalyRad = geo.WrapTwoPi(base.MeanAnomalyRad + 2*math.Pi*float64(i)/float64(n))
		sats[i] = e
	}
	return sats
}

// WalkerConstellation returns n satellites spread across p planes (RAAN
// evenly spaced over 360 degrees) with in-plane phasing, a simplified
// Walker-delta pattern used for coverage studies (Figure 3).
func WalkerConstellation(base Elements, n, planes int) []Elements {
	if planes <= 0 {
		planes = 1
	}
	sats := make([]Elements, 0, n)
	perPlane := n / planes
	extra := n % planes
	idx := 0
	for pl := 0; pl < planes; pl++ {
		count := perPlane
		if pl < extra {
			count++
		}
		raan := geo.WrapTwoPi(base.RAANRad + 2*math.Pi*float64(pl)/float64(planes))
		for k := 0; k < count; k++ {
			e := base
			e.RAANRad = raan
			e.MeanAnomalyRad = geo.WrapTwoPi(base.MeanAnomalyRad +
				2*math.Pi*float64(k)/float64(max(count, 1)) +
				// Inter-plane phase offset spreads coverage in latitude.
				2*math.Pi*float64(pl)/float64(planes*max(count, 1)))
			sats = append(sats, e)
			idx++
		}
	}
	return sats
}
