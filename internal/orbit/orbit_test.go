package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"kodan/internal/geo"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func TestSolveKepler(t *testing.T) {
	// Circular orbit: E == M.
	if e := SolveKepler(1.234, 0); math.Abs(e-1.234) > 1e-12 {
		t.Fatalf("circular E = %v", e)
	}
	// Property: the solution satisfies Kepler's equation.
	if err := quick.Check(func(mRaw int32, eccRaw uint8) bool {
		m := float64(mRaw) / 1000
		ecc := float64(eccRaw) / 300 // [0, ~0.85]
		e := SolveKepler(m, ecc)
		return math.Abs(geo.WrapTwoPi(e-ecc*math.Sin(e))-geo.WrapTwoPi(m)) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLandsat8OrbitShape(t *testing.T) {
	e := Landsat8(epoch)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Landsat 8: ~98.2 deg inclination, ~98.8 min period.
	incDeg := geo.Rad2Deg(e.InclinationRad)
	if math.Abs(incDeg-98.2) > 0.3 {
		t.Errorf("inclination = %.2f deg, want ~98.2", incDeg)
	}
	if p := e.Period().Minutes(); math.Abs(p-98.9) > 0.5 {
		t.Errorf("period = %.2f min, want ~98.9", p)
	}
	if math.Abs(e.AltitudeM()-705e3) > 5e3 {
		t.Errorf("altitude = %.0f, want ~705-710 km", e.AltitudeM())
	}
}

func TestRepeatGroundTrackResonance(t *testing.T) {
	e := RepeatGroundTrack(233, 16, epoch)
	// 233 node-to-node revolutions must equal 16 Earth-relative days, where
	// a relative day is measured against the precessing orbit plane.
	relDay := 2 * math.Pi / (geo.EarthRotationRate - e.NodalPrecessionRate())
	total := 233 * e.DraconiticPeriod().Seconds()
	if math.Abs(total-16*relDay) > 1e-3 {
		t.Fatalf("233 draconitic orbits = %.3f s, want %.3f s", total, 16*relDay)
	}
	// A sun-synchronous relative day is within a second of a solar day.
	if math.Abs(relDay-geo.SolarDay) > 1 {
		t.Fatalf("relative day = %.3f s", relDay)
	}
}

func TestPropagateConservesRadiusCircular(t *testing.T) {
	e := Landsat8(epoch)
	for dt := 0; dt < 6000; dt += 200 {
		s := Propagate(e, epoch.Add(time.Duration(dt)*time.Second))
		r := s.Position.Norm()
		if math.Abs(r-e.SemiMajorAxisM) > 1 {
			t.Fatalf("radius %f at %ds, want %f", r, dt, e.SemiMajorAxisM)
		}
	}
}

func TestPropagateVelocityMagnitude(t *testing.T) {
	e := Landsat8(epoch)
	s := Propagate(e, epoch.Add(1234*time.Second))
	// Vis-viva for circular orbit: v = sqrt(mu/a) ~ 7.5 km/s at 705 km.
	// J2 precession terms shift the inertial speed by a few m/s.
	want := math.Sqrt(geo.EarthMu / e.SemiMajorAxisM)
	if math.Abs(s.Velocity.Norm()-want) > 10 {
		t.Fatalf("speed = %.1f, want %.1f", s.Velocity.Norm(), want)
	}
}

func TestPropagateVelocityIsDerivative(t *testing.T) {
	e := Landsat8(epoch)
	e.MeanAnomalyRad = 0.7
	t0 := epoch.Add(500 * time.Second)
	h := 10 * time.Millisecond
	s0 := Propagate(e, t0)
	s1 := Propagate(e, t0.Add(h))
	numVel := s1.Position.Sub(s0.Position).Scale(1 / h.Seconds())
	if numVel.Sub(s0.Velocity).Norm() > 1 {
		t.Fatalf("velocity mismatch: analytic %v numeric %v", s0.Velocity, numVel)
	}
}

func TestPropagatePeriodicity(t *testing.T) {
	e := Landsat8(epoch)
	s0 := Propagate(e, epoch)
	s1 := Propagate(e, epoch.Add(e.Period()))
	// Position should nearly repeat after one period (small J2 node drift).
	if s0.Position.Sub(s1.Position).Norm() > 50e3 {
		t.Fatalf("orbit not periodic: drift %v m", s0.Position.Sub(s1.Position).Norm())
	}
}

func TestSunSynchronousPrecession(t *testing.T) {
	e := SunSynchronous(705e3, epoch)
	rate := e.NodalPrecessionRate()
	want := 2 * math.Pi / (365.2422 * geo.SolarDay)
	if math.Abs(rate-want)/want > 1e-9 {
		t.Fatalf("precession rate %.3e, want %.3e", rate, want)
	}
}

func TestGroundSpeedLandsat(t *testing.T) {
	// Landsat 8 ground speed is about 6.8 km/s (sub-satellite point); our
	// spherical approximation should land close.
	v := GroundSpeed(Landsat8(epoch))
	if v < 6.5e3 || v > 7.1e3 {
		t.Fatalf("ground speed = %.0f m/s", v)
	}
}

func TestSubpointCoversLatitudes(t *testing.T) {
	e := Landsat8(epoch)
	var minLat, maxLat float64
	for dt := time.Duration(0); dt < e.Period(); dt += 20 * time.Second {
		g := Subpoint(e, epoch.Add(dt))
		minLat = math.Min(minLat, g.LatDeg)
		maxLat = math.Max(maxLat, g.LatDeg)
	}
	// A near-polar orbit must reach beyond +/-80 latitude.
	if maxLat < 80 || minLat > -80 {
		t.Fatalf("latitude range [%f, %f]", minLat, maxLat)
	}
}

func TestGroundTrackLength(t *testing.T) {
	e := Landsat8(epoch)
	pts := GroundTrack(e, epoch, 10*time.Minute, 30*time.Second)
	if len(pts) != 20 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	// Consecutive points should be roughly groundSpeed*step apart.
	d := geo.GreatCircleDistance(pts[0], pts[1])
	want := GroundSpeed(e) * 30
	if math.Abs(d-want)/want > 0.1 {
		t.Fatalf("step distance %.0f, want ~%.0f", d, want)
	}
}

func TestConstellationPhasing(t *testing.T) {
	base := Landsat8(epoch)
	sats := Constellation(base, 8)
	if len(sats) != 8 {
		t.Fatalf("got %d sats", len(sats))
	}
	for i, s := range sats {
		want := geo.WrapTwoPi(2 * math.Pi * float64(i) / 8)
		if math.Abs(geo.WrapPi(s.MeanAnomalyRad-want)) > 1e-12 {
			t.Errorf("sat %d mean anomaly %v, want %v", i, s.MeanAnomalyRad, want)
		}
		if s.RAANRad != base.RAANRad {
			t.Errorf("sat %d left the plane", i)
		}
	}
}

func TestConstellationSeparation(t *testing.T) {
	// Evenly phased satellites must be spatially separated at all times.
	sats := Constellation(Landsat8(epoch), 4)
	tt := epoch.Add(777 * time.Second)
	for i := 0; i < len(sats); i++ {
		for j := i + 1; j < len(sats); j++ {
			pi := Propagate(sats[i], tt).Position
			pj := Propagate(sats[j], tt).Position
			if pi.Sub(pj).Norm() < 1000e3 {
				t.Fatalf("sats %d,%d only %.0f m apart", i, j, pi.Sub(pj).Norm())
			}
		}
	}
}

func TestWalkerConstellationCount(t *testing.T) {
	if err := quick.Check(func(nRaw, pRaw uint8) bool {
		n := int(nRaw%56) + 1
		p := int(pRaw%8) + 1
		sats := WalkerConstellation(Landsat8(epoch), n, p)
		return len(sats) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadElements(t *testing.T) {
	bad := []Elements{
		{SemiMajorAxisM: 1000, Epoch: epoch},                                      // inside Earth
		{SemiMajorAxisM: 7e6, Eccentricity: 1.2, Epoch: epoch},                    // hyperbolic
		{SemiMajorAxisM: 7e6, Eccentricity: -0.1, Epoch: epoch},                   // negative ecc
		{SemiMajorAxisM: geo.EarthRadius + 705e3, Eccentricity: 0 /* no epoch */}, // zero epoch
	}
	for i, e := range bad {
		if e.Validate() == nil {
			t.Errorf("case %d: bad elements validated", i)
		}
	}
}
