package orbit_test

import (
	"math"
	"testing"
	"time"

	"kodan/internal/geo"
	"kodan/internal/orbit"
	"kodan/internal/station"
	"kodan/internal/xrand"
)

// randomElements draws a plausible near-circular LEO element set from a
// seeded stream, so every seed in the table exercises a different orbit
// deterministically.
func randomElements(seed uint64, epoch time.Time) orbit.Elements {
	rng := xrand.New(seed)
	return orbit.Elements{
		SemiMajorAxisM: geo.EarthRadius + rng.Range(400e3, 900e3),
		Eccentricity:   rng.Range(0, 0.02),
		InclinationRad: rng.Range(0, math.Pi),
		RAANRad:        rng.Range(0, 2*math.Pi),
		ArgPerigeeRad:  rng.Range(0, 2*math.Pi),
		MeanAnomalyRad: rng.Range(0, 2*math.Pi),
		Epoch:          epoch,
	}
}

var propertySeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 2023}

// TestPropagateRadiusStaysBounded checks the first invariant of Keplerian
// motion with secular J2: the orbital radius stays inside
// [a(1-e), a(1+e)] over a multi-revolution span (the J2 model only
// precesses angles, it never pumps energy).
func TestPropagateRadiusStaysBounded(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	for _, seed := range propertySeeds {
		e := randomElements(seed, epoch)
		if err := e.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lo := e.SemiMajorAxisM * (1 - e.Eccentricity)
		hi := e.SemiMajorAxisM * (1 + e.Eccentricity)
		span := 3 * e.Period()
		for dt := time.Duration(0); dt < span; dt += time.Minute {
			s := orbit.Propagate(e, epoch.Add(dt))
			r := s.Position.Norm()
			if r < lo*(1-1e-9) || r > hi*(1+1e-9) {
				t.Fatalf("seed %d at +%v: radius %.0f outside [%.0f, %.0f]", seed, dt, r, lo, hi)
			}
		}
	}
}

// TestPropagateVisViva checks energy consistency: the speed matches the
// vis-viva relation v^2 = mu(2/r - 1/a) up to the small rigid-rotation
// terms the J2 precession adds to the velocity.
func TestPropagateVisViva(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	for _, seed := range propertySeeds {
		e := randomElements(seed, epoch)
		for dt := time.Duration(0); dt < 2*e.Period(); dt += 5 * time.Minute {
			s := orbit.Propagate(e, epoch.Add(dt))
			r := s.Position.Norm()
			want := math.Sqrt(geo.EarthMu * (2/r - 1/e.SemiMajorAxisM))
			got := s.Velocity.Norm()
			// The J2 precession's rigid-rotation velocity terms add up to
			// ~|nodal rate| * r ≈ 10 m/s on top of the Keplerian speed.
			if rel := math.Abs(got-want) / want; rel > 5e-3 {
				t.Fatalf("seed %d at +%v: speed %.1f, vis-viva %.1f (rel %.2e)", seed, dt, got, want, rel)
			}
		}
	}
}

// TestSubpointRanges checks the ground-track invariants: geodetic latitude
// within [-90, 90] and additionally bounded by the inclination (plus a
// small geodetic-vs-geocentric allowance), longitude within (-180, 180].
func TestSubpointRanges(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	for _, seed := range propertySeeds {
		e := randomElements(seed, epoch)
		// Max geocentric latitude of the track is min(i, 180-i).
		maxLat := geo.Rad2Deg(math.Min(e.InclinationRad, math.Pi-e.InclinationRad))
		for _, g := range orbit.GroundTrack(e, epoch, 2*e.Period(), 30*time.Second) {
			if g.LatDeg < -90 || g.LatDeg > 90 {
				t.Fatalf("seed %d: latitude %.4f out of range", seed, g.LatDeg)
			}
			if math.Abs(g.LatDeg) > maxLat+0.5 {
				t.Fatalf("seed %d: latitude %.4f exceeds inclination bound %.4f", seed, g.LatDeg, maxLat)
			}
			if g.LonDeg <= -180 || g.LonDeg > 180 {
				t.Fatalf("seed %d: longitude %.4f out of range", seed, g.LonDeg)
			}
			// The drawn band is 400-900 km; eccentricity up to 0.02 moves
			// perigee/apogee by ~145 km and the ellipsoid's polar
			// flattening adds ~21 km of geodetic height near the poles.
			if g.AltM < 230e3 || g.AltM > 1100e3 {
				t.Fatalf("seed %d: subpoint altitude %.0f m outside LEO band", seed, g.AltM)
			}
		}
	}
}

// TestSunSynchronousInclination checks the design helper's contract: the
// returned orbit's nodal precession matches the Sun's mean motion, and the
// inclination is retrograde (> 90 deg) for all LEO altitudes.
func TestSunSynchronousInclination(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	want := 2 * math.Pi / (365.2422 * geo.SolarDay)
	for _, alt := range []float64{400e3, 500e3, 700e3, 900e3} {
		e := orbit.SunSynchronous(alt, epoch)
		if e.InclinationRad <= math.Pi/2 {
			t.Errorf("alt %.0f km: inclination %.2f deg not retrograde", alt/1e3, geo.Rad2Deg(e.InclinationRad))
		}
		if got := e.NodalPrecessionRate(); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("alt %.0f km: precession %.3e, want %.3e", alt/1e3, got, want)
		}
	}
}

// TestContactWindowsOrderedAndDisjoint checks the contact-search
// invariants across the seed table: windows are within the search span,
// have positive duration, and are strictly ordered without overlap.
func TestContactWindowsOrderedAndDisjoint(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	span := 6 * time.Hour
	end := epoch.Add(span)
	for _, seed := range propertySeeds {
		e := randomElements(seed, epoch)
		for _, st := range station.LandsatSegment() {
			windows := station.ContactWindows(st, e, epoch, span, 30*time.Second)
			for i, w := range windows {
				if !w.End.After(w.Start) {
					t.Fatalf("seed %d %s: window %d empty (%v..%v)", seed, st.Name, i, w.Start, w.End)
				}
				if w.Start.Before(epoch) || w.End.After(end) {
					t.Fatalf("seed %d %s: window %d outside span", seed, st.Name, i)
				}
				if i > 0 && w.Start.Before(windows[i-1].End) {
					t.Fatalf("seed %d %s: window %d overlaps previous (%v < %v)",
						seed, st.Name, i, w.Start, windows[i-1].End)
				}
			}
			if got, want := station.TotalContact(windows), span; got > want {
				t.Fatalf("seed %d %s: total contact %v exceeds span", seed, st.Name, got)
			}
		}
	}
}

// TestConstellationPhasing checks that constellation builders only change
// angles — never the orbit geometry — and produce the requested population.
func TestConstellationPhasing(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	base := orbit.Landsat8(epoch)
	for _, n := range []int{1, 2, 7, 16} {
		for _, sats := range [][]orbit.Elements{orbit.Constellation(base, n), orbit.WalkerConstellation(base, n, 3)} {
			if len(sats) != n {
				t.Fatalf("n=%d: got %d satellites", n, len(sats))
			}
			for i, e := range sats {
				if e.SemiMajorAxisM != base.SemiMajorAxisM || e.InclinationRad != base.InclinationRad {
					t.Fatalf("n=%d sat %d: orbit geometry changed", n, i)
				}
				if e.MeanAnomalyRad < 0 || e.MeanAnomalyRad >= 2*math.Pi {
					t.Fatalf("n=%d sat %d: mean anomaly %.4f not wrapped", n, i, e.MeanAnomalyRad)
				}
			}
		}
	}
}
