package ctxengine

import (
	"testing"

	"kodan/internal/dataset"
	"kodan/internal/imagery"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

func testData(t *testing.T, frames int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig(2023, tiling.Tiling{PerSide: 3})
	cfg.Frames = frames
	cfg.TileRes = 16
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.25, xrand.New(7))
}

func TestBuildAutoContexts(t *testing.T) {
	train, _ := testData(t, 120)
	set, err := Build(train, DefaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if set.K < 4 || set.K > 8 {
		t.Fatalf("context count %d outside sweep range", set.K)
	}
	if len(set.Labels) != train.Len() {
		t.Fatalf("labels = %d", len(set.Labels))
	}
	for _, l := range set.Labels {
		if l < 0 || l >= set.K {
			t.Fatalf("label %d out of range", l)
		}
	}
	// The engine must broadly agree with its own training partition; this
	// is what makes contexts usable at runtime.
	if set.TrainAccuracy < 0.8 {
		t.Fatalf("engine train accuracy = %.3f", set.TrainAccuracy)
	}
}

func TestAutoContextsSeparateValue(t *testing.T) {
	// The paper's elision premise: some contexts are mostly high-value,
	// some mostly low-value. The spread of per-context high-value fractions
	// must be wide.
	train, _ := testData(t, 120)
	set, err := Build(train, DefaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1.0, 0.0
	for _, s := range set.Stats {
		if s.Count < 5 {
			continue
		}
		if s.HighValueFrac < lo {
			lo = s.HighValueFrac
		}
		if s.HighValueFrac > hi {
			hi = s.HighValueFrac
		}
	}
	if hi < 0.8 {
		t.Fatalf("no mostly-high-value context: max = %.3f", hi)
	}
	if lo > 0.2 {
		t.Fatalf("no mostly-low-value context: min = %.3f", lo)
	}
}

func TestBuildExpertContexts(t *testing.T) {
	train, _ := testData(t, 100)
	cfg := DefaultConfig()
	cfg.Source = Expert
	set, err := Build(train, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if set.K != int(imagery.NumGeoClasses) {
		t.Fatalf("expert context count = %d", set.K)
	}
	// The engine should recover geography from summaries quite well.
	if set.TrainAccuracy < 0.75 {
		t.Fatalf("expert engine accuracy = %.3f", set.TrainAccuracy)
	}
}

func TestClassifyGeneralizes(t *testing.T) {
	train, val := testData(t, 120)
	set, err := Build(train, DefaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Validation tiles from near-pure cloudy regions should mostly land in
	// contexts whose training high-value fraction is low, and vice versa.
	var agree, total int
	for _, s := range val.Samples {
		if s.Tile.CloudFrac > 0.95 {
			c := set.Classify(s.Tile)
			total++
			if set.Stats[c].HighValueFrac < 0.5 {
				agree++
			}
		}
	}
	if total == 0 {
		t.Skip("no near-pure cloudy validation tiles")
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("cloudy tiles landed in low-value contexts only %.2f of the time", frac)
	}
}

func TestLabelAllMatchesClassify(t *testing.T) {
	train, val := testData(t, 60)
	set, err := Build(train, DefaultConfig(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	labels := set.LabelAll(val)
	for i, s := range val.Samples {
		if labels[i] != set.Classify(s.Tile) {
			t.Fatal("LabelAll disagrees with Classify")
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	train, _ := testData(t, 80)
	set, err := Build(train, DefaultConfig(), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range set.Stats {
		total += s.Count
		if s.HighValueFrac < 0 || s.HighValueFrac > 1 {
			t.Fatalf("high-value fraction %f", s.HighValueFrac)
		}
		if s.Count > 0 && s.Name == "" {
			t.Fatal("unnamed context")
		}
	}
	if total != train.Len() {
		t.Fatalf("stats cover %d of %d tiles", total, train.Len())
	}
}

func TestBuildDeterministic(t *testing.T) {
	train, _ := testData(t, 60)
	a, err := Build(train, DefaultConfig(), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build(train, DefaultConfig(), xrand.New(11))
	if a.K != b.K || a.TrainAccuracy != b.TrainAccuracy {
		t.Fatal("context build not deterministic")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(&dataset.Dataset{}, DefaultConfig(), xrand.New(1)); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
