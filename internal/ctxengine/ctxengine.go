// Package ctxengine implements Kodan's geospatial contexts and the context
// engine (Section 3.2). A context is a subset of tiles related by semantic
// similarity; the engine is a small classifier that assigns a context to
// each tile at runtime from observable tile statistics only.
//
// Two context sources are implemented, as in the paper:
//
//   - Expert contexts: the human-recognizable geography classes (ocean,
//     forest, desert, tundra, urban).
//   - Automatic contexts: k-means clustering of the training tiles' label
//     vectors (geography fractions + cloud fraction), sweeping cluster
//     count and distance metric, scored by silhouette.
//
// Following the paper, the deployed engine's output is treated as ground
// truth: after training the engine, the representative dataset is
// re-partitioned by engine output, and that partition is what downstream
// model specialization and elision statistics are computed on.
package ctxengine

import (
	"fmt"
	"math"

	"kodan/internal/cluster"
	"kodan/internal/dataset"
	"kodan/internal/imagery"
	"kodan/internal/nn"
	"kodan/internal/xrand"
)

// Source selects how contexts are generated.
type Source int

// Context sources.
const (
	// Auto clusters label vectors (the paper's general mechanism).
	Auto Source = iota
	// Expert uses the geography classes directly.
	Expert
)

// Transform selects a label-vector preprocessing for the automatic sweep
// — the paper's "label vector transformations, including translations,
// rotations, and projections based on per-dimension covariance
// properties".
type Transform int

// Transforms.
const (
	// Standardized centers and unit-scales each dimension (translation +
	// per-dimension scaling).
	Standardized Transform = iota
	// Whitened additionally rotates onto principal axes and equalizes
	// their variances.
	Whitened
	// Raw clusters the label vectors as-is.
	Raw
)

// Config controls context generation.
type Config struct {
	// Source picks expert or automatic contexts.
	Source Source
	// Ks are the candidate cluster counts for the automatic sweep.
	Ks []int
	// Metrics are the candidate distance metrics for the automatic sweep.
	Metrics []cluster.Metric
	// Transforms are the candidate label-vector transforms for the sweep.
	Transforms []Transform
	// EngineHidden is the engine classifier's hidden layout.
	EngineHidden []int
	// EngineTrain is the engine's training configuration.
	EngineTrain nn.TrainConfig
}

// DefaultConfig returns the reproduction's standard context configuration:
// an automatic sweep over k in {4..8} with Euclidean and cosine metrics.
func DefaultConfig() Config {
	return Config{
		Source:       Auto,
		Ks:           []int{4, 5, 6, 7, 8},
		Metrics:      []cluster.Metric{cluster.Euclidean, cluster.Cosine},
		Transforms:   []Transform{Standardized, Whitened},
		EngineHidden: []int{16},
		EngineTrain:  nn.TrainConfig{Epochs: 30, BatchSize: 16, LearnRate: 0.1, Momentum: 0.9},
	}
}

// Stats summarizes one context over the engine-labeled training partition.
type Stats struct {
	// Count is the number of training tiles in the context.
	Count int
	// HighValueFrac is the pixel-weighted high-value fraction — the
	// quantity the elision decision thresholds on.
	HighValueFrac float64
	// DominantGeo is the most common dominant-geography among members.
	DominantGeo imagery.GeoClass
	// Name is a human-readable label, e.g. "ocean/overcast".
	Name string
}

// Set is a generated context partition plus its trained engine.
type Set struct {
	// K is the context count.
	K int
	// Engine classifies tile summaries into contexts. Once built, the
	// engine is read-only and safe for concurrent classification (nn
	// prediction borrows per-call forward buffers).
	Engine *nn.Net
	// Labels holds the engine-assigned context of each training sample,
	// parallel to the dataset passed to Build.
	Labels []int
	// Stats holds per-context statistics over the engine partition.
	Stats []Stats
	// TrainAccuracy is the engine's agreement with the clustering (auto)
	// or geography (expert) labels on the training tiles.
	TrainAccuracy float64
	// scaler holds feature standardization for engine inputs.
	mean, std []float64
}

// Build generates contexts from the training dataset and trains the engine.
func Build(train *dataset.Dataset, cfg Config, rng *xrand.Rand) (*Set, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("ctxengine: empty training dataset")
	}
	var target []int
	var k int
	switch cfg.Source {
	case Expert:
		k = int(imagery.NumGeoClasses)
		target = make([]int, train.Len())
		for i, s := range train.Samples {
			target[i] = int(s.Tile.Dominant)
		}
	case Auto:
		if len(cfg.Ks) == 0 {
			cfg.Ks = DefaultConfig().Ks
		}
		if len(cfg.Metrics) == 0 {
			cfg.Metrics = DefaultConfig().Metrics
		}
		if len(cfg.Transforms) == 0 {
			cfg.Transforms = DefaultConfig().Transforms
		}
		raw := train.LabelVectors()
		bestSil := math.Inf(-1)
		var chosen *cluster.Result
		for _, tr := range cfg.Transforms {
			vecs := applyTransform(tr, raw, rng.Split())
			options, best := cluster.Sweep(vecs, cfg.Ks, cfg.Metrics, rng.Split())
			if s := options[best].Silhouette; s > bestSil {
				bestSil = s
				chosen = options[best].Result
			}
		}
		k = chosen.K
		target = chosen.Assign
	default:
		return nil, fmt.Errorf("ctxengine: unknown source %d", cfg.Source)
	}

	// Engine training data: observable summaries only.
	xs := make([][]float64, train.Len())
	ys := make([]float64, train.Len())
	for i, s := range train.Samples {
		xs[i] = s.Tile.Summary()
		ys[i] = float64(target[i])
	}
	mean, std := fitScaler(xs)
	for i := range xs {
		xs[i] = applyScaler(xs[i], mean, std)
	}

	hidden := cfg.EngineHidden
	if len(hidden) == 0 {
		hidden = DefaultConfig().EngineHidden
	}
	trainCfg := cfg.EngineTrain
	if trainCfg.Epochs == 0 {
		trainCfg = DefaultConfig().EngineTrain
	}
	engine := nn.NewClassifier(len(xs[0]), hidden, k, rng.Split())
	engine.Fit(xs, ys, trainCfg, rng.Split())

	set := &Set{K: k, Engine: engine, mean: mean, std: std}

	// Agreement with the source labels, then re-partition by engine output
	// (the engine's output is ground truth from here on).
	agree := 0
	set.Labels = make([]int, train.Len())
	for i := range xs {
		c := engine.PredictClass(xs[i])
		set.Labels[i] = c
		if c == target[i] {
			agree++
		}
	}
	set.TrainAccuracy = float64(agree) / float64(len(xs))

	set.Stats = computeStats(train, set.Labels, k)
	return set, nil
}

// Classify assigns a context to a tile at runtime. The hot path scales
// the tile summary into a stack buffer rather than through applyScaler,
// keeping steady-state classification allocation-free.
func (s *Set) Classify(t *imagery.Tile) int {
	var buf [2 * imagery.NumFeatures]float64
	sum := t.Summary()
	x := buf[:len(sum)]
	for i, v := range sum {
		x[i] = (v - s.mean[i]) / s.std[i]
	}
	return s.Engine.PredictClass(x)
}

// Contexts returns the context count; together with Classify it satisfies
// the runtime's Classifier interface.
func (s *Set) Contexts() int { return s.K }

// LabelAll classifies every sample of a dataset.
func (s *Set) LabelAll(ds *dataset.Dataset) []int {
	out := make([]int, ds.Len())
	for i, smp := range ds.Samples {
		out[i] = s.Classify(smp.Tile)
	}
	return out
}

// computeStats aggregates per-context statistics.
func computeStats(ds *dataset.Dataset, labels []int, k int) []Stats {
	stats := make([]Stats, k)
	geoCounts := make([][]int, k)
	var hv = make([]float64, k)
	var px = make([]float64, k)
	for i := range geoCounts {
		geoCounts[i] = make([]int, imagery.NumGeoClasses)
	}
	for i, s := range ds.Samples {
		c := labels[i]
		stats[c].Count++
		geoCounts[c][s.Tile.Dominant]++
		hv[c] += s.Tile.HighValueFrac() * float64(s.Tile.Pixels())
		px[c] += float64(s.Tile.Pixels())
	}
	for c := range stats {
		if px[c] > 0 {
			stats[c].HighValueFrac = hv[c] / px[c]
		}
		best := 0
		for g, n := range geoCounts[c] {
			if n > geoCounts[c][best] {
				best = g
			}
		}
		stats[c].DominantGeo = imagery.GeoClass(best)
		weather := "mixed"
		switch {
		case stats[c].HighValueFrac >= 0.7:
			weather = "clear"
		case stats[c].HighValueFrac <= 0.3:
			weather = "overcast"
		}
		stats[c].Name = fmt.Sprintf("%s/%s", stats[c].DominantGeo, weather)
	}
	return stats
}

// applyTransform preprocesses label vectors for clustering.
func applyTransform(tr Transform, vecs [][]float64, rng *xrand.Rand) [][]float64 {
	switch tr {
	case Whitened:
		return cluster.Whiten(vecs, rng)
	case Raw:
		return vecs
	default:
		return cluster.Standardize(vecs)
	}
}

// fitScaler returns per-dimension mean and std (std floored at epsilon).
func fitScaler(xs [][]float64) (mean, std []float64) {
	dim := len(xs[0])
	mean = make([]float64, dim)
	std = make([]float64, dim)
	for _, x := range xs {
		for i, v := range x {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(xs))
	}
	for _, x := range xs {
		for i, v := range x {
			d := v - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(xs)))
		if std[i] < 1e-9 {
			std[i] = 1
		}
	}
	return mean, std
}

func applyScaler(x, mean, std []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = (x[i] - mean[i]) / std[i]
	}
	return out
}
