package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/policy"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// testConfig is a down-sized transformation for unit tests.
func testConfig() Config {
	cfg := DefaultConfig(2023)
	cfg.Frames = 60
	cfg.TileRes = 16
	cfg.Tilings = []tiling.Tiling{{PerSide: 3}, {PerSide: 6}}
	return cfg
}

var testDeployment = Deployment{
	Target:       hw.Orin15W,
	Deadline:     24 * time.Second,
	CapacityFrac: 0.21,
	FillIdle:     true,
}

func buildWorkspace(t *testing.T) *Workspace {
	t.Helper()
	w, err := NewWorkspace(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkspace(t *testing.T) {
	w := buildWorkspace(t)
	if w.Ctx == nil || w.Ctx.K < 2 {
		t.Fatal("no contexts built")
	}
	for _, tl := range w.Cfg.Tilings {
		train, val, err := w.Data(tl)
		if err != nil {
			t.Fatal(err)
		}
		if train.Len() == 0 || val.Len() == 0 {
			t.Fatalf("tiling %v: empty split", tl)
		}
	}
	if _, _, err := w.Data(tiling.Tiling{PerSide: 9}); err == nil {
		t.Fatal("unknown tiling accepted")
	}
}

func TestNewWorkspaceRejectsEmptyTilings(t *testing.T) {
	cfg := testConfig()
	cfg.Tilings = nil
	if _, err := NewWorkspace(cfg); err == nil {
		t.Fatal("empty tilings accepted")
	}
}

func TestTransformAppArtifacts(t *testing.T) {
	w := buildWorkspace(t)
	art, err := w.TransformApp(app.App(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Profiles) != 2 || len(art.Suites) != 2 {
		t.Fatalf("artifact shape: %d profiles %d suites", len(art.Profiles), len(art.Suites))
	}
	for _, p := range art.Profiles {
		var fracSum float64
		for _, c := range p.Contexts {
			fracSum += c.TileFrac
			if c.HighValueFrac < 0 || c.HighValueFrac > 1 {
				t.Fatalf("high-value frac %v", c.HighValueFrac)
			}
		}
		if fracSum < 0.999 || fracSum > 1.001 {
			t.Fatalf("tile fractions sum to %v", fracSum)
		}
	}
}

func TestSelectionLogicBeatsBaselinesOnOrin(t *testing.T) {
	w := buildWorkspace(t)
	art, err := w.TransformApp(app.App(7))
	if err != nil {
		t.Fatal(err)
	}
	sel, est := art.SelectionLogic(testDeployment)
	if len(sel.Actions) != w.Ctx.K {
		t.Fatalf("selection shape %v", sel)
	}
	env := testDeployment.Env(art.Arch)
	bent := policy.EvaluateBentPipe(art.Profiles[0].Prevalence(), env)
	if est.DVD <= bent.DVD*1.5 {
		t.Fatalf("Kodan DVD %.3f not well above bent pipe %.3f", est.DVD, bent.DVD)
	}
	// Direct deploy of App 7 on the Orin is deeply bottlenecked.
	denv := env
	denv.UseEngine = false
	coarse := art.Profiles[0]
	direct := policy.Evaluate(policy.DirectSelection(coarse), coarse, denv)
	if est.DVD <= direct.DVD {
		t.Fatalf("Kodan DVD %.3f not above direct %.3f", est.DVD, direct.DVD)
	}
	// Kodan must meet the soft deadline on the Orin.
	if est.ProcessedFrac < 0.999 {
		t.Fatalf("Kodan missed the deadline: processed %v, frame time %v", est.ProcessedFrac, est.FrameTime)
	}
}

func TestRuntimeWiring(t *testing.T) {
	w := buildWorkspace(t)
	art, err := w.TransformApp(app.App(4))
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := art.SelectionLogic(testDeployment)
	rt, err := art.Runtime(sel, hw.Orin15W, 9e9)
	if err != nil {
		t.Fatal(err)
	}
	if rt.TileBits != 9e9/float64(sel.Tiling.Tiles()) {
		t.Fatalf("tile bits %v", rt.TileBits)
	}
	// The runtime processes a real frame end to end.
	train, _, err := w.Data(sel.Tiling)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]*imagery.Tile, 0, sel.Tiling.Tiles())
	for _, s := range train.Samples[:sel.Tiling.Tiles()] {
		frame = append(frame, s.Tile)
	}
	out := rt.ProcessFrame(frame, xrand.New(1))
	if len(out.Tiles) != sel.Tiling.Tiles() {
		t.Fatalf("processed %d tiles", len(out.Tiles))
	}
	// Wrong tiling is rejected.
	if _, err := art.Runtime(policy.Selection{Tiling: tiling.Tiling{PerSide: 9}}, hw.Orin15W, 1); err == nil {
		t.Fatal("unknown tiling accepted")
	}
}

func TestProfileLookup(t *testing.T) {
	w := buildWorkspace(t)
	art, err := w.TransformApp(app.App(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := art.Profile(tiling.Tiling{PerSide: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiling.PerSide != 3 {
		t.Fatalf("profile tiling %v", p.Tiling)
	}
	if _, err := art.Profile(tiling.Tiling{PerSide: 5}); err == nil {
		t.Fatal("unknown tiling profiled")
	}
}

func TestTransformDeterministic(t *testing.T) {
	w1 := buildWorkspace(t)
	w2 := buildWorkspace(t)
	a1, err := w1.TransformApp(app.App(2))
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := w2.TransformApp(app.App(2))
	s1, e1 := a1.SelectionLogic(testDeployment)
	s2, e2 := a2.SelectionLogic(testDeployment)
	if e1.DVD != e2.DVD || s1.Tiling != s2.Tiling {
		t.Fatal("transformation not deterministic")
	}
	for i := range s1.Actions {
		if s1.Actions[i] != s2.Actions[i] {
			t.Fatal("selection actions differ")
		}
	}
}

func TestPerTileBudget(t *testing.T) {
	if got := perTileBudget(360, tiling.Tiling{PerSide: 3}); got != 40 {
		t.Fatalf("budget(9) = %d", got)
	}
	if got := perTileBudget(360, tiling.Tiling{PerSide: 11}); got != 4 {
		t.Fatalf("budget(121) = %d (floor)", got)
	}
}

// TestCancellation covers the context-aware entry points: a cancelled
// context aborts both workspace construction and an application transform
// promptly with context.Canceled, and a live context is a no-op wrapper.
func TestCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := NewWorkspaceCtx(cancelled, testConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewWorkspaceCtx on cancelled ctx: %v, want context.Canceled", err)
	}

	w := buildWorkspace(t)
	start := time.Now()
	if _, err := w.TransformAppCtx(cancelled, app.App(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("TransformAppCtx on cancelled ctx: %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled transform took %v, want a prompt return", d)
	}

	// A live context must not change behavior.
	a, err := w.TransformAppCtx(context.Background(), app.App(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Profiles) != len(w.Cfg.Tilings) {
		t.Fatalf("profiles = %d, want %d", len(a.Profiles), len(w.Cfg.Tilings))
	}
}
