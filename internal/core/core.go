// Package core orchestrates Kodan's one-time transformation step
// (Figure 7, left): from a representative dataset and a reference
// application to deployable artifacts — geospatial contexts, a context
// engine, per-context specialized models at every candidate tiling,
// measured quality profiles, and the selection logic for a target
// deployment. It also wires the resulting artifacts into the on-orbit
// runtime of internal/deploy.
//
// A Workspace holds everything application-independent (datasets at each
// candidate tiling and the context engine) so that transforming all seven
// applications shares one rendering and clustering pass, exactly as the
// paper's pipeline shares its dataset across applications.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kodan/internal/app"
	"kodan/internal/ctxengine"
	"kodan/internal/dataset"
	"kodan/internal/deploy"
	"kodan/internal/hw"
	"kodan/internal/policy"
	"kodan/internal/telemetry"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// Config sizes the transformation step.
type Config struct {
	// Seed drives every stochastic stage.
	Seed uint64
	// Frames is the representative dataset size in frames.
	Frames int
	// TileRes is the rendered tile resolution.
	TileRes int
	// Tilings are the candidate tile layouts to sweep.
	Tilings []tiling.Tiling
	// ValFrac is the validation split fraction.
	ValFrac float64
	// PixelsPerFrame is the per-frame training pixel budget, divided among
	// the frame's tiles (keeps per-model training cost independent of
	// tiling).
	PixelsPerFrame int
	// EvalPixelsPerFrame is the per-frame validation pixel budget.
	EvalPixelsPerFrame int
	// Context configures context generation.
	Context ctxengine.Config
	// Augment enables flip augmentation during model training.
	Augment bool
	// Quantized derives an int8 twin of every trained model and routes all
	// suite predictions — including the quality measurement that feeds the
	// selection logic — through it, so quantization error is priced into
	// the deployment decision. Training itself stays float either way, and
	// the RNG stream is unchanged, so a quantized transform differs from
	// its float sibling only in the measured confusions.
	Quantized bool
}

// DefaultConfig returns the reproduction's standard transformation sizing.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:               seed,
		Frames:             120,
		TileRes:            20,
		Tilings:            tiling.PaperTilings(),
		ValFrac:            0.25,
		PixelsPerFrame:     360,
		EvalPixelsPerFrame: 720,
		Context:            ctxengine.DefaultConfig(),
		Augment:            false,
	}
}

// split holds one tiling's train/validation datasets plus the lazily
// prepared (augmented + context-labeled) form shared by every application
// transformed on this workspace.
type split struct {
	train, val *dataset.Dataset

	once sync.Once
	// prep is the augmented/labeled suite input, built on first use.
	prep app.SuiteData
	// trainLabels are the engine labels of the raw (un-augmented) training
	// split — Augment appends flipped copies after the originals, so this
	// is a prefix view of prep.TrainLabels.
	trainLabels []int
}

// prepared returns the memoized suite input, labeling the split on first
// call. Preparation is deterministic, so memoization cannot change results
// — it only removes the per-application relabeling cost.
func (s *split) prepared(w *Workspace) app.SuiteData {
	s.once.Do(func() {
		s.prep = app.PrepareSuiteData(s.train, s.val, w.Ctx, w.Cfg.Augment)
		s.trainLabels = s.prep.TrainLabels[:s.train.Len()]
	})
	return s.prep
}

// Workspace holds the application-independent transformation state.
type Workspace struct {
	Cfg Config
	// Ctx is the context partition and engine, built once on the coarsest
	// tiling's training split.
	Ctx *ctxengine.Set
	// data maps tiles-per-side to that tiling's datasets.
	data map[int]*split
}

// WithQuantized returns a workspace identical to w except for the
// Quantized flag, sharing the rendered datasets, memoized preparation,
// and context engine. Transforms from the two workspaces consume
// identical RNG streams and differ only in measured model quality.
func (w *Workspace) WithQuantized(q bool) *Workspace {
	if w.Cfg.Quantized == q {
		return w
	}
	cp := *w
	cp.Cfg.Quantized = q
	return &cp
}

// NewWorkspace renders the datasets for every candidate tiling and builds
// the contexts and context engine.
func NewWorkspace(cfg Config) (*Workspace, error) {
	return NewWorkspaceCtx(context.Background(), cfg)
}

// NewWorkspaceCtx is NewWorkspace with cooperative cancellation: ctx is
// checked between per-tiling dataset renders and before the clustering/
// engine-training stage, returning ctx.Err() promptly when cancelled. A
// completed build is bit-identical to NewWorkspace with the same config.
func NewWorkspaceCtx(ctx context.Context, cfg Config) (*Workspace, error) {
	if len(cfg.Tilings) == 0 {
		return nil, fmt.Errorf("core: no candidate tilings")
	}
	ctx, span := telemetry.StartSpan(ctx, "transform.workspace")
	defer span.End()
	w := &Workspace{Cfg: cfg, data: make(map[int]*split)}
	for _, tl := range cfg.Tilings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := span.Child("transform.dataset")
		sp.Set("tiling", fmt.Sprint(tl.PerSide))
		dcfg := dataset.DefaultConfig(cfg.Seed, tl)
		dcfg.Frames = cfg.Frames
		dcfg.TileRes = cfg.TileRes
		ds, err := dataset.Generate(dcfg)
		if err != nil {
			sp.End()
			return nil, err
		}
		rng := xrand.New(cfg.Seed ^ 0x5eed5011)
		train, val := ds.Split(cfg.ValFrac, rng)
		w.data[tl.PerSide] = &split{train: train, val: val}
		sp.End()
	}

	// Contexts from the coarsest tiling (largest tiles, richest label
	// vectors); the engine classifies tiles of any size thereafter.
	coarsest := cfg.Tilings[0]
	for _, tl := range cfg.Tilings[1:] {
		if tl.PerSide < coarsest.PerSide {
			coarsest = tl
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := span.Child("transform.contexts")
	set, err := ctxengine.Build(w.data[coarsest.PerSide].train, cfg.Context, xrand.New(cfg.Seed^0xc0e1))
	sp.End()
	if err != nil {
		return nil, err
	}
	w.Ctx = set
	return w, nil
}

// Data returns the train/validation datasets of one tiling.
func (w *Workspace) Data(tl tiling.Tiling) (train, val *dataset.Dataset, err error) {
	s, ok := w.data[tl.PerSide]
	if !ok {
		return nil, nil, fmt.Errorf("core: tiling %v not in workspace", tl)
	}
	return s.train, s.val, nil
}

// Artifacts is the transformation output for one application.
type Artifacts struct {
	Arch app.Architecture
	Ctx  *ctxengine.Set
	// Suites maps tiles-per-side to the trained model suite.
	Suites map[int]*app.Suite
	// Profiles holds the measured per-tiling profiles the selection-logic
	// sweep consumes, in workspace tiling order.
	Profiles []policy.TilingProfile
}

// TransformApp trains and measures one application across every candidate
// tiling in the workspace.
func (w *Workspace) TransformApp(arch app.Architecture) (*Artifacts, error) {
	return w.TransformAppCtx(context.Background(), arch)
}

// TransformAppCtx is TransformApp with cooperative cancellation: ctx is
// checked between tilings and, inside suite construction, between model
// trainings and epochs, so a cancelled transform returns ctx.Err()
// promptly. A completed transform is bit-identical to TransformApp with
// the same inputs: each (application, tiling) pair derives its randomness
// from the workspace seed alone, never from call timing or interleaving —
// which is also what makes concurrent transforms on one workspace
// deterministic.
func (w *Workspace) TransformAppCtx(ctx context.Context, arch app.Architecture) (*Artifacts, error) {
	ctx, span := telemetry.StartSpan(ctx, "transform.app")
	defer span.End()
	span.Set("app", fmt.Sprint(arch.Index))
	span.Set("quantized", fmt.Sprint(w.Cfg.Quantized))
	scope := telemetry.ProbeFrom(ctx).Metrics.Scope("transform")
	art := &Artifacts{Arch: arch, Ctx: w.Ctx, Suites: make(map[int]*app.Suite)}
	for _, tl := range w.Cfg.Tilings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tctx, sp := telemetry.StartSpan(ctx, "transform.tiling")
		sp.Set("app", fmt.Sprint(arch.Index))
		sp.Set("tiling", fmt.Sprint(tl.PerSide))
		sp.Set("quantized", fmt.Sprint(w.Cfg.Quantized))
		stageStart := time.Now()
		s := w.data[tl.PerSide]
		opts := app.DefaultTrainOptions()
		opts.Augment = w.Cfg.Augment
		opts.Quantized = w.Cfg.Quantized
		opts.PixelsPerTile = perTileBudget(w.Cfg.PixelsPerFrame, tl)
		opts.EvalPixelsPerTile = perTileBudget(w.Cfg.EvalPixelsPerFrame, tl)
		rng := xrand.New(w.Cfg.Seed ^ uint64(arch.Index)<<32 ^ uint64(tl.PerSide))
		suite, err := app.BuildSuiteData(tctx, arch, tl, s.prepared(w), w.Ctx, opts, rng)
		if err != nil {
			sp.End()
			return nil, err
		}
		art.Suites[tl.PerSide] = suite
		art.Profiles = append(art.Profiles, w.profile(tl, suite))
		sp.End()
		scope.Histogram("tiling_seconds").Observe(time.Since(stageStart).Seconds())
		scope.Counter("suites_trained").Inc()
	}
	scope.Counter("apps_transformed").Inc()
	return art, nil
}

// perTileBudget divides a per-frame pixel budget among tiles with a floor.
func perTileBudget(perFrame int, tl tiling.Tiling) int {
	n := perFrame / tl.Tiles()
	if n < 4 {
		n = 4
	}
	return n
}

// profile assembles the policy-facing profile of one tiling from the
// engine partition of its training data and the suite's measured quality.
func (w *Workspace) profile(tl tiling.Tiling, suite *app.Suite) policy.TilingProfile {
	s := w.data[tl.PerSide]
	s.prepared(w)
	labels := s.trainLabels
	k := w.Ctx.K
	counts := make([]int, k)
	hv := make([]float64, k)
	px := make([]float64, k)
	for i, smp := range s.train.Samples {
		c := labels[i]
		counts[c]++
		hv[c] += smp.Tile.HighValueFrac() * float64(smp.Tile.Pixels())
		px[c] += float64(smp.Tile.Pixels())
	}
	tp := policy.TilingProfile{Tiling: tl, Contexts: make([]policy.ContextProfile, k)}
	total := float64(s.train.Len())
	for c := 0; c < k; c++ {
		cp := policy.ContextProfile{
			TileFrac: float64(counts[c]) / total,
			Generic:  suite.Quality.Generic[c],
			Special:  suite.Quality.Special[c],
			Merged:   suite.Quality.Merged[c],
		}
		if px[c] > 0 {
			cp.HighValueFrac = hv[c] / px[c]
		}
		tp.Contexts[c] = cp
	}
	return tp
}

// Deployment describes a target satellite deployment for selection-logic
// generation.
type Deployment struct {
	// Target is the hardware platform.
	Target hw.Target
	// Deadline is the frame deadline from the orbit and grid.
	Deadline time.Duration
	// CapacityFrac is downlink capacity per observed frame as a fraction
	// of frame size.
	CapacityFrac float64
	// FillIdle pads an under-filled link with raw frames.
	FillIdle bool
}

// Env converts a deployment into a policy environment for an application.
func (d Deployment) Env(arch app.Architecture) policy.Env {
	return policy.Env{
		App:          arch,
		Target:       d.Target,
		Deadline:     d.Deadline,
		CapacityFrac: d.CapacityFrac,
		FillIdle:     d.FillIdle,
		UseEngine:    true,
	}
}

// SelectionLogic generates the deployment's selection logic by sweeping
// tilings and per-context actions (Section 3.4).
func (a *Artifacts) SelectionLogic(d Deployment) (policy.Selection, policy.Estimate) {
	return policy.Optimize(a.Profiles, d.Env(a.Arch))
}

// Runtime wires the artifacts and a generated selection into the on-orbit
// runtime. frameBits is the raw downlink size of one frame.
func (a *Artifacts) Runtime(sel policy.Selection, target hw.Target, frameBits float64) (*deploy.Runtime, error) {
	suite, ok := a.Suites[sel.Tiling.PerSide]
	if !ok {
		return nil, fmt.Errorf("core: no suite for tiling %v", sel.Tiling)
	}
	return &deploy.Runtime{
		Engine:   a.Ctx,
		Suite:    suite,
		Logic:    sel,
		Target:   target,
		TileBits: frameBits / float64(sel.Tiling.Tiles()),
	}, nil
}

// Profile returns the measured profile of one tiling.
func (a *Artifacts) Profile(tl tiling.Tiling) (policy.TilingProfile, error) {
	for _, p := range a.Profiles {
		if p.Tiling.PerSide == tl.PerSide {
			return p, nil
		}
	}
	return policy.TilingProfile{}, fmt.Errorf("core: tiling %v not profiled", tl)
}
