// Package fleet models platform constellations serving multiple customer
// applications — the "constellation-as-a-service" future the paper argues
// Kodan enables (Sections 2.1.3 and 7). Prior OEC work dedicates a
// vertically-integrated constellation to one application; a platform
// instead wants every satellite to serve every customer. The package
// compares the two operating strategies analytically:
//
//   - Dedicated: satellites are partitioned among applications; each group
//     runs one application continuously (prior work's model).
//   - Shared: every satellite time-slices all applications by
//     frame-interleaving — application i processes every A-th frame, so
//     its effective frame deadline stretches by A while its observation
//     share shrinks to 1/A.
//
// Under Kodan the shared platform retains almost all of the dedicated
// strategy's value while covering every application on every ground track;
// under direct deployment, sharing multiplies the computational bottleneck
// and value collapses. The tests quantify both claims.
package fleet

import (
	"context"
	"fmt"
	"time"

	"kodan/internal/app"
	"kodan/internal/fault"
	"kodan/internal/hw"
	"kodan/internal/parallel"
	"kodan/internal/policy"
	"kodan/internal/telemetry"
)

// AppSpec is one customer application: its architecture and measured
// tiling profiles (from the one-time transformation).
type AppSpec struct {
	Arch     app.Architecture
	Profiles []policy.TilingProfile
}

// Config describes the platform.
type Config struct {
	// Sats is the constellation population.
	Sats int
	// Target is the per-satellite compute hardware.
	Target hw.Target
	// Deadline is the single-application frame deadline.
	Deadline time.Duration
	// CapacityFrac is each satellite's downlink capacity per observed
	// frame as a fraction of frame size.
	CapacityFrac float64
	// Kodan selects per-app selection logics; false runs each app's
	// reference model directly (prior work).
	Kodan bool
	// Workers bounds the parallelism of the per-application policy
	// evaluations: 0 uses GOMAXPROCS, 1 forces the sequential path.
	// Reports are identical at every worker count — each application's
	// value is independent and written back by application index.
	Workers int
}

// validate rejects unusable configurations.
func (c Config) validate(nApps int) error {
	if c.Sats <= 0 {
		return fmt.Errorf("fleet: non-positive population %d", c.Sats)
	}
	if nApps == 0 {
		return fmt.Errorf("fleet: no applications")
	}
	if c.Deadline <= 0 {
		return fmt.Errorf("fleet: non-positive deadline")
	}
	return nil
}

// AppValue is one application's outcome on the platform.
type AppValue struct {
	// App is the application index.
	App int
	// ValueRate is high-value bits downlinked per observed-frame-bit of
	// one satellite's track, summed over the satellites serving this app.
	ValueRate float64
	// Satellites is how many satellites serve the application (for the
	// shared strategy this is the whole constellation).
	Satellites int
}

// Report is a strategy evaluation.
type Report struct {
	// Strategy names the operating model.
	Strategy string
	// PerApp holds each application's outcome.
	PerApp []AppValue
	// TotalValueRate sums value over applications.
	TotalValueRate float64
	// AppsServed counts applications with nonzero value.
	AppsServed int
}

// perSatValue returns one satellite's high-value downlink rate (per
// observed-frame-bit) for an application at an effective deadline.
func perSatValue(spec AppSpec, cfg Config, deadline time.Duration) float64 {
	env := policy.Env{
		App:          spec.Arch,
		Target:       cfg.Target,
		Deadline:     deadline,
		CapacityFrac: cfg.CapacityFrac,
		FillIdle:     true,
	}
	var est policy.Estimate
	if cfg.Kodan {
		_, est = policy.Optimize(spec.Profiles, env)
	} else {
		prof := spec.Profiles[0]
		env.UseEngine = false
		est = policy.Evaluate(policy.DirectSelection(prof), prof, env)
	}
	return est.Ledger.HighValueBits
}

// Dedicated evaluates the vertically-integrated strategy: satellites split
// as evenly as possible among applications (earlier applications get the
// remainder).
func Dedicated(specs []AppSpec, cfg Config) (Report, error) {
	return DedicatedCtx(context.Background(), specs, cfg)
}

// DedicatedCtx is Dedicated with cancellation; the per-application policy
// evaluations run on cfg.Workers goroutines.
func DedicatedCtx(ctx context.Context, specs []AppSpec, cfg Config) (Report, error) {
	if err := cfg.validate(len(specs)); err != nil {
		return Report{}, err
	}
	ctx, span := telemetry.StartSpan(ctx, "fleet.dedicated")
	defer span.End()
	telemetry.ProbeFrom(ctx).Metrics.Scope("fleet").Counter("evaluations").Add(int64(len(specs)))
	base := cfg.Sats / len(specs)
	extra := cfg.Sats % len(specs)
	vals := make([]AppValue, len(specs))
	err := parallel.ForEach(ctx, parallel.Workers(cfg.Workers), len(specs), func(_ context.Context, i int) error {
		n := base
		if i < extra {
			n++
		}
		v := 0.0
		if n > 0 {
			v = float64(n) * perSatValue(specs[i], cfg, cfg.Deadline)
		}
		vals[i] = AppValue{App: specs[i].Arch.Index, ValueRate: v, Satellites: n}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return assemble("dedicated", vals), nil
}

// Shared evaluates the platform strategy: every satellite frame-interleaves
// all applications. Application i sees 1/A of the frames with an A-times
// longer effective deadline, and the per-satellite downlink is shared in
// the same proportion.
func Shared(specs []AppSpec, cfg Config) (Report, error) {
	return SharedCtx(context.Background(), specs, cfg)
}

// SharedCtx is Shared with cancellation; the per-application policy
// evaluations run on cfg.Workers goroutines.
func SharedCtx(ctx context.Context, specs []AppSpec, cfg Config) (Report, error) {
	if err := cfg.validate(len(specs)); err != nil {
		return Report{}, err
	}
	ctx, span := telemetry.StartSpan(ctx, "fleet.shared")
	defer span.End()
	telemetry.ProbeFrom(ctx).Metrics.Scope("fleet").Counter("evaluations").Add(int64(len(specs)))
	a := len(specs)
	vals := make([]AppValue, len(specs))
	err := parallel.ForEach(ctx, parallel.Workers(cfg.Workers), len(specs), func(_ context.Context, i int) error {
		per := perSatValue(specs[i], cfg, time.Duration(a)*cfg.Deadline) / float64(a)
		vals[i] = AppValue{App: specs[i].Arch.Index, ValueRate: float64(cfg.Sats) * per, Satellites: cfg.Sats}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return assemble("shared", vals), nil
}

// upCount returns how many of the n satellites starting at offset are not
// marked down. A nil down slice means every satellite is up.
func upCount(down []bool, offset, n int) int {
	up := 0
	for i := offset; i < offset+n; i++ {
		if i >= len(down) || !down[i] {
			up++
		}
	}
	return up
}

// DedicatedDegradedCtx evaluates the dedicated strategy with the marked
// satellites unavailable (safe-mode reset, lost, or otherwise down).
// Partitions are assigned contiguously in application order — app i owns
// the same satellite indices Dedicated would give it — so an outage
// concentrated in one partition can zero out that application entirely
// while the rest of the fleet is untouched: the dedicated strategy's
// brittleness under faults. A nil down slice reproduces DedicatedCtx
// exactly.
func DedicatedDegradedCtx(ctx context.Context, specs []AppSpec, cfg Config, down []bool) (Report, error) {
	if err := cfg.validate(len(specs)); err != nil {
		return Report{}, err
	}
	ctx, span := telemetry.StartSpan(ctx, "fleet.dedicated_degraded")
	defer span.End()
	telemetry.ProbeFrom(ctx).Metrics.Scope("fleet").Counter("evaluations").Add(int64(len(specs)))
	base := cfg.Sats / len(specs)
	extra := cfg.Sats % len(specs)
	offsets := make([]int, len(specs))
	sizes := make([]int, len(specs))
	offset := 0
	for i := range specs {
		n := base
		if i < extra {
			n++
		}
		offsets[i], sizes[i] = offset, n
		offset += n
	}
	vals := make([]AppValue, len(specs))
	err := parallel.ForEach(ctx, parallel.Workers(cfg.Workers), len(specs), func(_ context.Context, i int) error {
		n := upCount(down, offsets[i], sizes[i])
		v := 0.0
		if n > 0 {
			v = float64(n) * perSatValue(specs[i], cfg, cfg.Deadline)
		}
		vals[i] = AppValue{App: specs[i].Arch.Index, ValueRate: v, Satellites: n}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return assemble("dedicated-degraded", vals), nil
}

// SharedDegradedCtx evaluates the shared strategy with the marked
// satellites unavailable. Every surviving satellite still serves every
// application, so value degrades linearly with the up-count and no
// application is lost while any satellite survives — the platform
// strategy's graceful degradation. A nil down slice reproduces SharedCtx
// exactly.
func SharedDegradedCtx(ctx context.Context, specs []AppSpec, cfg Config, down []bool) (Report, error) {
	if err := cfg.validate(len(specs)); err != nil {
		return Report{}, err
	}
	ctx, span := telemetry.StartSpan(ctx, "fleet.shared_degraded")
	defer span.End()
	telemetry.ProbeFrom(ctx).Metrics.Scope("fleet").Counter("evaluations").Add(int64(len(specs)))
	up := upCount(down, 0, cfg.Sats)
	a := len(specs)
	vals := make([]AppValue, len(specs))
	err := parallel.ForEach(ctx, parallel.Workers(cfg.Workers), len(specs), func(_ context.Context, i int) error {
		per := 0.0
		if up > 0 {
			per = perSatValue(specs[i], cfg, time.Duration(a)*cfg.Deadline) / float64(a)
		}
		vals[i] = AppValue{App: specs[i].Arch.Index, ValueRate: float64(up) * per, Satellites: up}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return assemble("shared-degraded", vals), nil
}

// DownSats marks the satellites a fault schedule takes below the
// availability floor over [start, start+span): satellite i is down when
// its safe-mode-reset fraction of the span is at least minDownFrac. A nil
// injector marks nothing.
func DownSats(inj *fault.Injector, sats int, start time.Time, span time.Duration, minDownFrac float64) []bool {
	down := make([]bool, sats)
	if inj == nil {
		return down
	}
	for i := range down {
		down[i] = inj.DownFrac(i, start, span) >= minDownFrac
	}
	return down
}

// assemble folds per-app values into a report, in application order.
func assemble(strategy string, vals []AppValue) Report {
	rep := Report{Strategy: strategy, PerApp: vals}
	for _, v := range vals {
		rep.TotalValueRate += v.ValueRate
		if v.ValueRate > 0 {
			rep.AppsServed++
		}
	}
	return rep
}

// Efficiency returns the shared strategy's total value as a fraction of the
// dedicated strategy's — how much platform flexibility costs.
func Efficiency(shared, dedicated Report) float64 {
	if dedicated.TotalValueRate == 0 {
		return 0
	}
	return shared.TotalValueRate / dedicated.TotalValueRate
}
