package fleet

import (
	"context"
	"math"
	"testing"
	"time"

	"kodan/internal/fault"
)

func TestDegradedNilDownMatchesHealthy(t *testing.T) {
	sp, cfg := specs(1, 4, 7), platformConfig(true)
	ded, err := Dedicated(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dedDeg, err := DedicatedDegradedCtx(context.Background(), sp, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ded.TotalValueRate-dedDeg.TotalValueRate) > 1e-12 {
		t.Errorf("nil down: degraded dedicated %g != healthy %g", dedDeg.TotalValueRate, ded.TotalValueRate)
	}
	sh, err := Shared(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shDeg, err := SharedDegradedCtx(context.Background(), sp, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh.TotalValueRate-shDeg.TotalValueRate) > 1e-12 {
		t.Errorf("nil down: degraded shared %g != healthy %g", shDeg.TotalValueRate, sh.TotalValueRate)
	}
}

func TestDedicatedLosesAnAppSharedDoesNot(t *testing.T) {
	sp, cfg := specs(1, 4, 7), platformConfig(true)
	// 12 sats over 3 apps: partitions [0,4), [4,8), [8,12). Take out all
	// of app 1's partition.
	down := make([]bool, cfg.Sats)
	for i := 0; i < 4; i++ {
		down[i] = true
	}
	ded, err := DedicatedDegradedCtx(context.Background(), sp, cfg, down)
	if err != nil {
		t.Fatal(err)
	}
	if ded.AppsServed != 2 {
		t.Errorf("dedicated with one partition down serves %d apps, want 2", ded.AppsServed)
	}
	if ded.PerApp[0].ValueRate != 0 || ded.PerApp[0].Satellites != 0 {
		t.Errorf("downed partition's app kept value: %+v", ded.PerApp[0])
	}

	sh, err := SharedDegradedCtx(context.Background(), sp, cfg, down)
	if err != nil {
		t.Fatal(err)
	}
	if sh.AppsServed != 3 {
		t.Errorf("shared with 4 sats down serves %d apps, want all 3", sh.AppsServed)
	}
	healthy, err := Shared(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := healthy.TotalValueRate * 8.0 / 12.0
	if math.Abs(sh.TotalValueRate-want) > 1e-9 {
		t.Errorf("shared degradation not linear: %g, want %g", sh.TotalValueRate, want)
	}
}

func TestDegradedZeroSatellitesRejected(t *testing.T) {
	cfg := platformConfig(true)
	cfg.Sats = 0
	if _, err := DedicatedDegradedCtx(context.Background(), specs(1), cfg, nil); err == nil {
		t.Fatal("zero satellites accepted")
	}
	if _, err := SharedDegradedCtx(context.Background(), specs(1), cfg, nil); err == nil {
		t.Fatal("zero satellites accepted")
	}
}

func TestSingleMemberFleetSharedEqualsDedicated(t *testing.T) {
	// One satellite, one application: the two strategies describe the same
	// physical system and must report the same value.
	sp := specs(4)
	cfg := platformConfig(true)
	cfg.Sats = 1
	ded, err := Dedicated(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Shared(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ded.TotalValueRate-sh.TotalValueRate) > 1e-12 {
		t.Fatalf("single-member fleet: dedicated %g != shared %g", ded.TotalValueRate, sh.TotalValueRate)
	}
	if ded.PerApp[0].Satellites != 1 || sh.PerApp[0].Satellites != 1 {
		t.Fatalf("single member not assigned: dedicated=%d shared=%d",
			ded.PerApp[0].Satellites, sh.PerApp[0].Satellites)
	}
}

func TestWholeFleetDownServesNothing(t *testing.T) {
	sp, cfg := specs(1, 4), platformConfig(true)
	down := make([]bool, cfg.Sats)
	for i := range down {
		down[i] = true
	}
	ded, err := DedicatedDegradedCtx(context.Background(), sp, cfg, down)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SharedDegradedCtx(context.Background(), sp, cfg, down)
	if err != nil {
		t.Fatal(err)
	}
	if ded.TotalValueRate != 0 || ded.AppsServed != 0 {
		t.Errorf("dedicated with whole fleet down: %+v", ded)
	}
	if sh.TotalValueRate != 0 || sh.AppsServed != 0 {
		t.Errorf("shared with whole fleet down: %+v", sh)
	}
}

func TestDownSatsFromSchedule(t *testing.T) {
	epoch := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	s := &fault.Schedule{Windows: []fault.Window{
		// Sat 0 down half the day; sat 2 down one hour.
		{Kind: fault.SatelliteReset, Sat: 0, Start: epoch, End: epoch.Add(12 * time.Hour)},
		{Kind: fault.SatelliteReset, Sat: 2, Start: epoch, End: epoch.Add(time.Hour)},
	}}
	down := DownSats(fault.NewInjector(s), 3, epoch, 24*time.Hour, 0.25)
	if !down[0] || down[1] || down[2] {
		t.Fatalf("DownSats = %v, want [true false false] at 25%% floor", down)
	}
	if got := DownSats(nil, 3, epoch, 24*time.Hour, 0.25); got[0] || got[1] || got[2] {
		t.Fatalf("nil injector marked satellites down: %v", got)
	}
}
