package fleet

import (
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/tiling"
)

// conf builds a confusion matrix from rates over a nominal population.
func conf(tpr, fpr, baseRate float64) nn.Confusion {
	const n = 10000
	pos := int(baseRate * n)
	neg := n - pos
	tp := int(tpr * float64(pos))
	fp := int(fpr * float64(neg))
	return nn.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

func profile(perSide int) policy.TilingProfile {
	return policy.TilingProfile{
		Tiling: tiling.Tiling{PerSide: perSide},
		Contexts: []policy.ContextProfile{
			{TileFrac: 0.30, HighValueFrac: 0.92, Generic: conf(0.90, 0.30, 0.92), Special: conf(0.95, 0.20, 0.92), Merged: conf(0.93, 0.25, 0.92)},
			{TileFrac: 0.35, HighValueFrac: 0.06, Generic: conf(0.80, 0.15, 0.06), Special: conf(0.90, 0.05, 0.06), Merged: conf(0.85, 0.08, 0.06)},
			{TileFrac: 0.35, HighValueFrac: 0.50, Generic: conf(0.85, 0.25, 0.50), Special: conf(0.92, 0.10, 0.50), Merged: conf(0.90, 0.15, 0.50)},
		},
	}
}

func specs(appIdxs ...int) []AppSpec {
	var out []AppSpec
	for _, i := range appIdxs {
		out = append(out, AppSpec{
			Arch:     app.App(i),
			Profiles: []policy.TilingProfile{profile(11), profile(3)},
		})
	}
	return out
}

func platformConfig(kodan bool) Config {
	return Config{
		Sats:         12,
		Target:       hw.Orin15W,
		Deadline:     24 * time.Second,
		CapacityFrac: 0.21,
		Kodan:        kodan,
	}
}

func TestDedicatedSplitsSatellites(t *testing.T) {
	rep, err := Dedicated(specs(1, 4, 7), platformConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range rep.PerApp {
		total += a.Satellites
	}
	if total != 12 {
		t.Fatalf("satellites allocated = %d", total)
	}
	if rep.AppsServed != 3 {
		t.Fatalf("apps served = %d", rep.AppsServed)
	}
}

func TestDedicatedUnevenSplit(t *testing.T) {
	cfg := platformConfig(true)
	cfg.Sats = 7
	rep, err := Dedicated(specs(1, 4, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 2}
	for i, a := range rep.PerApp {
		if a.Satellites != want[i] {
			t.Fatalf("app %d got %d satellites, want %d", i, a.Satellites, want[i])
		}
	}
}

func TestSharedServesAllAppsEverywhere(t *testing.T) {
	rep, err := Shared(specs(1, 4, 7), platformConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rep.PerApp {
		if a.Satellites != 12 {
			t.Fatalf("app %d on %d satellites", a.App, a.Satellites)
		}
		if a.ValueRate <= 0 {
			t.Fatalf("app %d produced no value", a.App)
		}
	}
}

func TestKodanPlatformNearlyFree(t *testing.T) {
	// With Kodan, time-slicing three applications costs little total value:
	// each app's logic still meets its (3x longer) effective deadline and
	// the downlink stays saturated with dense data.
	s := specs(1, 4, 7)
	cfg := platformConfig(true)
	shared, err := Shared(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := Dedicated(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eff := Efficiency(shared, dedicated); eff < 0.9 {
		t.Fatalf("Kodan platform efficiency = %.3f, want >= 0.9", eff)
	}
}

func TestDirectPlatformCollapses(t *testing.T) {
	// Direct deployment is already bottlenecked at the single-app deadline
	// on the Orin; the platform's efficiency under Kodan must decisively
	// beat direct deployment's absolute value.
	s := specs(1, 4, 7)
	kodanShared, err := Shared(s, platformConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	directShared, err := Shared(s, platformConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if kodanShared.TotalValueRate <= 1.3*directShared.TotalValueRate {
		t.Fatalf("Kodan platform (%.3f) not well above direct platform (%.3f)",
			kodanShared.TotalValueRate, directShared.TotalValueRate)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Dedicated(specs(1), Config{Sats: 0, Deadline: time.Second}); err == nil {
		t.Fatal("zero satellites accepted")
	}
	if _, err := Shared(nil, platformConfig(true)); err == nil {
		t.Fatal("no apps accepted")
	}
	if _, err := Shared(specs(1), Config{Sats: 1}); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestEfficiencyZeroSafe(t *testing.T) {
	if Efficiency(Report{}, Report{}) != 0 {
		t.Fatal("zero dedicated not handled")
	}
}
