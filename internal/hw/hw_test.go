package hw

import (
	"testing"
	"time"
)

func TestTargetsOrder(t *testing.T) {
	ts := Targets()
	if len(ts) != int(NumTargets) {
		t.Fatalf("targets = %d", len(ts))
	}
	if ts[0] != GTX1070Ti || ts[1] != I7_7800X || ts[2] != Orin15W {
		t.Fatal("target order does not match Table 1 columns")
	}
	names := map[Target]string{GTX1070Ti: "1070 Ti", I7_7800X: "i7-7800", Orin15W: "Orin 15W"}
	for tg, want := range names {
		if tg.String() != want {
			t.Errorf("%v", tg)
		}
	}
}

func TestContextEngineCheap(t *testing.T) {
	// The engine must cost well under the cheapest application per tile
	// (App 1 on the 1070 Ti: 178.2 ms), or elision could not pay off.
	for _, tg := range Targets() {
		if c := tg.ContextEngineMsPerTile(); c <= 0 || c >= 178.2/4 {
			t.Errorf("%v: engine cost %v ms", tg, c)
		}
	}
}

func TestFrameTimeArithmetic(t *testing.T) {
	// 10 tiles at 100 ms, no elision, no engine: 1 s.
	if got := FrameTime(100, 10, 0, false, Orin15W); got != time.Second {
		t.Fatalf("frame time = %v", got)
	}
	// Full elision leaves only the engine cost.
	got := FrameTime(100, 10, 1, true, Orin15W)
	want := time.Duration(10*Orin15W.ContextEngineMsPerTile()) * time.Millisecond
	if got != want {
		t.Fatalf("elided frame time = %v, want %v", got, want)
	}
	// Half elision halves the model term.
	got = FrameTime(100, 10, 0.5, false, Orin15W)
	if got != 500*time.Millisecond {
		t.Fatalf("half-elided = %v", got)
	}
}

func TestDirectFrameTimePaperScale(t *testing.T) {
	// App 7 on the Orin at 121 tiles: 2040 ms x 121 ~ 247 s — the Figure 9
	// direct-deploy regime, far over the ~23 s deadline.
	got := DirectFrameTime(2040, 121, Orin15W)
	if got < 240*time.Second || got > 255*time.Second {
		t.Fatalf("App7/Orin direct frame time = %v", got)
	}
}

func TestFrameTimePanics(t *testing.T) {
	for _, f := range []func(){
		func() { FrameTime(100, 0, 0, false, Orin15W) },
		func() { FrameTime(100, 10, -0.1, false, Orin15W) },
		func() { FrameTime(100, 10, 1.1, false, Orin15W) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
