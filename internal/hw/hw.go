// Package hw models the paper's three hardware deployment targets and the
// per-frame timing arithmetic built on Table 1's measured per-tile
// latencies. Execution times are hardware facts the reproduction cannot
// re-measure (the devices are physical), so — per the substitution rules —
// they are inputs taken from the paper, and everything downstream (frame
// times, deadline misses, selection-logic choices) is computed from them.
package hw

import (
	"fmt"
	"time"
)

// Target is a hardware deployment target.
type Target int

// The paper's targets (Table 1 column order).
const (
	// GTX1070Ti is the desktop GPU (~180 W).
	GTX1070Ti Target = iota
	// I7_7800X is the 12-core desktop CPU (~140 W).
	I7_7800X
	// Orin15W is the Jetson AGX Orin embedded GPU in its 15 W mode — the
	// realistic cubesat payload computer.
	Orin15W
	NumTargets
)

// Targets returns all targets in Table 1 column order.
func Targets() []Target { return []Target{GTX1070Ti, I7_7800X, Orin15W} }

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case GTX1070Ti:
		return "1070 Ti"
	case I7_7800X:
		return "i7-7800"
	case Orin15W:
		return "Orin 15W"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// ContextEngineMsPerTile returns the per-tile cost of running Kodan's
// context engine (tile summary statistics plus a small classifier). The
// paper does not report this separately; it is modeled as a small constant
// well under the cheapest application's per-tile time on each target.
func (t Target) ContextEngineMsPerTile() float64 {
	switch t {
	case GTX1070Ti:
		return 8
	case I7_7800X:
		return 20
	case Orin15W:
		return 30
	default:
		return 30
	}
}

// FrameTime returns the time to process one frame: every tile pays the
// context-engine cost when the engine runs, and non-elided tiles pay the
// model's per-tile latency.
func FrameTime(modelMsPerTile float64, tiles int, elidedFrac float64, engine bool, t Target) time.Duration {
	if tiles <= 0 {
		panic("hw: non-positive tile count")
	}
	if elidedFrac < 0 || elidedFrac > 1 {
		panic("hw: elided fraction outside [0,1]")
	}
	ms := float64(tiles) * (1 - elidedFrac) * modelMsPerTile
	if engine {
		ms += float64(tiles) * t.ContextEngineMsPerTile()
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// DirectFrameTime returns the frame time of a direct deployment: all tiles
// through the model, no context engine.
func DirectFrameTime(modelMsPerTile float64, tiles int, t Target) time.Duration {
	return FrameTime(modelMsPerTile, tiles, 0, false, t)
}
