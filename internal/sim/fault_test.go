package sim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"kodan/internal/fault"
	"kodan/internal/link"
	"kodan/internal/telemetry"
)

// ledger renders a result's per-satellite numbers, so two runs can be
// compared byte-for-byte.
func ledger(res *Result) string {
	out := ""
	bits := res.DownlinkBits()
	for i := range res.Captures {
		out += fmt.Sprintf("sat %d: frames=%d served=%v bits=%.3f\n",
			i, len(res.Captures[i]), res.Served[i], bits[i])
	}
	out += fmt.Sprintf("grants=%d scenes=%d capacity=%.6f\n",
		len(res.Grants), res.UniqueScenes(), res.FrameCapacity())
	return out
}

// testSchedule builds a mixed fault schedule over the first simulated hours.
func testSchedule() *fault.Schedule {
	return &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.StationOutage, Station: "Svalbard", Start: epoch, End: epoch.Add(3 * time.Hour)},
		{Kind: fault.LinkFade, Station: "Svalbard", Start: epoch.Add(3 * time.Hour), End: epoch.Add(6 * time.Hour), Severity: 6},
		{Kind: fault.SensorDropout, Sat: 0, Start: epoch, End: epoch.Add(2 * time.Hour)},
		{Kind: fault.SatelliteReset, Sat: 1, Start: epoch.Add(1 * time.Hour), End: epoch.Add(4 * time.Hour)},
	}}
}

func TestNilInjectorByteIdenticalToBaseline(t *testing.T) {
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An explicitly attached nil injector and an empty schedule must both
	// reproduce the baseline ledger exactly.
	for name, ctx := range map[string]context.Context{
		"nil injector":   fault.WithInjector(context.Background(), nil),
		"empty schedule": fault.WithInjector(context.Background(), fault.NewInjector(&fault.Schedule{})),
	} {
		res, err := RunCtx(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ledger(res), ledger(base); got != want {
			t.Errorf("%s: ledger diverged from baseline\n--- baseline:\n%s--- got:\n%s", name, want, got)
		}
		if res.FadedBits != nil {
			t.Errorf("%s: FadedBits set on a fade-free run", name)
		}
	}
}

func TestFaultedRunDeterministicAcrossWorkers(t *testing.T) {
	inj := fault.NewInjector(testSchedule())
	run := func(workers int) string {
		cfg := Landsat8Config(epoch, 6*time.Hour, 2)
		cfg.Workers = workers
		res, err := RunCtx(fault.WithInjector(context.Background(), inj), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger(res)
	}
	base := run(1)
	if got := run(4); got != base {
		t.Fatalf("faulted ledger diverged across worker counts\n--- workers=1:\n%s--- workers=4:\n%s", base, got)
	}
}

func TestFaultsDegradeTheRun(t *testing.T) {
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithProbe(context.Background(), telemetry.Probe{Metrics: reg})
	ctx = fault.WithInjector(ctx, fault.NewInjector(testSchedule()))
	res, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.FramesObserved() >= base.FramesObserved() {
		t.Errorf("sensor dropout + reset did not reduce frames: %d >= %d",
			res.FramesObserved(), base.FramesObserved())
	}
	if res.FadedBits == nil {
		t.Fatal("link fade did not populate FadedBits")
	}
	var faded, nominal float64
	for i := range res.Served {
		faded += res.DownlinkBits()[i]
		nominal += res.Config.Radio.Bits(res.Served[i])
	}
	if faded >= nominal {
		t.Errorf("6 dB fade did not reduce downlink bits: %g >= %g", faded, nominal)
	}

	snap := reg.Snapshot()
	for _, ctr := range []string{"sim.fault.captures_dropped", "sim.fault.contact_cut_seconds", "sim.fault.faded_bits"} {
		if snap.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0", ctr, snap.Counters[ctr])
		}
	}
}

func TestAllStationsDownDegenerateSchedule(t *testing.T) {
	cfg := Landsat8Config(epoch, 3*time.Hour, 2)
	var ws []fault.Window
	for _, st := range cfg.Stations {
		ws = append(ws, fault.Window{Kind: fault.StationOutage, Station: st.Name, Start: epoch, End: epoch.Add(3 * time.Hour)})
	}
	ctx := fault.WithInjector(context.Background(), fault.NewInjector(&fault.Schedule{Windows: ws}))
	res, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grants) != 0 {
		t.Errorf("all stations down still granted %d intervals", len(res.Grants))
	}
	if got := link.TotalServed(res.Grants); got != 0 {
		t.Errorf("all stations down still served %v", got)
	}
	// The constellation still observes: outages hit the ground segment only.
	if res.FramesObserved() == 0 {
		t.Error("station outages should not stop captures")
	}
}

func TestSingleStationOutageRebalancesLeastServed(t *testing.T) {
	// With one station down, its windows disappear and the least-served
	// allocator redistributes the remaining stations' time: every satellite
	// keeps a share, and total served shrinks rather than collapsing onto
	// one satellite.
	cfg := Landsat8Config(epoch, 24*time.Hour, 2)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.StationOutage, Station: "Svalbard", Start: epoch, End: epoch.Add(24 * time.Hour)},
	}}
	res, err := RunCtx(fault.WithInjector(context.Background(), fault.NewInjector(out)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := link.TotalServed(res.Grants), link.TotalServed(base.Grants); got >= want {
		t.Fatalf("losing Svalbard did not shrink total served: %v >= %v", got, want)
	}
	for i, d := range res.Served {
		if d == 0 {
			t.Errorf("sat %d starved after a single-station outage (least-served should rebalance)", i)
		}
	}
}
