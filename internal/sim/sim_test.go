package sim

import (
	"testing"
	"time"

	"kodan/internal/sense"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := Landsat8Config(epoch, time.Hour, 1)
	cfg.Satellites = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero satellites accepted")
	}
	cfg = Landsat8Config(epoch, 0, 1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero span accepted")
	}
}

func TestSingleSatelliteOrbitPeriodAccounting(t *testing.T) {
	// Over one orbit revolution, a satellite observes ~248 frames (one row
	// pitch each) — the denominator in Figure 2's "2% downlinked" claim.
	cfg := Landsat8Config(epoch, 99*time.Minute, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.FramesObserved(); n < 240 || n > 256 {
		t.Fatalf("frames per orbit = %d, want ~248", n)
	}
}

func TestHyperspectralOrbitDownlinkMatchesFigure2(t *testing.T) {
	// Figure 2: with hyperspectral 10K frames, the ground segment receives
	// about 2% of a lone satellite's observations per revolution (~5 of
	// ~248 frames).
	cfg := Landsat8Config(epoch, 99*time.Minute, 1)
	cfg.Camera = sense.Landsat8Hyper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := res.FrameCapacity() / float64(res.FramesObserved())
	if frac < 0.005 || frac > 0.05 {
		t.Fatalf("downlink fraction per orbit = %.3f, want ~0.02", frac)
	}
}

func TestMultiSatCapturesScaleLinearly(t *testing.T) {
	one, err := Run(Landsat8Config(epoch, 2*time.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Landsat8Config(epoch, 2*time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 4*one.FramesObserved()-8, 4*one.FramesObserved()+8
	if n := four.FramesObserved(); n < lo || n > hi {
		t.Fatalf("4-sat frames = %d, want ~%d", n, 4*one.FramesObserved())
	}
}

func TestDownlinkSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour allocation sweep")
	}
	// Total downlinked frames must grow sublinearly and eventually flatten
	// as the population saturates the ground segment (Figure 2).
	span := 6 * time.Hour
	var caps []float64
	for _, n := range []int{1, 4, 16, 48} {
		res, err := Run(Landsat8Config(epoch, span, n))
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, res.FrameCapacity())
	}
	if !(caps[1] > caps[0] && caps[2] > caps[1]) {
		t.Fatalf("capacity not increasing: %v", caps)
	}
	// Saturation: going 16 -> 48 satellites (3x) should grow capacity far
	// less than 3x.
	if caps[3] > caps[2]*2 {
		t.Fatalf("no saturation: 16 sats %.0f, 48 sats %.0f", caps[2], caps[3])
	}
}

func TestServedNeverExceedsStationTime(t *testing.T) {
	res, err := Run(Landsat8Config(epoch, 3*time.Hour, 8))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, d := range res.Served {
		total += d
	}
	// 3 stations x 3 hours is a hard upper bound on granted time.
	if total > 9*time.Hour {
		t.Fatalf("granted %v exceeds station time", total)
	}
}

func TestUniqueScenesBounded(t *testing.T) {
	res, err := Run(Landsat8Config(epoch, 3*time.Hour, 2))
	if err != nil {
		t.Fatal(err)
	}
	u := res.UniqueScenes()
	if u <= 0 || u > res.FramesObserved() {
		t.Fatalf("unique scenes = %d of %d observed", u, res.FramesObserved())
	}
}

func TestWalkerPlanesConfig(t *testing.T) {
	cfg := Landsat8Config(epoch, time.Hour, 6)
	cfg.Planes = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Orbits) != 6 {
		t.Fatalf("orbit count = %d", len(res.Orbits))
	}
	raans := map[float64]bool{}
	for _, e := range res.Orbits {
		raans[e.RAANRad] = true
	}
	if len(raans) != 3 {
		t.Fatalf("distinct planes = %d, want 3", len(raans))
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(Landsat8Config(epoch, 2*time.Hour, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Landsat8Config(epoch, 2*time.Hour, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesObserved() != b.FramesObserved() || a.FrameCapacity() != b.FrameCapacity() {
		t.Fatal("simulation not deterministic")
	}
}

func TestDailyBentPipeFractionMatchesFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day simulation")
	}
	// Figure 4: a lone Landsat satellite can downlink ~21% of its ~3600
	// daily observations with the multispectral payload.
	res, err := Run(Landsat8Config(epoch, 24*time.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	obs := float64(res.FramesObserved())
	if obs < 3300 || obs > 3900 {
		t.Fatalf("frames/day = %.0f", obs)
	}
	frac := res.FrameCapacity() / obs
	if frac < 0.15 || frac > 0.28 {
		t.Fatalf("bent-pipe downlink fraction = %.3f, want ~0.21", frac)
	}
}

func TestRandomPhasesDeterministicAndSpread(t *testing.T) {
	cfg := Landsat8Config(epoch, time.Hour, 6)
	cfg.RandomPhases = true
	cfg.PhaseSeed = 42
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesObserved() != b.FramesObserved() || a.UniqueScenes() != b.UniqueScenes() {
		t.Fatal("random phasing not deterministic for a fixed seed")
	}
	// Phases actually differ across satellites.
	phases := map[float64]bool{}
	for _, e := range a.Orbits {
		phases[e.MeanAnomalyRad] = true
	}
	if len(phases) != 6 {
		t.Fatalf("distinct phases = %d", len(phases))
	}
	// A different seed gives a different constellation.
	cfg.PhaseSeed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c.Orbits {
		if c.Orbits[i].MeanAnomalyRad != a.Orbits[i].MeanAnomalyRad {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not move phases")
	}
}

func TestRandomPhasesDefaultSeed(t *testing.T) {
	cfg := Landsat8Config(epoch, 30*time.Minute, 2)
	cfg.RandomPhases = true // PhaseSeed zero defaults to 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDownlinkBitsMatchesServed(t *testing.T) {
	res, err := Run(Landsat8Config(epoch, 2*time.Hour, 2))
	if err != nil {
		t.Fatal(err)
	}
	bits := res.DownlinkBits()
	for i, d := range res.Served {
		if want := res.Config.Radio.Bits(d); bits[i] != want {
			t.Fatalf("sat %d bits %v, want %v", i, bits[i], want)
		}
	}
	per := res.FrameCapacityPerSat()
	var total float64
	for _, p := range per {
		total += p
	}
	if diff := total - res.FrameCapacity(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-sat capacities (%v) do not sum to total (%v)", total, res.FrameCapacity())
	}
}
