package sim

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kodan/internal/fault"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/events"
)

// journalBytes runs a 6-hour two-satellite mission with a journal
// attached and returns the exported JSONL plus the result ledger.
func journalBytes(t *testing.T, workers int, sched *fault.Schedule) (string, string) {
	t.Helper()
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	cfg.Workers = workers
	ctx := context.Background()
	if sched != nil {
		ctx = fault.WithInjector(ctx, fault.NewInjector(sched))
	}
	j := events.NewJournal()
	res, err := RunCtx(events.WithJournal(ctx, j), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.DrainDeferredCtx(events.WithJournal(context.Background(), j),
		cfg.Camera.FrameBits(), 64*cfg.Camera.FrameBits())
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ledger(res)
}

// TestJournalByteIdenticalAcrossWorkers is the tentpole determinism
// property: the exported journal (including the drain replay) is
// byte-identical at every worker count, clean and faulted.
func TestJournalByteIdenticalAcrossWorkers(t *testing.T) {
	for name, sched := range map[string]*fault.Schedule{
		"clean":   nil,
		"faulted": testSchedule(),
	} {
		base, baseLedger := journalBytes(t, 1, sched)
		if base == "" {
			t.Fatalf("%s: empty journal", name)
		}
		for _, workers := range []int{4, 0} {
			got, gotLedger := journalBytes(t, workers, sched)
			if got != base {
				t.Errorf("%s: journal diverged between workers=1 and workers=%d", name, workers)
			}
			if gotLedger != baseLedger {
				t.Errorf("%s: ledger diverged between workers=1 and workers=%d", name, workers)
			}
		}
	}
}

// TestJournaledRunByteIdenticalToBaseline pins the observe-only rule:
// attaching a journal changes nothing about the result.
func TestJournaledRunByteIdenticalToBaseline(t *testing.T) {
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCtx(events.WithJournal(context.Background(), events.NewJournal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ledger(res), ledger(base); got != want {
		t.Errorf("journaled ledger diverged from baseline\n--- baseline:\n%s--- got:\n%s", want, got)
	}
	// Same for the drain stats.
	baseStats := base.DrainDeferred(cfg.Camera.FrameBits(), 8*cfg.Camera.FrameBits())
	gotStats := res.DrainDeferredCtx(events.WithJournal(context.Background(), events.NewJournal()),
		cfg.Camera.FrameBits(), 8*cfg.Camera.FrameBits())
	if baseStats != gotStats {
		t.Errorf("journaled drain stats diverged: %+v vs %+v", baseStats, gotStats)
	}
}

// TestFaultFreeJournalHasNoFaultEvents pins the clean-run contract the
// anomaly CI gate depends on.
func TestFaultFreeJournalHasNoFaultEvents(t *testing.T) {
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	j := events.NewJournal()
	if _, err := RunCtx(events.WithJournal(context.Background(), j), cfg); err != nil {
		t.Fatal(err)
	}
	counts := j.CountsByType()
	if counts[events.FaultEnter] != 0 || counts[events.FaultExit] != 0 {
		t.Fatalf("fault-free run journaled %d enter / %d exit fault events",
			counts[events.FaultEnter], counts[events.FaultExit])
	}
	for _, typ := range []events.Type{events.Capture, events.ContactStart, events.ContactEnd, events.DownlinkGrant} {
		if counts[typ] == 0 {
			t.Errorf("journal has no %s events", typ)
		}
	}
}

// TestFaultedJournalPairsFaultWindows checks the faulted journal carries
// one enter and one exit per schedule window, inside the simulated span.
func TestFaultedJournalPairsFaultWindows(t *testing.T) {
	sched := testSchedule()
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	j := events.NewJournal()
	ctx := fault.WithInjector(context.Background(), fault.NewInjector(sched))
	if _, err := RunCtx(events.WithJournal(ctx, j), cfg); err != nil {
		t.Fatal(err)
	}
	counts := j.CountsByType()
	if got, want := counts[events.FaultEnter], len(sched.Windows); got != want {
		t.Fatalf("fault_enter count = %d, want %d", got, want)
	}
	if got, want := counts[events.FaultExit], len(sched.Windows); got != want {
		t.Fatalf("fault_exit count = %d, want %d", got, want)
	}
	end := epoch.Add(6 * time.Hour)
	for _, e := range j.Events() {
		if e.Type != events.FaultEnter && e.Type != events.FaultExit {
			continue
		}
		if e.Sim().Before(epoch) || e.Sim().After(end) {
			t.Errorf("fault event at %v outside simulated span", e.Sim())
		}
		if e.Detail == "" {
			t.Errorf("fault event without a kind: %+v", e)
		}
	}
}

// TestJournalCountersPublished checks the sim.events.* and sim.drain.*
// metrics reach a shared registry alongside the journal.
func TestJournalCountersPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithProbe(context.Background(), telemetry.Probe{Metrics: reg})
	j := events.NewJournal()
	ctx = events.WithJournal(ctx, j)
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	res, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.DrainDeferredCtx(ctx, cfg.Camera.FrameBits(), 64*cfg.Camera.FrameBits())

	counts := j.CountsByType()
	for _, typ := range []events.Type{events.Capture, events.ContactStart, events.DownlinkGrant} {
		got := reg.Counter("sim.events." + string(typ)).Load()
		if got != int64(counts[typ]) {
			t.Errorf("sim.events.%s = %d, want %d", typ, got, counts[typ])
		}
	}
	if reg.Counter("sim.drain.delivered_bits").Load() <= 0 {
		t.Error("sim.drain.delivered_bits not published")
	}
	if reg.Histogram("sim.drain.delivery_latency_seconds").Count() == 0 {
		t.Error("sim.drain.delivery_latency_seconds histogram empty")
	}
	if reg.Gauge("sim.drain.peak_buffer_bits").Load() <= 0 {
		t.Error("sim.drain.peak_buffer_bits gauge not set")
	}
	// Without a journal, no sim.events.* counters appear (the journal is
	// the emission trigger), but drain metrics still publish.
	reg2 := telemetry.NewRegistry()
	ctx2 := telemetry.WithProbe(context.Background(), telemetry.Probe{Metrics: reg2})
	res2, err := RunCtx(ctx2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2.DrainDeferredCtx(ctx2, cfg.Camera.FrameBits(), 64*cfg.Camera.FrameBits())
	if got := reg2.Counter("sim.events.capture").Load(); got != 0 {
		t.Errorf("journal-less run published sim.events.capture = %d", got)
	}
	if reg2.Counter("sim.drain.delivered_bits").Load() <= 0 {
		t.Error("journal-less run did not publish drain metrics")
	}
}

// TestDrainJournalAccounting cross-checks the drain's journal against its
// returned stats: enqueued bits equal delivered + dropped + residual, and
// the per-satellite high-water marks bound the global peak.
func TestDrainJournalAccounting(t *testing.T) {
	cfg := Landsat8Config(epoch, 6*time.Hour, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := events.NewJournal()
	stats := res.DrainDeferredCtx(events.WithJournal(context.Background(), j),
		cfg.Camera.FrameBits(), 8*cfg.Camera.FrameBits())

	var enq, drop, peak float64
	drains := 0
	for _, e := range j.Events() {
		switch e.Type {
		case events.DeferEnqueue:
			enq += e.Value
		case events.DeferOverflow:
			drop += e.Value
		case events.DeferDrain:
			drains++
		case events.BufferHighWater:
			if e.Value > peak {
				peak = e.Value
			}
		}
	}
	// Relative tolerance: the totals are O(1e12) bits accumulated in a
	// different order than the stats, so only ~12 digits agree exactly.
	close := func(a, b float64) bool {
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		scale := a
		if b > scale {
			scale = b
		}
		return diff <= 1e-9*scale
	}
	if !close(enq, stats.DeliveredBits+stats.ResidualBits) {
		t.Errorf("enqueued %.0f != delivered %.0f + residual %.0f", enq, stats.DeliveredBits, stats.ResidualBits)
	}
	if !close(drop, stats.DroppedBits) {
		t.Errorf("journaled drops %.0f != stats %.0f", drop, stats.DroppedBits)
	}
	if peak != stats.PeakBufferBits {
		t.Errorf("max high-water %.0f != peak %.0f", peak, stats.PeakBufferBits)
	}
	if stats.DeliveredBits > 0 && drains == 0 {
		t.Error("bits delivered but no defer_drain events journaled")
	}
}
