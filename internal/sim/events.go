package sim

import (
	"context"
	"time"

	"kodan/internal/fault"
	"kodan/internal/station"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/events"
)

// journalMission writes the finished run into the context's mission event
// journal: captures and scene boundaries per satellite, contact windows
// per (station, satellite) pair, contention-resolved downlink grants, and
// the fault windows that shaped the run. It runs sequentially over the
// completed Result after the parallel phases, so the journal — like the
// result — is a pure function of the configuration, independent of worker
// count; a nil journal makes the whole call a no-op.
//
// When a telemetry probe is attached alongside, per-type event counts are
// published as sim.events.<type> counters.
func journalMission(ctx context.Context, cfg Config, res *Result, windows [][][]station.Window) {
	j := events.JournalFrom(ctx)
	if !j.Active() {
		return
	}
	runEnd := cfg.Epoch.Add(cfg.Span)
	counts := make(map[events.Type]int, len(events.Types))
	emit := func(e events.Event) {
		j.Emit(e)
		counts[e.Type]++
	}

	for sat, caps := range res.Captures {
		lastPath := -1
		for _, c := range caps {
			emit(events.Event{
				SimNs: c.Time.UnixNano(), Type: events.Capture,
				Sat: sat, Detail: c.Scene.String(),
			})
			if c.Scene.Path != lastPath {
				if lastPath >= 0 {
					emit(events.Event{
						SimNs: c.Time.UnixNano(), Type: events.SceneBoundary,
						Sat: sat, Detail: c.Scene.String(), Value: float64(c.Scene.Path),
					})
				}
				lastPath = c.Scene.Path
			}
		}
	}

	for si := range windows {
		name := cfg.Stations[si].Name
		for sat, ws := range windows[si] {
			for _, w := range ws {
				emit(events.Event{
					SimNs: w.Start.UnixNano(), Type: events.ContactStart,
					Sat: sat, Station: name,
				})
				emit(events.Event{
					SimNs: w.End.UnixNano(), Type: events.ContactEnd,
					Sat: sat, Station: name, Value: w.End.Sub(w.Start).Seconds(),
				})
			}
		}
	}

	for _, g := range res.Grants {
		emit(events.Event{
			SimNs: g.Start.UnixNano(), Type: events.DownlinkGrant,
			Sat: g.Sat, Station: cfg.Stations[g.Station].Name, Value: g.Dur.Seconds(),
		})
	}

	// Fault windows, clamped to the simulated interval: hand-written
	// schedules may spill past it, and the journal describes this run.
	for _, w := range fault.InjectorFrom(ctx).AllWindows() {
		start, end := w.Start, w.End
		if start.Before(cfg.Epoch) {
			start = cfg.Epoch
		}
		if end.After(runEnd) {
			end = runEnd
		}
		if !end.After(start) {
			continue
		}
		sat := -1
		switch w.Kind {
		case fault.ComputeThrottle, fault.SensorDropout, fault.SatelliteReset:
			sat = w.Sat
		}
		emit(events.Event{
			SimNs: start.UnixNano(), Type: events.FaultEnter,
			Sat: sat, Station: w.Station, Detail: string(w.Kind), Value: w.Severity,
		})
		emit(events.Event{
			SimNs: end.UnixNano(), Type: events.FaultExit,
			Sat: sat, Station: w.Station, Detail: string(w.Kind), Value: w.Severity,
		})
	}

	scope := telemetry.ProbeFrom(ctx).Metrics.Scope("sim.events")
	for _, t := range events.Types {
		if n := counts[t]; n > 0 {
			scope.Counter(string(t)).Add(int64(n))
		}
	}
}

// simNs converts seconds-from-epoch (the drain replay's clock) to the
// journal's Unix-nanosecond stamp.
func simNs(epoch time.Time, sec float64) int64 {
	return epoch.Add(time.Duration(sec * float64(time.Second))).UnixNano()
}
