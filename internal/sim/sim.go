// Package sim composes the substrate packages — orbital mechanics, the
// reference grid, the imaging payload, ground stations, and the radio link —
// into constellation-scale simulations. It is the reproduction's equivalent
// of the cote simulator the paper uses to quantify the downlink bottleneck
// (Figures 2-5): it produces, for an N-satellite constellation over a time
// span, the full capture schedule and the contention-resolved downlink
// budget of every satellite.
package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"kodan/internal/fault"
	"kodan/internal/link"
	"kodan/internal/orbit"
	"kodan/internal/parallel"
	"kodan/internal/sense"
	"kodan/internal/station"
	"kodan/internal/telemetry"
	"kodan/internal/wrs"
	"kodan/internal/xrand"
)

// Config describes one constellation simulation.
type Config struct {
	// Epoch is the simulation start time.
	Epoch time.Time
	// Span is the simulated duration.
	Span time.Duration
	// BaseOrbit is the orbit every satellite shares (phased copies).
	BaseOrbit orbit.Elements
	// Satellites is the constellation population.
	Satellites int
	// Planes spreads the constellation over this many orbital planes;
	// 1 (the default when zero) keeps the paper's single-plane model.
	Planes int
	// RandomPhases draws in-plane phases from a seeded stream instead of
	// spacing them evenly. Uncoordinated constellations (independently
	// operated satellites sharing an orbit regime) do not phase-lock to
	// the reference grid, so their daily coverage follows coupon-collector
	// statistics rather than perfect tiling — the regime of Figure 3.
	RandomPhases bool
	// PhaseSeed seeds the random phases (default 1).
	PhaseSeed uint64
	// Camera is the imaging payload carried by every satellite.
	Camera sense.Camera
	// Grid is the world reference grid.
	Grid wrs.Grid
	// Stations is the ground segment.
	Stations []station.Station
	// Radio is the downlink radio.
	Radio link.Radio
	// ScanStep is the contact-window search step (default 30 s).
	ScanStep time.Duration
	// Quantum is the station-time allocation granularity (default 10 s).
	Quantum time.Duration
	// Workers bounds the parallelism of the per-satellite capture
	// schedules and the per-(station, satellite) contact-window search:
	// 0 uses GOMAXPROCS, 1 forces the sequential path. Results are
	// bit-identical at every worker count — each satellite's schedule is
	// a pure function of its own elements, and results are written back
	// by satellite index.
	Workers int
}

// withDefaults fills unset tunables.
func (c Config) withDefaults() Config {
	if c.ScanStep == 0 {
		c.ScanStep = 30 * time.Second
	}
	if c.Quantum == 0 {
		c.Quantum = 10 * time.Second
	}
	if c.Planes == 0 {
		c.Planes = 1
	}
	return c
}

// validate rejects configurations that cannot be simulated.
func (c Config) validate() error {
	if c.Satellites <= 0 {
		return fmt.Errorf("sim: non-positive satellite count %d", c.Satellites)
	}
	if c.Span <= 0 {
		return fmt.Errorf("sim: non-positive span %v", c.Span)
	}
	if err := c.BaseOrbit.Validate(); err != nil {
		return err
	}
	if err := c.Camera.Validate(); err != nil {
		return err
	}
	return nil
}

// Landsat8Config returns the paper's reference configuration: the Landsat 8
// orbit, camera, grid, ground segment, and radio with n satellites evenly
// phased in one plane over the given span.
func Landsat8Config(epoch time.Time, span time.Duration, n int) Config {
	return Config{
		Epoch:      epoch,
		Span:       span,
		BaseOrbit:  orbit.Landsat8(epoch),
		Satellites: n,
		Camera:     sense.Landsat8MS(),
		Grid:       wrs.Landsat8Grid(),
		Stations:   station.LandsatSegment(),
		Radio:      link.Landsat8Radio(),
	}
}

// Result holds everything a simulation produced.
type Result struct {
	// Config echoes the (defaulted) configuration that ran.
	Config Config
	// Orbits lists the per-satellite element sets.
	Orbits []orbit.Elements
	// Captures lists every frame capture per satellite, in time order.
	Captures [][]sense.Capture
	// Grants is the contention-resolved station-time schedule.
	Grants []link.Grant
	// Served is the total granted downlink time per satellite.
	Served []time.Duration
	// FadedBits, set only when the run carried a fault injector with link
	// fades, is the per-satellite downlink capacity in bits with the fade
	// derates integrated over every grant. Nil on fault-free runs, so
	// DownlinkBits falls back to the nominal rate and stays byte-identical
	// to an uninjected run.
	FadedBits []float64
}

// Run executes the simulation with background context.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the simulation. The per-satellite propagation and
// contact-window loops run on cfg.Workers goroutines; ctx cancellation
// aborts the remaining satellites and returns ctx's error.
//
// When ctx carries a telemetry probe, the run emits a sim.run span (sim-
// time stamped with the simulated interval) with per-satellite capture
// spans, per-(station, satellite) contact-window spans, and a downlink-
// allocation span underneath, plus frame/window/grant counters in the
// "sim" scope. When ctx carries a mission event journal
// (events.WithJournal), the finished run is journaled in sim time —
// captures, scene boundaries, contacts, grants, fault windows — and
// per-type counts are published as sim.events.* counters. Neither probe
// influences the simulation: results remain byte-identical with tracing
// and journaling on or off and at every worker count.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "sim.run")
	defer span.End()
	span.Sim(cfg.Epoch, cfg.Epoch.Add(cfg.Span))
	span.Set("sats", fmt.Sprint(cfg.Satellites))
	scope := telemetry.ProbeFrom(ctx).Metrics.Scope("sim")
	logger := telemetry.LoggerFrom(ctx)
	logStart := time.Now()
	logger.Debug("sim started",
		"sats", cfg.Satellites, "planes", cfg.Planes,
		"spanHours", cfg.Span.Hours(), "workers", parallel.Workers(cfg.Workers))

	var sats []orbit.Elements
	switch {
	case cfg.RandomPhases:
		seed := cfg.PhaseSeed
		if seed == 0 {
			seed = 1
		}
		rng := xrand.New(seed)
		sats = make([]orbit.Elements, cfg.Satellites)
		for i := range sats {
			e := cfg.BaseOrbit
			e.MeanAnomalyRad = rng.Range(0, 2*math.Pi)
			sats[i] = e
		}
	case cfg.Planes > 1:
		sats = orbit.WalkerConstellation(cfg.BaseOrbit, cfg.Satellites, cfg.Planes)
	default:
		sats = orbit.Constellation(cfg.BaseOrbit, cfg.Satellites)
	}

	res := &Result{Config: cfg, Orbits: sats}
	workers := parallel.Workers(cfg.Workers)

	// Degraded-mode injection: when the context carries a fault injector
	// (nil = no-op, mirroring the telemetry probe), captures inside sensor
	// dropouts and satellite resets are lost, contact windows are cut by
	// station outages and resets, and link fades derate the downlink.
	// Every injected effect is a pure function of (schedule, satellite,
	// time), so faulted runs stay bit-identical at every worker count; a
	// nil injector leaves every slice untouched.
	inj := fault.InjectorFrom(ctx)
	faultScope := scope
	if !inj.Active() {
		faultScope = nil
	} else {
		var fsp *telemetry.Span
		ctx, fsp = telemetry.StartSpan(ctx, "fault.inject")
		defer fsp.End()
		fsp.Sim(cfg.Epoch, cfg.Epoch.Add(cfg.Span))
	}

	// Capture schedules: one independent propagation per satellite.
	framesCtr := scope.Counter("frames_captured")
	droppedCtr := faultScope.Counter("fault.captures_dropped")
	res.Captures = make([][]sense.Capture, len(sats))
	err := parallel.ForEach(ctx, workers, len(sats), func(ictx context.Context, i int) error {
		_, sp := telemetry.StartSpan(ictx, "sim.captures")
		defer sp.End()
		sp.Sim(cfg.Epoch, cfg.Epoch.Add(cfg.Span))
		sp.Set("sat", fmt.Sprint(i))
		im, err := sense.NewImager(cfg.Camera, sats[i], cfg.Grid)
		if err != nil {
			return err
		}
		caps := im.Captures(cfg.Epoch, cfg.Span)
		for j := range caps {
			caps[j].Sat = i
		}
		if inj.Active() {
			kept := caps[:0]
			for _, c := range caps {
				if inj.SensorDown(i, c.Time) {
					continue
				}
				kept = append(kept, c)
			}
			droppedCtr.Add(int64(len(caps) - len(kept)))
			caps = kept
		}
		res.Captures[i] = caps
		framesCtr.Add(int64(len(caps)))
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Contact windows: every (station, satellite) pair is an independent
	// scan, flattened into one sweep. The contention-resolving allocation
	// below stays sequential — grants depend on the whole window set.
	windows := make([][][]station.Window, len(cfg.Stations))
	for si := range cfg.Stations {
		windows[si] = make([][]station.Window, len(sats))
	}
	windowsCtr := scope.Counter("contact_windows")
	cutCtr := faultScope.Counter("fault.contact_cut_seconds")
	err = parallel.ForEach(ctx, workers, len(cfg.Stations)*len(sats), func(ictx context.Context, k int) error {
		si, j := k/len(sats), k%len(sats)
		_, sp := telemetry.StartSpan(ictx, "sim.contacts")
		defer sp.End()
		sp.Sim(cfg.Epoch, cfg.Epoch.Add(cfg.Span))
		sp.Set("station", cfg.Stations[si].Name)
		sp.Set("sat", fmt.Sprint(j))
		ws := station.ContactWindows(cfg.Stations[si], sats[j], cfg.Epoch, cfg.Span, cfg.ScanStep)
		if cuts := inj.StationCuts(cfg.Stations[si].Name, j); len(cuts) > 0 {
			sw := make([]station.Window, len(cuts))
			for c, cut := range cuts {
				sw[c] = station.Window{Start: cut.Start, End: cut.End}
			}
			before := station.TotalContact(ws)
			ws = station.SubtractWindows(ws, sw)
			cutCtr.Add(int64((before - station.TotalContact(ws)).Seconds()))
		}
		windows[si][j] = ws
		windowsCtr.Add(int64(len(ws)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	_, sp := telemetry.StartSpan(ctx, "sim.downlink")
	sp.Sim(cfg.Epoch, cfg.Epoch.Add(cfg.Span))
	res.Grants = link.Allocate(link.Problem{
		Start:   cfg.Epoch,
		Span:    cfg.Span,
		Quantum: cfg.Quantum,
		Windows: windows,
	})
	res.Served = link.PerSatServed(res.Grants, len(sats))
	if inj.HasFades() {
		res.FadedBits = link.DeratedBits(cfg.Radio, res.Grants, cfg.Quantum, len(sats),
			func(st int, t time.Time) float64 { return inj.LinkDerate(cfg.Stations[st].Name, t) })
		faded := 0.0
		for i, b := range res.FadedBits {
			faded += cfg.Radio.Bits(res.Served[i]) - b
		}
		faultScope.Counter("fault.faded_bits").Add(int64(faded))
	}
	sp.Set("grants", fmt.Sprint(len(res.Grants)))
	sp.End()
	scope.Counter("grants").Add(int64(len(res.Grants)))
	scope.Counter("runs").Inc()
	// Downlink utilization — downlinkable frames over observed frames —
	// is the contact-side number the ops dashboard tracks; recording it
	// reads the finished result and cannot influence it.
	observed := res.FramesObserved()
	if observed > 0 {
		scope.Histogram("downlink_utilization").Observe(res.FrameCapacity() / float64(observed))
	}
	// Mission event journal: written sequentially from the finished result
	// (and the contact windows the allocation consumed), so the journal is
	// byte-identical at every worker count and never influences the run.
	journalMission(ctx, cfg, res, windows)
	logger.Debug("sim finished",
		"frames", observed, "grants", len(res.Grants),
		"wallMs", time.Since(logStart).Milliseconds())
	return res, nil
}

// FramesObserved returns the total frames captured by the constellation.
func (r *Result) FramesObserved() int {
	total := 0
	for _, caps := range r.Captures {
		total += len(caps)
	}
	return total
}

// UniqueScenes returns the number of distinct grid scenes observed.
func (r *Result) UniqueScenes() int {
	cov := wrs.NewCoverage(r.Config.Grid)
	for _, caps := range r.Captures {
		for _, c := range caps {
			cov.Mark(c.Scene)
		}
	}
	return cov.Count()
}

// DownlinkBits returns the total downlink capacity per satellite in bits.
// On a fault-injected run with link fades it returns the derated capacity
// (FadedBits); otherwise the nominal rate over the granted time.
func (r *Result) DownlinkBits() []float64 {
	out := make([]float64, len(r.Served))
	if r.FadedBits != nil {
		copy(out, r.FadedBits)
		return out
	}
	for i, d := range r.Served {
		out[i] = r.Config.Radio.Bits(d)
	}
	return out
}

// FrameCapacity returns the total number of whole frames the constellation
// can downlink within its granted station time.
func (r *Result) FrameCapacity() float64 {
	var bits float64
	for _, b := range r.DownlinkBits() {
		bits += b
	}
	return bits / r.Config.Camera.FrameBits()
}

// FrameCapacityPerSat returns per-satellite downlinkable frame counts.
func (r *Result) FrameCapacityPerSat() []float64 {
	bits := r.DownlinkBits()
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = b / r.Config.Camera.FrameBits()
	}
	return out
}
