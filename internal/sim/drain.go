package sim

import (
	"context"
	"time"

	"kodan/internal/telemetry"
	"kodan/internal/telemetry/events"
)

// DrainStats summarizes a store-and-forward drain of deferred bits
// through the constellation's granted contact schedule (DrainDeferred).
// All bit totals are for the whole constellation over the simulated span.
type DrainStats struct {
	// DeliveredBits is the total backlog drained to the ground.
	DeliveredBits float64
	// DroppedBits is the backlog lost to on-board buffer overflow.
	DroppedBits float64
	// ResidualBits is the backlog still buffered when the span ends.
	ResidualBits float64
	// MeanLatency is the delivered-bit-weighted capture-to-delivery
	// latency; zero when nothing was delivered.
	MeanLatency time.Duration
	// MaxLatency is the largest capture-to-delivery latency of any fully
	// delivered frame's backlog.
	MaxLatency time.Duration
	// PeakBufferBits is the largest single-satellite buffer occupancy.
	PeakBufferBits float64
}

// DrainDeferred replays the capture schedule against the granted contact
// windows as a store-and-forward queue with background context. See
// DrainDeferredCtx.
func (r *Result) DrainDeferred(bitsPerFrame, bufferBits float64) DrainStats {
	return r.DrainDeferredCtx(context.Background(), bitsPerFrame, bufferBits)
}

// DrainDeferredCtx replays the capture schedule against the granted
// contact windows as a store-and-forward queue: every capture enqueues
// bitsPerFrame of deferred backlog on its satellite, and each satellite
// drains its queue FIFO at the radio's nominal rate whenever it holds a
// grant. bufferBits caps the per-satellite backlog (tail-drop: the
// overflowing part of an incoming frame is lost); zero or negative means
// unbounded. This is the accounting behind the hybrid execution planner's
// defer-to-ground disposition (internal/planner): deferred bits ride
// later contact windows, and their end-to-end latency is the queueing
// delay this replay measures.
//
// The drain is a pure function of the finished Result — deterministic,
// independent of worker count, and free of any effect on the simulation
// itself. Latency is charged at the instant a drained portion finishes
// transmitting. Link-fade derates are not replayed here; faulted runs
// already expose their capacity loss through DownlinkBits/FrameCapacity,
// which is what planning consumes.
//
// When ctx carries a mission event journal, the replay is journaled in
// sim time: one defer_enqueue per admitted frame, one defer_overflow per
// tail-drop, one defer_drain per fully delivered chunk (Value = latency
// seconds), and one buffer_highwater per satellite at the instant its
// peak occupancy was set. When ctx carries a telemetry probe, the replay
// publishes sim.drain.delivered_bits / dropped_bits / residual_bits
// counters, a sim.drain.peak_buffer_bits gauge, and a
// sim.drain.delivery_latency_seconds histogram. Neither changes the
// returned stats.
func (r *Result) DrainDeferredCtx(ctx context.Context, bitsPerFrame, bufferBits float64) DrainStats {
	var s DrainStats
	if bitsPerFrame <= 0 || r.Config.Radio.RateBps <= 0 {
		return s
	}
	j := events.JournalFrom(ctx)
	scope := telemetry.ProbeFrom(ctx).Metrics.Scope("sim.drain")
	latencyHist := scope.Histogram("delivery_latency_seconds")
	rate := r.Config.Radio.RateBps
	epoch := r.Config.Epoch
	spanEnd := r.Config.Span.Seconds()
	sec := func(t time.Time) float64 { return t.Sub(epoch).Seconds() }

	// Per-satellite grant lists, preserving the allocator's time order.
	satGrants := make([][][2]float64, len(r.Captures))
	for _, g := range r.Grants {
		if g.Sat < 0 || g.Sat >= len(satGrants) {
			continue
		}
		satGrants[g.Sat] = append(satGrants[g.Sat],
			[2]float64{sec(g.Start), sec(g.End())})
	}

	var latBitSeconds float64
	for sat, caps := range r.Captures {
		sat := sat
		type chunk struct{ t, bits float64 }
		var queue []chunk
		qi := 0
		backlog := 0.0
		ci := 0
		satPeak, satPeakT := 0.0, 0.0
		// admit enqueues every capture up to now, applying the buffer cap.
		admit := func(now float64) {
			for ci < len(caps) && sec(caps[ci].Time) <= now {
				t := sec(caps[ci].Time)
				incoming := bitsPerFrame
				if bufferBits > 0 && backlog+incoming > bufferBits {
					dropped := backlog + incoming - bufferBits
					s.DroppedBits += dropped
					incoming = bufferBits - backlog
					if j.Active() {
						j.Emit(events.Event{
							SimNs: simNs(epoch, t), Type: events.DeferOverflow,
							Sat: sat, Value: dropped,
						})
					}
				}
				if incoming > 0 {
					queue = append(queue, chunk{t: t, bits: incoming})
					backlog += incoming
					if backlog > s.PeakBufferBits {
						s.PeakBufferBits = backlog
					}
					if backlog > satPeak {
						satPeak = backlog
						satPeakT = t
					}
					if j.Active() {
						j.Emit(events.Event{
							SimNs: simNs(epoch, t), Type: events.DeferEnqueue,
							Sat: sat, Value: incoming,
						})
					}
				}
				ci++
			}
		}
		for _, g := range satGrants[sat] {
			t := g[0]
			admit(t)
			for t < g[1] {
				if qi >= len(queue) {
					// Idle: jump to the next capture inside the grant.
					if ci >= len(caps) || sec(caps[ci].Time) >= g[1] {
						break
					}
					t = sec(caps[ci].Time)
					admit(t)
					continue
				}
				// Drain until the next capture arrives or the grant ends.
				segEnd := g[1]
				if ci < len(caps) {
					if ct := sec(caps[ci].Time); ct > t && ct < segEnd {
						segEnd = ct
					}
				}
				for qi < len(queue) && t < segEnd {
					c := &queue[qi]
					d := (segEnd - t) * rate
					if d > c.bits {
						d = c.bits
					}
					t += d / rate
					c.bits -= d
					backlog -= d
					s.DeliveredBits += d
					lat := t - c.t
					latBitSeconds += d * lat
					if c.bits == 0 {
						qi++
						if l := time.Duration(lat * float64(time.Second)); l > s.MaxLatency {
							s.MaxLatency = l
						}
						latencyHist.Observe(lat)
						if j.Active() {
							j.Emit(events.Event{
								SimNs: simNs(epoch, t), Type: events.DeferDrain,
								Sat: sat, Value: lat,
							})
						}
					}
				}
				admit(t)
			}
		}
		// Captures after the last grant still occupy (and can overflow)
		// the buffer before the span ends.
		admit(spanEnd)
		s.ResidualBits += backlog
		if j.Active() && satPeak > 0 {
			j.Emit(events.Event{
				SimNs: simNs(epoch, satPeakT), Type: events.BufferHighWater,
				Sat: sat, Value: satPeak,
			})
		}
	}
	if s.DeliveredBits > 0 {
		s.MeanLatency = time.Duration(latBitSeconds / s.DeliveredBits * float64(time.Second))
	}
	scope.Counter("delivered_bits").Add(int64(s.DeliveredBits))
	scope.Counter("dropped_bits").Add(int64(s.DroppedBits))
	scope.Counter("residual_bits").Add(int64(s.ResidualBits))
	scope.Gauge("peak_buffer_bits").Set(int64(s.PeakBufferBits))
	return s
}
