package sim

import (
	"math"
	"testing"
	"time"

	"kodan/internal/link"
	"kodan/internal/sense"
)

// drainResult builds a hand-rolled Result for the store-and-forward drain:
// one or more satellites, explicit capture times (seconds from epoch), and
// explicit grants, with a 10 bit/s radio so the arithmetic stays readable.
func drainResult(capSecs [][]float64, grants []link.Grant) *Result {
	res := &Result{Config: Config{
		Epoch: epoch,
		Span:  time.Hour,
		Radio: link.Radio{RateBps: 10},
	}}
	res.Captures = make([][]sense.Capture, len(capSecs))
	for sat, secs := range capSecs {
		for _, s := range secs {
			res.Captures[sat] = append(res.Captures[sat], sense.Capture{
				Time: epoch.Add(time.Duration(s * float64(time.Second))),
				Sat:  sat,
			})
		}
	}
	res.Grants = grants
	return res
}

func TestDrainDeferredSingleChunk(t *testing.T) {
	// One 50-bit backlog captured at t=0, one grant [10s, 20s) at 10 b/s:
	// delivery finishes at t=15, so latency is exactly 15 s.
	res := drainResult([][]float64{{0}}, []link.Grant{
		{Sat: 0, Start: epoch.Add(10 * time.Second), Dur: 10 * time.Second},
	})
	s := res.DrainDeferred(50, 0)
	if s.DeliveredBits != 50 || s.DroppedBits != 0 || s.ResidualBits != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanLatency != 15*time.Second || s.MaxLatency != 15*time.Second {
		t.Fatalf("latency = %v / %v, want 15s", s.MeanLatency, s.MaxLatency)
	}
	if s.PeakBufferBits != 50 {
		t.Fatalf("peak buffer = %v", s.PeakBufferBits)
	}
}

func TestDrainDeferredWaitsForContact(t *testing.T) {
	// Backlog captured after the first grant must wait for the second:
	// deferred bits are accounted against later contact windows.
	res := drainResult([][]float64{{30}}, []link.Grant{
		{Sat: 0, Start: epoch.Add(10 * time.Second), Dur: 10 * time.Second},
		{Sat: 0, Start: epoch.Add(100 * time.Second), Dur: 10 * time.Second},
	})
	s := res.DrainDeferred(40, 0)
	if s.DeliveredBits != 40 {
		t.Fatalf("delivered = %v", s.DeliveredBits)
	}
	// Drain starts at t=100, 40 bits at 10 b/s finish at t=104: 74 s after
	// the t=30 capture.
	if s.MaxLatency != 74*time.Second {
		t.Fatalf("max latency = %v, want 74s", s.MaxLatency)
	}
}

func TestDrainDeferredMidGrantCapture(t *testing.T) {
	// A capture arriving while its satellite is being served drains in the
	// same grant, after the earlier backlog (FIFO).
	res := drainResult([][]float64{{0, 15}}, []link.Grant{
		{Sat: 0, Start: epoch.Add(10 * time.Second), Dur: 20 * time.Second},
	})
	s := res.DrainDeferred(60, 0)
	// Chunk 1 drains t=10..16, split by the t=15 arrival into a 50-bit
	// portion done at t=15 (latency 15 s) and a 10-bit portion done at
	// t=16 (latency 16 s); chunk 2 drains t=16..22 (latency 7 s). Mean =
	// (50*15 + 10*16 + 60*7) / 120 s.
	if s.DeliveredBits != 120 || s.ResidualBits != 0 {
		t.Fatalf("stats = %+v", s)
	}
	want := (50*15.0 + 10*16 + 60*7) / 120
	if math.Abs(s.MeanLatency.Seconds()-want) > 1e-6 {
		t.Fatalf("mean latency = %v, want %.6fs", s.MeanLatency, want)
	}
	if s.MaxLatency != 16*time.Second {
		t.Fatalf("max latency = %v, want 16s", s.MaxLatency)
	}
}

func TestDrainDeferredBufferOverflow(t *testing.T) {
	// A 70-bit buffer tail-drops the overflowing part of the second frame,
	// including frames captured after the last grant.
	res := drainResult([][]float64{{0, 1, 2000}}, []link.Grant{
		{Sat: 0, Start: epoch.Add(10 * time.Second), Dur: 100 * time.Second},
	})
	s := res.DrainDeferred(50, 70)
	// t=0: +50 (backlog 50). t=1: +20 admitted, 30 dropped (cap 70). The
	// grant drains all 70. t=2000 (after the grant): +50 buffered, held to
	// span end as residual.
	if s.DeliveredBits != 70 || s.DroppedBits != 30 || s.ResidualBits != 50 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PeakBufferBits != 70 {
		t.Fatalf("peak buffer = %v", s.PeakBufferBits)
	}
}

func TestDrainDeferredPerSatelliteQueues(t *testing.T) {
	// Queues are per satellite: sat 1's backlog never drains through sat
	// 0's grant.
	res := drainResult([][]float64{{0}, {0}}, []link.Grant{
		{Sat: 0, Start: epoch.Add(10 * time.Second), Dur: 10 * time.Second},
	})
	s := res.DrainDeferred(50, 0)
	if s.DeliveredBits != 50 || s.ResidualBits != 50 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDrainDeferredConservesBits(t *testing.T) {
	// On a real simulated day, delivered + dropped + residual must equal
	// the bits captured, and the drain must be deterministic.
	res, err := Run(Landsat8Config(epoch, 6*time.Hour, 2))
	if err != nil {
		t.Fatal(err)
	}
	const perFrame = 1e9
	s := res.DrainDeferred(perFrame, 64*perFrame)
	total := float64(res.FramesObserved()) * perFrame
	if got := s.DeliveredBits + s.DroppedBits + s.ResidualBits; math.Abs(got-total) > 1e-3*total {
		t.Fatalf("conservation: %v + %v + %v != %v", s.DeliveredBits, s.DroppedBits, s.ResidualBits, total)
	}
	if s.DeliveredBits <= 0 {
		t.Fatal("nothing delivered on a day with contacts")
	}
	if s.MeanLatency <= 0 || s.MaxLatency < s.MeanLatency {
		t.Fatalf("latency = %v / %v", s.MeanLatency, s.MaxLatency)
	}
	if s2 := res.DrainDeferred(perFrame, 64*perFrame); s2 != s {
		t.Fatalf("drain not deterministic: %+v vs %+v", s, s2)
	}
}

func TestDrainDeferredZeroInputs(t *testing.T) {
	res := drainResult([][]float64{{0}}, nil)
	if s := res.DrainDeferred(0, 0); s != (DrainStats{}) {
		t.Fatalf("zero bits-per-frame: %+v", s)
	}
}
