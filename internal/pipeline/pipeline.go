// Package pipeline models prior OEC work's answer to the computational
// bottleneck: distributing each frame's tiles across a formation of
// satellites connected by crosslinks, so that per-satellite compute time
// fits the frame deadline (Section 2.1.3, "Limitations of parallel,
// distributed computation"). Kodan's Figure 11 comparison uses the simple
// ceil(frame time / deadline) population; this package adds the crosslink
// costs that make real pipelines need even more satellites: tiles must be
// transferred to their processors, and transfer time eats into the
// deadline.
package pipeline

import (
	"fmt"
	"math"
	"time"
)

// Crosslink describes the inter-satellite link.
type Crosslink struct {
	// RateBps is the crosslink data rate.
	RateBps float64
	// SetupTime is the per-frame link establishment/pointing overhead.
	SetupTime time.Duration
}

// TypicalSBand returns a representative nanosatellite crosslink: 2 Mbit/s
// S-band with one second of per-frame coordination overhead.
func TypicalSBand() Crosslink {
	return Crosslink{RateBps: 2e6, SetupTime: time.Second}
}

// TypicalOptical returns a representative optical crosslink: 100 Mbit/s
// with five seconds of acquisition.
func TypicalOptical() Crosslink {
	return Crosslink{RateBps: 100e6, SetupTime: 5 * time.Second}
}

// Plan is a feasible pipeline configuration.
type Plan struct {
	// Satellites is the formation size.
	Satellites int
	// TilesPerSat is the (maximum) tiles each satellite processes.
	TilesPerSat int
	// ComputeTime is each satellite's per-frame compute time.
	ComputeTime time.Duration
	// TransferTime is the per-frame crosslink time on the capturing
	// satellite (it must ship every tile it does not process itself).
	TransferTime time.Duration
}

// FrameTime returns the pipeline's effective per-frame latency on the
// capturing satellite: shipping the other satellites' tiles plus its own
// compute (remote compute overlaps with local compute once data arrives,
// so the bound is transfer + local compute, assuming even splitting).
func (p Plan) FrameTime() time.Duration {
	return p.TransferTime + p.ComputeTime
}

// Size finds the smallest formation that meets the deadline for a frame of
// the given tile count and per-tile cost, including crosslink costs. tile
// bits are needed to cost the transfers. Returns an error when no
// formation up to maxSats works (crosslink-bound workloads may never meet
// the deadline: adding satellites increases shipped data).
func Size(tiles int, perTile time.Duration, tileBits float64, link Crosslink,
	deadline time.Duration, maxSats int) (Plan, error) {
	if tiles <= 0 || perTile <= 0 || deadline <= 0 {
		return Plan{}, fmt.Errorf("pipeline: non-positive workload")
	}
	if link.RateBps <= 0 {
		return Plan{}, fmt.Errorf("pipeline: non-positive crosslink rate")
	}
	for n := 1; n <= maxSats; n++ {
		per := int(math.Ceil(float64(tiles) / float64(n)))
		compute := time.Duration(per) * perTile
		var transfer time.Duration
		if n > 1 {
			shipped := float64(tiles-per) * tileBits
			transfer = link.SetupTime +
				time.Duration(shipped/link.RateBps*float64(time.Second))
		}
		plan := Plan{Satellites: n, TilesPerSat: per, ComputeTime: compute, TransferTime: transfer}
		if plan.FrameTime() <= deadline {
			return plan, nil
		}
		// Adding satellites only increases transfer; if transfer alone
		// already exceeds the deadline, growing n cannot help.
		if transfer > deadline {
			break
		}
	}
	return Plan{}, fmt.Errorf("pipeline: no formation of <= %d satellites meets %v (crosslink-bound)",
		maxSats, deadline)
}

// IdealSize returns prior work's crosslink-free population bound,
// ceil(frame time / deadline) — the number Figure 11 uses.
func IdealSize(tiles int, perTile, deadline time.Duration) int {
	if deadline <= 0 {
		panic("pipeline: non-positive deadline")
	}
	total := time.Duration(tiles) * perTile
	n := int(total / deadline)
	if total%deadline != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
