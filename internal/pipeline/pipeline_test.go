package pipeline

import (
	"testing"
	"time"
)

// App 7 on the Orin at 121 tiles: 2040 ms per tile against a ~24 s
// deadline — the deepest bottleneck in the evaluation.
const (
	app7Tiles   = 121
	app7PerTile = 2040 * time.Millisecond
	deadline    = 24 * time.Second
)

// tileBits for the multispectral payload at 121 tiles/frame: ~8 Gbit / 121.
const tileBits = 8e9 / 121

func TestIdealSizeMatchesFigure11(t *testing.T) {
	// ceil(121 x 2.04 s / 24 s) = 11 satellites (12 at the paper's 22 s).
	if got := IdealSize(app7Tiles, app7PerTile, deadline); got != 11 {
		t.Fatalf("ideal size = %d, want 11", got)
	}
	if got := IdealSize(app7Tiles, app7PerTile, 22*time.Second); got != 12 {
		t.Fatalf("ideal size at 22 s = %d, want 12", got)
	}
	// A workload that already fits needs one satellite.
	if got := IdealSize(9, 100*time.Millisecond, deadline); got != 1 {
		t.Fatalf("light workload size = %d", got)
	}
}

func TestOpticalCrosslinkNeedsMoreThanIdeal(t *testing.T) {
	// With a real 100 Mbit/s optical crosslink, shipping ~110 tiles of a
	// 8 Gbit frame takes ~73 s — far beyond the deadline: the pipeline is
	// crosslink-bound regardless of formation size.
	_, err := Size(app7Tiles, app7PerTile, tileBits, TypicalOptical(), deadline, 256)
	if err == nil {
		t.Fatal("optical pipeline unexpectedly feasible for full frames")
	}
}

func TestPipelineFeasibleForLightTiles(t *testing.T) {
	// Thumbnailed tiles (100x smaller) make the pipeline feasible; the
	// plan must meet the deadline and ship only what it does not process.
	plan, err := Size(app7Tiles, app7PerTile, tileBits/100, TypicalOptical(), deadline, 256)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FrameTime() > deadline {
		t.Fatalf("plan misses deadline: %v", plan.FrameTime())
	}
	if plan.Satellites < IdealSize(app7Tiles, app7PerTile, deadline) {
		t.Fatalf("crosslinked plan (%d sats) beat the crosslink-free bound (%d)",
			plan.Satellites, IdealSize(app7Tiles, app7PerTile, deadline))
	}
	if plan.TilesPerSat*plan.Satellites < app7Tiles {
		t.Fatal("plan does not cover all tiles")
	}
}

func TestSingleSatelliteNoTransfer(t *testing.T) {
	plan, err := Size(9, 100*time.Millisecond, tileBits, TypicalSBand(), deadline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Satellites != 1 {
		t.Fatalf("satellites = %d", plan.Satellites)
	}
	if plan.TransferTime != 0 {
		t.Fatalf("lone satellite shipped data: %v", plan.TransferTime)
	}
}

func TestSizeErrors(t *testing.T) {
	if _, err := Size(0, time.Second, 1, TypicalSBand(), deadline, 4); err == nil {
		t.Fatal("zero tiles accepted")
	}
	if _, err := Size(4, time.Second, 1, Crosslink{}, deadline, 4); err == nil {
		t.Fatal("zero-rate crosslink accepted")
	}
}

func TestIdealSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IdealSize(1, time.Second, 0)
}
