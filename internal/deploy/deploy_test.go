package deploy

import (
	"math"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/ctxengine"
	"kodan/internal/dataset"
	"kodan/internal/geomap"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/policy"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// fixture builds a small runtime over a 3x3 tiling with App 4 on the Orin.
type fixture struct {
	runtime *Runtime
	direct  *Direct
	frames  [][]*imagery.Tile
}

func buildFixture(t *testing.T) fixture {
	t.Helper()
	tl := tiling.Tiling{PerSide: 3}
	cfg := dataset.DefaultConfig(2023, tl)
	cfg.Frames = 80
	cfg.TileRes = 16
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, val := ds.Split(0.25, xrand.New(7))
	ctx, err := ctxengine.Build(train, ctxengine.DefaultConfig(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := app.DefaultTrainOptions()
	opts.Augment = false
	suite := app.BuildSuite(app.App(4), tl, train, val, ctx, opts, xrand.New(11))

	// Simple hand-built logic: downlink pure-high contexts, discard
	// pure-low, filter the rest.
	actions := make([]policy.Action, ctx.K)
	for c, s := range ctx.Stats {
		switch {
		case s.HighValueFrac > 0.8:
			actions[c] = policy.Downlink
		case s.HighValueFrac < 0.2:
			actions[c] = policy.Discard
		default:
			actions[c] = policy.Specialized
		}
	}
	rt := &Runtime{
		Engine:   ctx,
		Suite:    suite,
		Logic:    policy.Selection{Tiling: tl, Actions: actions},
		Target:   hw.Orin15W,
		TileBits: 1,
	}
	dir := &Direct{Model: suite.Generic, Target: hw.Orin15W, TileBits: 1}

	// Group validation tiles back into frames.
	byFrame := map[int][]*imagery.Tile{}
	for _, s := range val.Samples {
		byFrame[s.Frame] = append(byFrame[s.Frame], s.Tile)
	}
	var frames [][]*imagery.Tile
	for _, tiles := range byFrame {
		if len(tiles) == tl.Tiles() {
			frames = append(frames, tiles)
		}
	}
	return fixture{runtime: rt, direct: dir, frames: frames}
}

func TestRuntimeProcessFrame(t *testing.T) {
	f := buildFixture(t)
	out := f.runtime.ProcessFrame(f.frames[0], xrand.New(1))
	if len(out.Tiles) != 9 {
		t.Fatalf("tiles = %d", len(out.Tiles))
	}
	if out.ObservedBits != 9 {
		t.Fatalf("observed bits = %v", out.ObservedBits)
	}
	for _, to := range out.Tiles {
		if to.Chunk.ValueBits > to.Chunk.Bits+1e-12 {
			t.Fatal("chunk value exceeds bits")
		}
		if to.Context < 0 || to.Context >= f.runtime.Engine.Contexts() {
			t.Fatalf("context %d", to.Context)
		}
		switch to.Action {
		case policy.Discard:
			if to.Chunk.Bits != 0 {
				t.Fatal("discarded tile queued data")
			}
		case policy.Downlink:
			if to.Chunk.Bits != f.runtime.TileBits {
				t.Fatal("downlinked tile not whole")
			}
			if to.Confusion.Total() != 0 {
				t.Fatal("downlinked tile ran a model")
			}
		case policy.Specialized:
			if to.Confusion.Total() == 0 {
				t.Fatal("filtered tile has no confusion")
			}
		}
	}
}

func TestRuntimeElisionSavesTime(t *testing.T) {
	f := buildFixture(t)
	var kodanTime, directTime time.Duration
	for _, frame := range f.frames {
		kodanTime += f.runtime.ProcessFrame(frame, xrand.New(2)).Time
		directTime += f.direct.ProcessFrame(frame, xrand.New(2)).Time
	}
	if kodanTime >= directTime {
		t.Fatalf("Kodan (%v) not faster than direct (%v)", kodanTime, directTime)
	}
}

func TestRuntimeImprovesQueueDensity(t *testing.T) {
	f := buildFixture(t)
	density := func(outs []FrameOutcome) float64 {
		var bits, val float64
		for _, o := range outs {
			for _, c := range o.Chunks() {
				bits += c.Bits
				val += c.ValueBits
			}
		}
		if bits == 0 {
			return 0
		}
		return val / bits
	}
	var kodan, bent []FrameOutcome
	for _, frame := range f.frames {
		kodan = append(kodan, f.runtime.ProcessFrame(frame, xrand.New(3)))
		bent = append(bent, BentPipeFrame(frame, 1))
	}
	kd, bd := density(kodan), density(bent)
	if kd <= bd+0.2 {
		t.Fatalf("Kodan queue density %.3f not well above bent pipe %.3f", kd, bd)
	}
}

func TestBentPipeFrameAccounting(t *testing.T) {
	f := buildFixture(t)
	out := BentPipeFrame(f.frames[0], 2)
	if out.Time != 0 {
		t.Fatal("bent pipe spent time")
	}
	if out.ObservedBits != 18 {
		t.Fatalf("observed = %v", out.ObservedBits)
	}
	var bits float64
	for _, c := range out.Chunks() {
		bits += c.Bits
	}
	if bits != 18 {
		t.Fatalf("queued = %v, want all", bits)
	}
}

func TestDeploymentLedgerSaturated(t *testing.T) {
	f := buildFixture(t)
	var outs []FrameOutcome
	for _, frame := range f.frames {
		outs = append(outs, f.runtime.ProcessFrame(frame, xrand.New(4)))
	}
	d := Deployment{
		FramesObserved: 3600,
		CapacityBits:   0.21 * 3600 * 9, // 21% of observed bits
		FrameBits:      9,
		Deadline:       24 * time.Second,
		FillIdle:       true,
	}
	led := d.Ledger(outs)
	if led.Utilization() < 0.999 {
		t.Fatalf("link not saturated: %v", led.Utilization())
	}
	// A hand-built (unoptimized) logic at test scale: demand a clear win,
	// not the optimizer's ceiling.
	if dvd := led.DVD(); dvd < 0.7 {
		t.Fatalf("Kodan DVD = %.3f", dvd)
	}
	// Bent pipe lands at prevalence.
	var bents []FrameOutcome
	for _, frame := range f.frames {
		bents = append(bents, BentPipeFrame(frame, 1))
	}
	db := d
	db.FrameBits = 9
	bl := db.Ledger(bents)
	if math.Abs(bl.DVD()-bl.ObservedHighValueBits/bl.ObservedBits) > 0.01 {
		t.Fatalf("bent pipe DVD %.3f != prevalence %.3f", bl.DVD(), bl.ObservedHighValueBits/bl.ObservedBits)
	}
	if led.DVD() < bl.DVD()*1.5 {
		t.Fatalf("Kodan DVD %.3f not well above bent pipe %.3f", led.DVD(), bl.DVD())
	}
}

func TestDeploymentBottleneckDropsFrames(t *testing.T) {
	f := buildFixture(t)
	var outs []FrameOutcome
	for _, frame := range f.frames {
		outs = append(outs, f.direct.ProcessFrame(frame, xrand.New(5)))
	}
	// Direct deploy at 3x3 on the Orin: 9 x 1594 ms = 14.3 s < 24 s, so
	// use a tighter artificial deadline to force the bottleneck.
	d := Deployment{
		FramesObserved: 3600,
		CapacityBits:   0.21 * 3600 * 9,
		FrameBits:      9,
		Deadline:       2 * time.Second,
		FillIdle:       false,
	}
	led := d.Ledger(outs)
	// Only ~2/14.3 of frames processed and no filler: the link is starved.
	if led.Utilization() > 0.5 {
		t.Fatalf("utilization = %v under deep bottleneck", led.Utilization())
	}
	withFiller := d
	withFiller.FillIdle = true
	led2 := withFiller.Ledger(outs)
	if led2.Utilization() < 0.999 {
		t.Fatalf("filler did not saturate the link: %v", led2.Utilization())
	}
	// Filler is bent-pipe quality, so purity falls toward prevalence.
	if led2.Purity() >= led.Purity() {
		t.Fatalf("filler purity %v not below filtered purity %v", led2.Purity(), led.Purity())
	}
}

func TestDeploymentEmptyOutcomes(t *testing.T) {
	d := Deployment{FramesObserved: 100, CapacityBits: 50, FrameBits: 1, Deadline: time.Second}
	led := d.Ledger(nil)
	if led.DownlinkedBits != 0 || led.CapacityBits != 50 {
		t.Fatalf("empty ledger = %+v", led)
	}
}

// The position-based expert classifier must satisfy the runtime interface
// and drive the runtime end to end.
var _ Classifier = geomap.PositionClassifier{}

func TestRuntimeWithPositionClassifier(t *testing.T) {
	f := buildFixture(t)
	m, err := geomap.Build(imagery.NewWorld(2023), 360)
	if err != nil {
		t.Fatal(err)
	}
	rt := *f.runtime
	rt.Engine = geomap.PositionClassifier{Map: m}
	// Geography classes (5) may exceed the logic's context count; the
	// runtime falls back to filtering for unknown contexts, so just check
	// it runs and produces sane chunks.
	out := rt.ProcessFrame(f.frames[0], xrand.New(9))
	if len(out.Tiles) != 9 {
		t.Fatalf("tiles = %d", len(out.Tiles))
	}
	for _, to := range out.Tiles {
		if to.Chunk.ValueBits > to.Chunk.Bits+1e-12 {
			t.Fatal("value exceeds bits")
		}
	}
}
