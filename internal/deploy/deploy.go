// Package deploy implements the "after deployment to a satellite" half of
// Kodan (Figure 7, right): the runtime that splits each frame into tiles,
// classifies every tile with the context engine, consults the selection
// logic, and either discards the tile, queues it raw for downlink, or runs
// the chosen specialized model and queues the predicted high-value pixels.
// Bent-pipe and direct-deploy baseline runtimes share the same accounting.
//
// Execution time is modeled, not measured: each tile contributes the
// context-engine cost plus the Table 1 per-tile latency of any model run,
// matching how the paper attributes time (wall-clock inference on our
// stand-in classifiers says nothing about a Jetson Orin).
package deploy

import (
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/imagery"
	"kodan/internal/nn"
	"kodan/internal/policy"
	"kodan/internal/value"
	"kodan/internal/xrand"
)

// TileOutcome records the runtime's handling of one tile.
type TileOutcome struct {
	// Context is the engine-assigned context.
	Context int
	// Action is what the selection logic chose.
	Action policy.Action
	// Chunk is the data queued for downlink (zero for discards).
	Chunk value.Chunk
	// Time is the modeled processing time for this tile.
	Time time.Duration
	// Confusion is the filter's per-pixel confusion (zero unless a model
	// ran).
	Confusion nn.Confusion
}

// FrameOutcome aggregates one frame.
type FrameOutcome struct {
	Tiles []TileOutcome
	// Time is the modeled frame processing time.
	Time time.Duration
	// ObservedBits and ObservedValueBits account the raw frame content.
	ObservedBits      float64
	ObservedValueBits float64
}

// Chunks returns the frame's downlink queue entries.
func (f FrameOutcome) Chunks() []value.Chunk {
	var out []value.Chunk
	for _, t := range f.Tiles {
		if t.Chunk.Bits > 0 {
			out = append(out, t.Chunk)
		}
	}
	return out
}

// Classifier assigns a context to each tile at runtime. The trained
// context engine (ctxengine.Set) is the standard implementation; the
// position-based expert classifier (geomap.PositionClassifier) is the
// paper's map-projection alternative.
type Classifier interface {
	// Classify returns the tile's context in [0, Contexts()).
	Classify(t *imagery.Tile) int
	// Contexts returns the number of contexts the classifier emits.
	Contexts() int
}

// Runtime is the Kodan on-orbit runtime for one application deployment.
type Runtime struct {
	// Engine classifies tiles into contexts.
	Engine Classifier
	// Suite holds the generic and specialized models at the selected
	// tiling.
	Suite *app.Suite
	// Logic is the generated selection logic.
	Logic policy.Selection
	// Target is the hardware platform (for modeled time).
	Target hw.Target
	// TileBits is the downlink size of one raw tile.
	TileBits float64
}

// ProcessFrame runs the runtime over one frame's tiles. rng supplies the
// model-noise draws; pass a deterministic stream.
func (r *Runtime) ProcessFrame(tiles []*imagery.Tile, rng *xrand.Rand) FrameOutcome {
	out := FrameOutcome{Tiles: make([]TileOutcome, 0, len(tiles))}
	engineMs := r.Target.ContextEngineMsPerTile()
	modelMs := r.Suite.Arch.PerTileMs[r.Target]
	var mask []bool
	for _, t := range tiles {
		to := TileOutcome{Time: time.Duration(engineMs * float64(time.Millisecond))}
		to.Context = r.Engine.Classify(t)
		if to.Context < len(r.Logic.Actions) {
			to.Action = r.Logic.Actions[to.Context]
		} else {
			// Unknown context (engine drift): be conservative, filter.
			to.Action = policy.Specialized
		}
		switch to.Action {
		case policy.Discard:
			// Nothing queued.
		case policy.Downlink:
			to.Chunk = value.Chunk{
				Bits:      r.TileBits,
				ValueBits: r.TileBits * t.HighValueFrac(),
			}
		case policy.Specialized, policy.Merged, policy.Generic:
			m := r.Suite.Generic
			switch {
			case to.Action == policy.Specialized && to.Context < len(r.Suite.Special):
				m = r.Suite.Special[to.Context]
			case to.Action == policy.Merged && to.Context < len(r.Suite.Merged):
				m = r.Suite.Merged[to.Context]
			}
			if cap(mask) < t.Pixels() {
				mask = make([]bool, t.Pixels())
			}
			mask = mask[:t.Pixels()]
			conf := m.PredictTileInto(t, rng, mask)
			kept := 0
			keptValue := 0
			for p, keep := range mask {
				if keep {
					kept++
					if t.Truth[p] {
						keptValue++
					}
				}
			}
			n := float64(t.Pixels())
			to.Chunk = value.Chunk{
				Bits:      r.TileBits * float64(kept) / n,
				ValueBits: r.TileBits * float64(keptValue) / n,
			}
			to.Confusion = conf
			to.Time += time.Duration(modelMs * float64(time.Millisecond))
		}
		out.ObservedBits += r.TileBits
		out.ObservedValueBits += r.TileBits * t.HighValueFrac()
		out.Time += to.Time
		out.Tiles = append(out.Tiles, to)
	}
	return out
}

// Direct is the direct-deployment baseline: the reference model on every
// tile, no context engine.
type Direct struct {
	Model    *app.Model
	Target   hw.Target
	TileBits float64
}

// ProcessFrame filters every tile with the reference model.
func (d *Direct) ProcessFrame(tiles []*imagery.Tile, rng *xrand.Rand) FrameOutcome {
	out := FrameOutcome{Tiles: make([]TileOutcome, 0, len(tiles))}
	modelMs := d.Model.Arch.PerTileMs[d.Target]
	var mask []bool
	for _, t := range tiles {
		if cap(mask) < t.Pixels() {
			mask = make([]bool, t.Pixels())
		}
		mask = mask[:t.Pixels()]
		conf := d.Model.PredictTileInto(t, rng, mask)
		kept, keptValue := 0, 0
		for p, keep := range mask {
			if keep {
				kept++
				if t.Truth[p] {
					keptValue++
				}
			}
		}
		n := float64(t.Pixels())
		to := TileOutcome{
			Context: -1,
			Action:  policy.Generic,
			Chunk: value.Chunk{
				Bits:      d.TileBits * float64(kept) / n,
				ValueBits: d.TileBits * float64(keptValue) / n,
			},
			Time:      time.Duration(modelMs * float64(time.Millisecond)),
			Confusion: conf,
		}
		out.ObservedBits += d.TileBits
		out.ObservedValueBits += d.TileBits * t.HighValueFrac()
		out.Time += to.Time
		out.Tiles = append(out.Tiles, to)
	}
	return out
}

// BentPipeFrame queues the whole frame raw with zero processing time.
func BentPipeFrame(tiles []*imagery.Tile, tileBits float64) FrameOutcome {
	out := FrameOutcome{Tiles: make([]TileOutcome, 0, len(tiles))}
	for _, t := range tiles {
		to := TileOutcome{
			Context: -1,
			Action:  policy.Downlink,
			Chunk: value.Chunk{
				Bits:      tileBits,
				ValueBits: tileBits * t.HighValueFrac(),
			},
		}
		out.ObservedBits += tileBits
		out.ObservedValueBits += to.Chunk.ValueBits
		out.Tiles = append(out.Tiles, to)
	}
	return out
}

// Deployment scales sampled frame outcomes to a full mission ledger under
// the real-time constraint: a satellite whose average frame time exceeds
// the deadline processes only deadline/frameTime of captures (the rest
// arrive while it is busy), and with FillIdle those unprocessed frames pad
// the downlink queue raw.
type Deployment struct {
	// FramesObserved is the number of frames captured over the mission.
	FramesObserved float64
	// CapacityBits is the mission's total downlink capacity.
	CapacityBits float64
	// FrameBits is the raw size of one frame.
	FrameBits float64
	// Deadline is the frame deadline.
	Deadline time.Duration
	// FillIdle pads the queue with raw unprocessed frames.
	FillIdle bool
}

// Ledger extrapolates sampled outcomes to the mission scale.
func (d Deployment) Ledger(outcomes []FrameOutcome) value.Ledger {
	if len(outcomes) == 0 {
		return value.Ledger{CapacityBits: d.CapacityBits}
	}
	var chunkBits, chunkValue float64
	var obsBits, obsValue float64
	var total time.Duration
	for _, o := range outcomes {
		for _, c := range o.Chunks() {
			chunkBits += c.Bits
			chunkValue += c.ValueBits
		}
		obsBits += o.ObservedBits
		obsValue += o.ObservedValueBits
		total += o.Time
	}
	n := float64(len(outcomes))
	avgTime := time.Duration(float64(total) / n)
	p := 1.0
	if avgTime > d.Deadline && avgTime > 0 {
		p = float64(d.Deadline) / float64(avgTime)
	}
	prevalence := 0.0
	if obsBits > 0 {
		prevalence = obsValue / obsBits
	}

	// Per-observed-frame mix, scaled to the mission.
	scale := d.FramesObserved / n
	queueBits := chunkBits * p * scale
	queueValue := chunkValue * p * scale
	if d.FillIdle && p < 1 {
		rawBits := d.FramesObserved * (1 - p) * d.FrameBits
		queueBits += rawBits
		queueValue += rawBits * prevalence
	}
	sent, sentValue := value.Drain([]value.Chunk{{Bits: queueBits, ValueBits: queueValue}}, d.CapacityBits)
	return value.Ledger{
		CapacityBits:          d.CapacityBits,
		DownlinkedBits:        sent,
		HighValueBits:         sentValue,
		ObservedBits:          d.FramesObserved * d.FrameBits,
		ObservedHighValueBits: d.FramesObserved * d.FrameBits * prevalence,
	}
}
