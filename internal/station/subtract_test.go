package station

import (
	"testing"
	"time"
)

// wn builds a window [startMin, endMin) in minutes past a fixed origin.
func wn(startMin, endMin int) Window {
	origin := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	return Window{Start: origin.Add(time.Duration(startMin) * time.Minute), End: origin.Add(time.Duration(endMin) * time.Minute)}
}

func TestSubtractWindowsNoCutsReturnsSameSlice(t *testing.T) {
	ws := []Window{wn(0, 10), wn(20, 30)}
	got := SubtractWindows(ws, nil)
	if len(got) != 2 || &got[0] != &ws[0] {
		t.Fatal("empty cuts should return the input slice unchanged")
	}
}

func TestSubtractWindowsCases(t *testing.T) {
	cases := []struct {
		name string
		ws   []Window
		cuts []Window
		want []Window
	}{
		{"no overlap", []Window{wn(0, 10)}, []Window{wn(20, 30)}, []Window{wn(0, 10)}},
		{"cut swallows window", []Window{wn(5, 10)}, []Window{wn(0, 20)}, nil},
		{"cut splits window", []Window{wn(0, 30)}, []Window{wn(10, 20)}, []Window{wn(0, 10), wn(20, 30)}},
		{"cut trims head", []Window{wn(10, 30)}, []Window{wn(0, 20)}, []Window{wn(20, 30)}},
		{"cut trims tail", []Window{wn(0, 20)}, []Window{wn(10, 30)}, []Window{wn(0, 10)}},
		{"touching cut leaves window", []Window{wn(0, 10)}, []Window{wn(10, 20)}, []Window{wn(0, 10)}},
		{"two cuts two splits", []Window{wn(0, 60)}, []Window{wn(10, 20), wn(40, 50)},
			[]Window{wn(0, 10), wn(20, 40), wn(50, 60)}},
		{"cut spans two windows", []Window{wn(0, 20), wn(30, 50)}, []Window{wn(10, 40)},
			[]Window{wn(0, 10), wn(40, 50)}},
	}
	for _, tc := range cases {
		got := SubtractWindows(tc.ws, tc.cuts)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %d windows, want %d (%v)", tc.name, len(got), len(tc.want), got)
			continue
		}
		for i := range got {
			if !got[i].Start.Equal(tc.want[i].Start) || !got[i].End.Equal(tc.want[i].End) {
				t.Errorf("%s: window %d = [%v, %v), want [%v, %v)", tc.name, i,
					got[i].Start, got[i].End, tc.want[i].Start, tc.want[i].End)
			}
		}
	}
}

func TestSubtractWindowsConservesTime(t *testing.T) {
	ws := []Window{wn(0, 30), wn(40, 70), wn(80, 90)}
	cuts := []Window{wn(10, 50), wn(85, 100)}
	remaining := TotalContact(SubtractWindows(ws, cuts))
	// Removed: [10,30) + [40,50) from the first two, [85,90) from the last.
	want := TotalContact(ws) - 35*time.Minute
	if remaining != want {
		t.Fatalf("remaining contact %v, want %v", remaining, want)
	}
}
