package station

import (
	"testing"
	"time"

	"kodan/internal/orbit"
)

func TestZeroElevationMaskWidensWindows(t *testing.T) {
	// Dropping the elevation mask to the geometric horizon can only add
	// contact time: every pass starts earlier and ends later, and passes
	// too low for the 5-degree mask may appear outright.
	masked := LandsatSegment()[2]
	horizon := masked
	horizon.MinElevationRad = 0
	e := orbit.Landsat8(epoch)

	mw := ContactWindows(masked, e, epoch, 12*time.Hour, 30*time.Second)
	hw := ContactWindows(horizon, e, epoch, 12*time.Hour, 30*time.Second)
	if len(hw) < len(mw) {
		t.Fatalf("horizon mask found %d passes, 5-degree mask %d", len(hw), len(mw))
	}
	if TotalContact(hw) <= TotalContact(mw) {
		t.Fatalf("horizon contact %v not longer than masked %v", TotalContact(hw), TotalContact(mw))
	}
	// Every masked pass lies inside some horizon pass (edges refined to
	// 1 s, so allow that tolerance).
	const tol = 2 * time.Second
	for i, w := range mw {
		inside := false
		for _, hwin := range hw {
			if !w.Start.Before(hwin.Start.Add(-tol)) && !w.End.After(hwin.End.Add(tol)) {
				inside = true
				break
			}
		}
		if !inside {
			t.Errorf("masked pass %d (%v..%v) not contained in any horizon pass", i, w.Start, w.End)
		}
	}
}

func TestContactWindowsClippedToSpan(t *testing.T) {
	// Windows never extend past the scan interval [start, start+span),
	// even when the satellite is still visible at the end of the scan.
	s := LandsatSegment()[2]
	e := orbit.Landsat8(epoch)
	span := 6 * time.Hour
	end := epoch.Add(span)
	for i, w := range ContactWindows(s, e, epoch, span, 30*time.Second) {
		if w.Start.Before(epoch) {
			t.Errorf("window %d starts %v before scan start", i, w.Start)
		}
		if w.End.After(end) {
			t.Errorf("window %d ends %v after scan end", i, w.End)
		}
		if !w.Start.Before(w.End) {
			t.Errorf("window %d empty or inverted: %v..%v", i, w.Start, w.End)
		}
	}
}

func TestContactWindowStartsMidPass(t *testing.T) {
	// A scan beginning mid-pass reports a window starting exactly at the
	// scan start — the leading edge is the observation boundary, not an
	// extrapolated rise time.
	s := LandsatSegment()[2]
	e := orbit.Landsat8(epoch)
	windows := ContactWindows(s, e, epoch, 12*time.Hour, 30*time.Second)
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	mid := windows[0].Start.Add(windows[0].Duration() / 2)
	rescanned := ContactWindows(s, e, mid, time.Hour, 30*time.Second)
	if len(rescanned) == 0 {
		t.Fatal("no windows when starting mid-pass")
	}
	if !rescanned[0].Start.Equal(mid) {
		t.Fatalf("mid-pass scan window starts %v, want scan start %v", rescanned[0].Start, mid)
	}
}

func TestZeroDurationWindow(t *testing.T) {
	w := Window{Start: epoch, End: epoch}
	if w.Duration() != 0 {
		t.Fatalf("duration %v", w.Duration())
	}
	if w.Contains(epoch) {
		t.Fatal("empty window contains its start")
	}
}
