// Package station models the ground segment: ground-station locations,
// line-of-sight visibility to satellites above an elevation mask, and
// contact-window search. The default segment reproduces the Landsat 8
// ground network the paper models with cote (Sioux Falls, Gilmore Creek,
// and Svalbard).
package station

import (
	"fmt"
	"time"

	"kodan/internal/geo"
	"kodan/internal/orbit"
)

// Station is a ground station.
type Station struct {
	// Name identifies the station in ledgers and logs.
	Name string
	// Location is the station's geodetic position.
	Location geo.Geodetic
	// MinElevationRad is the elevation mask: the satellite is visible only
	// when its elevation exceeds this angle.
	MinElevationRad float64
}

// String implements fmt.Stringer.
func (s Station) String() string {
	return fmt.Sprintf("%s (%s)", s.Name, s.Location)
}

// ecef returns the station position in Earth-fixed coordinates.
func (s Station) ecef() geo.Vec3 { return geo.GeodeticToECEF(s.Location) }

// LandsatSegment returns the three-station ground network used by the
// Landsat program, with a 5-degree elevation mask.
func LandsatSegment() []Station {
	mask := geo.Deg2Rad(5)
	return []Station{
		{Name: "Sioux Falls", Location: geo.Geodetic{LatDeg: 43.736, LonDeg: -96.622}, MinElevationRad: mask},
		{Name: "Gilmore Creek", Location: geo.Geodetic{LatDeg: 64.977, LonDeg: -147.510}, MinElevationRad: mask},
		{Name: "Svalbard", Location: geo.Geodetic{LatDeg: 78.230, LonDeg: 15.389}, MinElevationRad: mask},
	}
}

// Visible reports whether the satellite with elements e is above the
// station's elevation mask at time t.
func (s Station) Visible(e orbit.Elements, t time.Time) bool {
	return s.Elevation(e, t) >= s.MinElevationRad
}

// Elevation returns the satellite's elevation above the station's horizon
// in radians at time t.
func (s Station) Elevation(e orbit.Elements, t time.Time) float64 {
	sat := geo.ECIToECEF(orbit.Propagate(e, t).Position, t)
	return geo.ElevationAngle(s.ecef(), sat)
}

// Window is a contiguous visibility interval.
type Window struct {
	Start time.Time
	End   time.Time
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// Contains reports whether t lies in [Start, End).
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// ContactWindows returns the satellite's visibility windows at station s
// over [start, start+span), found by coarse scanning at step and refined to
// one-second precision by bisection. step must be shorter than the shortest
// pass to avoid missed contacts; 30 s is safe for LEO with a 5-degree mask.
func ContactWindows(s Station, e orbit.Elements, start time.Time, span, step time.Duration) []Window {
	if step <= 0 {
		panic("station: non-positive scan step")
	}
	end := start.Add(span)
	var windows []Window
	up := s.Visible(e, start)
	var winStart time.Time
	if up {
		winStart = start
	}
	prev := start
	for t := start.Add(step); !t.After(end); t = t.Add(step) {
		now := s.Visible(e, t)
		if now != up {
			edge := refineEdge(s, e, prev, t, up)
			if now {
				winStart = edge
			} else {
				windows = append(windows, Window{Start: winStart, End: edge})
			}
			up = now
		}
		prev = t
	}
	if up {
		windows = append(windows, Window{Start: winStart, End: end})
	}
	return windows
}

// refineEdge bisects to one-second precision the transition between lo
// (visibility == wasUp) and hi (visibility == !wasUp).
func refineEdge(s Station, e orbit.Elements, lo, hi time.Time, wasUp bool) time.Time {
	for hi.Sub(lo) > time.Second {
		mid := lo.Add(hi.Sub(lo) / 2)
		if s.Visible(e, mid) == wasUp {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// SubtractWindows removes the cut intervals from the visibility windows,
// returning the remaining (possibly split) windows in time order. Windows
// and cuts need not be sorted; empty cuts return ws unchanged (the same
// slice, so the fault-free path allocates nothing).
func SubtractWindows(ws, cuts []Window) []Window {
	if len(cuts) == 0 || len(ws) == 0 {
		return ws
	}
	out := make([]Window, 0, len(ws))
	for _, w := range ws {
		pieces := []Window{w}
		for _, cut := range cuts {
			var next []Window
			for _, p := range pieces {
				// No overlap: the piece survives whole.
				if !cut.Start.Before(p.End) || !cut.End.After(p.Start) {
					next = append(next, p)
					continue
				}
				if cut.Start.After(p.Start) {
					next = append(next, Window{Start: p.Start, End: cut.Start})
				}
				if cut.End.Before(p.End) {
					next = append(next, Window{Start: cut.End, End: p.End})
				}
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	return out
}

// TotalContact returns the summed duration of all windows.
func TotalContact(ws []Window) time.Duration {
	var total time.Duration
	for _, w := range ws {
		total += w.Duration()
	}
	return total
}
