package station

import (
	"testing"
	"time"

	"kodan/internal/geo"
	"kodan/internal/orbit"
)

var epoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)

func TestLandsatSegment(t *testing.T) {
	seg := LandsatSegment()
	if len(seg) != 3 {
		t.Fatalf("got %d stations", len(seg))
	}
	for _, s := range seg {
		if s.Name == "" {
			t.Error("unnamed station")
		}
		if s.MinElevationRad <= 0 {
			t.Errorf("%s: no elevation mask", s.Name)
		}
	}
	// Svalbard is the high-latitude station.
	if seg[2].Location.LatDeg < 75 {
		t.Errorf("Svalbard latitude %f", seg[2].Location.LatDeg)
	}
}

func TestVisibilityMatchesElevation(t *testing.T) {
	s := LandsatSegment()[0]
	e := orbit.Landsat8(epoch)
	for dt := time.Duration(0); dt < 3*time.Hour; dt += 7 * time.Minute {
		tt := epoch.Add(dt)
		el := s.Elevation(e, tt)
		if got, want := s.Visible(e, tt), el >= s.MinElevationRad; got != want {
			t.Fatalf("visible=%v but elevation=%v deg", got, geo.Rad2Deg(el))
		}
	}
}

func TestPolarStationSeesEveryOrbit(t *testing.T) {
	// A near-polar satellite passes near the poles every revolution, so the
	// Svalbard station (78N) should see it on most revolutions.
	sval := LandsatSegment()[2]
	e := orbit.Landsat8(epoch)
	windows := ContactWindows(sval, e, epoch, 24*time.Hour, 30*time.Second)
	// ~14.6 orbits per day; expect at least 10 passes at a polar station.
	if len(windows) < 10 {
		t.Fatalf("Svalbard passes/day = %d, want >= 10", len(windows))
	}
}

func TestMidLatitudeStationSeesFewerPasses(t *testing.T) {
	seg := LandsatSegment()
	e := orbit.Landsat8(epoch)
	sioux := len(ContactWindows(seg[0], e, epoch, 24*time.Hour, 30*time.Second))
	sval := len(ContactWindows(seg[2], e, epoch, 24*time.Hour, 30*time.Second))
	if sioux >= sval {
		t.Fatalf("Sioux Falls %d passes >= Svalbard %d", sioux, sval)
	}
	if sioux < 2 {
		t.Fatalf("Sioux Falls passes/day = %d, want >= 2", sioux)
	}
}

func TestContactWindowShape(t *testing.T) {
	s := LandsatSegment()[2]
	e := orbit.Landsat8(epoch)
	windows := ContactWindows(s, e, epoch, 12*time.Hour, 30*time.Second)
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	for i, w := range windows {
		// LEO passes last minutes, not hours: 1 to 16 minutes.
		if d := w.Duration(); d < 30*time.Second || d > 16*time.Minute {
			t.Errorf("window %d duration %v", i, d)
		}
		// Windows are ordered and disjoint.
		if i > 0 && !windows[i-1].End.Before(w.Start) {
			t.Errorf("windows %d and %d overlap", i-1, i)
		}
		// Midpoint of each window must be visible.
		mid := w.Start.Add(w.Duration() / 2)
		if !s.Visible(e, mid) {
			t.Errorf("window %d midpoint not visible", i)
		}
	}
}

func TestContactWindowEdgesPrecise(t *testing.T) {
	s := LandsatSegment()[2]
	e := orbit.Landsat8(epoch)
	windows := ContactWindows(s, e, epoch, 6*time.Hour, 30*time.Second)
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	w := windows[0]
	if w.Start.Equal(epoch) {
		t.Skip("window started before scan; no leading edge to check")
	}
	// Just before the start the satellite is below the mask; just after,
	// above (1 s refinement tolerance, checked at 2 s margin).
	if s.Visible(e, w.Start.Add(-2*time.Second)) {
		t.Error("visible 2 s before window start")
	}
	if !s.Visible(e, w.Start.Add(2*time.Second)) {
		t.Error("not visible 2 s after window start")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: epoch, End: epoch.Add(time.Minute)}
	if !w.Contains(epoch) {
		t.Error("start not contained")
	}
	if w.Contains(epoch.Add(time.Minute)) {
		t.Error("end contained")
	}
	if !w.Contains(epoch.Add(30 * time.Second)) {
		t.Error("midpoint not contained")
	}
	if w.Duration() != time.Minute {
		t.Errorf("duration %v", w.Duration())
	}
}

func TestTotalContact(t *testing.T) {
	ws := []Window{
		{Start: epoch, End: epoch.Add(2 * time.Minute)},
		{Start: epoch.Add(time.Hour), End: epoch.Add(time.Hour + 3*time.Minute)},
	}
	if got := TotalContact(ws); got != 5*time.Minute {
		t.Fatalf("total = %v", got)
	}
	if TotalContact(nil) != 0 {
		t.Fatal("empty total nonzero")
	}
}

func TestDailyContactBudget(t *testing.T) {
	// The whole Landsat segment should give a single satellite tens of
	// minutes of contact per day — the regime where downlinking a few
	// hundred of ~3600 daily frames saturates (Figure 4).
	e := orbit.Landsat8(epoch)
	var total time.Duration
	for _, s := range LandsatSegment() {
		total += TotalContact(ContactWindows(s, e, epoch, 24*time.Hour, 30*time.Second))
	}
	if total < 30*time.Minute || total > 6*time.Hour {
		t.Fatalf("daily contact = %v, want tens of minutes to a few hours", total)
	}
}
