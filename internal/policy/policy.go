// Package policy implements Kodan's selection logic (Section 3.4): the
// per-deployment policy that fixes the frame tile count and, for every
// context, one of four actions — discard, downlink without processing,
// run the context-specialized model, or run the generic reference model.
//
// The one-time transformation step sweeps tilings and per-context actions
// against an analytic model of the deployment — frame deadline, measured
// per-tile execution times, measured per-context confusion rates, and the
// simulated downlink capacity — and picks the combination maximizing the
// data value density of the saturated downlink. The same analytic model
// also evaluates the bent-pipe and direct-deploy baselines, so every DVD
// number in the reproduction comes from one accounting.
package policy

import (
	"fmt"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/nn"
	"kodan/internal/tiling"
	"kodan/internal/value"
)

// Action is a per-context runtime decision.
type Action int

// Actions, in the order the paper describes them (Figure 7's selection
// logic: Discard / specialized model / Downlink).
const (
	// Discard drops the tile without processing (mostly low-value context).
	Discard Action = iota
	// Downlink transmits the tile unprocessed (mostly high-value context).
	Downlink
	// Specialized runs the single-context specialized model and transmits
	// the predicted high-value pixels.
	Specialized
	// Merged runs the multi-context (dominant-geography group) specialized
	// model — Section 3.3's "specialized across multiple contexts" — and
	// transmits the predicted high-value pixels.
	Merged
	// Generic runs the reference model and transmits predicted high-value
	// pixels.
	Generic
	numActions
	// Deferred buffers the tile raw on board and downlinks it against
	// later contact windows for ground processing — the hybrid planner's
	// defer-to-ground disposition (internal/planner). It is declared after
	// numActions so the selection-logic optimizer, which sweeps the
	// paper's on-board action set, never considers it; only planner
	// output carries it.
	Deferred
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Discard:
		return "discard"
	case Downlink:
		return "downlink"
	case Specialized:
		return "specialized"
	case Merged:
		return "merged"
	case Generic:
		return "generic"
	case Deferred:
		return "deferred"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// ContextProfile is the transformation step's measured knowledge of one
// context at one tiling.
type ContextProfile struct {
	// TileFrac is the fraction of tiles the context engine assigns here.
	TileFrac float64
	// HighValueFrac is the pixel-weighted high-value fraction.
	HighValueFrac float64
	// Generic, Special, and Merged are the measured validation confusions
	// of the reference, single-context, and multi-context models on this
	// context.
	Generic nn.Confusion
	Special nn.Confusion
	Merged  nn.Confusion
}

// TilingProfile aggregates the per-context profiles of one tiling.
type TilingProfile struct {
	Tiling   tiling.Tiling
	Contexts []ContextProfile
}

// Prevalence returns the tile-weighted high-value fraction.
func (tp TilingProfile) Prevalence() float64 {
	var p float64
	for _, c := range tp.Contexts {
		p += c.TileFrac * c.HighValueFrac
	}
	return p
}

// Env describes the deployment environment the logic is generated for.
type Env struct {
	// App is the application (supplies per-tile latencies).
	App app.Architecture
	// Target is the hardware platform.
	Target hw.Target
	// Deadline is the frame deadline from the orbit and grid.
	Deadline time.Duration
	// CapacityFrac is the downlink capacity per observed frame as a
	// fraction of the frame size (e.g. 0.21 for a lone Landsat satellite).
	CapacityFrac float64
	// FillIdle downlinks raw unprocessed frames when the processed output
	// does not saturate the link (maximizes link utility).
	FillIdle bool
	// UseEngine runs the context engine on every tile (Kodan); baselines
	// that never consult contexts leave it false.
	UseEngine bool
	// MaxDutyCycle optionally caps the compute duty cycle (frame time over
	// deadline) the optimizer may select — the power-aware variant for
	// energy-limited buses where "claiming idle compute time" (Section
	// 3.4) would blow the electrical budget. Zero means uncapped.
	MaxDutyCycle float64
}

// dutyCycle returns the compute duty a frame time implies.
func (e Env) dutyCycle(ft time.Duration) float64 {
	if e.Deadline <= 0 {
		return 0
	}
	d := float64(ft) / float64(e.Deadline)
	if d > 1 {
		d = 1
	}
	return d
}

// admissible reports whether a frame time respects the duty-cycle cap.
func (e Env) admissible(ft time.Duration) bool {
	return e.MaxDutyCycle <= 0 || e.dutyCycle(ft) <= e.MaxDutyCycle+1e-12
}

// Selection is a generated selection logic.
type Selection struct {
	Tiling  tiling.Tiling
	Actions []Action // indexed by context
}

// ElidedFrac returns the tile fraction that skips model execution.
func (s Selection) ElidedFrac(tp TilingProfile) float64 {
	var f float64
	for c, a := range s.Actions {
		if a == Discard || a == Downlink || a == Deferred {
			f += tp.Contexts[c].TileFrac
		}
	}
	return f
}

// DeferredFrac returns the tile fraction the selection routes to the
// deferred/ground disposition.
func (s Selection) DeferredFrac(tp TilingProfile) float64 {
	var f float64
	for c, a := range s.Actions {
		if a == Deferred {
			f += tp.Contexts[c].TileFrac
		}
	}
	return f
}

// Estimate is the analytic evaluation of a selection in an environment.
type Estimate struct {
	// FrameTime is the expected processing time per frame.
	FrameTime time.Duration
	// ProcessedFrac is the fraction of captured frames processed before
	// the next capture (1 when the deadline is met on average).
	ProcessedFrac float64
	// Ledger is the per-observed-frame accounting in frame-size units.
	Ledger value.Ledger
	// DVD is the data value density of the saturated downlink.
	DVD float64
}

// FrameTime returns the expected per-frame processing time of a selection.
func FrameTime(s Selection, tp TilingProfile, env Env) time.Duration {
	tiles := float64(s.Tiling.Tiles())
	var ms float64
	if env.UseEngine {
		ms += tiles * env.Target.ContextEngineMsPerTile()
	}
	for c, a := range s.Actions {
		if a == Specialized || a == Merged || a == Generic {
			ms += tiles * tp.Contexts[c].TileFrac * env.App.PerTileMs[env.Target]
		}
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Evaluate computes the expected deployment accounting of a selection.
// All bit quantities are fractions of one frame's bits, averaged over
// observed frames; scaling to a real deployment multiplies by frame size
// and frame count, which cancels out of every ratio.
func Evaluate(s Selection, tp TilingProfile, env Env) Estimate {
	return EvaluateAtTime(s, tp, env, FrameTime(s, tp, env))
}

// EvaluateAtTime is Evaluate with the frame processing time overridden —
// used by the Figure 10 sweep, which varies execution time as a free
// parameter to map DVD against compute performance.
func EvaluateAtTime(s Selection, tp TilingProfile, env Env, ft time.Duration) Estimate {
	if len(s.Actions) != len(tp.Contexts) {
		panic("policy: action/context count mismatch")
	}
	p := 1.0
	if ft > env.Deadline && ft > 0 {
		p = float64(env.Deadline) / float64(ft)
	}

	// Build the per-frame chunk mix from processed frames.
	var chunks []value.Chunk
	for c, a := range s.Actions {
		cp := tp.Contexts[c]
		switch a {
		case Discard:
		case Deferred:
			// Deferred tiles leave the frame's immediate downlink budget
			// untouched: their bits ride later contact windows and are
			// accounted by the planner (internal/planner) and the sim's
			// store-and-forward drain, not by the in-frame ledger.
		case Downlink:
			chunks = append(chunks, value.Chunk{
				Bits:      p * cp.TileFrac,
				ValueBits: p * cp.TileFrac * cp.HighValueFrac,
			})
		case Specialized, Merged, Generic:
			conf := cp.Special
			switch a {
			case Merged:
				conf = cp.Merged
			case Generic:
				conf = cp.Generic
			}
			total := float64(conf.Total())
			if total == 0 {
				continue
			}
			kept := conf.PositiveRate()
			tp2 := float64(conf.TP) / total
			chunks = append(chunks, value.Chunk{
				Bits:      p * cp.TileFrac * kept,
				ValueBits: p * cp.TileFrac * tp2,
			})
		}
	}
	// Unprocessed frames are raw; with FillIdle they pad the queue.
	prevalence := tp.Prevalence()
	if env.FillIdle && p < 1 {
		chunks = append(chunks, value.Chunk{
			Bits:      1 - p,
			ValueBits: (1 - p) * prevalence,
		})
	}

	bits, val := value.Drain(chunks, env.CapacityFrac)
	led := value.Ledger{
		CapacityBits:          env.CapacityFrac,
		DownlinkedBits:        bits,
		HighValueBits:         val,
		ObservedBits:          1,
		ObservedHighValueBits: prevalence,
	}
	return Estimate{FrameTime: ft, ProcessedFrac: p, Ledger: led, DVD: led.DVD()}
}

// EvaluateBentPipe returns the bent-pipe baseline: raw frames downlinked
// indiscriminately until the link saturates.
func EvaluateBentPipe(prevalence float64, env Env) Estimate {
	led := value.Ledger{
		CapacityBits:          env.CapacityFrac,
		DownlinkedBits:        env.CapacityFrac,
		HighValueBits:         env.CapacityFrac * prevalence,
		ObservedBits:          1,
		ObservedHighValueBits: prevalence,
	}
	if env.CapacityFrac > 1 {
		// More capacity than data: everything goes down.
		led.DownlinkedBits = 1
		led.HighValueBits = prevalence
	}
	return Estimate{ProcessedFrac: 1, Ledger: led, DVD: led.DVD()}
}

// DirectSelection returns the direct-deployment policy of prior OEC work:
// every tile through the reference model at the given tiling, no context
// engine.
func DirectSelection(tp TilingProfile) Selection {
	actions := make([]Action, len(tp.Contexts))
	for i := range actions {
		actions[i] = Generic
	}
	return Selection{Tiling: tp.Tiling, Actions: actions}
}

// Optimize generates the selection logic: it sweeps every candidate tiling
// and per-context action assignment and returns the selection maximizing
// DVD (ties broken toward higher recovery, then shorter frame time). For
// context counts where the exhaustive sweep would be large (> maxExhaustive
// combinations) it falls back to deterministic hill climbing from the
// all-specialized assignment.
func Optimize(profiles []TilingProfile, env Env) (Selection, Estimate) {
	if len(profiles) == 0 {
		panic("policy: no tiling profiles")
	}
	env.UseEngine = true
	var best Selection
	var bestEst Estimate
	first := true
	for _, tp := range profiles {
		sel, est := optimizeActions(tp, env)
		if first || better(est, bestEst) {
			best, bestEst = sel, est
			first = false
		}
	}
	return best, bestEst
}

// optActions is the paper's selection-logic action set (Figure 7):
// discard, downlink, or one of the specialized models (single-context or
// multi-context). The generic model remains available to Evaluate for the
// direct-deploy baseline but is dominated by the specialists at equal
// cost, so the optimizer skips it.
var optActions = []Action{Discard, Downlink, Specialized, Merged}

// maxExhaustive bounds the exhaustive action sweep (4^8).
const maxExhaustive = 65536

func optimizeActions(tp TilingProfile, env Env) (Selection, Estimate) {
	k := len(tp.Contexts)
	combos := 1
	exhaustive := true
	for i := 0; i < k; i++ {
		combos *= len(optActions)
		if combos > maxExhaustive {
			exhaustive = false
			break
		}
	}
	if exhaustive {
		return exhaustiveSearch(tp, env, combos)
	}
	return hillClimb(tp, env)
}

func exhaustiveSearch(tp TilingProfile, env Env, combos int) (Selection, Estimate) {
	k := len(tp.Contexts)
	ev := newEvaluator(tp, env)
	sel := Selection{Tiling: tp.Tiling, Actions: make([]Action, k)}
	best := Selection{Tiling: tp.Tiling, Actions: make([]Action, k)}
	var bestEst Estimate
	first := true
	// Odometer enumeration, digit 0 fastest — the same order as decoding
	// each code by repeated division, without the per-candidate div/mod.
	digits := make([]int, k)
	for i := range sel.Actions {
		sel.Actions[i] = optActions[0]
	}
	for code := 0; code < combos; code++ {
		if code > 0 {
			for i := 0; ; i++ {
				digits[i]++
				if digits[i] < len(optActions) {
					sel.Actions[i] = optActions[digits[i]]
					break
				}
				digits[i] = 0
				sel.Actions[i] = optActions[0]
			}
		}
		est := ev.evaluate(sel.Actions)
		if !env.admissible(est.FrameTime) && !isAllElide(sel) {
			continue
		}
		if first || better(est, bestEst) {
			copy(best.Actions, sel.Actions)
			bestEst = est
			first = false
		}
	}
	if first {
		// No admissible combination (cap tighter than even full elision):
		// fall back to all-discard, which has no model cost.
		for i := range best.Actions {
			best.Actions[i] = Discard
		}
		bestEst = ev.evaluate(best.Actions)
	}
	return best, bestEst
}

// isAllElide reports whether a selection runs no models at all (always
// admissible as a fallback: its duty is the context engine only).
func isAllElide(s Selection) bool {
	for _, a := range s.Actions {
		if a == Specialized || a == Merged || a == Generic {
			return false
		}
	}
	return true
}

func hillClimb(tp TilingProfile, env Env) (Selection, Estimate) {
	k := len(tp.Contexts)
	ev := newEvaluator(tp, env)
	sel := Selection{Tiling: tp.Tiling, Actions: make([]Action, k)}
	for i := range sel.Actions {
		sel.Actions[i] = Specialized
	}
	est := ev.evaluate(sel.Actions)
	for improved := true; improved; {
		improved = false
		for i := 0; i < k; i++ {
			orig := sel.Actions[i]
			for a := Action(0); a < numActions; a++ {
				if a == orig {
					continue
				}
				sel.Actions[i] = a
				cand := ev.evaluate(sel.Actions)
				if (env.admissible(cand.FrameTime) || isAllElide(sel)) && better(cand, est) {
					est = cand
					improved = true
					orig = a
				} else {
					sel.Actions[i] = orig
				}
			}
		}
	}
	return sel, est
}

// better orders estimates: DVD first, then recovery, then frame time.
func better(a, b Estimate) bool {
	const eps = 1e-12
	if a.DVD > b.DVD+eps {
		return true
	}
	if a.DVD < b.DVD-eps {
		return false
	}
	ar, br := a.Ledger.Recovery(), b.Ledger.Recovery()
	if ar > br+eps {
		return true
	}
	if ar < br-eps {
		return false
	}
	return a.FrameTime < b.FrameTime
}

// evaluator caches every (tiling, environment)-dependent term of Evaluate
// so the optimizer's inner loop — millions of probes per selection-logic
// generation — runs allocation-free on precomputed per-context constants.
// evaluate must stay bit-identical to EvaluateAtTime: the golden figure
// outputs depend on it (see TestEvaluatorMatchesEvaluate), so every
// expression below keeps the exact shape and accumulation order of the
// reference path.
type evaluator struct {
	env        Env
	prevalence float64
	// baseMs is the context-engine term of the frame time (zero when the
	// environment does not run the engine).
	baseMs float64
	// tf[c] is context c's TileFrac.
	tf []float64
	// Flat per-(context, action) tables at index c*numActions+int(a),
	// turning the probe loop into branch-free table lookups:
	//
	//   msAdd    frame-time addend (tiles*TileFrac*PerTileMs for model
	//            actions, exactly as FrameTime associates it; 0 otherwise —
	//            adding literal zero to a non-negative sum is exact)
	//   counted  whether the action queues a chunk (Downlink, or a model
	//            action whose confusion has nonzero total)
	//   kept     chunk bits per processed tile fraction: 1 for Downlink
	//            (x*1 is exact), the confusion's PositiveRate for models
	//   frac     chunk value per processed tile fraction: HighValueFrac
	//            for Downlink, TP/Total for models
	msAdd      []float64
	counted    []bool
	kept, frac []float64
}

// actionStride is the per-context width of the evaluator's flat tables:
// every Action value, including Deferred (declared past numActions), must
// index without bounds surprises. Deferred's table entries stay zero —
// it adds no frame time and queues no chunk, matching Evaluate.
const actionStride = int(Deferred) + 1

// newEvaluator precomputes the per-context terms for one profile in one
// environment.
func newEvaluator(tp TilingProfile, env Env) *evaluator {
	k := len(tp.Contexts)
	nA := actionStride
	e := &evaluator{
		env:        env,
		prevalence: tp.Prevalence(),
		tf:         make([]float64, k),
		msAdd:      make([]float64, k*nA),
		counted:    make([]bool, k*nA),
		kept:       make([]float64, k*nA),
		frac:       make([]float64, k*nA),
	}
	tiles := float64(tp.Tiling.Tiles())
	if env.UseEngine {
		e.baseMs = tiles * env.Target.ContextEngineMsPerTile()
	}
	for c, cp := range tp.Contexts {
		e.tf[c] = cp.TileFrac
		modelMs := tiles * cp.TileFrac * env.App.PerTileMs[env.Target]
		di := c*nA + int(Downlink)
		e.counted[di] = true
		e.kept[di] = 1
		e.frac[di] = cp.HighValueFrac
		for _, a := range [...]Action{Specialized, Merged, Generic} {
			conf := cp.Special
			switch a {
			case Merged:
				conf = cp.Merged
			case Generic:
				conf = cp.Generic
			}
			idx := c*nA + int(a)
			e.msAdd[idx] = modelMs
			total := float64(conf.Total())
			if total == 0 {
				// Dead model: costs frame time but queues no chunk.
				continue
			}
			e.counted[idx] = true
			e.kept[idx] = conf.PositiveRate()
			e.frac[idx] = float64(conf.TP) / total
		}
	}
	return e
}

// frameTime is FrameTime over the cached terms.
func (e *evaluator) frameTime(actions []Action) time.Duration {
	ms := e.baseMs
	nA := actionStride
	for c, a := range actions {
		ms += e.msAdd[c*nA+int(a)]
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// evaluate is EvaluateAtTime(sel, tp, env, frameTime(sel)) without the
// chunk-slice allocation: the drain (value.Drain) is inlined as a running
// sum because a frame's chunk mix is consumed exactly once, in order.
func (e *evaluator) evaluate(actions []Action) Estimate {
	ft := e.frameTime(actions)
	p := 1.0
	if ft > e.env.Deadline && ft > 0 {
		p = float64(e.env.Deadline) / float64(ft)
	}
	var totalBits, totalVal float64
	chunks := 0
	nA := actionStride
	for c, a := range actions {
		idx := c*nA + int(a)
		if !e.counted[idx] {
			continue
		}
		pf := p * e.tf[c]
		totalBits += pf * e.kept[idx]
		totalVal += pf * e.frac[idx]
		chunks++
	}
	if e.env.FillIdle && p < 1 {
		totalBits += 1 - p
		totalVal += (1 - p) * e.prevalence
		chunks++
	}
	bits, val := totalBits, totalVal
	switch {
	case e.env.CapacityFrac <= 0 || chunks == 0:
		// Mirrors value.Drain's empty cases: no capacity, or no chunks at
		// all (all-discard with no filler) downlinks nothing.
		bits, val = 0, 0
	case totalBits > e.env.CapacityFrac:
		f := e.env.CapacityFrac / totalBits
		bits, val = e.env.CapacityFrac, totalVal*f
	}
	led := value.Ledger{
		CapacityBits:          e.env.CapacityFrac,
		DownlinkedBits:        bits,
		HighValueBits:         val,
		ObservedBits:          1,
		ObservedHighValueBits: e.prevalence,
	}
	return Estimate{FrameTime: ft, ProcessedFrac: p, Ledger: led, DVD: led.DVD()}
}

// SatellitesForCoverage returns the constellation population needed for
// continuous ground-track processing coverage when one satellite needs
// frameTime per frame against the deadline — prior OEC work's
// satellite-parallel pipelining (Figure 11).
func SatellitesForCoverage(frameTime, deadline time.Duration) int {
	if deadline <= 0 {
		panic("policy: non-positive deadline")
	}
	if frameTime <= deadline {
		return 1
	}
	n := int(frameTime / deadline)
	if frameTime%deadline != 0 {
		n++
	}
	return n
}
