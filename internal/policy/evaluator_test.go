package policy

import (
	"math"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/nn"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// randomProfile builds a profile with k contexts, mixing healthy confusions
// with zero-total ones (a context no validation tile ever landed in).
func randomProfile(k int, rng *xrand.Rand) TilingProfile {
	tp := TilingProfile{Tiling: tiling.Tiling{PerSide: 2 + rng.Intn(10)}}
	for c := 0; c < k; c++ {
		cp := ContextProfile{
			TileFrac:      rng.Float64(),
			HighValueFrac: rng.Float64(),
		}
		fill := func() nn.Confusion {
			if rng.Intn(5) == 0 {
				return nn.Confusion{}
			}
			return nn.Confusion{
				TP: rng.Intn(50), FP: rng.Intn(50),
				TN: rng.Intn(50), FN: rng.Intn(50),
			}
		}
		cp.Generic, cp.Special, cp.Merged = fill(), fill(), fill()
		tp.Contexts = append(tp.Contexts, cp)
	}
	return tp
}

// TestEvaluatorMatchesEvaluate pins the optimizer's cached evaluator to
// the reference Evaluate path bit for bit across random profiles,
// environments, and action vectors. The committed figure goldens depend on
// this equivalence: if it ever breaks, the fix is in the evaluator, not in
// regenerating goldens.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	rng := xrand.New(7)
	actions := []Action{Discard, Downlink, Specialized, Merged, Generic, Deferred}
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(8)
		tp := randomProfile(k, rng)
		env := Env{
			App:          app.App(1 + rng.Intn(7)),
			Target:       hw.Targets()[rng.Intn(3)],
			Deadline:     time.Duration(rng.Intn(10_000_000_000)),
			CapacityFrac: rng.Float64() * 1.5,
			FillIdle:     rng.Intn(2) == 0,
			UseEngine:    rng.Intn(2) == 0,
		}
		if rng.Intn(8) == 0 {
			env.CapacityFrac = 0
		}
		ev := newEvaluator(tp, env)
		sel := Selection{Tiling: tp.Tiling, Actions: make([]Action, k)}
		for probe := 0; probe < 40; probe++ {
			for i := range sel.Actions {
				sel.Actions[i] = actions[rng.Intn(len(actions))]
			}
			want := Evaluate(sel, tp, env)
			got := ev.evaluate(sel.Actions)
			if !estimatesIdentical(want, got) {
				t.Fatalf("trial %d probe %d: evaluator diverged\nactions %v env %+v\nwant %+v\ngot  %+v",
					trial, probe, sel.Actions, env, want, got)
			}
		}
	}
}

// estimatesIdentical compares every field by exact float bits.
func estimatesIdentical(a, b Estimate) bool {
	same := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.FrameTime == b.FrameTime &&
		same(a.ProcessedFrac, b.ProcessedFrac) &&
		same(a.DVD, b.DVD) &&
		same(a.Ledger.CapacityBits, b.Ledger.CapacityBits) &&
		same(a.Ledger.DownlinkedBits, b.Ledger.DownlinkedBits) &&
		same(a.Ledger.HighValueBits, b.Ledger.HighValueBits) &&
		same(a.Ledger.ObservedBits, b.Ledger.ObservedBits) &&
		same(a.Ledger.ObservedHighValueBits, b.Ledger.ObservedHighValueBits)
}

// TestEvaluatorAllocFree asserts an optimizer probe allocates nothing, so
// the exhaustive sweep's cost stays linear in probes, not in garbage.
func TestEvaluatorAllocFree(t *testing.T) {
	rng := xrand.New(11)
	tp := randomProfile(6, rng)
	env := Env{
		App: app.App(4), Target: hw.Orin15W,
		Deadline: time.Second, CapacityFrac: 0.2, FillIdle: true, UseEngine: true,
	}
	ev := newEvaluator(tp, env)
	sel := make([]Action, 6)
	for i := range sel {
		sel[i] = Specialized
	}
	avg := testing.AllocsPerRun(100, func() {
		_ = ev.evaluate(sel)
	})
	if avg != 0 {
		t.Fatalf("evaluator probe allocates %.1f objects per run, want 0", avg)
	}
}
