package policy

import (
	"math"
	"testing"
	"time"

	"kodan/internal/app"
	"kodan/internal/hw"
	"kodan/internal/nn"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// conf builds a confusion matrix from rates over a nominal population.
func conf(tpr, fpr, baseRate float64) nn.Confusion {
	const n = 10000
	pos := int(baseRate * n)
	neg := n - pos
	tp := int(tpr * float64(pos))
	fp := int(fpr * float64(neg))
	return nn.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

// testProfile builds a 3-context profile: a near-pure high-value context,
// a near-pure low-value context, and a mixed context.
func testProfile(perSide int) TilingProfile {
	return TilingProfile{
		Tiling: tiling.Tiling{PerSide: perSide},
		Contexts: []ContextProfile{
			{TileFrac: 0.30, HighValueFrac: 0.95, Generic: conf(0.90, 0.30, 0.95), Special: conf(0.95, 0.20, 0.95)},
			{TileFrac: 0.35, HighValueFrac: 0.05, Generic: conf(0.80, 0.15, 0.05), Special: conf(0.90, 0.05, 0.05)},
			{TileFrac: 0.35, HighValueFrac: 0.50, Generic: conf(0.85, 0.25, 0.50), Special: conf(0.92, 0.10, 0.50)},
		},
	}
}

func testEnv() Env {
	return Env{
		App:          app.App(4),
		Target:       hw.Orin15W,
		Deadline:     24 * time.Second,
		CapacityFrac: 0.21,
		FillIdle:     true,
		UseEngine:    true,
	}
}

func TestPrevalence(t *testing.T) {
	tp := testProfile(3)
	want := 0.30*0.95 + 0.35*0.05 + 0.35*0.50
	if got := tp.Prevalence(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("prevalence = %v, want %v", got, want)
	}
}

func TestFrameTimeArithmetic(t *testing.T) {
	tp := testProfile(3)
	env := testEnv()
	sel := Selection{Tiling: tp.Tiling, Actions: []Action{Downlink, Discard, Specialized}}
	got := FrameTime(sel, tp, env)
	// 9 tiles: engine on all, model on the 35% in context 2.
	wantMs := 9*env.Target.ContextEngineMsPerTile() + 9*0.35*env.App.PerTileMs[env.Target]
	want := time.Duration(wantMs * float64(time.Millisecond))
	if got != want {
		t.Fatalf("frame time = %v, want %v", got, want)
	}
}

func TestElidedFrac(t *testing.T) {
	tp := testProfile(3)
	sel := Selection{Tiling: tp.Tiling, Actions: []Action{Downlink, Discard, Specialized}}
	if got := sel.ElidedFrac(tp); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("elided = %v", got)
	}
}

func TestEvaluateMeetsDeadlineAt9Tiles(t *testing.T) {
	tp := testProfile(3)
	env := testEnv()
	sel := Selection{Tiling: tp.Tiling, Actions: []Action{Downlink, Discard, Specialized}}
	est := Evaluate(sel, tp, env)
	if est.ProcessedFrac != 1 {
		t.Fatalf("processed frac = %v with frame time %v", est.ProcessedFrac, est.FrameTime)
	}
	if est.DVD < 0.85 {
		t.Fatalf("Kodan-style DVD = %v, want high", est.DVD)
	}
}

func TestEvaluateBottleneckReducesDVD(t *testing.T) {
	// All-specialized at 121 tiles on the Orin blows the deadline badly;
	// DVD must fall toward the bent pipe.
	tp := testProfile(11)
	env := testEnv()
	sel := Selection{Tiling: tp.Tiling, Actions: []Action{Specialized, Specialized, Specialized}}
	est := Evaluate(sel, tp, env)
	if est.ProcessedFrac >= 0.2 {
		t.Fatalf("processed frac = %v, expected deep bottleneck", est.ProcessedFrac)
	}
	bent := EvaluateBentPipe(tp.Prevalence(), env)
	if est.DVD > bent.DVD*1.5 {
		t.Fatalf("bottlenecked DVD %v too far above bent pipe %v", est.DVD, bent.DVD)
	}
}

func TestBentPipeDVDEqualsPrevalence(t *testing.T) {
	tp := testProfile(3)
	env := testEnv()
	est := EvaluateBentPipe(tp.Prevalence(), env)
	if math.Abs(est.DVD-tp.Prevalence()) > 1e-9 {
		t.Fatalf("bent pipe DVD = %v, want prevalence %v", est.DVD, tp.Prevalence())
	}
	// Over-capacity link: DVD limited by available data.
	env.CapacityFrac = 2
	est = EvaluateBentPipe(0.5, env)
	if math.Abs(est.DVD-0.25) > 1e-9 {
		t.Fatalf("over-capacity bent pipe DVD = %v", est.DVD)
	}
}

func TestOptimizeBeatsBaselines(t *testing.T) {
	profiles := []TilingProfile{testProfile(3), testProfile(4), testProfile(6), testProfile(11)}
	env := testEnv()
	sel, est := Optimize(profiles, env)
	if len(sel.Actions) != 3 {
		t.Fatalf("selection shape %v", sel)
	}
	bent := EvaluateBentPipe(profiles[0].Prevalence(), env)
	if est.DVD <= bent.DVD {
		t.Fatalf("Kodan DVD %v not above bent pipe %v", est.DVD, bent.DVD)
	}
	directEnv := env
	directEnv.UseEngine = false
	direct := Evaluate(DirectSelection(profiles[3]), profiles[3], directEnv)
	if est.DVD <= direct.DVD {
		t.Fatalf("Kodan DVD %v not above direct deploy %v", est.DVD, direct.DVD)
	}
}

func TestOptimizeElidesUnderComputeBottleneck(t *testing.T) {
	// Section 3.4, "Meeting the soft deadline": when any model execution
	// blows the deadline (App 7 at 121 tiles on the Orin), the optimizer
	// must elide — downlink the near-pure high-value context rather than
	// filter it — and that choice must keep DVD high.
	profiles := []TilingProfile{testProfile(11)}
	env := testEnv()
	env.App = app.App(7)
	sel, est := Optimize(profiles, env)
	if sel.Actions[0] != Downlink {
		t.Errorf("high-value context action = %v, want downlink", sel.Actions[0])
	}
	if sel.Actions[1] == Downlink {
		t.Errorf("low-value context action = %v", sel.Actions[1])
	}
	if est.ProcessedFrac < 0.999 {
		t.Errorf("selection misses deadline: processed %v", est.ProcessedFrac)
	}
	if est.DVD < 0.9 {
		t.Errorf("DVD = %v", est.DVD)
	}
}

func TestOptimizeUnconstrainedPrefersPrecision(t *testing.T) {
	// Section 3.4, "Claiming idle compute time": with a fast target and a
	// light app the deadline is slack; the optimizer should run the
	// specialized model on the high-value context (its filtered product is
	// denser than the raw tile) and never do worse than all-specialized.
	profiles := []TilingProfile{testProfile(3), testProfile(11)}
	env := testEnv()
	env.Target = hw.GTX1070Ti
	env.App = app.App(1)
	sel, est := Optimize(profiles, env)
	allSpec := Selection{Tiling: tiling.Tiling{PerSide: 11}, Actions: []Action{Specialized, Specialized, Specialized}}
	if base := Evaluate(allSpec, profiles[1], env); est.DVD < base.DVD-1e-12 {
		t.Fatalf("optimizer (%v) worse than all-specialized (%v)", est.DVD, base.DVD)
	}
	if sel.Actions[0] != Specialized {
		t.Errorf("high-value context action = %v, want specialized (elide only when more precise)", sel.Actions[0])
	}
}

func TestHillClimbMatchesExhaustiveOnSmallProblem(t *testing.T) {
	tp := testProfile(3)
	env := testEnv()
	exSel, exEst := exhaustiveSearch(tp, env, 27)
	hcSel, hcEst := hillClimb(tp, env)
	if math.Abs(exEst.DVD-hcEst.DVD) > 0.02 {
		t.Fatalf("hill climb DVD %v far from exhaustive %v (%v vs %v)",
			hcEst.DVD, exEst.DVD, hcSel.Actions, exSel.Actions)
	}
}

func TestSatellitesForCoverage(t *testing.T) {
	d := 22 * time.Second
	cases := []struct {
		ft   time.Duration
		want int
	}{
		{10 * time.Second, 1},
		{22 * time.Second, 1},
		{23 * time.Second, 2},
		{98 * time.Second, 5},
		{247 * time.Second, 12}, // App 7 on Orin at 121 tiles: the 12x of Figure 11
	}
	for _, c := range cases {
		if got := SatellitesForCoverage(c.ft, d); got != c.want {
			t.Errorf("coverage(%v) = %d, want %d", c.ft, got, c.want)
		}
	}
}

func TestEvaluatePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Evaluate(Selection{Tiling: tiling.Tiling{PerSide: 3}, Actions: []Action{Discard}}, testProfile(3), testEnv())
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[Action]string{Discard: "discard", Downlink: "downlink", Specialized: "specialized", Generic: "generic"} {
		if a.String() != want {
			t.Errorf("%d -> %q", a, a.String())
		}
	}
}

func TestOptimizeDominatesRandomSelections(t *testing.T) {
	// The generated selection logic must beat (or tie) every random policy
	// at every candidate tiling — the optimizer is exhaustive at these
	// context counts, so this is an invariant, not a statistical claim.
	profiles := []TilingProfile{testProfile(3), testProfile(4), testProfile(6), testProfile(11)}
	for _, target := range []hw.Target{hw.GTX1070Ti, hw.I7_7800X, hw.Orin15W} {
		env := testEnv()
		env.Target = target
		_, best := Optimize(profiles, env)
		env.UseEngine = true
		rng := xrand.New(uint64(target) + 99)
		for trial := 0; trial < 200; trial++ {
			tp := profiles[rng.Intn(len(profiles))]
			sel := Selection{Tiling: tp.Tiling, Actions: make([]Action, len(tp.Contexts))}
			for i := range sel.Actions {
				sel.Actions[i] = Action(rng.Intn(int(numActions)))
			}
			if est := Evaluate(sel, tp, env); est.DVD > best.DVD+1e-9 {
				t.Fatalf("%v: random selection %v at %v beat the optimizer (%.4f > %.4f)",
					target, sel.Actions, tp.Tiling, est.DVD, best.DVD)
			}
		}
	}
}

func TestEvaluateInvariants(t *testing.T) {
	// Ledger sanity for arbitrary selections: value <= downlinked <=
	// capacity; processed fraction in (0, 1].
	profiles := []TilingProfile{testProfile(3), testProfile(11)}
	env := testEnv()
	rng := xrand.New(4242)
	for trial := 0; trial < 500; trial++ {
		tp := profiles[rng.Intn(len(profiles))]
		sel := Selection{Tiling: tp.Tiling, Actions: make([]Action, len(tp.Contexts))}
		for i := range sel.Actions {
			sel.Actions[i] = Action(rng.Intn(int(numActions)))
		}
		env.CapacityFrac = rng.Range(0.01, 1.2)
		env.FillIdle = rng.Bool(0.5)
		est := Evaluate(sel, tp, env)
		l := est.Ledger
		if l.HighValueBits > l.DownlinkedBits+1e-12 {
			t.Fatalf("value > downlinked: %+v", l)
		}
		if l.DownlinkedBits > l.CapacityBits+1e-12 {
			t.Fatalf("downlinked > capacity: %+v", l)
		}
		if est.ProcessedFrac <= 0 || est.ProcessedFrac > 1 {
			t.Fatalf("processed frac %v", est.ProcessedFrac)
		}
		if est.DVD < 0 || est.DVD > 1 {
			t.Fatalf("DVD %v", est.DVD)
		}
	}
}

func TestMaxDutyCycleCapsSelection(t *testing.T) {
	// A power-limited bus caps the compute duty cycle; the optimizer must
	// respect it, trading DVD for energy.
	profiles := []TilingProfile{testProfile(3), testProfile(11)}
	env := testEnv()
	env.Target = hw.GTX1070Ti // fast target: uncapped would run models widely
	env.App = app.App(1)
	_, uncapped := Optimize(profiles, env)

	env.MaxDutyCycle = 0.25
	selCapped, capped := Optimize(profiles, env)
	duty := float64(capped.FrameTime) / float64(env.Deadline)
	if duty > 0.25+1e-9 {
		t.Fatalf("capped selection duty = %.3f", duty)
	}
	if capped.DVD > uncapped.DVD+1e-9 {
		t.Fatalf("capped DVD %v above uncapped %v", capped.DVD, uncapped.DVD)
	}
	// The capped logic still beats the bent pipe.
	bent := EvaluateBentPipe(profiles[0].Prevalence(), env)
	if capped.DVD <= bent.DVD {
		t.Fatalf("capped DVD %v not above bent pipe %v (selection %v)", capped.DVD, bent.DVD, selCapped.Actions)
	}
}

func TestMaxDutyCycleImpossibleFallsBack(t *testing.T) {
	// A cap below even the context engine's own cost falls back to full
	// elision rather than returning garbage.
	profiles := []TilingProfile{testProfile(11)}
	env := testEnv()
	env.MaxDutyCycle = 1e-6
	sel, est := Optimize(profiles, env)
	for _, a := range sel.Actions {
		if a == Specialized || a == Merged || a == Generic {
			t.Fatalf("model action under impossible cap: %v", sel.Actions)
		}
	}
	if est.DVD < 0 || est.DVD > 1 {
		t.Fatalf("DVD %v", est.DVD)
	}
}

func TestDeferredActionAccounting(t *testing.T) {
	tp := testProfile(3)
	env := testEnv()
	env.FillIdle = false

	// Deferred tiles run no model (same frame time as elision) and leave
	// the in-frame downlink budget untouched (same ledger as discard):
	// their bits are accounted against later contact windows by the
	// planner, not by the per-frame drain.
	def := Selection{Tiling: tp.Tiling, Actions: []Action{Deferred, Discard, Specialized}}
	dis := Selection{Tiling: tp.Tiling, Actions: []Action{Discard, Discard, Specialized}}
	if got, want := FrameTime(def, tp, env), FrameTime(dis, tp, env); got != want {
		t.Fatalf("deferred frame time = %v, discard = %v", got, want)
	}
	de, di := Evaluate(def, tp, env), Evaluate(dis, tp, env)
	if de.Ledger != di.Ledger {
		t.Fatalf("deferred ledger %+v differs from discard ledger %+v", de.Ledger, di.Ledger)
	}

	if got := def.ElidedFrac(tp); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("elided = %v, want 0.65", got)
	}
	if got := def.DeferredFrac(tp); math.Abs(got-0.30) > 1e-12 {
		t.Fatalf("deferred frac = %v, want 0.30", got)
	}
	if got := dis.DeferredFrac(tp); got != 0 {
		t.Fatalf("discard-only deferred frac = %v, want 0", got)
	}
	if Deferred.String() != "deferred" {
		t.Fatalf("Deferred.String() = %q", Deferred.String())
	}
}

func TestOptimizeNeverEmitsDeferred(t *testing.T) {
	// Deferred is planner-only output: the selection-logic optimizer sweeps
	// the paper's on-board action set and must never pick it on its own.
	profiles := []TilingProfile{testProfile(3), testProfile(6)}
	sel, _ := Optimize(profiles, testEnv())
	for c, a := range sel.Actions {
		if a == Deferred {
			t.Fatalf("optimizer emitted Deferred for context %d", c)
		}
	}
}
