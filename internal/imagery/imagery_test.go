package imagery

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleTiles(w *World, n int, size float64, res int, blur float64) []*Tile {
	tiles := make([]*Tile, 0, n)
	// Deterministic scatter of regions across mid latitudes.
	for i := 0; i < n; i++ {
		lon := -180 + math.Mod(float64(i)*37.77, 360)
		lat := -55 + math.Mod(float64(i)*23.31, 110)
		tiles = append(tiles, w.RenderTile(Region{LonDeg: lon, LatDeg: lat, SizeDeg: size}, res, blur))
	}
	return tiles
}

func TestRenderDeterministic(t *testing.T) {
	w1, w2 := NewWorld(99), NewWorld(99)
	reg := Region{LonDeg: 10, LatDeg: 45, SizeDeg: 1.5}
	a := w1.RenderTile(reg, 24, 0)
	b := w2.RenderTile(reg, 24, 0)
	for c := range a.Features {
		for p := range a.Features[c] {
			if a.Features[c][p] != b.Features[c][p] {
				t.Fatalf("feature mismatch at ch %d px %d", c, p)
			}
		}
	}
	for p := range a.Truth {
		if a.Truth[p] != b.Truth[p] {
			t.Fatalf("truth mismatch at px %d", p)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	reg := Region{LonDeg: 10, LatDeg: 45, SizeDeg: 1.5}
	a := NewWorld(1).RenderTile(reg, 24, 0)
	b := NewWorld(2).RenderTile(reg, 24, 0)
	same := 0
	for p := range a.Truth {
		if a.Truth[p] == b.Truth[p] {
			same++
		}
	}
	if same == len(a.Truth) {
		t.Fatal("different seeds rendered identical truth")
	}
}

func TestGlobalValueSplitMatchesSentinel(t *testing.T) {
	// The paper's dataset: 48% high-value, 52% cloudy. Accept +/-6 points.
	w := NewWorld(2023)
	tiles := sampleTiles(w, 400, 1.45, 16, 0)
	var cloudy, total float64
	for _, tl := range tiles {
		cloudy += tl.CloudFrac * float64(tl.Pixels())
		total += float64(tl.Pixels())
	}
	// This sampler covers +/-55 latitude; the representative dataset
	// (+/-70, more ocean and tundra) lands at ~0.52. Accept a wider band
	// here and pin the dataset-level number in internal/dataset's tests.
	frac := cloudy / total
	if frac < 0.40 || frac > 0.58 {
		t.Fatalf("cloudy pixel fraction = %.3f, want ~0.45-0.55", frac)
	}
}

func TestAllGeoClassesOccur(t *testing.T) {
	w := NewWorld(2023)
	tiles := sampleTiles(w, 400, 1.45, 12, 0)
	var seen [NumGeoClasses]bool
	for _, tl := range tiles {
		seen[tl.Dominant] = true
	}
	for g := GeoClass(0); g < NumGeoClasses; g++ {
		if !seen[g] {
			t.Errorf("geography %v never dominant in 400 tiles", g)
		}
	}
}

func TestCloudPrevalenceOrdering(t *testing.T) {
	// Oceans must be cloudier than deserts — the asymmetry elision needs.
	w := NewWorld(2023)
	tiles := sampleTiles(w, 600, 1.45, 12, 0)
	var sum [NumGeoClasses]float64
	var cnt [NumGeoClasses]int
	for _, tl := range tiles {
		if tl.GeoFracs[tl.Dominant] > 0.9 {
			sum[tl.Dominant] += tl.CloudFrac
			cnt[tl.Dominant]++
		}
	}
	if cnt[Ocean] == 0 || cnt[Desert] == 0 {
		t.Skip("not enough pure tiles in sample")
	}
	ocean := sum[Ocean] / float64(cnt[Ocean])
	desert := sum[Desert] / float64(cnt[Desert])
	if ocean <= desert+0.2 {
		t.Fatalf("ocean cloudiness %.2f not >> desert %.2f", ocean, desert)
	}
}

func TestTileCloudinessBimodal(t *testing.T) {
	// Weather systems are larger than tiles, so per-tile cloud fractions
	// should concentrate near 0 and 1 — the property elision exploits.
	w := NewWorld(2023)
	tiles := sampleTiles(w, 500, 0.48, 12, 0) // 3x3-tiling tile size
	extreme := 0
	for _, tl := range tiles {
		if tl.CloudFrac < 0.15 || tl.CloudFrac > 0.85 {
			extreme++
		}
	}
	if frac := float64(extreme) / float64(len(tiles)); frac < 0.5 {
		t.Fatalf("only %.0f%% of tiles are near-pure, want >= 50%%", frac*100)
	}
}

func TestFeatureSignatures(t *testing.T) {
	// Clouds must be brighter than ocean/forest ground and colder than any
	// ground class; desert and tundra must be nearly as bright as clouds.
	if cloudSignature[ChBrightness] < geoParams[Forest][ChBrightness]+0.3 {
		t.Error("clouds not much brighter than forest")
	}
	if math.Abs(geoParams[Desert][ChBrightness]-cloudSignature[ChBrightness]) > 0.25 {
		t.Error("desert brightness not confounded with clouds")
	}
	if math.Abs(geoParams[Tundra][ChBrightness]-cloudSignature[ChBrightness]) > 0.25 {
		t.Error("tundra brightness not confounded with clouds")
	}
	for g := GeoClass(0); g < NumGeoClasses; g++ {
		if g == Tundra {
			continue // tundra is cold like cloud tops: a genuine confounder
		}
		if geoParams[g][ChThermal] < cloudSignature[ChThermal]+0.2 {
			t.Errorf("%v not warmer than cloud tops", g)
		}
	}
}

func TestRegionSplit(t *testing.T) {
	r := Region{LonDeg: 0, LatDeg: 0, SizeDeg: 3}
	subs := r.Split(3)
	if len(subs) != 9 {
		t.Fatalf("split count = %d", len(subs))
	}
	for _, s := range subs {
		if s.SizeDeg != 1 {
			t.Fatalf("sub size = %f", s.SizeDeg)
		}
		if s.LonDeg < 0 || s.LonDeg > 2 || s.LatDeg < 0 || s.LatDeg > 2 {
			t.Fatalf("sub out of parent: %+v", s)
		}
	}
	// Distinct origins.
	seen := map[[2]float64]bool{}
	for _, s := range subs {
		k := [2]float64{s.LonDeg, s.LatDeg}
		if seen[k] {
			t.Fatal("duplicate sub-region")
		}
		seen[k] = true
	}
}

func TestSplitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Region{SizeDeg: 1}.Split(0)
}

func TestBlurDegradesBoundarySeparability(t *testing.T) {
	// With blur, feature values near cloud boundaries move toward the
	// middle: the per-pixel brightness gap between cloudy and clear pixels
	// must shrink.
	w := NewWorld(7)
	gap := func(blur float64) float64 {
		var cloudSum, clearSum float64
		var cloudN, clearN int
		for _, tl := range sampleTiles(w, 80, 1.45, 24, blur) {
			for p := 0; p < tl.Pixels(); p++ {
				if tl.Truth[p] {
					clearSum += tl.Features[ChBrightness][p]
					clearN++
				} else {
					cloudSum += tl.Features[ChBrightness][p]
					cloudN++
				}
			}
		}
		return cloudSum/float64(cloudN) - clearSum/float64(clearN)
	}
	sharp, blurred := gap(0), gap(2.5)
	if blurred >= sharp {
		t.Fatalf("blur did not shrink separability: sharp %.3f blurred %.3f", sharp, blurred)
	}
}

func TestLabelVectorShapeAndRange(t *testing.T) {
	w := NewWorld(5)
	tl := w.RenderTile(Region{LonDeg: 3, LatDeg: 20, SizeDeg: 1}, 16, 0)
	lv := tl.LabelVector()
	if len(lv) != int(NumGeoClasses)+1 {
		t.Fatalf("label vector length %d", len(lv))
	}
	var geoSum float64
	for i := 0; i < int(NumGeoClasses); i++ {
		if lv[i] < 0 || lv[i] > 1 {
			t.Fatalf("geo frac out of range: %f", lv[i])
		}
		geoSum += lv[i]
	}
	if math.Abs(geoSum-1) > 1e-9 {
		t.Fatalf("geo fracs sum to %f", geoSum)
	}
	if lv[NumGeoClasses] != tl.CloudFrac {
		t.Fatal("cloud fraction mismatch")
	}
}

func TestSummaryObservable(t *testing.T) {
	w := NewWorld(5)
	tl := w.RenderTile(Region{LonDeg: 3, LatDeg: 20, SizeDeg: 1}, 16, 0)
	s := tl.Summary()
	if len(s) != 2*NumFeatures {
		t.Fatalf("summary length %d", len(s))
	}
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("summary[%d] = %v", i, v)
		}
	}
	// Means are bounded by the feature range plus noise.
	for c := 0; c < NumFeatures; c++ {
		if s[2*c] < -0.5 || s[2*c] > 1.5 {
			t.Fatalf("mean of channel %d = %f", c, s[2*c])
		}
	}
}

func TestBoxBlurPreservesMean(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rngVals := make([]float64, 16*16)
		h := seed
		for i := range rngVals {
			h = h*0x9e3779b97f4a7c15 + 1
			rngVals[i] = float64(h%1000) / 1000
		}
		var before float64
		for _, v := range rngVals {
			before += v
		}
		boxBlurInt(rngVals, 16, 2)
		var after float64
		for _, v := range rngVals {
			after += v
		}
		// Edge clamping shifts the mean slightly; allow 5%.
		return math.Abs(after-before) < 0.05*math.Abs(before)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVnoiseContinuity(t *testing.T) {
	// Value noise must be continuous: nearby points give nearby values.
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.37
		y := float64(i) * 0.19
		a := vnoise(x, y, 42)
		b := vnoise(x+1e-6, y+1e-6, 42)
		if math.Abs(a-b) > 1e-4 {
			t.Fatalf("discontinuity at (%f,%f): %f vs %f", x, y, a, b)
		}
	}
}

func TestFbmRange(t *testing.T) {
	if err := quick.Check(func(xi, yi int16) bool {
		v := fbm(float64(xi)/100, float64(yi)/100, 7, 4)
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoClassString(t *testing.T) {
	names := map[GeoClass]string{Ocean: "ocean", Forest: "forest", Desert: "desert", Tundra: "tundra", Urban: "urban"}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("%d -> %q", g, g.String())
		}
	}
}
