package imagery

import (
	"math"
	"testing"

	"kodan/internal/xrand"
)

// TestRowFBMMatchesFBM pins the scanline noise evaluator to the scalar
// fbm bit-for-bit: the row path may share lattice hashes within a cell,
// but every output float must be exactly what per-pixel fbm produces.
// RenderTile's determinism (and the committed experiment goldens) depend
// on this equivalence.
func TestRowFBMMatchesFBM(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 200; trial++ {
		res := 1 + rng.Intn(40)
		scale := []float64{continentScale, drynessScale, urbanScale, weatherScale, cumulusScale}[rng.Intn(5)]
		seed := rng.Uint64()
		octaves := 1 + rng.Intn(4)
		lat := rng.Float64()*180 - 90
		lon0 := rng.Float64()*360 - 180
		step := rng.Float64() * 0.1

		lons := make([]float64, res)
		for j := range lons {
			lons[j] = lon0 + float64(j)*step
		}
		s := newRowScratch(res)
		rowFBM(s.cont, s.xs, lons, lat, scale, seed, octaves)
		for j, lon := range lons {
			want := fbm(lon/scale, lat/scale, seed, octaves)
			if math.Float64bits(s.cont[j]) != math.Float64bits(want) {
				t.Fatalf("trial %d: rowFBM[%d] = %v, fbm = %v (lon=%v lat=%v scale=%v seed=%#x oct=%d)",
					trial, j, s.cont[j], want, lon, lat, scale, seed, octaves)
			}
		}
	}
}

// TestRowFieldsMatchPointwise pins the scanline classification helpers to
// the per-pixel originals: geoFromRow must agree with geoAt and
// opacityFromRow with cloudOpacityAt for every pixel of random rows.
func TestRowFieldsMatchPointwise(t *testing.T) {
	rng := xrand.New(321)
	for trial := 0; trial < 50; trial++ {
		w := NewWorld(rng.Uint64())
		res := 1 + rng.Intn(32)
		lat := rng.Float64()*160 - 80
		lon0 := rng.Float64()*360 - 180
		step := rng.Float64() * 0.05

		lons := make([]float64, res)
		for j := range lons {
			lons[j] = lon0 + float64(j)*step
		}
		s := newRowScratch(res)
		w.fillRow(s, lons, lat)
		for j, lon := range lons {
			g := w.geoFromRow(s, j, lat)
			if want := w.geoAt(lon, lat); g != want {
				t.Fatalf("trial %d px %d: geoFromRow = %v, geoAt = %v", trial, j, g, want)
			}
			op := w.opacityFromRow(s, j, g)
			if want := w.cloudOpacityAt(lon, lat, g); math.Float64bits(op) != math.Float64bits(want) {
				t.Fatalf("trial %d px %d: opacityFromRow = %v, cloudOpacityAt = %v", trial, j, op, want)
			}
		}
	}
}

// TestSummaryCacheMatchesFresh checks the cached summary equals a fresh
// computation and that uncached tiles (hand-built, e.g. in tests) still
// produce a correct summary lazily.
func TestSummaryCacheMatchesFresh(t *testing.T) {
	w := NewWorld(77)
	tile := w.RenderTile(Region{LonDeg: 10, LatDeg: 20, SizeDeg: 0.5}, 16, 0)
	cached := tile.Summary()
	fresh := tile.computeSummary()
	if len(cached) != len(fresh) {
		t.Fatalf("summary lengths differ: %d vs %d", len(cached), len(fresh))
	}
	for i := range cached {
		if math.Float64bits(cached[i]) != math.Float64bits(fresh[i]) {
			t.Fatalf("summary[%d]: cached %v != fresh %v", i, cached[i], fresh[i])
		}
	}
	// A tile without the cache must still summarize (lazy fallback).
	bare := &Tile{Res: tile.Res, Features: tile.Features, Truth: tile.Truth}
	lazy := bare.Summary()
	for i := range lazy {
		if math.Float64bits(lazy[i]) != math.Float64bits(fresh[i]) {
			t.Fatalf("lazy summary[%d]: %v != %v", i, lazy[i], fresh[i])
		}
	}
}
