// Package imagery synthesizes the geospatial image data the reproduction
// trains and evaluates on. The paper uses the Sentinel-2 cloud-mask
// catalogue (48% high-value / 52% cloudy pixels, per-tile label vectors,
// per-pixel truth masks); we generate a deterministic synthetic equivalent
// with the same statistical structure:
//
//   - a world of geography classes (ocean, forest, desert, tundra, urban)
//     laid out by large-scale value noise and latitude;
//   - spatially correlated cloud fields whose prevalence depends on the
//     geography, so that tile-level cloudiness is strongly bimodal (tiles
//     sit inside or outside weather systems) — the property context-based
//     elision exploits;
//   - per-pixel "spectral" feature channels derived from geography and
//     cloud opacity with context-dependent confounders (deserts and snowy
//     tundra are nearly as bright as cloud tops), so a single global
//     classifier must trade off contexts against each other while
//     context-specialized classifiers need not — the property model
//     specialization exploits;
//   - decimation blur applied to the feature channels (not the truth),
//     so coarser tilings mislabel cloud-boundary pixels — the property
//     frame tiling trades against execution time.
//
// Everything is a pure function of (world seed, region), so datasets are
// reproducible and tiles can be re-rendered at any tiling or resolution.
package imagery

import (
	"fmt"
	"math"

	"kodan/internal/xrand"
)

// GeoClass is a coarse geography class — the paper's human-recognizable
// expert contexts (Section 3.2).
type GeoClass int

// Geography classes.
const (
	Ocean GeoClass = iota
	Forest
	Desert
	Tundra
	Urban
	NumGeoClasses
)

// String implements fmt.Stringer.
func (g GeoClass) String() string {
	switch g {
	case Ocean:
		return "ocean"
	case Forest:
		return "forest"
	case Desert:
		return "desert"
	case Tundra:
		return "tundra"
	case Urban:
		return "urban"
	default:
		return fmt.Sprintf("geo(%d)", int(g))
	}
}

// Feature channel indices. The channels are abstractions of multispectral
// products: broadband brightness, visible whiteness, thermal, local
// texture, and near-infrared.
const (
	ChBrightness = iota
	ChWhiteness
	ChThermal
	ChTexture
	ChNIR
	NumFeatures
)

// Region is a square window of the world, in degrees of longitude/latitude.
// Frames and tiles are Regions; tiles are produced by splitting a frame.
type Region struct {
	// LonDeg, LatDeg locate the region's lower-left corner.
	LonDeg, LatDeg float64
	// SizeDeg is the side length in degrees.
	SizeDeg float64
}

// Split divides the region into perSide x perSide sub-regions, row-major.
func (r Region) Split(perSide int) []Region {
	if perSide <= 0 {
		panic("imagery: non-positive split")
	}
	out := make([]Region, 0, perSide*perSide)
	s := r.SizeDeg / float64(perSide)
	for i := 0; i < perSide; i++ {
		for j := 0; j < perSide; j++ {
			out = append(out, Region{
				LonDeg:  r.LonDeg + float64(j)*s,
				LatDeg:  r.LatDeg + float64(i)*s,
				SizeDeg: s,
			})
		}
	}
	return out
}

// Tile is a rendered image tile: what the satellite's frame-splitting step
// hands to the analysis application.
type Tile struct {
	// Res is the side length in pixels.
	Res int
	// Features holds NumFeatures channels of Res*Res values in [0, ~1].
	Features [][]float64
	// Truth marks high-value (cloud-free) pixels. This is the per-pixel
	// ground truth mask of the reference dataset.
	Truth []bool
	// GeoFracs is the fraction of pixels in each geography class.
	GeoFracs [NumGeoClasses]float64
	// Dominant is the majority geography class.
	Dominant GeoClass
	// CloudFrac is the fraction of cloudy (low-value) pixels.
	CloudFrac float64
	// Region records where the tile came from.
	Region Region
	// summary caches the Summary descriptor for tiles built by the
	// package's own renderers; see CacheSummary.
	summary []float64
}

// HighValueFrac returns the fraction of high-value pixels (1 - CloudFrac).
func (t *Tile) HighValueFrac() float64 { return 1 - t.CloudFrac }

// Pixels returns Res*Res.
func (t *Tile) Pixels() int { return t.Res * t.Res }

// FeatureAt returns the feature vector of pixel p (length NumFeatures).
func (t *Tile) FeatureAt(p int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, NumFeatures)
	}
	for c := 0; c < NumFeatures; c++ {
		dst[c] = t.Features[c][p]
	}
	return dst
}

// LabelVector returns the training-time label vector used to cluster the
// representative dataset into contexts: the geography fractions followed by
// the cloud fraction. This mirrors the paper's "label vectors indicating
// the geographic and weather features present in each sample".
func (t *Tile) LabelVector() []float64 {
	v := make([]float64, NumGeoClasses+1)
	copy(v, t.GeoFracs[:])
	v[NumGeoClasses] = t.CloudFrac
	return v
}

// Summary returns the runtime-observable tile descriptor: per-channel mean
// and standard deviation of the feature channels. The context engine
// classifies tiles from this vector; it contains nothing derived from the
// truth mask. Tiles built by RenderTile (or flipped dataset copies) return
// a precomputed cache — treat the result as read-only. Hand-constructed
// tiles compute a fresh descriptor on every call.
func (t *Tile) Summary() []float64 {
	if t.summary != nil {
		return t.summary
	}
	return t.computeSummary()
}

// CacheSummary precomputes the Summary descriptor so later calls are
// allocation-free. Call it once after the feature channels are final;
// callers that mutate Features afterwards must not use it. Safe only
// before the tile is shared across goroutines.
func (t *Tile) CacheSummary() {
	t.summary = t.computeSummary()
}

func (t *Tile) computeSummary() []float64 {
	out := make([]float64, 2*NumFeatures)
	n := float64(t.Pixels())
	for c := 0; c < NumFeatures; c++ {
		var sum, sumSq float64
		for _, v := range t.Features[c] {
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := math.Max(0, sumSq/n-mean*mean)
		out[2*c] = mean
		out[2*c+1] = math.Sqrt(variance)
	}
	return out
}

// World generates tiles. The zero value is unusable; use NewWorld.
type World struct {
	seed uint64
}

// NewWorld returns a world generator with the given seed. Two worlds with
// the same seed render identical tiles.
func NewWorld(seed uint64) *World { return &World{seed: seed} }

// Noise field scales, in degrees.
const (
	continentScale = 28.0 // continents and oceans
	drynessScale   = 14.0 // desert belts
	urbanScale     = 2.2  // urban patches
	weatherScale   = 2.8  // cloud systems
	cloudEdgeWidth = 0.16 // soft cloud-boundary width in noise units
)

// geoParams hold the per-class feature signature: the clean-ground value of
// each channel. Clouds pull every channel toward the cloud signature.
// Desert and tundra brightness/whiteness sit deliberately close to the
// cloud signature: those are the contexts where a global model loses
// precision and specialization wins (Section 5.3's mechanism).
var geoParams = [NumGeoClasses][NumFeatures]float64{
	Ocean:  {0.10, 0.14, 0.55, 0.15, 0.06},
	Forest: {0.26, 0.22, 0.60, 0.34, 0.64},
	Desert: {0.80, 0.74, 0.82, 0.25, 0.58},
	Tundra: {0.80, 0.74, 0.16, 0.20, 0.45},
	Urban:  {0.50, 0.46, 0.68, 0.44, 0.38},
}

// cloudSignature is the feature vector of an opaque cloud top.
var cloudSignature = [NumFeatures]float64{0.88, 0.85, 0.12, 0.18, 0.72}

// cloudThreshold is the per-class weather-noise threshold above which a
// pixel is cloudy. Lower thresholds mean cloudier skies. Values are
// calibrated so the world-wide pixel value split is ~48% high-value / 52%
// cloudy, matching the paper's Sentinel dataset, with near-pure contexts
// at the extremes (overcast ocean, clear desert) for elision to exploit.
var cloudThreshold = [NumGeoClasses]float64{
	Ocean:  0.492,
	Forest: 0.568,
	Desert: 0.655,
	Tundra: 0.498,
	Urban:  0.570,
}

// noiseAmp is the per-channel radiance noise standard deviation over clear
// ground.
const noiseAmp = 0.115

// cloudNoiseBoost scales the extra radiance variability of cloudy pixels:
// cloud tops are textured, layered, and lit at varying angles, so their
// radiance scatters far more than clear ground. The asymmetry pushes a
// capacity-limited global classifier's errors toward false positives
// (cloud mistaken for ground) — the error mode that pollutes a saturated
// downlink and that context specialization repairs (Section 5.3).
const cloudNoiseBoost = 1.1

// geoAt returns the geography class at a world coordinate.
func (w *World) geoAt(lon, lat float64) GeoClass {
	cont := fbm(lon/continentScale, lat/continentScale, w.seed^0xc0417, 3)
	if cont < 0.46 {
		return Ocean
	}
	urban := fbm(lon/urbanScale, lat/urbanScale, w.seed^0x06ba1, 2)
	if urban > 0.78 {
		return Urban
	}
	// Cold regions: high latitude, with a noisy treeline.
	coldness := math.Abs(lat)/90 + 0.2*(fbm(lon/drynessScale, lat/drynessScale, w.seed^0x7e111, 2)-0.5)
	if coldness > 0.62 {
		return Tundra
	}
	dry := fbm(lon/drynessScale, lat/drynessScale, w.seed^0xd2e57, 3)
	if dry > 0.63 {
		return Desert
	}
	return Forest
}

// GeoClassAt returns the geography class at a world coordinate — the
// basis for position-derived expert contexts (internal/geomap).
func (w *World) GeoClassAt(lonDeg, latDeg float64) GeoClass {
	return w.geoAt(lonDeg, latDeg)
}

// cloudNoiseAt returns the raw weather field in [0, 1].
func (w *World) cloudNoiseAt(lon, lat float64) float64 {
	return fbm(lon/weatherScale, lat/weatherScale, w.seed^0x57086, 4)
}

// opacityRamp is the width of the weather-noise interval over which cloud
// opacity climbs from 0 to 1. A wide ramp means most cloudy pixels are
// semi-transparent — their radiance is a mixture of cloud and ground — which
// is what makes real cloud masking hard (thin cirrus, haze, cloud edges).
const opacityRamp = 0.55

// Scattered-cumulus field: a small-scale cloud component present in every
// air mass, independent of the large weather systems. It caps the purity
// of "clear" contexts at ~90-93% high-value, so elision without filtering
// always leaks a little low-value data — the reason Kodan's selection
// logic still runs specialized models on mixed contexts instead of
// degenerating to pure triage.
const (
	cumulusScale     = 0.30  // degrees
	cumulusThreshold = 0.693 // coverage ~9% of pixels
	cumulusRamp      = 0.10  // sharp cumulus edges
)

// cloudOpacityAt returns the soft cloud opacity in [0, 1] at a coordinate;
// opacity > 0.5 is labeled cloudy in the truth mask. The opacity is the
// larger of the synoptic-system component (thresholded per geography) and
// the scattered-cumulus component.
func (w *World) cloudOpacityAt(lon, lat float64, g GeoClass) float64 {
	v := w.cloudNoiseAt(lon, lat)
	o := clamp01(0.5 + (v-cloudThreshold[g])/opacityRamp)
	cum := fbm(lon/cumulusScale, lat/cumulusScale, w.seed^0xcc001, 3)
	oc := clamp01(0.5 + (cum-cumulusThreshold)/cumulusRamp)
	if oc > o {
		return oc
	}
	return o
}

// clamp01 clamps to [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RenderTile renders the tile covering reg at res x res pixels. blurPx is
// the decimation blur radius in output pixels: the box-blur applied to the
// feature channels to model the detail lost when a large ground footprint
// is decimated to the model input size (Figure 6). The truth mask is never
// blurred — it is the hi-resolution reference label.
func (w *World) RenderTile(reg Region, res int, blurPx float64) *Tile {
	if res <= 0 {
		panic("imagery: non-positive resolution")
	}
	t := &Tile{Res: res, Region: reg}
	n := res * res
	t.Features = make([][]float64, NumFeatures)
	for c := range t.Features {
		t.Features[c] = make([]float64, n)
	}
	t.Truth = make([]bool, n)

	// Deterministic per-tile sensor noise: seeded by the world seed and the
	// quantized region coordinates, so rendering is order-independent.
	rng := xrand.New(w.seed ^ regionKey(reg))

	step := reg.SizeDeg / float64(res)
	var geoCounts [NumGeoClasses]int
	cloudy := 0
	opacity := make([]float64, n)
	lons := make([]float64, res)
	for j := range lons {
		lons[j] = reg.LonDeg + (float64(j)+0.5)*step
	}
	rows := newRowScratch(res)
	for i := 0; i < res; i++ {
		lat := reg.LatDeg + (float64(i)+0.5)*step
		w.fillRow(rows, lons, lat)
		for j := 0; j < res; j++ {
			p := i*res + j
			g := w.geoFromRow(rows, j, lat)
			geoCounts[g]++
			op := w.opacityFromRow(rows, j, g)
			opacity[p] = op
			if op > 0.5 {
				t.Truth[p] = false
				cloudy++
			} else {
				t.Truth[p] = true
			}
			for c := 0; c < NumFeatures; c++ {
				clean := geoParams[g][c]
				t.Features[c][p] = clean + op*(cloudSignature[c]-clean)
			}
		}
	}

	// Decimation blur acts on the scene radiance (optics happen before the
	// detector), then per-sample sensor noise is added. Ordering matters:
	// blurring after noise would average the noise away and make coarse
	// tilings easier, the opposite of the physical effect.
	if blurPx > 0 {
		for c := range t.Features {
			boxBlur(t.Features[c], res, blurPx)
		}
	}
	for p := 0; p < n; p++ {
		sigma := noiseAmp * (1 + cloudNoiseBoost*opacity[p])
		for c := 0; c < NumFeatures; c++ {
			t.Features[c][p] += rng.Norm(0, sigma)
		}
	}

	t.CloudFrac = float64(cloudy) / float64(n)
	best := 0
	for g := range geoCounts {
		t.GeoFracs[g] = float64(geoCounts[g]) / float64(n)
		if geoCounts[g] > geoCounts[best] {
			best = g
		}
	}
	t.Dominant = GeoClass(best)
	t.CacheSummary()
	return t
}

// regionKey hashes a region to a stable seed component.
func regionKey(r Region) uint64 {
	q := func(v float64) uint64 { return uint64(int64(math.Round(v * 1e4))) }
	h := q(r.LonDeg)*0x9e3779b97f4a7c15 ^ q(r.LatDeg)*0xbf58476d1ce4e5b9 ^ q(r.SizeDeg)*0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// boxBlur applies a separable box blur of the given (possibly fractional)
// radius to a res x res channel in place. A fractional radius blends the
// blur at floor(radius) and floor(radius)+1.
func boxBlur(ch []float64, res int, radius float64) {
	r0 := int(radius)
	frac := radius - float64(r0)
	if r0 > 0 {
		boxBlurInt(ch, res, r0)
	}
	if frac > 1e-9 {
		tmp := make([]float64, len(ch))
		copy(tmp, ch)
		boxBlurInt(tmp, res, r0+1)
		for i := range ch {
			ch[i] = (1-frac)*ch[i] + frac*tmp[i]
		}
	}
}

// boxBlurInt applies a separable integer-radius box blur in place.
func boxBlurInt(ch []float64, res, radius int) {
	if radius <= 0 {
		return
	}
	tmp := make([]float64, len(ch))
	// Horizontal pass.
	for i := 0; i < res; i++ {
		row := ch[i*res : (i+1)*res]
		out := tmp[i*res : (i+1)*res]
		blurLine(row, out, radius)
	}
	// Vertical pass (via strided lines).
	col := make([]float64, res)
	outCol := make([]float64, res)
	for j := 0; j < res; j++ {
		for i := 0; i < res; i++ {
			col[i] = tmp[i*res+j]
		}
		blurLine(col, outCol, radius)
		for i := 0; i < res; i++ {
			ch[i*res+j] = outCol[i]
		}
	}
}

// blurLine writes the box-blur of src into dst with edge clamping.
func blurLine(src, dst []float64, radius int) {
	n := len(src)
	for i := 0; i < n; i++ {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += src[k]
		}
		dst[i] = sum / float64(hi-lo+1)
	}
}

// rowScratch holds the per-row noise buffers of one RenderTile call: the
// evolving x coordinates and the six field rows a scanline needs.
type rowScratch struct {
	xs                                       []float64
	cont, urban, tree, dry, weather, cumulus []float64
}

func newRowScratch(res int) *rowScratch {
	backing := make([]float64, 7*res)
	s := &rowScratch{}
	for i, dst := range []*[]float64{&s.xs, &s.cont, &s.urban, &s.tree, &s.dry, &s.weather, &s.cumulus} {
		*dst = backing[i*res : (i+1)*res]
	}
	return s
}

// rowFBM writes fbm(lon/scale, lat/scale, seed, octaves) for every lon in
// lons into dst, sharing one scanline's lattice hashes: within an octave
// the y lattice row is fixed and consecutive x samples usually stay inside
// one cell, so the four corner hashes are fetched once per cell instead of
// once per pixel. Every arithmetic expression matches fbm/vnoise exactly —
// hash2 is pure, so reusing its values is bit-identical to recomputing
// them (pinned by TestRowFBMMatchesFBM).
func rowFBM(dst, xs, lons []float64, lat, scale float64, seed uint64, octaves int) {
	for j, lon := range lons {
		xs[j] = lon / scale
		dst[j] = 0
	}
	y := lat / scale
	var norm float64
	amp := 1.0
	for o := 0; o < octaves; o++ {
		s := seed + uint64(o)*0x9e37
		fy := math.Floor(y)
		iy := int64(fy)
		ty := smoothstep(y - fy)
		haveCell := false
		var lastIx int64
		var v00, v10, v01, v11 float64
		for j, x := range xs {
			fx := math.Floor(x)
			ix := int64(fx)
			if !haveCell || ix != lastIx {
				v00 = hash2(ix, iy, s)
				v10 = hash2(ix+1, iy, s)
				v01 = hash2(ix, iy+1, s)
				v11 = hash2(ix+1, iy+1, s)
				lastIx, haveCell = ix, true
			}
			tx := smoothstep(x - fx)
			a := v00 + (v10-v00)*tx
			b := v01 + (v11-v01)*tx
			dst[j] += amp * (a + (b-a)*ty)
		}
		norm += amp
		for j, x := range xs {
			xs[j] = x*2 + 13.7
		}
		y = y*2 + 7.3
		amp *= 0.5
	}
	for j := range dst {
		dst[j] /= norm
	}
}

// fillRow evaluates the world's noise fields for one scanline. The
// classification below mirrors geoAt/cloudOpacityAt exactly; the row path
// merely precomputes every field a pixel might consult (geoAt's
// short-circuits skip some), and unused values cannot affect the output.
func (w *World) fillRow(s *rowScratch, lons []float64, lat float64) {
	rowFBM(s.cont, s.xs, lons, lat, continentScale, w.seed^0xc0417, 3)
	rowFBM(s.urban, s.xs, lons, lat, urbanScale, w.seed^0x06ba1, 2)
	rowFBM(s.tree, s.xs, lons, lat, drynessScale, w.seed^0x7e111, 2)
	rowFBM(s.dry, s.xs, lons, lat, drynessScale, w.seed^0xd2e57, 3)
	rowFBM(s.weather, s.xs, lons, lat, weatherScale, w.seed^0x57086, 4)
	rowFBM(s.cumulus, s.xs, lons, lat, cumulusScale, w.seed^0xcc001, 3)
}

// geoFromRow is geoAt over precomputed row fields (same branch structure).
func (w *World) geoFromRow(s *rowScratch, j int, lat float64) GeoClass {
	if s.cont[j] < 0.46 {
		return Ocean
	}
	if s.urban[j] > 0.78 {
		return Urban
	}
	coldness := math.Abs(lat)/90 + 0.2*(s.tree[j]-0.5)
	if coldness > 0.62 {
		return Tundra
	}
	if s.dry[j] > 0.63 {
		return Desert
	}
	return Forest
}

// opacityFromRow is cloudOpacityAt over precomputed row fields.
func (w *World) opacityFromRow(s *rowScratch, j int, g GeoClass) float64 {
	o := clamp01(0.5 + (s.weather[j]-cloudThreshold[g])/opacityRamp)
	oc := clamp01(0.5 + (s.cumulus[j]-cumulusThreshold)/cumulusRamp)
	if oc > o {
		return oc
	}
	return o
}

// smoothstep clamps x to [0,1] and applies 3x^2-2x^3 smoothing.
func smoothstep(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return x * x * (3 - 2*x)
}

// hash2 returns a deterministic value in [0,1) for an integer lattice point.
func hash2(ix, iy int64, seed uint64) float64 {
	h := seed
	h ^= uint64(ix) * 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= uint64(iy) * 0x94d049bb133111eb
	h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1d
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// vnoise is smooth value noise: bilinear interpolation of lattice hashes
// with smoothstep easing. Output in [0, 1).
func vnoise(x, y float64, seed uint64) float64 {
	fx, fy := math.Floor(x), math.Floor(y)
	ix, iy := int64(fx), int64(fy)
	tx, ty := smoothstep(x-fx), smoothstep(y-fy)
	v00 := hash2(ix, iy, seed)
	v10 := hash2(ix+1, iy, seed)
	v01 := hash2(ix, iy+1, seed)
	v11 := hash2(ix+1, iy+1, seed)
	a := v00 + (v10-v00)*tx
	b := v01 + (v11-v01)*tx
	return a + (b-a)*ty
}

// fbm is fractal value noise: octaves of vnoise at doubling frequency and
// halving amplitude, normalized to [0, 1).
func fbm(x, y float64, seed uint64, octaves int) float64 {
	var sum, amp, norm float64
	amp = 1
	for o := 0; o < octaves; o++ {
		sum += amp * vnoise(x, y, seed+uint64(o)*0x9e37)
		norm += amp
		x, y = x*2+13.7, y*2+7.3
		amp *= 0.5
	}
	return sum / norm
}
