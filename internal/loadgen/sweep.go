package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"kodan/internal/server"
	"kodan/internal/telemetry"
)

// ServingRow is one serving configuration's measured outcome under the
// shared multi-tenant load stream.
//
// Unlike every other bench figure, the serving sweep is MEASURED, not
// derived: throughput and latency come from wall-clock observation of a
// live server under load, so they vary run to run and across machines.
// The deterministic columns — request accounting, fairness inputs, and
// the byte-identity of responses across configurations — are the
// correctness claims; the timing columns are the performance claim.
type ServingRow struct {
	// Config is "baseline" (one cache shard, no batching) or "tuned"
	// (sharded cache plus request batching). Everything else — stream,
	// workers, queue, admission, cost model — is identical.
	Config string
	// Shards is the cache shard count.
	Shards int
	// Batched reports whether request batching was on.
	Batched bool
	// Requests/Completed/Rejected/Errors account for every request in the
	// stream (Rejected counts 429 backpressure, not errors).
	Requests  int
	Completed int
	Rejected  int
	Errors    int
	// ThroughputRPS is completed requests per wall-clock second.
	ThroughputRPS float64
	// P50Ms and P99Ms are response-latency percentiles in milliseconds.
	P50Ms float64
	P99Ms float64
	// Fairness is the Jain index over weight-normalized per-tenant
	// goodput (1 = perfectly weighted-fair).
	Fairness float64
	// DigestsMatch reports whether this configuration's responses were
	// byte-identical to the baseline's for every shared completed request
	// (vacuously true on the baseline row).
	DigestsMatch bool
}

// sweepParams sizes the serving sweep: the stream and the stub cost
// model. The key pool (SeedPool x Apps) is larger than the stream's
// working set so cache misses dominate, and the per-pass Fixed cost
// dwarfs Marginal so batching has overhead to amortize — the regime the
// batcher targets (one model load serving many requests).
func sweepParams(full bool) (Options, WorkModel, []int) {
	apps := []int{1, 2, 3, 4, 5, 6, 7}
	opts := Options{
		Seed:        2023,
		Requests:    150,
		Concurrency: 32,
		SeedPool:    []uint64{1, 2, 3, 4},
		Apps:        apps,
		Tenants: []TenantSpec{
			{Name: "ops", Weight: 3, Share: 3},
			{Name: "science", Weight: 1, Share: 1},
		},
	}
	work := WorkModel{Fixed: 15 * time.Millisecond, Marginal: time.Millisecond}
	if full {
		opts.Requests = 400
		work = WorkModel{Fixed: 40 * time.Millisecond, Marginal: 2 * time.Millisecond}
	}
	return opts, work, apps
}

// ServingSweep measures the serving plane under the multi-tenant load
// stream: a baseline server (single cache shard, no batching) versus the
// tuned configuration (sharded cache, request batching), same stream.
// Both servers share one stub pipeline (one prebuilt workspace and
// application set), so the comparison isolates the serving plane: cache
// sharding and batching are the only variables.
func ServingSweep(ctx context.Context, full bool) ([]ServingRow, error) {
	ctx, span := telemetry.StartSpan(ctx, "figure.serving")
	defer span.End()

	opts, work, apps := sweepParams(full)
	newSystem, transform, transformBatch, err := StubPipeline(work, apps)
	if err != nil {
		return nil, err
	}
	serverConfig := func(shards int, batch time.Duration) server.Config {
		return server.Config{
			Seed:           7,
			Workers:        4,
			QueueDepth:     256,
			Timeout:        60 * time.Second,
			NewSystem:      newSystem,
			Transform:      transform,
			TransformBatch: transformBatch,
			CacheShards:    shards,
			BatchWindow:    batch,
			BatchMax:       8,
			TenantWeights:  map[string]float64{"ops": 3, "science": 1},
		}
	}

	runConfig := func(cfg server.Config) (*Report, error) {
		s := server.New(cfg)
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln) //nolint:errcheck // Close below owns shutdown
		defer hs.Close()
		o := opts
		o.BaseURL = "http://" + ln.Addr().String()
		return Run(ctx, o)
	}

	base, err := runConfig(serverConfig(1, 0))
	if err != nil {
		return nil, err
	}
	tuned, err := runConfig(serverConfig(8, 5*time.Millisecond))
	if err != nil {
		return nil, err
	}

	row := func(config string, shards int, batched bool, rep *Report, match bool) ServingRow {
		return ServingRow{
			Config: config, Shards: shards, Batched: batched,
			Requests: rep.Requests, Completed: rep.Completed,
			Rejected: rep.Rejected, Errors: rep.Errors,
			ThroughputRPS: rep.ThroughputRPS, P50Ms: rep.P50Ms, P99Ms: rep.P99Ms,
			Fairness: rep.Fairness, DigestsMatch: match,
		}
	}
	return []ServingRow{
		row("baseline", 1, false, base, true),
		row("tuned", 8, true, tuned, CompareDigests(base, tuned) == nil),
	}, nil
}

// RenderServing formats the serving sweep.
func RenderServing(rows []ServingRow) string {
	var b strings.Builder
	b.WriteString("Serving sweep: multi-tenant load against the serving plane (measured, not derived)\n")
	fmt.Fprintf(&b, "%9s %7s %8s %9s %10s %9s %7s %9s %8s %8s %9s %8s\n",
		"Config", "Shards", "Batched", "Requests", "Completed", "Rejected", "Errors",
		"Thruput", "p50(ms)", "p99(ms)", "Fairness", "Digests")
	for _, r := range rows {
		digests := "differ"
		if r.DigestsMatch {
			digests = "match"
		}
		fmt.Fprintf(&b, "%9s %7d %8t %9d %10d %9d %7d %9.1f %8.1f %8.1f %9.3f %8s\n",
			r.Config, r.Shards, r.Batched, r.Requests, r.Completed, r.Rejected, r.Errors,
			r.ThroughputRPS, r.P50Ms, r.P99Ms, r.Fairness, digests)
	}
	if len(rows) == 2 && rows[0].ThroughputRPS > 0 {
		fmt.Fprintf(&b, "headline: sharding+batching sustains %.2fx baseline throughput, responses byte-identical: %t\n",
			rows[1].ThroughputRPS/rows[0].ThroughputRPS, rows[1].DigestsMatch)
	}
	return b.String()
}
