// Package loadgen is the deterministic multi-tenant load generator for
// the serving plane. It drives a kodan server's /v1/transform endpoint
// with a seeded request stream — tenants drawn by offered-load share,
// transform keys drawn from a seed/app pool — in either a closed loop
// (fixed concurrency, next request on completion) or an open loop (fixed
// arrival rate, no back-off), and reports throughput, latency
// percentiles, per-tenant goodput, admission rejections, and a Jain
// fairness index over weight-normalized goodput.
//
// The request STREAM is a pure function of the seed: two runs with the
// same options issue the same requests in the same order, so response
// digests are comparable across server configurations (the serving bench
// uses this to prove sharded+batched serving byte-identical to the
// single-shard baseline). Timing-derived statistics (throughput,
// percentiles) are measured, not synthesized, and vary run to run.
package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"kodan/internal/xrand"
)

// TenantSpec is one tenant's load and fairness parameters.
type TenantSpec struct {
	// Name is the X-Kodan-Tenant value.
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight (matches the server's
	// TenantWeights); fairness normalizes goodput by it. Default 1.
	Weight float64 `json:"weight"`
	// Share is the tenant's fraction of offered load (relative to the sum
	// over tenants). Default 1.
	Share float64 `json:"share"`
}

// Options configures a run.
type Options struct {
	// Seed fixes the request stream.
	Seed uint64
	// Requests is the total request count (default 64).
	Requests int
	// Concurrency is the closed-loop in-flight bound (default 8). Ignored
	// when RatePerSec is set.
	Concurrency int
	// RatePerSec switches to an open loop: requests are dispatched at this
	// arrival rate regardless of completions (exponential interarrivals
	// from the seeded stream). 0 keeps the closed loop.
	RatePerSec float64
	// Tenants is the tenant mix (default: one anonymous tenant).
	Tenants []TenantSpec
	// Apps is the application-index pool (default {1, 2, 3}).
	Apps []int
	// SeedPool is the transform-seed pool; together with Apps it spans the
	// distinct cache keys the stream can touch (default {1}).
	SeedPool []uint64
	// BaseURL is the server under test (e.g. an httptest server's URL).
	BaseURL string
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if len(o.Tenants) == 0 {
		o.Tenants = []TenantSpec{{Name: "", Weight: 1, Share: 1}}
	}
	for i := range o.Tenants {
		if o.Tenants[i].Weight <= 0 {
			o.Tenants[i].Weight = 1
		}
		if o.Tenants[i].Share <= 0 {
			o.Tenants[i].Share = 1
		}
	}
	if len(o.Apps) == 0 {
		o.Apps = []int{1, 2, 3}
	}
	if len(o.SeedPool) == 0 {
		o.SeedPool = []uint64{1}
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Request is one element of the generated stream.
type Request struct {
	Tenant string
	Seed   uint64
	App    int
	// WaitBefore is the open-loop interarrival before dispatching this
	// request (zero in closed-loop runs).
	WaitBefore time.Duration
}

// Stream generates the deterministic request sequence for opts.
func Stream(opts Options) []Request {
	opts = opts.withDefaults()
	rng := xrand.New(opts.Seed)
	shares := make([]float64, len(opts.Tenants))
	for i, tn := range opts.Tenants {
		shares[i] = tn.Share
	}
	reqs := make([]Request, opts.Requests)
	for i := range reqs {
		reqs[i] = Request{
			Tenant: opts.Tenants[rng.Choice(shares)].Name,
			Seed:   opts.SeedPool[rng.Intn(len(opts.SeedPool))],
			App:    opts.Apps[rng.Intn(len(opts.Apps))],
		}
		if opts.RatePerSec > 0 {
			// Exponential interarrival with mean 1/rate, from the same
			// seeded stream so open-loop schedules replay exactly.
			u := 1 - rng.Float64() // in (0, 1]: log is finite
			gap := -math.Log(u) / opts.RatePerSec
			reqs[i].WaitBefore = time.Duration(gap * float64(time.Second))
		}
	}
	return reqs
}

// TenantStats is one tenant's outcome counts.
type TenantStats struct {
	Weight    float64 `json:"weight"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Rejected  int     `json:"rejected"`
	Errors    int     `json:"errors"`
}

// Report is a run's outcome.
type Report struct {
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Rejected      int     `json:"rejected"` // 429s: admission or saturation
	Errors        int     `json:"errors"`   // 5xx and transport failures
	DurationSec   float64 `json:"durationSec"`
	ThroughputRPS float64 `json:"throughputRPS"` // completed / duration
	P50Ms         float64 `json:"p50Ms"`
	P99Ms         float64 `json:"p99Ms"`
	// ErrorRate is errors / requests (429 rejections are backpressure,
	// not errors, and are excluded).
	ErrorRate float64 `json:"errorRate"`
	// Fairness is the Jain index over weight-normalized per-tenant
	// completions: 1.0 = perfectly weighted-fair, 1/n = one tenant took
	// everything.
	Fairness float64                 `json:"fairness"`
	Tenants  map[string]*TenantStats `json:"tenants"`
	// Digests maps each distinct request body to the sha256 of its 200
	// response, for byte-identity comparison across server configs.
	Digests map[string]string `json:"-"`
}

// Run executes the stream against opts.BaseURL and reports the outcome.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	stream := Stream(opts)

	rep := &Report{Requests: len(stream), Tenants: make(map[string]*TenantStats), Digests: make(map[string]string)}
	for _, tn := range opts.Tenants {
		rep.Tenants[tn.Name] = &TenantStats{Weight: tn.Weight}
	}
	var mu sync.Mutex
	var latencies []float64
	do := func(r Request) error {
		body := fmt.Sprintf(`{"seed":%d,"app":%d}`, r.Seed, r.App)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/transform", strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if r.Tenant != "" {
			req.Header.Set("X-Kodan-Tenant", r.Tenant)
		}
		start := time.Now()
		resp, err := opts.Client.Do(req)
		elapsed := time.Since(start)

		mu.Lock()
		defer mu.Unlock()
		ts := rep.Tenants[r.Tenant]
		ts.Requests++
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			rep.Errors++
			ts.Errors++
			return nil
		}
		data, _ := io.ReadAll(resp.Body) //nolint:errcheck // status drives accounting
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			rep.Completed++
			ts.Completed++
			latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
			sum := sha256.Sum256(data)
			rep.Digests[body] = hex.EncodeToString(sum[:])
		case resp.StatusCode == http.StatusTooManyRequests:
			rep.Rejected++
			ts.Rejected++
		default:
			rep.Errors++
			ts.Errors++
		}
		return nil
	}

	start := time.Now()
	if opts.RatePerSec > 0 {
		// Open loop: dispatch on the schedule, collect asynchronously.
		var wg sync.WaitGroup
		for _, r := range stream {
			if r.WaitBefore > 0 {
				select {
				case <-time.After(r.WaitBefore):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			wg.Add(1)
			go func(r Request) {
				defer wg.Done()
				do(r) //nolint:errcheck // ctx errors surface via ctx.Err below
			}(r)
		}
		wg.Wait()
	} else {
		// Closed loop: Concurrency workers walk the stream in order.
		next := make(chan Request)
		var wg sync.WaitGroup
		for w := 0; w < opts.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range next {
					if do(r) != nil {
						return
					}
				}
			}()
		}
	feed:
		for _, r := range stream {
			select {
			case next <- r:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / rep.DurationSec
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 50)
	rep.P99Ms = percentile(latencies, 99)
	rep.Fairness = jain(rep.Tenants)
	return rep, nil
}

// jain computes the Jain fairness index over weight-normalized per-tenant
// completions, counting only tenants that offered load.
func jain(tenants map[string]*TenantStats) float64 {
	var xs []float64
	for _, ts := range tenants {
		if ts.Requests == 0 {
			continue
		}
		xs = append(xs, float64(ts.Completed)/ts.Weight)
	}
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// percentile returns the nearest-rank p-th percentile of sorted data.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// CompareDigests checks that every request both runs completed produced
// byte-identical responses, returning the first divergence.
func CompareDigests(a, b *Report) error {
	n := 0
	for body, da := range a.Digests {
		if db, ok := b.Digests[body]; ok {
			if da != db {
				return fmt.Errorf("response for %s differs across configurations", body)
			}
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("no overlapping completed requests to compare")
	}
	return nil
}
