package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kodan"
	"kodan/internal/cluster"
	"kodan/internal/ctxengine"
	"kodan/internal/server"
)

// WorkModel is the stub pipeline's cost model. Each unbatched transform
// sleeps Fixed + Marginal; a batched pass over n members sleeps
// Fixed + n*Marginal, so Fixed is the per-pass overhead (model load, data
// movement) that batching amortizes and Marginal the irreducible per-app
// compute. With Fixed >> Marginal the stub reproduces the regime the
// batcher targets; with Fixed = 0 batching is cost-neutral.
type WorkModel struct {
	Fixed    time.Duration
	Marginal time.Duration
}

// stubTransformConfig is a transformation sized for sub-second builds:
// one tiling, few frames, a fixed k=3 context sweep (mirrors the server
// package's unit-test sizing).
func stubTransformConfig(seed uint64) kodan.TransformConfig {
	cfg := kodan.DefaultTransformConfig(seed)
	cfg.Frames = 24
	cfg.TileRes = 8
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}}
	cfg.PixelsPerFrame = 90
	cfg.EvalPixelsPerFrame = 90
	cfg.Context.Ks = []int{3}
	cfg.Context.Metrics = []cluster.Metric{cluster.Euclidean}
	cfg.Context.Transforms = []ctxengine.Transform{ctxengine.Standardized}
	cfg.Context.EngineTrain.Epochs = 8
	return cfg
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StubPipeline returns server overrides that serve prebuilt applications
// from one tiny real workspace under the WorkModel's synthetic cost, so
// load runs exercise the real serving plane (admission, cache, batching,
// pool) with controllable compute cost and real, distinct response
// bodies per application. Applications outside apps (or quantized
// variants) are computed on demand from the shared workspace.
func StubPipeline(work WorkModel, apps []int) (server.NewSystemFunc, server.TransformFunc, server.TransformBatchFunc, error) {
	sys, err := kodan.NewSystem(stubTransformConfig(7))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("build stub workspace: %w", err)
	}
	prebuilt := make(map[int]*kodan.Application, len(apps))
	var mu sync.Mutex
	for _, idx := range apps {
		app, err := sys.TransformVariantCtx(context.Background(), idx, false)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("prebuild app %d: %w", idx, err)
		}
		prebuilt[idx] = app
	}
	appFor := func(ctx context.Context, idx int, quantized bool) (*kodan.Application, error) {
		if !quantized {
			mu.Lock()
			app, ok := prebuilt[idx]
			mu.Unlock()
			if ok {
				return app, nil
			}
		}
		app, err := sys.TransformVariantCtx(ctx, idx, quantized)
		if err != nil {
			return nil, err
		}
		if !quantized {
			mu.Lock()
			prebuilt[idx] = app
			mu.Unlock()
		}
		return app, nil
	}

	newSystem := func(ctx context.Context, _ kodan.TransformConfig) (*kodan.System, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sys, nil
	}
	transform := func(ctx context.Context, _ *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		if err := sleepCtx(ctx, work.Fixed+work.Marginal); err != nil {
			return nil, err
		}
		return appFor(ctx, appIndex, quantized)
	}
	transformBatch := func(ctx context.Context, _ *kodan.System, appIndexes []int, quantized bool) ([]*kodan.Application, error) {
		cost := work.Fixed + time.Duration(len(appIndexes))*work.Marginal
		if err := sleepCtx(ctx, cost); err != nil {
			return nil, err
		}
		out := make([]*kodan.Application, len(appIndexes))
		for i, idx := range appIndexes {
			app, err := appFor(ctx, idx, quantized)
			if err != nil {
				return nil, err
			}
			out[i] = app
		}
		return out, nil
	}
	return newSystem, transform, transformBatch, nil
}

// StubConfig assembles a server.Config over the stub pipeline; callers
// layer serving knobs (shards, batching, admission) on the result.
func StubConfig(work WorkModel, apps []int) (server.Config, error) {
	newSystem, transform, transformBatch, err := StubPipeline(work, apps)
	if err != nil {
		return server.Config{}, err
	}
	return server.Config{
		Seed:            7,
		Timeout:         60 * time.Second,
		TransformConfig: stubTransformConfig,
		NewSystem:       newSystem,
		Transform:       transform,
		TransformBatch:  transformBatch,
	}, nil
}
