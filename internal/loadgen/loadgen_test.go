package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kodan/internal/server"
)

func testWork() WorkModel { return WorkModel{Fixed: 2 * time.Millisecond, Marginal: time.Millisecond} }

// startStub boots a stub-pipeline server with the given serving knobs.
func startStub(t *testing.T, mutate func(*server.Config)) *httptest.Server {
	t.Helper()
	cfg, err := StubConfig(testWork(), []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	cfg.QueueDepth = 64
	if mutate != nil {
		mutate(&cfg)
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// TestStreamDeterministic pins that the request stream is a pure function
// of the options: same seed, same stream; different seed, different
// stream; tenants drawn and named from the spec.
func TestStreamDeterministic(t *testing.T) {
	opts := Options{
		Seed:     42,
		Requests: 40,
		Tenants:  []TenantSpec{{Name: "heavy", Share: 3}, {Name: "light", Share: 1}},
		SeedPool: []uint64{1, 2},
	}
	a, b := Stream(opts), Stream(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different streams")
	}
	opts2 := opts
	opts2.Seed = 43
	if reflect.DeepEqual(a, Stream(opts2)) {
		t.Fatal("different seeds produced identical streams")
	}
	counts := map[string]int{}
	for _, r := range a {
		counts[r.Tenant]++
		if r.Seed != 1 && r.Seed != 2 {
			t.Fatalf("seed %d outside pool", r.Seed)
		}
		if r.App < 1 || r.App > 3 {
			t.Fatalf("app %d outside default pool", r.App)
		}
	}
	if counts["heavy"] == 0 || counts["light"] == 0 {
		t.Fatalf("tenant draw ignored a tenant: %v", counts)
	}
	if counts["heavy"] <= counts["light"] {
		t.Fatalf("3:1 share should favor heavy: %v", counts)
	}
}

// TestRunClosedLoop drives a stub server closed-loop and checks the
// report's accounting: everything completes, latency and throughput are
// populated, and a single tenant is perfectly fair.
func TestRunClosedLoop(t *testing.T) {
	ts := startStub(t, nil)
	rep, err := Run(context.Background(), Options{
		Seed:        1,
		Requests:    24,
		Concurrency: 4,
		BaseURL:     ts.URL,
		Client:      ts.Client(),
		SeedPool:    []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 24 || rep.Rejected != 0 || rep.Errors != 0 {
		t.Fatalf("completed=%d rejected=%d errors=%d, want 24/0/0", rep.Completed, rep.Rejected, rep.Errors)
	}
	if rep.ThroughputRPS <= 0 || rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("implausible timing: rps=%v p50=%v p99=%v", rep.ThroughputRPS, rep.P50Ms, rep.P99Ms)
	}
	if rep.Fairness != 1 {
		t.Fatalf("single tenant must be perfectly fair, got %v", rep.Fairness)
	}
	if len(rep.Digests) == 0 || len(rep.Digests) > 6 {
		t.Fatalf("want 1..6 distinct request bodies digested (2 seeds x 3 apps), got %d", len(rep.Digests))
	}
	ts2 := startStub(t, func(c *server.Config) {
		c.CacheShards = 8
		c.BatchWindow = 10 * time.Millisecond
	})
	rep2, err := Run(context.Background(), Options{
		Seed:        1,
		Requests:    24,
		Concurrency: 4,
		BaseURL:     ts2.URL,
		Client:      ts2.Client(),
		SeedPool:    []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareDigests(rep, rep2); err != nil {
		t.Fatalf("sharded+batched responses diverged from baseline: %v", err)
	}
}

// TestRunCountsRejections checks that admission 429s land in Rejected
// (backpressure, not errors) and per-tenant stats.
func TestRunCountsRejections(t *testing.T) {
	ts := startStub(t, func(c *server.Config) {
		c.TenantRate = 0.0001 // effectively refill-free: burst only
		c.TenantBurst = 2
	})
	rep, err := Run(context.Background(), Options{
		Seed:        1,
		Requests:    10,
		Concurrency: 1, // sequential so the burst accounting is exact
		Tenants:     []TenantSpec{{Name: "alpha", Weight: 1, Share: 1}},
		BaseURL:     ts.URL,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.Rejected != 8 || rep.Errors != 0 {
		t.Fatalf("completed=%d rejected=%d errors=%d, want 2/8/0", rep.Completed, rep.Rejected, rep.Errors)
	}
	ts1 := rep.Tenants["alpha"]
	if ts1 == nil || ts1.Requests != 10 || ts1.Completed != 2 || ts1.Rejected != 8 {
		t.Fatalf("tenant stats wrong: %+v", ts1)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("429s must not count as errors, got rate %v", rep.ErrorRate)
	}
}

// TestRunOpenLoop exercises the open loop: the arrival schedule comes
// from the stream, and the run still completes and accounts everything.
func TestRunOpenLoop(t *testing.T) {
	ts := startStub(t, nil)
	rep, err := Run(context.Background(), Options{
		Seed:       1,
		Requests:   12,
		RatePerSec: 400,
		BaseURL:    ts.URL,
		Client:     ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed + rep.Rejected + rep.Errors; got != 12 {
		t.Fatalf("accounted %d of 12 requests", got)
	}
	if rep.Completed == 0 {
		t.Fatal("open loop completed nothing")
	}
}

func TestJainFairness(t *testing.T) {
	perfect := map[string]*TenantStats{
		"a": {Weight: 2, Requests: 10, Completed: 10},
		"b": {Weight: 1, Requests: 5, Completed: 5},
	}
	if f := jain(perfect); f < 0.999 {
		t.Fatalf("weighted-proportional split should be fair, got %v", f)
	}
	starved := map[string]*TenantStats{
		"a": {Weight: 1, Requests: 10, Completed: 10},
		"b": {Weight: 1, Requests: 10, Completed: 0},
	}
	if f := jain(starved); f > 0.51 {
		t.Fatalf("total starvation should score ~0.5, got %v", f)
	}
	idle := map[string]*TenantStats{
		"a": {Weight: 1, Requests: 10, Completed: 10},
		"b": {Weight: 1}, // never offered load: excluded
	}
	if f := jain(idle); f != 1 {
		t.Fatalf("idle tenants must not count against fairness, got %v", f)
	}
}
