package loadgen

import (
	"context"
	"strings"
	"testing"
)

// TestServingSweepQuick runs the quick-size serving sweep end to end:
// both configurations serve every request, responses are byte-identical
// across configurations, and the render carries the headline.
func TestServingSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two servers and drives 300 requests")
	}
	rows, err := ServingSweep(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Config != "baseline" || rows[1].Config != "tuned" {
		t.Fatalf("want [baseline tuned], got %+v", rows)
	}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Errorf("%s: %d errors", r.Config, r.Errors)
		}
		if r.Completed+r.Rejected != r.Requests {
			t.Errorf("%s: %d completed + %d rejected != %d requests", r.Config, r.Completed, r.Rejected, r.Requests)
		}
		if r.ThroughputRPS <= 0 {
			t.Errorf("%s: no throughput measured", r.Config)
		}
		if !r.DigestsMatch {
			t.Errorf("%s: responses diverged from baseline", r.Config)
		}
	}
	if rows[0].Shards != 1 || rows[0].Batched {
		t.Errorf("baseline must be single-shard unbatched: %+v", rows[0])
	}
	if rows[1].Shards <= 1 || !rows[1].Batched {
		t.Errorf("tuned must be sharded and batched: %+v", rows[1])
	}
	out := RenderServing(rows)
	if !strings.Contains(out, "headline:") || !strings.Contains(out, "byte-identical: true") {
		t.Errorf("render missing headline:\n%s", out)
	}
}
