package events

import (
	"sort"
	"time"
)

// interval is a half-open [lo, hi) mission-time slice in Unix ns.
type interval struct{ lo, hi int64 }

func (iv interval) dur() time.Duration { return time.Duration(iv.hi - iv.lo) }

// missionView is the journal reassembled into the mission's geometry:
// per-satellite capture instants, contact and grant intervals, fault
// windows re-paired from their enter/exit events, and deferral-buffer
// overflow totals. Every slice is deterministically ordered, so a view is
// a pure function of the event set.
type missionView struct {
	first, last int64 // mission-time extent (Unix ns); 0,0 when untimed

	sats     []int
	stations []string

	satCaptures  map[int][]int64
	satOverflow  map[int][]int64
	satContacts  map[int][]interval
	satGrants    map[int][]interval
	satFaults    map[int]map[string][]interval // kind -> windows
	stnGrants    map[string][]interval
	stnFaults    map[string]map[string][]interval // kind -> windows
	overflowBits map[int]float64
}

// span is the journal's mission-time extent in ns (at least 1 when any
// timed event exists, so callers can divide by it).
func (v *missionView) span() int64 {
	if v.last <= v.first {
		return 1
	}
	return v.last - v.first
}

// buildView reassembles a journal. Planning events (SimNs 0) carry no
// mission time and are skipped. Contacts and grants carry their own
// extents (ContactEnd and DownlinkGrant both record seconds); fault
// windows are re-paired from enter/exit events by (kind, sat, station),
// with unmatched edges clamped to the journal extent.
func buildView(evs []Event) *missionView {
	v := &missionView{
		satCaptures:  map[int][]int64{},
		satOverflow:  map[int][]int64{},
		satContacts:  map[int][]interval{},
		satGrants:    map[int][]interval{},
		satFaults:    map[int]map[string][]interval{},
		stnGrants:    map[string][]interval{},
		stnFaults:    map[string]map[string][]interval{},
		overflowBits: map[int]float64{},
	}
	timed := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.SimNs > 0 {
			timed = append(timed, e)
		}
	}
	if len(timed) == 0 {
		return v
	}
	Sort(timed)
	v.first, v.last = timed[0].SimNs, timed[0].SimNs
	satSet := map[int]bool{}
	stationSet := map[string]bool{}
	for _, e := range timed {
		if e.SimNs > v.last {
			v.last = e.SimNs
		}
		if e.Sat >= 0 {
			satSet[e.Sat] = true
		}
		if e.Station != "" {
			stationSet[e.Station] = true
		}
	}

	addFault := func(kind string, sat int, station string, iv interval) {
		if sat >= 0 {
			if v.satFaults[sat] == nil {
				v.satFaults[sat] = map[string][]interval{}
			}
			v.satFaults[sat][kind] = append(v.satFaults[sat][kind], iv)
		}
		if station != "" {
			if v.stnFaults[station] == nil {
				v.stnFaults[station] = map[string][]interval{}
			}
			v.stnFaults[station][kind] = append(v.stnFaults[station][kind], iv)
		}
	}
	type faultKey struct {
		kind    string
		sat     int
		station string
	}
	open := map[faultKey][]int64{}
	for _, e := range timed {
		switch e.Type {
		case Capture:
			v.satCaptures[e.Sat] = append(v.satCaptures[e.Sat], e.SimNs)
		case DeferOverflow:
			v.satOverflow[e.Sat] = append(v.satOverflow[e.Sat], e.SimNs)
			v.overflowBits[e.Sat] += e.Value
		case ContactEnd:
			iv := interval{e.SimNs - int64(e.Value*float64(time.Second)), e.SimNs}
			v.satContacts[e.Sat] = append(v.satContacts[e.Sat], iv)
		case DownlinkGrant:
			iv := interval{e.SimNs, e.SimNs + int64(e.Value*float64(time.Second))}
			v.satGrants[e.Sat] = append(v.satGrants[e.Sat], iv)
			v.stnGrants[e.Station] = append(v.stnGrants[e.Station], iv)
		case FaultEnter:
			k := faultKey{e.Detail, e.Sat, e.Station}
			open[k] = append(open[k], e.SimNs)
		case FaultExit:
			k := faultKey{e.Detail, e.Sat, e.Station}
			if starts := open[k]; len(starts) > 0 {
				addFault(k.kind, k.sat, k.station, interval{starts[0], e.SimNs})
				open[k] = starts[1:]
			} else {
				addFault(k.kind, k.sat, k.station, interval{v.first, e.SimNs})
			}
		}
	}
	// Fault windows still open at the journal's end run to its edge, in
	// deterministic key order.
	keys := make([]faultKey, 0, len(open))
	for k := range open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.sat != b.sat {
			return a.sat < b.sat
		}
		return a.station < b.station
	})
	for _, k := range keys {
		for _, start := range open[k] {
			addFault(k.kind, k.sat, k.station, interval{start, v.last})
		}
	}

	for s := range satSet {
		v.sats = append(v.sats, s)
	}
	sort.Ints(v.sats)
	for s := range stationSet {
		v.stations = append(v.stations, s)
	}
	sort.Strings(v.stations)
	return v
}

// faultIntervals returns the satellite's fault windows restricted to the
// given kinds (all kinds when none given), merged and sorted.
func (v *missionView) faultIntervals(sat int, kinds ...string) []interval {
	var ivs []interval
	byKind := v.satFaults[sat]
	if len(kinds) == 0 {
		names := make([]string, 0, len(byKind))
		for k := range byKind {
			names = append(names, k)
		}
		sort.Strings(names)
		kinds = names
	}
	for _, k := range kinds {
		ivs = append(ivs, byKind[k]...)
	}
	return mergeIntervals(ivs)
}

// mergeIntervals unions overlapping intervals into a sorted, disjoint
// set.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].lo != sorted[j].lo {
			return sorted[i].lo < sorted[j].lo
		}
		return sorted[i].hi < sorted[j].hi
	})
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		if iv.lo <= out[len(out)-1].hi {
			if iv.hi > out[len(out)-1].hi {
				out[len(out)-1].hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// totalDur sums a disjoint interval set.
func totalDur(ivs []interval) time.Duration {
	var d time.Duration
	for _, iv := range ivs {
		d += iv.dur()
	}
	return d
}

// overlap returns how much of [lo, hi) the merged set covers.
func overlap(ivs []interval, lo, hi int64) time.Duration {
	var d int64
	for _, iv := range ivs {
		a, b := iv.lo, iv.hi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			d += b - a
		}
	}
	return time.Duration(d)
}

// pointsInside counts instants covered by the merged set.
func pointsInside(pts []int64, ivs []interval) int {
	n := 0
	for _, t := range pts {
		for _, iv := range ivs {
			if t >= iv.lo && t < iv.hi {
				n++
				break
			}
		}
	}
	return n
}
