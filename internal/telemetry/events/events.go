// Package events is the mission event journal: a deterministic,
// sim-time-stamped record of what the simulated mission *did* — which
// frames were captured, which contacts opened and closed, which downlink
// grants were won, when fault windows bit, where the planner placed work,
// and how the deferred backlog drained. The wall-time span tracer
// (internal/telemetry) answers "where did the host CPU go"; this package
// answers "what happened in mission time", which is the axis the paper's
// claims live on.
//
// The journal follows the repository's two observability rules:
//
//   - Nil is the no-op. Every method on a nil *Journal is safe and does
//     nothing, mirroring telemetry.Probe and fault.Injector, so
//     instrumented layers emit unconditionally and runs without a journal
//     attached stay byte-identical to uninstrumented ones.
//
//   - Journaling never feeds back into results. Emitters record what the
//     simulation produced; the export is canonically ordered (sim time
//     first), so the JSONL bytes are identical at every worker count.
//
// The package is stdlib-only.
package events

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Type is a mission event category.
type Type string

// Mission event types, in the fixed order Types lists them.
const (
	// Capture is one frame captured by a satellite's imager. Detail is
	// the WRS scene, Value is unused.
	Capture Type = "capture"
	// SceneBoundary marks a satellite's ground track crossing into a new
	// WRS path (a fresh orbit pass over the grid). Detail is the first
	// scene of the new path, Value its path index.
	SceneBoundary Type = "scene_boundary"
	// ContactStart and ContactEnd bracket one (station, satellite)
	// visibility window. ContactEnd's Value is the window seconds.
	ContactStart Type = "contact_start"
	ContactEnd   Type = "contact_end"
	// DownlinkGrant is one contention-resolved station-time grant. Value
	// is the granted seconds.
	DownlinkGrant Type = "downlink_grant"
	// FaultEnter and FaultExit bracket one injected fault window. Detail
	// is the fault kind, Value its severity; station-scoped faults carry
	// Sat -1, satellite-scoped faults carry an empty Station.
	FaultEnter Type = "fault_enter"
	FaultExit  Type = "fault_exit"
	// PlannerDisposition is one context's placement in a hybrid execution
	// plan. Planning happens before mission time, so SimNs is 0 and Sat
	// is -1; Detail is "C<i>-><disposition>", Value the context's tile
	// fraction.
	PlannerDisposition Type = "planner_disposition"
	// DeferEnqueue, DeferDrain, and DeferOverflow journal the
	// store-and-forward replay of deferred traffic: a frame's bits
	// admitted to the on-board buffer (Value = bits), a buffered chunk
	// fully delivered (Value = capture-to-delivery latency seconds), and
	// bits tail-dropped at the buffer cap (Value = bits lost).
	DeferEnqueue  Type = "defer_enqueue"
	DeferDrain    Type = "defer_drain"
	DeferOverflow Type = "defer_overflow"
	// BufferHighWater is one satellite's peak deferral-buffer occupancy
	// over the replay, stamped at the instant the peak was set (Value =
	// bits).
	BufferHighWater Type = "buffer_highwater"
)

// Types lists every event type in fixed order, for deterministic
// iteration and rendering.
var Types = []Type{
	Capture, SceneBoundary, ContactStart, ContactEnd, DownlinkGrant,
	FaultEnter, FaultExit, PlannerDisposition,
	DeferEnqueue, DeferDrain, DeferOverflow, BufferHighWater,
}

// Valid reports whether t is a known type.
func (t Type) Valid() bool {
	for _, known := range Types {
		if t == known {
			return true
		}
	}
	return false
}

// Event is one journal record. Events are stamped in simulation time
// (Unix nanoseconds of the simulated instant), not wall time: the journal
// describes the mission, not the host.
type Event struct {
	// SimNs is the simulated instant in Unix nanoseconds. 0 means "before
	// mission time" (planning decisions).
	SimNs int64 `json:"simNs"`
	// Type is the event category.
	Type Type `json:"type"`
	// Sat is the satellite index the event concerns; -1 for events scoped
	// to a station or to the whole constellation.
	Sat int `json:"sat"`
	// Station names the ground station, when one is involved.
	Station string `json:"station,omitempty"`
	// Value carries the event's scalar (seconds, bits, dB, fraction —
	// per-type, see the Type docs).
	Value float64 `json:"value,omitempty"`
	// Detail carries the event's short string payload (scene, fault kind,
	// placement).
	Detail string `json:"detail,omitempty"`
}

// Sim returns the event's simulated instant.
func (e Event) Sim() time.Time { return time.Unix(0, e.SimNs) }

// validate rejects events the journal contract forbids.
func (e Event) validate() error {
	if !e.Type.Valid() {
		return fmt.Errorf("unknown event type %q", e.Type)
	}
	if e.SimNs < 0 {
		return fmt.Errorf("negative sim timestamp %d", e.SimNs)
	}
	if e.Sat < -1 {
		return fmt.Errorf("satellite index %d below -1", e.Sat)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("non-finite value %v", e.Value)
	}
	switch e.Type {
	case Capture, SceneBoundary, DeferEnqueue, DeferDrain, DeferOverflow, BufferHighWater:
		if e.Sat < 0 {
			return fmt.Errorf("%s event without a satellite", e.Type)
		}
	case ContactStart, ContactEnd, DownlinkGrant:
		if e.Sat < 0 || e.Station == "" {
			return fmt.Errorf("%s event needs a satellite and a station", e.Type)
		}
	case FaultEnter, FaultExit:
		if e.Detail == "" {
			return fmt.Errorf("%s event without a fault kind", e.Type)
		}
	case PlannerDisposition:
		if e.Detail == "" {
			return fmt.Errorf("%s event without a placement", e.Type)
		}
	}
	return nil
}

// less is the canonical journal order: sim time, then type, then scope,
// then payload. It is a total order up to full event equality, so a
// journal's exported bytes do not depend on emission order — which is
// what makes journals byte-identical at every worker count.
func less(a, b Event) bool {
	if a.SimNs != b.SimNs {
		return a.SimNs < b.SimNs
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Sat != b.Sat {
		return a.Sat < b.Sat
	}
	if a.Station != b.Station {
		return a.Station < b.Station
	}
	if a.Detail != b.Detail {
		return a.Detail < b.Detail
	}
	return a.Value < b.Value
}

// Sort orders events canonically in place.
func Sort(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

// Journal accumulates mission events. The nil *Journal is the no-op:
// Emit does nothing and Active reports false, so instrumented layers call
// it unconditionally. Emission order does not matter — Events and
// WriteJSONL export in canonical order.
type Journal struct {
	mu     sync.Mutex
	events []Event
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Active reports whether a journal is attached (false on nil).
func (j *Journal) Active() bool { return j != nil }

// Emit records one event (no-op on nil).
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events = append(j.events, e)
	j.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Events returns a canonically ordered copy of the journal (nil on nil).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := append([]Event(nil), j.events...)
	j.mu.Unlock()
	Sort(out)
	return out
}

// CountsByType tallies the journal per event type. Every known type is
// present in the result, absent ones with zero.
func (j *Journal) CountsByType() map[Type]int {
	out := make(map[Type]int, len(Types))
	for _, t := range Types {
		out[t] = 0
	}
	if j == nil {
		return out
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.events {
		out[e.Type]++
	}
	return out
}

// WriteJSONL writes the journal as strict JSONL, one canonical-order
// event per line. A nil journal writes nothing.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil { // Encode appends the newline
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the journal to path (creating or truncating it).
func WriteFile(j *Journal, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxLineBytes bounds one JSONL line; journal events are small, so a
// longer line is corruption, not data.
const maxLineBytes = 1 << 20

// ParseError reports a rejected input line. Line is 1-based.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// ReadJournal parses a strict JSONL journal, one Event per line, with the
// same validation discipline as the trace analyzer: unknown fields,
// trailing data, unknown types, and contract-violating events are all
// rejected with line numbers.
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("empty line")}
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("malformed event: %w", err)}
		}
		if dec.More() {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("trailing data after event object")}
		}
		if err := e.validate(); err != nil {
			return nil, &ParseError{Line: line, Err: err}
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: line + 1, Err: err}
	}
	return evs, nil
}

// ReadFile parses the journal at path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := ReadJournal(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

type ctxKey int

const journalKey ctxKey = iota

// WithJournal attaches a journal to the context. The instrumented layers
// below — the simulator, the deferral drain, the execution planner — pick
// it up with JournalFrom.
func WithJournal(ctx context.Context, j *Journal) context.Context {
	if j == nil {
		return ctx
	}
	return context.WithValue(ctx, journalKey, j)
}

// JournalFrom returns the context's journal, or nil (the no-op).
func JournalFrom(ctx context.Context) *Journal {
	j, _ := ctx.Value(journalKey).(*Journal)
	return j
}
