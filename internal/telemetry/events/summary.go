package events

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SatStat is one satellite's event tally.
type SatStat struct {
	Sat       int
	Captures  int
	Passes    int // scene-boundary crossings (fresh orbit passes)
	Contacts  int // contact windows opened
	Grants    int
	GrantSecs float64
	Faults    int // fault_enter events scoped to this satellite
	Enqueued  int
	Drained   int
	Overflows int
}

// Stats is the per-journal digest Summarize computes.
type Stats struct {
	// Events is the journal length.
	Events int
	// ByType tallies every known type (absent ones are zero).
	ByType map[Type]int
	// Sats lists per-satellite tallies in satellite order.
	Sats []SatStat
	// Stations lists the ground stations seen, sorted.
	Stations []string
	// First and Last bound the journal's mission-time extent, ignoring
	// the sim-timeless planning events. Zero when no timed events exist.
	First, Last time.Time
}

// Span is the journal's mission-time extent.
func (s Stats) Span() time.Duration {
	if s.First.IsZero() {
		return 0
	}
	return s.Last.Sub(s.First)
}

// Summarize digests a journal. Input order does not matter; the result is
// a pure function of the event set.
func Summarize(evs []Event) Stats {
	st := Stats{Events: len(evs), ByType: make(map[Type]int, len(Types))}
	for _, t := range Types {
		st.ByType[t] = 0
	}
	bySat := make(map[int]*SatStat)
	stations := make(map[string]bool)
	sat := func(i int) *SatStat {
		ss, ok := bySat[i]
		if !ok {
			ss = &SatStat{Sat: i}
			bySat[i] = ss
		}
		return ss
	}
	for _, e := range evs {
		st.ByType[e.Type]++
		if e.Station != "" {
			stations[e.Station] = true
		}
		if e.SimNs > 0 {
			t := e.Sim()
			if st.First.IsZero() || t.Before(st.First) {
				st.First = t
			}
			if t.After(st.Last) {
				st.Last = t
			}
		}
		switch e.Type {
		case Capture:
			sat(e.Sat).Captures++
		case SceneBoundary:
			sat(e.Sat).Passes++
		case ContactStart:
			sat(e.Sat).Contacts++
		case DownlinkGrant:
			ss := sat(e.Sat)
			ss.Grants++
			ss.GrantSecs += e.Value
		case FaultEnter:
			if e.Sat >= 0 {
				sat(e.Sat).Faults++
			}
		case DeferEnqueue:
			sat(e.Sat).Enqueued++
		case DeferDrain:
			sat(e.Sat).Drained++
		case DeferOverflow:
			sat(e.Sat).Overflows++
		}
	}
	for i := range bySat {
		st.Sats = append(st.Sats, *bySat[i])
	}
	sort.Slice(st.Sats, func(i, j int) bool { return st.Sats[i].Sat < st.Sats[j].Sat })
	for name := range stations {
		st.Stations = append(st.Stations, name)
	}
	sort.Strings(st.Stations)
	return st
}

// Render formats the digest: journal extent, per-type counts in fixed
// order (zero types omitted), and the per-satellite table. Output is
// byte-deterministic for a given event set.
func (s Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal: %d events, %d satellites, %d stations\n",
		s.Events, len(s.Sats), len(s.Stations))
	if !s.First.IsZero() {
		fmt.Fprintf(&b, "mission time: %s .. %s (%v)\n",
			s.First.UTC().Format(time.RFC3339), s.Last.UTC().Format(time.RFC3339),
			s.Span().Round(time.Second))
	}
	for _, t := range Types {
		if n := s.ByType[t]; n > 0 {
			fmt.Fprintf(&b, "  %-20s %7d\n", t, n)
		}
	}
	if len(s.Sats) > 0 {
		fmt.Fprintf(&b, "%4s %9s %7s %9s %7s %11s %7s %9s %8s %10s\n",
			"sat", "captures", "passes", "contacts", "grants", "grant-time", "faults", "enqueued", "drained", "overflows")
		for _, ss := range s.Sats {
			fmt.Fprintf(&b, "%4d %9d %7d %9d %7d %11v %7d %9d %8d %10d\n",
				ss.Sat, ss.Captures, ss.Passes, ss.Contacts, ss.Grants,
				time.Duration(ss.GrantSecs*float64(time.Second)).Round(time.Second),
				ss.Faults, ss.Enqueued, ss.Drained, ss.Overflows)
		}
	}
	return b.String()
}
