package events

import (
	"fmt"
	"strings"
	"time"
)

// DefaultTimelineWidth is the column count RenderTimeline uses when the
// caller passes a non-positive width.
const DefaultTimelineWidth = 72

// RenderTimeline formats the journal as a deterministic ASCII mission
// timeline: one row per satellite and one per ground station, each width
// columns wide across the journal's mission-time extent. Satellite rows
// layer capture activity, contact windows, downlink grants, a fault
// overlay, and deferral-buffer overflows; station rows show grants with
// an outage/fade overlay. Planning events (SimNs 0) carry no mission time
// and are skipped. Output is byte-deterministic for a given event set.
func RenderTimeline(evs []Event, width int) string {
	if width <= 0 {
		width = DefaultTimelineWidth
	}
	if width < 8 {
		width = 8
	}
	v := buildView(evs)
	if v.first == 0 && v.last == 0 {
		return "timeline: no mission-timed events\n"
	}
	span := v.span()
	col := func(ns int64) int {
		c := int(float64(ns-v.first) / float64(span) * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	mark := func(flags []bool, ivs []interval) {
		for _, iv := range ivs {
			lo, hi := col(iv.lo), col(iv.hi)
			for c := lo; c <= hi && c < len(flags); c++ {
				flags[c] = true
			}
		}
	}
	markPoints := func(flags []bool, pts []int64) {
		for _, t := range pts {
			flags[col(t)] = true
		}
	}
	// overlay maps a base glyph to its fault-shadowed form.
	overlay := map[byte]byte{'.': '~', 'c': 'f', 'o': 'x', 'G': '#'}

	var b strings.Builder
	perCol := time.Duration(span / int64(width))
	fmt.Fprintf(&b, "mission timeline: %s .. %s (%v), %d cols x %v\n",
		time.Unix(0, v.first).UTC().Format(time.RFC3339),
		time.Unix(0, v.last).UTC().Format(time.RFC3339),
		time.Duration(span).Round(time.Second), width, perCol.Round(time.Second))

	label := len("stn ")
	for _, s := range v.stations {
		if n := len("stn ") + len(s); n > label {
			label = n
		}
	}
	if n := len("sat 0000"); n > label {
		label = n
	}

	for _, sat := range v.sats {
		capture := make([]bool, width)
		contact := make([]bool, width)
		grant := make([]bool, width)
		faulted := make([]bool, width)
		overflow := make([]bool, width)
		markPoints(capture, v.satCaptures[sat])
		markPoints(overflow, v.satOverflow[sat])
		mark(contact, v.satContacts[sat])
		mark(grant, v.satGrants[sat])
		mark(faulted, v.faultIntervals(sat))
		row := make([]byte, width)
		for c := 0; c < width; c++ {
			g := byte('.')
			switch {
			case grant[c]:
				g = 'G'
			case contact[c]:
				g = 'o'
			case capture[c]:
				g = 'c'
			}
			if faulted[c] {
				g = overlay[g]
			}
			if overflow[c] {
				g = '!'
			}
			row[c] = g
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", label, fmt.Sprintf("sat %d", sat), row)
	}
	for _, stn := range v.stations {
		grant := make([]bool, width)
		outage := make([]bool, width)
		fade := make([]bool, width)
		mark(grant, v.stnGrants[stn])
		for kind, ivs := range v.stnFaults[stn] {
			switch kind {
			case "link_fade":
				mark(fade, ivs)
			default: // station_outage (and any future station-scoped kind)
				mark(outage, ivs)
			}
		}
		row := make([]byte, width)
		for c := 0; c < width; c++ {
			g := byte('.')
			if grant[c] {
				g = 'G'
			}
			switch {
			case outage[c] && g == '.':
				g = 'O'
			case outage[c]:
				g = '#'
			case fade[c] && g == '.':
				g = '~'
			case fade[c]:
				g = '#'
			}
			row[c] = g
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", label, "stn "+stn, row)
	}
	b.WriteString("legend: c capture  o contact  G grant  ! defer overflow  " +
		"~ f x # fault overlay  stn rows: O outage  ~ fade\n")
	return b.String()
}
