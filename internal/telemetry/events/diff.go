package events

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DiffRow is one (type, scope) cell's contribution to the difference
// between two journals.
type DiffRow struct {
	// Type is the event type the row tallies.
	Type Type
	// Sat is the satellite scope, or -1 for station/global scope.
	Sat int
	// Station is set for station-scoped cells.
	Station string
	// CountA and CountB are each journal's event count for the cell.
	CountA int
	CountB int
	// Delta is CountB - CountA.
	Delta int
	// AttrPct is this cell's share of the net event-count change,
	// 100·Delta/(totalB−totalA). Shares are signed: a cell moving against
	// the net direction gets a negative share. Zero when totals are equal.
	AttrPct float64
	// SecsA and SecsB sum the cell's Value seconds for duration-carrying
	// types (contact windows, downlink grants), so the row also shows the
	// sim-time swing, not just the count swing.
	SecsA float64
	SecsB float64
}

// JournalDiff is the deterministic comparison of two journals.
type JournalDiff struct {
	// Rows has one entry per (type, scope) cell present in either journal,
	// ordered by |Delta| descending (type then scope break ties).
	Rows []DiffRow
	// EventsA and EventsB count each journal's events.
	EventsA int
	EventsB int
	// SpanA and SpanB are each journal's mission-time extent.
	SpanA time.Duration
	SpanB time.Duration
}

// Net is the overall event-count change, EventsB - EventsA.
func (d JournalDiff) Net() int { return d.EventsB - d.EventsA }

// CompareJournals diffs two journals cell by cell, where a cell is one
// event type on one satellite or station. Output depends only on the two
// event sets; the same pair always produces the same diff.
func CompareJournals(a, b []Event) JournalDiff {
	type key struct {
		typ     Type
		sat     int
		station string
	}
	type side struct {
		count int
		secs  float64
	}
	cells := make(map[key]*[2]side)
	tally := func(evs []Event, idx int) {
		for _, e := range evs {
			k := key{e.Type, e.Sat, e.Station}
			c, ok := cells[k]
			if !ok {
				c = &[2]side{}
				cells[k] = c
			}
			c[idx].count++
			switch e.Type {
			case ContactEnd, DownlinkGrant:
				c[idx].secs += e.Value
			}
		}
	}
	tally(a, 0)
	tally(b, 1)
	d := JournalDiff{
		EventsA: len(a),
		EventsB: len(b),
		SpanA:   Summarize(a).Span(),
		SpanB:   Summarize(b).Span(),
	}
	net := d.Net()
	for k, c := range cells {
		row := DiffRow{
			Type: k.typ, Sat: k.sat, Station: k.station,
			CountA: c[0].count, CountB: c[1].count,
			Delta: c[1].count - c[0].count,
			SecsA: c[0].secs, SecsB: c[1].secs,
		}
		if net != 0 {
			row.AttrPct = 100 * float64(row.Delta) / float64(net)
		}
		d.Rows = append(d.Rows, row)
	}
	sort.Slice(d.Rows, func(i, j int) bool {
		di, dj := d.Rows[i].Delta, d.Rows[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		ri, rj := d.Rows[i], d.Rows[j]
		if ri.Type != rj.Type {
			return ri.Type < rj.Type
		}
		if ri.Sat != rj.Sat {
			return ri.Sat < rj.Sat
		}
		return ri.Station < rj.Station
	})
	return d
}

// scope renders the row's satellite/station scope.
func (r DiffRow) scope() string {
	switch {
	case r.Sat >= 0 && r.Station != "":
		return fmt.Sprintf("sat %d @ %s", r.Sat, r.Station)
	case r.Station != "":
		return "stn " + r.Station
	case r.Sat >= 0:
		return fmt.Sprintf("sat %d", r.Sat)
	}
	return "(global)"
}

// Render formats the diff as the per-cell delta table, attributing the
// net event-count change. Deterministic for a given pair of journals.
func (d JournalDiff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal diff: events A %d, B %d, net %+d\n", d.EventsA, d.EventsB, d.Net())
	fmt.Fprintf(&b, "mission span: A %v, B %v\n",
		d.SpanA.Round(time.Second), d.SpanB.Round(time.Second))
	if len(d.Rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-20s %-22s %6s %6s %6s %8s %11s %11s\n",
		"type", "scope", "nA", "nB", "delta", "attr%", "secsA", "secsB")
	for _, r := range d.Rows {
		secs := fmt.Sprintf("%11s %11s", "-", "-")
		if r.Type == ContactEnd || r.Type == DownlinkGrant {
			secs = fmt.Sprintf("%11.1f %11.1f", r.SecsA, r.SecsB)
		}
		fmt.Fprintf(&b, "%-20s %-22s %6d %6d %+6d %7.1f%% %s\n",
			r.Type, r.scope(), r.CountA, r.CountB, r.Delta, r.AttrPct, secs)
	}
	return b.String()
}
