package events

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Anomaly rule names, in report order.
const (
	RuleBufferSaturation  = "buffer-saturation"
	RuleCaptureGap        = "capture-gap"
	RuleContactStarvation = "contact-starvation"
	RuleFaultThroughput   = "fault-throughput"
)

// Thresholds tunes the anomaly rules. The zero value is unusable; start
// from DefaultThresholds.
type Thresholds struct {
	// StarvationGapFrac flags a satellite whose longest grant-free stretch
	// exceeds this fraction of the journal's extent (or that received no
	// grants at all).
	StarvationGapFrac float64
	// CaptureGapFactor and CaptureGapMin together flag a satellite whose
	// longest inter-capture gap exceeds both CaptureGapFactor times its
	// median gap and the CaptureGapMin floor.
	CaptureGapFactor float64
	CaptureGapMin    time.Duration
	// CorrelationFrac flags a satellite (or station) whose capture (grant)
	// rate inside its fault windows drops below this fraction of the rate
	// outside them.
	CorrelationFrac float64
	// MinFaultDur is the least total fault time worth correlating; shorter
	// exposure is noise.
	MinFaultDur time.Duration
}

// DefaultThresholds are tuned so a clean multi-hour reference run is
// quiet while seeded fault schedules trip at least one rule.
func DefaultThresholds() Thresholds {
	return Thresholds{
		StarvationGapFrac: 0.6,
		CaptureGapFactor:  4,
		CaptureGapMin:     10 * time.Minute,
		CorrelationFrac:   0.5,
		MinFaultDur:       5 * time.Minute,
	}
}

// Anomaly is one rule finding.
type Anomaly struct {
	// Rule names the rule that fired (Rule* constants).
	Rule string
	// Sat is the satellite concerned, or -1 for station findings.
	Sat int
	// Station is set for station findings.
	Station string
	// Detail explains the finding.
	Detail string
}

// Subject renders the finding's scope.
func (a Anomaly) Subject() string {
	if a.Station != "" {
		return "stn " + a.Station
	}
	return fmt.Sprintf("sat %d", a.Sat)
}

// DetectAnomalies runs the rule engine over a journal and returns the
// findings in deterministic (rule, scope) order. The four rules cover the
// failure shapes the fault injector produces: contact starvation,
// deferral-buffer saturation, capture gaps, and fault-window/throughput
// correlation.
func DetectAnomalies(evs []Event, th Thresholds) []Anomaly {
	v := buildView(evs)
	var out []Anomaly
	if v.first == 0 && v.last == 0 {
		return out
	}
	span := time.Duration(v.span())

	// Rule: deferral-buffer saturation. Any tail-dropped bits mean the
	// on-board buffer was sized below what the contact schedule required.
	for _, sat := range v.sats {
		if n := len(v.satOverflow[sat]); n > 0 {
			out = append(out, Anomaly{
				Rule: RuleBufferSaturation, Sat: sat,
				Detail: fmt.Sprintf("%d overflow event(s), %.3g Mbit tail-dropped at the buffer cap",
					n, v.overflowBits[sat]/1e6),
			})
		}
	}

	// Rule: capture gaps. A satellite that images steadily and then goes
	// dark for far longer than its own cadence lost sensor time.
	for _, sat := range v.sats {
		caps := v.satCaptures[sat]
		if len(caps) < 8 {
			continue
		}
		gaps := make([]time.Duration, 0, len(caps)-1)
		var maxGap time.Duration
		var maxAt int64
		for i := 1; i < len(caps); i++ {
			g := time.Duration(caps[i] - caps[i-1])
			gaps = append(gaps, g)
			if g > maxGap {
				maxGap = g
				maxAt = caps[i-1]
			}
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		median := gaps[len(gaps)/2]
		if maxGap > time.Duration(th.CaptureGapFactor*float64(median)) && maxGap > th.CaptureGapMin {
			out = append(out, Anomaly{
				Rule: RuleCaptureGap, Sat: sat,
				Detail: fmt.Sprintf("max inter-capture gap %v (median %v) starting %s",
					maxGap.Round(time.Second), median.Round(time.Second),
					time.Unix(0, maxAt).UTC().Format(time.RFC3339)),
			})
		}
	}

	// Rule: contact starvation. A satellite that captures but never gets
	// station time — or goes without it for most of the mission — cannot
	// deliver.
	for _, sat := range v.sats {
		if len(v.satCaptures[sat]) == 0 {
			continue // never imaged; nothing to starve
		}
		grants := mergeIntervals(v.satGrants[sat])
		if len(grants) == 0 {
			out = append(out, Anomaly{
				Rule: RuleContactStarvation, Sat: sat,
				Detail: fmt.Sprintf("no downlink grants over the whole journal (%v)",
					span.Round(time.Second)),
			})
			continue
		}
		var maxGap time.Duration
		var maxAt int64
		prev := v.first
		for _, g := range grants {
			if gap := time.Duration(g.lo - prev); gap > maxGap {
				maxGap = gap
				maxAt = prev
			}
			if g.hi > prev {
				prev = g.hi
			}
		}
		if gap := time.Duration(v.last - prev); gap > maxGap {
			maxGap = gap
			maxAt = prev
		}
		if maxGap > time.Duration(th.StarvationGapFrac*float64(span)) {
			out = append(out, Anomaly{
				Rule: RuleContactStarvation, Sat: sat,
				Detail: fmt.Sprintf("longest grant-free stretch %v is %.0f%% of the journal, starting %s",
					maxGap.Round(time.Second), 100*float64(maxGap)/float64(span),
					time.Unix(0, maxAt).UTC().Format(time.RFC3339)),
			})
		}
	}

	// Rule: fault/throughput correlation, satellite side. Compare the
	// capture rate inside capture-killing fault windows (sensor dropouts,
	// satellite resets) against the rate outside them.
	for _, sat := range v.sats {
		faults := v.faultIntervals(sat, "sensor_dropout", "satellite_reset")
		in := overlap(faults, v.first, v.last)
		outDur := span - in
		if in < th.MinFaultDur || outDur <= 0 {
			continue
		}
		caps := v.satCaptures[sat]
		nIn := pointsInside(caps, faults)
		nOut := len(caps) - nIn
		inRate := float64(nIn) / in.Hours()
		outRate := float64(nOut) / outDur.Hours()
		if outRate > 0 && inRate < th.CorrelationFrac*outRate {
			out = append(out, Anomaly{
				Rule: RuleFaultThroughput, Sat: sat,
				Detail: fmt.Sprintf("capture rate %.1f/h inside %v of sensor/reset fault windows vs %.1f/h outside",
					inRate, in.Round(time.Second), outRate),
			})
		}
	}

	// Rule: fault/throughput correlation, station side. Compare granted
	// seconds per hour inside outage windows against outside.
	for _, stn := range v.stations {
		outages := mergeIntervals(v.stnFaults[stn]["station_outage"])
		in := overlap(outages, v.first, v.last)
		outDur := span - in
		if in < th.MinFaultDur || outDur <= 0 {
			continue
		}
		grants := mergeIntervals(v.stnGrants[stn])
		var grantIn time.Duration
		for _, o := range outages {
			grantIn += overlap(grants, o.lo, o.hi)
		}
		grantOut := totalDur(grants) - grantIn
		inRate := grantIn.Seconds() / in.Hours()
		outRate := grantOut.Seconds() / outDur.Hours()
		if outRate > 0 && inRate < th.CorrelationFrac*outRate {
			out = append(out, Anomaly{
				Rule: RuleFaultThroughput, Sat: -1, Station: stn,
				Detail: fmt.Sprintf("grant time %.0f s/h inside %v of outage windows vs %.0f s/h outside",
					inRate, in.Round(time.Second), outRate),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Station != b.Station {
			return a.Station < b.Station
		}
		if a.Sat != b.Sat {
			return a.Sat < b.Sat
		}
		return a.Detail < b.Detail
	})
	return out
}

// RenderAnomalies formats findings, one per line. Output is
// byte-deterministic for a given finding set.
func RenderAnomalies(as []Anomaly) string {
	var b strings.Builder
	if len(as) == 0 {
		b.WriteString("anomalies: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "anomalies: %d finding(s)\n", len(as))
	for _, a := range as {
		fmt.Fprintf(&b, "[%-19s] %-8s %s\n", a.Rule, a.Subject(), a.Detail)
	}
	return b.String()
}
