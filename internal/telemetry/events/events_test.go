package events

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// epoch is the synthetic mission start used across the package tests.
var epoch = time.Date(2027, 3, 14, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) int64 { return epoch.Add(d).UnixNano() }

// sampleJournal builds a small two-satellite, two-station mission with a
// fault window, grants, and a deferral replay — enough to exercise every
// event type.
func sampleJournal() *Journal {
	j := NewJournal()
	j.Emit(Event{Type: PlannerDisposition, Sat: -1, Detail: "C0->space", Value: 0.4})
	j.Emit(Event{Type: PlannerDisposition, Sat: -1, Detail: "C1->ground", Value: 0.6})
	for i := 0; i < 10; i++ {
		j.Emit(Event{SimNs: at(time.Duration(i) * 6 * time.Minute), Type: Capture, Sat: 0, Detail: "P001R001"})
	}
	j.Emit(Event{SimNs: at(2 * time.Minute), Type: SceneBoundary, Sat: 0, Detail: "P002R001", Value: 2})
	j.Emit(Event{SimNs: at(3 * time.Minute), Type: Capture, Sat: 1, Detail: "P003R004"})
	j.Emit(Event{SimNs: at(10 * time.Minute), Type: ContactStart, Sat: 0, Station: "Svalbard"})
	j.Emit(Event{SimNs: at(18 * time.Minute), Type: ContactEnd, Sat: 0, Station: "Svalbard", Value: 480})
	j.Emit(Event{SimNs: at(11 * time.Minute), Type: DownlinkGrant, Sat: 0, Station: "Svalbard", Value: 240})
	j.Emit(Event{SimNs: at(30 * time.Minute), Type: FaultEnter, Sat: -1, Station: "Awarua", Detail: "station_outage", Value: 1})
	j.Emit(Event{SimNs: at(50 * time.Minute), Type: FaultExit, Sat: -1, Station: "Awarua", Detail: "station_outage", Value: 1})
	j.Emit(Event{SimNs: at(40 * time.Minute), Type: FaultEnter, Sat: 1, Detail: "sensor_dropout", Value: 0.5})
	j.Emit(Event{SimNs: at(55 * time.Minute), Type: FaultExit, Sat: 1, Detail: "sensor_dropout", Value: 0.5})
	j.Emit(Event{SimNs: at(12 * time.Minute), Type: DeferEnqueue, Sat: 0, Value: 5e6})
	j.Emit(Event{SimNs: at(20 * time.Minute), Type: DeferDrain, Sat: 0, Value: 480})
	j.Emit(Event{SimNs: at(21 * time.Minute), Type: DeferOverflow, Sat: 0, Value: 2e6})
	j.Emit(Event{SimNs: at(12 * time.Minute), Type: BufferHighWater, Sat: 0, Value: 5e6})
	j.Emit(Event{SimNs: at(60 * time.Minute), Type: ContactStart, Sat: 1, Station: "Awarua"})
	j.Emit(Event{SimNs: at(65 * time.Minute), Type: ContactEnd, Sat: 1, Station: "Awarua", Value: 300})
	return j
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if j.Active() {
		t.Fatal("nil journal reports active")
	}
	j.Emit(Event{Type: Capture, Sat: 0}) // must not panic
	if j.Len() != 0 {
		t.Fatalf("nil journal Len = %d", j.Len())
	}
	if evs := j.Events(); evs != nil {
		t.Fatalf("nil journal Events = %v", evs)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil journal WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	counts := j.CountsByType()
	if len(counts) != len(Types) {
		t.Fatalf("nil journal CountsByType has %d keys, want %d", len(counts), len(Types))
	}
}

func TestContextPlumbing(t *testing.T) {
	if got := JournalFrom(context.Background()); got != nil {
		t.Fatalf("empty context yields journal %v", got)
	}
	j := NewJournal()
	ctx := WithJournal(context.Background(), j)
	if got := JournalFrom(ctx); got != j {
		t.Fatal("journal did not round-trip through the context")
	}
	// Attaching nil leaves the context untouched.
	if got := JournalFrom(WithJournal(context.Background(), nil)); got != nil {
		t.Fatal("nil attach produced a journal")
	}
}

// TestCanonicalOrderIndependentOfEmission is the worker-count determinism
// property in miniature: the same event set emitted in any order exports
// the same bytes.
func TestCanonicalOrderIndependentOfEmission(t *testing.T) {
	base := sampleJournal().Events()
	var want bytes.Buffer
	if err := sampleJournal().WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Event(nil), base...)
		rng.Shuffle(len(shuffled), func(i, k int) { shuffled[i], shuffled[k] = shuffled[k], shuffled[i] })
		j := NewJournal()
		for _, e := range shuffled {
			j.Emit(e)
		}
		var got bytes.Buffer
		if err := j.WriteJSONL(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("trial %d: shuffled emission changed the export:\n--- want\n%s--- got\n%s",
				trial, want.String(), got.String())
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	j := sampleJournal()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := WriteFile(j, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip changed length: wrote %d, read %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d changed in round trip: wrote %+v, read %+v", i, want[i], got[i])
		}
	}
}

func TestReadJournalRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"empty line", "\n", 1},
		{"malformed json", "{not json}\n", 1},
		{"unknown field", `{"simNs":1,"type":"capture","sat":0,"bogus":1}` + "\n", 1},
		{"trailing data", `{"simNs":1,"type":"capture","sat":0} {"x":1}` + "\n", 1},
		{"unknown type", `{"simNs":1,"type":"warp_drive","sat":0}` + "\n", 1},
		{"negative sim time", `{"simNs":-5,"type":"capture","sat":0}` + "\n", 1},
		{"capture without sat", `{"simNs":1,"type":"capture","sat":-1}` + "\n", 1},
		{"grant without station", `{"simNs":1,"type":"downlink_grant","sat":0}` + "\n", 1},
		{"fault without kind", `{"simNs":1,"type":"fault_enter","sat":0}` + "\n", 1},
		{"second line bad", `{"simNs":1,"type":"capture","sat":0}` + "\n" + `{"simNs":2,"type":"nope","sat":0}` + "\n", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJournal(strings.NewReader(tc.input))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want ParseError, got %v", err)
			}
			if pe.Line != tc.line {
				t.Fatalf("error on line %d, want %d: %v", pe.Line, tc.line, err)
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize(sampleJournal().Events())
	if st.Events != sampleJournal().Len() {
		t.Fatalf("Events = %d, want %d", st.Events, sampleJournal().Len())
	}
	if st.ByType[Capture] != 11 {
		t.Fatalf("captures = %d, want 11", st.ByType[Capture])
	}
	if len(st.Sats) != 2 || st.Sats[0].Sat != 0 || st.Sats[1].Sat != 1 {
		t.Fatalf("per-sat stats = %+v", st.Sats)
	}
	if st.Sats[0].Captures != 10 || st.Sats[0].Grants != 1 || st.Sats[0].GrantSecs != 240 {
		t.Fatalf("sat 0 stats = %+v", st.Sats[0])
	}
	if st.Sats[1].Faults != 1 {
		t.Fatalf("sat 1 faults = %d, want 1", st.Sats[1].Faults)
	}
	if got, want := st.Stations, []string{"Awarua", "Svalbard"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("stations = %v", got)
	}
	if st.Span() != 65*time.Minute {
		t.Fatalf("span = %v, want 65m", st.Span())
	}
	if !strings.Contains(st.Render(), "journal: ") {
		t.Fatal("render missing header")
	}
}

func TestTimelineGolden(t *testing.T) {
	got := RenderTimeline(sampleJournal().Events(), 64)
	goldenCompare(t, "timeline.golden", []byte(got))
}

func TestSummaryGolden(t *testing.T) {
	got := Summarize(sampleJournal().Events()).Render()
	goldenCompare(t, "summary.golden", []byte(got))
}

func TestTimelineEmpty(t *testing.T) {
	if got := RenderTimeline(nil, 0); got != "timeline: no mission-timed events\n" {
		t.Fatalf("empty timeline = %q", got)
	}
	// Planning-only journals have no mission time either.
	evs := []Event{{Type: PlannerDisposition, Sat: -1, Detail: "C0->space"}}
	if got := RenderTimeline(evs, 0); got != "timeline: no mission-timed events\n" {
		t.Fatalf("planning-only timeline = %q", got)
	}
}

func TestAnomaliesCleanJournalQuiet(t *testing.T) {
	// A steady mission — regular captures, regular grants, no faults —
	// must produce zero findings.
	j := NewJournal()
	for i := 0; i < 24; i++ {
		j.Emit(Event{SimNs: at(time.Duration(i) * 15 * time.Minute), Type: Capture, Sat: 0, Detail: "P001R001"})
	}
	for i := 0; i < 4; i++ {
		base := time.Duration(i) * 90 * time.Minute
		j.Emit(Event{SimNs: at(base), Type: ContactStart, Sat: 0, Station: "Svalbard"})
		j.Emit(Event{SimNs: at(base + 8*time.Minute), Type: ContactEnd, Sat: 0, Station: "Svalbard", Value: 480})
		j.Emit(Event{SimNs: at(base + time.Minute), Type: DownlinkGrant, Sat: 0, Station: "Svalbard", Value: 300})
	}
	if as := DetectAnomalies(j.Events(), DefaultThresholds()); len(as) != 0 {
		t.Fatalf("clean journal flagged: %v", as)
	}
}

func TestAnomalyBufferSaturation(t *testing.T) {
	j := NewJournal()
	j.Emit(Event{SimNs: at(time.Minute), Type: Capture, Sat: 0, Detail: "P001R001"})
	j.Emit(Event{SimNs: at(2 * time.Minute), Type: DeferOverflow, Sat: 0, Value: 3e6})
	j.Emit(Event{SimNs: at(3 * time.Minute), Type: DeferOverflow, Sat: 0, Value: 4e6})
	as := DetectAnomalies(j.Events(), DefaultThresholds())
	found := false
	for _, a := range as {
		if a.Rule == RuleBufferSaturation && a.Sat == 0 {
			found = true
			if !strings.Contains(a.Detail, "2 overflow event(s)") {
				t.Fatalf("saturation detail = %q", a.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("buffer saturation not flagged: %v", as)
	}
}

func TestAnomalyCaptureGapAndCorrelation(t *testing.T) {
	// Steady 1-minute cadence with a 30-minute hole under a sensor-dropout
	// window: both the gap rule and the correlation rule should fire.
	j := NewJournal()
	cadence := time.Minute
	tt := time.Duration(0)
	for i := 0; i < 30; i++ {
		j.Emit(Event{SimNs: at(tt), Type: Capture, Sat: 0, Detail: "P001R001"})
		tt += cadence
	}
	j.Emit(Event{SimNs: at(tt), Type: FaultEnter, Sat: 0, Detail: "sensor_dropout", Value: 1})
	hole := 30 * time.Minute
	j.Emit(Event{SimNs: at(tt + hole), Type: FaultExit, Sat: 0, Detail: "sensor_dropout", Value: 1})
	tt += hole
	for i := 0; i < 30; i++ {
		j.Emit(Event{SimNs: at(tt), Type: Capture, Sat: 0, Detail: "P001R001"})
		tt += cadence
	}
	as := DetectAnomalies(j.Events(), DefaultThresholds())
	var rules []string
	for _, a := range as {
		rules = append(rules, a.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, RuleCaptureGap) {
		t.Fatalf("capture gap not flagged: %v", as)
	}
	if !strings.Contains(joined, RuleFaultThroughput) {
		t.Fatalf("fault correlation not flagged: %v", as)
	}
}

func TestAnomalyContactStarvation(t *testing.T) {
	j := NewJournal()
	for i := 0; i < 24; i++ {
		j.Emit(Event{SimNs: at(time.Duration(i) * 15 * time.Minute), Type: Capture, Sat: 0, Detail: "P001R001"})
	}
	as := DetectAnomalies(j.Events(), DefaultThresholds())
	found := false
	for _, a := range as {
		if a.Rule == RuleContactStarvation && a.Sat == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("starvation not flagged: %v", as)
	}
	if !strings.Contains(RenderAnomalies(as), RuleContactStarvation) {
		t.Fatal("render missing rule name")
	}
	if RenderAnomalies(nil) != "anomalies: none\n" {
		t.Fatalf("empty render = %q", RenderAnomalies(nil))
	}
}

func TestCompareJournals(t *testing.T) {
	a := sampleJournal().Events()
	// B: same mission minus satellite 0's grant and with extra captures on
	// satellite 1.
	var b []Event
	for _, e := range a {
		if e.Type == DownlinkGrant && e.Sat == 0 {
			continue
		}
		b = append(b, e)
	}
	for i := 0; i < 3; i++ {
		b = append(b, Event{SimNs: at(time.Duration(70+i) * time.Minute), Type: Capture, Sat: 1, Detail: "P003R004"})
	}
	d := CompareJournals(a, b)
	if d.EventsA != len(a) || d.EventsB != len(b) {
		t.Fatalf("totals = %d/%d, want %d/%d", d.EventsA, d.EventsB, len(a), len(b))
	}
	if d.Net() != 2 {
		t.Fatalf("net = %d, want +2", d.Net())
	}
	// Top row by |delta| is satellite 1's capture gain.
	top := d.Rows[0]
	if top.Type != Capture || top.Sat != 1 || top.Delta != 3 {
		t.Fatalf("top row = %+v", top)
	}
	// The dropped grant row carries its sim-time swing.
	var grantRow *DiffRow
	for i := range d.Rows {
		if d.Rows[i].Type == DownlinkGrant {
			grantRow = &d.Rows[i]
		}
	}
	if grantRow == nil || grantRow.Delta != -1 || grantRow.SecsA != 240 || grantRow.SecsB != 0 {
		t.Fatalf("grant row = %+v", grantRow)
	}
	out := d.Render()
	if !strings.Contains(out, "journal diff: events A") || !strings.Contains(out, "downlink_grant") {
		t.Fatalf("render = %q", out)
	}
	// Identical journals diff to all-zero deltas.
	same := CompareJournals(a, a)
	if same.Net() != 0 {
		t.Fatalf("self-diff net = %d", same.Net())
	}
	for _, r := range same.Rows {
		if r.Delta != 0 || r.AttrPct != 0 {
			t.Fatalf("self-diff row %+v", r)
		}
	}
}

func TestDiffDeterministic(t *testing.T) {
	a := sampleJournal().Events()
	b := a[:len(a)-2]
	first := CompareJournals(a, b).Render()
	for i := 0; i < 3; i++ {
		if got := CompareJournals(a, b).Render(); got != first {
			t.Fatalf("diff render unstable:\n--- first\n%s--- got\n%s", first, got)
		}
	}
}

// goldenCompare checks got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./internal/telemetry/events -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}
