// Package telemetry is the repository's cross-cutting observability
// layer: an atomic counter/gauge/histogram registry with named scopes, a
// span tracer that records parent-linked begin/end events exportable as
// JSONL, and context plumbing that threads both through the hot paths —
// the constellation simulator, the transformation engine, the parallel
// evaluation substrate, the experiments lab, and the serving layer.
//
// Two design rules govern everything here:
//
//   - Nil is the no-op. Every method on a nil *Registry, *Scope,
//     *Counter, *Gauge, *Histogram, *Tracer, or *Span is safe and does
//     nothing, so instrumented code never branches on "is telemetry on"
//     and uninstrumented callers pay only a nil check (the sim overhead
//     benchmark holds the disabled path under 2%).
//
//   - Telemetry never feeds back into results. Instrumentation records
//     what computations did; it is forbidden from influencing them, which
//     is what keeps figure outputs byte-identical with tracing on or off
//     and at every worker count (the determinism suite enforces this).
//
// The package is stdlib-only, like the rest of the reproduction.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. workers currently busy).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(delta))
}

// bumpMax lifts the high-water mark to at least v.
func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark since creation (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram accumulates a distribution of non-negative float64 samples
// (durations in seconds, sizes, counts) into exponential buckets:
// bucket i holds samples in [histBase*2^(i-1), histBase*2^i), with bucket
// 0 catching everything below histBase. All updates are atomic; there is
// no lock on the record path.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	// minBits stores float64 bits + 1 so that 0 can mean "no sample yet"
	// without colliding with a legitimate 0.0 minimum (whose bits are 0).
	minBits atomic.Uint64
	maxBits atomic.Uint64 // float64 bits; 0 (= 0.0) is the identity for non-negative samples
}

const (
	// histBase is the upper bound of the first bucket: 1 microsecond when
	// observing seconds.
	histBase = 1e-6
	// histBuckets at doubling widths covers histBase .. ~1.1e6 seconds.
	histBuckets = 41
)

// bucketIndex maps a sample to its bucket.
func bucketIndex(v float64) int {
	if v < histBase {
		return 0
	}
	i := int(math.Log2(v/histBase)) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns bucket i's exclusive upper bound (the last bucket
// is unbounded and reports +Inf).
func bucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return histBase * math.Pow(2, float64(i))
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		cur := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(cur, math.Float64bits(math.Float64frombits(cur)+v)) {
			break
		}
	}
	for {
		cur := h.minBits.Load()
		if cur != 0 && math.Float64frombits(cur-1) <= v {
			break
		}
		if h.minBits.CompareAndSwap(cur, math.Float64bits(v)+1) {
			break
		}
	}
	for {
		cur := h.maxBits.Load()
		if math.Float64frombits(cur) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of recorded samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns an upper bound on the q-th quantile (0 <= q <= 1) from
// the bucket boundaries: the tightest bucket upper edge at or above the
// nearest-rank sample. 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == histBuckets-1 {
				return math.Float64frombits(h.maxBits.Load())
			}
			return bucketUpper(i)
		}
	}
	return math.Float64frombits(h.maxBits.Load())
}

// BucketCounts returns a copy of the cumulative per-bucket sample counts
// (nil on a nil histogram). Bucket i's exclusive upper bound is
// BucketUpperBound(i); differential consumers (the flight recorder)
// subtract consecutive snapshots to get the distribution of just the
// samples that arrived in between.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpperBound returns bucket i's exclusive upper bound (the last
// bucket is unbounded and reports +Inf).
func BucketUpperBound(i int) float64 { return bucketUpper(i) }

// QuantileOver returns an upper bound on the q-th quantile of an
// arbitrary bucket-count vector laid out like Histogram's buckets (e.g. a
// delta between two BucketCounts calls). 0 when the vector is empty. The
// last bucket has no finite upper edge, so samples landing there report
// its lower bound — callers tracking rolling quantiles accept the
// coarser answer in exchange for never holding raw samples.
func QuantileOver(buckets []int64, q float64) float64 {
	var n int64
	for _, b := range buckets {
		n += b
	}
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, b := range buckets {
		seen += b
		if seen >= rank {
			if i == len(buckets)-1 {
				return histBase * math.Pow(2, float64(i-1))
			}
			return bucketUpper(i)
		}
	}
	return 0
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot exports the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Max:   math.Float64frombits(h.maxBits.Load()),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if mb := h.minBits.Load(); mb != 0 {
		s.Min = math.Float64frombits(mb - 1)
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// Registry holds named counters, gauges, and histograms. Lookups are
// mutex-guarded and intended to happen once per operation (hold the
// returned pointer in hot loops); the metric update paths themselves are
// lock-free atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if absent) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if absent) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if absent) the named histogram; nil on a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Scope returns a named scope: metric names created through it are
// prefixed "name.". Nil-safe: a nil registry yields a nil scope whose
// metrics are nil no-ops.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: name + "."}
}

// Scope is a name-prefixed view of a registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a nested scope: metric names created through it carry both
// prefixes ("parent.child."). Nil-safe like Registry.Scope.
func (s *Scope) Scope(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{r: s.r, prefix: s.prefix + name + "."}
}

// Counter returns the scoped counter (nil on a nil scope).
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.prefix + name)
}

// Gauge returns the scoped gauge (nil on a nil scope).
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.prefix + name)
}

// Histogram returns the scoped histogram (nil on a nil scope).
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(s.prefix + name)
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// RegistrySnapshot is the full exported state of a registry, with
// deterministic (sorted) iteration order when marshaled by encoding/json.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric (zero snapshot on nil).
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = GaugeSnapshot{Value: g.Load(), Max: g.Max()}
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			snap.Histograms[name] = h.Snapshot()
		}
	}
	return snap
}

// HistogramState is a histogram's raw cumulative state, for differential
// consumers (the flight recorder) that compute per-interval deltas.
type HistogramState struct {
	Count   int64
	Sum     float64
	Max     float64
	Buckets []int64
}

// RegistryState is a deep sample of every metric's raw cumulative state.
// Unlike RegistrySnapshot (which pre-computes quantiles for human-facing
// export) it carries histogram bucket counts so two states can be
// subtracted to recover the distribution of an interval.
type RegistryState struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeSnapshot
	Histograms map[string]HistogramState
}

// State exports the raw cumulative state of every metric (zero state on
// nil).
func (r *Registry) State() RegistryState {
	var st RegistryState
	if r == nil {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		st.Counters[name] = c.Load()
	}
	st.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
	for name, g := range r.gauges {
		st.Gauges[name] = GaugeSnapshot{Value: g.Load(), Max: g.Max()}
	}
	st.Histograms = make(map[string]HistogramState, len(r.histograms))
	for name, h := range r.histograms {
		st.Histograms[name] = HistogramState{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Max:     math.Float64frombits(h.maxBits.Load()),
			Buckets: h.BucketCounts(),
		}
	}
	return st
}

// Render formats the snapshot as sorted "name value" lines for logs and
// CLI summaries.
func (s RegistrySnapshot) Render() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter   %-40s %d", name, v))
	}
	for name, g := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge     %-40s %d (max %d)", name, g.Value, g.Max))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("histogram %-40s n=%d mean=%.6g p50<=%.6g p99<=%.6g max=%.6g",
			name, h.Count, h.Mean, h.P50, h.P99, h.Max))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
