package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kodan/internal/fault"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/recorder"
)

func errObjective() Objective {
	return Objective{
		Name:         "transform-errors",
		BadCounter:   "server.transforms.failed",
		TotalCounter: "server.transforms.started",
		Target:       0.99,
	}
}

func TestObjectiveValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Objective
		want string
	}{
		{"valid error rate", errObjective(), ""},
		{"valid latency", Objective{Name: "lat", Histogram: "h", ThresholdSeconds: 1, Target: 0.9}, ""},
		{"no name", Objective{Target: 0.9, Histogram: "h", ThresholdSeconds: 1}, "without a name"},
		{"target zero", Objective{Name: "x", Histogram: "h", ThresholdSeconds: 1, Target: 0}, "outside (0, 1)"},
		{"target one", Objective{Name: "x", Histogram: "h", ThresholdSeconds: 1, Target: 1}, "outside (0, 1)"},
		{"both forms", Objective{Name: "x", Histogram: "h", ThresholdSeconds: 1, BadCounter: "b", TotalCounter: "t", Target: 0.9}, "both"},
		{"neither form", Objective{Name: "x", Target: 0.9}, "neither"},
		{"latency no threshold", Objective{Name: "x", Histogram: "h", Target: 0.9}, "positive threshold"},
		{"error rate no total", Objective{Name: "x", BadCounter: "b", Target: 0.9}, "both bad and total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if _, err := NewEngine(nil, nil, []Objective{errObjective(), errObjective()}, Config{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate objective names accepted: %v", err)
	}
}

// TestChaosSweepOkPageOk is the acceptance test for the SLO state
// machine: a seeded fault.Chaos intensity sweep (clean → moderate →
// outage → clean) must drive the transform-errors objective ok → warn →
// page → ok, with state visible in the scope's metrics the whole way.
func TestChaosSweepOkPageOk(t *testing.T) {
	reg := telemetry.NewRegistry()
	started := reg.Counter("server.transforms.started")
	failed := reg.Counter("server.transforms.failed")
	rec := recorder.New(reg, recorder.Options{Capacity: 64})
	rec.Record() // prime the differential baseline

	eng, err := NewEngine(rec, reg.Scope("server.slo"),
		[]Objective{errObjective()},
		Config{FastSamples: 3, SlowSamples: 9, WarnBurn: 2, PageBurn: 8})
	if err != nil {
		t.Fatal(err)
	}

	// The sweep: per-phase fault intensity scaling the chaos error rate.
	// Moderate intensity burns ~4x budget (warn band: [2, 8)); full
	// intensity burns ~80x (page); clean phases burn nothing.
	phases := []struct {
		intensity float64
		ticks     int
	}{
		{0.0, 4},
		{0.05, 8}, // ~4% errors: warn once the slow window catches up
		{1.0, 6},  // ~80% errors: page
		{0.0, 6},  // recovery: fast window clears first
	}
	const requestsPerTick = 200

	var states []string
	push := func(s string) {
		if len(states) == 0 || states[len(states)-1] != s {
			states = append(states, s)
		}
	}
	for pi, ph := range phases {
		chaos := fault.NewChaos(42+uint64(pi), 0.8*ph.intensity, 0, 0)
		for tick := 0; tick < ph.ticks; tick++ {
			for i := 0; i < requestsPerTick; i++ {
				started.Inc()
				if chaos.Next().Fail {
					failed.Inc()
				}
			}
			rec.Record()
			rep := eng.Evaluate()
			if len(rep.Objectives) != 1 {
				t.Fatalf("report has %d objectives, want 1", len(rep.Objectives))
			}
			push(rep.Objectives[0].State)
			if rep.Worst != rep.Objectives[0].State {
				t.Fatalf("worst %q != sole objective state %q", rep.Worst, rep.Objectives[0].State)
			}
			// The state gauge must track the reported state.
			wantGauge := map[string]int64{"ok": 0, "warn": 1, "page": 2}[rep.Objectives[0].State]
			if got := reg.Gauge("server.slo.transform-errors.state").Load(); got != wantGauge {
				t.Fatalf("state gauge = %d, want %d (%s)", got, wantGauge, rep.Objectives[0].State)
			}
		}
	}

	got := strings.Join(states, "→")
	if got != "ok→warn→page→ok" {
		t.Fatalf("state trajectory = %s, want ok→warn→page→ok", got)
	}
	// Transitions were counted: at least one entry into each state.
	for _, s := range []string{"ok", "warn", "page"} {
		if n := reg.Counter("server.slo.transform-errors.transitions." + s).Load(); n == 0 {
			t.Errorf("no recorded transition into %s", s)
		}
	}
}

// TestLatencyObjectiveFromBuckets: the latency form must read good/bad
// straight from histogram bucket deltas.
func TestLatencyObjectiveFromBuckets(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("server.transform_seconds")
	rec := recorder.New(reg, recorder.Options{Capacity: 16})
	rec.Record()

	eng, err := NewEngine(rec, nil, []Objective{{
		Name:             "transform-latency",
		Histogram:        "server.transform_seconds",
		ThresholdSeconds: 1.0,
		Target:           0.90,
	}}, Config{FastSamples: 2, SlowSamples: 4, WarnBurn: 2, PageBurn: 8})
	if err != nil {
		t.Fatal(err)
	}

	// 50% of observations over threshold: burn = 0.5/0.1 = 5 → warn.
	for i := 0; i < 10; i++ {
		h.Observe(0.01)
		h.Observe(30.0)
	}
	rec.Record()
	rec.Record() // second sample so both windows have evidence
	rep := eng.Evaluate()
	st := rep.Objectives[0]
	if st.State != "warn" {
		t.Fatalf("state = %s (fast burn %v, slow burn %v), want warn", st.State, st.Fast.Burn, st.Slow.Burn)
	}
	if st.Fast.Total != 20 || st.Fast.Bad != 10 {
		t.Fatalf("fast window bad/total = %d/%d, want 10/20", st.Fast.Bad, st.Fast.Total)
	}
}

// TestZeroTrafficIsOK: an idle service must not page (no evidence ≠ bad).
func TestZeroTrafficIsOK(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := recorder.New(reg, recorder.Options{})
	rec.Record()
	rec.Record()
	eng, err := NewEngine(rec, nil, []Objective{errObjective()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Evaluate()
	if rep.Worst != "ok" || rep.Objectives[0].Fast.Burn != 0 {
		t.Fatalf("idle service reported %s (burn %v), want ok/0", rep.Worst, rep.Objectives[0].Fast.Burn)
	}
}

// TestHandlerServesJSON: /debug/slo must serve a well-formed Report.
func TestHandlerServesJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := recorder.New(reg, recorder.Options{})
	rec.Record()
	eng, err := NewEngine(rec, reg.Scope("server.slo"), DefaultServerObjectives(30*time.Second), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(rep.Objectives) != 3 || rep.Worst != "ok" {
		t.Fatalf("report = %+v, want 3 idle-ok objectives", rep)
	}
}

// TestStartStopEvaluatesOnSamples: a started engine must evaluate on the
// recorder's sample feed without any explicit Evaluate calls.
func TestStartStopEvaluatesOnSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := recorder.New(reg, recorder.Options{})
	rec.Record()
	eng, err := NewEngine(rec, reg.Scope("server.slo"), []Objective{errObjective()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	eng.Start() // extra Start is a no-op
	rec.Record()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.slo.evaluations").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("engine never evaluated on the sample feed")
		}
		time.Sleep(time.Millisecond)
	}
	eng.Stop()
	eng.Stop() // extra Stop is a no-op
}

// TestConcurrentEvaluate: Evaluate must be safe from many goroutines
// (exercised meaningfully under -race).
func TestConcurrentEvaluate(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("server.transforms.started")
	rec := recorder.New(reg, recorder.Options{})
	rec.Record()
	eng, err := NewEngine(rec, reg.Scope("server.slo"), []Objective{errObjective()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Inc()
				rec.Record()
				eng.Evaluate()
			}
		}()
	}
	wg.Wait()
}

// TestNilEngine: every method on a nil engine is a safe no-op.
func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Start()
	e.Stop()
	if rep := e.Evaluate(); rep.Worst != "ok" {
		t.Fatalf("nil engine worst = %q, want ok", rep.Worst)
	}
	if e.Objectives() != nil {
		t.Fatal("nil engine objectives should be nil")
	}
}
