// Package slo evaluates declarative service-level objectives over the
// shared telemetry registry, using the flight recorder's fine ring as its
// time base.
//
// An Objective declares either a latency target ("this fraction of
// observations must land at or under this threshold", read from histogram
// bucket deltas) or an error-rate target ("this fraction of operations
// must not be the bad counter", read from counter deltas). The engine
// evaluates each objective over two trailing windows of recorder samples
// — a fast window that reacts within seconds and a slow window that
// filters blips — and converts each window's bad fraction into a burn
// rate: the multiple of the error budget the service is currently
// consuming (burn 1 = exactly spending the budget, burn 8 = spending it
// 8x too fast). The output is three-state:
//
//	ok    — neither window burns at warning rate
//	warn  — both windows burn at or above WarnBurn
//	page  — both windows burn at or above PageBurn
//
// Requiring both windows (the multi-window, multi-burn-rate pattern)
// keeps pages fast on real incidents — the fast window trips immediately
// — while the slow window's memory prevents flapping: a one-sample spike
// cannot page, and after an incident the page clears as soon as the fast
// window is clean, without waiting for the slow window to forget.
//
// Like the rest of the telemetry layer, the engine only observes. State
// lands in gauges/counters under the scope the caller provides (the
// server uses "server.slo"), as JSON via Handler, and in the /debug/dash
// SLO panel — never back into any computation.
package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"kodan/internal/telemetry"
	"kodan/internal/telemetry/recorder"
)

// State is an objective's three-state health.
type State int

const (
	OK State = iota
	Warn
	Page
)

func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Warn:
		return "warn"
	case Page:
		return "page"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Objective declares one SLO. Exactly one of the two forms must be set:
//
//   - latency: Histogram + ThresholdSeconds — an observation is good when
//     it lands in a bucket whose upper bound is at or under the threshold;
//   - error rate: BadCounter + TotalCounter — a bad increment counts
//     against the budget of total increments.
//
// Target is the good fraction promised, in (0, 1): 0.99 means 1% budget.
type Objective struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Histogram        string  `json:"histogram,omitempty"`
	ThresholdSeconds float64 `json:"thresholdSeconds,omitempty"`

	BadCounter   string `json:"badCounter,omitempty"`
	TotalCounter string `json:"totalCounter,omitempty"`

	Target float64 `json:"target"`
}

// Validate rejects contradictory or incomplete declarations.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective without a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo %q: target %v outside (0, 1)", o.Name, o.Target)
	}
	latency := o.Histogram != "" || o.ThresholdSeconds != 0
	errRate := o.BadCounter != "" || o.TotalCounter != ""
	switch {
	case latency && errRate:
		return fmt.Errorf("slo %q: declares both a latency histogram and error counters", o.Name)
	case !latency && !errRate:
		return fmt.Errorf("slo %q: declares neither a latency histogram nor error counters", o.Name)
	case latency && (o.Histogram == "" || o.ThresholdSeconds <= 0):
		return fmt.Errorf("slo %q: latency form needs both histogram and a positive threshold", o.Name)
	case errRate && (o.BadCounter == "" || o.TotalCounter == ""):
		return fmt.Errorf("slo %q: error-rate form needs both bad and total counters", o.Name)
	}
	return nil
}

// Config sizes the evaluation windows and burn thresholds. Windows are
// counted in recorder fine samples, so wall-clock width is the recorder
// interval times the sample count.
type Config struct {
	// FastSamples is the fast window (default 6).
	FastSamples int
	// SlowSamples is the slow window (default 36).
	SlowSamples int
	// WarnBurn and PageBurn are the burn-rate thresholds (defaults 2
	// and 8). Burn 1 means spending exactly the error budget.
	WarnBurn float64
	PageBurn float64
}

func (c Config) withDefaults() Config {
	if c.FastSamples <= 0 {
		c.FastSamples = 6
	}
	if c.SlowSamples <= 0 {
		c.SlowSamples = 36
	}
	if c.SlowSamples < c.FastSamples {
		c.SlowSamples = c.FastSamples
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 8
	}
	return c
}

// WindowStatus is one window's evidence for one objective.
type WindowStatus struct {
	Bad   int64 `json:"bad"`
	Total int64 `json:"total"`
	// Burn is the budget burn rate: badFraction / (1 - target). Zero
	// when the window saw no traffic (no evidence is not bad evidence).
	Burn float64 `json:"burn"`
	// DurMs is the wall time the window's samples actually cover.
	DurMs int64 `json:"durMs"`
}

// Status is one objective's evaluated state.
type Status struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	State       string       `json:"state"`
	Target      float64      `json:"target"`
	Fast        WindowStatus `json:"fast"`
	Slow        WindowStatus `json:"slow"`
}

// Report is the full /debug/slo document.
type Report struct {
	WallMs int64 `json:"wallMs"`
	// Worst is the worst objective state — the page-or-not answer.
	Worst      string   `json:"worst"`
	Objectives []Status `json:"objectives"`
	WarnBurn   float64  `json:"warnBurn"`
	PageBurn   float64  `json:"pageBurn"`
}

// Engine evaluates objectives over a recorder's fine ring. Create with
// NewEngine; Start subscribes it to the recorder so every new sample
// triggers an evaluation, or call Evaluate directly. Nil-safe: every
// method on a nil *Engine is a no-op.
type Engine struct {
	rec        *recorder.Recorder
	scope      *telemetry.Scope
	objectives []Objective
	cfg        Config
	now        func() time.Time

	mu   sync.Mutex
	last map[string]State

	lifecycle sync.Mutex
	cancelSub func()
	done      chan struct{}
}

// NewEngine validates the objectives and returns an engine reading
// windows from rec and writing state metrics through scope (a nil scope
// disables metrics; a nil recorder yields an engine that reports every
// objective ok on empty evidence).
func NewEngine(rec *recorder.Recorder, scope *telemetry.Scope, objectives []Objective, cfg Config) (*Engine, error) {
	seen := make(map[string]bool, len(objectives))
	for _, o := range objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	return &Engine{
		rec:        rec,
		scope:      scope,
		objectives: objectives,
		cfg:        cfg.withDefaults(),
		now:        time.Now,
		last:       make(map[string]State, len(objectives)),
	}, nil
}

// Objectives returns the engine's objective declarations.
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return append([]Objective(nil), e.objectives...)
}

// Evaluate reads the trailing windows from the recorder and scores every
// objective, updating the state metrics. Safe from any goroutine.
func (e *Engine) Evaluate() Report {
	if e == nil {
		return Report{Worst: OK.String()}
	}
	samples := e.rec.Fine(e.cfg.SlowSamples)
	fastFrom := len(samples) - e.cfg.FastSamples
	if fastFrom < 0 {
		fastFrom = 0
	}
	fast := samples[fastFrom:]

	rep := Report{
		WallMs:   e.now().UnixMilli(),
		WarnBurn: e.cfg.WarnBurn,
		PageBurn: e.cfg.PageBurn,
	}
	worst := OK
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objectives {
		st := Status{
			Name:        o.Name,
			Description: o.Description,
			Target:      o.Target,
			Fast:        window(o, fast),
			Slow:        window(o, samples),
		}
		state := OK
		switch {
		case st.Fast.Burn >= e.cfg.PageBurn && st.Slow.Burn >= e.cfg.PageBurn:
			state = Page
		case st.Fast.Burn >= e.cfg.WarnBurn && st.Slow.Burn >= e.cfg.WarnBurn:
			state = Warn
		}
		st.State = state.String()
		if state > worst {
			worst = state
		}
		e.publish(o.Name, state, st)
		rep.Objectives = append(rep.Objectives, st)
	}
	e.scope.Counter("evaluations").Inc()
	rep.Worst = worst.String()
	return rep
}

// publish lands one objective's state in the metrics scope and counts
// transitions. Caller holds e.mu.
func (e *Engine) publish(name string, state State, st Status) {
	e.scope.Gauge(name + ".state").Set(int64(state))
	e.scope.Gauge(name + ".fast_burn_milli").Set(int64(st.Fast.Burn * 1000))
	e.scope.Gauge(name + ".slow_burn_milli").Set(int64(st.Slow.Burn * 1000))
	if prev, ok := e.last[name]; !ok || prev != state {
		e.scope.Counter(name + ".transitions." + state.String()).Inc()
	}
	e.last[name] = state
}

// window tallies one objective's good/bad evidence over a sample window.
func window(o Objective, samples []recorder.Sample) WindowStatus {
	var w WindowStatus
	for _, s := range samples {
		w.DurMs += s.DurMs
		if o.Histogram != "" {
			var good, total int64
			for i, n := range s.HistogramBucketDelta(o.Histogram) {
				total += n
				if telemetry.BucketUpperBound(i) <= o.ThresholdSeconds {
					good += n
				}
			}
			w.Total += total
			w.Bad += total - good
		} else {
			bad := s.Counters[o.BadCounter].Delta
			total := s.Counters[o.TotalCounter].Delta
			if bad > total { // bad and total tick at different instants
				bad = total
			}
			w.Bad += bad
			w.Total += total
		}
	}
	if w.Total > 0 {
		w.Burn = (float64(w.Bad) / float64(w.Total)) / (1 - o.Target)
	}
	return w
}

// Start subscribes the engine to the recorder: every recorded sample
// triggers one evaluation, so SLO state advances at the recorder's
// interval. Extra Starts are no-ops; Stop unsubscribes and waits.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.lifecycle.Lock()
	defer e.lifecycle.Unlock()
	if e.cancelSub != nil {
		return
	}
	ch, cancel := e.rec.Subscribe(4)
	e.cancelSub = cancel
	done := make(chan struct{})
	e.done = done
	go func() {
		defer close(done)
		for range ch {
			e.Evaluate()
		}
	}()
}

// Stop halts the evaluation loop and waits for it to exit.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.lifecycle.Lock()
	defer e.lifecycle.Unlock()
	if e.cancelSub == nil {
		return
	}
	e.cancelSub()
	<-e.done
	e.cancelSub, e.done = nil, nil
}

// Handler serves the current Report as JSON — the /debug/slo endpoint.
// Each request evaluates fresh, so the answer is never staler than the
// recorder's ring.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Evaluate())
	})
}

// DefaultServerObjectives is the serving path's SLO set: transform
// latency under threshold, transform error rate, and HTTP 5xx rate —
// all over counters/histograms the server already maintains in the
// shared registry.
func DefaultServerObjectives(transformThreshold time.Duration) []Objective {
	return []Objective{
		{
			Name:             "transform-latency",
			Description:      fmt.Sprintf("90%% of transforms complete within %v", transformThreshold),
			Histogram:        "server.transform_seconds",
			ThresholdSeconds: transformThreshold.Seconds(),
			Target:           0.90,
		},
		{
			Name:         "transform-errors",
			Description:  "99% of started transforms do not fail",
			BadCounter:   "server.transforms.failed",
			TotalCounter: "server.transforms.started",
			Target:       0.99,
		},
		{
			Name:         "http-errors",
			Description:  "99.9% of requests are not 5xx",
			BadCounter:   "server.http.errors",
			TotalCounter: "server.http.requests_total",
			Target:       0.999,
		},
	}
}
