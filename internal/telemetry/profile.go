package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiling wires the standard Go profilers behind CLI flags: a CPU
// profile streaming to cpuPath for the life of the run, and a heap
// profile written to memPath at stop time (after a GC, so the snapshot
// reflects live objects rather than garbage). Either path may be empty to
// skip that profile. The returned stop function finalizes both files and
// must be called exactly once; it reports the first error encountered.
func StartProfiling(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("telemetry: mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("telemetry: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// WriteTraceFile writes the tracer's events as JSONL to path. A nil
// tracer or empty path writes nothing.
func WriteTraceFile(t *Tracer, path string) error {
	if t == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: trace: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: trace: %w", err)
	}
	return nil
}
