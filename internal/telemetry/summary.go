package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseStat aggregates every completed span sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summary is the end-of-run trace digest the CLIs print: per-phase wall
// time (spans aggregated by name), total span counts, and the top-k
// slowest individual spans.
type Summary struct {
	Phases  []PhaseStat
	Slowest []SpanRecord
	Spans   int
	Dropped int64
}

// Summarize digests a tracer's completed spans. topK bounds the slowest
// list (non-positive means 10).
func Summarize(t *Tracer, topK int) Summary {
	if topK <= 0 {
		topK = 10
	}
	spans := t.Spans()
	sum := Summary{Spans: len(spans), Dropped: t.Dropped()}

	byName := make(map[string]*PhaseStat)
	for _, s := range spans {
		ps, ok := byName[s.Name]
		if !ok {
			ps = &PhaseStat{Name: s.Name}
			byName[s.Name] = ps
		}
		ps.Count++
		ps.Total += s.Dur
		if s.Dur > ps.Max {
			ps.Max = s.Dur
		}
	}
	for _, ps := range byName {
		sum.Phases = append(sum.Phases, *ps)
	}
	// Heaviest phase first; name breaks ties deterministically.
	sort.Slice(sum.Phases, func(i, j int) bool {
		if sum.Phases[i].Total != sum.Phases[j].Total {
			return sum.Phases[i].Total > sum.Phases[j].Total
		}
		return sum.Phases[i].Name < sum.Phases[j].Name
	})

	slow := append([]SpanRecord(nil), spans...)
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Dur != slow[j].Dur {
			return slow[i].Dur > slow[j].Dur
		}
		return slow[i].ID < slow[j].ID
	})
	if len(slow) > topK {
		slow = slow[:topK]
	}
	sum.Slowest = slow
	return sum
}

// Render formats the summary as the text report the CLIs print to stderr.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d spans", s.Spans)
	if s.Dropped > 0 {
		fmt.Fprintf(&b, " (%d events dropped at buffer cap)", s.Dropped)
	}
	b.WriteString("\n")
	if len(s.Phases) > 0 {
		fmt.Fprintf(&b, "%-28s %8s %14s %14s %14s\n", "phase", "spans", "total", "mean", "max")
		for _, p := range s.Phases {
			mean := time.Duration(0)
			if p.Count > 0 {
				mean = p.Total / time.Duration(p.Count)
			}
			fmt.Fprintf(&b, "%-28s %8d %14v %14v %14v\n",
				p.Name, p.Count, p.Total.Round(time.Microsecond),
				mean.Round(time.Microsecond), p.Max.Round(time.Microsecond))
		}
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(&b, "top %d slowest spans:\n", len(s.Slowest))
		for _, r := range s.Slowest {
			fmt.Fprintf(&b, "  %-28s %14v", r.Name, r.Dur.Round(time.Microsecond))
			if len(r.Attrs) > 0 {
				keys := make([]string, 0, len(r.Attrs))
				for k := range r.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%s", k, r.Attrs[k])
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
